package repro

// Allocation-budget tests for the campaign-level hot path: the per-tick
// work of a guided fuzzing campaign — engine harvest + generate, frame
// validation, bus transmit, scheduling, ECU reactions — measured with
// testing.AllocsPerRun so an allocation regression on the hot path is a
// failing test, not a benchmark footnote. The bus- and clock-level
// zero-alloc guarantees live next to their packages (internal/bus,
// internal/clock); this pins the whole assembled world.

import (
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/guided"
	"repro/internal/testbench"
)

// guidedStepAllocBudget bounds the average heap allocations per 1 ms
// campaign tick in steady state. The budget is not zero because the world
// legitimately allocates off the TX fast path: novelty hits append to the
// corpus, ECU responses construct reply state, and the engine's RNG feeds
// mutation — but it must stay small and flat. The pre-overhaul code spent
// ~6 allocations per tick on clock nodes, queue growth and completion
// closures alone.
const guidedStepAllocBudget = 2.0

func TestGuidedCampaignStepAllocBudget(t *testing.T) {
	sched := clock.New()
	bench := testbench.New(sched, testbench.Config{AckUnlock: true})
	port := bench.AttachFuzzer("fuzzer")
	fuzzCfg := core.Config{Seed: 11, Mode: core.ModeGuided, Interval: time.Millisecond}
	engine, err := guided.NewEngine(fuzzCfg,
		guided.WithProbes(bench.GuidedProbes(port)...))
	if err != nil {
		t.Fatal(err)
	}
	campaign, err := core.NewCampaign(sched, port, fuzzCfg, core.WithFrameSource(engine))
	if err != nil {
		t.Fatal(err)
	}
	campaign.Start()
	defer campaign.Stop()

	// Warm-up: let the corpus seed itself, queues and event pools reach
	// steady state, and the novelty map absorb the world's common responses.
	sched.RunFor(2 * time.Second)

	allocs := testing.AllocsPerRun(1000, func() {
		sched.RunFor(time.Millisecond)
	})
	if allocs > guidedStepAllocBudget {
		t.Fatalf("guided campaign step allocates %v per tick, budget %v",
			allocs, guidedStepAllocBudget)
	}
}

// TestRandomCampaignStepZeroAlloc pins the blind-random campaign tick —
// generator, validation, bus transmit, scheduling, ECU reactions — at zero
// steady-state allocations: with no corpus or novelty bookkeeping, nothing
// on this path may touch the heap.
func TestRandomCampaignStepZeroAlloc(t *testing.T) {
	sched := clock.New()
	bench := testbench.New(sched, testbench.Config{AckUnlock: true})
	port := bench.AttachFuzzer("fuzzer")
	campaign, err := core.NewCampaign(sched, port,
		core.Config{Seed: 7, Interval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	campaign.Start()
	defer campaign.Stop()

	sched.RunFor(2 * time.Second)

	allocs := testing.AllocsPerRun(1000, func() {
		sched.RunFor(time.Millisecond)
	})
	if allocs != 0 {
		t.Fatalf("random campaign step allocates %v per tick, want 0", allocs)
	}
}
