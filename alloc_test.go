package repro

// Allocation-budget tests for the campaign-level hot path: the per-tick
// work of a guided fuzzing campaign — engine harvest + generate, frame
// validation, bus transmit, scheduling, ECU reactions — measured with
// testing.AllocsPerRun so an allocation regression on the hot path is a
// failing test, not a benchmark footnote. The bus- and clock-level
// zero-alloc guarantees live next to their packages (internal/bus,
// internal/clock); this pins the whole assembled world.

import (
	"runtime"
	"testing"
	"time"

	"repro/internal/can"
	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/guided"
	"repro/internal/testbench"
)

// guidedStepAllocBudget bounds the average heap allocations per 1 ms
// campaign tick in steady state. The budget is not zero because the world
// legitimately allocates off the TX fast path: novelty hits append to the
// corpus, ECU responses construct reply state, and the engine's RNG feeds
// mutation — but it must stay small and flat. The pre-overhaul code spent
// ~6 allocations per tick on clock nodes, queue growth and completion
// closures alone.
const guidedStepAllocBudget = 2.0

func TestGuidedCampaignStepAllocBudget(t *testing.T) {
	sched := clock.New()
	bench := testbench.New(sched, testbench.Config{AckUnlock: true})
	port := bench.AttachFuzzer("fuzzer")
	fuzzCfg := core.Config{Seed: 11, Mode: core.ModeGuided, Interval: time.Millisecond}
	engine, err := guided.NewEngine(fuzzCfg,
		guided.WithProbes(bench.GuidedProbes(port)...))
	if err != nil {
		t.Fatal(err)
	}
	campaign, err := core.NewCampaign(sched, port, fuzzCfg, core.WithFrameSource(engine))
	if err != nil {
		t.Fatal(err)
	}
	campaign.Start()
	defer campaign.Stop()

	// Warm-up: let the corpus seed itself, queues and event pools reach
	// steady state, and the novelty map absorb the world's common responses.
	sched.RunFor(2 * time.Second)

	allocs := testing.AllocsPerRun(1000, func() {
		sched.RunFor(time.Millisecond)
	})
	if allocs > guidedStepAllocBudget {
		t.Fatalf("guided campaign step allocates %v per tick, budget %v",
			allocs, guidedStepAllocBudget)
	}
}

// TestRandomCampaignStepZeroAlloc pins the blind-random campaign tick —
// generator, validation, bus transmit, scheduling, ECU reactions — at zero
// steady-state allocations: with no corpus or novelty bookkeeping, nothing
// on this path may touch the heap.
func TestRandomCampaignStepZeroAlloc(t *testing.T) {
	sched := clock.New()
	bench := testbench.New(sched, testbench.Config{AckUnlock: true})
	port := bench.AttachFuzzer("fuzzer")
	campaign, err := core.NewCampaign(sched, port,
		core.Config{Seed: 7, Interval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	campaign.Start()
	defer campaign.Stop()

	sched.RunFor(2 * time.Second)

	allocs := testing.AllocsPerRun(1000, func() {
		sched.RunFor(time.Millisecond)
	})
	if allocs != 0 {
		t.Fatalf("random campaign step allocates %v per tick, want 0", allocs)
	}
}

// TestWorldResetZeroAlloc pins a full world reset — scheduler, bus and
// ports, every bench ECU, telemetry, generator RNG and campaign state —
// at zero steady-state heap allocations. This is what makes fleet-side
// world reuse worth having: recycling a trial world must cost CPU only,
// never garbage.
func TestWorldResetZeroAlloc(t *testing.T) {
	exp, err := testbench.NewUnlockExperiment(testbench.Config{}, core.Config{
		Seed:      5,
		TargetIDs: []can.ID{0x215},
		Interval:  time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Dirty the world once so the reset has real state to clear.
	if _, ok := exp.Run(30 * time.Minute); !ok {
		t.Fatal("campaign found no unlock within 30 virtual minutes")
	}
	allocs := testing.AllocsPerRun(100, func() {
		exp.Reset(5)
	})
	if allocs != 0 {
		t.Fatalf("world reset allocates %v per call, want 0", allocs)
	}
}

// fleetTrialAllocBudget bounds the average heap allocations per fleet
// trial once the world pool is warm. The factory-per-trial cold path
// spent ~6.6k allocations per trial building the world alone; the reuse
// path keeps only the per-trial bookkeeping (result rows, finding
// payloads, report assembly), so an order of magnitude less. A breach
// means the reset path started rebuilding something it should recycle.
const fleetTrialAllocBudget = 660.0

func TestFleetTrialAllocBudget(t *testing.T) {
	const trials = 8
	cfg := fleet.Config{
		Trials:      trials,
		Workers:     1,
		BaseSeed:    5,
		MaxPerTrial: 30 * time.Minute,
		Pool:        &fleet.WorldPool{},
	}
	factory := func(spec fleet.TrialSpec) (*fleet.World, error) {
		exp, err := testbench.NewUnlockExperiment(testbench.Config{}, core.Config{
			Seed:      spec.Seed,
			TargetIDs: []can.ID{0x215},
			Interval:  time.Millisecond,
		})
		if err != nil {
			return nil, err
		}
		return &fleet.World{
			Sched:    exp.Bench.Scheduler(),
			Campaign: exp.Campaign,
			Reset: func(ts fleet.TrialSpec) error {
				exp.Reset(ts.Seed)
				return nil
			},
		}, nil
	}
	run := func() {
		if _, err := fleet.Run(cfg, factory); err != nil {
			t.Fatal(err)
		}
	}
	run() // warm the pool: later runs recycle this world for every trial
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	const reps = 5
	for i := 0; i < reps; i++ {
		run()
	}
	runtime.ReadMemStats(&after)
	perTrial := float64(after.Mallocs-before.Mallocs) / (reps * trials)
	if perTrial > fleetTrialAllocBudget {
		t.Fatalf("fleet trial allocates %.0f with a warm pool, budget %v",
			perTrial, fleetTrialAllocBudget)
	}
}
