package repro

// Golden regression tests: the whole simulation is deterministic by
// design, so exact outputs for fixed seeds are part of the contract. If a
// refactor changes any of these strings, either the change broke
// determinism or it knowingly changed simulation semantics — both need a
// deliberate golden update.

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/bus"
	"repro/internal/capture"
	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/vehicle"
)

func TestGoldenTable4FuzzerOutput(t *testing.T) {
	want := []string{
		"1.196 01E2 6 DC D8 68 CE 02 84",
		"2.146 0677 3 6E 43 01",
		"3.134 0240 2 9B 03",
		"4.162 0400 4 A5 46 7A 8D",
		"5.148 01CA 3 EF 5F F3",
		"6.116 0044 1 83",
	}
	rows := experiments.Table4(2, 6)
	if len(rows) != len(want) {
		t.Fatalf("rows = %d", len(rows))
	}
	for i, r := range rows {
		if got := r.String(); got != want[i] {
			t.Fatalf("row %d = %q, want %q (determinism broken?)", i, got, want[i])
		}
	}
}

func TestGoldenVehicleFirstFrames(t *testing.T) {
	sched := clock.New()
	v := vehicle.New(sched, vehicle.Config{Seed: 1})
	var lines []string
	v.TapOBD(vehicle.OBDBody, func(m bus.Message) {
		if len(lines) < 3 {
			lines = append(lines, capture.Record{Time: m.Time, Frame: m.Frame, Origin: m.Origin}.String())
		}
	})
	sched.RunUntil(time.Second)
	want := []string{
		"10.484 0110 8 19 0D 00 3C 11 00 00 00",
		"20.500 04B0 8 00 00 00 00 00 00 00 00",
		"20.748 0110 8 35 0D 00 3C 12 00 00 00",
	}
	for i := range want {
		if i >= len(lines) || lines[i] != want[i] {
			t.Fatalf("line %d = %q, want %q", i, lines[i], want[i])
		}
	}
}

func TestGoldenGeneratorStream(t *testing.T) {
	gen, err := core.NewGenerator(core.Config{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	for i := 0; i < 4; i++ {
		sb.WriteString(gen.Next().String())
		sb.WriteString("\n")
	}
	want := "04B1 8 84 3E DF 61 A5 88 70 D3\n01F9 2 E7 DC\n078C 0\n0604 5 AF 10 AA 16 C4\n"
	if sb.String() != want {
		t.Fatalf("stream:\n%q\nwant:\n%q", sb.String(), want)
	}
}

func TestGoldenFigure5Statistics(t *testing.T) {
	res := experiments.Figure5(1, 10000)
	if res.Frames != 10000 {
		t.Fatalf("frames = %d", res.Frames)
	}
	// Exact values for the fixed seed; any drift means the generator or
	// the accumulator changed.
	if got := fmt.Sprintf("%.2f", res.Overall); got != "127.25" {
		t.Fatalf("overall = %s, want 127.25", got)
	}
	if !res.Uniform {
		t.Fatal("uniformity verdict changed")
	}
}
