package repro

// Native fuzz target for the world-reuse contract: for arbitrary seed
// pairs and fuzz-target identifiers, resetting a dirtied world and
// running a campaign must produce a report byte-identical to building a
// fresh world and running the same campaign. This is the property the
// fleet's pooled fast path rests on; the deterministic goldens pin two
// known schedules, the fuzzer hunts for state that survives Reset on
// schedules nobody thought to pin.

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/can"
	"repro/internal/core"
	"repro/internal/testbench"
)

func FuzzWorldReset(f *testing.F) {
	f.Add(int64(5), int64(6), uint8(0x15))
	f.Add(int64(0), int64(0), uint8(0))
	f.Add(int64(-1), int64(1<<40), uint8(0xFF))
	f.Fuzz(func(t *testing.T, seedA, seedB int64, idLow uint8) {
		id := 0x200 | can.ID(idLow)
		mk := func(seed int64) *testbench.UnlockExperiment {
			exp, err := testbench.NewUnlockExperiment(testbench.Config{}, core.Config{
				Seed:      seed,
				TargetIDs: []can.ID{id},
				Interval:  time.Millisecond,
			})
			if err != nil {
				t.Fatal(err)
			}
			return exp
		}
		// Short virtual horizon keeps each exec cheap; whether the trial
		// ends in a finding or the deadline, the report must match.
		reportJSON := func(e *testbench.UnlockExperiment) []byte {
			e.Run(30 * time.Second)
			var buf bytes.Buffer
			if err := e.Campaign.BuildReport().WriteJSON(&buf); err != nil {
				t.Fatal(err)
			}
			return buf.Bytes()
		}

		reused := mk(seedA)
		reportJSON(reused) // dirty the world under seedA
		reused.Reset(seedB)
		got := reportJSON(reused)

		want := reportJSON(mk(seedB))
		if !bytes.Equal(got, want) {
			t.Errorf("seeds (%d -> %d) id %#x: reset-then-run report differs from fresh-build-then-run\nfresh: %s\nreset: %s",
				seedA, seedB, id, want, got)
		}
	})
}
