package repro

// Telemetry golden tests: the simulation is deterministic, so for a fixed
// seed the full Prometheus exposition and the Chrome trace document are
// exact artefacts. Any drift means either instrumentation semantics or
// simulation determinism changed — both deserve a deliberate
//
//	go test -run TestGoldenTelemetry -update
//
// regeneration plus a diff review.

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/can"
	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/telemetry"
	"repro/internal/testbench"
)

var updateGolden = flag.Bool("update", false, "rewrite telemetry golden files")

// goldenScenario runs the fixed observability scenario: a targeted unlock
// campaign on the bench (arbitration, tx, dispatch, generator and oracle
// events) followed by a short data-link bit-fuzz burst (error frames and
// fault-confinement state changes), all on one virtual timeline.
func goldenScenario(t *testing.T) *telemetry.Telemetry {
	t.Helper()
	sched := clock.New()
	tel := telemetry.New(0)
	bench := testbench.New(sched, testbench.Config{AckUnlock: true})
	bench.Instrument(tel)

	campaign, err := core.NewCampaign(sched, bench.AttachFuzzer("fuzzer"), core.Config{
		Seed:      1,
		TargetIDs: []can.ID{0x215},
		LenMin:    7, LenMax: 7,
		ByteMin: 0x10, ByteMax: 0x30, // keeps the unlock byte reachable: quick finding
		Interval: time.Millisecond,
	}, core.WithStopOnFinding(), core.WithTelemetry(tel))
	if err != nil {
		t.Fatal(err)
	}
	campaign.AddOracle(bench.UnlockOracle())
	campaign.Start()
	sched.RunUntil(2 * time.Second)
	campaign.Stop()

	// Data-link burst: a malicious node that corrupts frames on the wire and
	// resets its own fault confinement, walking TEC through error-passive.
	port := bench.AttachFuzzer("bitfuzzer")
	bf := core.NewBitFuzzer(sched, port, core.BitFuzzConfig{
		Seed: 4, FlipBits: 12, Interval: time.Millisecond,
	})
	bf.Start()
	sched.Every(25*time.Millisecond, port.ResetErrors)
	sched.RunFor(60 * time.Millisecond)
	bf.Stop()
	return tel
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test -run TestGoldenTelemetry -update` to create)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("%s drifted from golden (determinism or instrumentation change?).\n"+
			"Regenerate with -update and review the diff.\ngot %d bytes, want %d bytes",
			name, len(got), len(want))
	}
}

func TestGoldenTelemetryPrometheus(t *testing.T) {
	tel := goldenScenario(t)
	var buf bytes.Buffer
	if err := tel.Reg().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// Structural guarantees before the byte-exact check.
	for _, want := range []string{
		"campaign_frames_sent_total ",
		"campaign_findings_total 1",
		"can_bus_load_ratio{bus=\"bench\"}",
		"can_port_tx_frames_total{bus=\"bench\",port=\"fuzzer\"}",
		"can_port_arb_losses_total{bus=\"bench\",port=",
		"can_frames_corrupted_total{bus=\"bench\"}",
		"can_tx_wire_seconds_bucket{bus=\"bench\",le=\"+Inf\"}",
		"campaign_send_errors_total{cause=\"queue-full\"}",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in exposition:\n%s", want, out)
		}
	}
	checkGolden(t, "telemetry_metrics.prom", buf.Bytes())
}

func TestGoldenTelemetryChromeTrace(t *testing.T) {
	tel := goldenScenario(t)
	var buf bytes.Buffer
	if err := tel.Trc().WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// The trace must show all planes: arbitration, error frames,
	// fault-confinement transitions, ECU dispatch and the oracle firing.
	for _, want := range []string{
		`"cat": "arbitration"`,
		`"cat": "error"`,
		`"cat": "ecu"`,
		`"cat": "oracle"`,
		`"cat": "generator"`,
		`"name": "error-passive"`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %s in trace", want)
		}
	}
	checkGolden(t, "telemetry_trace.json", buf.Bytes())
}
