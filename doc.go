// Package repro is a from-scratch Go reproduction of "Fuzz Testing for
// Automotive Cyber-security" (Fowler, Bryans, Shaikh, Wooderson — DSN
// 2018): a CAN-bus fuzzer together with every substrate the paper's
// evaluation needs, all simulated deterministically on a virtual clock.
//
// The library is organised as small packages under internal/:
//
//   - clock: discrete-event virtual time
//   - can, bus: the CAN 2.0A protocol and a bit-accurate shared bus
//   - signal, isotp, uds: signal database and diagnostics stack
//   - ecu, engine, cluster, bcm, gateway, infotain: the simulated ECUs
//   - vehicle, testbench: the paper's two targets (car and 3-node bench)
//   - core, oracle, capture, analysis: the fuzzer, its test oracles,
//     traffic capture, and measurement tooling
//   - experiments: one harness per table and figure of the paper
//
// The root-level bench_test.go regenerates every table and figure; see
// DESIGN.md for the system inventory and EXPERIMENTS.md for measured
// results against the paper's numbers.
package repro
