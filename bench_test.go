package repro

// Benchmark harness: one testing.B benchmark per table and figure of the
// paper, plus the ablations from DESIGN.md §4. Each benchmark executes the
// corresponding experiment end-to-end on the simulated stack and reports
// the headline quantities via b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// regenerates the paper's evaluation. The expensive experiments honour
// REPRO_TABLE5_RUNS (default 12, the paper's run count) so CI can trim
// them.

import (
	"fmt"
	"os"
	"runtime"
	"strconv"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/fleet"
	"repro/internal/telemetry"
	"repro/internal/testbench"
)

// campaignBench is the standard one-virtual-second bench-fuzzing workload,
// built once and recycled with the world-reuse machinery: every op resets
// the scheduler, bench and campaign in place and replays the same seed.
// The optional telemetry plane makes it the telemetry-overhead yardstick:
// BenchmarkCampaign exercises the nil-receiver no-op hooks, and
// BenchmarkCampaignTelemetry the live counters and tracer.
type campaignBench struct {
	sched    *clock.Scheduler
	bench    *testbench.Bench
	tel      *telemetry.Telemetry
	campaign *core.Campaign
}

func newCampaignBench(tb testing.TB, tel *telemetry.Telemetry) *campaignBench {
	sched := clock.New()
	bench := testbench.New(sched, testbench.Config{AckUnlock: true})
	bench.Instrument(tel)
	var opts []core.Option
	if tel != nil {
		opts = append(opts, core.WithTelemetry(tel))
	}
	campaign, err := core.NewCampaign(sched, bench.AttachFuzzer("fuzzer"), core.Config{
		Seed: 7, Interval: time.Millisecond,
	}, opts...)
	if err != nil {
		tb.Fatal(err)
	}
	campaign.AddOracle(bench.UnlockOracle())
	return &campaignBench{sched: sched, bench: bench, tel: tel, campaign: campaign}
}

// run executes one virtual second of fuzzing on the recycled world.
func (cb *campaignBench) run() uint64 {
	cb.sched.Reset()
	cb.tel.Reset()
	cb.bench.Reset()
	cb.campaign.Reset(7)
	cb.campaign.Start()
	cb.sched.RunUntil(time.Second)
	cb.campaign.Stop()
	return cb.campaign.FramesSent()
}

// BenchmarkCampaign is the uninstrumented baseline: every telemetry hook
// compiled in but nil. Compare with BenchmarkCampaignTelemetry to bound
// the cost of the no-op path (budget: <5%).
func BenchmarkCampaign(b *testing.B) {
	cb := newCampaignBench(b, nil)
	b.ReportAllocs()
	b.ResetTimer()
	var frames uint64
	for i := 0; i < b.N; i++ {
		frames = cb.run()
	}
	b.ReportMetric(float64(frames), "frames")
}

// BenchmarkCampaignTelemetry runs the same campaign with metrics and the
// event tracer live.
func BenchmarkCampaignTelemetry(b *testing.B) {
	cb := newCampaignBench(b, telemetry.New(0))
	b.ReportAllocs()
	b.ResetTimer()
	var frames uint64
	for i := 0; i < b.N; i++ {
		frames = cb.run()
	}
	b.ReportMetric(float64(frames), "frames")
}

// table5Runs returns the per-variant run count for Table V style benches.
// An explicit REPRO_TABLE5_RUNS wins; otherwise -short trims the paper's
// 12 runs to 4.
func table5Runs() int {
	if s := os.Getenv("REPRO_TABLE5_RUNS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	if testing.Short() {
		return 4
	}
	return 12
}

// skipIfShort skips the benchmarks whose experiments must run multi-hour
// virtual campaigns to completion and so cannot be trimmed by run count.
func skipIfShort(b *testing.B) {
	if testing.Short() {
		b.Skip("skipping long virtual-time experiment in -short mode")
	}
}

func BenchmarkFigure1TestingMethods(b *testing.B) {
	var fuzzShare float64
	for i := 0; i < b.N; i++ {
		rows := experiments.Figure1()
		for _, r := range rows {
			if r.Method == "Fuzz testing" {
				fuzzShare = r.Share
			}
		}
	}
	b.ReportMetric(fuzzShare, "fuzzing-share-%")
}

func BenchmarkTable1FuzzingTools(b *testing.B) {
	var n int
	for i := 0; i < b.N; i++ {
		n = len(experiments.Table1())
	}
	b.ReportMetric(float64(n), "tools")
}

func BenchmarkTable2CapturedPackets(b *testing.B) {
	var rows int
	for i := 0; i < b.N; i++ {
		rows = len(experiments.Table2(1, 5*time.Second, 5))
	}
	b.ReportMetric(float64(rows), "rows")
}

func BenchmarkTable3FuzzSpace(b *testing.B) {
	var oneByteCombos uint64
	for i := 0; i < b.N; i++ {
		calcs := experiments.Table3Combinatorics()
		oneByteCombos = calcs[1].Combinations
	}
	b.ReportMetric(float64(oneByteCombos), "combos-1byte")
}

func BenchmarkTable4FuzzerOutput(b *testing.B) {
	var rows int
	for i := 0; i < b.N; i++ {
		rows = len(experiments.Table4(2, 6))
	}
	b.ReportMetric(float64(rows), "rows")
}

func BenchmarkFigure4VehicleByteMeans(b *testing.B) {
	var res experiments.ByteMeansResult
	for i := 0; i < b.N; i++ {
		res = experiments.Figure4(1, 100000)
	}
	b.ReportMetric(res.Overall, "overall-mean")
	b.ReportMetric(res.Spread, "spread")
}

func BenchmarkFigure5FuzzerByteMeans(b *testing.B) {
	var res experiments.ByteMeansResult
	for i := 0; i < b.N; i++ {
		res = experiments.Figure5(1, 66144)
	}
	b.ReportMetric(res.Overall, "overall-mean") // paper: 127
	b.ReportMetric(res.Spread, "spread")
	b.ReportMetric(res.Entropy, "entropy-bits")
	if !res.Uniform {
		b.Fatal("fuzzer output failed the uniformity check")
	}
}

func BenchmarkFigure6NormalSignals(b *testing.B) {
	var stddev float64
	for i := 0; i < b.N; i++ {
		res := experiments.Figure6(1, 10*time.Second)
		stddev = res.Get("DisplayedRPM").StdDev()
	}
	b.ReportMetric(stddev, "rpm-stddev")
}

func BenchmarkFigure7FuzzedSignals(b *testing.B) {
	var stddev, maxstep float64
	for i := 0; i < b.N; i++ {
		res := experiments.Figure7(1, 5*time.Second)
		rpm := res.Get("DisplayedRPM")
		stddev, maxstep = rpm.StdDev(), rpm.MaxStep()
	}
	b.ReportMetric(stddev, "rpm-stddev")
	b.ReportMetric(maxstep, "rpm-maxstep")
}

func BenchmarkFigure8InvalidValue(b *testing.B) {
	skipIfShort(b)
	var rpm float64
	var elapsed time.Duration
	for i := 0; i < b.N; i++ {
		res, ok := experiments.Figure8(1, 30*time.Minute)
		if !ok {
			b.Fatal("no negative RPM within deadline")
		}
		rpm, elapsed = res.NegativeRPM, res.Elapsed
	}
	b.ReportMetric(rpm, "displayed-rpm")
	b.ReportMetric(elapsed.Seconds(), "virtual-sec")
}

func BenchmarkFigure9ClusterCrash(b *testing.B) {
	skipIfShort(b)
	var res experiments.Fig9Result
	for i := 0; i < b.N; i++ {
		var ok bool
		res, ok = experiments.Figure9(1, 2*time.Hour)
		if !ok {
			b.Fatal("cluster did not crash within deadline")
		}
		if !res.CrashAfterPowerCycle || res.MILsAfterPowerCycle != 0 {
			b.Fatal("Fig 9 shape violated")
		}
	}
	b.ReportMetric(res.TimeToCrash.Seconds(), "virtual-sec-to-crash")
	b.ReportMetric(float64(res.MILsDuringFuzz), "mils")
	b.ReportMetric(float64(res.ChimesDuringFuzz), "chimes")
}

func BenchmarkTable5UnlockTimes(b *testing.B) {
	runs := table5Runs()
	var rows []experiments.Table5Row
	for i := 0; i < b.N; i++ {
		rows = experiments.Table5(100, runs, 12*time.Hour)
	}
	loose, strict := rows[0], rows[1]
	b.ReportMetric(loose.Stats.Mean().Seconds(), "mean-sec-byteonly")     // paper: 431
	b.ReportMetric(strict.Stats.Mean().Seconds(), "mean-sec-plus-length") // paper: 1959
	if loose.Stats.Mean() > 0 {
		b.ReportMetric(float64(strict.Stats.Mean())/float64(loose.Stats.Mean()), "slowdown-x")
	}
	b.Logf("Table V (%d runs/variant):", runs)
	for _, r := range rows {
		b.Logf("  %-36s times(s) %s mean %ds (timeouts %d)",
			r.Message, r.Stats.Seconds(), int(r.Stats.Mean()/time.Second), r.TimedOut)
	}
}

func BenchmarkAblationTargetedVsBlind(b *testing.B) {
	runs := table5Runs()
	if runs > 6 {
		runs = 6 // blind runs dominate; 6 is plenty for the mean
	}
	var res experiments.TargetedVsBlindResult
	for i := 0; i < b.N; i++ {
		res = experiments.AblationTargetedVsBlind(200, runs, 12*time.Hour)
	}
	b.ReportMetric(res.SpeedupMean, "speedup-x")
	b.ReportMetric(res.Blind.Mean().Seconds(), "blind-mean-sec")
	b.ReportMetric(res.Targeted.Mean().Seconds(), "targeted-mean-sec")
}

func BenchmarkAblationOracleStrictness(b *testing.B) {
	runs := table5Runs()
	var rows []experiments.Table5Row
	for i := 0; i < b.N; i++ {
		rows = experiments.AblationOracleStrictness(300, runs, 12*time.Hour)
	}
	for _, r := range rows {
		b.Logf("  %-40s mean %v (timeouts %d)", r.Message, r.Stats.Mean().Round(time.Millisecond), r.TimedOut)
	}
	if rows[0].Stats.Mean() > 0 {
		b.ReportMetric(float64(rows[2].Stats.Mean())/float64(rows[0].Stats.Mean()), "twobyte-vs-byte-x")
	}
}

func BenchmarkAblationPacing(b *testing.B) {
	skipIfShort(b)
	intervals := []time.Duration{
		time.Millisecond, 2 * time.Millisecond, 5 * time.Millisecond,
	}
	var res []experiments.PacingResult
	for i := 0; i < b.N; i++ {
		res = experiments.AblationPacing(3, intervals, 24*time.Hour)
	}
	for _, r := range res {
		b.Logf("  interval %-6v time-to-unlock %-12v bus-load %.3f",
			r.Interval, r.TimeToUnlock.Round(time.Second), r.BusLoad)
	}
	if res[0].TimeToUnlock > 0 {
		b.ReportMetric(res[0].BusLoad, "load-at-1ms")
	}
}

func BenchmarkAblationGateway(b *testing.B) {
	var res experiments.GatewayResult
	for i := 0; i < b.N; i++ {
		res = experiments.AblationGateway(5, time.Hour)
		if !res.ForwardAllUnlocked || res.AllowListUnlocked {
			b.Fatal("gateway ablation shape violated")
		}
	}
	b.ReportMetric(res.ForwardAllTime.Seconds(), "forwardall-unlock-sec")
	b.ReportMetric(float64(res.AllowListBlocked), "allowlist-blocked-frames")
}

func BenchmarkAblationAuthentication(b *testing.B) {
	var res experiments.AuthResult
	for i := 0; i < b.N; i++ {
		res = experiments.AblationAuthentication(9, 30*time.Minute)
		if res.AuthUnlocked || !res.PlainUnlocked || !res.LegitWorks {
			b.Fatal("authentication ablation shape violated")
		}
	}
	b.ReportMetric(res.PlainTime.Seconds(), "plain-unlock-sec")
	b.ReportMetric(float64(res.AuthFramesTried), "hardened-frames-survived")
}

func BenchmarkAblationCANFD(b *testing.B) {
	var res experiments.FDTransferResult
	for i := 0; i < b.N; i++ {
		res = experiments.AblationCANFD(4096)
	}
	b.ReportMetric(res.Speedup, "fd-speedup-x")
	b.ReportMetric(res.ClassicTime.Seconds()*1000, "classic-ms")
	b.ReportMetric(res.FDTime.Seconds()*1000, "fd-ms")
}

func BenchmarkAblationDataLinkFuzz(b *testing.B) {
	var res experiments.DataLinkResult
	for i := 0; i < b.N; i++ {
		res = experiments.AblationDataLinkFuzz(4, 10*time.Second)
		if !res.VictimErrorPassive {
			b.Fatal("data-link fuzz failed to degrade the victim")
		}
	}
	b.ReportMetric(float64(res.ErrorFrames), "error-frames")
	b.ReportMetric(float64(res.StillValid), "still-valid-frames")
}

func BenchmarkAblationIDS(b *testing.B) {
	var res experiments.IDSResult
	for i := 0; i < b.N; i++ {
		res = experiments.AblationIDS(6)
		if res.FalsePositives != 0 || res.DetectionLatency == 0 {
			b.Fatal("IDS ablation shape violated")
		}
	}
	b.ReportMetric(res.DetectionLatency.Seconds()*1000, "detect-latency-ms")
	b.ReportMetric(float64(res.FramesBeforeDetection), "fuzz-frames-tolerated")
}

// fleetTable5Factory builds the Table V workload for the fleet benchmark:
// one full blind bench-unlock world per trial.
func fleetTable5Factory(spec fleet.TrialSpec) (*fleet.World, error) {
	exp, err := testbench.NewUnlockExperiment(testbench.Config{}, core.Config{Seed: spec.Seed})
	if err != nil {
		return nil, err
	}
	return &fleet.World{
		Sched:    exp.Bench.Scheduler(),
		Campaign: exp.Campaign,
		Reset:    func(ts fleet.TrialSpec) error { exp.Reset(ts.Seed); return nil },
	}, nil
}

// BenchmarkFleet measures fleet scaling on the Table V workload: the same
// trial set at 1, 2, 4 and NumCPU workers. Per-trial results are identical
// at every width (the determinism guarantee), so the trials/sec metric
// isolates pure orchestration speedup — expect near-linear scaling until
// the trial count stops dividing evenly across the pool.
func BenchmarkFleet(b *testing.B) {
	trials := table5Runs()
	widths := []int{1, 2, 4, runtime.NumCPU()}
	seen := map[int]bool{}
	for _, workers := range widths {
		if workers < 1 || seen[workers] {
			continue
		}
		seen[workers] = true
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			// The pool carries reset-capable worlds across iterations, so
			// after the first run every trial recycles a warm world — the
			// production shape for repeated fleets over one target config.
			pool := &fleet.WorldPool{}
			var rep *fleet.Report
			for i := 0; i < b.N; i++ {
				var err error
				rep, err = fleet.Run(fleet.Config{
					Trials:      trials,
					Workers:     workers,
					BaseSeed:    100,
					MaxPerTrial: 12 * time.Hour,
					Pool:        pool,
				}, fleetTable5Factory)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(rep.FoundFindings), "findings")
			b.ReportMetric(rep.VirtualTimeTotal.Seconds(), "virtual-sec")
			b.ReportMetric(float64(trials)*float64(b.N)/b.Elapsed().Seconds(), "trials/s")
		})
	}
}
