package repro

// End-to-end integration test following the paper's narrative in order:
// develop the fuzzer against the simulator, verify its output integrity,
// fuzz the bench-mounted instrument cluster (and damage it), cautiously
// fuzz the target vehicle, then run the bench-top unlock experiment — all
// in one deterministic virtual-time session per stage.

import (
	"testing"
	"time"

	"repro/internal/bcm"
	"repro/internal/bus"
	"repro/internal/capture"
	"repro/internal/clock"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/ecu"
	"repro/internal/oracle"
	"repro/internal/signal"
	"repro/internal/testbench"
	"repro/internal/vehicle"
)

func TestPaperNarrativeEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("full narrative simulates hours of virtual fuzzing")
	}

	// Stage 1 — §VI/Fig 5: the fuzzer's own output passes the integrity
	// check (flat byte distribution, overall mean ~127).
	gen, err := core.NewGenerator(core.Config{Seed: 20180601})
	if err != nil {
		t.Fatal(err)
	}
	means := newByteMeans(t, gen, 66144)
	if means.overall < 125 || means.overall > 130 {
		t.Fatalf("stage 1: fuzzer output mean %v, want ~127", means.overall)
	}

	// Stage 2 — Fig 9: bench-fuzz the instrument cluster until it crashes;
	// the crash survives a power cycle, the MILs do not.
	sched := clock.New()
	b := bus.New(sched)
	clusterECU := ecu.New("cluster", sched, b.Connect("cluster"))
	c := cluster.New(clusterECU)
	campaign, err := core.NewCampaign(sched, b.Connect("fuzzer"),
		core.Config{Seed: 20180602}, core.WithStopOnFinding())
	if err != nil {
		t.Fatal(err)
	}
	campaign.AddOracle(oracle.Display("camera", 10*time.Millisecond, c.DisplayText, c.DisplayText()))
	if _, ok := campaign.RunUntilFinding(2 * time.Hour); !ok {
		t.Fatal("stage 2: cluster never crashed")
	}
	clusterECU.PowerCycle()
	if len(clusterECU.MILs()) != 0 || !c.Crashed() {
		t.Fatal("stage 2: Fig 9 persistence shape violated")
	}

	// Stage 3 — §VI: cautious, targeted fuzzing of the shared target
	// vehicle. Capture traffic first, fuzz only observed identifiers, stop
	// at the first significant effect.
	vsched := clock.New()
	v := vehicle.New(vsched, vehicle.Config{Seed: 20180603})
	rec := capture.NewRecorder(v.Body, 0)
	vsched.RunUntil(3 * time.Second)
	observed := rec.Trace().IDs()
	if len(observed) < 5 {
		t.Fatalf("stage 3: only %d identifiers captured", len(observed))
	}
	vcampaign, err := core.NewCampaign(vsched, v.AttachOBD(vehicle.OBDBody, "fuzzer"),
		core.Config{Seed: 20180604, TargetIDs: observed}, core.WithStopOnFinding())
	if err != nil {
		t.Fatal(err)
	}
	vcampaign.AddOracle(&oracle.SignalRange{DB: signal.VehicleDB()})
	finding, ok := vcampaign.RunUntilFinding(10 * time.Minute)
	if !ok {
		t.Fatal("stage 3: targeted fuzzing had no observable effect")
	}
	if finding.Verdict.Oracle != "signal-range" {
		t.Fatalf("stage 3: oracle = %q", finding.Verdict.Oracle)
	}
	if chimes := v.Cluster.ECU().Chimes(); chimes == 0 {
		t.Fatal("stage 3: no warning sounds despite signal-range finding")
	}

	// Stage 4 — Table V: the bench-top unlock, loose then strict parser,
	// same seed: the strict parser can never be faster.
	seeds := int64(20180605)
	loose, err := testbench.NewUnlockExperiment(
		testbench.Config{Check: bcm.CheckByteOnly}, core.Config{Seed: seeds})
	if err != nil {
		t.Fatal(err)
	}
	tLoose, ok := loose.Run(12 * time.Hour)
	if !ok {
		t.Fatal("stage 4: loose parser never unlocked")
	}
	strict, err := testbench.NewUnlockExperiment(
		testbench.Config{Check: bcm.CheckByteAndLength}, core.Config{Seed: seeds})
	if err != nil {
		t.Fatal(err)
	}
	tStrict, ok := strict.Run(24 * time.Hour)
	if !ok {
		t.Fatal("stage 4: strict parser never unlocked")
	}
	if tStrict < tLoose {
		t.Fatalf("stage 4: strict (%v) beat loose (%v) on the same stream", tStrict, tLoose)
	}
	t.Logf("narrative complete: cluster crash reproduced; targeted vehicle finding after %v; unlock %v (loose) vs %v (strict)",
		finding.Elapsed.Round(time.Millisecond), tLoose.Round(time.Second), tStrict.Round(time.Second))
}

// byteMeansSummary is a tiny local helper for stage 1.
type byteMeansSummary struct{ overall float64 }

func newByteMeans(t *testing.T, gen *core.Generator, n int) byteMeansSummary {
	t.Helper()
	var sum float64
	var count uint64
	for i := 0; i < n; i++ {
		f := gen.Next()
		for _, by := range f.Data[:f.Len] {
			sum += float64(by)
			count++
		}
	}
	if count == 0 {
		t.Fatal("no payload bytes generated")
	}
	return byteMeansSummary{overall: sum / float64(count)}
}

// TestVehicleSurvivesSustainedBlindFuzz is the paper's availability test:
// two virtual minutes of full-space fuzzing leave the vehicle degraded
// (MILs, chimes) but the simulation itself never deadlocks or panics and
// legitimate traffic keeps flowing.
func TestVehicleSurvivesSustainedBlindFuzz(t *testing.T) {
	if testing.Short() {
		t.Skip("sustained fuzz run")
	}
	sched := clock.New()
	v := vehicle.New(sched, vehicle.Config{Seed: 5})
	campaign, err := core.NewCampaign(sched, v.AttachOBD(vehicle.OBDBody, "fuzzer"),
		core.Config{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	before := v.Body.Stats().FramesDelivered
	campaign.Start()
	sched.RunUntil(2 * time.Minute)
	campaign.Stop()
	if v.Cluster.ECU().Chimes() == 0 {
		t.Fatal("no audible warnings after two minutes of fuzzing")
	}
	delivered := v.Body.Stats().FramesDelivered - before
	// ~250 legit + 1000 fuzz frames per second for 120 s.
	if delivered < 100000 {
		t.Fatalf("only %d frames delivered; bus stalled?", delivered)
	}
	// Legitimate periodic traffic still flows after the attack stops.
	engineFrames := 0
	v.TapOBD(vehicle.OBDPowertrain, func(m bus.Message) {
		if m.Frame.ID == signal.IDEngineData {
			engineFrames++
		}
	})
	sched.RunFor(time.Second)
	if engineFrames < 90 {
		t.Fatalf("EngineData rate degraded to %d/s after fuzzing stopped", engineFrames)
	}
}
