package repro

// The golden regression suite: testdata/regress/ is a committed findings
// database — the seeded bench unlock finding plus a chaos watchdog
// finding — and this test replays every record through findings.RunSuite,
// asserting the original oracles still fire against the current tree.
// This is the go-test-integrable driver of the canregress pipeline: the
// same records `canregress run -db testdata/regress` replays, wired into
// tier-1 so a behaviour change that silences a stored finding fails
// `go test ./...` immediately.
//
// Regenerate the database (and review the diff!) with:
//
//	go test -run TestRegress -update .

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/findings"
)

// regressRecords are the canonical golden findings.
func regressRecords() []findings.Record {
	watchdogCfg := core.ConfigJSON{
		Seed:           1,
		IDMin:          0x300,
		IDMax:          0x400,
		IntervalMicros: 1000,
	}
	return []findings.Record{
		{
			// The paper's seeded defect: CmdUnlock 0x20 on identifier 0x215
			// unlocks the bench BCM under the byte-only parser.
			Oracle:         "unlock-ack",
			Detail:         "matched frame 0533 2 AC 01",
			Target:         "bench",
			BCMCheck:       "byte",
			Trigger:        []string{"215#20"},
			Seed:           7,
			IntervalMicros: 1000,
			SettleMillis:   150,
			Mode:           "guided",
			Sources:        []string{"canfuzz"},
			Campaigns:      []string{"golden-unlock"},
		},
		{
			// An environmental finding: a 2-second stuck-dominant jam starves
			// the bus until the dead-bus watchdog fires. Stored as a generator
			// record — replay re-runs the generator under the chaos plan.
			Oracle:         "watchdog",
			Detail:         "bus dead: no progress within 250ms",
			Target:         "bench",
			BCMCheck:       "byte",
			Chaos:          "seed=1;jam(at=100ms,for=2s)",
			Seed:           1,
			DeadlineMillis: 1500,
			Config:         &watchdogCfg,
			Mode:           "random",
			Sources:        []string{"canfuzz"},
			Campaigns:      []string{"golden-watchdog"},
		},
	}
}

// TestRegressGoldenSuite replays the committed findings database and
// requires 100% pass.
func TestRegressGoldenSuite(t *testing.T) {
	dir := filepath.Join("testdata", "regress")
	if *updateGolden {
		if err := os.RemoveAll(dir); err != nil {
			t.Fatal(err)
		}
		db, err := findings.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := db.MergeAll(regressRecords()); err != nil {
			t.Fatal(err)
		}
	}

	db, err := findings.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := db.Load()
	if err != nil {
		t.Fatal(err)
	}
	if want := len(regressRecords()); len(recs) != want {
		t.Fatalf("golden DB holds %d records, want %d (regenerate with -update)", len(recs), want)
	}

	rep := findings.RunSuite(recs, findings.SuiteConfig{Workers: 2, Attempts: 2})
	for _, res := range rep.Results {
		if res.Outcome != findings.OutcomePass {
			t.Errorf("golden finding %s [%s]: outcome %s (observed %q %q, err %q)",
				res.Key, res.Oracle, res.Outcome, res.ObservedOracle, res.ObservedDetail, res.Err)
		}
	}
	if !rep.OK() || rep.Pass != rep.Records {
		t.Fatalf("golden regression suite not 100%% pass: %d/%d pass, %d fail, %d flaky, %d errors",
			rep.Pass, rep.Records, rep.Fail, rep.Flaky, rep.Errors)
	}
}
