// Unlockhunt reproduces the paper's bench-top experiment end-to-end (Figs
// 10-13 and Table V): a three-node testbed carrying a smartphone-app
// remote unlock feature is fuzzed blind until the doors open, under both
// of Table V's BCM parser variants.
//
// Run with: go run ./examples/unlockhunt [-runs 5]
package main

import (
	"flag"
	"fmt"
	"time"

	"repro/internal/analysis"
	"repro/internal/bcm"
	"repro/internal/core"
	"repro/internal/testbench"
)

func main() {
	runs := flag.Int("runs", 5, "fuzz runs per parser variant (paper: 12)")
	baseSeed := flag.Int64("seed", 431, "base seed; run i uses seed+i")
	flag.Parse()

	// First show normal operation: the paired app unlocks via the head
	// unit (Fig 13's PC app).
	demoNormalOperation()

	// Then the attack: a fuzzer with no knowledge of the command message.
	for _, check := range []bcm.CheckMode{bcm.CheckByteOnly, bcm.CheckByteAndLength} {
		var stats analysis.RunStats
		for i := 0; i < *runs; i++ {
			exp, err := testbench.NewUnlockExperiment(
				testbench.Config{Check: check},
				core.Config{Seed: *baseSeed + int64(i)},
			)
			if err != nil {
				panic(err)
			}
			elapsed, ok := exp.Run(12 * time.Hour)
			if !ok {
				fmt.Printf("  run %d: timed out\n", i+1)
				continue
			}
			stats.Times = append(stats.Times, elapsed)
			fmt.Printf("  run %d: unlocked after %v (%d frames)\n",
				i+1, elapsed.Round(time.Second), exp.Campaign.FramesSent())
		}
		fmt.Printf("BCM check %q: times(s) %s -> mean %v\n\n",
			check, stats.Seconds(), stats.Mean().Round(time.Second))
	}
}

func demoNormalOperation() {
	exp, err := testbench.NewUnlockExperiment(testbench.Config{}, core.Config{Seed: 1})
	if err != nil {
		panic(err)
	}
	bench := exp.Bench
	sched := bench.Scheduler()
	if err := bench.HeadUnit.AppUnlock(testbench.AppToken); err != nil {
		panic(err)
	}
	sched.RunFor(100 * time.Millisecond)
	fmt.Printf("app unlock: LED on = %v (normal operation)\n", bench.BCM.Unlocked())
	if err := bench.HeadUnit.AppLock(testbench.AppToken); err != nil {
		panic(err)
	}
	sched.RunFor(100 * time.Millisecond)
	fmt.Printf("app lock:   LED on = %v\n\n", bench.BCM.Unlocked())
}
