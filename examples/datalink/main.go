// Datalink demonstrates the paper's two §VII protocol-level future-work
// items on one bench:
//
//  1. bit-level fuzzing of the data link layer — corrupted wire sequences
//     become error frames and push a victim ECU out of error-active,
//     an availability attack that never delivers a single valid frame;
//  2. CAN FD — the same fuzz technique against an FD-capable ECU, plus
//     the bulk-transfer speedup bit-rate switching buys.
//
// Run with: go run ./examples/datalink
package main

import (
	"fmt"
	"time"

	"repro/internal/bus"
	"repro/internal/can"
	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/ecu"
)

func main() {
	bitLevelAttack()
	fdFuzzing()
	fdBulkTransfer()
}

// bitLevelAttack shows corrupted wire bits degrading a healthy node.
func bitLevelAttack() {
	sched := clock.New()
	b := bus.New(sched)
	victim := ecu.New("victim", sched, b.Connect("victim"))
	victim.HandleAll(func(bus.Message) {})

	port := b.Connect("bitfuzzer")
	bf := core.NewBitFuzzer(sched, port, core.BitFuzzConfig{Seed: 1})
	bf.Start()
	sched.Every(25*time.Millisecond, port.ResetErrors) // malicious node self-resets
	sched.RunUntil(5 * time.Second)
	bf.Stop()

	st := bf.Stats()
	_, rec := victim.Port().ErrorCounters()
	fmt.Printf("bit-level fuzz, 5s: %d injected, %d error frames, %d still valid\n",
		st.Injected, st.ErrorFrames, st.Delivered)
	fmt.Printf("victim: %v (REC %d) without receiving one valid frame\n\n",
		victim.Port().State(), rec)
}

// fdFuzzing finds a hidden command in an FD-only ECU.
func fdFuzzing() {
	sched := clock.New()
	b := bus.New(sched, bus.WithFDDataBitrate(bus.DefaultFDDataBitrate))
	sut := b.Connect("fd-ecu")
	sut.SetFDReceiver(func(m bus.FDMessage) {
		// Hidden diagnostic trigger deep in a 48-byte FD payload.
		if m.Frame.ID == 0x480 && m.Frame.Len >= 48 && m.Frame.Data[40] == 0xD7 {
			sut.Send(can.MustNew(0x481, []byte{0xAC}))
		}
	})

	port := b.Connect("fdfuzzer")
	found := false
	var foundAfter time.Duration
	port.SetReceiver(func(m bus.Message) {
		if m.Frame.ID == 0x481 && !found {
			found = true
			foundAfter = sched.Now()
			sched.Stop()
		}
	})
	fuzzer, err := core.NewFDFuzzer(sched, port, core.FDFuzzConfig{
		Seed:      7,
		TargetIDs: []can.ID{0x480},
		Sizes:     []int{48},
	})
	if err != nil {
		panic(err)
	}
	fuzzer.Start()
	sched.RunUntil(10 * time.Minute)
	fuzzer.Stop()
	if found {
		fmt.Printf("FD fuzzing: hidden trigger found after %v (%d frames)\n\n",
			foundAfter.Round(time.Millisecond), fuzzer.Sent())
	} else {
		fmt.Printf("FD fuzzing: no hit in 10 virtual minutes (%d frames)\n\n", fuzzer.Sent())
	}
}

// fdBulkTransfer compares wire time for a 4 KiB payload.
func fdBulkTransfer() {
	const volume = 4096
	chunk := make([]byte, can.MaxDataLen)
	classic := time.Duration(0)
	f := can.MustNew(0x100, chunk)
	perClassic := time.Duration(can.WireBitsWithIFS(f)) * time.Second / 500_000
	classic = time.Duration(volume/can.MaxDataLen) * perClassic

	fdFrame := can.MustNewFD(0x100, make([]byte, can.MaxFDDataLen), true)
	perFD := can.FDWireTime(fdFrame, 500_000, 2_000_000)
	fd := time.Duration(volume/can.MaxFDDataLen) * perFD

	fmt.Printf("moving %d bytes: classic CAN %v, CAN FD (BRS@2M) %v — %.1fx faster\n",
		volume, classic.Round(time.Microsecond), fd.Round(time.Microsecond),
		float64(classic)/float64(fd))
}
