// Targeted demonstrates the paper's §VII recommendation on the full
// simulated vehicle: capture traffic to learn the identifiers in use, then
// fuzz "in a specific message space, close to known messages" instead of
// the whole 2048-ID space — and watch the effect on the instrument cluster
// and door locks.
//
// Run with: go run ./examples/targeted
package main

import (
	"fmt"
	"time"

	"repro/internal/capture"
	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/oracle"
	"repro/internal/signal"
	"repro/internal/vehicle"
)

func main() {
	sched := clock.New()
	v := vehicle.New(sched, vehicle.Config{Seed: 3, BCMAckUnlock: true})

	// Step 1 — reconnaissance, exactly as the paper describes: "capture
	// the network packets while operating a vehicle feature".
	rec := capture.NewRecorder(v.Body, 0)
	sched.RunUntil(5 * time.Second)
	v.HeadUnit.AppUnlock(vehicle.AppToken) // operate the feature
	sched.RunFor(time.Second)
	v.HeadUnit.AppLock(vehicle.AppToken)
	sched.RunFor(time.Second)

	ids := rec.Trace().IDs()
	fmt.Printf("captured %d frames, %d distinct identifiers: %v\n",
		rec.Trace().Len(), len(ids), ids)

	// Step 2 — targeted fuzz around the observed identifiers only.
	cfg := core.Config{Seed: 77, TargetIDs: ids}
	fmt.Printf("targeted space: %d frames (blind space: %d)\n",
		cfg.SpaceSize(), core.Config{}.SpaceSize())

	campaign, err := core.NewCampaign(sched, v.AttachOBD(vehicle.OBDBody, "fuzzer"), cfg,
		core.WithStopOnFinding())
	if err != nil {
		panic(err)
	}
	campaign.AddOracle(oracle.Physical("door-lock", 10*time.Millisecond,
		v.BCM.Unlocked, false, "doors unlocked by fuzzing"))
	campaign.AddOracle(&oracle.SignalRange{DB: signal.VehicleDB()})

	finding, ok := campaign.RunUntilFinding(time.Hour)
	if !ok {
		fmt.Println("no finding within an hour")
		return
	}
	fmt.Printf("finding: [%s] %s after %v (%d frames)\n",
		finding.Verdict.Oracle, finding.Verdict.Detail,
		finding.Elapsed.Round(time.Millisecond), finding.FramesSent)
	fmt.Printf("cluster during the run: RPM %.1f, MILs %v, chimes %d\n",
		v.Cluster.DisplayedRPM(), v.Cluster.ECU().MILs(), v.Cluster.ECU().Chimes())
}
