// Quickstart: build a two-node CAN bus, attach the fuzzer, and find the
// hidden unlock command of a toy ECU in a few virtual minutes.
//
// This is the smallest end-to-end use of the library: a scheduler, a bus,
// one ECU with a parsing weakness, a fuzz campaign with a network oracle.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"time"

	"repro/internal/bus"
	"repro/internal/can"
	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/ecu"
	"repro/internal/oracle"
)

// secretID and secretByte are the toy ECU's undocumented activation
// command. The fuzzer is not told about them.
const (
	secretID   can.ID = 0x3C0
	secretByte byte   = 0x77
)

func main() {
	// Everything runs on a deterministic virtual clock: hours of fuzzing
	// finish in wall-clock seconds.
	sched := clock.New()
	b := bus.New(sched) // 500 kb/s CAN

	// A minimal ECU: replies with an acknowledgement when it sees its
	// secret activation byte on its command identifier.
	dut := ecu.New("dut", sched, b.Connect("dut"))
	dut.Handle(secretID, func(m bus.Message) {
		if m.Frame.Len >= 1 && m.Frame.Data[0] == secretByte {
			_ = dut.Send(can.MustNew(0x3C1, []byte{0xAC}))
		}
	})

	// The fuzzer: full Table III space, 1 ms pacing, seeded for
	// reproducibility, stopping at the first finding.
	campaign, err := core.NewCampaign(sched, b.Connect("fuzzer"),
		core.Config{Seed: 42},
		core.WithStopOnFinding(),
	)
	if err != nil {
		panic(err)
	}

	// Network oracle: fire when the acknowledgement appears.
	campaign.AddOracle(&oracle.Ack{
		OracleName: "activation-ack",
		Once:       true,
		Match: func(f can.Frame) bool {
			return f.ID == 0x3C1 && f.Len >= 1 && f.Data[0] == 0xAC
		},
	})

	fmt.Printf("search space: %d distinct frames\n", campaign.Generator().Config().SpaceSize())
	finding, ok := campaign.RunUntilFinding(24 * time.Hour)
	if !ok {
		fmt.Println("no finding within 24 virtual hours")
		return
	}
	fmt.Printf("found the hidden command after %v (%d frames)\n",
		finding.Elapsed.Round(time.Millisecond), finding.FramesSent)
	fmt.Println("frames transmitted just before the oracle fired:")
	for _, f := range finding.Recent {
		fmt.Println(" ", f)
	}
}
