// Clusterfuzz reproduces the paper's instrument-cluster bench experiment
// (§VI, Fig 9): fuzz a bench-mounted cluster until it shows MILs, sounds
// warnings, and latches a persistent "CRASH" display that a power cycle
// cannot clear — then clear it the way a service tool would, through a
// secured UDS write.
//
// Run with: go run ./examples/clusterfuzz
package main

import (
	"fmt"
	"time"

	"repro/internal/bus"
	"repro/internal/clock"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/ecu"
	"repro/internal/isotp"
	"repro/internal/oracle"
	"repro/internal/signal"
	"repro/internal/uds"
)

func main() {
	sched := clock.New()
	b := bus.New(sched)

	// The bench: one instrument cluster with its UDS diagnostic server.
	clusterECU := ecu.New("cluster", sched, b.Connect("cluster"))
	c := cluster.New(clusterECU)
	var server *uds.Server
	serverEP := isotp.NewEndpoint(sched, clusterECU.Send,
		signal.IDDiagResponse, signal.IDDiagRequest,
		isotp.Config{}, func(req []byte) { server.HandleRequest(req) })
	server = uds.NewServer(clusterECU, serverEP, uds.ServerConfig{DIDs: c.DIDEntries()})
	clusterECU.Handle(signal.IDDiagRequest, serverEP.HandleFrame)

	// The fuzzer with a crash probe (XCP-style internal state oracle).
	campaign, err := core.NewCampaign(sched, b.Connect("fuzzer"),
		core.Config{Seed: 9}, core.WithStopOnFinding())
	if err != nil {
		panic(err)
	}
	campaign.AddOracle(&oracle.Probe{
		OracleName: "cluster-crash", Interval: 10 * time.Millisecond, Once: true,
		Check: func() string {
			if c.Crashed() {
				return "persistent CRASH display latched"
			}
			return ""
		},
	})

	finding, ok := campaign.RunUntilFinding(2 * time.Hour)
	if !ok {
		fmt.Println("cluster survived 2 virtual hours of fuzzing")
		return
	}
	fmt.Printf("cluster crashed after %v (%d frames)\n",
		finding.Elapsed.Round(time.Millisecond), finding.FramesSent)
	fmt.Printf("MILs lit: %v, warning chimes: %d\n", clusterECU.MILs(), clusterECU.Chimes())

	// The paper's observation: power cycling clears the MILs, not the crash.
	clusterECU.PowerCycle()
	sched.RunFor(time.Second)
	fmt.Printf("after power cycle: MILs %v, crash persists: %v\n",
		clusterECU.MILs(), c.Crashed())

	// Extension beyond the paper: the service-tool fix. The crash flag
	// lives behind a secured UDS DID: extended session + seed/key unlock,
	// then write 0.
	fixWithServiceTool(sched, b, c)
	fmt.Printf("after UDS service fix: crash persists: %v\n", c.Crashed())
}

// fixWithServiceTool connects a UDS tester and performs the secured write
// that clears the cluster's EEPROM crash flag.
func fixWithServiceTool(sched *clock.Scheduler, b *bus.Bus, c *cluster.Cluster) {
	port := b.Connect("service-tool")
	var client *uds.Client
	ep := isotp.NewEndpoint(sched, port.Send,
		signal.IDDiagRequest, signal.IDDiagResponse,
		isotp.Config{}, func(resp []byte) { client.HandleResponse(resp) })
	client = uds.NewClient(sched, ep)
	port.SetReceiver(ep.HandleFrame)

	keyFromSeed := func(seed []byte) []byte {
		key := make([]byte, len(seed))
		for i, s := range seed {
			key[i] = s ^ 0x5A // the (deliberately weak) OEM algorithm
		}
		return key
	}
	client.ChangeSession(uds.SessionExtended, func(_ []byte, err error) {
		if err != nil {
			fmt.Println("session change failed:", err)
			return
		}
		client.Unlock(0x01, keyFromSeed, func(_ []byte, err error) {
			if err != nil {
				fmt.Println("security access failed:", err)
				return
			}
			client.WriteDID(cluster.DIDCrashFlag, []byte{0}, func(_ []byte, err error) {
				if err != nil {
					fmt.Println("write failed:", err)
				}
			})
		})
	})
	sched.RunFor(2 * time.Second)
}
