// Package gateway models a central gateway ECU bridging two CAN buses with
// per-direction forwarding rules.
//
// The paper notes that "the use of a gateway ECU in newer vehicles
// indicates that manufacturers are responding to the issue" (§VII) and
// lists testing the effectiveness of "vehicle firewalls and gateways" as
// future work. The ablation benchmark uses this package to show that an
// allow-list gateway between the OBD-exposed bus and the body bus defeats
// the blind unlock fuzz entirely.
package gateway

import (
	"repro/internal/bus"
	"repro/internal/can"
)

// Policy decides whether a frame may cross in a given direction.
type Policy int

const (
	// ForwardAll passes every frame (the legacy, pre-security behaviour).
	ForwardAll Policy = iota + 1
	// AllowList passes only explicitly allowed identifiers.
	AllowList
	// BlockAll passes nothing in that direction.
	BlockAll
)

// Direction identifies one of the two forwarding directions.
type Direction int

const (
	// AToB forwards frames received on bus A onto bus B.
	AToB Direction = iota + 1
	// BToA forwards frames received on bus B onto bus A.
	BToA
)

// Stats counts gateway activity per direction.
type Stats struct {
	// Forwarded counts frames passed through.
	Forwarded uint64
	// Blocked counts frames dropped by policy.
	Blocked uint64
}

type side struct {
	port    *bus.Port
	policy  Policy
	allowed map[can.ID]bool
	stats   Stats
}

// Gateway bridges two buses. Frames received on one side are re-transmitted
// on the other, subject to the direction's policy. The gateway never
// re-forwards its own transmissions (the origin check prevents loops).
type Gateway struct {
	name string
	a, b *side
}

// New creates a gateway between two buses. Both directions default to
// ForwardAll.
func New(name string, busA, busB *bus.Bus) *Gateway {
	g := &Gateway{
		name: name,
		a:    &side{policy: ForwardAll, allowed: make(map[can.ID]bool)},
		b:    &side{policy: ForwardAll, allowed: make(map[can.ID]bool)},
	}
	g.a.port = busA.Connect(name)
	g.b.port = busB.Connect(name)
	g.a.port.SetReceiver(func(m bus.Message) { g.forward(g.a, g.b, m) })
	g.b.port.SetReceiver(func(m bus.Message) { g.forward(g.b, g.a, m) })
	return g
}

// SetPolicy configures one direction's policy.
func (g *Gateway) SetPolicy(dir Direction, p Policy) {
	g.sideFor(dir).policy = p
}

// Allow adds identifiers to a direction's allow-list (used with AllowList).
func (g *Gateway) Allow(dir Direction, ids ...can.ID) {
	s := g.sideFor(dir)
	for _, id := range ids {
		s.allowed[id] = true
	}
}

// Stats returns the counters for a direction.
func (g *Gateway) Stats(dir Direction) Stats { return g.sideFor(dir).stats }

// sideFor maps a direction to its receiving side.
func (g *Gateway) sideFor(dir Direction) *side {
	if dir == AToB {
		return g.a
	}
	return g.b
}

func (g *Gateway) forward(from, to *side, m bus.Message) {
	if m.Origin == g.name {
		return // own transmission echoed by topology quirks; never loop
	}
	switch from.policy {
	case BlockAll:
		from.stats.Blocked++
		return
	case AllowList:
		if !from.allowed[m.Frame.ID] {
			from.stats.Blocked++
			return
		}
	}
	if err := to.port.Send(m.Frame); err != nil {
		from.stats.Blocked++
		return
	}
	from.stats.Forwarded++
}
