package gateway

import (
	"testing"
	"time"

	"repro/internal/bus"
	"repro/internal/can"
	"repro/internal/clock"
)

func rig(t *testing.T) (*clock.Scheduler, *bus.Bus, *bus.Bus, *Gateway) {
	t.Helper()
	s := clock.New()
	a := bus.New(s)
	b := bus.New(s)
	g := New("gw", a, b)
	return s, a, b, g
}

func TestForwardAllBothDirections(t *testing.T) {
	s, a, b, _ := rig(t)
	pa := a.Connect("nodeA")
	pb := b.Connect("nodeB")
	var onB, onA []can.ID
	pb.SetReceiver(func(m bus.Message) { onB = append(onB, m.Frame.ID) })
	pa.SetReceiver(func(m bus.Message) { onA = append(onA, m.Frame.ID) })
	pa.Send(can.MustNew(0x100, []byte{1}))
	pb.Send(can.MustNew(0x200, []byte{2}))
	s.RunUntil(time.Second)
	if len(onB) != 1 || onB[0] != 0x100 {
		t.Fatalf("bus B saw %v", onB)
	}
	if len(onA) != 1 || onA[0] != 0x200 {
		t.Fatalf("bus A saw %v", onA)
	}
}

func TestNoForwardingLoop(t *testing.T) {
	s, a, b, _ := rig(t)
	pa := a.Connect("nodeA")
	count := 0
	b.Connect("nodeB").SetReceiver(func(bus.Message) { count++ })
	pa.Send(can.MustNew(0x100, nil))
	s.RunUntil(time.Second)
	if count != 1 {
		t.Fatalf("frame delivered %d times on bus B (loop?)", count)
	}
}

func TestAllowListFiltersUnlisted(t *testing.T) {
	s, a, b, g := rig(t)
	g.SetPolicy(AToB, AllowList)
	g.Allow(AToB, 0x110)
	pa := a.Connect("nodeA")
	var got []can.ID
	b.Connect("nodeB").SetReceiver(func(m bus.Message) { got = append(got, m.Frame.ID) })
	pa.Send(can.MustNew(0x110, nil))
	pa.Send(can.MustNew(0x215, nil))
	s.RunUntil(time.Second)
	if len(got) != 1 || got[0] != 0x110 {
		t.Fatalf("bus B saw %v, want only 0x110", got)
	}
	st := g.Stats(AToB)
	if st.Forwarded != 1 || st.Blocked != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestAllowListDirectionIndependent(t *testing.T) {
	s, a, b, g := rig(t)
	g.SetPolicy(AToB, AllowList) // nothing allowed A->B
	pa := a.Connect("nodeA")
	pb := b.Connect("nodeB")
	var onA []can.ID
	pa.SetReceiver(func(m bus.Message) { onA = append(onA, m.Frame.ID) })
	countB := 0
	pb.SetReceiver(func(bus.Message) { countB++ })
	pa.Send(can.MustNew(0x300, nil)) // blocked A->B
	pb.Send(can.MustNew(0x400, nil)) // still ForwardAll B->A
	s.RunUntil(time.Second)
	if countB != 0 {
		t.Fatal("blocked frame crossed A->B")
	}
	if len(onA) != 1 || onA[0] != 0x400 {
		t.Fatalf("bus A saw %v", onA)
	}
}

func TestBlockAll(t *testing.T) {
	s, a, b, g := rig(t)
	g.SetPolicy(AToB, BlockAll)
	g.SetPolicy(BToA, BlockAll)
	pa := a.Connect("nodeA")
	pb := b.Connect("nodeB")
	crossed := 0
	pa.SetReceiver(func(bus.Message) { crossed++ })
	pb.SetReceiver(func(bus.Message) { crossed++ })
	pa.Send(can.MustNew(0x1, nil))
	pb.Send(can.MustNew(0x2, nil))
	s.RunUntil(time.Second)
	if crossed != 0 {
		t.Fatalf("%d frames crossed a BlockAll gateway", crossed)
	}
	if g.Stats(AToB).Blocked != 1 || g.Stats(BToA).Blocked != 1 {
		t.Fatal("blocked counters wrong")
	}
}

func TestForwardedFramePreservesPayload(t *testing.T) {
	s, a, b, _ := rig(t)
	pa := a.Connect("nodeA")
	var got can.Frame
	b.Connect("nodeB").SetReceiver(func(m bus.Message) { got = m.Frame })
	want := can.MustNew(0x43A, []byte{0x1C, 0x21, 0x17, 0x71, 0x17, 0x71, 0xFF, 0xFF})
	pa.Send(want)
	s.RunUntil(time.Second)
	if !got.Equal(want) {
		t.Fatalf("forwarded frame = %v, want %v", got, want)
	}
}
