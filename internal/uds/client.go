package uds

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"repro/internal/clock"
	"repro/internal/isotp"
)

// Client errors.
var (
	ErrClientBusy = errors.New("uds: request already outstanding")
	ErrTimeout    = errors.New("uds: response timeout")
	ErrShortReply = errors.New("uds: short or mismatched response")
)

// responseTimeout is the client-side P2* budget for a server reply.
const responseTimeout = 2 * time.Second

// Callback receives the positive response payload (service byte stripped)
// or an error. Exactly one of data/err is meaningful.
type Callback func(data []byte, err error)

// Client is the tester side of UDS. All methods are asynchronous and
// deliver their result through a Callback, consistent with the
// single-threaded event simulation.
type Client struct {
	sched *clock.Scheduler
	ep    *isotp.Endpoint

	pendingSvc byte
	cb         Callback
	timer      *clock.Timer
}

// NewClient creates a client speaking through the given ISO-TP endpoint.
// Wire HandleResponse as the endpoint's onMessage callback.
func NewClient(sched *clock.Scheduler, ep *isotp.Endpoint) *Client {
	if sched == nil || ep == nil {
		panic("uds: nil scheduler or endpoint")
	}
	return &Client{sched: sched, ep: ep}
}

// Busy reports whether a request is outstanding.
func (c *Client) Busy() bool { return c.cb != nil }

func (c *Client) request(svc byte, payload []byte, cb Callback) error {
	if c.cb != nil {
		return ErrClientBusy
	}
	req := append([]byte{svc}, payload...)
	if err := c.ep.Send(req); err != nil {
		return fmt.Errorf("uds: send request %#02x: %w", svc, err)
	}
	c.pendingSvc = svc
	c.cb = cb
	c.timer = c.sched.After(responseTimeout, func() {
		cb := c.cb
		c.clear()
		if cb != nil {
			cb(nil, ErrTimeout)
		}
	})
	return nil
}

func (c *Client) clear() {
	if c.timer != nil {
		c.timer.Stop()
		c.timer = nil
	}
	c.cb = nil
	c.pendingSvc = 0
}

// HandleResponse processes a server reply payload.
func (c *Client) HandleResponse(resp []byte) {
	if c.cb == nil || len(resp) == 0 {
		return
	}
	svc := c.pendingSvc
	cb := c.cb
	switch {
	case resp[0] == negativeResponseID:
		if len(resp) < 3 || resp[1] != svc {
			return // negative response for someone else; keep waiting
		}
		c.clear()
		cb(nil, &NegativeError{Service: svc, Code: resp[2]})
	case resp[0] == svc+positiveOffset:
		c.clear()
		cb(resp[1:], nil)
	default:
		// Unrelated broadcast (e.g. a periodic frame routed here); ignore.
	}
}

// ChangeSession requests a diagnostic session change.
func (c *Client) ChangeSession(session byte, cb Callback) error {
	return c.request(SvcSessionControl, []byte{session}, cb)
}

// Reset requests an ECU reset.
func (c *Client) Reset(sub byte, cb Callback) error {
	return c.request(SvcECUReset, []byte{sub}, cb)
}

// ReadDID reads a data identifier. The callback payload is the DID value
// with the 2-byte identifier echo stripped.
func (c *Client) ReadDID(did DID, cb Callback) error {
	var req [2]byte
	binary.BigEndian.PutUint16(req[:], uint16(did))
	return c.request(SvcReadDID, req[:], func(data []byte, err error) {
		if err != nil {
			cb(nil, err)
			return
		}
		if len(data) < 2 {
			cb(nil, ErrShortReply)
			return
		}
		cb(data[2:], nil)
	})
}

// WriteDID writes a data identifier.
func (c *Client) WriteDID(did DID, value []byte, cb Callback) error {
	req := make([]byte, 2+len(value))
	binary.BigEndian.PutUint16(req[:2], uint16(did))
	copy(req[2:], value)
	return c.request(SvcWriteDID, req, cb)
}

// TesterPresent sends a keep-alive.
func (c *Client) TesterPresent(cb Callback) error {
	return c.request(SvcTesterPresent, []byte{0x00}, cb)
}

// ReadDTCsByMask requests service 0x19/0x02 (reportDTCByStatusMask). The
// callback payload starts with the sub-function echo and availability
// mask, followed by 4-byte DTC records.
func (c *Client) ReadDTCsByMask(mask byte, cb Callback) error {
	return c.request(SvcReadDTCs, []byte{ReportDTCByStatusMask, mask}, cb)
}

// ClearAllDTCs requests service 0x14 with the all-groups selector.
func (c *Client) ClearAllDTCs(cb Callback) error {
	return c.request(SvcClearDTCs, []byte{0xFF, 0xFF, 0xFF}, cb)
}

// RequestSeed asks for a security seed at the given level.
func (c *Client) RequestSeed(level byte, cb Callback) error {
	return c.request(SvcSecurityAccess, []byte{level}, func(data []byte, err error) {
		if err != nil {
			cb(nil, err)
			return
		}
		if len(data) < 1 {
			cb(nil, ErrShortReply)
			return
		}
		cb(data[1:], nil) // strip sub-function echo
	})
}

// SendKey submits the computed key for the given level.
func (c *Client) SendKey(level byte, key []byte, cb Callback) error {
	return c.request(SvcSecurityAccess, append([]byte{level + 1}, key...), cb)
}

// Unlock performs the full seed/key handshake using keyFromSeed to derive
// the key (the tester's knowledge of the algorithm).
func (c *Client) Unlock(level byte, keyFromSeed func([]byte) []byte, cb Callback) error {
	return c.RequestSeed(level, func(seed []byte, err error) {
		if err != nil {
			cb(nil, err)
			return
		}
		if err := c.SendKey(level, keyFromSeed(seed), cb); err != nil {
			cb(nil, err)
		}
	})
}
