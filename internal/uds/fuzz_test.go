package uds

import (
	"testing"
	"time"

	"repro/internal/bus"
	"repro/internal/clock"
	"repro/internal/ecu"
	"repro/internal/isotp"
	"repro/internal/signal"
)

// knownNRCs is the set of negative response codes this server may emit.
var knownNRCs = map[byte]bool{
	NRCServiceNotSupported:          true,
	NRCSubFunctionNotSupported:      true,
	NRCIncorrectLength:              true,
	NRCConditionsNotCorrect:         true,
	NRCRequestOutOfRange:            true,
	NRCSecurityAccessDenied:         true,
	NRCInvalidKey:                   true,
	NRCExceededAttempts:             true,
	NRCServiceNotSupportedInSession: true,
}

// FuzzUDSDispatch drives the server with arbitrary request payloads over a
// real ISO-TP rig and checks the ISO 14229 dispatch contract: every
// observable reaction is either a positive response to the requested
// service (first byte = service + 0x40), a well-formed negative response
// ({0x7F, service, known NRC}), or silence — and the server never panics.
func FuzzUDSDispatch(f *testing.F) {
	f.Add([]byte{SvcSessionControl, SessionExtended})
	f.Add([]byte{SvcECUReset, ResetHard})
	f.Add([]byte{SvcReadDID, 0x01, 0x00})
	f.Add([]byte{SvcWriteDID, 0x01, 0x00, 0xAA})
	f.Add([]byte{SvcSecurityAccess, 0x01})
	f.Add([]byte{SvcTesterPresent, 0x80})
	f.Add([]byte{SvcReadDTCs, ReportDTCByStatusMask, 0xFF})
	f.Add([]byte{0x99, 0x01, 0x02})
	f.Add([]byte{SvcSessionControl})

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 || len(data) > isotp.MaxPayload {
			t.Skip()
		}
		s := clock.New()
		b := bus.New(s)

		stored := []byte{0x12, 0x34}
		cfg := ServerConfig{DIDs: map[DID]DIDEntry{
			0x0100: {Read: func() []byte { return stored },
				Write: func(v []byte) error { stored = append(stored[:0], v...); return nil }},
			0x0200: {Read: func() []byte { return []byte{0x01} }, Secured: true,
				Write: func([]byte) error { return nil }},
		}}

		ecuPort := b.Connect("ecu")
		e := ecu.New("dut", s, ecuPort)
		var server *Server
		serverEP := isotp.NewEndpoint(s, e.Send, signal.IDDiagResponse, signal.IDDiagRequest,
			isotp.Config{}, func(req []byte) { server.HandleRequest(req) })
		server = NewServer(e, serverEP, cfg)
		e.Handle(signal.IDDiagRequest, serverEP.HandleFrame)

		testerPort := b.Connect("tester")
		var responses [][]byte
		testerEP := isotp.NewEndpoint(s, testerPort.Send, signal.IDDiagRequest, signal.IDDiagResponse,
			isotp.Config{}, func(resp []byte) { responses = append(responses, resp) })
		testerEP.OnError(func(error) {})
		testerPort.SetReceiver(testerEP.HandleFrame)

		if err := testerEP.Send(data); err != nil {
			t.Skip() // transport rejected the request; nothing reached UDS
		}
		s.RunFor(3 * time.Second)

		svc := data[0]
		for _, resp := range responses {
			if len(resp) == 0 {
				t.Fatal("empty response payload")
			}
			switch resp[0] {
			case svc + positiveOffset:
				// Positive response to the requested service: fine.
			case negativeResponseID:
				if len(resp) != 3 {
					t.Fatalf("negative response of %d bytes: % X", len(resp), resp)
				}
				if resp[1] != svc {
					t.Fatalf("negative response names service %#x, request was %#x", resp[1], svc)
				}
				if !knownNRCs[resp[2]] {
					t.Fatalf("unknown NRC %#x", resp[2])
				}
			default:
				t.Fatalf("response % X is neither positive for %#x nor negative", resp, svc)
			}
		}
	})
}
