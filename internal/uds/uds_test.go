package uds

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"repro/internal/bus"
	"repro/internal/clock"
	"repro/internal/ecu"
	"repro/internal/isotp"
	"repro/internal/signal"
)

// testRig wires a tester client and an ECU server over a simulated bus
// using the standard OBD request/response identifiers.
type testRig struct {
	s      *clock.Scheduler
	e      *ecu.ECU
	server *Server
	client *Client
}

func newRig(t *testing.T, cfg ServerConfig) *testRig {
	t.Helper()
	s := clock.New()
	b := bus.New(s)

	ecuPort := b.Connect("ecu")
	e := ecu.New("dut", s, ecuPort)
	var server *Server
	serverEP := isotp.NewEndpoint(s, e.Send, signal.IDDiagResponse, signal.IDDiagRequest,
		isotp.Config{}, func(req []byte) { server.HandleRequest(req) })
	server = NewServer(e, serverEP, cfg)
	e.Handle(signal.IDDiagRequest, serverEP.HandleFrame)

	testerPort := b.Connect("tester")
	var client *Client
	clientEP := isotp.NewEndpoint(s, testerPort.Send, signal.IDDiagRequest, signal.IDDiagResponse,
		isotp.Config{}, func(resp []byte) { client.HandleResponse(resp) })
	client = NewClient(s, clientEP)
	testerPort.SetReceiver(clientEP.HandleFrame)

	return &testRig{s: s, e: e, server: server, client: client}
}

// run advances the sim one virtual second: enough for any exchange here,
// short enough not to trip the 5 s S3 session timeout.
func (r *testRig) run() { r.s.RunUntil(r.s.Now() + time.Second) }

func defaultKey(seed []byte) []byte {
	key := make([]byte, len(seed))
	for i, b := range seed {
		key[i] = b ^ 0x5A
	}
	return key
}

func TestSessionControl(t *testing.T) {
	r := newRig(t, ServerConfig{})
	var got []byte
	var gotErr error
	r.client.ChangeSession(SessionExtended, func(d []byte, err error) { got, gotErr = d, err })
	r.run()
	if gotErr != nil {
		t.Fatalf("err = %v", gotErr)
	}
	if len(got) < 1 || got[0] != SessionExtended {
		t.Fatalf("resp = %v", got)
	}
	if r.server.Session() != SessionExtended {
		t.Fatalf("session = %#x", r.server.Session())
	}
	if r.e.Mode() != ecu.ModeDiagnostic {
		t.Fatalf("ecu mode = %v", r.e.Mode())
	}
}

func TestSessionControlBadSubFunction(t *testing.T) {
	r := newRig(t, ServerConfig{})
	var gotErr error
	r.client.ChangeSession(0x42, func(d []byte, err error) { gotErr = err })
	r.run()
	var neg *NegativeError
	if !errors.As(gotErr, &neg) || neg.Code != NRCSubFunctionNotSupported {
		t.Fatalf("err = %v, want subFunctionNotSupported", gotErr)
	}
}

func TestUnknownServiceRejected(t *testing.T) {
	r := newRig(t, ServerConfig{})
	var gotErr error
	r.client.request(0x31, nil, func(d []byte, err error) { gotErr = err })
	r.run()
	var neg *NegativeError
	if !errors.As(gotErr, &neg) || neg.Code != NRCServiceNotSupported {
		t.Fatalf("err = %v, want serviceNotSupported", gotErr)
	}
}

func TestReadDID(t *testing.T) {
	vin := []byte("SIMVIN1234567890X")
	r := newRig(t, ServerConfig{
		DIDs: map[DID]DIDEntry{
			0xF190: {Read: func() []byte { return vin }},
		},
	})
	var got []byte
	var gotErr error
	r.client.ReadDID(0xF190, func(d []byte, err error) { got, gotErr = d, err })
	r.run()
	if gotErr != nil {
		t.Fatalf("err = %v", gotErr)
	}
	if !bytes.Equal(got, vin) {
		t.Fatalf("got %q, want %q", got, vin)
	}
}

func TestReadUnknownDID(t *testing.T) {
	r := newRig(t, ServerConfig{})
	var gotErr error
	r.client.ReadDID(0x1234, func(d []byte, err error) { gotErr = err })
	r.run()
	var neg *NegativeError
	if !errors.As(gotErr, &neg) || neg.Code != NRCRequestOutOfRange {
		t.Fatalf("err = %v, want requestOutOfRange", gotErr)
	}
}

func TestWriteDIDRequiresNonDefaultSession(t *testing.T) {
	var stored []byte
	r := newRig(t, ServerConfig{
		DIDs: map[DID]DIDEntry{
			0x0100: {Write: func(v []byte) error { stored = append([]byte(nil), v...); return nil }},
		},
	})
	var gotErr error
	r.client.WriteDID(0x0100, []byte{1, 2}, func(d []byte, err error) { gotErr = err })
	r.run()
	var neg *NegativeError
	if !errors.As(gotErr, &neg) || neg.Code != NRCServiceNotSupportedInSession {
		t.Fatalf("err = %v, want serviceNotSupportedInActiveSession", gotErr)
	}
	if stored != nil {
		t.Fatal("write happened in default session")
	}
}

func TestWriteDIDInExtendedSession(t *testing.T) {
	var stored []byte
	r := newRig(t, ServerConfig{
		DIDs: map[DID]DIDEntry{
			0x0100: {Write: func(v []byte) error { stored = append([]byte(nil), v...); return nil }},
		},
	})
	r.client.ChangeSession(SessionExtended, func([]byte, error) {
		r.client.WriteDID(0x0100, []byte{7, 8, 9}, func([]byte, error) {})
	})
	r.run()
	if !bytes.Equal(stored, []byte{7, 8, 9}) {
		t.Fatalf("stored = %v", stored)
	}
}

func TestSecuredWriteRequiresUnlock(t *testing.T) {
	r := newRig(t, ServerConfig{
		DIDs: map[DID]DIDEntry{
			0x0200: {Secured: true, Write: func([]byte) error { return nil }},
		},
	})
	var gotErr error
	r.client.ChangeSession(SessionExtended, func([]byte, error) {
		r.client.WriteDID(0x0200, []byte{1}, func(d []byte, err error) { gotErr = err })
	})
	r.run()
	var neg *NegativeError
	if !errors.As(gotErr, &neg) || neg.Code != NRCSecurityAccessDenied {
		t.Fatalf("err = %v, want securityAccessDenied", gotErr)
	}
}

func TestSecurityUnlockFlow(t *testing.T) {
	written := false
	r := newRig(t, ServerConfig{
		DIDs: map[DID]DIDEntry{
			0x0200: {Secured: true, Write: func([]byte) error { written = true; return nil }},
		},
	})
	r.client.ChangeSession(SessionExtended, func([]byte, error) {
		r.client.Unlock(0x01, defaultKey, func(d []byte, err error) {
			if err != nil {
				t.Errorf("unlock: %v", err)
				return
			}
			r.client.WriteDID(0x0200, []byte{1}, func([]byte, error) {})
		})
	})
	r.run()
	if !r.server.Unlocked() {
		t.Fatal("server not unlocked")
	}
	if !written {
		t.Fatal("secured write failed after unlock")
	}
}

func TestSecurityAccessRequiresSession(t *testing.T) {
	r := newRig(t, ServerConfig{})
	var gotErr error
	r.client.RequestSeed(0x01, func(d []byte, err error) { gotErr = err })
	r.run()
	var neg *NegativeError
	if !errors.As(gotErr, &neg) || neg.Code != NRCServiceNotSupportedInSession {
		t.Fatalf("err = %v", gotErr)
	}
}

func TestInvalidKeyCountsAttempts(t *testing.T) {
	r := newRig(t, ServerConfig{})
	badKey := func(seed []byte) []byte { return []byte{0, 0, 0, 0} }
	var errs []error
	// Chain three bad attempts back-to-back inside one session window.
	var attempt func(remaining int)
	attempt = func(remaining int) {
		r.client.Unlock(0x01, badKey, func(d []byte, err error) {
			errs = append(errs, err)
			if remaining > 1 {
				attempt(remaining - 1)
			}
		})
	}
	r.client.ChangeSession(SessionExtended, func([]byte, error) { attempt(3) })
	r.run()
	if len(errs) != 3 {
		t.Fatalf("got %d results", len(errs))
	}
	var neg *NegativeError
	if !errors.As(errs[0], &neg) || neg.Code != NRCInvalidKey {
		t.Fatalf("first err = %v, want invalidKey", errs[0])
	}
	if !errors.As(errs[2], &neg) || neg.Code != NRCExceededAttempts {
		t.Fatalf("third err = %v, want exceededAttempts", errs[2])
	}
	// Further seed requests are refused.
	var seedErr error
	r.client.RequestSeed(0x01, func(d []byte, err error) { seedErr = err })
	r.run()
	if !errors.As(seedErr, &neg) || neg.Code != NRCExceededAttempts {
		t.Fatalf("seed err = %v, want exceededAttempts", seedErr)
	}
}

func TestECUResetPowerCycles(t *testing.T) {
	r := newRig(t, ServerConfig{})
	r.e.SetMIL("TEST", true)
	var got []byte
	r.client.Reset(ResetHard, func(d []byte, err error) { got = d })
	r.run()
	if len(got) < 1 || got[0] != ResetHard {
		t.Fatalf("resp = %v", got)
	}
	if r.e.MILOn("TEST") {
		t.Fatal("MIL survived ECU reset")
	}
	if !r.e.Powered() {
		t.Fatal("ECU not powered after reset")
	}
}

func TestS3TimeoutFallsBackToDefault(t *testing.T) {
	r := newRig(t, ServerConfig{})
	r.client.ChangeSession(SessionExtended, func([]byte, error) {})
	r.run()
	if r.server.Session() != SessionExtended {
		t.Fatal("session change failed")
	}
	// No tester present for > 5 s.
	r.s.RunUntil(r.s.Now() + 6*time.Second)
	if r.server.Session() != SessionDefault {
		t.Fatalf("session = %#x, want default after S3 timeout", r.server.Session())
	}
	if r.e.Mode() != ecu.ModeNormal {
		t.Fatalf("mode = %v", r.e.Mode())
	}
}

func TestTesterPresentKeepsSessionAlive(t *testing.T) {
	r := newRig(t, ServerConfig{})
	r.client.ChangeSession(SessionExtended, func([]byte, error) {})
	r.run()
	// Send tester present every 2 s for 12 s.
	for i := 0; i < 6; i++ {
		r.s.RunUntil(r.s.Now() + 2*time.Second)
		r.client.TesterPresent(func([]byte, error) {})
	}
	r.s.RunUntil(r.s.Now() + time.Second)
	if r.server.Session() != SessionExtended {
		t.Fatal("session expired despite tester present")
	}
}

func TestClientBusy(t *testing.T) {
	r := newRig(t, ServerConfig{})
	r.client.ChangeSession(SessionExtended, func([]byte, error) {})
	if err := r.client.TesterPresent(func([]byte, error) {}); !errors.Is(err, ErrClientBusy) {
		t.Fatalf("err = %v, want ErrClientBusy", err)
	}
}

func TestClientTimeoutWhenServerDead(t *testing.T) {
	r := newRig(t, ServerConfig{})
	r.e.PowerOff()
	var gotErr error
	r.client.TesterPresent(func(d []byte, err error) { gotErr = err })
	r.s.RunUntil(r.s.Now() + 5*time.Second) // exceed the 2 s client timeout
	if !errors.Is(gotErr, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", gotErr)
	}
	if r.client.Busy() {
		t.Fatal("client stuck busy after timeout")
	}
}

func TestMultiFrameDIDValue(t *testing.T) {
	blob := bytes.Repeat([]byte{0xA5}, 64)
	r := newRig(t, ServerConfig{
		DIDs: map[DID]DIDEntry{0xF1A0: {Read: func() []byte { return blob }}},
	})
	var got []byte
	r.client.ReadDID(0xF1A0, func(d []byte, err error) { got = d })
	r.run()
	if !bytes.Equal(got, blob) {
		t.Fatalf("multi-frame DID read failed: %d bytes", len(got))
	}
}

func TestNRCName(t *testing.T) {
	if NRCName(NRCInvalidKey) != "invalidKey" {
		t.Fatal("NRCName(invalidKey) wrong")
	}
	if NRCName(0xEE) == "" {
		t.Fatal("unknown NRC name empty")
	}
}

func TestNegativeErrorString(t *testing.T) {
	e := &NegativeError{Service: SvcReadDID, Code: NRCRequestOutOfRange}
	if e.Error() == "" {
		t.Fatal("empty error string")
	}
}

func TestSoftReset(t *testing.T) {
	r := newRig(t, ServerConfig{})
	var got []byte
	r.client.Reset(ResetSoft, func(d []byte, err error) { got = d })
	r.run()
	if len(got) < 1 || got[0] != ResetSoft {
		t.Fatalf("resp = %v", got)
	}
}

func TestResetBadSubFunction(t *testing.T) {
	r := newRig(t, ServerConfig{})
	var gotErr error
	r.client.Reset(0x7E, func(d []byte, err error) { gotErr = err })
	r.run()
	var neg *NegativeError
	if !errors.As(gotErr, &neg) || neg.Code != NRCSubFunctionNotSupported {
		t.Fatalf("err = %v", gotErr)
	}
}

func TestSeedAllZeroWhenAlreadyUnlocked(t *testing.T) {
	r := newRig(t, ServerConfig{})
	var secondSeed []byte
	r.client.ChangeSession(SessionExtended, func([]byte, error) {
		r.client.Unlock(0x01, defaultKey, func([]byte, error) {
			r.client.RequestSeed(0x01, func(seed []byte, err error) { secondSeed = seed })
		})
	})
	r.run()
	if len(secondSeed) == 0 {
		t.Fatal("no second seed")
	}
	for _, b := range secondSeed {
		if b != 0 {
			t.Fatalf("seed after unlock = % X, want all-zero per ISO", secondSeed)
		}
	}
}

func TestSendKeyWithoutSeedRequest(t *testing.T) {
	r := newRig(t, ServerConfig{})
	var gotErr error
	r.client.ChangeSession(SessionExtended, func([]byte, error) {
		r.client.SendKey(0x01, []byte{1, 2, 3, 4}, func(d []byte, err error) { gotErr = err })
	})
	r.run()
	var neg *NegativeError
	if !errors.As(gotErr, &neg) || neg.Code != NRCConditionsNotCorrect {
		t.Fatalf("err = %v, want conditionsNotCorrect", gotErr)
	}
}

func TestSecurityAccessBadSubFunction(t *testing.T) {
	r := newRig(t, ServerConfig{})
	var gotErr error
	r.client.ChangeSession(SessionExtended, func([]byte, error) {
		r.client.request(SvcSecurityAccess, []byte{0x63}, func(d []byte, err error) { gotErr = err })
	})
	r.run()
	var neg *NegativeError
	if !errors.As(gotErr, &neg) || neg.Code != NRCSubFunctionNotSupported {
		t.Fatalf("err = %v", gotErr)
	}
}

func TestWriteToReadOnlyDID(t *testing.T) {
	r := newRig(t, ServerConfig{
		DIDs: map[DID]DIDEntry{0xF190: {Read: func() []byte { return []byte{1} }}},
	})
	var gotErr error
	r.client.ChangeSession(SessionExtended, func([]byte, error) {
		r.client.WriteDID(0xF190, []byte{9}, func(d []byte, err error) { gotErr = err })
	})
	r.run()
	var neg *NegativeError
	if !errors.As(gotErr, &neg) || neg.Code != NRCRequestOutOfRange {
		t.Fatalf("err = %v", gotErr)
	}
}

func TestWriteHandlerErrorMapsToConditionsNotCorrect(t *testing.T) {
	r := newRig(t, ServerConfig{
		DIDs: map[DID]DIDEntry{0x0100: {Write: func([]byte) error { return errors.New("nope") }}},
	})
	var gotErr error
	r.client.ChangeSession(SessionExtended, func([]byte, error) {
		r.client.WriteDID(0x0100, []byte{1}, func(d []byte, err error) { gotErr = err })
	})
	r.run()
	var neg *NegativeError
	if !errors.As(gotErr, &neg) || neg.Code != NRCConditionsNotCorrect {
		t.Fatalf("err = %v", gotErr)
	}
}

func TestMalformedRequestLengths(t *testing.T) {
	// Drive the server directly with malformed payloads; it must answer
	// incorrectMessageLength, never panic.
	r := newRig(t, ServerConfig{})
	for _, req := range [][]byte{
		{SvcSessionControl},
		{SvcECUReset},
		{SvcReadDID, 0x01},
		{SvcWriteDID, 0x01, 0x02},
		{SvcSecurityAccess},
		{SvcTesterPresent},
	} {
		r.server.HandleRequest(req)
	}
	r.server.HandleRequest(nil) // ignored entirely
	r.run()
	if r.server.Session() != SessionDefault {
		t.Fatal("malformed requests changed session state")
	}
}

func TestServerSessionAccessors(t *testing.T) {
	r := newRig(t, ServerConfig{})
	if r.server.Unlocked() {
		t.Fatal("fresh server unlocked")
	}
	if r.server.Session() != SessionDefault {
		t.Fatal("fresh server not in default session")
	}
}

// fakeDTCStore is a minimal DTCStore for server tests.
type fakeDTCStore struct{ codes []string }

func (f *fakeDTCStore) DTCs() []string { return f.codes }
func (f *fakeDTCStore) ClearDTCs()     { f.codes = nil }

// testEncodeDTC packs "Pxxxx" codes the way obd.encodeDTC does, enough for
// round-trip assertions here.
func testEncodeDTC(code string) (byte, byte, error) {
	if len(code) != 5 {
		return 0, 0, errors.New("bad code")
	}
	return code[1] - '0', code[4] - '0', nil
}

func newDTCRig(t *testing.T, store DTCStore) *testRig {
	t.Helper()
	return newRig(t, ServerConfig{DTCs: store, EncodeDTC: testEncodeDTC})
}

func TestReadDTCsByStatusMask(t *testing.T) {
	store := &fakeDTCStore{codes: []string{"P0217", "P0300"}}
	r := newDTCRig(t, store)
	var got []byte
	r.client.request(SvcReadDTCs, []byte{ReportDTCByStatusMask, 0xFF}, func(d []byte, err error) {
		if err != nil {
			t.Errorf("read DTCs: %v", err)
			return
		}
		got = d
	})
	r.run()
	// Response: subfunc echo, availability mask, then 4 bytes per DTC.
	if len(got) != 2+2*4 {
		t.Fatalf("resp = % X", got)
	}
	if got[0] != ReportDTCByStatusMask {
		t.Fatalf("subfunction echo = %#x", got[0])
	}
}

func TestReadDTCsUnsupportedWithoutStore(t *testing.T) {
	r := newRig(t, ServerConfig{})
	var gotErr error
	r.client.request(SvcReadDTCs, []byte{ReportDTCByStatusMask, 0xFF}, func(d []byte, err error) { gotErr = err })
	r.run()
	var neg *NegativeError
	if !errors.As(gotErr, &neg) || neg.Code != NRCServiceNotSupported {
		t.Fatalf("err = %v", gotErr)
	}
}

func TestReadDTCsBadSubFunction(t *testing.T) {
	r := newDTCRig(t, &fakeDTCStore{})
	var gotErr error
	r.client.request(SvcReadDTCs, []byte{0x01, 0xFF}, func(d []byte, err error) { gotErr = err })
	r.run()
	var neg *NegativeError
	if !errors.As(gotErr, &neg) || neg.Code != NRCSubFunctionNotSupported {
		t.Fatalf("err = %v", gotErr)
	}
}

func TestClearDTCsAllGroups(t *testing.T) {
	store := &fakeDTCStore{codes: []string{"P0217"}}
	r := newDTCRig(t, store)
	var gotErr error
	r.client.request(SvcClearDTCs, []byte{0xFF, 0xFF, 0xFF}, func(d []byte, err error) { gotErr = err })
	r.run()
	if gotErr != nil {
		t.Fatalf("clear: %v", gotErr)
	}
	if len(store.codes) != 0 {
		t.Fatal("DTCs not cleared")
	}
}

func TestClearDTCsWrongGroupRejected(t *testing.T) {
	store := &fakeDTCStore{codes: []string{"P0217"}}
	r := newDTCRig(t, store)
	var gotErr error
	r.client.request(SvcClearDTCs, []byte{0x00, 0x00, 0x01}, func(d []byte, err error) { gotErr = err })
	r.run()
	var neg *NegativeError
	if !errors.As(gotErr, &neg) || neg.Code != NRCRequestOutOfRange {
		t.Fatalf("err = %v", gotErr)
	}
	if len(store.codes) != 1 {
		t.Fatal("wrong-group clear erased codes")
	}
}
