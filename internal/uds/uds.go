// Package uds implements a practical subset of Unified Diagnostic Services
// (ISO 14229) over ISO-TP: diagnostic session control, ECU reset, security
// access (seed/key), read/write data by identifier, and tester present.
//
// The paper's related work (§II) singles out UDS as a fuzzing surface and
// stresses that ECUs have distinct operating modes — normal operation
// versus a locked/unlocked servicing state — that "have been previously
// exploited" and must all be covered by testing. This package gives the
// simulated ECUs those modes, and gives the fuzzer a stateful protocol
// target beyond raw frames.
package uds

import "fmt"

// Service identifiers.
const (
	SvcSessionControl  = 0x10
	SvcECUReset        = 0x11
	SvcClearDTCs       = 0x14
	SvcReadDTCs        = 0x19
	SvcReadDID         = 0x22
	SvcSecurityAccess  = 0x27
	SvcWriteDID        = 0x2E
	SvcTesterPresent   = 0x3E
	positiveOffset     = 0x40
	negativeResponseID = 0x7F
)

// ReadDTCs sub-function: report DTCs by status mask (the one every scan
// tool uses).
const ReportDTCByStatusMask = 0x02

// Diagnostic session types (sub-functions of SvcSessionControl).
const (
	SessionDefault     = 0x01
	SessionProgramming = 0x02
	SessionExtended    = 0x03
)

// ECU reset sub-functions.
const (
	ResetHard = 0x01
	ResetSoft = 0x03
)

// Negative response codes.
const (
	NRCServiceNotSupported          = 0x11
	NRCSubFunctionNotSupported      = 0x12
	NRCIncorrectLength              = 0x13
	NRCConditionsNotCorrect         = 0x22
	NRCRequestOutOfRange            = 0x31
	NRCSecurityAccessDenied         = 0x33
	NRCInvalidKey                   = 0x35
	NRCExceededAttempts             = 0x36
	NRCServiceNotSupportedInSession = 0x7F
)

// nrcNames maps codes to ISO names for diagnostics output.
var nrcNames = map[byte]string{
	NRCServiceNotSupported:          "serviceNotSupported",
	NRCSubFunctionNotSupported:      "subFunctionNotSupported",
	NRCIncorrectLength:              "incorrectMessageLengthOrInvalidFormat",
	NRCConditionsNotCorrect:         "conditionsNotCorrect",
	NRCRequestOutOfRange:            "requestOutOfRange",
	NRCSecurityAccessDenied:         "securityAccessDenied",
	NRCInvalidKey:                   "invalidKey",
	NRCExceededAttempts:             "exceedNumberOfAttempts",
	NRCServiceNotSupportedInSession: "serviceNotSupportedInActiveSession",
}

// NRCName returns the ISO name of a negative response code.
func NRCName(code byte) string {
	if n, ok := nrcNames[code]; ok {
		return n
	}
	return fmt.Sprintf("nrc(%#02x)", code)
}

// NegativeError is returned by the client when the server answers with a
// negative response.
type NegativeError struct {
	// Service is the rejected service identifier.
	Service byte
	// Code is the negative response code.
	Code byte
}

// Error implements error.
func (e *NegativeError) Error() string {
	return fmt.Sprintf("uds: service %#02x rejected: %s", e.Service, NRCName(e.Code))
}
