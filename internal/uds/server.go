package uds

import (
	"encoding/binary"
	"time"

	"repro/internal/clock"
	"repro/internal/ecu"
	"repro/internal/isotp"
)

// s3Timeout is the ISO S3-server timeout: without tester-present the server
// falls back to the default session.
const s3Timeout = 5 * time.Second

// maxKeyAttempts bounds invalid security keys before lock-out.
const maxKeyAttempts = 3

// DID is a 16-bit data identifier.
type DID uint16

// DTCStore connects the server to the ECU's diagnostic-trouble-code
// storage (the obd package's Server satisfies it).
type DTCStore interface {
	// DTCs returns the stored codes in J2012 text form ("P0217").
	DTCs() []string
	// ClearDTCs erases all stored codes.
	ClearDTCs()
}

// DIDEntry describes one data identifier exposed by a server.
type DIDEntry struct {
	// Read returns the current value; nil means the DID is write-only.
	Read func() []byte
	// Write stores a new value; nil means the DID is read-only.
	Write func([]byte) error
	// Secured marks the DID as requiring an unlocked security session for
	// writes (reads are always allowed if Read is non-nil).
	Secured bool
}

// ServerConfig configures a UDS server.
type ServerConfig struct {
	// DIDs maps data identifiers to entries.
	DIDs map[DID]DIDEntry
	// SecurityLevel is the supported odd requestSeed sub-function
	// (default 0x01).
	SecurityLevel byte
	// KeyFromSeed computes the expected key for a seed; the default
	// algorithm XORs each seed byte with 0x5A (a deliberately weak scheme,
	// typical of the legacy implementations security testing targets).
	KeyFromSeed func([]byte) []byte
	// Seed generates the next seed; the default derives it from the
	// virtual clock so runs are deterministic.
	Seed func() []byte
	// DTCs optionally exposes trouble-code storage through services 0x19
	// (read) and 0x14 (clear). Nil rejects both services.
	DTCs DTCStore
	// EncodeDTC converts a stored code to its two-byte wire form; required
	// when DTCs is set (the obd package's encoder fits).
	EncodeDTC func(code string) (hi, lo byte, err error)
}

// Server implements the ECU side of UDS. It owns the ECU's operating mode:
// session changes and resets act on the underlying ecu.ECU.
type Server struct {
	e   *ecu.ECU
	ep  *isotp.Endpoint
	cfg ServerConfig

	session     byte
	unlocked    bool
	pendingSeed []byte
	keyAttempts int
	s3          *clock.Timer
}

// NewServer attaches a UDS server to an ECU via an ISO-TP endpoint. The
// caller wires endpoint.HandleFrame into the ECU's dispatch.
func NewServer(e *ecu.ECU, ep *isotp.Endpoint, cfg ServerConfig) *Server {
	if cfg.SecurityLevel == 0 {
		cfg.SecurityLevel = 0x01
	}
	if cfg.KeyFromSeed == nil {
		cfg.KeyFromSeed = func(seed []byte) []byte {
			key := make([]byte, len(seed))
			for i, b := range seed {
				key[i] = b ^ 0x5A
			}
			return key
		}
	}
	s := &Server{e: e, ep: ep, cfg: cfg, session: SessionDefault}
	if s.cfg.Seed == nil {
		s.cfg.Seed = func() []byte {
			var seed [4]byte
			binary.BigEndian.PutUint32(seed[:], uint32(e.Now()/time.Microsecond)|1)
			return seed[:]
		}
	}
	return s
}

// Session returns the active diagnostic session.
func (s *Server) Session() byte { return s.session }

// Unlocked reports whether security access has been granted.
func (s *Server) Unlocked() bool { return s.unlocked }

// HandleRequest processes one ISO-TP request payload. Wire it as the
// endpoint's onMessage callback.
func (s *Server) HandleRequest(req []byte) {
	if len(req) == 0 {
		return
	}
	svc := req[0]
	switch svc {
	case SvcSessionControl:
		s.handleSessionControl(req)
	case SvcECUReset:
		s.handleECUReset(req)
	case SvcReadDID:
		s.handleReadDID(req)
	case SvcWriteDID:
		s.handleWriteDID(req)
	case SvcSecurityAccess:
		s.handleSecurityAccess(req)
	case SvcTesterPresent:
		s.handleTesterPresent(req)
	case SvcReadDTCs:
		s.handleReadDTCs(req)
	case SvcClearDTCs:
		s.handleClearDTCs(req)
	default:
		s.negative(svc, NRCServiceNotSupported)
	}
}

func (s *Server) respond(payload []byte) {
	// Response transmission errors are deliberately dropped: a UDS server
	// whose response is lost simply times out on the client side.
	_ = s.ep.Send(payload)
}

func (s *Server) negative(svc, code byte) {
	s.respond([]byte{negativeResponseID, svc, code})
}

func (s *Server) handleSessionControl(req []byte) {
	if len(req) != 2 {
		s.negative(SvcSessionControl, NRCIncorrectLength)
		return
	}
	sub := req[1] & 0x7F
	switch sub {
	case SessionDefault, SessionProgramming, SessionExtended:
	default:
		s.negative(SvcSessionControl, NRCSubFunctionNotSupported)
		return
	}
	s.enterSession(sub)
	// Respond with session and the standard P2/P2* timing parameters.
	s.respond([]byte{SvcSessionControl + positiveOffset, sub, 0x00, 0x32, 0x01, 0xF4})
}

func (s *Server) enterSession(sub byte) {
	s.session = sub
	switch sub {
	case SessionDefault:
		s.unlocked = false
		s.pendingSeed = nil
		s.e.SetMode(ecu.ModeNormal)
		s.stopS3()
	case SessionProgramming:
		s.e.SetMode(ecu.ModeProgramming)
		s.armS3()
	case SessionExtended:
		s.e.SetMode(ecu.ModeDiagnostic)
		s.armS3()
	}
}

func (s *Server) armS3() {
	s.stopS3()
	s.s3 = s.e.Scheduler().After(s3Timeout, func() {
		s.enterSession(SessionDefault)
	})
}

func (s *Server) stopS3() {
	if s.s3 != nil {
		s.s3.Stop()
		s.s3 = nil
	}
}

func (s *Server) handleECUReset(req []byte) {
	if len(req) != 2 {
		s.negative(SvcECUReset, NRCIncorrectLength)
		return
	}
	sub := req[1] & 0x7F
	if sub != ResetHard && sub != ResetSoft {
		s.negative(SvcECUReset, NRCSubFunctionNotSupported)
		return
	}
	s.respond([]byte{SvcECUReset + positiveOffset, sub})
	s.session = SessionDefault
	s.unlocked = false
	s.pendingSeed = nil
	s.stopS3()
	// Power-cycle after the response has been queued: a hard reset reboots
	// the ECU, clearing volatile state.
	s.e.Scheduler().After(time.Millisecond, s.e.PowerCycle)
}

func (s *Server) handleReadDID(req []byte) {
	if len(req) != 3 {
		s.negative(SvcReadDID, NRCIncorrectLength)
		return
	}
	did := DID(binary.BigEndian.Uint16(req[1:3]))
	entry, ok := s.cfg.DIDs[did]
	if !ok || entry.Read == nil {
		s.negative(SvcReadDID, NRCRequestOutOfRange)
		return
	}
	value := entry.Read()
	resp := make([]byte, 0, 3+len(value))
	resp = append(resp, SvcReadDID+positiveOffset, byte(did>>8), byte(did))
	resp = append(resp, value...)
	s.respond(resp)
}

func (s *Server) handleWriteDID(req []byte) {
	if len(req) < 4 {
		s.negative(SvcWriteDID, NRCIncorrectLength)
		return
	}
	if s.session == SessionDefault {
		s.negative(SvcWriteDID, NRCServiceNotSupportedInSession)
		return
	}
	did := DID(binary.BigEndian.Uint16(req[1:3]))
	entry, ok := s.cfg.DIDs[did]
	if !ok || entry.Write == nil {
		s.negative(SvcWriteDID, NRCRequestOutOfRange)
		return
	}
	if entry.Secured && !s.unlocked {
		s.negative(SvcWriteDID, NRCSecurityAccessDenied)
		return
	}
	if err := entry.Write(req[3:]); err != nil {
		s.negative(SvcWriteDID, NRCConditionsNotCorrect)
		return
	}
	s.respond([]byte{SvcWriteDID + positiveOffset, byte(did >> 8), byte(did)})
}

func (s *Server) handleSecurityAccess(req []byte) {
	if len(req) < 2 {
		s.negative(SvcSecurityAccess, NRCIncorrectLength)
		return
	}
	if s.session == SessionDefault {
		s.negative(SvcSecurityAccess, NRCServiceNotSupportedInSession)
		return
	}
	sub := req[1]
	switch sub {
	case s.cfg.SecurityLevel: // requestSeed
		if s.keyAttempts >= maxKeyAttempts {
			s.negative(SvcSecurityAccess, NRCExceededAttempts)
			return
		}
		if s.unlocked {
			// Already unlocked: all-zero seed per ISO.
			s.respond([]byte{SvcSecurityAccess + positiveOffset, sub, 0, 0, 0, 0})
			return
		}
		s.pendingSeed = s.cfg.Seed()
		resp := append([]byte{SvcSecurityAccess + positiveOffset, sub}, s.pendingSeed...)
		s.respond(resp)
	case s.cfg.SecurityLevel + 1: // sendKey
		if s.pendingSeed == nil {
			s.negative(SvcSecurityAccess, NRCConditionsNotCorrect)
			return
		}
		want := s.cfg.KeyFromSeed(s.pendingSeed)
		got := req[2:]
		if !bytesEqual(want, got) {
			s.keyAttempts++
			s.pendingSeed = nil
			if s.keyAttempts >= maxKeyAttempts {
				s.negative(SvcSecurityAccess, NRCExceededAttempts)
			} else {
				s.negative(SvcSecurityAccess, NRCInvalidKey)
			}
			return
		}
		s.unlocked = true
		s.keyAttempts = 0
		s.pendingSeed = nil
		s.respond([]byte{SvcSecurityAccess + positiveOffset, sub})
	default:
		s.negative(SvcSecurityAccess, NRCSubFunctionNotSupported)
	}
}

func (s *Server) handleTesterPresent(req []byte) {
	if len(req) != 2 {
		s.negative(SvcTesterPresent, NRCIncorrectLength)
		return
	}
	suppress := req[1]&0x80 != 0
	if s.session != SessionDefault {
		s.armS3()
	}
	if !suppress {
		s.respond([]byte{SvcTesterPresent + positiveOffset, req[1] & 0x7F})
	}
}

// handleReadDTCs implements service 0x19 sub-function 0x02
// (reportDTCByStatusMask): every stored code is reported with status 0x09
// (testFailed | confirmedDTC).
func (s *Server) handleReadDTCs(req []byte) {
	if s.cfg.DTCs == nil || s.cfg.EncodeDTC == nil {
		s.negative(SvcReadDTCs, NRCServiceNotSupported)
		return
	}
	if len(req) != 3 {
		s.negative(SvcReadDTCs, NRCIncorrectLength)
		return
	}
	if req[1] != ReportDTCByStatusMask {
		s.negative(SvcReadDTCs, NRCSubFunctionNotSupported)
		return
	}
	const statusAvailability = 0xFF
	resp := []byte{SvcReadDTCs + positiveOffset, ReportDTCByStatusMask, statusAvailability}
	for _, code := range s.cfg.DTCs.DTCs() {
		hi, lo, err := s.cfg.EncodeDTC(code)
		if err != nil {
			continue
		}
		// 3-byte DTC (high, low, fault byte 0) + status.
		resp = append(resp, hi, lo, 0x00, 0x09)
	}
	s.respond(resp)
}

// handleClearDTCs implements service 0x14 (clearDiagnosticInformation) for
// the all-groups selector FFFFFF.
func (s *Server) handleClearDTCs(req []byte) {
	if s.cfg.DTCs == nil {
		s.negative(SvcClearDTCs, NRCServiceNotSupported)
		return
	}
	if len(req) != 4 {
		s.negative(SvcClearDTCs, NRCIncorrectLength)
		return
	}
	if req[1] != 0xFF || req[2] != 0xFF || req[3] != 0xFF {
		s.negative(SvcClearDTCs, NRCRequestOutOfRange)
		return
	}
	s.cfg.DTCs.ClearDTCs()
	s.respond([]byte{SvcClearDTCs + positiveOffset})
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
