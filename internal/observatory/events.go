package observatory

import (
	"io"
	"strconv"
	"sync"
)

// Event types. Together they are the wire vocabulary the future
// coordinator/worker service will speak; DESIGN §11 documents the schema.
const (
	// EventTrialStart marks a worker picking up a trial.
	EventTrialStart = "trial_start"
	// EventTrialEnd carries a trial's classified outcome and counters.
	EventTrialEnd = "trial_end"
	// EventFinding carries the first finding of a finding trial.
	EventFinding = "finding"
	// EventCorpusMerge reports a trial contributing its evolved corpus to
	// the fleet merge.
	EventCorpusMerge = "corpus_merge"
	// EventCheckpoint is a campaign-scope progress mark (every Nth
	// completed trial).
	EventCheckpoint = "checkpoint"
	// EventCampaignStart opens a distributed campaign journal: its Raw
	// payload is the serialised campaignd spec, which lets a restarted
	// coordinator verify a journal belongs to the campaign it is resuming.
	EventCampaignStart = "campaign_start"
	// EventTrialResult carries a complete serialised fleet.TrialResult in
	// Raw — the coordinator's durable record of an accepted trial, precise
	// enough to rebuild the final report from the journal alone.
	EventTrialResult = "trial_result"
)

// Event is one line of the campaign event log. Which fields are populated
// depends on Type; MarshalJSONL emits exactly the populated set in a fixed
// order, so a line's bytes are a pure function of its content. All
// timestamps are virtual — wall time never enters the log — and every
// per-trial event carries (Trial, Seq) sequencing metadata, which is what
// makes a *sorted* log byte-reproducible across worker counts: emission
// order varies with scheduling, content does not.
type Event struct {
	// Type is one of the Event* constants.
	Type string
	// Trial is the trial index, or -1 for campaign-scope events.
	Trial int
	// Seq numbers the events of one trial (0 = trial_start); for
	// checkpoints it is the completed-trial count, which is unique.
	Seq int
	// Seed is the trial's derived seed (trial_start).
	Seed int64
	// Status classifies the outcome (trial_end).
	Status string
	// VirtualNanos is the trial's virtual elapsed time (trial_end) or the
	// virtual time of the finding (finding).
	VirtualNanos int64
	// Frames is the trial's sent-frame count (trial_end) or its corpus
	// contribution size (corpus_merge).
	Frames uint64
	// SendErrors and Findings are trial_end counters.
	SendErrors uint64
	Findings   int
	// Oracle, Detail and TriggerID describe a finding.
	Oracle, Detail, TriggerID string
	// Completed and Total are checkpoint progress counts.
	Completed, Total int
	// Raw is an opaque pre-marshalled JSON payload: the campaign spec
	// (campaign_start) or a full fleet.TrialResult (trial_result). It must
	// already be valid compact JSON; MarshalJSONL embeds it verbatim, which
	// keeps the line bytes a pure function of the payload bytes.
	Raw []byte
}

// MarshalJSONL appends the event as one JSON line (no trailing newline)
// with a stable field order.
func (e Event) MarshalJSONL(b []byte) []byte {
	b = append(b, `{"type":`...)
	b = appendJSONString(b, e.Type)
	b = append(b, `,"trial":`...)
	b = strconv.AppendInt(b, int64(e.Trial), 10)
	b = append(b, `,"seq":`...)
	b = strconv.AppendInt(b, int64(e.Seq), 10)
	switch e.Type {
	case EventTrialStart:
		b = append(b, `,"seed":`...)
		b = strconv.AppendInt(b, e.Seed, 10)
	case EventFinding:
		b = append(b, `,"vtimeNanos":`...)
		b = strconv.AppendInt(b, e.VirtualNanos, 10)
		b = append(b, `,"oracle":`...)
		b = appendJSONString(b, e.Oracle)
		b = append(b, `,"detail":`...)
		b = appendJSONString(b, e.Detail)
		b = append(b, `,"triggerId":`...)
		b = appendJSONString(b, e.TriggerID)
	case EventTrialEnd:
		b = append(b, `,"status":`...)
		b = appendJSONString(b, e.Status)
		b = append(b, `,"vtimeNanos":`...)
		b = strconv.AppendInt(b, e.VirtualNanos, 10)
		b = append(b, `,"frames":`...)
		b = strconv.AppendUint(b, e.Frames, 10)
		b = append(b, `,"sendErrors":`...)
		b = strconv.AppendUint(b, e.SendErrors, 10)
		b = append(b, `,"findings":`...)
		b = strconv.AppendInt(b, int64(e.Findings), 10)
	case EventCorpusMerge:
		b = append(b, `,"frames":`...)
		b = strconv.AppendUint(b, e.Frames, 10)
	case EventCheckpoint:
		b = append(b, `,"completed":`...)
		b = strconv.AppendInt(b, int64(e.Completed), 10)
		b = append(b, `,"total":`...)
		b = strconv.AppendInt(b, int64(e.Total), 10)
	case EventCampaignStart:
		b = append(b, `,"spec":`...)
		b = append(b, e.Raw...)
	case EventTrialResult:
		b = append(b, `,"result":`...)
		b = append(b, e.Raw...)
	}
	return append(b, '}')
}

// appendJSONString appends s as a JSON string literal, escaping quotes,
// backslashes and control characters.
func appendJSONString(b []byte, s string) []byte {
	const hex = "0123456789abcdef"
	b = append(b, '"')
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"' || c == '\\':
			b = append(b, '\\', c)
		case c >= 0x20:
			b = append(b, c)
		case c == '\n':
			b = append(b, '\\', 'n')
		case c == '\t':
			b = append(b, '\\', 't')
		case c == '\r':
			b = append(b, '\\', 'r')
		default:
			b = append(b, '\\', 'u', '0', '0', hex[c>>4], hex[c&0xf])
		}
	}
	return append(b, '"')
}

// sinkRingCap bounds the in-memory tail kept for /events long-polling.
// The file (when one is attached) always holds the full log.
const sinkRingCap = 8192

// Sink is the append-only JSONL event stream: every Emit marshals one
// line, appends it to the writer (the -events file) and retains it in a
// bounded ring for HTTP tailing. Marshalling happens outside the lock, so
// concurrent fleet workers contend only for the append itself. A nil
// *Sink drops everything — the no-op path for campaigns run without an
// event log.
type Sink struct {
	mu      sync.Mutex
	w       io.Writer // may be nil: ring-only sink for HTTP tailing
	err     error     // first write error, sticky
	closed  bool      // terminal: no more lines will ever arrive
	ring    [][]byte  // last sinkRingCap lines, without trailing newline
	base    uint64    // index of ring[0] in the full stream
	count   uint64    // lines emitted so far
	waiters []chan struct{}
}

// NewSink returns a sink streaming to w (nil keeps lines only in the
// tail ring).
func NewSink(w io.Writer) *Sink {
	return &Sink{w: w}
}

// Emit appends one event. Safe for concurrent use; nil-safe.
func (s *Sink) Emit(e Event) {
	if s == nil {
		return
	}
	line := e.MarshalJSONL(make([]byte, 0, 128))
	s.mu.Lock()
	if s.w != nil && s.err == nil {
		if _, err := s.w.Write(append(line, '\n')); err != nil {
			s.err = err
		}
	}
	s.ring = append(s.ring, line)
	s.count++
	if len(s.ring) > sinkRingCap {
		drop := len(s.ring) - sinkRingCap
		s.ring = s.ring[drop:]
		s.base += uint64(drop)
	}
	waiters := s.waiters
	s.waiters = nil
	s.mu.Unlock()
	for _, ch := range waiters {
		close(ch)
	}
}

// Close marks the stream terminal and wakes every long-poll waiter: no
// further lines will arrive, so a poller blocked in Changed must return
// now instead of holding its goroutine (and its HTTP connection) until
// some never-coming event. Close does not close the underlying writer —
// the caller owns the -events file — but it does return the sink's sticky
// write error so shutdown paths surface a silently broken event log.
// Emit after Close still records the line (late worker results are data,
// not errors); it just no longer has anyone to wake. Nil-safe, idempotent.
func (s *Sink) Close() error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	s.closed = true
	waiters := s.waiters
	s.waiters = nil
	err := s.err
	s.mu.Unlock()
	for _, ch := range waiters {
		close(ch)
	}
	return err
}

// Err returns the first write error, if any.
func (s *Sink) Err() error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Waiting returns the number of long-poll waiters currently parked in
// Changed — the observable that shutdown paths (and their tests) use to
// know the pollers have actually registered before tearing down.
func (s *Sink) Waiting() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.waiters)
}

// Count returns the number of lines emitted so far.
func (s *Sink) Count() uint64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.count
}

// Since returns up to max lines starting at stream index cursor, the
// index to resume from, and the index the returned batch actually starts
// at (later than cursor when the ring has dropped older lines; the full
// history lives in the event file). The returned slices are the ring's
// own lines — callers must not mutate them.
func (s *Sink) Since(cursor uint64, max int) (lines [][]byte, next, from uint64) {
	if s == nil {
		return nil, cursor, cursor
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if cursor < s.base {
		cursor = s.base
	}
	if cursor > s.count {
		cursor = s.count
	}
	from = cursor
	avail := int(s.count - cursor)
	if max > 0 && avail > max {
		avail = max
	}
	start := int(cursor - s.base)
	lines = s.ring[start : start+avail]
	return lines, cursor + uint64(avail), from
}

// Changed returns a channel that is closed once the stream grows past
// cursor — the long-poll primitive behind /events?since=N. On a closed
// sink the channel comes back already closed: the stream is terminal, so
// waiting would block forever.
func (s *Sink) Changed(cursor uint64) <-chan struct{} {
	ch := make(chan struct{})
	if s == nil {
		close(ch)
		return ch
	}
	s.mu.Lock()
	if s.count > cursor || s.closed {
		s.mu.Unlock()
		close(ch)
		return ch
	}
	s.waiters = append(s.waiters, ch)
	s.mu.Unlock()
	return ch
}
