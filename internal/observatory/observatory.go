// Package observatory is the campaign-scale observability layer on top of
// the fleet orchestrator and the guided engine: a streaming JSONL event
// log, a live HTTP campaign API (/campaign.json, /events, /fuzz.json) and
// optional pprof wiring — the running fleet stops being a black box
// between "start" and "final report".
//
// The paper's quantitative result (Table V) is a distribution over
// thousands of trials; watching it converge live requires exactly what a
// distributed campaign service requires: machine-readable per-trial
// evidence streaming out of the orchestrator while it runs. The event log
// is therefore designed as a wire format first — every line is
// deterministic in content (stable field order, virtual-time stamps,
// (trial, seq) sequencing metadata) so the *sorted* log is byte-identical
// at any worker count, and a coordinator can replay, dedupe or resume a
// campaign from it. The live API reads atomically published state
// (fleet.Progress, guided.Introspection) and never stalls a worker.
package observatory

import (
	"sync/atomic"
	"time"

	"repro/internal/fleet"
	"repro/internal/guided"
	"repro/internal/telemetry"
)

// Config assembles an Observatory.
type Config struct {
	// Sink, when non-nil, receives the campaign event stream.
	Sink *Sink
	// CheckpointEvery emits a campaign checkpoint event per this many
	// completed trials (default 10; only meaningful with a Sink).
	CheckpointEvery int
	// Fuzz, when non-nil, is the guided-engine introspection plane served
	// at /fuzz.json.
	Fuzz *guided.Introspection
	// Telemetry, when non-nil, is the metrics plane whose routes
	// (/metrics, /metrics.json, /trace.json, /healthz) the observatory
	// handler also serves, refreshed with campaign-level gauges on every
	// scrape.
	Telemetry *telemetry.Telemetry
}

// Observatory implements fleet.Observer: it maintains the live Progress
// tracker, streams events into the sink, and serves the whole bundle over
// HTTP via Handler. All callback work is atomic-counter updates plus (when
// an event log is attached) one marshalled line, so observing a fleet does
// not serialise it.
type Observatory struct {
	progress *fleet.Progress
	sink     *Sink
	fuzz     *guided.Introspection
	tel      *telemetry.Telemetry

	checkpointEvery int64
	completions     atomic.Int64
	trialsTotal     atomic.Int64

	// Campaign-level gauges refreshed on scrape (nil without telemetry).
	gTrialsDone, gTrialsTotal, gFindings, gFrames *telemetry.Gauge
	gCorpus, gNoveltyBits, gExecsSinceNovelty     *telemetry.Gauge
}

// New assembles an observatory. Every Config field is optional; the zero
// Config yields a progress tracker with no event log, no fuzz view and no
// metrics plane.
func New(cfg Config) *Observatory {
	o := &Observatory{
		progress:        fleet.NewProgress(),
		sink:            cfg.Sink,
		fuzz:            cfg.Fuzz,
		tel:             cfg.Telemetry,
		checkpointEvery: int64(cfg.CheckpointEvery),
	}
	if o.checkpointEvery <= 0 {
		o.checkpointEvery = 10
	}
	if o.tel != nil {
		reg := o.tel.Registry
		o.gTrialsDone = reg.Gauge("campaign_trials_done", "Fleet trials finished so far.")
		o.gTrialsTotal = reg.Gauge("campaign_trials_total", "Fleet trials configured.")
		o.gFindings = reg.Gauge("campaign_finding_trials", "Trials that ended in a finding.")
		o.gFrames = reg.Gauge("campaign_frames_sent", "Fuzz frames transmitted across finished trials.")
		o.gCorpus = reg.Gauge("fuzz_corpus_size", "Corpus entries summed over guided engines.")
		o.gNoveltyBits = reg.Gauge("fuzz_novelty_bits_set", "Novelty-map bits set, summed over guided engines.")
		o.gExecsSinceNovelty = reg.Gauge("fuzz_execs_since_novelty", "Smallest per-engine staleness (execs since novelty).")
	}
	return o
}

// Progress returns the live tracker behind /campaign.json.
func (o *Observatory) Progress() *fleet.Progress { return o.progress }

// Sink returns the event sink (nil when no event log is attached).
func (o *Observatory) Sink() *Sink { return o.sink }

// Fuzz returns the guided introspection plane (may be nil).
func (o *Observatory) Fuzz() *guided.Introspection { return o.fuzz }

// CampaignStarted implements fleet.Observer.
func (o *Observatory) CampaignStarted(cfg fleet.Config, workers int) {
	o.trialsTotal.Store(int64(cfg.Trials))
	o.progress.CampaignStarted(cfg, workers)
}

// TrialStarted implements fleet.Observer.
func (o *Observatory) TrialStarted(spec fleet.TrialSpec) {
	o.progress.TrialStarted(spec)
	o.sink.Emit(Event{Type: EventTrialStart, Trial: spec.Index, Seq: 0, Seed: spec.Seed})
}

// TrialFinished implements fleet.Observer: update the tracker, then stream
// the trial's events — finding (if any), trial_end, corpus_merge (if the
// trial evolved a corpus) — followed by a campaign checkpoint at every
// CheckpointEvery-th completion. Per-trial event content is a pure
// function of the trial result; the checkpoint carries only the completed
// count, which is worker-count independent too.
func (o *Observatory) TrialFinished(res fleet.TrialResult) {
	o.progress.TrialFinished(res)
	if o.sink != nil {
		seq := 1
		if res.Status == fleet.StatusFinding {
			o.sink.Emit(Event{
				Type: EventFinding, Trial: res.Trial, Seq: seq,
				VirtualNanos: int64(res.TimeToFinding),
				Oracle:       res.Oracle, Detail: res.Detail, TriggerID: res.TriggerID,
			})
			seq++
		}
		o.sink.Emit(Event{
			Type: EventTrialEnd, Trial: res.Trial, Seq: seq,
			Status:       res.Status,
			VirtualNanos: int64(res.VirtualElapsed),
			Frames:       res.FramesSent,
			SendErrors:   res.SendErrors,
			Findings:     res.Findings,
		})
		if n := len(res.Corpus); n > 0 {
			o.sink.Emit(Event{
				Type: EventCorpusMerge, Trial: res.Trial, Seq: seq + 1,
				Frames: uint64(n),
			})
		}
	}
	n := o.completions.Add(1)
	total := int(o.trialsTotal.Load())
	if n%o.checkpointEvery == 0 || int(n) == total {
		o.sink.Emit(Event{
			Type: EventCheckpoint, Trial: -1, Seq: int(n),
			Completed: int(n), Total: total,
		})
	}
}

// CampaignDone implements fleet.Observer. With fail-fast skips the final
// per-count checkpoint never fires, so a closing checkpoint is emitted
// here instead.
func (o *Observatory) CampaignDone(rep *fleet.Report) {
	o.progress.CampaignDone(rep)
	n := o.completions.Load()
	total := int(o.trialsTotal.Load())
	if int(n) != total && n%o.checkpointEvery != 0 {
		o.sink.Emit(Event{
			Type: EventCheckpoint, Trial: -1, Seq: int(n),
			Completed: int(n), Total: total,
		})
	}
}

// syncMetrics refreshes the campaign-level gauges from the live trackers;
// the HTTP handler calls it before serving any metrics route, so a scrape
// always sees current values without any per-trial push cost.
func (o *Observatory) syncMetrics() {
	if o.tel == nil {
		return
	}
	ps := o.progress.Snapshot()
	if ps.MaxVirtualNanos > 0 {
		// Fleet mode: no single world advances the registry clock, so the
		// deepest trial stands in for campaign virtual progress. Single-run
		// campaigns advance it themselves; leave their clock alone.
		o.tel.Advance(time.Duration(ps.MaxVirtualNanos))
	}
	o.gTrialsDone.Set(float64(ps.TrialsDone))
	o.gTrialsTotal.Set(float64(ps.TrialsTotal))
	o.gFindings.Set(float64(ps.Findings))
	o.gFrames.Set(float64(ps.FramesSent))
	if o.fuzz != nil {
		fs := o.fuzz.Snapshot()
		o.gCorpus.Set(float64(fs.CorpusSize))
		o.gNoveltyBits.Set(float64(fs.NoveltyBitsSet))
		o.gExecsSinceNovelty.Set(float64(fs.ExecsSinceNoveltyMin))
	}
}
