package observatory

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"repro/internal/telemetry"
)

// maxEventBatch bounds one /events response so a tail client cannot ask
// the server to buffer the whole log in one reply.
const maxEventBatch = 4096

// defaultLongPoll is the /events wait used when the client asks to block
// (waitMs > 0) without giving a bound we accept; it also caps client
// requests so handlers always return.
const defaultLongPoll = 30 * time.Second

// HandlerConfig tunes Handler.
type HandlerConfig struct {
	// Pprof mounts net/http/pprof under /debug/pprof/ — CPU and heap
	// profiles of a live campaign (the -pprof flag).
	Pprof bool
}

// Handler returns the campaign introspection endpoint:
//
//	/campaign.json  live fleet progress: trials done/total, per-outcome
//	                counters, exec/s, ETA, phase wall breakdown, the
//	                time-to-finding histogram so far
//	/events         JSONL tail of the campaign event log; ?since=N resumes
//	                at stream index N, ?waitMs=T long-polls for new lines
//	/fuzz.json      guided-engine internals: novelty saturation, corpus
//	                energy quantiles, mutate-vs-explore ratio, staleness
//	/debug/pprof/*  (with cfg.Pprof) live CPU/heap/goroutine profiles
//
// plus, when the observatory carries a telemetry plane, all telemetry
// routes (/metrics, /metrics.json, /trace.json, /healthz) with
// campaign-level gauges refreshed per scrape. Every route reads atomically
// published state; scraping never stalls fleet workers.
func (o *Observatory) Handler(cfg HandlerConfig) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/campaign.json", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, o.progress.Snapshot())
	})
	mux.HandleFunc("/fuzz.json", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, o.fuzz.Snapshot())
	})
	mux.HandleFunc("/events", o.serveEvents)
	if cfg.Pprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	if o.tel != nil {
		inner := telemetry.Handler(o.tel)
		mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
			o.syncMetrics()
			inner.ServeHTTP(w, r)
		})
	}
	return mux
}

// serveEvents streams the event-log tail as JSONL. Without parameters it
// returns the newest lines the ring still holds; with ?since=N it resumes
// at stream index N; with ?waitMs=T it long-polls up to T ms for lines
// past the cursor before answering (possibly empty on timeout). The
// response carries:
//
//	X-Events-Next:  the cursor to pass as ?since= next time
//	X-Events-From:  the index the batch actually starts at (> since when
//	                the ring dropped older lines; the full log is in the
//	                -events file)
//	X-Events-Total: lines emitted so far
func (o *Observatory) serveEvents(w http.ResponseWriter, r *http.Request) {
	ServeEventsTail(w, r, o.sink)
}

// ServeEventsTail implements the /events protocol above against any sink —
// exported so the multi-campaign service can mount one event tail per
// campaign journal without owning a full Observatory. A nil sink answers
// 404: there is no event log to tail.
func ServeEventsTail(w http.ResponseWriter, r *http.Request, sink *Sink) {
	if sink == nil {
		http.Error(w, "no event log attached (run with -events)", http.StatusNotFound)
		return
	}
	q := r.URL.Query()
	since, _ := strconv.ParseUint(q.Get("since"), 10, 64)
	maxLines, _ := strconv.Atoi(q.Get("max"))
	if maxLines <= 0 || maxLines > maxEventBatch {
		maxLines = maxEventBatch
	}
	if waitMs, _ := strconv.Atoi(q.Get("waitMs")); waitMs > 0 {
		wait := time.Duration(waitMs) * time.Millisecond
		if wait > defaultLongPoll {
			wait = defaultLongPoll
		}
		timer := time.NewTimer(wait)
		defer timer.Stop()
		select {
		case <-sink.Changed(since):
		case <-timer.C:
		case <-r.Context().Done():
			return
		}
	}
	lines, next, from := sink.Since(since, maxLines)
	w.Header().Set("Content-Type", "application/jsonl; charset=utf-8")
	w.Header().Set("X-Events-Next", strconv.FormatUint(next, 10))
	w.Header().Set("X-Events-From", strconv.FormatUint(from, 10))
	w.Header().Set("X-Events-Total", strconv.FormatUint(sink.Count(), 10))
	for _, line := range lines {
		_, _ = w.Write(line)
		_, _ = w.Write([]byte{'\n'})
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
