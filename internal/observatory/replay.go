package observatory

import (
	"encoding/json"
	"fmt"
)

// Event-log replay: the inverse of Event.MarshalJSONL, used by the
// distributed coordinator (internal/campaignd) to rebuild campaign state
// from its journal after a crash. Parsing is deliberately tolerant of
// unknown fields so older binaries can read logs written by newer ones;
// what it will not tolerate is a line that is not a JSON object with a
// string "type" — that marks a corrupt journal, not a version skew.

// wireEvent mirrors every key MarshalJSONL can emit. The two opaque
// payloads stay raw: the coordinator decodes them against its own spec
// and fleet.TrialResult types.
type wireEvent struct {
	Type         string          `json:"type"`
	Trial        int             `json:"trial"`
	Seq          int             `json:"seq"`
	Seed         int64           `json:"seed"`
	Status       string          `json:"status"`
	VirtualNanos int64           `json:"vtimeNanos"`
	Frames       uint64          `json:"frames"`
	SendErrors   uint64          `json:"sendErrors"`
	Findings     int             `json:"findings"`
	Oracle       string          `json:"oracle"`
	Detail       string          `json:"detail"`
	TriggerID    string          `json:"triggerId"`
	Completed    int             `json:"completed"`
	Total        int             `json:"total"`
	Spec         json.RawMessage `json:"spec"`
	Result       json.RawMessage `json:"result"`
}

// ParseLine decodes one JSONL event line (without or with its trailing
// newline) back into an Event. For campaign_start and trial_result the
// opaque payload lands in Event.Raw.
func ParseLine(line []byte) (Event, error) {
	var w wireEvent
	if err := json.Unmarshal(line, &w); err != nil {
		return Event{}, fmt.Errorf("observatory: bad event line: %w", err)
	}
	if w.Type == "" {
		return Event{}, fmt.Errorf("observatory: event line missing type: %.80s", line)
	}
	e := Event{
		Type: w.Type, Trial: w.Trial, Seq: w.Seq, Seed: w.Seed,
		Status: w.Status, VirtualNanos: w.VirtualNanos,
		Frames: w.Frames, SendErrors: w.SendErrors, Findings: w.Findings,
		Oracle: w.Oracle, Detail: w.Detail, TriggerID: w.TriggerID,
		Completed: w.Completed, Total: w.Total,
	}
	switch w.Type {
	case EventCampaignStart:
		e.Raw = []byte(w.Spec)
	case EventTrialResult:
		e.Raw = []byte(w.Result)
	}
	return e, nil
}
