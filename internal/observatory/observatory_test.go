// External test package: the fleet factories here use testbench, which
// imports internal/guided, which imports fleet — the same cycle the fleet
// suite avoids.
package observatory_test

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/bcm"
	"repro/internal/can"
	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/guided"
	"repro/internal/observatory"
	"repro/internal/signal"
	"repro/internal/telemetry"
	"repro/internal/testbench"
)

// unlockFactory builds the Table V bench world per trial, targeted so each
// trial unlocks within virtual seconds.
func unlockFactory(spec fleet.TrialSpec) (*fleet.World, error) {
	exp, err := testbench.NewUnlockExperiment(testbench.Config{Check: bcm.CheckByteOnly},
		core.Config{Seed: spec.Seed, TargetIDs: []can.ID{signal.IDBodyCommand}})
	if err != nil {
		return nil, err
	}
	return &fleet.World{Sched: exp.Bench.Scheduler(), Campaign: exp.Campaign}, nil
}

// guidedFactory is unlockFactory with the coverage-guided engine, wired to
// the introspection plane.
func guidedFactory(intr *guided.Introspection) fleet.TargetFactory {
	return func(spec fleet.TrialSpec) (*fleet.World, error) {
		exp, err := testbench.NewGuidedUnlockExperiment(testbench.Config{Check: bcm.CheckByteOnly},
			core.Config{Seed: spec.Seed, TargetIDs: []can.ID{signal.IDBodyCommand}},
			guided.WithIntrospection(intr))
		if err != nil {
			return nil, err
		}
		return &fleet.World{
			Sched: exp.Bench.Scheduler(), Campaign: exp.Campaign,
			Corpus: exp.Engine.CorpusFrames,
		}, nil
	}
}

// runObserved runs a small unlock fleet with a file-less sink attached and
// returns the sink plus the observatory.
func runObserved(t *testing.T, trials, workers int, buf *bytes.Buffer) (*observatory.Observatory, *fleet.Report) {
	t.Helper()
	sink := observatory.NewSink(buf)
	obs := observatory.New(observatory.Config{Sink: sink, CheckpointEvery: 2})
	rep, err := fleet.Run(fleet.Config{
		Trials: trials, Workers: workers, BaseSeed: 11,
		MaxPerTrial: 30 * time.Minute, Observer: obs,
	}, unlockFactory)
	if err != nil {
		t.Fatal(err)
	}
	if err := sink.Err(); err != nil {
		t.Fatal(err)
	}
	return obs, rep
}

func sortedLines(t *testing.T, buf *bytes.Buffer) []string {
	t.Helper()
	lines := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
	sort.Strings(lines)
	return lines
}

func TestEventLogSortedDeterminism(t *testing.T) {
	// The tentpole acceptance property: the sorted event log is
	// byte-identical at workers=1 and workers=NumCPU. Emission order is
	// scheduling-dependent; content is not.
	var seq, par bytes.Buffer
	runObserved(t, 8, 1, &seq)
	runObserved(t, 8, runtime.NumCPU(), &par)

	a, b := sortedLines(t, &seq), sortedLines(t, &par)
	if len(a) != len(b) {
		t.Fatalf("event counts differ: workers=1 got %d, workers=%d got %d",
			len(a), runtime.NumCPU(), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sorted event log differs at line %d:\nseq: %s\npar: %s", i, a[i], b[i])
		}
	}
}

func TestEventLogSchema(t *testing.T) {
	var buf bytes.Buffer
	const trials = 8
	runObserved(t, trials, 2, &buf)

	starts, ends, findings, checkpoints := 0, 0, 0, 0
	var lastCheckpoint struct{ Completed, Total int }
	for _, line := range strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n") {
		var ev map[string]any
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("line is not valid JSON: %s: %v", line, err)
		}
		typ, _ := ev["type"].(string)
		for _, key := range []string{"type", "trial", "seq"} {
			if _, ok := ev[key]; !ok {
				t.Fatalf("event lacks %q: %s", key, line)
			}
		}
		switch typ {
		case observatory.EventTrialStart:
			starts++
			if _, ok := ev["seed"]; !ok {
				t.Fatalf("trial_start lacks seed: %s", line)
			}
		case observatory.EventTrialEnd:
			ends++
			for _, key := range []string{"status", "vtimeNanos", "frames", "sendErrors", "findings"} {
				if _, ok := ev[key]; !ok {
					t.Fatalf("trial_end lacks %q: %s", key, line)
				}
			}
		case observatory.EventFinding:
			findings++
			for _, key := range []string{"vtimeNanos", "oracle", "detail", "triggerId"} {
				if _, ok := ev[key]; !ok {
					t.Fatalf("finding lacks %q: %s", key, line)
				}
			}
		case observatory.EventCorpusMerge:
			if _, ok := ev["frames"]; !ok {
				t.Fatalf("corpus_merge lacks frames: %s", line)
			}
		case observatory.EventCheckpoint:
			checkpoints++
			lastCheckpoint.Completed = int(ev["completed"].(float64))
			lastCheckpoint.Total = int(ev["total"].(float64))
			if ev["trial"].(float64) != -1 {
				t.Fatalf("checkpoint trial should be -1: %s", line)
			}
		default:
			t.Fatalf("unknown event type %q: %s", typ, line)
		}
	}
	if starts != trials || ends != trials {
		t.Errorf("got %d trial_start / %d trial_end events, want %d each", starts, ends, trials)
	}
	if findings == 0 {
		t.Error("targeted unlock fleet produced no finding events")
	}
	if checkpoints != trials/2 {
		t.Errorf("got %d checkpoints with CheckpointEvery=2 over %d trials, want %d",
			checkpoints, trials, trials/2)
	}
	if lastCheckpoint.Completed != trials || lastCheckpoint.Total != trials {
		t.Errorf("final checkpoint %+v, want completed=total=%d", lastCheckpoint, trials)
	}
}

func TestProgressSnapshotAfterRun(t *testing.T) {
	var buf bytes.Buffer
	obs, rep := runObserved(t, 6, 2, &buf)
	ps := obs.Progress().Snapshot()
	if !ps.Done {
		t.Error("progress not marked done after CampaignDone")
	}
	if ps.TrialsDone != 6 || ps.TrialsTotal != 6 {
		t.Errorf("trialsDone/trialsTotal = %d/%d, want 6/6", ps.TrialsDone, ps.TrialsTotal)
	}
	if ps.Findings != rep.FoundFindings {
		t.Errorf("progress findings %d != report %d", ps.Findings, rep.FoundFindings)
	}
	if ps.FramesSent != rep.FramesSent {
		t.Errorf("progress framesSent %d != report %d", ps.FramesSent, rep.FramesSent)
	}
	if ps.VirtualNanosTotal != int64(rep.VirtualTimeTotal) {
		t.Errorf("progress virtual total %d != report %d", ps.VirtualNanosTotal, rep.VirtualTimeTotal)
	}
	if rep.FoundFindings > 0 {
		if ps.TimeToFindingCount == 0 || len(ps.TimeToFindingHistogram) == 0 {
			t.Error("time-to-finding histogram empty despite findings")
		}
		var total uint64
		for _, b := range ps.TimeToFindingHistogram {
			total += b.Count
		}
		if total != ps.TimeToFindingCount {
			t.Errorf("histogram counts sum to %d, want %d", total, ps.TimeToFindingCount)
		}
	}
	if ps.BuildWallSeconds <= 0 || ps.RunWallSeconds <= 0 {
		t.Errorf("phase wall breakdown not populated: build=%v run=%v",
			ps.BuildWallSeconds, ps.RunWallSeconds)
	}
	if rep.BuildWall <= 0 || rep.RunWall <= 0 {
		t.Errorf("report phase walls not populated: build=%v run=%v", rep.BuildWall, rep.RunWall)
	}
}

func TestHTTPEndpoints(t *testing.T) {
	tel := telemetry.New(0)
	intr := guided.NewIntrospection()
	sink := observatory.NewSink(nil)
	obs := observatory.New(observatory.Config{Sink: sink, Fuzz: intr, Telemetry: tel})
	rep, err := fleet.Run(fleet.Config{
		Trials: 4, Workers: 2, BaseSeed: 3,
		MaxPerTrial: 30 * time.Minute, Observer: obs,
	}, guidedFactory(intr))
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(obs.Handler(observatory.HandlerConfig{}))
	defer srv.Close()

	get := func(path string) (*http.Response, []byte) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		var body bytes.Buffer
		if _, err := body.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp, body.Bytes()
	}

	resp, body := get("/campaign.json")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/campaign.json: status %d", resp.StatusCode)
	}
	var ps fleet.ProgressSnapshot
	if err := json.Unmarshal(body, &ps); err != nil {
		t.Fatalf("/campaign.json is not a ProgressSnapshot: %v\n%s", err, body)
	}
	if ps.TrialsDone != 4 || !ps.Done {
		t.Errorf("/campaign.json trialsDone=%d done=%v, want 4/true", ps.TrialsDone, ps.Done)
	}

	resp, body = get("/fuzz.json")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/fuzz.json: status %d", resp.StatusCode)
	}
	var fs guided.FuzzSnapshot
	if err := json.Unmarshal(body, &fs); err != nil {
		t.Fatalf("/fuzz.json is not a FuzzSnapshot: %v\n%s", err, body)
	}
	if fs.Engines != 4 {
		t.Errorf("/fuzz.json engines=%d, want 4 (one per trial)", fs.Engines)
	}
	if fs.Execs == 0 || fs.NoveltyBitsSet == 0 {
		t.Errorf("/fuzz.json shows no activity: %+v", fs)
	}
	if fs.CorpusSize == 0 {
		t.Errorf("/fuzz.json corpusSize=0 after guided unlock runs")
	}

	resp, body = get("/events?since=0")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/events: status %d", resp.StatusCode)
	}
	lines := strings.Split(strings.TrimSuffix(string(body), "\n"), "\n")
	if uint64(len(lines)) != sink.Count() {
		t.Errorf("/events returned %d lines, sink holds %d", len(lines), sink.Count())
	}
	if next := resp.Header.Get("X-Events-Next"); next == "" || next == "0" {
		t.Errorf("X-Events-Next = %q, want the stream length", next)
	}

	// Tail from the end: no lines, cursor unchanged.
	resp, body = get("/events?since=" + resp.Header.Get("X-Events-Next"))
	if len(bytes.TrimSpace(body)) != 0 {
		t.Errorf("tailing past the end returned lines: %s", body)
	}

	resp, body = get("/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: status %d", resp.StatusCode)
	}
	for _, metric := range []string{"campaign_trials_done", "campaign_trials_total", "fuzz_corpus_size"} {
		if !strings.Contains(string(body), metric) {
			t.Errorf("/metrics lacks %s", metric)
		}
	}

	if resp, _ = get("/debug/pprof/cmdline"); resp.StatusCode == http.StatusOK {
		t.Error("pprof served without HandlerConfig.Pprof")
	}
	_ = rep
}

func TestHTTPPprofEnabled(t *testing.T) {
	obs := observatory.New(observatory.Config{})
	srv := httptest.NewServer(obs.Handler(observatory.HandlerConfig{Pprof: true}))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/debug/pprof/cmdline with Pprof on: status %d", resp.StatusCode)
	}
}

func TestEventsLongPoll(t *testing.T) {
	sink := observatory.NewSink(nil)
	obs := observatory.New(observatory.Config{Sink: sink})
	srv := httptest.NewServer(obs.Handler(observatory.HandlerConfig{}))
	defer srv.Close()

	done := make(chan string, 1)
	go func() {
		resp, err := http.Get(srv.URL + "/events?since=0&waitMs=5000")
		if err != nil {
			done <- "error: " + err.Error()
			return
		}
		var body bytes.Buffer
		_, _ = body.ReadFrom(resp.Body)
		resp.Body.Close()
		done <- body.String()
	}()

	// Give the poller a moment to register its waiter, then emit.
	time.Sleep(50 * time.Millisecond)
	sink.Emit(observatory.Event{Type: observatory.EventCheckpoint, Trial: -1, Seq: 1, Completed: 1, Total: 2})

	select {
	case body := <-done:
		if !strings.Contains(body, `"type":"checkpoint"`) {
			t.Errorf("long-poll body = %q, want the checkpoint event", body)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("long-poll never returned after an emit")
	}
}

func TestSinkRingAndCursors(t *testing.T) {
	var nilSink *observatory.Sink
	nilSink.Emit(observatory.Event{Type: observatory.EventCheckpoint})
	if nilSink.Count() != 0 || nilSink.Err() != nil {
		t.Error("nil sink is not a silent no-op")
	}
	lines, next, from := nilSink.Since(0, 10)
	if lines != nil || next != 0 || from != 0 {
		t.Error("nil sink Since not empty")
	}

	sink := observatory.NewSink(nil)
	for i := 0; i < 10; i++ {
		sink.Emit(observatory.Event{Type: observatory.EventCheckpoint, Trial: -1, Seq: i, Completed: i, Total: 10})
	}
	lines, next, from = sink.Since(4, 3)
	if len(lines) != 3 || from != 4 || next != 7 {
		t.Errorf("Since(4,3) = %d lines, from %d, next %d; want 3, 4, 7", len(lines), from, next)
	}
	if !strings.Contains(string(lines[0]), `"completed":4`) {
		t.Errorf("Since(4,3) first line = %s, want completed 4", lines[0])
	}
	// A cursor past the end clamps.
	lines, next, _ = sink.Since(99, 10)
	if len(lines) != 0 || next != 10 {
		t.Errorf("Since past end = %d lines, next %d; want 0, 10", len(lines), next)
	}
	// Changed is pre-closed when the cursor is already behind.
	select {
	case <-sink.Changed(0):
	default:
		t.Error("Changed(0) not ready with 10 lines emitted")
	}
}

func TestSinkClose(t *testing.T) {
	sink := observatory.NewSink(nil)

	// A waiter registered before Close is woken by it.
	ch := sink.Changed(0)
	select {
	case <-ch:
		t.Fatal("Changed(0) ready on an empty stream")
	default:
	}
	if err := sink.Close(); err != nil {
		t.Fatalf("Close on a healthy sink: %v", err)
	}
	select {
	case <-ch:
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not wake the registered waiter")
	}

	// After Close every Changed comes back pre-closed, at any cursor.
	select {
	case <-sink.Changed(99):
	default:
		t.Error("Changed after Close should be pre-closed")
	}

	// Emit after Close still records the line: late results are data.
	sink.Emit(observatory.Event{Type: observatory.EventCheckpoint, Trial: -1, Seq: 1, Completed: 1, Total: 1})
	if sink.Count() != 1 {
		t.Errorf("post-Close emit not recorded: count = %d", sink.Count())
	}

	// Close surfaces the sticky write error; idempotent.
	bad := observatory.NewSink(failWriter{})
	bad.Emit(observatory.Event{Type: observatory.EventCheckpoint, Trial: -1})
	if err := bad.Close(); err == nil {
		t.Error("Close swallowed the sticky write error")
	}
	if err := bad.Close(); err == nil {
		t.Error("second Close swallowed the sticky write error")
	}

	var nilSink *observatory.Sink
	if err := nilSink.Close(); err != nil {
		t.Errorf("nil sink Close: %v", err)
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, errWriteFailed }

var errWriteFailed = errors.New("disk full")

func TestEventParseLineRoundTrip(t *testing.T) {
	events := []observatory.Event{
		{Type: observatory.EventTrialStart, Trial: 3, Seq: 0, Seed: -42},
		{Type: observatory.EventFinding, Trial: 3, Seq: 1, VirtualNanos: 1234,
			Oracle: "unlock-ack", Detail: `a "quoted" detail`, TriggerID: "215"},
		{Type: observatory.EventTrialEnd, Trial: 3, Seq: 2, Status: "finding",
			VirtualNanos: 5678, Frames: 99, SendErrors: 2, Findings: 1},
		{Type: observatory.EventCorpusMerge, Trial: 3, Seq: 3, Frames: 7},
		{Type: observatory.EventCheckpoint, Trial: -1, Seq: 4, Completed: 4, Total: 8},
		{Type: observatory.EventCampaignStart, Trial: -1, Seq: 0, Raw: []byte(`{"trials":8,"baseSeed":5}`)},
		{Type: observatory.EventTrialResult, Trial: 3, Seq: 5, Raw: []byte(`{"trial":3,"status":"finding"}`)},
	}
	for _, want := range events {
		line := want.MarshalJSONL(nil)
		got, err := observatory.ParseLine(line)
		if err != nil {
			t.Fatalf("ParseLine(%s): %v", line, err)
		}
		// Marshalling the parsed event must reproduce the original bytes:
		// that is the property the resume journal depends on.
		if back := got.MarshalJSONL(nil); !bytes.Equal(back, line) {
			t.Errorf("round trip diverged:\n in: %s\nout: %s", line, back)
		}
	}

	if _, err := observatory.ParseLine([]byte(`not json`)); err == nil {
		t.Error("ParseLine accepted garbage")
	}
	if _, err := observatory.ParseLine([]byte(`{"trial":1}`)); err == nil {
		t.Error("ParseLine accepted a line without a type")
	}
}

func TestEventsLongPollUnblocksOnShutdown(t *testing.T) {
	// Satellite of the distributed-campaign work: a graceful server
	// shutdown must not wait out every /events long-poller's waitMs. The
	// sink's Close is registered as an http.Server shutdown hook, so
	// telemetry.Shutdown wakes the pollers and the drain completes
	// promptly, leaving no poller goroutines behind.
	sink := observatory.NewSink(nil)
	obs := observatory.New(observatory.Config{Sink: sink})
	srv, addr, err := telemetry.ServeHandler("127.0.0.1:0", obs.Handler(observatory.HandlerConfig{}), func() { _ = sink.Close() })
	if err != nil {
		t.Fatal(err)
	}

	before := runtime.NumGoroutine()
	const pollers = 4
	done := make(chan error, pollers)
	for i := 0; i < pollers; i++ {
		go func() {
			resp, err := http.Get("http://" + addr + "/events?since=0&waitMs=25000")
			if err == nil {
				resp.Body.Close()
			}
			done <- err
		}()
	}
	// Wait until every poller has parked in the sink's waiter list; only
	// then is shutdown actually racing against blocked long-polls.
	deadline := time.Now().Add(10 * time.Second)
	for sink.Waiting() < pollers && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if n := sink.Waiting(); n < pollers {
		t.Fatalf("only %d of %d pollers registered", n, pollers)
	}

	start := time.Now()
	telemetry.Shutdown(srv, 5*time.Second)
	for i := 0; i < pollers; i++ {
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("poller failed: %v", err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("long-poller still blocked after Shutdown")
		}
	}
	if took := time.Since(start); took > 5*time.Second {
		t.Errorf("shutdown took %v, pollers were not woken", took)
	}

	// The poller goroutines (and the server's) must be gone; allow the
	// runtime a moment to reap them.
	deadline = time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Errorf("goroutines leaked across shutdown: before=%d after=%d", before, after)
	}
}

func TestObservatoryNilSinkFleet(t *testing.T) {
	// An observatory with no sink is still a valid observer (progress
	// only) — the -metrics-without--events path.
	obs := observatory.New(observatory.Config{})
	if _, err := fleet.Run(fleet.Config{
		Trials: 2, Workers: 2, BaseSeed: 5,
		MaxPerTrial: 30 * time.Minute, Observer: obs,
	}, unlockFactory); err != nil {
		t.Fatal(err)
	}
	if got := obs.Progress().Snapshot().TrialsDone; got != 2 {
		t.Errorf("trialsDone = %d, want 2", got)
	}
	if obs.Sink() != nil {
		t.Error("Sink() should be nil when none was configured")
	}
}
