// Package target is the shared world builder: one place that knows how to
// construct each simulated system under test (the bench-top unlock testbed,
// the instrument cluster, the full vehicle) as a fully isolated fleet.World
// with the target's oracles armed and its guided-fuzzing probes exposed.
//
// Before this package the construction recipe lived inside cmd/canfuzz,
// which meant every other consumer of a world — the distributed worker, the
// minimizer, replay tooling — had to route through the CLI. Now the CLI,
// the campaignd worker runtime, the findings regression replayer
// (internal/findings) and canreplay all build worlds through the same
// code path, which is what keeps a trial's result byte-identical no matter
// which tool executed it.
package target

import (
	"fmt"
	"time"

	"repro/internal/bcm"
	"repro/internal/campaignd"
	"repro/internal/can"
	"repro/internal/clock"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/ecu"
	"repro/internal/faults"
	"repro/internal/fleet"
	"repro/internal/guided"
	"repro/internal/oracle"
	"repro/internal/telemetry"
	"repro/internal/testbench"
	"repro/internal/vehicle"

	busPkg "repro/internal/bus"
	sigPkg "repro/internal/signal"
)

// Spec names everything needed to construct one target world.
type Spec struct {
	// Target selects the simulated system: "bench", "cluster" or "vehicle".
	Target string
	// Bus selects the vehicle bus ("body" or "powertrain"; vehicle only).
	Bus string
	// Check is the bench BCM parser strictness (Table V variable).
	Check bcm.CheckMode
	// Stop halts the campaign at its first finding.
	Stop bool
	// Recovery arms ISO 11898-1 bus-off auto-recovery plus the campaign
	// resilience policy.
	Recovery bool
	// GuidedSeed holds seed frames injected into every guided engine.
	GuidedSeed []can.Frame
}

// Options carries the optional instrumentation a world can be built with.
// The zero value (every hook nil) is the fleet-trial configuration: fully
// uninstrumented, hot path unchanged.
type Options struct {
	// Telemetry, when non-nil, instruments the world's bus/ECUs/campaign.
	Telemetry *telemetry.Telemetry
	// Plan, when non-nil, attaches a fault-injection plan; the injector is
	// built on the world's own scheduler and returned in Built.Injector.
	Plan *faults.Plan
	// Introspection, when non-nil, registers the world's guided engine (if
	// any) with the fuzzer-introspection plane behind /fuzz.json.
	Introspection *guided.Introspection
}

// Built is one constructed target world plus the handles the caller may
// need beyond the fleet contract: the armed fault injector (nil without a
// plan) and the target's reaction probes — the same feature sources the
// guided engine's novelty map reads, exposed so replay tooling can capture
// a world's reaction-feature vector after a run.
type Built struct {
	World    *fleet.World
	Injector *faults.Injector
	Probes   []guided.Probe
}

// ParseCheckMode maps the textual -bcm-check flag (and the campaign spec's
// BCMCheck field) onto the bench parser mode.
func ParseCheckMode(s string) (bcm.CheckMode, error) {
	switch s {
	case "", "byte":
		return bcm.CheckByteOnly, nil
	case "length":
		return bcm.CheckByteAndLength, nil
	case "twobytes":
		return bcm.CheckTwoBytes, nil
	default:
		return 0, fmt.Errorf("unknown bcm-check %q", s)
	}
}

// CheckModeName is the inverse of ParseCheckMode — the wire name findings
// records and campaign specs store.
func CheckModeName(m bcm.CheckMode) string {
	switch m {
	case bcm.CheckByteAndLength:
		return "length"
	case bcm.CheckTwoBytes:
		return "twobytes"
	default:
		return "byte"
	}
}

// Build constructs one fully isolated target world: a fresh scheduler, the
// selected target system on it, and an armed campaign with the target's
// oracles. Every call returns a fully independent world (no shared
// scheduler, bus, ECU or RNG state), so worlds may run concurrently.
func Build(spec Spec, cfg core.Config, o Options) (*Built, error) {
	sched := clock.New()
	tel := o.Telemetry
	var opts []core.Option
	if spec.Stop {
		opts = append(opts, core.WithStopOnFinding())
	}
	if tel != nil {
		opts = append(opts, core.WithTelemetry(tel))
	}
	var inj *faults.Injector
	if o.Plan != nil {
		inj = faults.New(sched, *o.Plan)
		inj.Instrument(tel)
		opts = append(opts, core.WithFaultCounts(inj.Counts))
	}
	if spec.Recovery {
		opts = append(opts, core.WithResilience(core.DefaultResilience()))
	}

	var campaign *core.Campaign
	var probes []guided.Probe
	var bench *testbench.Bench
	var err error
	switch spec.Target {
	case "bench":
		bench = testbench.New(sched, testbench.Config{Check: spec.Check, AckUnlock: true})
		bench.Instrument(tel)
		fuzzPort := bench.AttachFuzzer("fuzzer")
		armChaos(inj, spec.Recovery, bench.Bus, bench.ECUs(), fuzzPort)
		campaign, err = core.NewCampaign(sched, fuzzPort, cfg, opts...)
		if err != nil {
			return nil, err
		}
		campaign.AddOracle(bench.UnlockOracle())
		campaign.AddOracle(bench.LEDOracle(10 * time.Millisecond))
		probes = bench.GuidedProbes(fuzzPort)

	case "cluster":
		b := busPkg.New(sched, busPkg.WithName("bench"))
		b.Instrument(tel)
		clusterECU := ecu.New("cluster", sched, b.Connect("cluster"))
		clusterECU.Instrument(tel)
		c := cluster.New(clusterECU)
		fuzzPort := b.Connect("fuzzer")
		armChaos(inj, spec.Recovery, b, map[string]*ecu.ECU{"cluster": clusterECU}, fuzzPort)
		campaign, err = core.NewCampaign(sched, fuzzPort, cfg, opts...)
		if err != nil {
			return nil, err
		}
		campaign.AddOracle(&oracle.Probe{
			OracleName: "cluster-crash", Interval: 10 * time.Millisecond, Once: true,
			Check: func() string {
				if c.Crashed() {
					return "persistent CRASH display latched"
				}
				return ""
			},
		})
		probes = []guided.Probe{
			{Name: "cluster_crash_displays", Fn: c.CrashDisplays},
			{Name: "fuzzer_tec", Fn: func() uint64 { tec, _ := fuzzPort.ErrorCounters(); return uint64(tec) }},
			{Name: "fuzzer_rec", Fn: func() uint64 { _, rec := fuzzPort.ErrorCounters(); return uint64(rec) }},
		}

	case "vehicle":
		which := vehicle.OBDBody
		if spec.Bus == "powertrain" {
			which = vehicle.OBDPowertrain
		}
		v := vehicle.New(sched, vehicle.Config{Seed: cfg.Seed, BCMAckUnlock: true})
		v.Instrument(tel)
		sched.RunUntil(time.Second) // let the car reach steady idle
		fuzzPort := v.AttachOBD(which, "fuzzer")
		fuzzedBus := v.Body
		if which == vehicle.OBDPowertrain {
			fuzzedBus = v.Powertrain
		}
		armChaos(inj, spec.Recovery, fuzzedBus, v.ECUs(), fuzzPort)
		if spec.Recovery {
			// Both car buses survive bus-off, not just the fuzzed one.
			v.Powertrain.SetAutoRecovery(true)
			v.Body.SetAutoRecovery(true)
		}
		campaign, err = core.NewCampaign(sched, fuzzPort, cfg, opts...)
		if err != nil {
			return nil, err
		}
		campaign.AddOracle(&oracle.SignalRange{DB: sigPkg.VehicleDB()})
		campaign.AddOracle(oracle.Physical("bcm-unlock", 10*time.Millisecond,
			v.BCM.Unlocked, false, "doors unlocked"))
		probes = []guided.Probe{
			{Name: "bcm_unlocked", Fn: func() uint64 {
				if v.BCM.Unlocked() {
					return 1
				}
				return 0
			}},
			{Name: "fuzzer_tec", Fn: func() uint64 { tec, _ := fuzzPort.ErrorCounters(); return uint64(tec) }},
			{Name: "fuzzer_rec", Fn: func() uint64 { _, rec := fuzzPort.ErrorCounters(); return uint64(rec) }},
		}

	default:
		return nil, fmt.Errorf("unknown target %q", spec.Target)
	}

	world := &fleet.World{Sched: sched, Campaign: campaign}
	var eng *guided.Engine
	if cfg.Mode == core.ModeGuided {
		engOpts := []guided.EngineOption{guided.WithProbes(probes...)}
		if tel != nil {
			engOpts = append(engOpts, guided.WithTelemetry(tel))
		}
		if o.Introspection != nil {
			engOpts = append(engOpts, guided.WithIntrospection(o.Introspection))
		}
		if len(spec.GuidedSeed) > 0 {
			engOpts = append(engOpts, guided.WithSeedFrames(spec.GuidedSeed))
		}
		eng, err = guided.NewEngine(cfg, engOpts...)
		if err != nil {
			return nil, err
		}
		campaign.SetFrameSource(eng)
		world.Corpus = eng.CorpusFrames
	}
	// The bench target supports in-place world reuse: every component on
	// it knows how to return to its as-built state, so fleet workers can
	// recycle the world across trials instead of rebuilding it. Worlds
	// with a fault-injection plan are excluded — the injector schedules
	// its plan at construction and has no re-arm path — as are the cluster
	// and vehicle targets (their ECU applications keep state the reset
	// plumbing does not yet cover).
	if spec.Target == "bench" && o.Plan == nil {
		world.Reset = func(ts fleet.TrialSpec) error {
			sched.Reset()
			tel.Reset()
			bench.Reset()
			if eng != nil {
				eng.Reset(ts.Seed)
			}
			campaign.Reset(ts.Seed)
			return nil
		}
	}
	return &Built{World: world, Injector: inj, Probes: probes}, nil
}

// FromCampaignSpec maps a distributed campaign spec onto the world builder
// inputs: the Spec Build consumes plus the base generator config (per-trial
// seeds are substituted by the caller's factory).
func FromCampaignSpec(spec campaignd.CampaignSpec) (Spec, core.Config, error) {
	checkMode, err := ParseCheckMode(spec.BCMCheck)
	if err != nil {
		return Spec{}, core.Config{}, err
	}
	cfg, err := spec.Config.ToConfig()
	if err != nil {
		return Spec{}, core.Config{}, fmt.Errorf("spec config: %w", err)
	}
	var guidedSeed []can.Frame
	for _, line := range spec.GuidedSeed {
		f, err := core.ParseCorpusFrame(line)
		if err != nil {
			return Spec{}, core.Config{}, fmt.Errorf("spec guided seed %q: %w", line, err)
		}
		guidedSeed = append(guidedSeed, f)
	}
	busName := spec.Bus
	if busName == "" {
		busName = "body"
	}
	ts := Spec{
		Target:     spec.Target,
		Bus:        busName,
		Check:      checkMode,
		Stop:       spec.StopOnFinding,
		Recovery:   spec.Recovery,
		GuidedSeed: guidedSeed,
	}
	return ts, cfg, nil
}

// armChaos wires the fault injector and the recovery policy into one
// target bus: the bus gets ISO 11898-1 auto-recovery when requested, and
// the injector learns where to corrupt the wire and which ECUs a
// stall/panic target name resolves to. The fuzzer's own port is attachable
// as detach target "fuzzer".
func armChaos(inj *faults.Injector, recovery bool, b *busPkg.Bus, ecus map[string]*ecu.ECU, fuzzPort *busPkg.Port) {
	if recovery {
		b.SetAutoRecovery(true)
	}
	if inj == nil {
		return
	}
	inj.AttachBus(b)
	for name, e := range ecus {
		inj.AttachECU(name, e)
	}
	inj.AttachPort("fuzzer", fuzzPort)
}
