// External test package, like the fleet suite: the trial factories use
// testbench, which imports guided, which imports fleet.
package campaignd_test

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"

	"net/http/httptest"

	"repro/internal/bcm"
	"repro/internal/campaignd"
	"repro/internal/can"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/fleet"
	"repro/internal/observatory"
	"repro/internal/signal"
	"repro/internal/testbench"
)

// unlockFactory builds the Table V bench world per trial.
func unlockFactory(spec fleet.TrialSpec) (*fleet.World, error) {
	exp, err := testbench.NewUnlockExperiment(testbench.Config{Check: bcm.CheckByteOnly},
		core.Config{Seed: spec.Seed, TargetIDs: []can.ID{signal.IDBodyCommand}})
	if err != nil {
		return nil, err
	}
	return &fleet.World{Sched: exp.Bench.Scheduler(), Campaign: exp.Campaign}, nil
}

// testSpec is the campaign every test here shards.
func testSpec(trials int) campaignd.CampaignSpec {
	return campaignd.CampaignSpec{
		Target:           "bench",
		BCMCheck:         "byte",
		Trials:           trials,
		BaseSeed:         11,
		MaxPerTrialNanos: int64(30 * time.Minute),
	}
}

// buildBench is the worker-side runtime builder every test shares: the
// bench world factory plus the spec's deadlines.
func buildBench(spec campaignd.CampaignSpec) (campaignd.Runtime, error) {
	return campaignd.Runtime{Factory: unlockFactory, FleetCfg: spec.FleetConfig()}, nil
}

// inProcessGolden runs the same campaign through fleet.Run at workers=1
// and returns its serialised report — the byte-identity reference.
func inProcessGolden(t *testing.T, spec campaignd.CampaignSpec) []byte {
	t.Helper()
	cfg := spec.FleetConfig()
	cfg.Workers = 1
	rep, err := fleet.Run(cfg, unlockFactory)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func reportBytes(t *testing.T, rep *fleet.Report) []byte {
	t.Helper()
	if rep == nil {
		t.Fatal("nil report")
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestDistributedReportMatchesInProcess(t *testing.T) {
	spec := testSpec(6)
	golden := inProcessGolden(t, spec)

	var journal bytes.Buffer
	sink := observatory.NewSink(&journal)
	coord, err := campaignd.New(campaignd.Config{Spec: spec, Sink: sink})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	var wg sync.WaitGroup
	for _, name := range []string{"w1", "w2", "w3"} {
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			w := &campaignd.Worker{
				Client: &campaignd.Client{Base: srv.URL},
				Name:   name,
				Build:  buildBench,
			}
			if err := w.Run(context.Background()); err != nil {
				t.Errorf("worker %s: %v", name, err)
			}
		}(name)
	}
	wg.Wait()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	rep, err := coord.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got := reportBytes(t, rep); !bytes.Equal(got, golden) {
		t.Fatalf("distributed report differs from in-process run:\n--- dist ---\n%s\n--- golden ---\n%s", got, golden)
	}

	// The journal must be a self-sufficient record: replay it and the same
	// report falls out.
	j, err := campaignd.LoadJournal(bytes.NewReader(journal.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Compatible(spec); err != nil {
		t.Fatal(err)
	}
	if len(j.Results) != spec.Trials {
		t.Fatalf("journal holds %d results, want %d", len(j.Results), spec.Trials)
	}
	st := coord.Snapshot()
	if !st.Complete || st.Done != spec.Trials {
		t.Fatalf("status after completion: %+v", st)
	}
}

func TestWorkerCrashLeaseRedispatch(t *testing.T) {
	// A worker that takes a lease and dies must not strand its trial: the
	// lease expires and the trial is re-dispatched after backoff.
	spec := testSpec(2)
	coord, err := campaignd.New(campaignd.Config{
		Spec:       spec,
		LeaseTTL:   60 * time.Millisecond,
		Redispatch: campaignd.DefaultRedispatch, // Base 250ms
	})
	if err != nil {
		t.Fatal(err)
	}

	// "Crashed" worker: leases trial 0, never heartbeats, never submits.
	dead := coord.AcquireLease("crashed")
	if dead.Status != campaignd.LeaseGranted || dead.Trial != 0 {
		t.Fatalf("first lease = %+v", dead)
	}

	// A live worker immediately gets trial 1...
	l1 := coord.AcquireLease("live")
	if l1.Status != campaignd.LeaseGranted || l1.Trial != 1 {
		t.Fatalf("second lease = %+v", l1)
	}
	// ...and then must wait out the dead lease's TTL + redispatch backoff
	// before trial 0 comes around again.
	var l0 campaignd.Lease
	deadline := time.Now().Add(10 * time.Second)
	for {
		l0 = coord.AcquireLease("live")
		if l0.Status == campaignd.LeaseGranted {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("trial 0 never re-dispatched: %+v", l0)
		}
		time.Sleep(l0.RetryAfter)
	}
	if l0.Trial != 0 || l0.ID == dead.ID {
		t.Fatalf("redispatched lease = %+v (dead lease id %d)", l0, dead.ID)
	}
	if st := coord.Snapshot(); st.Expiries == 0 {
		t.Fatalf("no expiry recorded: %+v", st)
	}

	// The dead worker's heartbeat would now be refused.
	if err := coord.Heartbeat(dead.ID); err == nil {
		t.Fatal("heartbeat on an expired lease succeeded")
	}

	// Both trials complete through the live worker.
	for _, l := range []campaignd.Lease{l1, l0} {
		res := fleet.RunTrial(fleet.TrialSpec{Index: l.Trial, Seed: l.Seed},
			spec.FleetConfig(), unlockFactory)
		if err := coord.Submit(l.Trial, l.ID, res); err != nil {
			t.Fatal(err)
		}
	}
	if rep := coord.Report(); rep == nil || rep.Completed != 2 {
		t.Fatalf("report = %+v", rep)
	}

	// The stale worker finally submits trial 0: idempotent duplicate.
	res := fleet.RunTrial(fleet.TrialSpec{Index: 0, Seed: dead.Seed},
		spec.FleetConfig(), unlockFactory)
	if err := coord.Submit(0, dead.ID, res); err != campaignd.ErrTrialDone {
		t.Fatalf("duplicate submit err = %v, want ErrTrialDone", err)
	}
	if st := coord.Snapshot(); st.Duplicates != 1 {
		t.Fatalf("duplicates = %d, want 1", st.Duplicates)
	}
}

func TestCoordinatorCrashResume(t *testing.T) {
	spec := testSpec(6)
	golden := inProcessGolden(t, spec)
	cfg := spec.FleetConfig()

	// First coordinator journals three accepted trials, then "crashes" (is
	// dropped without ceremony).
	var journal bytes.Buffer
	first, err := campaignd.New(campaignd.Config{Spec: spec, Sink: observatory.NewSink(&journal)})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		l := first.AcquireLease("w")
		if l.Status != campaignd.LeaseGranted {
			t.Fatalf("lease %d: %+v", i, l)
		}
		res := fleet.RunTrial(fleet.TrialSpec{Index: l.Trial, Seed: l.Seed}, cfg, unlockFactory)
		if err := first.Submit(l.Trial, l.ID, res); err != nil {
			t.Fatal(err)
		}
	}

	// Successor: reload the journal, verify compatibility, resume.
	j, err := campaignd.LoadJournal(bytes.NewReader(journal.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Compatible(spec); err != nil {
		t.Fatal(err)
	}
	if len(j.Results) != 3 {
		t.Fatalf("journal recovered %d results, want 3", len(j.Results))
	}
	second, err := campaignd.New(campaignd.Config{
		Spec: spec, Sink: observatory.NewSink(&journal), Resumed: j.Results,
	})
	if err != nil {
		t.Fatal(err)
	}
	if st := second.Snapshot(); st.Done != 3 || st.Resumed != 3 {
		t.Fatalf("resumed status: %+v", st)
	}

	// A completed trial is never re-leased: drain the remaining three.
	seen := map[int]bool{}
	for i := 0; i < 3; i++ {
		l := second.AcquireLease("w")
		if l.Status != campaignd.LeaseGranted {
			t.Fatalf("post-resume lease: %+v", l)
		}
		if seen[l.Trial] {
			t.Fatalf("trial %d leased twice", l.Trial)
		}
		seen[l.Trial] = true
		res := fleet.RunTrial(fleet.TrialSpec{Index: l.Trial, Seed: l.Seed}, cfg, unlockFactory)
		if err := second.Submit(l.Trial, l.ID, res); err != nil {
			t.Fatal(err)
		}
	}
	if l := second.AcquireLease("w"); l.Status != campaignd.LeaseDone {
		t.Fatalf("lease after completion: %+v", l)
	}
	if got := reportBytes(t, second.Report()); !bytes.Equal(got, golden) {
		t.Fatalf("resumed report differs from in-process run:\n--- resumed ---\n%s\n--- golden ---\n%s", got, golden)
	}
}

func TestResumeRejectsForeignJournal(t *testing.T) {
	spec := testSpec(4)
	var journal bytes.Buffer
	if _, err := campaignd.New(campaignd.Config{Spec: spec, Sink: observatory.NewSink(&journal)}); err != nil {
		t.Fatal(err)
	}
	j, err := campaignd.LoadJournal(bytes.NewReader(journal.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	other := spec
	other.BaseSeed++
	if err := j.Compatible(other); err == nil {
		t.Fatal("journal accepted for a different base seed")
	}
	if err := (&campaignd.Journal{}).Compatible(spec); err == nil {
		t.Fatal("journal without campaign_start accepted")
	}
}

func TestJournalTruncatedTail(t *testing.T) {
	spec := testSpec(4)
	cfg := spec.FleetConfig()
	var journal bytes.Buffer
	coord, err := campaignd.New(campaignd.Config{Spec: spec, Sink: observatory.NewSink(&journal)})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		l := coord.AcquireLease("w")
		res := fleet.RunTrial(fleet.TrialSpec{Index: l.Trial, Seed: l.Seed}, cfg, unlockFactory)
		if err := coord.Submit(l.Trial, l.ID, res); err != nil {
			t.Fatal(err)
		}
	}

	// Tear the final line mid-write, as a crash during append would.
	torn := journal.String()
	torn = torn[:len(torn)-len("\n")-7] + "\n"
	j, err := campaignd.LoadJournal(strings.NewReader(torn[:len(torn)-1]))
	if err != nil {
		t.Fatalf("torn tail should be tolerated: %v", err)
	}
	if !j.TruncatedTail {
		t.Error("TruncatedTail not reported")
	}
	if len(j.Results) == 0 || len(j.Results) > 2 {
		t.Fatalf("recovered %d results from torn journal", len(j.Results))
	}

	// A malformed line mid-stream is corruption, not a torn tail.
	corrupt := "{bad json}\n" + journal.String()
	if _, err := campaignd.LoadJournal(strings.NewReader(corrupt)); err == nil {
		t.Fatal("mid-stream corruption accepted")
	}
}

func TestResumeRejectsSeedMismatch(t *testing.T) {
	spec := testSpec(4)
	bad := map[int]fleet.TrialResult{
		1: {Trial: 1, Seed: 999, Status: fleet.StatusTimeout},
	}
	if _, err := campaignd.New(campaignd.Config{Spec: spec, Resumed: bad}); err == nil {
		t.Fatal("resumed result with wrong seed accepted")
	}
	good := map[int]fleet.TrialResult{
		1: {Trial: 1, Seed: faults.DeriveSeed(spec.BaseSeed, 1), Status: fleet.StatusTimeout},
	}
	if _, err := campaignd.New(campaignd.Config{Spec: spec, Resumed: good}); err != nil {
		t.Fatal(err)
	}
}

func TestSubmitValidation(t *testing.T) {
	spec := testSpec(2)
	coord, err := campaignd.New(campaignd.Config{Spec: spec})
	if err != nil {
		t.Fatal(err)
	}
	l := coord.AcquireLease("w")
	if err := coord.Submit(99, l.ID, fleet.TrialResult{Trial: 99}); err == nil {
		t.Error("out-of-range trial accepted")
	}
	if err := coord.Submit(l.Trial, l.ID, fleet.TrialResult{Trial: l.Trial, Seed: 12345}); err == nil {
		t.Error("seed-mismatched result accepted")
	}
}

func TestDrainWaitsForPollingWorkers(t *testing.T) {
	// A coordinator must not vanish the instant the last result lands:
	// workers parked in the lease-wait loop still need to hear "done".
	spec := testSpec(1)
	coord, err := campaignd.New(campaignd.Config{Spec: spec})
	if err != nil {
		t.Fatal(err)
	}
	runner := coord.AcquireLease("runner")
	if runner.Status != campaignd.LeaseGranted {
		t.Fatalf("runner lease = %+v", runner)
	}
	// A second worker finds nothing dispatchable and becomes a waiter.
	if l := coord.AcquireLease("idler"); l.Status != campaignd.LeaseWait {
		t.Fatalf("idler lease = %+v", l)
	}

	res := fleet.TrialResult{Trial: 0, Seed: runner.Seed, Status: fleet.StatusTimeout}
	if err := coord.Submit(runner.Trial, runner.ID, res); err != nil {
		t.Fatal(err)
	}
	if !coord.Finished() {
		t.Fatal("campaign not finished after last submit")
	}
	// The runner polls once more and is told done (over HTTP the submit ack
	// itself carries the done flag; the direct API learns it here).
	if l := coord.AcquireLease("runner"); l.Status != campaignd.LeaseDone {
		t.Fatalf("runner final lease = %+v", l)
	}

	// Drain must block on the idler, then return promptly once the idler's
	// next poll is answered with done.
	start := time.Now()
	done := make(chan struct{})
	go func() {
		coord.Drain(context.Background(), 10*time.Second)
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("Drain returned with a waiter still unanswered")
	case <-time.After(100 * time.Millisecond):
	}
	if l := coord.AcquireLease("idler"); l.Status != campaignd.LeaseDone {
		t.Fatalf("idler final lease = %+v", l)
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Drain did not return after the waiter was answered")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("Drain took %v", elapsed)
	}

	// The cap bounds the wait for a worker that never comes back: register
	// a waiter on a fresh campaign, finish it, and Drain must give up at
	// the cap instead of blocking forever.
	coord2, err := campaignd.New(campaignd.Config{Spec: spec})
	if err != nil {
		t.Fatal(err)
	}
	runner2 := coord2.AcquireLease("runner")
	if l := coord2.AcquireLease("ghost"); l.Status != campaignd.LeaseWait {
		t.Fatalf("ghost lease = %+v", l)
	}
	res2 := fleet.TrialResult{Trial: 0, Seed: runner2.Seed, Status: fleet.StatusTimeout}
	if err := coord2.Submit(runner2.Trial, runner2.ID, res2); err != nil {
		t.Fatal(err)
	}
	capStart := time.Now()
	coord2.Drain(context.Background(), 100*time.Millisecond)
	if elapsed := time.Since(capStart); elapsed < 50*time.Millisecond || elapsed > 2*time.Second {
		t.Fatalf("capped Drain took %v, want ~100ms", elapsed)
	}
}

func TestSubmitResponseCarriesDone(t *testing.T) {
	// The submit ack's done flag lets the finishing worker exit without one
	// more lease poll against a server that may already be gone.
	spec := testSpec(2)
	coord, err := campaignd.New(campaignd.Config{Spec: spec})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()
	client := &campaignd.Client{Base: srv.URL}

	for i := 0; i < 2; i++ {
		l, err := client.Lease("w1")
		if err != nil {
			t.Fatal(err)
		}
		if l.Status != campaignd.LeaseGranted {
			t.Fatalf("lease %d = %+v", i, l)
		}
		res := fleet.TrialResult{Trial: l.Trial, Seed: l.Seed, Status: fleet.StatusTimeout}
		body, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		ack, err := client.Submit("", l.Trial, l.ID, "w1", body)
		if err != nil {
			t.Fatal(err)
		}
		if !ack.Accepted || ack.Duplicate {
			t.Fatalf("submit %d ack = %+v", i, ack)
		}
		// A single-campaign coordinator sets both flags together: its
		// campaign draining IS all work running out.
		if want := i == 1; ack.Done != want || ack.CampaignDone != want {
			t.Fatalf("submit %d ack = %+v, want done=%v", i, ack, want)
		}
	}
	// With w1 told done at submit time, Drain has nobody to wait for.
	start := time.Now()
	coord.Drain(context.Background(), 10*time.Second)
	if time.Since(start) > time.Second {
		t.Fatal("Drain waited despite the submit-done notification")
	}
}
