// Package campaignd is the crash-tolerant distributed campaign service: an
// HTTP coordinator that shards a fleet campaign into per-trial leases, and
// a worker loop that executes leased trials through fleet.RunTrial and
// streams the results back.
//
// The design goal is the fleet package's determinism guarantee stretched
// over an unreliable network of crashing processes. It holds because
// nothing that matters ever depends on wall time or topology:
//
//   - Trial i's seed is faults.DeriveSeed(BaseSeed, i) — a pure function,
//     computed identically by coordinator and workers.
//   - A trial's result is a pure function of its seed (fleet.RunTrial on a
//     fresh world), and its JSON serialisation is lossless for every field
//     the report keeps (wall-clock phase timings are excluded from JSON on
//     both sides), so a result that crossed the wire is byte-equivalent to
//     one produced in-process.
//   - The final report is fleet.NewReport over the results in trial-index
//     order — the exact aggregation path fleet.Run uses.
//
// Leases make worker crashes survivable: a worker that stops heartbeating
// loses its lease and the trial is re-dispatched (with capped, jittered
// backoff via internal/retry). Duplicate submissions — a slow worker
// racing its re-dispatched replacement — are idempotent because both
// computed the same bytes; the first accepted result wins and the journal
// records each trial exactly once. Coordinator crashes are survivable
// through the journal: every accepted result is appended to the
// observatory event log as a trial_result line, and a restarted
// coordinator rebuilds its state from that log, skipping completed trials
// and re-leasing the rest. DESIGN §12 documents the full state machine.
package campaignd

import (
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/fleet"
)

// CampaignSpec is the wire description of a distributed campaign: enough
// for a worker to reconstruct the exact world a trial needs, and for a
// restarted coordinator to verify a journal belongs to the campaign it is
// resuming. It is serialised compactly (stable struct field order) into
// the campaign_start journal line.
type CampaignSpec struct {
	// Target names the simulated system under test ("bench", "cluster",
	// "vehicle") — interpreted by the canfuzz world builder, not here.
	Target string `json:"target"`
	// Bus selects the bus variant (canfuzz -bus).
	Bus string `json:"bus,omitempty"`
	// BCMCheck is the bench unlock-check mode (canfuzz -check).
	BCMCheck string `json:"bcmCheck,omitempty"`
	// StopOnFinding stops each trial's campaign at its first finding.
	StopOnFinding bool `json:"stopOnFinding,omitempty"`
	// Recovery arms the default resilience policy (canfuzz -recover).
	Recovery bool `json:"recovery,omitempty"`
	// GuidedSeed holds guided-mode seed frames in "ID#HEXDATA" form.
	GuidedSeed []string `json:"guidedSeed,omitempty"`

	// Trials and BaseSeed shard the campaign: trial i runs with seed
	// faults.DeriveSeed(BaseSeed, i).
	Trials   int   `json:"trials"`
	BaseSeed int64 `json:"baseSeed"`
	// MaxPerTrialNanos is the per-trial virtual deadline.
	MaxPerTrialNanos int64 `json:"maxPerTrialNanos"`
	// TrialTimeoutNanos is the per-trial wall-clock stall budget (0 = none);
	// see fleet.Config.TrialTimeout.
	TrialTimeoutNanos int64 `json:"trialTimeoutNanos,omitempty"`

	// Config is the campaign generator configuration.
	Config core.ConfigJSON `json:"config"`
}

// Validate checks the shardable parts of the spec. Target-string validity
// is the world builder's concern (the CLI rejects unknown targets before a
// spec is ever served).
func (s CampaignSpec) Validate() error {
	if s.Target == "" {
		return errors.New("campaignd: spec has no target")
	}
	if s.Trials < 1 {
		return errors.New("campaignd: spec needs Trials >= 1")
	}
	if s.MaxPerTrialNanos <= 0 {
		return errors.New("campaignd: spec needs MaxPerTrialNanos > 0")
	}
	if _, err := s.Config.ToConfig(); err != nil {
		return fmt.Errorf("campaignd: spec config: %w", err)
	}
	return nil
}

// FleetConfig maps the spec onto the fleet configuration both sides use:
// the worker passes it to fleet.RunTrial, the coordinator to
// fleet.NewReport — so deadline semantics cannot diverge.
func (s CampaignSpec) FleetConfig() fleet.Config {
	return fleet.Config{
		Trials:       s.Trials,
		BaseSeed:     s.BaseSeed,
		MaxPerTrial:  time.Duration(s.MaxPerTrialNanos),
		TrialTimeout: time.Duration(s.TrialTimeoutNanos),
	}
}

// marshal renders the spec compactly — the canonical bytes used for the
// campaign_start journal line and for resume compatibility checks.
func (s CampaignSpec) marshal() ([]byte, error) { return json.Marshal(s) }

// Canonical exposes the canonical spec bytes to the multi-campaign
// service, which byte-compares them on resume exactly like Compatible.
func (s CampaignSpec) Canonical() ([]byte, error) { return s.marshal() }
