package campaignd

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/internal/fleet"
)

// maxResultBody bounds one submitted TrialResult document; guided-corpus
// trials are the large case and stay far under this.
const maxResultBody = 8 << 20

// wireLease is the JSON body of a lease decision; durations travel as
// integral milliseconds.
type wireLease struct {
	Status       string `json:"status"`
	Campaign     string `json:"campaign,omitempty"`
	Trial        int    `json:"trial"`
	Seed         int64  `json:"seed"`
	LeaseID      uint64 `json:"leaseId"`
	LeaseMs      int64  `json:"leaseMs"`
	RetryAfterMs int64  `json:"retryAfterMs"`
}

// SubmitAck is the result-submission response. Done means "this server has
// no work left, ever — exit"; CampaignDone means only that the submitted
// trial's campaign drained. A single-campaign coordinator sets both
// together; the multi-campaign scheduler keeps Done false until it shuts
// down, so workers re-poll for other campaigns instead of exiting (the PR 7
// worker conflated the two and would have orphaned every other campaign).
type SubmitAck struct {
	Accepted     bool `json:"accepted"`
	Duplicate    bool `json:"duplicate,omitempty"`
	CampaignDone bool `json:"campaignDone,omitempty"`
	Done         bool `json:"done,omitempty"`
	// Gone is set client-side on 410: the campaign no longer exists
	// (cancelled); the result is dropped, not an error.
	Gone bool `json:"-"`
}

// WireLease converts a lease decision to its wire body — exported for the
// campsrv scheduler, whose lease endpoint answers with the same document a
// single-campaign coordinator produces (plus the campaign field).
func WireLease(l Lease) any {
	return wireLease{
		Status: l.Status, Campaign: l.Campaign, Trial: l.Trial, Seed: l.Seed,
		LeaseID:      l.ID,
		LeaseMs:      l.TTL.Milliseconds(),
		RetryAfterMs: l.RetryAfter.Milliseconds(),
	}
}

// Handler returns the coordinator API. All routes are rooted at
// /campaignd/ so the handler composes with the observatory mux on one
// server:
//
//	GET  /campaignd/spec       the canonical CampaignSpec document
//	POST /campaignd/lease      ?worker=NAME -> lease decision JSON
//	POST /campaignd/heartbeat  ?lease=ID    -> 204, or 410 when gone
//	POST /campaignd/result     ?trial=N&lease=ID&worker=NAME,
//	                           body = fleet.TrialResult
//	                           -> 200 accepted, 200 duplicate, 400 bad;
//	                           "done":true tells the worker to exit
//	GET  /campaignd/status     live Status JSON
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/campaignd/spec", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write(c.specJSON)
	})
	mux.HandleFunc("/campaignd/lease", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		l := c.AcquireLease(r.URL.Query().Get("worker"))
		writeJSON(w, WireLease(l))
	})
	mux.HandleFunc("/campaignd/heartbeat", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		leaseID, err := strconv.ParseUint(r.URL.Query().Get("lease"), 10, 64)
		if err != nil {
			http.Error(w, "bad lease id", http.StatusBadRequest)
			return
		}
		if err := c.Heartbeat(leaseID); err != nil {
			http.Error(w, err.Error(), http.StatusGone)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("/campaignd/result", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		q := r.URL.Query()
		index, err := strconv.Atoi(q.Get("trial"))
		if err != nil {
			http.Error(w, "bad trial index", http.StatusBadRequest)
			return
		}
		leaseID, _ := strconv.ParseUint(q.Get("lease"), 10, 64)
		var res fleet.TrialResult
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxResultBody))
		if err := dec.Decode(&res); err != nil {
			http.Error(w, fmt.Sprintf("bad result body: %v", err), http.StatusBadRequest)
			return
		}
		serr := c.Submit(index, leaseID, res)
		if serr != nil && !errors.Is(serr, ErrTrialDone) {
			http.Error(w, serr.Error(), http.StatusBadRequest)
			return
		}
		// Telling the submitter the campaign is over here (rather than on
		// its next lease poll) lets it exit before the coordinator's server
		// goes away. For a single-campaign coordinator "campaign drained"
		// and "no work left" coincide, so both ack flags carry it.
		done := c.Finished()
		if done {
			c.forgetWaiter(q.Get("worker"))
		}
		writeJSON(w, SubmitAck{
			Accepted:     serr == nil,
			Duplicate:    serr != nil, // only ErrTrialDone reaches here
			CampaignDone: done,
			Done:         done,
		})
	})
	mux.HandleFunc("/campaignd/status", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, c.Snapshot())
	})
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

// leaseFromWire converts the JSON body back to a Lease (client side).
func leaseFromWire(wl wireLease) Lease {
	return Lease{
		Status: wl.Status, Campaign: wl.Campaign,
		Trial: wl.Trial, Seed: wl.Seed, ID: wl.LeaseID,
		TTL:        time.Duration(wl.LeaseMs) * time.Millisecond,
		RetryAfter: time.Duration(wl.RetryAfterMs) * time.Millisecond,
	}
}
