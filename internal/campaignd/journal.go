package campaignd

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/fleet"
	"repro/internal/observatory"
)

// Journal is a coordinator's recovered state: what a crashed campaign had
// durably accomplished. The event log is the only durable store the
// coordinator has, and trial_result lines carry complete serialised
// results, so spec + results is everything a successor needs — in-flight
// leases at crash time are deliberately absent (they are re-dispatched
// from scratch, which is always safe because results are pure).
type Journal struct {
	// Spec is the campaign_start spec (nil when the log has none).
	Spec *CampaignSpec
	// SpecRaw is the spec's exact journal bytes, compared against the
	// resuming coordinator's canonical spec bytes by Compatible.
	SpecRaw []byte
	// Results holds the accepted trial results keyed by trial index.
	// A trial journalled twice keeps the first occurrence, matching the
	// coordinator's first-submission-wins acceptance.
	Results map[int]fleet.TrialResult
	// Lines counts complete journal lines read.
	Lines int
	// TruncatedTail reports that the final line was cut mid-write — the
	// coordinator died inside an append. The partial line is discarded;
	// everything before it is intact because lines are appended whole.
	TruncatedTail bool
}

// journalScanBuf bounds one journal line; trial_result lines with a large
// guided corpus are the big case.
const journalScanBuf = 16 << 20

// LoadJournal replays an event log. A malformed line is fatal unless it is
// the last line of the stream, which is read as a torn tail write.
func LoadJournal(r io.Reader) (*Journal, error) {
	j := &Journal{Results: map[int]fleet.TrialResult{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), journalScanBuf)
	var pendingErr error
	for sc.Scan() {
		if pendingErr != nil {
			// The malformed line had lines after it: corruption, not a torn
			// tail.
			return nil, pendingErr
		}
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		ev, err := observatory.ParseLine(line)
		if err != nil {
			pendingErr = fmt.Errorf("campaignd: journal line %d: %w", j.Lines+1, err)
			continue
		}
		j.Lines++
		switch ev.Type {
		case observatory.EventCampaignStart:
			if j.Spec == nil {
				var spec CampaignSpec
				if err := json.Unmarshal(ev.Raw, &spec); err != nil {
					return nil, fmt.Errorf("campaignd: journal spec: %w", err)
				}
				j.Spec = &spec
				j.SpecRaw = append([]byte(nil), ev.Raw...)
			}
		case observatory.EventTrialResult:
			var res fleet.TrialResult
			if err := json.Unmarshal(ev.Raw, &res); err != nil {
				return nil, fmt.Errorf("campaignd: journal trial_result: %w", err)
			}
			if _, dup := j.Results[res.Trial]; !dup {
				j.Results[res.Trial] = res
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("campaignd: journal read: %w", err)
	}
	if pendingErr != nil {
		j.TruncatedTail = true
	}
	return j, nil
}

// Compatible reports whether the journal was written by a campaign with
// exactly this spec — byte equality of the canonical spec document, the
// strictest check and the right one: any drift (different seed, trial
// count, generator config) would silently break the determinism guarantee
// the resume is supposed to preserve.
func (j *Journal) Compatible(spec CampaignSpec) error {
	if j.Spec == nil {
		return fmt.Errorf("campaignd: journal has no campaign_start line")
	}
	canonical, err := spec.marshal()
	if err != nil {
		return err
	}
	if !bytes.Equal(j.SpecRaw, canonical) {
		return fmt.Errorf("campaignd: journal spec mismatch:\n journal: %s\n resume:  %s",
			j.SpecRaw, canonical)
	}
	return nil
}
