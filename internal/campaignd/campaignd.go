package campaignd

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"math/rand"
	"sync"
	"time"

	"repro/internal/faults"
	"repro/internal/fleet"
	"repro/internal/observatory"
	"repro/internal/retry"
)

// Lease / submission errors surfaced over HTTP.
var (
	// ErrLeaseGone means the heartbeated lease is no longer current: it
	// expired and the trial was re-dispatched (or already completed).
	ErrLeaseGone = errors.New("campaignd: lease gone")
	// ErrTrialDone means a submission arrived for an already-completed
	// trial. Harmless — the late worker computed the same bytes — but
	// reported so it can account the duplicate.
	ErrTrialDone = errors.New("campaignd: trial already completed")
	// ErrBadResult means a submission's content contradicts the lease
	// table (wrong trial index or seed) — a client bug, never accepted.
	ErrBadResult = errors.New("campaignd: result does not match trial")
)

// DefaultLeaseTTL is the lease deadline granted to workers; heartbeats
// extend it by the same amount.
const DefaultLeaseTTL = 10 * time.Second

// DefaultRedispatch is the backoff policy for re-dispatching expired
// leases: capped exponential with jitter, so a crash-looping worker fleet
// does not hammer one doomed trial in lockstep.
var DefaultRedispatch = retry.Policy{
	Base:   250 * time.Millisecond,
	Cap:    5 * time.Second,
	Jitter: 0.5,
}

// Config assembles a Coordinator.
type Config struct {
	// Spec describes the campaign to shard (required).
	Spec CampaignSpec
	// LeaseTTL is the lease deadline (default DefaultLeaseTTL).
	LeaseTTL time.Duration
	// Redispatch is the expired-lease backoff (default DefaultRedispatch).
	Redispatch retry.Policy
	// CheckpointEvery emits a checkpoint journal line per this many
	// completed trials (default 10).
	CheckpointEvery int
	// Sink, when non-nil, is the journal: every accepted result streams
	// into it as observatory events, durable enough to resume from.
	Sink *observatory.Sink
	// Progress, when non-nil, receives live per-trial updates — wire the
	// observatory's tracker here and /campaign.json works unchanged.
	Progress *fleet.Progress
	// Logger, when non-nil, receives lease-churn lines.
	Logger *slog.Logger
	// Resumed seeds the coordinator with results recovered from a journal
	// (LoadJournal): those trials are born completed and their events are
	// not re-emitted — the journal already holds them.
	Resumed map[int]fleet.TrialResult
	// Seed seeds the redispatch jitter RNG (content determinism never
	// depends on it; 0 is fine).
	Seed int64
}

// trialState is the lease state machine: pending -> leased -> done, with
// leased -> pending on expiry.
type trialState int

const (
	statePending trialState = iota
	stateLeased
	stateDone
)

// trial is the coordinator's record of one shard.
type trial struct {
	state   trialState
	seed    int64
	leaseID uint64    // current lease (stateLeased)
	worker  string    // holder of the current lease
	expiry  time.Time // lease deadline, extended by heartbeats
	// attempts counts dispatches; availableAt gates re-dispatch after an
	// expiry (capped exponential backoff with jitter).
	attempts    int
	availableAt time.Time
	result      fleet.TrialResult // stateDone
}

// Coordinator shards a campaign into leases and folds accepted results
// into the same deterministic report an in-process fleet.Run produces.
// All methods are safe for concurrent use; the HTTP layer in http.go is a
// thin translation over them.
type Coordinator struct {
	spec     CampaignSpec
	specJSON []byte
	ttl      time.Duration
	policy   retry.Policy
	every    int
	sink     *observatory.Sink
	progress *fleet.Progress
	log      *slog.Logger

	mu          sync.Mutex
	trials      []trial
	done        int
	resumed     int // completed trials inherited from the journal
	nextLease   uint64
	duplicates  int
	expiries    int
	rng         *rand.Rand
	report      *fleet.Report
	finishedSig chan struct{}
	// waiters tracks workers that will contact us again (leased a trial or
	// told to wait) and have not yet been told the campaign is done; Drain
	// keeps the coordinator answerable until this set empties.
	waiters map[string]struct{}
}

// New builds a coordinator for the spec, journalling to cfg.Sink. With
// cfg.Resumed it continues a crashed campaign: recovered trials start
// completed, everything else (including leases that were in flight when
// the previous coordinator died) is re-dispatched from scratch — an
// expired lease and a dead coordinator look identical to a worker.
func New(cfg Config) (*Coordinator, error) {
	if err := cfg.Spec.Validate(); err != nil {
		return nil, err
	}
	specJSON, err := cfg.Spec.marshal()
	if err != nil {
		return nil, fmt.Errorf("campaignd: marshal spec: %w", err)
	}
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = DefaultLeaseTTL
	}
	if cfg.Redispatch.Base <= 0 {
		cfg.Redispatch = DefaultRedispatch
	}
	if cfg.CheckpointEvery <= 0 {
		cfg.CheckpointEvery = 10
	}
	c := &Coordinator{
		spec:        cfg.Spec,
		specJSON:    specJSON,
		ttl:         cfg.LeaseTTL,
		policy:      cfg.Redispatch,
		every:       cfg.CheckpointEvery,
		sink:        cfg.Sink,
		progress:    cfg.Progress,
		log:         cfg.Logger,
		trials:      make([]trial, cfg.Spec.Trials),
		rng:         rand.New(rand.NewSource(cfg.Seed)),
		finishedSig: make(chan struct{}),
		waiters:     make(map[string]struct{}),
	}
	c.progress.CampaignStarted(cfg.Spec.FleetConfig(), 0)
	for i := range c.trials {
		c.trials[i].seed = faults.DeriveSeed(cfg.Spec.BaseSeed, i)
	}
	if len(cfg.Resumed) == 0 {
		// Fresh campaign: open the journal with the spec line.
		c.sink.Emit(observatory.Event{
			Type: observatory.EventCampaignStart, Trial: -1, Seq: 0, Raw: specJSON,
		})
	} else {
		for i, res := range cfg.Resumed {
			if i < 0 || i >= len(c.trials) {
				return nil, fmt.Errorf("campaignd: resumed trial %d out of range [0,%d)", i, len(c.trials))
			}
			if res.Seed != c.trials[i].seed {
				return nil, fmt.Errorf("campaignd: resumed trial %d has seed %d, spec derives %d",
					i, res.Seed, c.trials[i].seed)
			}
			c.trials[i].state = stateDone
			c.trials[i].result = res
			c.done++
			// The journal already holds these trials' events; only the live
			// progress view needs to relearn them.
			c.progress.TrialStarted(fleet.TrialSpec{Index: i, Seed: res.Seed})
			c.progress.TrialFinished(res)
		}
		c.resumed = c.done
		if c.log != nil {
			c.log.Info("campaign resumed from journal", "completed", c.done, "remaining", len(c.trials)-c.done)
		}
	}
	c.mu.Lock()
	c.maybeFinishLocked()
	c.mu.Unlock()
	return c, nil
}

// SpecJSON returns the canonical spec bytes served at /campaignd/spec.
func (c *Coordinator) SpecJSON() []byte { return c.specJSON }

// Lease statuses.
const (
	// LeaseGranted carries a trial assignment.
	LeaseGranted = "lease"
	// LeaseWait means nothing is dispatchable right now (all remaining
	// trials are leased out or in redispatch backoff) — retry after
	// RetryAfter.
	LeaseWait = "wait"
	// LeaseDone means the campaign is complete; the worker should exit.
	LeaseDone = "done"
)

// Lease is a coordinator lease decision.
type Lease struct {
	// Status is LeaseGranted, LeaseWait or LeaseDone.
	Status string `json:"status"`
	// Campaign identifies which campaign the trial belongs to when the
	// lease was granted by a multi-campaign scheduler (campsrv). Empty on a
	// single-campaign coordinator, whose workers already know the campaign.
	Campaign string `json:"campaign,omitempty"`
	// Trial and Seed identify the assigned shard (LeaseGranted).
	Trial int   `json:"trial"`
	Seed  int64 `json:"seed"`
	// ID is the lease handle for heartbeats and the result submission.
	ID uint64 `json:"leaseId"`
	// TTL is the lease deadline; heartbeat at least once per TTL.
	TTL time.Duration `json:"leaseTtlMs"`
	// RetryAfter is the suggested poll delay on LeaseWait.
	RetryAfter time.Duration `json:"retryAfterMs"`
}

// AcquireLease hands the worker the lowest dispatchable trial, or tells it
// to wait or exit. Expired leases are reclaimed lazily here — the
// coordinator needs no background goroutine, which keeps its state machine
// single-threaded under the mutex and trivially crash-consistent: the only
// durable state is the journal.
func (c *Coordinator) AcquireLease(worker string) Lease {
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reclaimExpiredLocked(now)
	if c.done == len(c.trials) {
		delete(c.waiters, worker)
		return Lease{Status: LeaseDone}
	}
	// Whatever we answer below, this worker will poll or submit again: keep
	// the coordinator up for it after completion (see Drain).
	if worker != "" {
		c.waiters[worker] = struct{}{}
	}
	var nextAvail time.Time
	for i := range c.trials {
		tr := &c.trials[i]
		if tr.state != statePending {
			continue
		}
		if tr.availableAt.After(now) {
			if nextAvail.IsZero() || tr.availableAt.Before(nextAvail) {
				nextAvail = tr.availableAt
			}
			continue
		}
		c.nextLease++
		tr.state = stateLeased
		tr.leaseID = c.nextLease
		tr.worker = worker
		tr.expiry = now.Add(c.ttl)
		tr.attempts++
		if tr.attempts == 1 {
			// First dispatch: journal the trial_start. Re-dispatches do not
			// repeat it — the sorted event log of a crash-free distributed
			// run stays identical to the in-process observatory's.
			c.progress.TrialStarted(fleet.TrialSpec{Index: i, Seed: tr.seed})
			c.sink.Emit(observatory.Event{
				Type: observatory.EventTrialStart, Trial: i, Seq: 0, Seed: tr.seed,
			})
		}
		if c.log != nil {
			c.log.Info("lease granted", "trial", i, "lease", tr.leaseID,
				"worker", worker, "attempt", tr.attempts)
		}
		return Lease{Status: LeaseGranted, Trial: i, Seed: tr.seed, ID: tr.leaseID, TTL: c.ttl}
	}
	wait := c.ttl / 4
	if !nextAvail.IsZero() {
		if until := nextAvail.Sub(now); until < wait {
			wait = until
		}
	}
	if wait < 50*time.Millisecond {
		wait = 50 * time.Millisecond
	}
	return Lease{Status: LeaseWait, RetryAfter: wait}
}

// Heartbeat extends the lease deadline. ErrLeaseGone tells the worker its
// lease expired (the trial may be re-running elsewhere); the worker keeps
// computing and submits anyway — a correct result is accepted from anyone
// first, content being identical by construction.
func (c *Coordinator) Heartbeat(leaseID uint64) error {
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reclaimExpiredLocked(now)
	for i := range c.trials {
		tr := &c.trials[i]
		if tr.state == stateLeased && tr.leaseID == leaseID {
			tr.expiry = now.Add(c.ttl)
			return nil
		}
	}
	return ErrLeaseGone
}

// Submit accepts a completed trial. The lease ID is advisory: a stale
// lease does not reject a correct result (the race of a slow worker
// against its replacement must not lose work), but a result whose index or
// seed contradicts the shard table is refused, and a duplicate for a
// completed trial is counted and dropped.
func (c *Coordinator) Submit(index int, leaseID uint64, res fleet.TrialResult) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if index < 0 || index >= len(c.trials) {
		return fmt.Errorf("%w: trial %d out of range", ErrBadResult, index)
	}
	tr := &c.trials[index]
	if res.Trial != index || res.Seed != tr.seed {
		return fmt.Errorf("%w: got trial=%d seed=%d, lease table says trial=%d seed=%d",
			ErrBadResult, res.Trial, res.Seed, index, tr.seed)
	}
	if tr.state == stateDone {
		c.duplicates++
		return ErrTrialDone
	}
	_ = leaseID // advisory; see doc comment
	tr.state = stateDone
	tr.result = res
	c.done++
	c.progress.TrialFinished(res)
	c.journalResultLocked(res)
	c.maybeFinishLocked()
	return nil
}

// journalResultLocked streams an accepted result into the journal: the
// same observatory events an in-process fleet emits (finding, trial_end,
// corpus_merge, periodic checkpoints) plus the trial_result line that
// makes the journal self-sufficient for resume.
func (c *Coordinator) journalResultLocked(res fleet.TrialResult) {
	if c.sink == nil {
		return
	}
	seq := 1
	if res.Status == fleet.StatusFinding {
		c.sink.Emit(observatory.Event{
			Type: observatory.EventFinding, Trial: res.Trial, Seq: seq,
			VirtualNanos: int64(res.TimeToFinding),
			Oracle:       res.Oracle, Detail: res.Detail, TriggerID: res.TriggerID,
		})
		seq++
	}
	c.sink.Emit(observatory.Event{
		Type: observatory.EventTrialEnd, Trial: res.Trial, Seq: seq,
		Status:       res.Status,
		VirtualNanos: int64(res.VirtualElapsed),
		Frames:       res.FramesSent,
		SendErrors:   res.SendErrors,
		Findings:     res.Findings,
	})
	seq++
	if n := len(res.Corpus); n > 0 {
		c.sink.Emit(observatory.Event{
			Type: observatory.EventCorpusMerge, Trial: res.Trial, Seq: seq,
			Frames: uint64(n),
		})
		seq++
	}
	if raw, err := json.Marshal(res); err == nil {
		c.sink.Emit(observatory.Event{
			Type: observatory.EventTrialResult, Trial: res.Trial, Seq: seq, Raw: raw,
		})
	}
	if c.done%c.every == 0 || c.done == len(c.trials) {
		c.sink.Emit(observatory.Event{
			Type: observatory.EventCheckpoint, Trial: -1, Seq: c.done,
			Completed: c.done, Total: len(c.trials),
		})
	}
}

// reclaimExpiredLocked returns expired leases to the pending pool with a
// capped, jittered backoff before re-dispatch.
func (c *Coordinator) reclaimExpiredLocked(now time.Time) {
	for i := range c.trials {
		tr := &c.trials[i]
		if tr.state != stateLeased || tr.expiry.After(now) {
			continue
		}
		tr.state = statePending
		tr.availableAt = now.Add(c.policy.Delay(tr.attempts, c.rng))
		c.expiries++
		if c.log != nil {
			c.log.Warn("lease expired", "trial", i, "lease", tr.leaseID,
				"worker", tr.worker, "attempt", tr.attempts,
				"redispatch_in", tr.availableAt.Sub(now).Round(time.Millisecond))
		}
	}
}

// maybeFinishLocked builds the final report once every trial is done.
func (c *Coordinator) maybeFinishLocked() {
	if c.report != nil || c.done != len(c.trials) {
		return
	}
	results := make([]fleet.TrialResult, len(c.trials))
	for i := range c.trials {
		results[i] = c.trials[i].result
	}
	rep := fleet.NewReport(c.spec.BaseSeed, time.Duration(c.spec.MaxPerTrialNanos), results)
	c.report = rep
	c.progress.CampaignDone(rep)
	close(c.finishedSig)
}

// Done is closed once the campaign completes.
func (c *Coordinator) Done() <-chan struct{} { return c.finishedSig }

// Finished reports completion without blocking.
func (c *Coordinator) Finished() bool {
	select {
	case <-c.finishedSig:
		return true
	default:
		return false
	}
}

// forgetWaiter records that a worker has been told the campaign is done
// (it will not contact the coordinator again).
func (c *Coordinator) forgetWaiter(worker string) {
	if worker == "" {
		return
	}
	c.mu.Lock()
	delete(c.waiters, worker)
	c.mu.Unlock()
}

// Drain blocks after completion until every worker known to be polling or
// submitting has been answered with "done", so none is left retrying
// against a vanished server. max bounds the wait (a crashed worker never
// comes back to be told); ctx cancels it early. Calling Drain before
// completion returns immediately.
func (c *Coordinator) Drain(ctx context.Context, max time.Duration) {
	if !c.Finished() {
		return
	}
	deadline := time.Now().Add(max)
	t := time.NewTicker(25 * time.Millisecond)
	defer t.Stop()
	for {
		c.mu.Lock()
		waiting := len(c.waiters)
		c.mu.Unlock()
		if waiting == 0 || !time.Now().Before(deadline) {
			return
		}
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
	}
}

// Leased counts the currently leased trials after reclaiming expired
// leases — the live in-flight width a fair-share scheduler caps per
// campaign (campsrv's max-inflight).
func (c *Coordinator) Leased() int {
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reclaimExpiredLocked(now)
	n := 0
	for i := range c.trials {
		if c.trials[i].state == stateLeased {
			n++
		}
	}
	return n
}

// Report returns the final report (nil until Done closes).
func (c *Coordinator) Report() *fleet.Report {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.report
}

// Wait blocks until the campaign completes or ctx ends.
func (c *Coordinator) Wait(ctx context.Context) (*fleet.Report, error) {
	select {
	case <-c.finishedSig:
		return c.Report(), nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Status is the coordinator's live view, served at /campaignd/status.
type Status struct {
	Trials     int  `json:"trials"`
	Done       int  `json:"done"`
	Leased     int  `json:"leased"`
	Pending    int  `json:"pending"`
	Resumed    int  `json:"resumed"`
	Expiries   int  `json:"leaseExpiries"`
	Duplicates int  `json:"duplicateResults"`
	Complete   bool `json:"complete"`
}

// Snapshot samples the coordinator state.
func (c *Coordinator) Snapshot() Status {
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reclaimExpiredLocked(now)
	s := Status{
		Trials: len(c.trials), Done: c.done, Resumed: c.resumed,
		Expiries: c.expiries, Duplicates: c.duplicates,
		Complete: c.report != nil,
	}
	for i := range c.trials {
		switch c.trials[i].state {
		case stateLeased:
			s.Leased++
		case statePending:
			s.Pending++
		}
	}
	return s
}
