package campaignd

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
)

// ErrCampaignGone means the server no longer serves the named campaign
// (cancelled, or an unknown ID): the call will never succeed, so transport
// retry loops must not ride it out.
var ErrCampaignGone = errors.New("campaignd: campaign gone")

// Client speaks the coordinator API from a worker process — either a
// single-campaign coordinator (`canfuzz -coordinator`) or the
// multi-campaign campsrv scheduler (`canfuzzd`), which scope every call
// with a campaign ID. Methods return transport errors verbatim so the
// worker's retry loop can distinguish "the server is briefly down — keep
// trying, it may be resuming from its journal" from protocol errors that
// will not heal.
type Client struct {
	// Base is the server URL, e.g. "http://127.0.0.1:9990".
	Base string
	// Token, when non-empty, is sent as a bearer token on every call
	// (canfuzzd -auth-token). mTLS remains future work; see DESIGN §13.
	Token string
	// HTTP is the client used for every call (default http.DefaultClient).
	HTTP *http.Client
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

func (c *Client) url(path, query string) string {
	u := strings.TrimSuffix(c.Base, "/") + path
	if query != "" {
		u += "?" + query
	}
	return u
}

// do issues one request with the auth header attached.
func (c *Client) do(method, url, contentType string, body io.Reader) (*http.Response, error) {
	req, err := http.NewRequest(method, url, body)
	if err != nil {
		return nil, err
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	if c.Token != "" {
		req.Header.Set("Authorization", "Bearer "+c.Token)
	}
	return c.http().Do(req)
}

// campaignQuery renders the optional campaign scope; a single-campaign
// coordinator is addressed with the empty ID and no parameter at all, so
// the PR 7 wire format is a strict subset of the multi-campaign one.
func campaignQuery(campaign string) string {
	if campaign == "" {
		return ""
	}
	return "campaign=" + url.QueryEscape(campaign)
}

func joinQuery(parts ...string) string {
	var nonEmpty []string
	for _, p := range parts {
		if p != "" {
			nonEmpty = append(nonEmpty, p)
		}
	}
	return strings.Join(nonEmpty, "&")
}

// Spec fetches and validates a campaign spec. The empty campaign ID
// addresses a single-campaign coordinator.
func (c *Client) Spec(campaign string) (CampaignSpec, error) {
	var spec CampaignSpec
	resp, err := c.do(http.MethodGet, c.url("/campaignd/spec", campaignQuery(campaign)), "", nil)
	if err != nil {
		return spec, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusGone, http.StatusNotFound:
		return spec, fmt.Errorf("%w: spec %q: %s", ErrCampaignGone, campaign, resp.Status)
	default:
		return spec, fmt.Errorf("campaignd: spec: %s", resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(&spec); err != nil {
		return spec, fmt.Errorf("campaignd: spec body: %w", err)
	}
	return spec, spec.Validate()
}

// Lease asks for a trial assignment. Against a multi-campaign scheduler
// the returned lease carries the campaign ID the trial belongs to.
func (c *Client) Lease(worker string) (Lease, error) {
	resp, err := c.do(http.MethodPost,
		c.url("/campaignd/lease", "worker="+url.QueryEscape(worker)), "", nil)
	if err != nil {
		return Lease{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return Lease{}, fmt.Errorf("campaignd: lease: %s", resp.Status)
	}
	var wl wireLease
	if err := json.NewDecoder(resp.Body).Decode(&wl); err != nil {
		return Lease{}, fmt.Errorf("campaignd: lease body: %w", err)
	}
	return leaseFromWire(wl), nil
}

// Heartbeat extends a lease; ErrLeaseGone when it is no longer current,
// ErrCampaignGone when its whole campaign is.
func (c *Client) Heartbeat(campaign string, leaseID uint64) error {
	q := joinQuery(campaignQuery(campaign), "lease="+strconv.FormatUint(leaseID, 10))
	resp, err := c.do(http.MethodPost, c.url("/campaignd/heartbeat", q), "", nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, resp.Body)
	switch resp.StatusCode {
	case http.StatusNoContent:
		return nil
	case http.StatusGone:
		return ErrLeaseGone
	case http.StatusNotFound:
		return fmt.Errorf("%w: heartbeat: %s", ErrCampaignGone, resp.Status)
	default:
		return fmt.Errorf("campaignd: heartbeat: %s", resp.Status)
	}
}

// Submit posts a completed trial's serialised result. A duplicate (the
// server already accepted this trial from someone) is success: the work is
// durably recorded either way. A 410 — the campaign was cancelled while
// the trial computed — comes back as ack.Gone with a nil error: the result
// has nowhere to go, which is an outcome, not a transport failure to
// retry. The ack's CampaignDone/Done flags drive the worker's re-poll-vs-
// exit decision; see SubmitAck.
func (c *Client) Submit(campaign string, index int, leaseID uint64, worker string, resultJSON []byte) (SubmitAck, error) {
	q := joinQuery(campaignQuery(campaign),
		"trial="+strconv.Itoa(index),
		"lease="+strconv.FormatUint(leaseID, 10),
		"worker="+url.QueryEscape(worker))
	resp, err := c.do(http.MethodPost, c.url("/campaignd/result", q),
		"application/json", bytes.NewReader(resultJSON))
	if err != nil {
		return SubmitAck{}, err
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusGone, http.StatusNotFound:
		return SubmitAck{Gone: true}, nil
	default:
		return SubmitAck{}, fmt.Errorf("campaignd: result: %s: %s", resp.Status, bytes.TrimSpace(body))
	}
	var ack SubmitAck
	if err := json.Unmarshal(body, &ack); err != nil {
		return SubmitAck{}, fmt.Errorf("campaignd: result ack: %w", err)
	}
	return ack, nil
}
