package campaignd

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
)

// Client speaks the coordinator API from a worker process. Methods return
// transport errors verbatim so the worker's retry loop can distinguish "the
// coordinator is briefly down — keep trying, it may be resuming from its
// journal" from protocol errors that will not heal.
type Client struct {
	// Base is the coordinator URL, e.g. "http://127.0.0.1:9990".
	Base string
	// HTTP is the client used for every call (default http.DefaultClient).
	HTTP *http.Client
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

func (c *Client) url(path, query string) string {
	u := strings.TrimSuffix(c.Base, "/") + path
	if query != "" {
		u += "?" + query
	}
	return u
}

// Spec fetches and validates the campaign spec.
func (c *Client) Spec() (CampaignSpec, error) {
	var spec CampaignSpec
	resp, err := c.http().Get(c.url("/campaignd/spec", ""))
	if err != nil {
		return spec, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return spec, fmt.Errorf("campaignd: spec: %s", resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(&spec); err != nil {
		return spec, fmt.Errorf("campaignd: spec body: %w", err)
	}
	return spec, spec.Validate()
}

// Lease asks for a trial assignment.
func (c *Client) Lease(worker string) (Lease, error) {
	resp, err := c.http().Post(c.url("/campaignd/lease", "worker="+url.QueryEscape(worker)), "", nil)
	if err != nil {
		return Lease{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return Lease{}, fmt.Errorf("campaignd: lease: %s", resp.Status)
	}
	var wl wireLease
	if err := json.NewDecoder(resp.Body).Decode(&wl); err != nil {
		return Lease{}, fmt.Errorf("campaignd: lease body: %w", err)
	}
	return leaseFromWire(wl), nil
}

// Heartbeat extends a lease; ErrLeaseGone when it is no longer current.
func (c *Client) Heartbeat(leaseID uint64) error {
	resp, err := c.http().Post(c.url("/campaignd/heartbeat",
		"lease="+strconv.FormatUint(leaseID, 10)), "", nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, resp.Body)
	switch resp.StatusCode {
	case http.StatusNoContent:
		return nil
	case http.StatusGone:
		return ErrLeaseGone
	default:
		return fmt.Errorf("campaignd: heartbeat: %s", resp.Status)
	}
}

// Submit posts a completed trial's serialised result. A duplicate
// (the coordinator already accepted this trial from someone) is success:
// the work is durably recorded either way. The returned bool reports
// whether this submission completed the campaign — the worker can exit
// without another lease poll against a coordinator that may already be
// shutting down.
func (c *Client) Submit(index int, leaseID uint64, worker string, resultJSON []byte) (bool, error) {
	q := "trial=" + strconv.Itoa(index) + "&lease=" + strconv.FormatUint(leaseID, 10) +
		"&worker=" + url.QueryEscape(worker)
	resp, err := c.http().Post(c.url("/campaignd/result", q),
		"application/json", bytes.NewReader(resultJSON))
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	if resp.StatusCode != http.StatusOK {
		return false, fmt.Errorf("campaignd: result: %s: %s", resp.Status, bytes.TrimSpace(body))
	}
	var ack struct {
		Done bool `json:"done"`
	}
	if err := json.Unmarshal(body, &ack); err != nil {
		return false, fmt.Errorf("campaignd: result ack: %w", err)
	}
	return ack.Done, nil
}
