package campaignd

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"math/rand"
	"time"

	"repro/internal/fleet"
	"repro/internal/retry"
)

// DefaultTransportRetry is the worker's backoff for coordinator outages.
// The cap is generous relative to the base because the interesting outage
// is a coordinator crash-and-resume: the worker must still be polling when
// the restarted coordinator comes back up with its journal reloaded.
var DefaultTransportRetry = retry.Policy{
	Base:   200 * time.Millisecond,
	Cap:    2 * time.Second,
	Jitter: 0.5,
}

// DefaultTransportAttempts bounds consecutive failed calls before the
// worker gives up on the coordinator entirely.
const DefaultTransportAttempts = 60

// Worker executes leased trials until the coordinator reports the
// campaign done. The execution path is exactly fleet.RunTrial — the same
// function an in-process fleet worker runs — so a trial's result does not
// depend on which process computed it.
type Worker struct {
	// Client reaches the coordinator (required).
	Client *Client
	// Name identifies the worker in coordinator logs.
	Name string
	// Factory builds each leased trial's world (required).
	Factory fleet.TargetFactory
	// FleetCfg supplies the per-trial deadlines (from the fetched spec's
	// FleetConfig; only MaxPerTrial and TrialTimeout are consulted).
	FleetCfg fleet.Config
	// Logger, when non-nil, receives per-trial lines.
	Logger *slog.Logger
	// Transport is the backoff for coordinator outages (default
	// DefaultTransportRetry).
	Transport retry.Policy
	// TransportAttempts bounds consecutive transport failures (default
	// DefaultTransportAttempts).
	TransportAttempts int
}

// Run leases, executes and submits trials until done. It returns nil when
// the coordinator reports the campaign complete, ctx.Err on cancellation,
// and a transport error only after TransportAttempts consecutive failed
// calls — a coordinator crash shorter than that window is invisible apart
// from latency.
func (w *Worker) Run(ctx context.Context) error {
	if w.Client == nil || w.Factory == nil {
		return errors.New("campaignd: worker needs Client and Factory")
	}
	policy := w.Transport
	if policy.Base <= 0 {
		policy = DefaultTransportRetry
	}
	attempts := w.TransportAttempts
	if attempts <= 0 {
		attempts = DefaultTransportAttempts
	}
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))

	for {
		var lease Lease
		err := retry.Do(ctx, policy, attempts, rng, func() error {
			var lerr error
			lease, lerr = w.Client.Lease(w.Name)
			return lerr
		})
		if err != nil {
			return fmt.Errorf("campaignd: worker %s: lease: %w", w.Name, err)
		}
		switch lease.Status {
		case LeaseDone:
			if w.Logger != nil {
				w.Logger.Info("campaign complete, worker exiting", "worker", w.Name)
			}
			return nil
		case LeaseWait:
			wait := lease.RetryAfter
			if wait <= 0 {
				wait = 250 * time.Millisecond
			}
			if err := retry.Sleep(ctx, wait); err != nil {
				return err
			}
			continue
		case LeaseGranted:
		default:
			return fmt.Errorf("campaignd: worker %s: unknown lease status %q", w.Name, lease.Status)
		}

		campaignDone, err := w.runLeased(ctx, lease, policy, attempts, rng)
		if err != nil {
			return err
		}
		if campaignDone {
			if w.Logger != nil {
				w.Logger.Info("campaign complete, worker exiting", "worker", w.Name)
			}
			return nil
		}
	}
}

// runLeased heartbeats and executes one leased trial, then submits it. The
// returned bool reports whether this submission completed the campaign.
func (w *Worker) runLeased(ctx context.Context, lease Lease, policy retry.Policy, attempts int, rng *rand.Rand) (bool, error) {
	if w.Logger != nil {
		w.Logger.Info("trial leased", "worker", w.Name, "trial", lease.Trial, "lease", lease.ID)
	}
	// Heartbeat at a third of the TTL while the trial computes. Heartbeat
	// failures are logged, not fatal: if the lease is gone the trial is
	// re-running elsewhere with identical content; if the coordinator is
	// down it may be back before the submission's retry budget runs out.
	hbCtx, stopHB := context.WithCancel(ctx)
	hbDone := make(chan struct{})
	go func() {
		defer close(hbDone)
		interval := lease.TTL / 3
		if interval <= 0 {
			interval = time.Second
		}
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-hbCtx.Done():
				return
			case <-t.C:
				if err := w.Client.Heartbeat(lease.ID); err != nil && w.Logger != nil {
					w.Logger.Warn("heartbeat failed", "worker", w.Name,
						"trial", lease.Trial, "lease", lease.ID, "err", err)
				}
			}
		}
	}()

	spec := fleet.TrialSpec{Index: lease.Trial, Seed: lease.Seed}
	res := fleet.RunTrial(spec, w.FleetCfg, w.Factory)
	stopHB()
	<-hbDone

	body, err := json.Marshal(res)
	if err != nil {
		return false, fmt.Errorf("campaignd: worker %s: marshal result: %w", w.Name, err)
	}
	var campaignDone bool
	err = retry.Do(ctx, policy, attempts, rng, func() error {
		done, serr := w.Client.Submit(lease.Trial, lease.ID, w.Name, body)
		if serr == nil {
			campaignDone = done
		}
		return serr
	})
	if err != nil {
		return false, fmt.Errorf("campaignd: worker %s: submit trial %d: %w", w.Name, lease.Trial, err)
	}
	if w.Logger != nil {
		w.Logger.Info("trial submitted", "worker", w.Name,
			"trial", lease.Trial, "status", res.Status)
	}
	return campaignDone, nil
}
