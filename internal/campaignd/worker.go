package campaignd

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"math/rand"
	"time"

	"repro/internal/fleet"
	"repro/internal/retry"
)

// DefaultTransportRetry is the worker's backoff for server outages. The
// cap is generous relative to the base because the interesting outage is a
// server crash-and-resume: the worker must still be polling when the
// restarted server comes back up with its journals reloaded.
var DefaultTransportRetry = retry.Policy{
	Base:   200 * time.Millisecond,
	Cap:    2 * time.Second,
	Jitter: 0.5,
}

// DefaultTransportAttempts bounds consecutive failed calls before the
// worker gives up on the server entirely.
const DefaultTransportAttempts = 60

// Runtime is everything a worker needs to execute one campaign's trials:
// the world factory and the fleet configuration (deadlines) both sides
// agreed on through the spec.
type Runtime struct {
	// Factory builds each leased trial's world.
	Factory fleet.TargetFactory
	// FleetCfg supplies the per-trial deadlines (from the spec's
	// FleetConfig; only MaxPerTrial and TrialTimeout are consulted).
	FleetCfg fleet.Config
}

// RuntimeBuilder maps a fetched campaign spec onto an executable runtime.
// The worker calls it once per campaign — the first time the scheduler
// hands it one of that campaign's trials — and caches the result across
// leases, so a worker serving many campaigns builds each campaign's world
// recipe exactly once.
type RuntimeBuilder func(spec CampaignSpec) (Runtime, error)

// Worker executes leased trials until the server reports no work left. It
// is campaign-agnostic: each lease names the campaign it belongs to (empty
// on a single-campaign coordinator), the worker fetches and caches that
// campaign's spec-derived runtime, and executes the trial through
// fleet.RunTrial — the same function an in-process fleet worker runs — so
// a trial's result does not depend on which process computed it.
type Worker struct {
	// Client reaches the server (required).
	Client *Client
	// Name identifies the worker in server logs.
	Name string
	// Build maps campaign specs onto runtimes (required).
	Build RuntimeBuilder
	// Logger, when non-nil, receives per-trial lines.
	Logger *slog.Logger
	// Transport is the backoff for server outages (default
	// DefaultTransportRetry).
	Transport retry.Policy
	// TransportAttempts bounds consecutive transport failures (default
	// DefaultTransportAttempts).
	TransportAttempts int

	// runtimes caches the built runtime per campaign ID across leases.
	runtimes map[string]Runtime
	// broken records campaigns whose spec could not be built — skipped on
	// subsequent leases instead of crashing the worker (one bad campaign
	// must not take down a fleet serving many good ones).
	broken map[string]error
}

// Run leases, executes and submits trials until done. It returns nil when
// the server reports no work left (a drained single-campaign coordinator,
// or a shutting-down multi-campaign scheduler), ctx.Err on cancellation,
// and a transport error only after TransportAttempts consecutive failed
// calls — a server crash shorter than that window is invisible apart from
// latency. A submit ack that only says *this campaign* drained does not
// end the worker: it re-polls the scheduler, which may hold other
// campaigns' trials.
func (w *Worker) Run(ctx context.Context) error {
	if w.Client == nil || w.Build == nil {
		return errors.New("campaignd: worker needs Client and Build")
	}
	policy := w.Transport
	if policy.Base <= 0 {
		policy = DefaultTransportRetry
	}
	attempts := w.TransportAttempts
	if attempts <= 0 {
		attempts = DefaultTransportAttempts
	}
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	w.runtimes = map[string]Runtime{}
	w.broken = map[string]error{}

	for {
		var lease Lease
		err := retry.Do(ctx, policy, attempts, rng, func() error {
			var lerr error
			lease, lerr = w.Client.Lease(w.Name)
			return lerr
		})
		if err != nil {
			return fmt.Errorf("campaignd: worker %s: lease: %w", w.Name, err)
		}
		switch lease.Status {
		case LeaseDone:
			if w.Logger != nil {
				w.Logger.Info("no work left, worker exiting", "worker", w.Name)
			}
			return nil
		case LeaseWait:
			wait := lease.RetryAfter
			if wait <= 0 {
				wait = 250 * time.Millisecond
			}
			if err := retry.Sleep(ctx, wait); err != nil {
				return err
			}
			continue
		case LeaseGranted:
		default:
			return fmt.Errorf("campaignd: worker %s: unknown lease status %q", w.Name, lease.Status)
		}

		rt, ok, err := w.runtime(ctx, lease.Campaign, policy, attempts, rng)
		if err != nil {
			return err
		}
		if !ok {
			// Unbuildable or vanished campaign: let the lease expire and be
			// someone else's (or a fixed server's) problem; keep serving the
			// rest of the fleet.
			if err := retry.Sleep(ctx, time.Second); err != nil {
				return err
			}
			continue
		}

		ack, err := w.runLeased(ctx, lease, rt, policy, attempts, rng)
		if err != nil {
			return err
		}
		if ack.Done {
			if w.Logger != nil {
				w.Logger.Info("no work left, worker exiting", "worker", w.Name)
			}
			return nil
		}
		if ack.CampaignDone && w.Logger != nil {
			// This campaign drained, but the scheduler may hold others:
			// re-poll instead of exiting (the multi-campaign shutdown fix).
			w.Logger.Info("campaign drained, re-polling scheduler",
				"worker", w.Name, "campaign", lease.Campaign)
		}
	}
}

// runtime returns the cached runtime for the campaign, fetching and
// building it on first use. ok=false means this campaign cannot be served
// (gone, or its spec does not build) — skip, don't crash. A non-nil error
// is fatal to the worker (transport budget exhausted or cancellation).
func (w *Worker) runtime(ctx context.Context, campaign string, policy retry.Policy, attempts int, rng *rand.Rand) (Runtime, bool, error) {
	if rt, ok := w.runtimes[campaign]; ok {
		return rt, true, nil
	}
	if berr, bad := w.broken[campaign]; bad {
		if w.Logger != nil {
			w.Logger.Warn("skipping lease for unbuildable campaign",
				"worker", w.Name, "campaign", campaign, "err", berr)
		}
		return Runtime{}, false, nil
	}
	var spec CampaignSpec
	err := retry.Do(ctx, policy, attempts, rng, func() error {
		s, serr := w.Client.Spec(campaign)
		if errors.Is(serr, ErrCampaignGone) {
			// Terminal, not transient: stop the retry loop by succeeding
			// with a sentinel spec and handle it below.
			spec = CampaignSpec{}
			return nil
		}
		if serr == nil {
			spec = s
		}
		return serr
	})
	if err != nil {
		return Runtime{}, false, fmt.Errorf("campaignd: worker %s: fetch spec for campaign %q: %w",
			w.Name, campaign, err)
	}
	if spec.Target == "" {
		if w.Logger != nil {
			w.Logger.Warn("campaign vanished before its spec was fetched",
				"worker", w.Name, "campaign", campaign)
		}
		return Runtime{}, false, nil
	}
	rt, err := w.Build(spec)
	if err != nil {
		w.broken[campaign] = err
		if w.Logger != nil {
			w.Logger.Error("campaign spec does not build on this worker",
				"worker", w.Name, "campaign", campaign, "err", err)
		}
		return Runtime{}, false, nil
	}
	if w.Logger != nil {
		w.Logger.Info("campaign runtime cached", "worker", w.Name,
			"campaign", campaign, "target", spec.Target, "trials", spec.Trials)
	}
	w.runtimes[campaign] = rt
	return rt, true, nil
}

// runLeased heartbeats and executes one leased trial, then submits it,
// returning the submit ack.
func (w *Worker) runLeased(ctx context.Context, lease Lease, rt Runtime, policy retry.Policy, attempts int, rng *rand.Rand) (SubmitAck, error) {
	if w.Logger != nil {
		w.Logger.Info("trial leased", "worker", w.Name, "campaign", lease.Campaign,
			"trial", lease.Trial, "lease", lease.ID)
	}
	// Heartbeat at a third of the TTL while the trial computes. Heartbeat
	// failures are logged, not fatal: if the lease is gone the trial is
	// re-running elsewhere with identical content; if the server is down it
	// may be back before the submission's retry budget runs out.
	hbCtx, stopHB := context.WithCancel(ctx)
	hbDone := make(chan struct{})
	go func() {
		defer close(hbDone)
		interval := lease.TTL / 3
		if interval <= 0 {
			interval = time.Second
		}
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-hbCtx.Done():
				return
			case <-t.C:
				if err := w.Client.Heartbeat(lease.Campaign, lease.ID); err != nil && w.Logger != nil {
					w.Logger.Warn("heartbeat failed", "worker", w.Name,
						"campaign", lease.Campaign, "trial", lease.Trial,
						"lease", lease.ID, "err", err)
				}
			}
		}
	}()

	spec := fleet.TrialSpec{Index: lease.Trial, Seed: lease.Seed}
	res := fleet.RunTrial(spec, rt.FleetCfg, rt.Factory)
	stopHB()
	<-hbDone

	body, err := json.Marshal(res)
	if err != nil {
		return SubmitAck{}, fmt.Errorf("campaignd: worker %s: marshal result: %w", w.Name, err)
	}
	var ack SubmitAck
	err = retry.Do(ctx, policy, attempts, rng, func() error {
		a, serr := w.Client.Submit(lease.Campaign, lease.Trial, lease.ID, w.Name, body)
		if serr == nil {
			ack = a
		}
		return serr
	})
	if err != nil {
		return SubmitAck{}, fmt.Errorf("campaignd: worker %s: submit trial %d: %w", w.Name, lease.Trial, err)
	}
	if w.Logger != nil {
		if ack.Gone {
			w.Logger.Warn("result dropped: campaign gone", "worker", w.Name,
				"campaign", lease.Campaign, "trial", lease.Trial)
		} else {
			w.Logger.Info("trial submitted", "worker", w.Name, "campaign", lease.Campaign,
				"trial", lease.Trial, "status", res.Status)
		}
	}
	return ack, nil
}
