// Package ids implements a CAN intrusion-detection ECU — the defender's
// side of the paper's §VII discussion: "Use the fuzz test to determine the
// effectiveness of protection measures... or additions to ECU software to
// mitigate cyber attacks". The detector is the classic frequency/anomaly
// IDS from the in-vehicle security literature:
//
//   - a training window learns the identifier population and each
//     identifier's nominal inter-arrival time;
//   - afterwards, frames with unknown identifiers, or arriving much faster
//     than an identifier's learned period, raise alerts.
//
// Random fuzzing is maximally loud against such a detector: nearly every
// fuzz frame carries an unknown identifier. The ablation benchmark
// measures detection latency — how much fuzzing a monitored bus tolerates
// before the IDS fires — closing the loop on the paper's observation that
// "vehicle systems need additional logic to ignore nonsensical CAN message
// values".
package ids

import (
	"time"

	"repro/internal/bus"
	"repro/internal/can"
	"repro/internal/clock"
)

// AlertKind classifies a detection.
type AlertKind int

const (
	// UnknownID flags an identifier never seen during training.
	UnknownID AlertKind = iota + 1
	// RateAnomaly flags a known identifier arriving far above its learned
	// rate.
	RateAnomaly
)

// String returns the kind name.
func (k AlertKind) String() string {
	switch k {
	case UnknownID:
		return "unknown-id"
	case RateAnomaly:
		return "rate-anomaly"
	default:
		return "unknown"
	}
}

// Alert is one detection event.
type Alert struct {
	// Time is the virtual detection instant.
	Time time.Duration
	// Kind classifies the anomaly.
	Kind AlertKind
	// ID is the offending identifier.
	ID can.ID
}

// Config tunes the detector.
type Config struct {
	// Training is the learning window measured from the first observed
	// frame (default 5s).
	Training time.Duration
	// RateFactor is how much faster than the learned minimum inter-arrival
	// a frame must arrive to count as an anomaly (default 4).
	RateFactor float64
	// AlertThreshold is how many anomalous frames arm the intrusion state
	// (default 3, tolerating isolated event-driven messages).
	AlertThreshold int
}

func (c Config) withDefaults() Config {
	if c.Training <= 0 {
		c.Training = 5 * time.Second
	}
	if c.RateFactor <= 0 {
		c.RateFactor = 4
	}
	if c.AlertThreshold <= 0 {
		c.AlertThreshold = 3
	}
	return c
}

// profile is the learned state per identifier.
type profile struct {
	lastSeen time.Duration
	minGap   time.Duration
	frames   uint64
}

// Detector is the IDS application. Attach Observe to a bus tap or an ECU
// catch-all handler.
type Detector struct {
	sched *clock.Scheduler
	cfg   Config

	profiles   map[can.ID]*profile
	trainStart time.Duration
	trained    bool
	started    bool

	alerts    []Alert
	anomalies int
	intrusion bool
	onAlert   func(Alert)
}

// New builds a detector on the scheduler's clock.
func New(sched *clock.Scheduler, cfg Config) *Detector {
	return &Detector{
		sched:    sched,
		cfg:      cfg.withDefaults(),
		profiles: make(map[can.ID]*profile),
	}
}

// OnAlert registers a callback invoked for every alert.
func (d *Detector) OnAlert(fn func(Alert)) { d.onAlert = fn }

// Trained reports whether the learning window has closed.
func (d *Detector) Trained() bool { return d.trained }

// IntrusionDetected reports whether the anomaly count crossed the alert
// threshold.
func (d *Detector) IntrusionDetected() bool { return d.intrusion }

// Alerts returns a copy of the alert log.
func (d *Detector) Alerts() []Alert {
	out := make([]Alert, len(d.alerts))
	copy(out, d.alerts)
	return out
}

// KnownIDs returns how many identifiers the training window learned.
func (d *Detector) KnownIDs() int { return len(d.profiles) }

// Observe feeds one bus frame to the detector.
func (d *Detector) Observe(m bus.Message) {
	now := d.sched.Now()
	if !d.started {
		d.started = true
		d.trainStart = now
	}
	if !d.trained {
		if now-d.trainStart < d.cfg.Training {
			d.learn(m.Frame.ID, now)
			return
		}
		d.trained = true
	}
	d.detect(m.Frame.ID, now)
}

func (d *Detector) learn(id can.ID, now time.Duration) {
	p, ok := d.profiles[id]
	if !ok {
		p = &profile{minGap: -1}
		d.profiles[id] = p
	}
	if p.frames > 0 {
		gap := now - p.lastSeen
		if p.minGap < 0 || gap < p.minGap {
			p.minGap = gap
		}
	}
	p.lastSeen = now
	p.frames++
}

func (d *Detector) detect(id can.ID, now time.Duration) {
	p, known := d.profiles[id]
	if !known {
		d.raise(Alert{Time: now, Kind: UnknownID, ID: id})
		return
	}
	if p.minGap > 0 && p.frames > 1 {
		gap := now - p.lastSeen
		if float64(gap)*d.cfg.RateFactor < float64(p.minGap) {
			d.raise(Alert{Time: now, Kind: RateAnomaly, ID: id})
		}
	}
	p.lastSeen = now
	p.frames++
}

func (d *Detector) raise(a Alert) {
	d.alerts = append(d.alerts, a)
	d.anomalies++
	if d.anomalies >= d.cfg.AlertThreshold {
		d.intrusion = true
	}
	if d.onAlert != nil {
		d.onAlert(a)
	}
}
