package ids

import (
	"testing"
	"time"

	"repro/internal/bus"
	"repro/internal/can"
	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/vehicle"
)

func TestNoAlertsOnNormalTraffic(t *testing.T) {
	sched := clock.New()
	v := vehicle.New(sched, vehicle.Config{Seed: 1})
	d := New(sched, Config{Training: 5 * time.Second})
	v.TapOBD(vehicle.OBDBody, d.Observe)
	sched.RunUntil(60 * time.Second)
	if !d.Trained() {
		t.Fatal("detector never finished training")
	}
	if d.KnownIDs() < 8 {
		t.Fatalf("learned only %d identifiers", d.KnownIDs())
	}
	if d.IntrusionDetected() {
		t.Fatalf("false positive on normal traffic: %v", d.Alerts())
	}
}

func TestDetectsBlindFuzzingQuickly(t *testing.T) {
	sched := clock.New()
	v := vehicle.New(sched, vehicle.Config{Seed: 1})
	d := New(sched, Config{Training: 5 * time.Second})
	v.TapOBD(vehicle.OBDBody, d.Observe)
	sched.RunUntil(20 * time.Second)
	if d.IntrusionDetected() {
		t.Fatal("intrusion before the attack started")
	}

	campaign, err := core.NewCampaign(sched, v.AttachOBD(vehicle.OBDBody, "fuzzer"),
		core.Config{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	attackStart := sched.Now()
	campaign.Start()
	var detectedAt time.Duration
	for sched.Now() < attackStart+time.Minute {
		sched.RunFor(time.Millisecond)
		if d.IntrusionDetected() {
			detectedAt = sched.Now()
			break
		}
	}
	campaign.Stop()
	if detectedAt == 0 {
		t.Fatal("blind fuzzing never detected")
	}
	latency := detectedAt - attackStart
	// Nearly every fuzz frame has an unknown id; threshold 3 at 1 ms pacing
	// means detection within a handful of frames.
	if latency > 100*time.Millisecond {
		t.Fatalf("detection latency = %v, want < 100ms", latency)
	}
}

func TestUnknownIDAlert(t *testing.T) {
	sched := clock.New()
	b := bus.New(sched)
	legit := b.Connect("legit")
	d := New(sched, Config{Training: time.Second, AlertThreshold: 1})
	b.Tap(d.Observe)
	beat := sched.Every(100*time.Millisecond, func() { legit.Send(can.MustNew(0x110, []byte{1})) })
	sched.RunUntil(2 * time.Second)
	beat.Stop()
	if !d.Trained() {
		t.Fatal("not trained")
	}
	attacker := b.Connect("attacker")
	attacker.Send(can.MustNew(0x6B0, []byte{0x80}))
	sched.RunFor(100 * time.Millisecond)
	alerts := d.Alerts()
	if len(alerts) != 1 || alerts[0].Kind != UnknownID || alerts[0].ID != 0x6B0 {
		t.Fatalf("alerts = %v", alerts)
	}
	if !d.IntrusionDetected() {
		t.Fatal("threshold 1 not armed")
	}
}

func TestRateAnomalyAlert(t *testing.T) {
	sched := clock.New()
	b := bus.New(sched)
	legit := b.Connect("legit")
	d := New(sched, Config{Training: 2 * time.Second, RateFactor: 4, AlertThreshold: 1})
	b.Tap(d.Observe)
	// Train a 100 ms periodic identifier.
	beat := sched.Every(100*time.Millisecond, func() { legit.Send(can.MustNew(0x110, []byte{1})) })
	sched.RunUntil(3 * time.Second)
	// Spoof the same identifier at 1 ms — a replay/flood attack.
	attacker := b.Connect("attacker")
	flood := sched.Every(time.Millisecond, func() { attacker.Send(can.MustNew(0x110, []byte{9})) })
	sched.RunFor(50 * time.Millisecond)
	beat.Stop()
	flood.Stop()
	found := false
	for _, a := range d.Alerts() {
		if a.Kind == RateAnomaly && a.ID == 0x110 {
			found = true
		}
	}
	if !found {
		t.Fatalf("no rate anomaly: %v", d.Alerts())
	}
}

func TestEventDrivenMessagesTolerated(t *testing.T) {
	// An identifier seen only once in training has no learned gap and must
	// not false-positive later.
	sched := clock.New()
	b := bus.New(sched)
	legit := b.Connect("legit")
	d := New(sched, Config{Training: time.Second, AlertThreshold: 1})
	b.Tap(d.Observe)
	legit.Send(can.MustNew(0x215, []byte{0x10})) // one event frame in training
	beat := sched.Every(100*time.Millisecond, func() { legit.Send(can.MustNew(0x110, []byte{1})) })
	sched.RunUntil(2 * time.Second)
	beat.Stop()
	legit.Send(can.MustNew(0x215, []byte{0x20})) // the event recurs post-training
	sched.RunFor(100 * time.Millisecond)
	if d.IntrusionDetected() {
		t.Fatalf("event-driven id false-positived: %v", d.Alerts())
	}
}

func TestOnAlertCallback(t *testing.T) {
	sched := clock.New()
	b := bus.New(sched)
	legit := b.Connect("legit")
	d := New(sched, Config{Training: time.Second})
	b.Tap(d.Observe)
	calls := 0
	d.OnAlert(func(Alert) { calls++ })
	beat := sched.Every(100*time.Millisecond, func() { legit.Send(can.MustNew(0x110, nil)) })
	sched.RunUntil(2 * time.Second)
	beat.Stop()
	attacker := b.Connect("attacker")
	for i := 0; i < 5; i++ {
		attacker.Send(can.MustNew(can.ID(0x700+i), nil))
	}
	sched.RunFor(100 * time.Millisecond)
	if calls != 5 {
		t.Fatalf("callback fired %d times, want 5", calls)
	}
}

func TestAlertKindString(t *testing.T) {
	if UnknownID.String() != "unknown-id" || RateAnomaly.String() != "rate-anomaly" ||
		AlertKind(0).String() != "unknown" {
		t.Fatal("AlertKind.String broken")
	}
}
