package core

import (
	"repro/internal/analysis"
	"repro/internal/bus"
	"repro/internal/can"
)

// Monitor is the fuzzer's CAN bus traffic monitor: it keeps integrity
// statistics over transmitted frames (the check behind Fig 5), mirrors
// observed traffic statistics (Fig 4 when attached to a vehicle), and
// retains a bounded window of recently sent frames so that a finding can
// record "the conditions that caused it".
type Monitor struct {
	sentMeans     analysis.ByteMeans
	observedMeans analysis.ByteMeans

	// Per-identifier counters are dense arrays, not maps: the 11-bit ID
	// space is only 2048 entries (16 KiB per direction), and NoteSent runs
	// once per transmitted frame — the map hash + growth was the last
	// allocation source on the steady-state TX path. Distinct-ID tallies
	// are maintained incrementally for the same reason.
	sentByID         [can.MaxID + 1]uint64
	observedByID     [can.MaxID + 1]uint64
	distinctSent     int
	distinctObserved int

	recent []can.Frame
	next   int
	filled bool
}

// NewMonitor creates a monitor retaining the last window sent frames.
func NewMonitor(window int) *Monitor {
	if window <= 0 {
		window = 32
	}
	return &Monitor{
		recent: make([]can.Frame, window),
	}
}

// Reset clears every accumulated statistic and the recent-frame window in
// place for world reuse, allocating nothing: the dense per-identifier
// arrays are zeroed with a memclr and the window ring is rewound (stale
// frames past the write cursor are unreachable through Recent).
func (m *Monitor) Reset() {
	m.sentMeans = analysis.ByteMeans{}
	m.observedMeans = analysis.ByteMeans{}
	clear(m.sentByID[:])
	clear(m.observedByID[:])
	m.distinctSent = 0
	m.distinctObserved = 0
	m.next = 0
	m.filled = false
}

// NoteSent records a transmitted fuzz frame.
func (m *Monitor) NoteSent(f can.Frame) {
	m.sentMeans.Add(f)
	if m.sentByID[f.ID] == 0 {
		m.distinctSent++
	}
	m.sentByID[f.ID]++
	m.recent[m.next] = f
	m.next++
	if m.next == len(m.recent) {
		m.next = 0
		m.filled = true
	}
}

// NoteObserved records a frame seen on the bus from other nodes.
func (m *Monitor) NoteObserved(msg bus.Message) {
	m.observedMeans.Add(msg.Frame)
	if m.observedByID[msg.Frame.ID] == 0 {
		m.distinctObserved++
	}
	m.observedByID[msg.Frame.ID]++
}

// SentMeans returns the integrity statistics over transmitted frames.
func (m *Monitor) SentMeans() *analysis.ByteMeans { return &m.sentMeans }

// ObservedMeans returns the statistics over observed bus traffic.
func (m *Monitor) ObservedMeans() *analysis.ByteMeans { return &m.observedMeans }

// SentCount returns the number of frames sent with a given identifier.
func (m *Monitor) SentCount(id can.ID) uint64 { return m.sentByID[id] }

// DistinctIDsSent returns how many distinct identifiers have been fuzzed —
// the identifier-coverage numerator. With the full 2048-ID space at 1 ms
// pacing, complete ID coverage arrives within a few virtual seconds even
// though value coverage never will (§V combinatorics).
func (m *Monitor) DistinctIDsSent() int { return m.distinctSent }

// ObservedIDs returns the number of distinct identifiers observed.
func (m *Monitor) ObservedIDs() int { return m.distinctObserved }

// Recent returns the retained window of sent frames, oldest first.
func (m *Monitor) Recent() []can.Frame {
	if !m.filled {
		out := make([]can.Frame, m.next)
		copy(out, m.recent[:m.next])
		return out
	}
	out := make([]can.Frame, 0, len(m.recent))
	out = append(out, m.recent[m.next:]...)
	out = append(out, m.recent[:m.next]...)
	return out
}
