package core_test

import (
	"fmt"
	"time"

	"repro/internal/bus"
	"repro/internal/can"
	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/oracle"
)

// Example runs the smallest complete fuzz campaign: a toy ECU with a
// hidden activation command, found by random fuzzing with an ACK oracle.
func Example() {
	sched := clock.New()
	b := bus.New(sched)

	// The system under test answers 0x42 on identifier 0x0C0 with an ACK.
	sut := b.Connect("sut")
	sut.SetReceiver(func(m bus.Message) {
		if m.Frame.ID == 0x0C0 && m.Frame.Len >= 1 && m.Frame.Data[0] == 0x42 {
			_ = sut.Send(can.MustNew(0x0C1, []byte{0xAC}))
		}
	})

	campaign, err := core.NewCampaign(sched, b.Connect("fuzzer"),
		core.Config{Seed: 1, TargetIDs: []can.ID{0x0C0}, LenMin: 1, LenMax: 1},
		core.WithStopOnFinding())
	if err != nil {
		panic(err)
	}
	campaign.AddOracle(&oracle.Ack{Once: true, Match: func(f can.Frame) bool {
		return f.ID == 0x0C1
	}})

	finding, ok := campaign.RunUntilFinding(time.Hour)
	fmt.Println("found:", ok)
	fmt.Println("oracle:", finding.Verdict.Oracle)
	// Output:
	// found: true
	// oracle: ack
}

// ExampleGenerator shows deterministic frame generation from the full
// Table III parameter space.
func ExampleGenerator() {
	gen, err := core.NewGenerator(core.Config{Seed: 42})
	if err != nil {
		panic(err)
	}
	for i := 0; i < 3; i++ {
		fmt.Println(gen.Next())
	}
	// Output:
	// 04B1 8 84 3E DF 61 A5 88 70 D3
	// 01F9 2 E7 DC
	// 078C 0
}
