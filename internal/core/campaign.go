package core

import (
	"time"

	"repro/internal/bus"
	"repro/internal/can"
	"repro/internal/clock"
	"repro/internal/oracle"
)

// Finding is one oracle firing with the surrounding campaign context — the
// paper's "if a system failure occurs the conditions that caused it are
// recorded".
type Finding struct {
	// Verdict is the oracle report.
	Verdict oracle.Verdict
	// FramesSent is the campaign frame count at firing time.
	FramesSent uint64
	// Elapsed is the campaign runtime at firing time.
	Elapsed time.Duration
	// Recent is the window of fuzz frames transmitted before the firing,
	// oldest first.
	Recent []can.Frame
}

// Option configures a Campaign.
type Option func(*Campaign)

// WithStopOnFinding halts transmission at the first finding.
func WithStopOnFinding() Option {
	return func(c *Campaign) { c.stopOnFinding = true }
}

// WithResetHook installs a system reset action run after each finding when
// the campaign continues ("...and the system is reset").
func WithResetHook(fn func()) Option {
	return func(c *Campaign) { c.reset = fn }
}

// WithOnFinding installs a finding callback.
func WithOnFinding(fn func(Finding)) Option {
	return func(c *Campaign) { c.onFinding = fn }
}

// WithRecentWindow sets how many recently sent frames each finding records.
func WithRecentWindow(n int) Option {
	return func(c *Campaign) { c.window = n }
}

// WithMaxFrames bounds the number of frames transmitted.
func WithMaxFrames(n uint64) Option {
	return func(c *Campaign) { c.maxFrames = n }
}

// Campaign drives one fuzz test: a generator paced by the timing loop,
// transmitting through a bus port, with oracles watching the system under
// test. Create with NewCampaign, arm oracles with AddOracle, then either
// Start and drive the scheduler yourself or use RunFor/RunUntilFinding.
type Campaign struct {
	sched *clock.Scheduler
	port  *bus.Port
	gen   *Generator
	mon   *Monitor

	oracles  []oracle.Oracle
	findings []Finding

	framesSent uint64
	sendErrors uint64
	started    time.Duration
	running    bool
	timer      *clock.Timer

	stopOnFinding bool
	reset         func()
	onFinding     func(Finding)
	window        int
	maxFrames     uint64
}

// NewCampaign builds a campaign. The port is the fuzzer's bus attachment
// (e.g. the OBD connector); the campaign takes over its receiver to feed
// the monitor and oracles.
func NewCampaign(sched *clock.Scheduler, port *bus.Port, cfg Config, opts ...Option) (*Campaign, error) {
	gen, err := NewGenerator(cfg)
	if err != nil {
		return nil, err
	}
	c := &Campaign{
		sched:  sched,
		port:   port,
		gen:    gen,
		window: 16,
	}
	for _, o := range opts {
		o(c)
	}
	c.mon = NewMonitor(c.window)
	port.SetReceiver(c.observe)
	return c, nil
}

// Generator returns the campaign's frame generator.
func (c *Campaign) Generator() *Generator { return c.gen }

// Monitor returns the campaign's traffic monitor.
func (c *Campaign) Monitor() *Monitor { return c.mon }

// FramesSent returns the number of fuzz frames transmitted so far.
func (c *Campaign) FramesSent() uint64 { return c.framesSent }

// SendErrors returns the number of rejected transmissions (queue full,
// bus-off...).
func (c *Campaign) SendErrors() uint64 { return c.sendErrors }

// Findings returns a copy of the findings list.
func (c *Campaign) Findings() []Finding {
	out := make([]Finding, len(c.findings))
	copy(out, c.findings)
	return out
}

// Running reports whether the transmission loop is armed.
func (c *Campaign) Running() bool { return c.running }

// AddOracle arms an oracle. Oracles added while running start immediately.
func (c *Campaign) AddOracle(o oracle.Oracle) {
	c.oracles = append(c.oracles, o)
	if c.running {
		o.Start(c.sched, c.report)
	}
}

// Start arms the timing loop and oracles. It is idempotent.
func (c *Campaign) Start() {
	if c.running {
		return
	}
	c.running = true
	c.started = c.sched.Now()
	for _, o := range c.oracles {
		o.Start(c.sched, c.report)
	}
	c.timer = c.sched.Every(c.gen.cfg.Interval, c.sendOne)
}

// Stop halts transmission and disarms oracles.
func (c *Campaign) Stop() {
	if !c.running {
		return
	}
	c.running = false
	if c.timer != nil {
		c.timer.Stop()
		c.timer = nil
	}
	for _, o := range c.oracles {
		o.Stop()
	}
}

// RunFor starts the campaign and drives the scheduler for the given
// virtual duration, then stops.
func (c *Campaign) RunFor(d time.Duration) {
	c.Start()
	c.sched.RunUntil(c.sched.Now() + d)
	c.Stop()
}

// RunUntilFinding starts the campaign and drives the scheduler until the
// first finding or the deadline. It reports the finding and whether one
// occurred.
func (c *Campaign) RunUntilFinding(maxDuration time.Duration) (Finding, bool) {
	if !c.stopOnFinding {
		c.stopOnFinding = true
	}
	before := len(c.findings)
	c.Start()
	deadline := c.sched.Now() + maxDuration
	for c.sched.Now() < deadline && len(c.findings) == before {
		if !c.sched.Step() {
			break
		}
	}
	c.Stop()
	if len(c.findings) > before {
		return c.findings[len(c.findings)-1], true
	}
	return Finding{}, false
}

// sendOne is the timing-loop body: generate, transmit, account.
func (c *Campaign) sendOne() {
	if c.maxFrames > 0 && c.framesSent >= c.maxFrames {
		c.Stop()
		return
	}
	f := c.gen.Next()
	if err := c.port.Send(f); err != nil {
		c.sendErrors++
		return
	}
	c.framesSent++
	c.mon.NoteSent(f)
}

// observe feeds bus traffic to the monitor and oracles.
func (c *Campaign) observe(m bus.Message) {
	c.mon.NoteObserved(m)
	if !c.running {
		return
	}
	for _, o := range c.oracles {
		o.Observe(m)
	}
}

// report handles an oracle verdict.
func (c *Campaign) report(v oracle.Verdict) {
	f := Finding{
		Verdict:    v,
		FramesSent: c.framesSent,
		Elapsed:    c.sched.Now() - c.started,
		Recent:     c.mon.Recent(),
	}
	c.findings = append(c.findings, f)
	if c.onFinding != nil {
		c.onFinding(f)
	}
	if c.stopOnFinding {
		c.Stop()
		return
	}
	if c.reset != nil {
		c.reset()
	}
}
