package core

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/bus"
	"repro/internal/can"
	"repro/internal/clock"
	"repro/internal/oracle"
	"repro/internal/telemetry"
)

// Finding is one oracle firing with the surrounding campaign context — the
// paper's "if a system failure occurs the conditions that caused it are
// recorded".
type Finding struct {
	// Verdict is the oracle report.
	Verdict oracle.Verdict
	// FramesSent is the campaign frame count at firing time.
	FramesSent uint64
	// Elapsed is the campaign runtime at firing time.
	Elapsed time.Duration
	// Recent is the window of fuzz frames transmitted before the firing,
	// oldest first.
	Recent []can.Frame
}

// FrameSource supplies campaign frames from outside the built-in
// generator — the hook ModeGuided rides on. Next is called once per timing
// tick; returning ok=false skips the tick without transmitting (the source
// is exhausted or waiting for feedback). Observe receives every bus message
// the campaign's port sees while running, in delivery order, so the source
// can close the loop between what it sent and what the target did.
//
// A Campaign drives its FrameSource strictly from the single-threaded
// scheduler, so implementations need no locking.
type FrameSource interface {
	Next() (can.Frame, bool)
	Observe(m bus.Message)
}

// Option configures a Campaign.
type Option func(*Campaign)

// WithFrameSource installs an external frame source that overrides the
// built-in generator (see FrameSource). The generator still validates the
// Config and serves as the mode/interval record for BuildReport.
func WithFrameSource(src FrameSource) Option {
	return func(c *Campaign) { c.src = src }
}

// WithStopOnFinding halts transmission at the first finding.
func WithStopOnFinding() Option {
	return func(c *Campaign) { c.stopOnFinding = true }
}

// WithResetHook installs a system reset action run after each finding when
// the campaign continues ("...and the system is reset").
func WithResetHook(fn func()) Option {
	return func(c *Campaign) { c.reset = fn }
}

// WithOnFinding installs a finding callback.
func WithOnFinding(fn func(Finding)) Option {
	return func(c *Campaign) { c.onFinding = fn }
}

// WithRecentWindow sets how many recently sent frames each finding records.
func WithRecentWindow(n int) Option {
	return func(c *Campaign) { c.window = n }
}

// WithMaxFrames bounds the number of frames transmitted.
func WithMaxFrames(n uint64) Option {
	return func(c *Campaign) { c.maxFrames = n }
}

// WithFaultCounts installs a snapshot function (typically
// faults.Injector.Counts) whose injected-fault counts by kind are embedded
// in BuildReport, making chaos campaigns self-describing.
func WithFaultCounts(fn func() map[string]uint64) Option {
	return func(c *Campaign) { c.faultCounts = fn }
}

// WithTelemetry attaches the campaign to a telemetry plane: frame and
// error counters, coverage and integrity gauges, and trace events for
// generator progress, oracle firings and system resets. Oracles added via
// AddOracle are wrapped with oracle.Instrumented. A nil argument leaves
// the campaign uninstrumented (the default, with zero overhead).
func WithTelemetry(t *telemetry.Telemetry) Option {
	return func(c *Campaign) { c.tel = t }
}

// genBatchEvery is the generator checkpoint period: one EvGenBatch trace
// event and a gauge refresh per this many transmitted frames.
const genBatchEvery = 256

// Send-error causes, as reported by SendErrorsByCause and the campaign
// report. The paper's automation loop needs to distinguish "the fuzzer
// outpaced the bus" (queue-full) from "the fuzzer knocked itself off the
// bus" (bus-off) — they demand opposite remediations.
const (
	CauseQueueFull      = "queue-full"
	CauseBusOff         = "bus-off"
	CauseDetached       = "detached"
	CauseRetryExhausted = "retry-exhausted"
	CauseWatchdogReset  = "watchdog-reset"
	CauseOther          = "other"
)

// Cause indices into sendErrorCauses and the per-cause counter arrays. The
// send path classifies to a small integer so error accounting indexes two
// fixed arrays instead of hashing a string into two maps per rejection.
const (
	causeIdxQueueFull = iota
	causeIdxBusOff
	causeIdxDetached
	causeIdxRetryExhausted
	causeIdxWatchdogReset
	causeIdxOther
	numSendErrorCauses
)

// sendErrorCauses lists every cause label classifySendError can return,
// ordered to match the causeIdx constants, for eager counter registration.
var sendErrorCauses = []string{
	CauseQueueFull, CauseBusOff, CauseDetached,
	CauseRetryExhausted, CauseWatchdogReset, CauseOther,
}

// classifySendErrorIndex maps a send-path error to its cause index. The
// resilience sentinels are checked first: a frame abandoned after exhausted
// retries or a watchdog reset must not be re-bucketed by whatever transient
// error happened to be last.
func classifySendErrorIndex(err error) int {
	switch {
	case errors.Is(err, ErrRetryExhausted):
		return causeIdxRetryExhausted
	case errors.Is(err, ErrWatchdogReset):
		return causeIdxWatchdogReset
	case errors.Is(err, bus.ErrTxQueueFull):
		return causeIdxQueueFull
	case errors.Is(err, bus.ErrBusOff):
		return causeIdxBusOff
	case errors.Is(err, bus.ErrDetached):
		return causeIdxDetached
	default:
		return causeIdxOther
	}
}

// classifySendError maps a send-path error to its cause label.
func classifySendError(err error) string {
	return sendErrorCauses[classifySendErrorIndex(err)]
}

// Campaign drives one fuzz test: a generator paced by the timing loop,
// transmitting through a bus port, with oracles watching the system under
// test. Create with NewCampaign, arm oracles with AddOracle, then either
// Start and drive the scheduler yourself or use RunFor/RunUntilFinding.
type Campaign struct {
	sched *clock.Scheduler
	port  *bus.Port
	gen   *Generator
	mon   *Monitor

	oracles  []oracle.Oracle
	findings []Finding

	framesSent  uint64
	sendErrors  uint64
	errsByCause [numSendErrorCauses]uint64
	started     time.Duration
	running     bool
	// timer is the pacing loop: a re-armable Periodic allocated once at
	// construction, so Start/Stop cycles (and pooled world reuse) never
	// allocate a timer or closure.
	timer *clock.Periodic

	stopOnFinding bool
	reset         func()
	onFinding     func(Finding)
	window        int
	maxFrames     uint64
	src           FrameSource

	// Construction-time snapshots consulted by Reset: RunUntilFinding
	// mutates stopOnFinding and lazily installs a default resilience
	// policy, and a reused world must start the next trial from the
	// as-constructed values, not whatever the previous trial left behind.
	stopOnFindingInit bool
	resCfg            Resilience
	hasResCfg         bool

	// res is the resilience policy; nil (the default) means no retries and
	// no watchdog, with zero overhead on the send path.
	res *resState
	// wallBudget bounds RunUntilFinding in wall-clock time (0 = unbounded);
	// wallExpired records that the budget, not the virtual deadline, ended
	// the run. See SetWallBudget.
	wallBudget  time.Duration
	wallExpired bool
	// faultCounts snapshots injected-fault counts for BuildReport.
	faultCounts func() map[string]uint64

	// Telemetry handles; nil (no-op) unless WithTelemetry was given.
	tel       *telemetry.Telemetry
	mSent     *telemetry.Counter
	mErrCause [numSendErrorCauses]*telemetry.Counter
	mFindings *telemetry.Counter
	mResets   *telemetry.Counter
	gDistinct *telemetry.Gauge
	gByteMean *telemetry.Gauge
}

// NewCampaign builds a campaign. The port is the fuzzer's bus attachment
// (e.g. the OBD connector); the campaign takes over its receiver to feed
// the monitor and oracles.
func NewCampaign(sched *clock.Scheduler, port *bus.Port, cfg Config, opts ...Option) (*Campaign, error) {
	gen, err := NewGenerator(cfg)
	if err != nil {
		return nil, err
	}
	c := &Campaign{
		sched:  sched,
		port:   port,
		gen:    gen,
		window: 16,
	}
	for _, o := range opts {
		o(c)
	}
	c.timer = sched.NewPeriodic(gen.cfg.Interval, c.sendOne)
	c.stopOnFindingInit = c.stopOnFinding
	if c.res != nil {
		c.resCfg, c.hasResCfg = c.res.Resilience, true
	}
	c.mon = NewMonitor(c.window)
	if c.tel != nil {
		reg := c.tel.Registry
		c.mSent = reg.Counter("campaign_frames_sent_total", "Fuzz frames transmitted by the campaign.")
		c.mFindings = reg.Counter("campaign_findings_total", "Oracle firings recorded by the campaign.")
		c.mResets = reg.Counter("campaign_resets_total", "System resets performed after findings.")
		c.gDistinct = reg.Gauge("campaign_distinct_ids", "Distinct identifiers fuzzed (coverage numerator).")
		c.gByteMean = reg.Gauge("campaign_sent_byte_mean", "Mean payload byte value of sent frames (Fig 5 integrity; ~127.5 when healthy).")
		for i, cause := range sendErrorCauses {
			c.mErrCause[i] = reg.Counter("campaign_send_errors_total",
				"Rejected transmissions, by cause.", telemetry.Label{Key: "cause", Value: cause})
		}
	}
	port.SetReceiver(c.observe)
	return c, nil
}

// Generator returns the campaign's frame generator.
func (c *Campaign) Generator() *Generator { return c.gen }

// Monitor returns the campaign's traffic monitor.
func (c *Campaign) Monitor() *Monitor { return c.mon }

// SetFrameSource installs (or clears, with nil) an external frame source
// after construction — the minimizer swaps playback sources between
// candidate executions this way. See WithFrameSource.
func (c *Campaign) SetFrameSource(src FrameSource) { c.src = src }

// FrameSource returns the installed external frame source, or nil.
func (c *Campaign) FrameSource() FrameSource { return c.src }

// FramesSent returns the number of fuzz frames transmitted so far.
func (c *Campaign) FramesSent() uint64 { return c.framesSent }

// SendErrors returns the number of rejected transmissions (queue full,
// bus-off...).
func (c *Campaign) SendErrors() uint64 { return c.sendErrors }

// SendErrorsByCause returns a copy of the rejected-transmission counts
// keyed by cause (CauseQueueFull, CauseBusOff, CauseDetached, CauseOther).
func (c *Campaign) SendErrorsByCause() map[string]uint64 {
	out := make(map[string]uint64, numSendErrorCauses)
	for i, cause := range sendErrorCauses {
		if c.errsByCause[i] != 0 {
			out[cause] = c.errsByCause[i]
		}
	}
	return out
}

// Findings returns a copy of the findings list.
func (c *Campaign) Findings() []Finding {
	out := make([]Finding, len(c.findings))
	copy(out, c.findings)
	return out
}

// Running reports whether the transmission loop is armed.
func (c *Campaign) Running() bool { return c.running }

// AddOracle arms an oracle. Oracles added while running start immediately.
// On an instrumented campaign the oracle is wrapped with
// oracle.Instrumented so its observation and verdict counts are exported.
func (c *Campaign) AddOracle(o oracle.Oracle) {
	if c.tel != nil {
		o = oracle.Instrumented(o, c.tel)
	}
	c.oracles = append(c.oracles, o)
	if c.running {
		o.Start(c.sched, c.report)
	}
}

// Start arms the timing loop and oracles. It is idempotent.
func (c *Campaign) Start() {
	if c.running {
		return
	}
	c.running = true
	c.started = c.sched.Now()
	for _, o := range c.oracles {
		o.Start(c.sched, c.report)
	}
	c.timer.Start()
	c.startWatchdog()
}

// Stop halts transmission and disarms oracles.
func (c *Campaign) Stop() {
	if !c.running {
		return
	}
	c.running = false
	if c.tel != nil {
		// Final checkpoint so a post-run scrape or trace sees the end state
		// even when the campaign halts inside a batch.
		c.tel.Advance(c.sched.Now())
		c.gDistinct.Set(float64(c.mon.DistinctIDsSent()))
		c.gByteMean.Set(c.mon.SentMeans().OverallMean())
		c.tel.Emit(telemetry.Event{
			At: c.sched.Now(), Kind: telemetry.EvGenBatch,
			Actor: "campaign", Name: "gen-batch", N: c.framesSent,
		})
	}
	c.timer.Stop()
	c.stopWatchdog()
	for _, o := range c.oracles {
		o.Stop()
	}
}

// Reset returns the campaign to its freshly-constructed state under a new
// seed, for pooled world reuse. The wiring — port receiver, oracles,
// hooks, frame source, telemetry handles — survives; the run state does
// not: the generator stream restarts from seed, the monitor statistics
// and findings are cleared, the error accounting zeroes, and the
// resilience policy returns to its as-constructed form (in particular,
// the default watchdog RunUntilFinding installs lazily is discarded, so
// a reused campaign re-derives it exactly like a fresh one). The caller
// must Reset the scheduler first; the campaign's pacing timer and
// watchdog handles from the previous life are already invalidated by the
// scheduler's generation bump and are simply dropped. Steady state
// allocates nothing.
func (c *Campaign) Reset(seed int64) {
	c.running = false
	c.timer.Stop()
	c.gen.Reset(seed)
	c.mon.Reset()
	c.findings = c.findings[:0]
	c.framesSent = 0
	c.sendErrors = 0
	c.errsByCause = [numSendErrorCauses]uint64{}
	c.started = 0
	c.wallExpired = false
	c.stopOnFinding = c.stopOnFindingInit
	if c.hasResCfg {
		*c.res = resState{Resilience: c.resCfg}
	} else {
		c.res = nil
	}
}

// RunFor starts the campaign and drives the scheduler for the given
// virtual duration, then stops.
func (c *Campaign) RunFor(d time.Duration) {
	c.Start()
	c.sched.RunUntil(c.sched.Now() + d)
	c.Stop()
}

// SetWallBudget bounds the next RunUntilFinding in *wall-clock* time: a
// world whose event loop stops advancing virtual time (events rescheduling
// each other at the same instant, a runaway feedback loop) would otherwise
// spin below the virtual deadline forever. When the budget elapses the run
// stops and WallExpired reports true — the local analogue of a distributed
// lease expiring on a hung worker. Zero (the default) disables the bound.
// The check is cooperative, amortized over scheduler steps, so it cannot
// interrupt a single event callback that never returns.
func (c *Campaign) SetWallBudget(d time.Duration) { c.wallBudget = d }

// WallExpired reports whether the last RunUntilFinding was stopped by the
// wall-clock budget rather than a finding or the virtual deadline.
func (c *Campaign) WallExpired() bool { return c.wallExpired }

// wallCheckEvery is how many scheduler steps pass between wall-budget
// clock reads in RunUntilFinding (a power of two; one time.Now per ~1k
// steps is noise next to the event dispatch itself).
const wallCheckEvery = 1024

// RunUntilFinding starts the campaign and drives the scheduler until the
// first finding or the deadline. It reports the finding and whether one
// occurred. When no resilience policy is configured a default dead-bus
// watchdog is armed, so a campaign that knocks its own node bus-off mid-run
// ends promptly with a classified "watchdog" finding instead of spinning
// ErrBusOff until maxDuration.
func (c *Campaign) RunUntilFinding(maxDuration time.Duration) (Finding, bool) {
	if !c.stopOnFinding {
		c.stopOnFinding = true
	}
	if c.res == nil {
		w := DefaultResilience().WatchdogWindow
		if iv := c.gen.cfg.Interval; w < 4*iv {
			w = 4 * iv // never let a slow sender look like a dead bus
		}
		c.res = &resState{Resilience: Resilience{WatchdogWindow: w}}
	}
	c.wallExpired = false
	var wallDeadline time.Time
	if c.wallBudget > 0 {
		wallDeadline = time.Now().Add(c.wallBudget)
	}
	before := len(c.findings)
	c.Start()
	deadline := c.sched.Now() + maxDuration
	for steps := 0; c.running && c.sched.Now() < deadline && len(c.findings) == before; {
		if !c.sched.Step() {
			break
		}
		if steps++; c.wallBudget > 0 && steps&(wallCheckEvery-1) == 0 && time.Now().After(wallDeadline) {
			c.wallExpired = true
			break
		}
	}
	c.Stop()
	if len(c.findings) > before {
		return c.findings[len(c.findings)-1], true
	}
	return Finding{}, false
}

// sendOne is the timing-loop body: generate (or pick up a pending
// retransmission), transmit, account. With a resilience policy, transient
// rejections pause the loop for a doubling backoff and retry the same frame
// instead of abandoning it.
func (c *Campaign) sendOne() {
	if c.maxFrames > 0 && c.framesSent >= c.maxFrames {
		c.Stop()
		return
	}
	res := c.res
	if res != nil && c.sched.Now() < res.pausedUntil {
		return // backing off; keep the generator stream untouched
	}
	var f can.Frame
	switch {
	case res != nil && res.pendingValid:
		f = res.pending
	case c.src != nil:
		var ok bool
		if f, ok = c.src.Next(); !ok {
			return // source has nothing this tick; send nothing
		}
	default:
		f = c.gen.Next()
	}
	if err := c.port.Send(f); err != nil {
		if res != nil && res.RetryMax > 0 && transientSendError(err) {
			if res.attempts < res.RetryMax {
				res.pending, res.pendingValid = f, true
				res.attempts++
				res.pausedUntil = c.sched.Now() + res.backoff()
				c.noteRetry()
				return
			}
			res.clearPending()
			res.retriesExhausted++
			c.noteSendError(fmt.Errorf("%w (%d attempts, last: %v)",
				ErrRetryExhausted, res.RetryMax, err))
			return
		}
		c.noteSendError(err)
		return
	}
	if res != nil && res.pendingValid {
		res.clearPending()
	}
	c.framesSent++
	c.mon.NoteSent(f)
	c.mSent.Inc()
	if c.tel != nil && c.framesSent%genBatchEvery == 0 {
		now := c.sched.Now()
		c.tel.Advance(now)
		c.gDistinct.Set(float64(c.mon.DistinctIDsSent()))
		c.gByteMean.Set(c.mon.SentMeans().OverallMean())
		c.tel.Emit(telemetry.Event{
			At: now, Kind: telemetry.EvGenBatch,
			Actor: "campaign", Name: "gen-batch", N: c.framesSent,
		})
	}
}

// noteSendError accounts one abandoned transmission by cause.
func (c *Campaign) noteSendError(err error) {
	c.sendErrors++
	idx := classifySendErrorIndex(err)
	c.errsByCause[idx]++
	if c.tel != nil {
		c.mErrCause[idx].Inc()
	}
}

// observe feeds bus traffic to the monitor and oracles.
func (c *Campaign) observe(m bus.Message) {
	c.mon.NoteObserved(m)
	if !c.running {
		return
	}
	if c.src != nil {
		c.src.Observe(m)
	}
	for _, o := range c.oracles {
		o.Observe(m)
	}
}

// report handles an oracle verdict.
func (c *Campaign) report(v oracle.Verdict) {
	f := Finding{
		Verdict:    v,
		FramesSent: c.framesSent,
		Elapsed:    c.sched.Now() - c.started,
		Recent:     c.mon.Recent(),
	}
	c.findings = append(c.findings, f)
	c.mFindings.Inc()
	if c.tel != nil {
		c.tel.Advance(c.sched.Now())
		c.tel.Emit(telemetry.Event{
			At: c.sched.Now(), Kind: telemetry.EvOracle,
			Actor: "campaign", Name: v.Oracle, Detail: v.Detail, N: c.framesSent,
		})
	}
	if c.onFinding != nil {
		c.onFinding(f)
	}
	if c.stopOnFinding {
		c.Stop()
		return
	}
	if c.reset != nil {
		c.reset()
		c.mResets.Inc()
		if c.tel != nil {
			c.tel.Emit(telemetry.Event{
				At: c.sched.Now(), Kind: telemetry.EvReset,
				Actor: "campaign", Name: "reset",
			})
		}
	}
}
