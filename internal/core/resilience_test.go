package core

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/bus"
	"repro/internal/can"
	"repro/internal/clock"
)

func TestClassifySendErrorExhaustive(t *testing.T) {
	cases := []struct {
		err  error
		want string
	}{
		{fmt.Errorf("send: %w", bus.ErrTxQueueFull), CauseQueueFull},
		{fmt.Errorf("send: %w", bus.ErrBusOff), CauseBusOff},
		{fmt.Errorf("send: %w", bus.ErrDetached), CauseDetached},
		{fmt.Errorf("%w (3 attempts, last: %v)", ErrRetryExhausted, bus.ErrTxQueueFull), CauseRetryExhausted},
		{ErrWatchdogReset, CauseWatchdogReset},
		{errors.New("anything else"), CauseOther},
	}
	seen := map[string]bool{}
	for _, tc := range cases {
		if got := classifySendError(tc.err); got != tc.want {
			t.Errorf("classifySendError(%v) = %q, want %q", tc.err, got, tc.want)
		}
		seen[tc.want] = true
	}
	// Every declared cause label must be reachable.
	for _, cause := range sendErrorCauses {
		if !seen[cause] {
			t.Errorf("cause %q not produced by any classification case", cause)
		}
	}
}

func TestRetryRecoversTransientQueueFull(t *testing.T) {
	// A 1-deep queue on a bus slower than the 1 ms send rate makes sends
	// collide with a full queue; with retries those frames are paused and
	// retransmitted rather than dropped.
	s := clock.New()
	b := bus.New(s, bus.WithBitrate(50_000), bus.WithTxQueueCap(1))
	port := b.Connect("fuzzer")
	b.Connect("sink").SetReceiver(func(bus.Message) {})
	c, err := NewCampaign(s, port, Config{Seed: 7},
		WithResilience(DefaultResilience()))
	if err != nil {
		t.Fatal(err)
	}
	c.RunFor(200 * time.Millisecond)
	rep := c.BuildReport()
	if rep.Resilience == nil {
		t.Fatal("report missing resilience section")
	}
	if rep.Resilience.Retries == 0 {
		t.Fatal("no retries recorded despite a saturating send rate")
	}
	if got := rep.SendErrorsByCause[CauseQueueFull]; got != 0 {
		t.Fatalf("queue-full abandonments = %d, want 0 (retried instead)", got)
	}
}

func TestRetryExhaustionClassified(t *testing.T) {
	// Permanent saturation: each frame needs ~5-13 ms of wire at 10 kb/s
	// while the retry budget spans well under 1 ms, so it runs out.
	s := clock.New()
	b := bus.New(s, bus.WithBitrate(10_000), bus.WithTxQueueCap(1))
	port := b.Connect("fuzzer")
	b.Connect("sink").SetReceiver(func(bus.Message) {})
	c, err := NewCampaign(s, port, Config{Seed: 7},
		WithResilience(Resilience{RetryMax: 2, RetryBackoff: 100 * time.Microsecond}))
	if err != nil {
		t.Fatal(err)
	}
	c.RunFor(time.Second)
	rep := c.BuildReport()
	if rep.Resilience.RetriesExhausted == 0 {
		t.Fatal("no exhausted retries on a hopelessly saturated bus")
	}
	if rep.SendErrorsByCause[CauseRetryExhausted] == 0 {
		t.Fatal("exhausted retries not classified under retry-exhausted")
	}
	if rep.SendErrorsByCause[CauseOther] != 0 {
		t.Fatalf("send errors leaked into 'other': %v", rep.SendErrorsByCause)
	}
}

// busOffRig builds a campaign whose every transmission is corrupted, so the
// fuzzer node drives itself to bus-off shortly after Start.
func busOffRig(t *testing.T, busOpts []bus.Option, campOpts ...Option) (*clock.Scheduler, *bus.Bus, *bus.Port, *Campaign) {
	t.Helper()
	s := clock.New()
	b := bus.New(s, busOpts...)
	port := b.Connect("fuzzer")
	b.Connect("sink").SetReceiver(func(bus.Message) {})
	b.SetCorruptor(func(can.Frame) bool { return true })
	c, err := NewCampaign(s, port, Config{Seed: 11}, campOpts...)
	if err != nil {
		t.Fatal(err)
	}
	return s, b, port, c
}

func TestRunUntilFindingStopsOnDeadBus(t *testing.T) {
	// Without recovery, the self-inflicted bus-off must end the run with a
	// classified watchdog finding well before the deadline — not spin
	// ErrBusOff for the full hour.
	s, _, _, c := busOffRig(t, nil)
	f, ok := c.RunUntilFinding(time.Hour)
	if !ok {
		t.Fatal("no finding from a dead bus")
	}
	if f.Verdict.Oracle != "watchdog" {
		t.Fatalf("finding oracle = %q, want watchdog", f.Verdict.Oracle)
	}
	if s.Now() >= time.Hour {
		t.Fatalf("ran to the deadline (%v) instead of short-circuiting", s.Now())
	}
	if c.Running() {
		t.Fatal("campaign still running after watchdog finding")
	}
	rep := c.BuildReport()
	if rep.Resilience == nil || rep.Resilience.WatchdogFires == 0 {
		t.Fatalf("watchdog activity missing from report: %+v", rep.Resilience)
	}
}

func TestWatchdogResetHealsCampaign(t *testing.T) {
	// With a reset hook, the watchdog resurrects the node and the campaign
	// resumes sending instead of stopping.
	var resets int
	s, b, port, c := busOffRig(t, nil)
	c.reset = func() {
		resets++
		b.SetCorruptor(nil) // the reset also clears the fault source
		port.ResetErrors()
	}
	c.res = &resState{Resilience: Resilience{WatchdogWindow: 50 * time.Millisecond}}
	c.Start()
	s.RunUntil(500 * time.Millisecond)
	c.Stop()
	if resets == 0 {
		t.Fatal("watchdog never invoked the reset hook")
	}
	rep := c.BuildReport()
	if rep.Resilience.WatchdogResets == 0 {
		t.Fatal("watchdog resets not counted")
	}
	if rep.Resilience.PortBusOffs == 0 {
		t.Fatal("port bus-off cycle missing from report")
	}
	// Healed: frames flowed after the reset.
	if port.Stats().TxFrames == 0 {
		t.Fatal("no frames delivered after the watchdog reset")
	}
	if len(c.Findings()) != 0 {
		t.Fatalf("healing run recorded findings: %+v", c.Findings())
	}
}

func TestAutoRecoveryResumesCampaign(t *testing.T) {
	// With ISO auto-recovery on the bus, the node rejoins on its own after
	// the corruption window and the campaign keeps fuzzing; the report
	// records the bus-off/recovery cycle.
	s, b, port, c := busOffRig(t, []bus.Option{bus.WithAutoRecovery()},
		WithResilience(DefaultResilience()))
	// Clear the fault source shortly after the node goes bus-off.
	s.At(100*time.Millisecond, func() { b.SetCorruptor(nil) })
	c.Start()
	s.RunUntil(time.Second)
	c.Stop()
	rep := c.BuildReport()
	if rep.Resilience.PortBusOffs == 0 || rep.Resilience.PortRecoveries == 0 {
		t.Fatalf("bus-off/recovery cycle not recorded: %+v", rep.Resilience)
	}
	if port.State() != bus.ErrorActive {
		t.Fatalf("port state = %v after recovery, want error-active", port.State())
	}
	if rep.FramesSent < 500 {
		t.Fatalf("FramesSent = %d; campaign did not resume after recovery", rep.FramesSent)
	}
}

func TestNilResilienceKeepsOldBehaviour(t *testing.T) {
	// RunFor without a policy: no watchdog, no retries, report section nil.
	_, _, c := rig(t, Config{Seed: 1})
	c.RunFor(100 * time.Millisecond)
	if rep := c.BuildReport(); rep.Resilience != nil {
		t.Fatalf("unexpected resilience section: %+v", rep.Resilience)
	}
}
