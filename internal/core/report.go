package core

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"repro/internal/can"
)

// Campaign reporting. The paper's §I essence list ends with "fuzz testing
// is automated for efficiency" — automation needs machine-readable
// results. Report is the JSON artefact a CI pipeline archives per
// campaign: the effective configuration, throughput and coverage
// statistics, the Fig 5 integrity check, and every finding with the
// frames that preceded it.

// Report is a serialisable campaign summary.
type Report struct {
	// Seed is the campaign seed.
	Seed int64 `json:"seed"`
	// Mode is the generation strategy name.
	Mode string `json:"mode"`
	// SpaceSize is the configured frame space (MaxUint64 when saturated).
	SpaceSize uint64 `json:"spaceSize"`
	// IntervalMicros is the transmission period in microseconds.
	IntervalMicros int64 `json:"intervalMicros"`

	// FramesSent and SendErrors are transmission counters.
	FramesSent uint64 `json:"framesSent"`
	SendErrors uint64 `json:"sendErrors"`
	// SendErrorsByCause breaks SendErrors down by rejection cause
	// (queue-full, bus-off, detached, other). Empty when no sends failed.
	SendErrorsByCause map[string]uint64 `json:"sendErrorsByCause,omitempty"`
	// DistinctIDs is the identifier-coverage numerator.
	DistinctIDs int `json:"distinctIds"`
	// OverallByteMean is the Fig 5 integrity statistic (~127.5 when healthy).
	OverallByteMean float64 `json:"overallByteMean"`
	// ByteMeanSpread is max-min of the per-position means.
	ByteMeanSpread float64 `json:"byteMeanSpread"`

	// CorpusSize and NoveltyHits summarise guided-mode feedback: the number
	// of corpus entries the feedback engine retained and the number of sends
	// credited with novel target behaviour. Zero (omitted) outside guided
	// campaigns.
	CorpusSize  int    `json:"corpusSize,omitempty"`
	NoveltyHits uint64 `json:"noveltyHits,omitempty"`
	// Minimized holds the minimizer's reproducer for the first finding, when
	// minimization was run (cmd/canfuzz -minimize).
	Minimized *MinimizedTrigger `json:"minimized,omitempty"`

	// Resilience summarises the graceful-degradation counters (retries,
	// watchdog activity, fuzzer-port bus-off cycles). Nil when the campaign
	// ran without a resilience policy.
	Resilience *ResilienceReport `json:"resilience,omitempty"`
	// FaultsInjected counts injected faults by kind (see internal/faults).
	// Empty when no fault plan was attached.
	FaultsInjected map[string]uint64 `json:"faultsInjected,omitempty"`

	// Findings lists oracle firings in order.
	Findings []ReportFinding `json:"findings"`
}

// ReportFinding is one finding in serialisable form.
type ReportFinding struct {
	// Oracle names the oracle that fired.
	Oracle string `json:"oracle"`
	// Detail describes the detection.
	Detail string `json:"detail"`
	// ElapsedMillis is the campaign runtime at firing, in milliseconds.
	ElapsedMillis int64 `json:"elapsedMillis"`
	// FramesSent is the frame count at firing.
	FramesSent uint64 `json:"framesSent"`
	// RecentFrames holds the preceding fuzz frames in "ID LEN DATA" form.
	RecentFrames []string `json:"recentFrames"`
}

// MinimizedTrigger is a minimal reproducer for a finding: the shortest
// frame sequence (in corpus "ID#HEXDATA" form, transmission order) the
// minimizer could confirm still trips the same oracle.
type MinimizedTrigger struct {
	// Oracle and Detail identify the finding reproduced.
	Oracle string `json:"oracle"`
	Detail string `json:"detail,omitempty"`
	// OriginalFrames is the trigger-window length before minimization.
	OriginalFrames int `json:"originalFrames"`
	// Frames is the minimized sequence as "ID#HEXDATA" strings.
	Frames []string `json:"frames"`
	// Executions counts fresh-world replays the minimizer spent.
	Executions int `json:"executions"`
}

// CorpusStats is implemented by frame sources that evolve a corpus
// (guided.Engine); BuildReport embeds the stats when the campaign's source
// provides them.
type CorpusStats interface {
	CorpusSize() int
	NoveltyHits() uint64
}

// BuildReport snapshots a campaign into a Report.
func (c *Campaign) BuildReport() Report {
	cfg := c.gen.Config()
	r := Report{
		Seed:            cfg.Seed,
		Mode:            cfg.Mode.String(),
		SpaceSize:       cfg.SpaceSize(),
		IntervalMicros:  int64(cfg.Interval / time.Microsecond),
		FramesSent:      c.framesSent,
		SendErrors:      c.sendErrors,
		DistinctIDs:     c.mon.DistinctIDsSent(),
		OverallByteMean: c.mon.SentMeans().OverallMean(),
		ByteMeanSpread:  c.mon.SentMeans().Spread(),
	}
	if m := c.SendErrorsByCause(); len(m) > 0 {
		r.SendErrorsByCause = m
	}
	if cs, ok := c.src.(CorpusStats); ok {
		r.CorpusSize = cs.CorpusSize()
		r.NoveltyHits = cs.NoveltyHits()
	}
	if c.res != nil {
		ps := c.port.Stats()
		r.Resilience = &ResilienceReport{
			Retries:          c.res.retries,
			RetriesExhausted: c.res.retriesExhausted,
			WatchdogFires:    c.res.watchdogFires,
			WatchdogResets:   c.res.watchdogResets,
			PortBusOffs:      ps.BusOffs,
			PortRecoveries:   ps.Recoveries,
		}
	}
	if c.faultCounts != nil {
		if m := c.faultCounts(); len(m) > 0 {
			r.FaultsInjected = make(map[string]uint64, len(m))
			for k, v := range m {
				r.FaultsInjected[k] = v
			}
		}
	}
	for _, f := range c.findings {
		rf := ReportFinding{
			Oracle:        f.Verdict.Oracle,
			Detail:        f.Verdict.Detail,
			ElapsedMillis: int64(f.Elapsed / time.Millisecond),
			FramesSent:    f.FramesSent,
		}
		for _, fr := range f.Recent {
			rf.RecentFrames = append(rf.RecentFrames, fr.String())
		}
		r.Findings = append(r.Findings, rf)
	}
	return r
}

// WriteJSON writes the report as indented JSON.
func (r Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ConfigJSON mirrors Config for file-based campaign configuration
// (cmd/canfuzz -config). It exists so the JSON schema stays stable and
// documented even if Config grows internal fields.
type ConfigJSON struct {
	// Seed seeds the campaign.
	Seed int64 `json:"seed"`
	// Mode is "random", "mutate", "sweep" or "guided" (empty = random).
	Mode string `json:"mode,omitempty"`
	// IDMin and IDMax bound the identifier range.
	IDMin uint16 `json:"idMin,omitempty"`
	IDMax uint16 `json:"idMax,omitempty"`
	// TargetIDs lists hex-free decimal identifiers for targeted fuzzing.
	TargetIDs []uint16 `json:"targetIds,omitempty"`
	// LenMin and LenMax bound the payload length.
	LenMin int `json:"lenMin,omitempty"`
	LenMax int `json:"lenMax,omitempty"`
	// ByteMin and ByteMax bound each payload byte.
	ByteMin int `json:"byteMin,omitempty"`
	ByteMax int `json:"byteMax,omitempty"`
	// IntervalMicros is the transmission period in microseconds.
	IntervalMicros int64 `json:"intervalMicros,omitempty"`
	// MutateBits is the flip count for mutate mode.
	MutateBits int `json:"mutateBits,omitempty"`
	// MutateID includes the identifier in the mutable region.
	MutateID bool `json:"mutateId,omitempty"`
	// SweepLen fixes the sweep payload length.
	SweepLen int `json:"sweepLen,omitempty"`
	// Corpus holds mutate-mode seed frames as "ID#HEXDATA" strings
	// (identifier in hex, like the candump format).
	Corpus []string `json:"corpus,omitempty"`
}

// ToJSON converts a Config to its wire form — the inverse of ToConfig, up
// to defaulting: a zero Mode stays the empty string (ToConfig reads both
// as random), and corpus frames render in the shared "ID#HEXDATA" form.
// The distributed campaign service ships worker configuration through it,
// so a leased trial's generator is built from exactly the bytes the
// coordinator validated.
func (c Config) ToJSON() ConfigJSON {
	cj := ConfigJSON{
		Seed:           c.Seed,
		IDMin:          uint16(c.IDMin),
		IDMax:          uint16(c.IDMax),
		LenMin:         c.LenMin,
		LenMax:         c.LenMax,
		ByteMin:        c.ByteMin,
		ByteMax:        c.ByteMax,
		IntervalMicros: int64(c.Interval / time.Microsecond),
		MutateBits:     c.MutateBits,
		MutateID:       c.MutateID,
		SweepLen:       c.SweepLen,
	}
	if c.Mode != 0 {
		cj.Mode = c.Mode.String()
	}
	for _, id := range c.TargetIDs {
		cj.TargetIDs = append(cj.TargetIDs, uint16(id))
	}
	for _, f := range c.Corpus {
		cj.Corpus = append(cj.Corpus, FormatCorpusFrame(f))
	}
	return cj
}

// ParseConfigJSON reads a ConfigJSON document and converts it to a Config.
func ParseConfigJSON(r io.Reader) (Config, error) {
	var cj ConfigJSON
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&cj); err != nil {
		return Config{}, err
	}
	return cj.ToConfig()
}

// ToConfig converts the JSON form to a Config, parsing corpus frames.
func (cj ConfigJSON) ToConfig() (Config, error) {
	cfg := Config{
		Seed:       cj.Seed,
		IDMin:      can.ID(cj.IDMin),
		IDMax:      can.ID(cj.IDMax),
		LenMin:     cj.LenMin,
		LenMax:     cj.LenMax,
		ByteMin:    cj.ByteMin,
		ByteMax:    cj.ByteMax,
		Interval:   time.Duration(cj.IntervalMicros) * time.Microsecond,
		MutateBits: cj.MutateBits,
		MutateID:   cj.MutateID,
		SweepLen:   cj.SweepLen,
	}
	switch cj.Mode {
	case "", "random":
		cfg.Mode = ModeRandom
	case "mutate":
		cfg.Mode = ModeMutate
	case "sweep":
		cfg.Mode = ModeSweep
	case "guided":
		cfg.Mode = ModeGuided
	default:
		return cfg, &json.UnsupportedValueError{Str: "mode " + cj.Mode}
	}
	for _, id := range cj.TargetIDs {
		cfg.TargetIDs = append(cfg.TargetIDs, can.ID(id))
	}
	for _, s := range cj.Corpus {
		f, err := parseCorpusFrame(s)
		if err != nil {
			return cfg, err
		}
		cfg.Corpus = append(cfg.Corpus, f)
	}
	// Validate eagerly so config errors surface at load time.
	if _, err := NewGenerator(cfg); err != nil {
		return cfg, err
	}
	return cfg, nil
}

// ParseCorpusFrame parses a corpus entry in "215#205F010000012000" form
// (hex identifier, '#', hex payload) — the format ConfigJSON.Corpus and
// guided corpus files share.
func ParseCorpusFrame(s string) (can.Frame, error) { return parseCorpusFrame(s) }

// FormatCorpusFrame renders a frame in the corpus "ID#HEXDATA" form,
// the inverse of ParseCorpusFrame.
func FormatCorpusFrame(f can.Frame) string {
	return fmt.Sprintf("%03X#%X", uint16(f.ID), f.Data[:f.Len])
}

// parseCorpusFrame parses "215#205F010000012000" (hex id '#' hex data).
func parseCorpusFrame(s string) (can.Frame, error) {
	var f can.Frame
	hash := -1
	for i := range s {
		if s[i] == '#' {
			hash = i
			break
		}
	}
	if hash < 1 {
		return f, &json.UnsupportedValueError{Str: "corpus frame " + s}
	}
	var id uint16
	for _, c := range s[:hash] {
		v := hexDigit(byte(c))
		if v < 0 {
			return f, &json.UnsupportedValueError{Str: "corpus id " + s}
		}
		id = id<<4 | uint16(v)
	}
	hexData := s[hash+1:]
	if len(hexData)%2 != 0 || len(hexData)/2 > can.MaxDataLen {
		return f, &json.UnsupportedValueError{Str: "corpus data " + s}
	}
	data := make([]byte, len(hexData)/2)
	for i := range data {
		hi, lo := hexDigit(hexData[2*i]), hexDigit(hexData[2*i+1])
		if hi < 0 || lo < 0 {
			return f, &json.UnsupportedValueError{Str: "corpus data " + s}
		}
		data[i] = byte(hi<<4 | lo)
	}
	return can.New(can.ID(id), data)
}

func hexDigit(c byte) int {
	switch {
	case c >= '0' && c <= '9':
		return int(c - '0')
	case c >= 'a' && c <= 'f':
		return int(c-'a') + 10
	case c >= 'A' && c <= 'F':
		return int(c-'A') + 10
	default:
		return -1
	}
}
