// Package core implements the paper's contribution: a CAN-bus fuzzer with
// the architecture of §V — "a timing thread for regular CAN data
// transmission, a random bytes generator for the fuzzed CAN messages, a
// communications API handling module, and a CAN bus traffic monitor" —
// mapped onto this reproduction as a paced transmitter on the virtual
// clock, a seeded frame generator, a bus port, and a monitor feeding the
// test oracles.
//
// The generator covers the fuzzable elements of Table III (identifier,
// payload length, payload bytes, transmission rate) and the configuration
// breadth of the paper's UI (Fig 3): "the fuzzer can be programmed to
// generate a variation on a single bit in a single message, to every bit
// in every message" — from single-bit mutation of seed frames, through
// targeted random fuzzing around observed identifiers, to exhaustive
// sweeps of the full space.
package core

import (
	"errors"
	"fmt"
	"math"
	"time"

	"repro/internal/can"
)

// Mode selects the generation strategy.
type Mode int

const (
	// ModeRandom draws every frame uniformly from the configured ranges
	// (the paper's primary mode).
	ModeRandom Mode = iota + 1
	// ModeMutate flips MutateBits random bits per frame in frames drawn
	// from the seed corpus ("a variation on a single bit in a single
	// message").
	ModeMutate
	// ModeSweep enumerates the space deterministically: every identifier
	// for every payload value of a fixed length (the combinatorial
	// discussion of §V).
	ModeSweep
	// ModeGuided marks a coverage-guided campaign: generation is driven by
	// an external feedback engine (internal/guided) installed with
	// WithFrameSource, which evolves a corpus from target-response novelty.
	// Without a source attached the mode degrades to ModeRandom — §V's
	// blind fuzzer — so a guided Config stays runnable anywhere.
	ModeGuided
)

// String returns the mode name.
func (m Mode) String() string {
	switch m {
	case ModeRandom:
		return "random"
	case ModeMutate:
		return "mutate"
	case ModeSweep:
		return "sweep"
	case ModeGuided:
		return "guided"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// MinInterval is the fuzzer's fastest transmission rate: "The fuzzer
// currently has a maximum message transmission rate of one message per
// millisecond" (§VI).
const MinInterval = time.Millisecond

// Config is the fuzzer configuration — the programmatic equivalent of the
// paper's UI screen (Fig 3).
type Config struct {
	// Seed makes the campaign reproducible.
	Seed int64
	// Mode selects the generation strategy (default ModeRandom).
	Mode Mode

	// IDMin and IDMax bound the fuzzed identifier range (Table III row
	// "CAN Id": {0..2047}).
	IDMin, IDMax can.ID
	// TargetIDs, when non-empty, restricts identifiers to the given list —
	// the targeted fuzzing of §VII ("fuzzing around known message ids
	// monitored on the CAN bus").
	TargetIDs []can.ID

	// LenMin and LenMax bound the payload length (Table III row "Payload
	// length": {0..8}).
	LenMin, LenMax int
	// ByteMin and ByteMax bound each payload byte value (Table III row
	// "Payload byte").
	ByteMin, ByteMax int

	// Interval is the transmission period (Table III row "Rate"); clamped
	// to MinInterval.
	Interval time.Duration

	// Corpus seeds ModeMutate; ModeSweep uses Corpus[0]'s length when set.
	Corpus []can.Frame
	// MutateBits is the number of bits flipped per mutated frame.
	MutateBits int
	// MutateID includes the 11-bit identifier in the mutable region.
	MutateID bool

	// SweepLen fixes the payload length for ModeSweep.
	SweepLen int
}

// Validation errors.
var (
	ErrIDRange     = errors.New("core: identifier range invalid")
	ErrLenRange    = errors.New("core: payload length range invalid")
	ErrByteRange   = errors.New("core: byte value range invalid")
	ErrEmptyCorpus = errors.New("core: mutate mode requires a seed corpus")
)

// withDefaults fills zero values with the paper's defaults (full Table III
// ranges at the 1 ms maximum rate).
func (c Config) withDefaults() Config {
	if c.Mode == 0 {
		c.Mode = ModeRandom
	}
	if c.IDMax == 0 {
		c.IDMax = can.MaxID
	}
	if c.LenMax == 0 {
		c.LenMax = can.MaxDataLen
	}
	if c.ByteMax == 0 {
		c.ByteMax = 255
	}
	if c.Interval < MinInterval {
		c.Interval = MinInterval
	}
	if c.MutateBits == 0 {
		c.MutateBits = 1
	}
	return c
}

// validate checks range consistency after defaulting.
func (c Config) validate() error {
	if c.IDMin > c.IDMax || c.IDMax > can.MaxID {
		return fmt.Errorf("%w: [%d,%d]", ErrIDRange, c.IDMin, c.IDMax)
	}
	for _, id := range c.TargetIDs {
		if !id.Valid() {
			return fmt.Errorf("%w: target id %#x", ErrIDRange, uint16(id))
		}
	}
	if c.LenMin < 0 || c.LenMin > c.LenMax || c.LenMax > can.MaxDataLen {
		return fmt.Errorf("%w: [%d,%d]", ErrLenRange, c.LenMin, c.LenMax)
	}
	if c.ByteMin < 0 || c.ByteMin > c.ByteMax || c.ByteMax > 255 {
		return fmt.Errorf("%w: [%d,%d]", ErrByteRange, c.ByteMin, c.ByteMax)
	}
	if c.Mode == ModeMutate && len(c.Corpus) == 0 {
		return ErrEmptyCorpus
	}
	if c.Mode == ModeSweep && (c.SweepLen < 0 || c.SweepLen > can.MaxDataLen) {
		return fmt.Errorf("%w: sweep length %d", ErrLenRange, c.SweepLen)
	}
	return nil
}

// SpaceSize returns the number of distinct frames the configuration can
// emit (for ModeRandom and ModeSweep); used for coverage reporting and the
// Table III combinatorics. The size saturates at math.MaxUint64 — the full
// 8-byte space (2048 * 256^8) does not fit in 64 bits, which is rather the
// paper's point about combinatorial explosion.
func (c Config) SpaceSize() uint64 {
	c = c.withDefaults()
	var ids uint64
	if len(c.TargetIDs) > 0 {
		ids = uint64(len(c.TargetIDs))
	} else {
		ids = uint64(c.IDMax-c.IDMin) + 1
	}
	byteVals := uint64(c.ByteMax-c.ByteMin) + 1
	if c.Mode == ModeSweep {
		n := ids
		for i := 0; i < c.SweepLen; i++ {
			n = satMul(n, byteVals)
		}
		return n
	}
	var total uint64
	for l := c.LenMin; l <= c.LenMax; l++ {
		n := ids
		for i := 0; i < l; i++ {
			n = satMul(n, byteVals)
		}
		total = satAdd(total, n)
	}
	return total
}

// satMul multiplies with saturation at math.MaxUint64.
func satMul(a, b uint64) uint64 {
	if a == 0 || b == 0 {
		return 0
	}
	if a > math.MaxUint64/b {
		return math.MaxUint64
	}
	return a * b
}

// satAdd adds with saturation at math.MaxUint64.
func satAdd(a, b uint64) uint64 {
	if a > math.MaxUint64-b {
		return math.MaxUint64
	}
	return a + b
}
