package core

import (
	"testing"
	"time"

	"repro/internal/bus"
	"repro/internal/can"
	"repro/internal/clock"
	"repro/internal/oracle"
)

func rig(t *testing.T, cfg Config, opts ...Option) (*clock.Scheduler, *bus.Bus, *Campaign) {
	t.Helper()
	s := clock.New()
	b := bus.New(s)
	port := b.Connect("fuzzer")
	c, err := NewCampaign(s, port, cfg, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return s, b, c
}

func TestCampaignPacesAtInterval(t *testing.T) {
	s, b, c := rig(t, Config{Seed: 1})
	b.Connect("sink").SetReceiver(func(bus.Message) {})
	c.Start()
	s.RunUntil(time.Second)
	c.Stop()
	// 1 ms interval => ~1000 frames/s.
	if got := c.FramesSent(); got < 990 || got > 1010 {
		t.Fatalf("FramesSent = %d, want ~1000", got)
	}
}

func TestCampaignRunForStops(t *testing.T) {
	s, _, c := rig(t, Config{Seed: 1})
	c.RunFor(100 * time.Millisecond)
	sent := c.FramesSent()
	if c.Running() {
		t.Fatal("still running after RunFor")
	}
	s.RunUntil(s.Now() + time.Second)
	if c.FramesSent() != sent {
		t.Fatal("frames sent after Stop")
	}
}

func TestCampaignMaxFrames(t *testing.T) {
	_, _, c := rig(t, Config{Seed: 1}, WithMaxFrames(50))
	c.RunFor(time.Second)
	if got := c.FramesSent(); got != 50 {
		t.Fatalf("FramesSent = %d, want 50", got)
	}
}

func TestAckOracleFindsPlantedResponder(t *testing.T) {
	// A bench node acknowledges a magic frame; the campaign must find it.
	s, b, c := rig(t, Config{Seed: 3, TargetIDs: []can.ID{0x123}, LenMin: 1, LenMax: 1})
	responder := b.Connect("sut")
	responder.SetReceiver(func(m bus.Message) {
		if m.Frame.ID == 0x123 && m.Frame.Len >= 1 && m.Frame.Data[0] == 0x42 {
			responder.Send(can.MustNew(0x321, []byte{0xAC}))
		}
	})
	c.AddOracle(&oracle.Ack{Match: func(f can.Frame) bool {
		return f.ID == 0x321 && f.Len >= 1 && f.Data[0] == 0xAC
	}})
	finding, ok := c.RunUntilFinding(10 * time.Minute)
	if !ok {
		t.Fatal("oracle never fired")
	}
	if finding.Verdict.Oracle != "ack" {
		t.Fatalf("oracle = %q", finding.Verdict.Oracle)
	}
	if finding.FramesSent == 0 || finding.Elapsed == 0 {
		t.Fatalf("finding context missing: %+v", finding)
	}
	if len(finding.Recent) == 0 {
		t.Fatal("finding lacks recent-frames window")
	}
	// The triggering frame must be in the recent window.
	found := false
	for _, f := range finding.Recent {
		if f.ID == 0x123 && f.Data[0] == 0x42 {
			found = true
		}
	}
	if !found {
		t.Fatal("triggering frame not captured in recent window")
	}
	_ = s
}

func TestStopOnFindingHaltsTransmission(t *testing.T) {
	s, b, c := rig(t, Config{Seed: 3, TargetIDs: []can.ID{0x100}, LenMin: 0, LenMax: 0},
		WithStopOnFinding())
	echo := b.Connect("echo")
	echo.SetReceiver(func(m bus.Message) {
		if m.Frame.ID == 0x100 {
			echo.Send(can.MustNew(0x200, nil))
		}
	})
	c.AddOracle(&oracle.Ack{Match: func(f can.Frame) bool { return f.ID == 0x200 }})
	c.Start()
	s.RunUntil(time.Second)
	if c.Running() {
		t.Fatal("campaign still running after finding")
	}
	if len(c.Findings()) != 1 {
		t.Fatalf("findings = %d, want 1", len(c.Findings()))
	}
	if c.FramesSent() > 5 {
		t.Fatalf("sent %d frames after immediate finding", c.FramesSent())
	}
}

func TestResetHookInvokedOnContinuingCampaign(t *testing.T) {
	resets := 0
	s, b, c := rig(t, Config{Seed: 5, TargetIDs: []can.ID{0x100}, LenMin: 0, LenMax: 0},
		WithResetHook(func() { resets++ }))
	echo := b.Connect("echo")
	echo.SetReceiver(func(m bus.Message) {
		if m.Frame.ID == 0x100 {
			echo.Send(can.MustNew(0x200, nil))
		}
	})
	c.AddOracle(&oracle.Ack{Match: func(f can.Frame) bool { return f.ID == 0x200 }})
	c.Start()
	s.RunUntil(2 * time.Second)
	c.Stop()
	if resets == 0 {
		t.Fatal("reset hook never invoked")
	}
	if len(c.Findings()) != resets {
		t.Fatalf("findings %d != resets %d", len(c.Findings()), resets)
	}
}

func TestOnFindingCallback(t *testing.T) {
	var got []Finding
	s, b, c := rig(t, Config{Seed: 6, TargetIDs: []can.ID{0x100}, LenMin: 0, LenMax: 0},
		WithOnFinding(func(f Finding) { got = append(got, f) }), WithStopOnFinding())
	echo := b.Connect("echo")
	echo.SetReceiver(func(m bus.Message) {
		if m.Frame.ID == 0x100 {
			echo.Send(can.MustNew(0x200, nil))
		}
	})
	c.AddOracle(&oracle.Ack{Match: func(f can.Frame) bool { return f.ID == 0x200 }})
	c.Start()
	s.RunUntil(time.Second)
	if len(got) != 1 {
		t.Fatalf("callback fired %d times", len(got))
	}
}

func TestMonitorIntegrityCheck(t *testing.T) {
	// Fig 5: the fuzzer's own output must have a ~127 mean per position.
	_, _, c := rig(t, Config{Seed: 9})
	c.RunFor(70 * time.Second) // ~66k+ frames at 1 ms
	means := c.Monitor().SentMeans()
	if means.Frames() < 66000 {
		t.Fatalf("only %d frames sent", means.Frames())
	}
	overall := means.OverallMean()
	if overall < 125 || overall > 130 {
		t.Fatalf("overall mean = %v, want ~127.5", overall)
	}
	if means.Spread() > 4 {
		t.Fatalf("spread = %v, want flat", means.Spread())
	}
}

func TestMonitorObservesForeignTraffic(t *testing.T) {
	s, b, c := rig(t, Config{Seed: 1})
	other := b.Connect("other")
	c.Start()
	for i := 0; i < 10; i++ {
		other.Send(can.MustNew(0x400, []byte{1, 2}))
	}
	s.RunUntil(time.Second)
	c.Stop()
	if c.Monitor().ObservedIDs() != 1 {
		t.Fatalf("observed ids = %d", c.Monitor().ObservedIDs())
	}
	if c.Monitor().ObservedMeans().Frames() != 10 {
		t.Fatalf("observed frames = %d", c.Monitor().ObservedMeans().Frames())
	}
}

func TestSendErrorsCounted(t *testing.T) {
	s := clock.New()
	b := bus.New(s, bus.WithTxQueueCap(1))
	port := b.Connect("fuzzer")
	// No receiver needed; saturate the queue by sending faster than the
	// wire drains: interval 1 ms, frame time ~0.25 ms — actually drains.
	// Instead, block the bus with a detached queue: use corruptor to slow
	// nothing; simplest: detach the port after start to force ErrDetached.
	c, err := NewCampaign(s, port, Config{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	s.RunUntil(10 * time.Millisecond)
	port.Detach()
	s.RunUntil(20 * time.Millisecond)
	c.Stop()
	if c.SendErrors() == 0 {
		t.Fatal("send errors not counted")
	}
}

func TestMonitorRecentWindow(t *testing.T) {
	m := NewMonitor(4)
	for i := 0; i < 6; i++ {
		m.NoteSent(can.MustNew(can.ID(i), nil))
	}
	recent := m.Recent()
	if len(recent) != 4 {
		t.Fatalf("recent = %d frames", len(recent))
	}
	// Oldest first: ids 2,3,4,5.
	for i, f := range recent {
		if f.ID != can.ID(i+2) {
			t.Fatalf("recent[%d] = %v", i, f.ID)
		}
	}
}

func TestMonitorRecentPartial(t *testing.T) {
	m := NewMonitor(8)
	m.NoteSent(can.MustNew(1, nil))
	m.NoteSent(can.MustNew(2, nil))
	recent := m.Recent()
	if len(recent) != 2 || recent[0].ID != 1 || recent[1].ID != 2 {
		t.Fatalf("recent = %v", recent)
	}
}

func TestHeartbeatOracleDetectsSilencedECU(t *testing.T) {
	// A periodic transmitter goes quiet mid-campaign; the heartbeat oracle
	// must fire (the crashed-component detector).
	s := clock.New()
	b := bus.New(s)
	beaconPort := b.Connect("beacon")
	beat := s.Every(50*time.Millisecond, func() {
		beaconPort.Send(can.MustNew(0x43A, []byte{1}))
	})
	c, err := NewCampaign(s, b.Connect("fuzzer"), Config{Seed: 1}, WithStopOnFinding())
	if err != nil {
		t.Fatal(err)
	}
	c.AddOracle(&oracle.Heartbeat{ID: 0x43A, Window: 200 * time.Millisecond})
	c.Start()
	s.RunUntil(time.Second)
	if len(c.Findings()) != 0 {
		t.Fatal("heartbeat fired while beacon alive")
	}
	beat.Stop() // the "crash"
	s.RunUntil(2 * time.Second)
	if len(c.Findings()) != 1 {
		t.Fatalf("findings = %d, want 1 after beacon died", len(c.Findings()))
	}
	if c.Findings()[0].Verdict.Oracle != "heartbeat" {
		t.Fatalf("oracle = %q", c.Findings()[0].Verdict.Oracle)
	}
}

func TestProbeOracleOnce(t *testing.T) {
	s := clock.New()
	b := bus.New(s)
	crashed := false
	c, err := NewCampaign(s, b.Connect("fuzzer"), Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	c.AddOracle(&oracle.Probe{
		Interval: 10 * time.Millisecond,
		Once:     true,
		Check: func() string {
			if crashed {
				return "component crashed"
			}
			return ""
		},
	})
	c.Start()
	s.RunUntil(100 * time.Millisecond)
	crashed = true
	s.RunUntil(500 * time.Millisecond)
	c.Stop()
	if len(c.Findings()) != 1 {
		t.Fatalf("findings = %d, want exactly 1 (Once)", len(c.Findings()))
	}
}

func TestMonitorDistinctIDCoverage(t *testing.T) {
	_, _, c := rig(t, Config{Seed: 8})
	c.RunFor(30 * time.Second) // 30k frames over 2048 ids
	covered := c.Monitor().DistinctIDsSent()
	if covered < 2040 {
		t.Fatalf("distinct ids sent = %d, want near-complete 2048 coverage", covered)
	}
}
