package core

import (
	"fmt"

	"repro/internal/can"
)

// Generator produces fuzz frames according to a Config. It is
// deterministic given the seed.
type Generator struct {
	cfg Config
	rng *restartableSource

	// Sweep state: an odometer over (payload bytes, id).
	sweepID      can.ID
	sweepPayload []int
	sweepWrapped bool
}

// NewGenerator validates the configuration and builds a generator.
func NewGenerator(cfg Config) (*Generator, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	// Validation-time corpus filtering: capture logs legitimately carry
	// remote frames and hand-written corpora can carry malformed ones, but
	// neither is a usable mutation parent (flipping payload bits in an RTR
	// frame yields an invalid frame the port rejects). Filter here, and fail
	// loudly if nothing survives — previously an all-filtered corpus reached
	// nextMutated and panicked in rand.Intn(0).
	if cfg.Mode == ModeMutate {
		kept := make([]can.Frame, 0, len(cfg.Corpus))
		for _, f := range cfg.Corpus {
			if !f.Remote && f.Validate() == nil {
				kept = append(kept, f)
			}
		}
		if len(kept) == 0 {
			return nil, fmt.Errorf("%w: no usable frames left after validation-time filtering (%d dropped)",
				ErrEmptyCorpus, len(cfg.Corpus))
		}
		cfg.Corpus = kept
	}
	g := &Generator{
		cfg: cfg,
		rng: newRestartableSource(cfg.Seed),
	}
	if cfg.Mode == ModeSweep {
		g.sweepID = cfg.IDMin
		g.sweepPayload = make([]int, cfg.SweepLen)
		for i := range g.sweepPayload {
			g.sweepPayload[i] = cfg.ByteMin
		}
	}
	return g, nil
}

// Config returns the defaulted configuration in effect.
func (g *Generator) Config() Config { return g.cfg }

// Reset restores the generator to the state NewGenerator produced, under a
// (possibly different) seed: the RNG stream restarts from seed and the
// sweep odometer returns to its origin. The already-validated
// configuration is retained, so Reset skips validation and corpus
// filtering and allocates nothing — the restartable source makes a
// same-seed reseed a state copy rather than a full re-derivation, and
// either way the stream matches a freshly built generator's.
func (g *Generator) Reset(seed int64) {
	g.cfg.Seed = seed
	g.rng.Seed(seed)
	g.sweepWrapped = false
	if g.cfg.Mode == ModeSweep {
		g.sweepID = g.cfg.IDMin
		for i := range g.sweepPayload {
			g.sweepPayload[i] = g.cfg.ByteMin
		}
	}
}

// Next returns the next fuzz frame.
func (g *Generator) Next() can.Frame {
	switch g.cfg.Mode {
	case ModeMutate:
		return g.nextMutated()
	case ModeSweep:
		return g.nextSweep()
	default:
		return g.nextRandom()
	}
}

// nextRandom draws a frame uniformly from the configured ranges — the
// paper's random bytes generator.
func (g *Generator) nextRandom() can.Frame {
	var f can.Frame
	f.ID = g.randomID()
	length := g.cfg.LenMin + g.rng.Intn(g.cfg.LenMax-g.cfg.LenMin+1)
	f.Len = uint8(length)
	span := g.cfg.ByteMax - g.cfg.ByteMin + 1
	for i := 0; i < length; i++ {
		f.Data[i] = byte(g.cfg.ByteMin + g.rng.Intn(span))
	}
	return f
}

func (g *Generator) randomID() can.ID {
	if n := len(g.cfg.TargetIDs); n > 0 {
		return g.cfg.TargetIDs[g.rng.Intn(n)]
	}
	return g.cfg.IDMin + can.ID(g.rng.Intn(int(g.cfg.IDMax-g.cfg.IDMin)+1))
}

// nextMutated picks a corpus frame and flips MutateBits random bits in the
// payload (and identifier when MutateID is set).
func (g *Generator) nextMutated() can.Frame {
	if len(g.cfg.Corpus) == 0 {
		// Unreachable after NewGenerator's filtering, but a stray empty
		// corpus must degrade to random — never rand.Intn(0).
		return g.nextRandom()
	}
	f := g.cfg.Corpus[g.rng.Intn(len(g.cfg.Corpus))]
	payloadBits := int(f.Len) * 8
	idBits := 0
	if g.cfg.MutateID {
		idBits = 11
	}
	total := payloadBits + idBits
	if total == 0 {
		return f
	}
	for i := 0; i < g.cfg.MutateBits; i++ {
		bit := g.rng.Intn(total)
		if bit < payloadBits {
			f.Data[bit/8] ^= 1 << (bit % 8)
			continue
		}
		idBit := bit - payloadBits
		f.ID ^= 1 << idBit
		f.ID &= can.MaxID
	}
	return f
}

// nextSweep enumerates the space: the identifier advances fastest, then
// the payload odometer. After the last combination the sweep wraps and
// Wrapped reports true.
func (g *Generator) nextSweep() can.Frame {
	var f can.Frame
	f.ID = g.sweepID
	f.Len = uint8(g.cfg.SweepLen)
	for i, v := range g.sweepPayload {
		f.Data[i] = byte(v)
	}
	g.advanceSweep()
	return f
}

func (g *Generator) advanceSweep() {
	idSpan := g.cfg.IDMax - g.cfg.IDMin
	if g.sweepID < g.cfg.IDMin+idSpan {
		g.sweepID++
		return
	}
	g.sweepID = g.cfg.IDMin
	for i := 0; i < len(g.sweepPayload); i++ {
		if g.sweepPayload[i] < g.cfg.ByteMax {
			g.sweepPayload[i]++
			return
		}
		g.sweepPayload[i] = g.cfg.ByteMin
	}
	g.sweepWrapped = true
}

// Wrapped reports whether a sweep has covered its whole space at least
// once.
func (g *Generator) Wrapped() bool { return g.sweepWrapped }
