package core

import (
	"errors"
	"math"
	"testing"
	"time"

	"repro/internal/can"
)

func TestConfigDefaults(t *testing.T) {
	g, err := NewGenerator(Config{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := g.Config()
	if cfg.Mode != ModeRandom || cfg.IDMax != can.MaxID || cfg.LenMax != 8 ||
		cfg.ByteMax != 255 || cfg.Interval != time.Millisecond {
		t.Fatalf("defaults = %+v", cfg)
	}
}

func TestConfigValidation(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		want error
	}{
		{"id min above max", Config{IDMin: 0x700, IDMax: 0x100}, ErrIDRange},
		{"bad target id", Config{TargetIDs: []can.ID{0x900}}, ErrIDRange},
		{"len min above max", Config{LenMin: 5, LenMax: 3}, ErrLenRange},
		{"byte min above max", Config{ByteMin: 200, ByteMax: 100}, ErrByteRange},
		{"byte max too big", Config{ByteMax: 300}, ErrByteRange},
		{"mutate without corpus", Config{Mode: ModeMutate}, ErrEmptyCorpus},
		{"sweep bad length", Config{Mode: ModeSweep, SweepLen: 9}, ErrLenRange},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := NewGenerator(c.cfg); !errors.Is(err, c.want) {
				t.Fatalf("err = %v, want %v", err, c.want)
			}
		})
	}
}

func TestRandomFramesRespectRanges(t *testing.T) {
	g, err := NewGenerator(Config{
		Seed: 7, IDMin: 0x100, IDMax: 0x1FF,
		LenMin: 2, LenMax: 4, ByteMin: 0x40, ByteMax: 0x4F,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5000; i++ {
		f := g.Next()
		if f.ID < 0x100 || f.ID > 0x1FF {
			t.Fatalf("id %v out of range", f.ID)
		}
		if f.Len < 2 || f.Len > 4 {
			t.Fatalf("len %d out of range", f.Len)
		}
		for _, b := range f.Data[:f.Len] {
			if b < 0x40 || b > 0x4F {
				t.Fatalf("byte %#x out of range", b)
			}
		}
		if err := f.Validate(); err != nil {
			t.Fatalf("invalid frame: %v", err)
		}
	}
}

func TestRandomDeterministicPerSeed(t *testing.T) {
	mk := func(seed int64) []string {
		g, _ := NewGenerator(Config{Seed: seed})
		out := make([]string, 100)
		for i := range out {
			out[i] = g.Next().String()
		}
		return out
	}
	a, b := mk(42), mk(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different streams")
		}
	}
	c := mk(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestRandomCoversFullRanges(t *testing.T) {
	g, _ := NewGenerator(Config{Seed: 1})
	ids := map[can.ID]bool{}
	lens := map[uint8]bool{}
	for i := 0; i < 200000; i++ {
		f := g.Next()
		ids[f.ID] = true
		lens[f.Len] = true
	}
	if len(lens) != 9 {
		t.Fatalf("lengths covered = %d, want 9", len(lens))
	}
	if len(ids) < 2000 {
		t.Fatalf("ids covered = %d, want ~2048", len(ids))
	}
}

func TestTargetIDsMode(t *testing.T) {
	targets := []can.ID{0x215, 0x43A, 0x110}
	g, err := NewGenerator(Config{Seed: 3, TargetIDs: targets})
	if err != nil {
		t.Fatal(err)
	}
	allowed := map[can.ID]bool{0x215: true, 0x43A: true, 0x110: true}
	seen := map[can.ID]bool{}
	for i := 0; i < 1000; i++ {
		f := g.Next()
		if !allowed[f.ID] {
			t.Fatalf("id %v not in target list", f.ID)
		}
		seen[f.ID] = true
	}
	if len(seen) != 3 {
		t.Fatalf("only %d of 3 targets used", len(seen))
	}
}

func TestMutateFlipsExactBits(t *testing.T) {
	base := can.MustNew(0x215, []byte{0x10, 0x5F, 0x01, 0x00, 0x00, 0x01, 0x20})
	g, err := NewGenerator(Config{Seed: 5, Mode: ModeMutate, Corpus: []can.Frame{base}, MutateBits: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		f := g.Next()
		if f.ID != base.ID {
			t.Fatal("id mutated despite MutateID=false")
		}
		if f.Len != base.Len {
			t.Fatal("length mutated")
		}
		diff := 0
		for j := 0; j < int(f.Len); j++ {
			b := f.Data[j] ^ base.Data[j]
			for b != 0 {
				diff += int(b & 1)
				b >>= 1
			}
		}
		if diff != 1 {
			t.Fatalf("%d bits differ, want exactly 1", diff)
		}
	}
}

func TestMutateWithIDRegion(t *testing.T) {
	base := can.MustNew(0x215, []byte{0x10})
	g, _ := NewGenerator(Config{Seed: 5, Mode: ModeMutate, Corpus: []can.Frame{base}, MutateBits: 1, MutateID: true})
	idChanged := false
	for i := 0; i < 2000; i++ {
		f := g.Next()
		if err := f.Validate(); err != nil {
			t.Fatalf("mutated frame invalid: %v", err)
		}
		if f.ID != base.ID {
			idChanged = true
		}
	}
	if !idChanged {
		t.Fatal("identifier never mutated despite MutateID=true")
	}
}

func TestMutateEmptyPayloadNoID(t *testing.T) {
	base := can.MustNew(0x100, nil)
	g, _ := NewGenerator(Config{Seed: 1, Mode: ModeMutate, Corpus: []can.Frame{base}})
	f := g.Next()
	if !f.Equal(base) {
		t.Fatal("nothing to mutate but frame changed")
	}
}

func TestSweepEnumeratesWholeSpace(t *testing.T) {
	g, err := NewGenerator(Config{
		Mode: ModeSweep, IDMin: 0, IDMax: 3, SweepLen: 1, ByteMin: 0, ByteMax: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	want := 4 * 4 // 4 ids x 4 byte values
	for i := 0; i < want; i++ {
		if g.Wrapped() {
			t.Fatalf("wrapped early after %d frames", i)
		}
		seen[g.Next().String()] = true
	}
	if len(seen) != want {
		t.Fatalf("enumerated %d distinct frames, want %d", len(seen), want)
	}
	g.Next()
	if !g.Wrapped() {
		t.Fatal("sweep did not report wrap")
	}
}

func TestSweepZeroLength(t *testing.T) {
	g, err := NewGenerator(Config{Mode: ModeSweep, IDMin: 0, IDMax: 1, SweepLen: 0})
	if err != nil {
		t.Fatal(err)
	}
	a, b := g.Next(), g.Next()
	if a.ID != 0 || b.ID != 1 || a.Len != 0 {
		t.Fatalf("sweep frames = %v, %v", a, b)
	}
	g.Next()
	if !g.Wrapped() {
		t.Fatal("0-length sweep did not wrap after covering ids")
	}
}

func TestSpaceSizeMatchesPaperExample(t *testing.T) {
	// §V: 11-bit id + 1 payload byte = 2^19.
	cfg := Config{Mode: ModeSweep, SweepLen: 1}
	if got := cfg.SpaceSize(); got != 1<<19 {
		t.Fatalf("SpaceSize = %d, want 2^19", got)
	}
}

func TestSpaceSizeRandomSumsLengths(t *testing.T) {
	cfg := Config{LenMin: 0, LenMax: 1}
	// 2048 * (1 + 256)
	if got := cfg.SpaceSize(); got != 2048*257 {
		t.Fatalf("SpaceSize = %d", got)
	}
}

func TestSpaceSizeTargeted(t *testing.T) {
	cfg := Config{TargetIDs: []can.ID{1, 2}, LenMin: 1, LenMax: 1}
	if got := cfg.SpaceSize(); got != 2*256 {
		t.Fatalf("SpaceSize = %d", got)
	}
}

func TestModeString(t *testing.T) {
	if ModeRandom.String() != "random" || ModeMutate.String() != "mutate" ||
		ModeSweep.String() != "sweep" || Mode(0).String() == "" {
		t.Fatal("Mode.String broken")
	}
}

func BenchmarkGeneratorRandom(b *testing.B) {
	g, _ := NewGenerator(Config{Seed: 1})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Next()
	}
}

func TestSpaceSizeSaturatesInsteadOfOverflowing(t *testing.T) {
	// The full 8-byte space (2048 * 256^8) exceeds uint64: it must clamp,
	// not wrap.
	full := Config{}.SpaceSize()
	if full != math.MaxUint64 {
		t.Fatalf("full space = %d, want saturation at MaxUint64", full)
	}
	// A targeted space must always be <= the blind space over the same
	// length range.
	targeted := Config{TargetIDs: []can.ID{1, 2, 3}}.SpaceSize()
	if targeted > full {
		t.Fatalf("targeted %d > blind %d", targeted, full)
	}
}

func TestMutateCorpusFilteredEmptyReturnsErr(t *testing.T) {
	// Remote frames and malformed frames are dropped at construction; a
	// corpus with no usable parent must fail with ErrEmptyCorpus instead of
	// reaching rand.Intn(0) in nextMutated (regression: that panicked).
	remote := can.Frame{ID: 0x123, Len: 2, Remote: true}
	invalid := can.Frame{ID: 0x900} // > MaxID
	_, err := NewGenerator(Config{Mode: ModeMutate, Corpus: []can.Frame{remote, invalid}})
	if !errors.Is(err, ErrEmptyCorpus) {
		t.Fatalf("err = %v, want ErrEmptyCorpus", err)
	}
}

func TestMutateCorpusFilterKeepsValidFrames(t *testing.T) {
	remote := can.Frame{ID: 0x123, Len: 2, Remote: true}
	good := can.Frame{ID: 0x215, Len: 1, Data: [8]byte{0x20}}
	g, err := NewGenerator(Config{Mode: ModeMutate, Corpus: []can.Frame{remote, good}, MutateBits: 1})
	if err != nil {
		t.Fatalf("NewGenerator: %v", err)
	}
	if n := len(g.Config().Corpus); n != 1 {
		t.Fatalf("filtered corpus size = %d, want 1", n)
	}
	for i := 0; i < 100; i++ {
		f := g.Next()
		if f.Remote {
			t.Fatal("mutated a remote frame")
		}
		if f.ID != good.ID && !g.Config().MutateID {
			t.Fatalf("parent leaked wrong id %v", f.ID)
		}
	}
}

func TestModeGuidedFallsBackToRandom(t *testing.T) {
	// Without a FrameSource attached, guided mode degrades to the blind
	// random generator so the Config stays runnable anywhere.
	guided, _ := NewGenerator(Config{Seed: 7, Mode: ModeGuided})
	random, _ := NewGenerator(Config{Seed: 7, Mode: ModeRandom})
	for i := 0; i < 50; i++ {
		if g, r := guided.Next(), random.Next(); g != r {
			t.Fatalf("frame %d: guided %v != random %v", i, g, r)
		}
	}
	if ModeGuided.String() != "guided" {
		t.Fatal("ModeGuided.String() != guided")
	}
}
