package core

import (
	"testing"
	"time"

	"repro/internal/bus"
	"repro/internal/can"
	"repro/internal/clock"
)

func TestBitFuzzerMostInjectionsAreErrorFrames(t *testing.T) {
	s := clock.New()
	b := bus.New(s)
	port := b.Connect("bitfuzzer")
	b.Connect("victim").SetReceiver(func(bus.Message) {})

	bf := NewBitFuzzer(s, port, BitFuzzConfig{Seed: 1})
	bf.Start()
	// Fault confinement sends the attacker bus-off after 32 error frames;
	// model malicious hardware that resets its own controller.
	reset := s.Every(20*time.Millisecond, port.ResetErrors)
	s.RunUntil(2 * time.Second)
	bf.Stop()
	reset.Stop()

	st := bf.Stats()
	if st.Injected < 100 {
		t.Fatalf("injected = %d", st.Injected)
	}
	// A single flipped wire bit almost always breaks CRC or stuffing.
	if st.ErrorFrames < st.Delivered*10 {
		t.Fatalf("error frames %d not ≫ delivered %d", st.ErrorFrames, st.Delivered)
	}
	// The final injection may still be in flight when the run stops.
	if done := st.ErrorFrames + st.Delivered; done < st.Injected-1 || done > st.Injected {
		t.Fatalf("outcome accounting broken: %+v", st)
	}
}

func TestBitFuzzerDrivesVictimErrorPassive(t *testing.T) {
	// The data-link-layer attack: repeated malformed sequences raise every
	// receiver's REC — availability disruption without a single valid frame.
	s := clock.New()
	b := bus.New(s)
	port := b.Connect("bitfuzzer")
	victim := b.Connect("victim")
	victim.SetReceiver(func(bus.Message) {})

	bf := NewBitFuzzer(s, port, BitFuzzConfig{Seed: 2})
	bf.Start()
	// The attacker node itself goes bus-off after 32 error frames; reset it
	// periodically, as malicious hardware that ignores fault confinement.
	reset := s.Every(25*time.Millisecond, port.ResetErrors)
	s.RunUntil(time.Second)
	bf.Stop()
	reset.Stop()

	if victim.State() == bus.ErrorActive {
		_, rec := victim.ErrorCounters()
		t.Fatalf("victim still error-active (rec=%d)", rec)
	}
}

func TestBitFuzzerAttackerHitsBusOffWithoutResets(t *testing.T) {
	s := clock.New()
	b := bus.New(s)
	port := b.Connect("bitfuzzer")
	b.Connect("victim").SetReceiver(func(bus.Message) {})
	bf := NewBitFuzzer(s, port, BitFuzzConfig{Seed: 3, FlipBits: 3})
	bf.Start()
	s.RunUntil(time.Second)
	bf.Stop()
	if port.State() != bus.BusOff {
		t.Fatalf("attacker state = %v, want bus-off (fault confinement works)", port.State())
	}
	if bf.Stats().Rejected == 0 {
		t.Fatal("injections after bus-off should be rejected")
	}
}

func TestBitFuzzerDeterministic(t *testing.T) {
	run := func() BitFuzzStats {
		s := clock.New()
		b := bus.New(s)
		port := b.Connect("bitfuzzer")
		b.Connect("victim").SetReceiver(func(bus.Message) {})
		bf := NewBitFuzzer(s, port, BitFuzzConfig{Seed: 7})
		bf.Start()
		s.RunUntil(200 * time.Millisecond)
		bf.Stop()
		return bf.Stats()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("non-deterministic: %+v vs %+v", a, b)
	}
}

func TestBitFuzzerCustomCorpus(t *testing.T) {
	s := clock.New()
	b := bus.New(s)
	port := b.Connect("bitfuzzer")
	var seen []can.ID
	b.Connect("victim").SetReceiver(func(m bus.Message) { seen = append(seen, m.Frame.ID) })
	base := can.MustNew(0x215, []byte{0x20, 0x5F, 1, 0, 0, 1, 0x20})
	bf := NewBitFuzzer(s, port, BitFuzzConfig{Seed: 5, Corpus: []can.Frame{base}})
	// Inject many; the few that survive decoding must be near the base
	// frame (single wire-bit flips of it).
	for i := 0; i < 2000; i++ {
		bf.InjectOne()
		s.RunFor(time.Millisecond)
	}
	for _, id := range seen {
		// A one-bit flip in the stuffed sequence either keeps the id or
		// changes it slightly; it must still be a valid 11-bit id.
		if !id.Valid() {
			t.Fatalf("invalid delivered id %v", id)
		}
	}
}

func TestBitFuzzerStartStopIdempotent(t *testing.T) {
	s := clock.New()
	b := bus.New(s)
	bf := NewBitFuzzer(s, b.Connect("f"), BitFuzzConfig{Seed: 1})
	bf.Start()
	bf.Start() // no double timer
	s.RunUntil(10 * time.Millisecond)
	bf.Stop()
	bf.Stop()
	injected := bf.Stats().Injected
	s.RunUntil(time.Second)
	if bf.Stats().Injected != injected {
		t.Fatal("injection continued after Stop")
	}
	if injected != 10 {
		t.Fatalf("injected = %d in 10ms, want 10 (double Start leaked a timer?)", injected)
	}
}
