package core

import (
	"math/rand"
	"testing"
)

// TestRestartableSourceMatchesMathRand pins the restartable source
// word-identical to math/rand across seeds, replay/continuation boundary
// and derived rand.Rand methods.
func TestRestartableSourceMatchesMathRand(t *testing.T) {
	for _, seed := range []int64{0, 1, 7, -3, 1 << 40, -(1 << 40)} {
		ref := rand.NewSource(seed).(rand.Source64)
		got := newRestartableSource(seed)
		// Cover well past the 607-draw replay phase.
		for i := 0; i < 5*rngLen; i++ {
			if w, r := got.Uint64(), ref.Uint64(); w != r {
				t.Fatalf("seed %d draw %d: Uint64 = %#x, math/rand %#x", seed, i, w, r)
			}
		}
	}
}

// TestRestartableSourceReseed checks every reseed — same seed (cached) or
// different (re-derived) — restarts the stream exactly like a fresh
// math/rand source, including mid-replay and mid-continuation reseeds.
func TestRestartableSourceReseed(t *testing.T) {
	s := newRestartableSource(42)
	for _, drawsBefore := range []int{0, 10, rngLen - 1, rngLen, 3 * rngLen} {
		for _, seed := range []int64{42, 42, 99, 42} {
			for i := 0; i < drawsBefore; i++ {
				s.Uint64()
			}
			s.Seed(seed)
			ref := rand.NewSource(seed).(rand.Source64)
			for i := 0; i < 2*rngLen; i++ {
				if w, r := s.Uint64(), ref.Uint64(); w != r {
					t.Fatalf("seed %d after %d draws, draw %d: %#x != %#x", seed, drawsBefore, i, w, r)
				}
			}
		}
	}
}

// TestRestartableSourceViaRand checks the derived rand.Rand streams
// (Intn, Int63, Float64 — the draws the generators use) coincide with
// rand.Rand over a real source.
func TestRestartableSourceViaRand(t *testing.T) {
	got := rand.New(newRestartableSource(7))
	ref := rand.New(rand.NewSource(7))
	for i := 0; i < 4*rngLen; i++ {
		switch i % 3 {
		case 0:
			if w, r := got.Intn(2048), ref.Intn(2048); w != r {
				t.Fatalf("draw %d: Intn %d != %d", i, w, r)
			}
		case 1:
			if w, r := got.Int63(), ref.Int63(); w != r {
				t.Fatalf("draw %d: Int63 %d != %d", i, w, r)
			}
		default:
			if w, r := got.Float64(), ref.Float64(); w != r {
				t.Fatalf("draw %d: Float64 %v != %v", i, w, r)
			}
		}
	}
}

// TestRestartableSourceDirectDerivations pins the source's own Intn /
// Int31n / Int63n / Int31 replicas — the interface-free fast path the
// blind generator draws through — against rand.Rand over a real source.
// The n values mix power-of-two masks with moduli that exercise the
// rejection loop, and a mid-stream reseed checks the replicas stay in
// lockstep across a restart.
func TestRestartableSourceDirectDerivations(t *testing.T) {
	for _, seed := range []int64{0, 7, -3, 1 << 40} {
		src := newRestartableSource(seed)
		ref := rand.New(rand.NewSource(seed))
		ns := []int{1, 2, 9, 97, 256, 2048, 1<<31 - 1, 3}
		check := func(label string) {
			for i := 0; i < 4*rngLen; i++ {
				switch i % 4 {
				case 0:
					n := ns[i%len(ns)]
					if w, r := src.Intn(n), ref.Intn(n); w != r {
						t.Fatalf("%s seed %d draw %d: Intn(%d) %d != %d", label, seed, i, n, w, r)
					}
				case 1:
					if w, r := src.Int31(), ref.Int31(); w != r {
						t.Fatalf("%s seed %d draw %d: Int31 %d != %d", label, seed, i, w, r)
					}
				case 2:
					n := int32(ns[i%len(ns)])
					if w, r := src.Int31n(n), ref.Int31n(n); w != r {
						t.Fatalf("%s seed %d draw %d: Int31n(%d) %d != %d", label, seed, i, n, w, r)
					}
				default:
					n := int64(ns[i%len(ns)]) << 16
					if w, r := src.Int63n(n), ref.Int63n(n); w != r {
						t.Fatalf("%s seed %d draw %d: Int63n(%d) %d != %d", label, seed, i, n, w, r)
					}
				}
			}
		}
		check("fresh")
		src.Seed(seed)
		ref.Seed(seed)
		check("reseeded")
	}
}

// TestRestartableSourceSeedAllocs pins the cached-reseed path at zero
// allocations — it sits on the world-reuse hot path.
func TestRestartableSourceSeedAllocs(t *testing.T) {
	s := newRestartableSource(7)
	if n := testing.AllocsPerRun(100, func() { s.Seed(7) }); n != 0 {
		t.Fatalf("cached Seed allocates %v times per call, want 0", n)
	}
}
