package core

import (
	"math/rand"
	"time"

	"repro/internal/bus"
	"repro/internal/can"
	"repro/internal/clock"
)

// Data-link-layer fuzzing — the paper's §VII extension "Investigate
// manipulation of data packets at the bit level to fuzz CAN protocol
// control bits (the data link layer)". A BitFuzzer takes valid frames,
// encodes them to their stuffed wire bit sequence, flips bits anywhere in
// that sequence (identifier, control field, data, CRC, stuff bits alike)
// and injects the result through Port.SendRaw. Receivers either accept a
// (rare) still-valid frame or signal an error frame, driving the victims'
// fault-confinement state machines.

// BitFuzzConfig tunes a BitFuzzer.
type BitFuzzConfig struct {
	// Seed makes the run reproducible.
	Seed int64
	// Corpus supplies the base frames; empty uses a default idle frame.
	Corpus []can.Frame
	// FlipBits is the number of wire bits flipped per injection (default 1).
	FlipBits int
	// Interval is the injection period (clamped to MinInterval).
	Interval time.Duration
}

// BitFuzzStats counts injection outcomes.
type BitFuzzStats struct {
	// Injected counts raw sequences queued.
	Injected uint64
	// Delivered counts sequences that still decoded as valid frames.
	Delivered uint64
	// ErrorFrames counts sequences that triggered protocol error handling.
	ErrorFrames uint64
	// Rejected counts injections refused at the port (bus-off, queue full).
	Rejected uint64
}

// BitFuzzer injects corrupted wire-bit sequences.
type BitFuzzer struct {
	sched *clock.Scheduler
	port  *bus.Port
	cfg   BitFuzzConfig
	rng   *rand.Rand

	stats BitFuzzStats
	timer *clock.Timer

	// Per-tick reuse: the encode scratch buffer (SendRaw copies the bits it
	// queues, so reusing it across ticks is safe) and the result callback,
	// bound once instead of closed over per injection.
	scratch  []byte
	onResult func(bus.RawResult)
}

// NewBitFuzzer creates a bit-level fuzzer on a port.
func NewBitFuzzer(sched *clock.Scheduler, port *bus.Port, cfg BitFuzzConfig) *BitFuzzer {
	if len(cfg.Corpus) == 0 {
		cfg.Corpus = []can.Frame{can.MustNew(0x100, []byte{0x55, 0xAA, 0x55, 0xAA})}
	}
	if cfg.FlipBits <= 0 {
		cfg.FlipBits = 1
	}
	if cfg.Interval < MinInterval {
		cfg.Interval = MinInterval
	}
	bf := &BitFuzzer{
		sched: sched,
		port:  port,
		cfg:   cfg,
		rng:   rand.New(newRestartableSource(cfg.Seed)),
	}
	bf.onResult = func(res bus.RawResult) {
		if res == bus.RawDelivered {
			bf.stats.Delivered++
		} else {
			bf.stats.ErrorFrames++
		}
	}
	return bf
}

// Stats returns a snapshot of the outcome counters.
func (bf *BitFuzzer) Stats() BitFuzzStats { return bf.stats }

// Start begins periodic injection.
func (bf *BitFuzzer) Start() {
	if bf.timer != nil {
		return
	}
	bf.timer = bf.sched.Every(bf.cfg.Interval, bf.injectOne)
}

// Stop halts injection.
func (bf *BitFuzzer) Stop() {
	if bf.timer != nil {
		bf.timer.Stop()
		bf.timer = nil
	}
}

// InjectOne corrupts and injects a single sequence immediately.
func (bf *BitFuzzer) InjectOne() { bf.injectOne() }

func (bf *BitFuzzer) injectOne() {
	base := bf.cfg.Corpus[bf.rng.Intn(len(bf.cfg.Corpus))]
	bf.scratch = can.AppendEncodeBits(bf.scratch[:0], base)
	bits := bf.scratch
	for i := 0; i < bf.cfg.FlipBits; i++ {
		bits[bf.rng.Intn(len(bits))] ^= 1
	}
	if err := bf.port.SendRaw(bits, bf.onResult); err != nil {
		bf.stats.Rejected++
		return
	}
	bf.stats.Injected++
}
