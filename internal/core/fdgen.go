package core

import (
	"math/rand"
	"time"

	"repro/internal/bus"
	"repro/internal/can"
	"repro/internal/clock"
)

// CAN FD fuzzing — the second half of the paper's §VII FD future-work
// item: once the substrate speaks FD, the fuzz technique transfers
// directly. FDFuzzConfig mirrors the classic Table III parameter space
// with FD's payload sizes.

// FDFuzzConfig tunes an FDFuzzer.
type FDFuzzConfig struct {
	// Seed makes the run reproducible.
	Seed int64
	// IDMin and IDMax bound the identifier range (defaults: full space).
	IDMin, IDMax can.ID
	// TargetIDs restricts identifiers to a list when non-empty.
	TargetIDs []can.ID
	// Sizes restricts payload sizes to the given FD-representable values;
	// empty uses all sixteen DLC sizes.
	Sizes []int
	// BRSProbability is the chance a frame requests bit-rate switching,
	// in percent (default 50).
	BRSProbability int
	// Interval is the injection period (clamped to MinInterval).
	Interval time.Duration
}

// FDFuzzer generates and transmits random CAN FD frames.
type FDFuzzer struct {
	sched *clock.Scheduler
	port  *bus.Port
	cfg   FDFuzzConfig
	rng   *rand.Rand

	sent   uint64
	errors uint64
	timer  *clock.Timer
}

// NewFDFuzzer creates an FD fuzzer on a port.
func NewFDFuzzer(sched *clock.Scheduler, port *bus.Port, cfg FDFuzzConfig) (*FDFuzzer, error) {
	if cfg.IDMax == 0 {
		cfg.IDMax = can.MaxID
	}
	if cfg.IDMin > cfg.IDMax || cfg.IDMax > can.MaxID {
		return nil, ErrIDRange
	}
	for _, id := range cfg.TargetIDs {
		if !id.Valid() {
			return nil, ErrIDRange
		}
	}
	if len(cfg.Sizes) == 0 {
		cfg.Sizes = []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 12, 16, 20, 24, 32, 48, 64}
	}
	for _, n := range cfg.Sizes {
		if _, err := can.FDLengthToDLC(n); err != nil {
			return nil, err
		}
	}
	if cfg.BRSProbability == 0 {
		cfg.BRSProbability = 50
	}
	if cfg.Interval < MinInterval {
		cfg.Interval = MinInterval
	}
	return &FDFuzzer{
		sched: sched,
		port:  port,
		cfg:   cfg,
		rng:   rand.New(newRestartableSource(cfg.Seed)),
	}, nil
}

// Sent returns the number of frames transmitted.
func (f *FDFuzzer) Sent() uint64 { return f.sent }

// SendErrors returns the number of rejected transmissions.
func (f *FDFuzzer) SendErrors() uint64 { return f.errors }

// Next generates the next random FD frame without sending it.
func (f *FDFuzzer) Next() can.FDFrame {
	var id can.ID
	if n := len(f.cfg.TargetIDs); n > 0 {
		id = f.cfg.TargetIDs[f.rng.Intn(n)]
	} else {
		id = f.cfg.IDMin + can.ID(f.rng.Intn(int(f.cfg.IDMax-f.cfg.IDMin)+1))
	}
	size := f.cfg.Sizes[f.rng.Intn(len(f.cfg.Sizes))]
	data := make([]byte, size)
	f.rng.Read(data)
	brs := f.rng.Intn(100) < f.cfg.BRSProbability
	frame, err := can.NewFD(id, data, brs)
	if err != nil {
		// Unreachable: sizes and ids are pre-validated.
		panic(err)
	}
	return frame
}

// Start begins periodic transmission.
func (f *FDFuzzer) Start() {
	if f.timer != nil {
		return
	}
	f.timer = f.sched.Every(f.cfg.Interval, f.sendOne)
}

// Stop halts transmission.
func (f *FDFuzzer) Stop() {
	if f.timer != nil {
		f.timer.Stop()
		f.timer = nil
	}
}

func (f *FDFuzzer) sendOne() {
	if err := f.port.SendFD(f.Next()); err != nil {
		f.errors++
		return
	}
	f.sent++
}
