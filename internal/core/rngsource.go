package core

import (
	"math/rand"
	"sync"
)

// Restartable math/rand source.
//
// Campaign and world reset restart every RNG stream from its seed so a
// reused world replays exactly what a freshly built one would. math/rand's
// Seed re-derives the generator's 607-word lagged-Fibonacci state with
// three seedrand steps per word (~25µs) — on a reused world that was the
// single most expensive part of a reset. This source caches the post-seed
// state the first time a seed is used and restarts by copying it back in,
// turning every later same-seed Seed into a 5KB memcpy.
//
// The cached state is reconstructed through math/rand's public API only:
// the generator emits x = vec[feed]+vec[tap] and stores x back into
// vec[feed], so after exactly len(vec) draws every slot holds the value it
// emitted and the tap/feed cursors are back where seeding left them. One
// real rand.NewSource therefore yields both the first 607 outputs (replayed
// verbatim) and the complete continuation state — no copying of unexported
// runtime internals, no dependence on the seeding constants. The
// differential test in rngsource_test.go pins the stream word-identical to
// math/rand across seeds and cache hits.

const (
	rngLen  = 607 // length of math/rand's additive lagged-Fibonacci register
	rngTap  = 273 // distance between the feed and tap cursors
	rngMask = 1<<63 - 1
)

// rngScratch is the shared real math/rand source used to derive cached
// states on a seed change. Guarded by rngScratchMu; misses are rare (a
// seed's first use) and short, so a single shared scratch keeps the
// per-generator footprint down and the reset path allocation-free.
var (
	rngScratchMu sync.Mutex
	rngScratch   rand.Source64
)

// restartableSource is a rand.Source64 emitting exactly math/rand's
// ALFG stream, with O(state-copy) restarts for an already-seen seed.
type restartableSource struct {
	seed   int64
	seeded bool
	init   [rngLen]int64 // state right after seeding seed
	vec    [rngLen]int64
	pos    int // draws emitted since seeding, while < rngLen (replay phase)
	tap    int
	feed   int
}

// newRestartableSource returns a seeded source; rand.New on top of it
// draws the identical stream to rand.New(rand.NewSource(seed)).
func newRestartableSource(seed int64) *restartableSource {
	s := &restartableSource{}
	s.Seed(seed)
	return s
}

// Seed restarts the stream from the given seed: a state copy when the
// seed was seen before, one real math/rand seeding otherwise.
func (s *restartableSource) Seed(seed int64) {
	if !s.seeded || seed != s.seed {
		rngScratchMu.Lock()
		if rngScratch == nil {
			rngScratch = rand.NewSource(seed).(rand.Source64)
		} else {
			rngScratch.Seed(seed)
		}
		// Slot (feed-1-i) mod len received the i-th output; after len
		// draws the cursors are back at their post-seed positions.
		idx := rngLen - rngTap - 1
		for i := 0; i < rngLen; i++ {
			s.init[idx] = int64(rngScratch.Uint64())
			idx--
			if idx < 0 {
				idx += rngLen
			}
		}
		rngScratchMu.Unlock()
		s.seed, s.seeded = seed, true
	}
	s.vec = s.init
	s.pos = 0
	s.tap, s.feed = 0, rngLen-rngTap
}

// Uint64 returns the next value of the stream. The first rngLen draws
// replay the cached outputs in place (each slot of init holds the value
// it emitted); after that the generator steps normally.
func (s *restartableSource) Uint64() uint64 {
	if s.pos < rngLen {
		idx := rngLen - rngTap - 1 - s.pos
		if idx < 0 {
			idx += rngLen
		}
		s.pos++
		return uint64(s.vec[idx])
	}
	s.tap--
	if s.tap < 0 {
		s.tap += rngLen
	}
	s.feed--
	if s.feed < 0 {
		s.feed += rngLen
	}
	x := s.vec[s.feed] + s.vec[s.tap]
	s.vec[s.feed] = x
	return uint64(x)
}

// Int63 returns the low 63 bits of the next value, matching
// math/rand's Source.
func (s *restartableSource) Int63() int64 {
	return int64(s.Uint64() & rngMask)
}

// The derivation methods below replicate math/rand.(*Rand) bit for bit so
// hot-path callers can hold a concrete *restartableSource and skip the
// Source interface dispatch inside rand.Rand. Any divergence from
// math/rand's rejection sampling would silently shift every downstream
// frame; the differential tests in rngsource_test.go pin each method
// against a rand.Rand over the same source.

// Int31 mirrors rand.(*Rand).Int31.
func (s *restartableSource) Int31() int32 {
	return int32(s.Int63() >> 32)
}

// Int31n mirrors rand.(*Rand).Int31n, including the power-of-two mask
// fast path and the modulo-bias rejection loop.
func (s *restartableSource) Int31n(n int32) int32 {
	if n <= 0 {
		panic("invalid argument to Int31n")
	}
	if n&(n-1) == 0 { // n is power of two, can mask
		return s.Int31() & (n - 1)
	}
	max := int32((1 << 31) - 1 - (1<<31)%uint32(n))
	v := s.Int31()
	for v > max {
		v = s.Int31()
	}
	return v % n
}

// Int63n mirrors rand.(*Rand).Int63n.
func (s *restartableSource) Int63n(n int64) int64 {
	if n <= 0 {
		panic("invalid argument to Int63n")
	}
	if n&(n-1) == 0 { // n is power of two, can mask
		return s.Int63() & (n - 1)
	}
	max := int64((1 << 63) - 1 - (1<<63)%uint64(n))
	v := s.Int63()
	for v > max {
		v = s.Int63()
	}
	return v % n
}

// Intn mirrors rand.(*Rand).Intn.
func (s *restartableSource) Intn(n int) int {
	if n <= 0 {
		panic("invalid argument to Intn")
	}
	if n <= 1<<31-1 {
		return int(s.Int31n(int32(n)))
	}
	return int(s.Int63n(int64(n)))
}
