package core

import (
	"errors"
	"testing"
	"time"

	"repro/internal/bus"
	"repro/internal/can"
	"repro/internal/clock"
	"repro/internal/oracle"
)

func TestFDFuzzerFramesValid(t *testing.T) {
	s := clock.New()
	b := bus.New(s)
	f, err := NewFDFuzzer(s, b.Connect("fd"), FDFuzzConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	sizes := map[uint8]bool{}
	for i := 0; i < 5000; i++ {
		frame := f.Next()
		if err := frame.Validate(); err != nil {
			t.Fatalf("invalid FD frame: %v", err)
		}
		sizes[frame.Len] = true
	}
	if len(sizes) != 16 {
		t.Fatalf("sizes covered = %d, want 16", len(sizes))
	}
}

func TestFDFuzzerConfigValidation(t *testing.T) {
	s := clock.New()
	b := bus.New(s)
	if _, err := NewFDFuzzer(s, b.Connect("a"), FDFuzzConfig{IDMin: 5, IDMax: 1}); !errors.Is(err, ErrIDRange) {
		t.Fatalf("err = %v", err)
	}
	if _, err := NewFDFuzzer(s, b.Connect("b"), FDFuzzConfig{TargetIDs: []can.ID{0x900}}); !errors.Is(err, ErrIDRange) {
		t.Fatalf("err = %v", err)
	}
	if _, err := NewFDFuzzer(s, b.Connect("c"), FDFuzzConfig{Sizes: []int{9}}); !errors.Is(err, can.ErrFDDataLen) {
		t.Fatalf("err = %v", err)
	}
}

func TestFDFuzzerFindsHiddenFDCommand(t *testing.T) {
	// An FD-capable ECU acknowledges a magic byte in a 12-byte frame on a
	// specific identifier; the FD fuzzer must find it (the paper's
	// technique transferred to FD).
	s := clock.New()
	b := bus.New(s, bus.WithFDDataBitrate(bus.DefaultFDDataBitrate))
	sut := b.Connect("sut")
	sut.SetFDReceiver(func(m bus.FDMessage) {
		if m.Frame.ID == 0x321 && m.Frame.Len >= 12 && m.Frame.Data[9] == 0x42 {
			sut.Send(can.MustNew(0x322, []byte{0xAC}))
		}
	})
	fuzzPort := b.Connect("fdfuzzer")
	f, err := NewFDFuzzer(s, fuzzPort, FDFuzzConfig{
		Seed:      5,
		TargetIDs: []can.ID{0x321},
		Sizes:     []int{12},
	})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	ack := &oracle.Ack{Once: true, Match: func(fr can.Frame) bool { return fr.ID == 0x322 }}
	ack.Start(s, func(oracle.Verdict) { found = true })
	fuzzPort.SetReceiver(ack.Observe)

	f.Start()
	s.RunUntil(10 * time.Minute)
	f.Stop()
	if !found {
		t.Fatalf("FD fuzzer never triggered the hidden command (%d sent)", f.Sent())
	}
	if f.Sent() == 0 {
		t.Fatal("sent counter broken")
	}
}

func TestFDFuzzerBRSProbability(t *testing.T) {
	s := clock.New()
	b := bus.New(s)
	always, _ := NewFDFuzzer(s, b.Connect("a"), FDFuzzConfig{Seed: 2, BRSProbability: 100})
	for i := 0; i < 100; i++ {
		if !always.Next().BRS {
			t.Fatal("BRSProbability=100 produced a non-BRS frame")
		}
	}
	never, _ := NewFDFuzzer(s, b.Connect("b"), FDFuzzConfig{Seed: 2, BRSProbability: -1})
	brs := 0
	for i := 0; i < 100; i++ {
		if never.Next().BRS {
			brs++
		}
	}
	if brs != 0 {
		t.Fatalf("BRSProbability<0 produced %d BRS frames", brs)
	}
}

func TestFDFuzzerDeterministic(t *testing.T) {
	mk := func() []string {
		s := clock.New()
		b := bus.New(s)
		f, _ := NewFDFuzzer(s, b.Connect("fd"), FDFuzzConfig{Seed: 11})
		out := make([]string, 50)
		for i := range out {
			out[i] = f.Next().String()
		}
		return out
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("FD fuzzer not deterministic")
		}
	}
}

func TestFDFuzzerStartStop(t *testing.T) {
	s := clock.New()
	b := bus.New(s)
	b.Connect("rx").SetFDReceiver(func(bus.FDMessage) {})
	f, _ := NewFDFuzzer(s, b.Connect("fd"), FDFuzzConfig{Seed: 3})
	f.Start()
	f.Start()
	s.RunUntil(50 * time.Millisecond)
	f.Stop()
	sent := f.Sent()
	if sent != 50 {
		t.Fatalf("sent = %d in 50ms, want 50", sent)
	}
	s.RunUntil(time.Second)
	if f.Sent() != sent {
		t.Fatal("kept sending after Stop")
	}
}
