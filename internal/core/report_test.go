package core

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"repro/internal/bus"
	"repro/internal/can"
	"repro/internal/oracle"
)

func TestBuildReportCapturesCampaignState(t *testing.T) {
	s, b, c := rig(t, Config{Seed: 42, TargetIDs: []can.ID{0x100}, LenMin: 0, LenMax: 0},
		WithStopOnFinding())
	echo := b.Connect("echo")
	echo.SetReceiver(func(m bus.Message) {
		if m.Frame.ID == 0x100 {
			echo.Send(can.MustNew(0x200, nil))
		}
	})
	c.AddOracle(&oracle.Ack{Match: func(f can.Frame) bool { return f.ID == 0x200 }})
	c.Start()
	s.RunUntil(time.Second)

	r := c.BuildReport()
	if r.Seed != 42 || r.Mode != "random" {
		t.Fatalf("report header = %+v", r)
	}
	if r.FramesSent == 0 || r.DistinctIDs != 1 {
		t.Fatalf("counters = %+v", r)
	}
	if len(r.Findings) != 1 {
		t.Fatalf("findings = %d", len(r.Findings))
	}
	f := r.Findings[0]
	if f.Oracle != "ack" || f.FramesSent == 0 || len(f.RecentFrames) == 0 {
		t.Fatalf("finding = %+v", f)
	}
}

func TestReportJSONRoundTrips(t *testing.T) {
	_, _, c := rig(t, Config{Seed: 1})
	c.RunFor(50 * time.Millisecond)
	var sb strings.Builder
	if err := c.BuildReport().WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal([]byte(sb.String()), &back); err != nil {
		t.Fatalf("report JSON invalid: %v\n%s", err, sb.String())
	}
	if back.FramesSent != c.FramesSent() {
		t.Fatalf("framesSent = %d, want %d", back.FramesSent, c.FramesSent())
	}
}

func TestParseConfigJSON(t *testing.T) {
	doc := `{
		"seed": 7,
		"mode": "mutate",
		"targetIds": [533],
		"mutateBits": 2,
		"mutateId": true,
		"intervalMicros": 2000,
		"corpus": ["215#205F0100000120", "110#610D"]
	}`
	cfg, err := ParseConfigJSON(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Seed != 7 || cfg.Mode != ModeMutate || cfg.MutateBits != 2 || !cfg.MutateID {
		t.Fatalf("cfg = %+v", cfg)
	}
	if cfg.Interval != 2*time.Millisecond {
		t.Fatalf("interval = %v", cfg.Interval)
	}
	if len(cfg.TargetIDs) != 1 || cfg.TargetIDs[0] != 533 {
		t.Fatalf("targets = %v", cfg.TargetIDs)
	}
	if len(cfg.Corpus) != 2 || cfg.Corpus[0].ID != 0x215 || cfg.Corpus[0].Len != 7 {
		t.Fatalf("corpus = %v", cfg.Corpus)
	}
	if cfg.Corpus[1].Data[0] != 0x61 || cfg.Corpus[1].Data[1] != 0x0D {
		t.Fatalf("corpus[1] = %v", cfg.Corpus[1])
	}
}

func TestParseConfigJSONDefaults(t *testing.T) {
	cfg, err := ParseConfigJSON(strings.NewReader(`{"seed": 3}`))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Mode != ModeRandom {
		t.Fatalf("mode = %v", cfg.Mode)
	}
	// The parsed config must produce a working generator with defaults.
	g, err := NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if g.Config().IDMax != can.MaxID || g.Config().Interval != time.Millisecond {
		t.Fatalf("defaults = %+v", g.Config())
	}
}

func TestConfigToJSONRoundTrip(t *testing.T) {
	// ToJSON is the inverse of ToConfig — the property the distributed
	// campaign spec depends on: the coordinator serialises the CLI-built
	// Config, workers rebuild their generators from exactly those bytes.
	frame, err := ParseCorpusFrame("215#205F0100000120")
	if err != nil {
		t.Fatal(err)
	}
	orig := Config{
		Seed: 7, Mode: ModeMutate,
		IDMin: 0x100, IDMax: 0x300,
		TargetIDs: []can.ID{0x215},
		LenMin:    1, LenMax: 8,
		ByteMin: 0, ByteMax: 255,
		Interval:   2 * time.Millisecond,
		Corpus:     []can.Frame{frame},
		MutateBits: 2, MutateID: true,
	}
	back, err := orig.ToJSON().ToConfig()
	if err != nil {
		t.Fatal(err)
	}
	if back.Seed != orig.Seed || back.Mode != orig.Mode || back.Interval != orig.Interval ||
		back.IDMin != orig.IDMin || back.IDMax != orig.IDMax ||
		back.MutateBits != orig.MutateBits || back.MutateID != orig.MutateID {
		t.Fatalf("round trip diverged:\norig: %+v\nback: %+v", orig, back)
	}
	if len(back.TargetIDs) != 1 || back.TargetIDs[0] != 0x215 {
		t.Fatalf("target ids = %v", back.TargetIDs)
	}
	if len(back.Corpus) != 1 || !back.Corpus[0].Equal(frame) {
		t.Fatalf("corpus = %v", back.Corpus)
	}
	// The zero mode stays empty on the wire and parses back to random.
	if cj := (Config{Seed: 1}).ToJSON(); cj.Mode != "" {
		t.Fatalf("zero mode serialised as %q", cj.Mode)
	}
}

func TestParseConfigJSONErrors(t *testing.T) {
	cases := map[string]string{
		"bad json":        `{`,
		"unknown field":   `{"seed": 1, "bogus": true}`,
		"bad mode":        `{"mode": "explode"}`,
		"bad corpus":      `{"mode": "mutate", "corpus": ["nohash"]}`,
		"bad corpus id":   `{"mode": "mutate", "corpus": ["zz#00"]}`,
		"bad corpus data": `{"mode": "mutate", "corpus": ["215#0"]}`,
		"long corpus":     `{"mode": "mutate", "corpus": ["215#000102030405060708"]}`,
		"mutate no corp":  `{"mode": "mutate"}`,
		"invalid ranges":  `{"lenMin": 5, "lenMax": 3}`,
	}
	for name, doc := range cases {
		if _, err := ParseConfigJSON(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: accepted %s", name, doc)
		}
	}
}

func FuzzParseConfigJSON(f *testing.F) {
	f.Add(`{"seed": 7, "mode": "sweep", "sweepLen": 1}`)
	f.Add(`{"targetIds": [533], "corpus": ["215#20"]}`)
	f.Fuzz(func(t *testing.T, doc string) {
		cfg, err := ParseConfigJSON(strings.NewReader(doc))
		if err != nil {
			return
		}
		// Accepted configs must build a working generator.
		if _, err := NewGenerator(cfg); err != nil {
			t.Fatalf("accepted config fails generator: %v", err)
		}
	})
}
