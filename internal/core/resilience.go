package core

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/bus"
	"repro/internal/can"
	"repro/internal/clock"
	"repro/internal/oracle"
	"repro/internal/retry"
	"repro/internal/telemetry"
)

// Campaign resilience: the graceful-degradation policy that keeps a fuzzing
// run alive while the fault injector (internal/faults) is tearing the system
// under test apart. Transient send rejections are retried with virtual-time
// backoff instead of being dropped, and a watchdog detects a dead bus — no
// delivered progress through the fuzzer's port within a window — and either
// triggers the campaign's reset hook or ends the run with a classified
// finding. Without a policy the campaign behaves exactly as before (and the
// hot path pays a single nil check).

// Sentinel errors for fault-induced send outcomes, classified by
// classifySendError into their own causes rather than "other".
var (
	// ErrRetryExhausted marks a transmission abandoned after the retry
	// budget was spent on transient rejections.
	ErrRetryExhausted = errors.New("core: send retry budget exhausted")
	// ErrWatchdogReset marks a pending retransmission abandoned because the
	// watchdog reset the system under it.
	ErrWatchdogReset = errors.New("core: pending send abandoned by watchdog reset")
)

// Resilience configures the campaign's self-healing behaviour.
type Resilience struct {
	// RetryMax bounds retransmission attempts per frame on transient send
	// errors (queue-full, bus-off). Zero disables retrying.
	RetryMax int
	// RetryBackoff is the virtual-time pause before the first retry; it
	// doubles on each further attempt.
	RetryBackoff time.Duration
	// WatchdogWindow is the progress deadline: if the fuzzer's port neither
	// transmits nor receives a delivered frame for a full window, the
	// watchdog fires. Zero disables the watchdog.
	WatchdogWindow time.Duration
}

// DefaultResilience returns the policy used by canfuzz -recover: three
// retries from 1 ms backoff (enough to span an ISO 11898-1 bus-off
// recovery) and a 250 ms dead-bus watchdog.
func DefaultResilience() Resilience {
	return Resilience{
		RetryMax:       3,
		RetryBackoff:   time.Millisecond,
		WatchdogWindow: 250 * time.Millisecond,
	}
}

// WithResilience installs a resilience policy on the campaign.
func WithResilience(r Resilience) Option {
	return func(c *Campaign) { c.res = &resState{Resilience: r} }
}

// resState is the live resilience machinery attached to a running campaign.
type resState struct {
	Resilience

	// Pending retransmission.
	pending      can.Frame
	pendingValid bool
	attempts     int
	pausedUntil  time.Duration

	// Watchdog progress tracking.
	lastProgress uint64
	wdTimer      *clock.Timer

	// Graceful-degradation counters, surfaced in Report.Resilience.
	retries          uint64
	retriesExhausted uint64
	watchdogFires    uint64
	watchdogResets   uint64
}

// clearPending abandons the retransmission state.
func (r *resState) clearPending() {
	r.pending = can.Frame{}
	r.pendingValid = false
	r.attempts = 0
	r.pausedUntil = 0
}

// backoff returns the pause before the attempt just recorded (doubling:
// RetryBackoff, 2×, 4×...). The schedule is the shared retry.Policy with
// no cap and no jitter: virtual-time retries must stay a pure function of
// the campaign seed, and RetryMax bounds growth long before saturation.
func (r *resState) backoff() time.Duration {
	return retry.Policy{Base: r.RetryBackoff}.Delay(r.attempts, nil)
}

// transientSendError reports whether a Port.Send rejection is worth
// retrying: the queue may drain (queue-full) or the node may rejoin the bus
// (bus-off under auto-recovery). A detached port needs outside intervention.
func transientSendError(err error) bool {
	return errors.Is(err, bus.ErrTxQueueFull) || errors.Is(err, bus.ErrBusOff)
}

// progress is the watchdog's liveness measure: frames the fuzzer's port put
// on or took off the wire. Both directions count — a transmit-only view
// would false-alarm a healthy listener, a receive-only view a healthy
// sender on an otherwise quiet bus.
func (c *Campaign) progress() uint64 {
	st := c.port.Stats()
	return st.TxFrames + st.RxFrames
}

// startWatchdog arms the dead-bus watchdog. Called from Start.
func (c *Campaign) startWatchdog() {
	if c.res == nil || c.res.WatchdogWindow <= 0 || c.res.wdTimer != nil {
		return
	}
	c.res.lastProgress = c.progress()
	c.res.wdTimer = c.sched.Every(c.res.WatchdogWindow, c.watchdogCheck)
}

// stopWatchdog disarms the watchdog. Called from Stop.
func (c *Campaign) stopWatchdog() {
	if c.res != nil && c.res.wdTimer != nil {
		c.res.wdTimer.Stop()
		c.res.wdTimer = nil
	}
}

// watchdogCheck fires every window: if the port made no progress since the
// previous check the bus is considered dead. With a reset hook installed the
// campaign heals itself (reset, abandon any pending retransmission, keep
// fuzzing); without one it records a classified watchdog finding and stops —
// the fix for campaigns that previously spun ErrBusOff until the deadline.
func (c *Campaign) watchdogCheck() {
	cur := c.progress()
	if cur != c.res.lastProgress {
		c.res.lastProgress = cur
		return
	}
	c.res.watchdogFires++
	if c.tel != nil {
		c.tel.Reg().Counter("campaign_watchdog_fires_total",
			"Dead-bus watchdog firings (no port progress within the window).").Inc()
		c.tel.Emit(telemetry.Event{
			At: c.sched.Now(), Kind: telemetry.EvFault,
			Actor: "campaign", Name: "watchdog-fire",
			Detail: fmt.Sprintf("no bus progress within %v", c.res.WatchdogWindow),
		})
	}
	if c.reset != nil {
		if c.res.pendingValid {
			c.res.clearPending()
			c.noteSendError(ErrWatchdogReset)
		}
		c.reset()
		c.res.watchdogResets++
		c.mResets.Inc()
		if c.tel != nil {
			c.tel.Emit(telemetry.Event{
				At: c.sched.Now(), Kind: telemetry.EvReset,
				Actor: "campaign", Name: "watchdog-reset",
			})
		}
		c.res.lastProgress = c.progress()
		return
	}
	c.report(oracle.Verdict{
		Time:   c.sched.Now(),
		Oracle: "watchdog",
		Detail: fmt.Sprintf("bus dead: no progress within %v", c.res.WatchdogWindow),
	})
	if c.running {
		c.Stop()
	}
}

// noteRetry accounts one scheduled retransmission.
func (c *Campaign) noteRetry() {
	c.res.retries++
	if c.tel != nil {
		c.tel.Reg().Counter("campaign_retries_total",
			"Retransmissions scheduled for transient send rejections.").Inc()
	}
}

// ResilienceReport summarises the graceful-degradation counters of a run.
type ResilienceReport struct {
	// Retries counts retransmissions scheduled on transient send errors.
	Retries uint64 `json:"retries"`
	// RetriesExhausted counts frames abandoned after the retry budget.
	RetriesExhausted uint64 `json:"retriesExhausted"`
	// WatchdogFires counts dead-bus detections.
	WatchdogFires uint64 `json:"watchdogFires"`
	// WatchdogResets counts reset-hook invocations by the watchdog.
	WatchdogResets uint64 `json:"watchdogResets"`
	// PortBusOffs and PortRecoveries count the fuzzer port's bus-off
	// entries and ISO 11898-1 rejoins during the run.
	PortBusOffs    uint64 `json:"portBusOffs"`
	PortRecoveries uint64 `json:"portRecoveries"`
}
