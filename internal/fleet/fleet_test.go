// The fleet suite lives in an external test package: testbench (used by
// the factories here) imports internal/guided, which imports fleet for its
// minimizer worlds — an in-package test would close that cycle.
package fleet_test

import (
	"bytes"
	"fmt"
	"log/slog"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/bcm"
	"repro/internal/bus"
	"repro/internal/can"
	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/fleet"
	"repro/internal/signal"
	"repro/internal/testbench"
)

// unlockFactory builds the Table V bench world per trial, targeted at the
// command identifier so each trial finds the unlock within virtual
// seconds.
func unlockFactory(check bcm.CheckMode) fleet.TargetFactory {
	return func(spec fleet.TrialSpec) (*fleet.World, error) {
		exp, err := testbench.NewUnlockExperiment(testbench.Config{Check: check},
			core.Config{Seed: spec.Seed, TargetIDs: []can.ID{signal.IDBodyCommand}})
		if err != nil {
			return nil, err
		}
		return &fleet.World{Sched: exp.Bench.Scheduler(), Campaign: exp.Campaign}, nil
	}
}

// idleFactory builds a world whose campaign has no oracle: every trial
// times out.
func idleFactory(spec fleet.TrialSpec) (*fleet.World, error) {
	sched := clock.New()
	b := bus.New(sched)
	campaign, err := core.NewCampaign(sched, b.Connect("fuzzer"), core.Config{Seed: spec.Seed})
	if err != nil {
		return nil, err
	}
	return &fleet.World{Sched: sched, Campaign: campaign}, nil
}

func mustRun(t *testing.T, cfg fleet.Config, factory fleet.TargetFactory) *fleet.Report {
	t.Helper()
	rep, err := fleet.Run(cfg, factory)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// hangFactory builds a world whose scheduler never advances virtual time: a
// zero-delay event rearms itself at the same instant, so RunUntilFinding's
// virtual deadline never fires. Only the wall-clock TrialTimeout can stop it.
func hangFactory(spec fleet.TrialSpec) (*fleet.World, error) {
	sched := clock.New()
	b := bus.New(sched)
	campaign, err := core.NewCampaign(sched, b.Connect("fuzzer"), core.Config{Seed: spec.Seed})
	if err != nil {
		return nil, err
	}
	var spin func()
	spin = func() { sched.After(0, spin) }
	sched.After(0, spin)
	return &fleet.World{Sched: sched, Campaign: campaign}, nil
}

func TestFleetDeterministicAcrossWorkerCounts(t *testing.T) {
	// The acceptance criterion: the same fleet serialises byte-identically
	// at workers=1 and workers=NumCPU.
	cfg := fleet.Config{Trials: 12, BaseSeed: 7, MaxPerTrial: 30 * time.Minute}
	cfg.Workers = 1
	seq := mustRun(t, cfg, unlockFactory(bcm.CheckByteOnly))
	cfg.Workers = runtime.NumCPU()
	par := mustRun(t, cfg, unlockFactory(bcm.CheckByteOnly))

	var a, b bytes.Buffer
	if err := seq.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := par.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("fleet report differs between workers=1 and workers=%d:\n--- seq ---\n%s\n--- par ---\n%s",
			runtime.NumCPU(), a.String(), b.String())
	}
}

func TestFleetResultsOrderedByTrialIndex(t *testing.T) {
	rep := mustRun(t, fleet.Config{Trials: 8, BaseSeed: 3, MaxPerTrial: 30 * time.Minute, Workers: 4},
		unlockFactory(bcm.CheckByteOnly))
	if len(rep.Results) != 8 {
		t.Fatalf("results = %d, want 8", len(rep.Results))
	}
	for i, tr := range rep.Results {
		if tr.Trial != i {
			t.Fatalf("result %d has trial index %d", i, tr.Trial)
		}
		if want := faults.DeriveSeed(3, i); tr.Seed != want {
			t.Fatalf("trial %d seed = %d, want DeriveSeed = %d", i, tr.Seed, want)
		}
		if tr.Status != fleet.StatusFinding {
			t.Fatalf("trial %d status = %q", i, tr.Status)
		}
		if tr.TimeToFinding <= 0 || tr.FramesSent == 0 {
			t.Fatalf("trial %d missing counters: %+v", i, tr)
		}
	}
}

func TestFleetAggregationAndStats(t *testing.T) {
	rep := mustRun(t, fleet.Config{Trials: 10, BaseSeed: 11, MaxPerTrial: 30 * time.Minute, Workers: 4},
		unlockFactory(bcm.CheckByteOnly))
	if rep.FoundFindings != 10 || rep.Completed != 10 {
		t.Fatalf("found/completed = %d/%d", rep.FoundFindings, rep.Completed)
	}
	// Every trial trips the same oracle on the same command identifier, so
	// the dedup collapses the fleet's findings.
	if len(rep.Findings) != 1 {
		t.Fatalf("aggregated findings = %d, want 1: %+v", len(rep.Findings), rep.Findings)
	}
	agg := rep.Findings[0]
	if agg.Oracle != "unlock-ack" || agg.Count != 10 || agg.TriggerID != "215" {
		t.Fatalf("aggregated finding = %+v", agg)
	}
	ttf := rep.TimeToFinding
	if ttf == nil || ttf.Samples != 10 {
		t.Fatalf("time-to-finding stats missing: %+v", ttf)
	}
	if ttf.Min <= 0 || ttf.Min > ttf.Median || ttf.Median > ttf.Max || ttf.P95 > ttf.Max {
		t.Fatalf("inconsistent distribution: %+v", ttf)
	}
	var binned uint64
	for _, b := range ttf.Histogram {
		binned += b.Count
	}
	if binned != 10 {
		t.Fatalf("histogram holds %d of 10 samples", binned)
	}
	if rep.Telemetry == nil || !strings.Contains(string(rep.Telemetry), "fleet_time_to_finding_seconds") {
		t.Fatalf("merged telemetry snapshot missing: %s", rep.Telemetry)
	}
}

func TestFleetTimeout(t *testing.T) {
	rep := mustRun(t, fleet.Config{Trials: 3, BaseSeed: 1, MaxPerTrial: 100 * time.Millisecond, Workers: 2},
		idleFactory)
	if rep.TimedOut != 3 || rep.FoundFindings != 0 {
		t.Fatalf("timedOut/found = %d/%d", rep.TimedOut, rep.FoundFindings)
	}
	if rep.TimeToFinding != nil {
		t.Fatal("no findings should mean no time-to-finding stats")
	}
	for _, tr := range rep.Results {
		if tr.Status != fleet.StatusTimeout || tr.FramesSent == 0 {
			t.Fatalf("trial %+v", tr)
		}
	}
}

func TestFleetTrialTimeoutStalled(t *testing.T) {
	// A world stuck in a same-instant event loop never advances virtual
	// time, so only the wall-clock TrialTimeout can reclaim its worker. The
	// trial must come back promptly, classified as stalled — not timeout,
	// which is reserved for the virtual deadline.
	start := time.Now()
	rep := mustRun(t, fleet.Config{
		Trials: 2, BaseSeed: 9, Workers: 2,
		MaxPerTrial:  time.Hour,
		TrialTimeout: 50 * time.Millisecond,
	}, hangFactory)
	if wall := time.Since(start); wall > 10*time.Second {
		t.Fatalf("stalled trials took %v to cancel", wall)
	}
	if rep.Stalled != 2 || rep.TimedOut != 0 || rep.FoundFindings != 0 {
		t.Fatalf("stalled/timedOut/found = %d/%d/%d", rep.Stalled, rep.TimedOut, rep.FoundFindings)
	}
	for _, tr := range rep.Results {
		if tr.Status != fleet.StatusStalled {
			t.Fatalf("trial %+v", tr)
		}
	}
	if !strings.Contains(string(rep.Telemetry), `"stalled"`) {
		t.Fatalf("stalled counter missing from telemetry:\n%s", rep.Telemetry)
	}
}

func TestRunTrialMatchesFleetRun(t *testing.T) {
	// RunTrial + NewReport is the distributed decomposition of Run: feeding
	// the per-trial results back through the aggregator must reproduce the
	// in-process report byte for byte (modulo the wall-only Workers field).
	cfg := fleet.Config{Trials: 6, BaseSeed: 21, MaxPerTrial: 30 * time.Minute, Workers: 3}
	whole := mustRun(t, cfg, unlockFactory(bcm.CheckByteOnly))

	results := make([]fleet.TrialResult, cfg.Trials)
	for i := range results {
		spec := fleet.TrialSpec{Index: i, Seed: faults.DeriveSeed(cfg.BaseSeed, i)}
		results[i] = fleet.RunTrial(spec, cfg, unlockFactory(bcm.CheckByteOnly))
	}
	rebuilt := fleet.NewReport(cfg.BaseSeed, cfg.MaxPerTrial, results)

	var a, b bytes.Buffer
	if err := whole.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := rebuilt.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("RunTrial+NewReport diverges from Run:\n--- run ---\n%s\n--- rebuilt ---\n%s",
			a.String(), b.String())
	}
}

func TestFleetPanicIsolation(t *testing.T) {
	// Odd trials panic mid-construction; even trials complete normally. A
	// crashed trial must become a classified result, not a dead fleet.
	factory := func(spec fleet.TrialSpec) (*fleet.World, error) {
		if spec.Index%2 == 1 {
			panic(fmt.Sprintf("trial %d exploded", spec.Index))
		}
		return unlockFactory(bcm.CheckByteOnly)(spec)
	}
	rep := mustRun(t, fleet.Config{Trials: 6, BaseSeed: 5, MaxPerTrial: 30 * time.Minute, Workers: 3},
		factory)
	if rep.Panics != 3 || rep.FoundFindings != 3 {
		t.Fatalf("panics/found = %d/%d", rep.Panics, rep.FoundFindings)
	}
	for i, tr := range rep.Results {
		if i%2 == 1 {
			if tr.Status != fleet.StatusPanic || !strings.Contains(tr.PanicValue, fmt.Sprintf("trial %d exploded", i)) {
				t.Fatalf("trial %d: %+v", i, tr)
			}
		} else if tr.Status != fleet.StatusFinding {
			t.Fatalf("trial %d: %+v", i, tr)
		}
	}
}

func TestFleetFactoryError(t *testing.T) {
	factory := func(spec fleet.TrialSpec) (*fleet.World, error) {
		if spec.Index == 1 {
			return nil, fmt.Errorf("no world for trial %d", spec.Index)
		}
		return idleFactory(spec)
	}
	rep := mustRun(t, fleet.Config{Trials: 2, BaseSeed: 1, MaxPerTrial: 50 * time.Millisecond}, factory)
	if rep.Errors != 1 {
		t.Fatalf("errors = %d", rep.Errors)
	}
	if tr := rep.Results[1]; tr.Status != fleet.StatusError || !strings.Contains(tr.Err, "no world for trial 1") {
		t.Fatalf("trial 1: %+v", tr)
	}
}

func TestFleetNilWorldClassified(t *testing.T) {
	rep := mustRun(t, fleet.Config{Trials: 1, BaseSeed: 1, MaxPerTrial: time.Second},
		func(fleet.TrialSpec) (*fleet.World, error) { return nil, nil })
	if rep.Results[0].Status != fleet.StatusError {
		t.Fatalf("nil world: %+v", rep.Results[0])
	}
}

func TestFleetFailFast(t *testing.T) {
	// Serial workers with fail-fast: trial 0 finds, so later trials are
	// never dispatched.
	rep := mustRun(t, fleet.Config{
		Trials: 64, BaseSeed: 7, Workers: 1,
		MaxPerTrial: 30 * time.Minute, FailFast: true,
	}, unlockFactory(bcm.CheckByteOnly))
	if rep.FoundFindings < 1 {
		t.Fatal("fail-fast fleet found nothing")
	}
	if rep.Skipped == 0 {
		t.Fatal("fail-fast did not skip any trials")
	}
	var accounted int
	for _, tr := range rep.Results {
		if tr.Status != "" {
			accounted++
		}
	}
	if accounted != 64 {
		t.Fatalf("only %d of 64 trials accounted for", accounted)
	}
	if rep.Completed+rep.Skipped != 64 {
		t.Fatalf("completed %d + skipped %d != 64", rep.Completed, rep.Skipped)
	}
}

func TestFleetConfigValidation(t *testing.T) {
	if _, err := fleet.Run(fleet.Config{Trials: 0, MaxPerTrial: time.Second}, idleFactory); err != fleet.ErrNoTrials {
		t.Fatalf("Trials=0: %v", err)
	}
	if _, err := fleet.Run(fleet.Config{Trials: 1}, idleFactory); err != fleet.ErrNoDeadline {
		t.Fatalf("MaxPerTrial=0: %v", err)
	}
	if _, err := fleet.Run(fleet.Config{Trials: 1, MaxPerTrial: time.Second}, nil); err != fleet.ErrNilFactory {
		t.Fatalf("nil factory: %v", err)
	}
}

func TestFleetProgressLogging(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&buf, nil))
	mustRun(t, fleet.Config{
		Trials: 4, BaseSeed: 2, Workers: 2,
		MaxPerTrial: 30 * time.Minute, Logger: logger, LogEvery: 2,
	}, unlockFactory(bcm.CheckByteOnly))
	out := buf.String()
	if !strings.Contains(out, "fleet progress") || !strings.Contains(out, "total=4") {
		t.Fatalf("progress log missing: %q", out)
	}
	if !strings.Contains(out, "trials_per_sec") {
		t.Fatalf("progress log lacks throughput: %q", out)
	}
}

// faultyUnlockFactory is unlockFactory with a bus-level fault plan armed
// in every trial world: the chaos campaign run at fleet scale.
func faultyUnlockFactory(check bcm.CheckMode, planSpec string) fleet.TargetFactory {
	return func(spec fleet.TrialSpec) (*fleet.World, error) {
		exp, err := testbench.NewUnlockExperiment(testbench.Config{Check: check},
			core.Config{Seed: spec.Seed, TargetIDs: []can.ID{signal.IDBodyCommand}})
		if err != nil {
			return nil, err
		}
		plan, err := faults.ParsePlan(planSpec)
		if err != nil {
			return nil, err
		}
		inj := faults.New(exp.Bench.Scheduler(), plan)
		inj.AttachBus(exp.Bench.Bus)
		if err := inj.Start(); err != nil {
			return nil, err
		}
		return &fleet.World{Sched: exp.Bench.Scheduler(), Campaign: exp.Campaign}, nil
	}
}

func TestFleetFaultPlanDeterminismAndAssociativity(t *testing.T) {
	// The merged telemetry snapshot (and the whole report) must stay
	// byte-identical across worker counts even when every trial world runs
	// a fault plan: injected chaos is part of each trial's deterministic
	// simulation, not a source of cross-trial nondeterminism.
	// The targeted unlock lands within ~400 virtual ms, so the corrupting
	// window opens immediately and outlasts the clean time-to-finding,
	// forcing every trial through the chaos.
	const planSpec = "seed=1;corrupt(p=1,at=1ms,for=5s);drop(p=0.5,at=5s,for=2s)"
	cfg := fleet.Config{Trials: 8, BaseSeed: 21, MaxPerTrial: 30 * time.Minute}

	cfg.Workers = 1
	seq := mustRun(t, cfg, faultyUnlockFactory(bcm.CheckByteOnly, planSpec))
	cfg.Workers = runtime.NumCPU()
	par := mustRun(t, cfg, faultyUnlockFactory(bcm.CheckByteOnly, planSpec))

	var a, b bytes.Buffer
	if err := seq.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := par.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("faulted fleet report differs between workers=1 and workers=%d:\n--- seq ---\n%s\n--- par ---\n%s",
			runtime.NumCPU(), a.String(), b.String())
	}
	if seq.Telemetry == nil || !bytes.Equal(seq.Telemetry, par.Telemetry) {
		t.Fatal("merged telemetry snapshots differ across worker counts under a fault plan")
	}

	// Associativity: the merged counters are the fold of the per-trial
	// results, independent of merge order.
	var frames, sendErrors uint64
	var virtual time.Duration
	findings := 0
	for _, tr := range seq.Results {
		frames += tr.FramesSent
		sendErrors += tr.SendErrors
		virtual += tr.VirtualElapsed
		if tr.Status == fleet.StatusFinding {
			findings++
		}
	}
	if frames != seq.FramesSent || sendErrors != seq.SendErrors {
		t.Errorf("merged counters not the per-trial sum: frames %d vs %d, sendErrors %d vs %d",
			seq.FramesSent, frames, seq.SendErrors, sendErrors)
	}
	if virtual != seq.VirtualTimeTotal {
		t.Errorf("virtual total %v != per-trial sum %v", seq.VirtualTimeTotal, virtual)
	}
	if findings != seq.FoundFindings {
		t.Errorf("finding count %d != per-trial fold %d", seq.FoundFindings, findings)
	}

	// The plan must actually bite: a corrupting window delays the unlock,
	// so the faulted fleet cannot match a fault-free fleet frame for frame.
	clean := mustRun(t, fleet.Config{
		Trials: 8, BaseSeed: 21, Workers: 2, MaxPerTrial: 30 * time.Minute,
	}, unlockFactory(bcm.CheckByteOnly))
	if clean.FramesSent == seq.FramesSent {
		t.Errorf("fault plan had no observable effect: both fleets sent %d frames", clean.FramesSent)
	}
}
