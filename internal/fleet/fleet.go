// Package fleet is the parallel multi-world campaign orchestrator: it runs
// N independent fuzzing trials, each in its own freshly constructed
// virtual world (scheduler, bus, target ECUs, campaign), across a bounded
// worker pool, and folds the outcomes into one deterministic Report.
//
// The paper's quantitative result (Table V) is a *distribution* of
// time-to-unlock over repeated runs. Each run is a fully isolated
// discrete-event simulation sharing no state with its siblings, which
// makes the workload embarrassingly parallel; what needs care is keeping
// the aggregate reproducible. The fleet guarantees that by construction:
//
//   - Per-trial seeds come from the base seed via the splitmix64 stream
//     (faults.DeriveSeed), so trial i's world is a pure function of
//     (BaseSeed, i) — worker count and interleaving cannot touch it.
//   - Results are collected into a slice indexed by trial and aggregated
//     sequentially in index order, never in completion order.
//   - No wall-clock quantity enters the Report (progress logging, which
//     does report trials/sec, goes to the logger only).
//
// A panicking trial is contained by its worker and becomes a classified
// TrialResult (StatusPanic) instead of a dead fleet; fail-fast mode stops
// dispatching new trials once any trial confirms a finding.
package fleet

import (
	"errors"
	"fmt"
	"log/slog"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/faults"
)

// World is one fully isolated trial universe: a private scheduler and a
// campaign wired to a target built on it. The factory owns construction;
// the fleet only runs the campaign and reads its counters.
type World struct {
	// Sched is the world's private virtual clock.
	Sched *clock.Scheduler
	// Campaign is the armed fuzzer attached to the world's target.
	Campaign *core.Campaign
	// Corpus, when non-nil, snapshots the trial's evolved corpus after the
	// run (guided mode: guided.Engine.CorpusFrames). The fleet records it in
	// the TrialResult and merges all trials' corpora in index order.
	Corpus func() []string
	// Reset, when non-nil, re-initializes the world in place for the given
	// trial — scheduler back to time zero, target to its as-built state,
	// campaign re-seeded — so a fleet worker can recycle it for its next
	// trial instead of rebuilding through the factory. Reset-then-run must
	// be bit-for-bit identical to fresh-build-then-run at the same spec
	// (the reuse differential tests pin this); a Reset that returns an
	// error or panics makes the worker discard the world and fall back to
	// the factory, so a failed reset costs one rebuild, never a wrong
	// result. Nil disables reuse for this world.
	Reset func(spec TrialSpec) error
}

// WorldPool retains reset-capable worlds across Run calls, so back-to-back
// fleets over the same target configuration (benchmark iterations, a
// campaign service draining trial batches) skip world construction
// entirely. Every world ever put in one pool must come from the same
// factory and configuration, because the pool hands any retained world to
// any worker; worlds without a Reset hook are never pooled. Safe for
// concurrent use; the zero value and a nil pool are both valid and empty.
type WorldPool struct {
	mu     sync.Mutex
	worlds []*World
}

// get pops a pooled world, or returns nil when the pool is empty or nil.
func (p *WorldPool) get() *World {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	n := len(p.worlds)
	if n == 0 {
		return nil
	}
	w := p.worlds[n-1]
	p.worlds[n-1] = nil
	p.worlds = p.worlds[:n-1]
	return w
}

// put returns a world to the pool. Nil pools and nil worlds are ignored.
func (p *WorldPool) put(w *World) {
	if p == nil || w == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.worlds = append(p.worlds, w)
}

// Len reports how many worlds are currently pooled.
func (p *WorldPool) Len() int {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.worlds)
}

// TrialSpec identifies one trial for a TargetFactory.
type TrialSpec struct {
	// Index is the trial index in [0, Trials).
	Index int
	// Seed is the derived per-trial seed, faults.DeriveSeed(BaseSeed,
	// Index). Factories normally seed their campaign config with it;
	// factories reproducing a legacy seed scheme may ignore it.
	Seed int64
}

// TargetFactory builds the world for one trial. It must return a fresh,
// fully independent world on every call: no shared scheduler, bus, ECU or
// RNG state, because trials run concurrently.
type TargetFactory func(spec TrialSpec) (*World, error)

// Observer receives fleet lifecycle callbacks while the campaign runs —
// the hook the observatory layer (and the future coordinator/worker
// service) builds on. TrialStarted and TrialFinished are invoked from
// worker goroutines, concurrently; implementations must be safe for
// concurrent use and must not block, or they stall the pool. A nil
// Observer in the Config disables all callbacks at the cost of one branch
// per trial.
//
// Callbacks carry only per-trial data that is a pure function of
// (BaseSeed, trial index), so an observer that records content — not
// arrival order — stays deterministic across worker counts.
type Observer interface {
	// CampaignStarted fires once before the first trial is dispatched,
	// with the validated configuration and the effective pool width.
	CampaignStarted(cfg Config, workers int)
	// TrialStarted fires when a worker picks up the trial.
	TrialStarted(spec TrialSpec)
	// TrialFinished fires after the trial's result is recorded.
	TrialFinished(res TrialResult)
	// CampaignDone fires once, after aggregation, with the final report.
	CampaignDone(rep *Report)
}

// Config tunes a fleet run.
type Config struct {
	// Trials is the number of independent campaigns (required, >= 1).
	Trials int
	// Workers bounds the pool; <= 0 means runtime.GOMAXPROCS(0).
	Workers int
	// BaseSeed roots the per-trial seed stream.
	BaseSeed int64
	// MaxPerTrial is the per-trial virtual deadline (required, > 0).
	MaxPerTrial time.Duration
	// TrialTimeout is the per-trial *wall-clock* budget (0 = none): a trial
	// whose world stops advancing virtual time — a runaway same-instant
	// event loop — is cancelled cooperatively and classified StatusStalled
	// instead of pinning its worker forever. It is the local analogue of a
	// distributed lease expiry, and like one it trades nothing for
	// determinism: a stalled world never produced a result to begin with.
	TrialTimeout time.Duration
	// FailFast stops dispatching new trials after the first trial that
	// confirms a finding. In-flight trials still complete and are
	// reported; undispatched ones are recorded as StatusSkipped. Which
	// trials were in flight depends on scheduling, so fail-fast runs trade
	// the byte-identical-report guarantee for early exit.
	FailFast bool
	// Logger, when non-nil, receives progress lines.
	Logger *slog.Logger
	// LogEvery emits one progress line per this many completed trials
	// (default 10 when a Logger is set).
	LogEvery int
	// Observer, when non-nil, receives lifecycle callbacks (trial start
	// and end, campaign start and end) from the worker goroutines.
	Observer Observer
	// DisableReuse forces every trial through the TargetFactory even when
	// worlds advertise a Reset hook — the cold path, kept as the
	// correctness oracle the reuse differential tests compare against.
	DisableReuse bool
	// Pool, when non-nil, seeds each worker's world cache from previously
	// pooled worlds and returns the caches there after the run, extending
	// reuse across Run calls. Ignored when DisableReuse is set. All runs
	// sharing a pool must use the same factory and target configuration.
	Pool *WorldPool
}

// Validation errors.
var (
	ErrNoTrials    = errors.New("fleet: Trials must be >= 1")
	ErrNoDeadline  = errors.New("fleet: MaxPerTrial must be > 0")
	ErrNilFactory  = errors.New("fleet: TargetFactory is nil")
	errNilWorld    = errors.New("fleet: factory returned a nil world")
	errWorldFields = errors.New("fleet: world is missing Sched or Campaign")
)

// Run executes the fleet and returns its deterministic report.
func Run(cfg Config, factory TargetFactory) (*Report, error) {
	if cfg.Trials < 1 {
		return nil, ErrNoTrials
	}
	if cfg.MaxPerTrial <= 0 {
		return nil, ErrNoDeadline
	}
	if factory == nil {
		return nil, ErrNilFactory
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > cfg.Trials {
		workers = cfg.Trials
	}
	logEvery := cfg.LogEvery
	if logEvery <= 0 {
		logEvery = 10
	}

	results := make([]TrialResult, cfg.Trials)
	seeds := make([]int64, cfg.Trials)
	for i := range seeds {
		seeds[i] = faults.DeriveSeed(cfg.BaseSeed, i)
	}

	obs := cfg.Observer
	if obs != nil {
		obs.CampaignStarted(cfg, workers)
	}

	var (
		wg        sync.WaitGroup
		completed atomic.Int64
		findings  atomic.Int64
		stop      = make(chan struct{})
		stopOnce  sync.Once
		start     = time.Now()
	)
	indices := make(chan int)
	go func() {
		defer close(indices)
		for i := 0; i < cfg.Trials; i++ {
			select {
			case indices <- i:
			case <-stop:
				// Fail-fast: everything not yet dispatched is skipped.
				// Only this goroutine ever touches these slots — workers
				// never received the indices.
				for j := i; j < cfg.Trials; j++ {
					results[j] = TrialResult{Trial: j, Seed: seeds[j], Status: StatusSkipped}
				}
				return
			}
		}
	}()

	reuse := !cfg.DisableReuse
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// cached is this worker's reusable world from its previous
			// trial (or the cross-run pool): reset in place and recycled
			// when it advertises Reset, discarded on any panic, error or
			// failed reset. Per-trial results stay a pure function of
			// (BaseSeed, index) because reset-then-run is pinned
			// bit-identical to fresh-build-then-run.
			var cached *World
			if reuse {
				cached = cfg.Pool.get()
				defer func() { cfg.Pool.put(cached) }()
			}
			for i := range indices {
				spec := TrialSpec{Index: i, Seed: seeds[i]}
				if obs != nil {
					obs.TrialStarted(spec)
				}
				res, keep := runTrial(spec, cfg, factory, cached)
				cached = nil
				if reuse {
					cached = keep
				}
				results[i] = res
				if obs != nil {
					obs.TrialFinished(res)
				}
				if res.Findings > 0 {
					findings.Add(int64(res.Findings))
					if cfg.FailFast {
						stopOnce.Do(func() { close(stop) })
					}
				}
				if n := completed.Add(1); cfg.Logger != nil && (n%int64(logEvery) == 0 || n == int64(cfg.Trials)) {
					elapsed := time.Since(start).Seconds()
					rate := float64(n)
					if elapsed > 0 {
						rate = float64(n) / elapsed
					}
					cfg.Logger.Info("fleet progress",
						"done", n, "total", cfg.Trials,
						"findings", findings.Load(),
						"trials_per_sec", fmt.Sprintf("%.1f", rate))
				}
			}
		}()
	}
	wg.Wait()

	rep := NewReport(cfg.BaseSeed, cfg.MaxPerTrial, results)
	rep.Workers = workers
	rep.FailFast = cfg.FailFast
	if obs != nil {
		obs.CampaignDone(rep)
	}
	return rep, nil
}

// RunTrial builds and runs one world exactly as a pooled fleet worker
// would; only cfg.MaxPerTrial (required) and cfg.TrialTimeout are
// consulted. It is exported for the distributed campaign service: a
// campaignd worker executes leased trials through it, so a trial's result
// is bit-for-bit the same whether it ran in-process or on a remote worker.
// RunTrial always takes the cold path — every call builds a fresh world
// through the factory — which is what makes it the correctness oracle the
// warm reuse path is differentially tested against.
func RunTrial(spec TrialSpec, cfg Config, factory TargetFactory) TrialResult {
	res, _ := runTrial(spec, cfg, factory, nil)
	return res
}

// tryReset re-initializes a cached world for the next trial, containing
// any panic: a reset that fails in any way just sends the trial down the
// cold factory path.
func tryReset(w *World, spec TrialSpec) (ok bool) {
	if w.Reset == nil {
		return false
	}
	defer func() {
		if recover() != nil {
			ok = false
		}
	}()
	return w.Reset(spec) == nil
}

// runTrial runs one trial, recycling cached (reset in place) when
// possible and falling back to the factory otherwise. It returns the
// result plus the world to cache for the worker's next trial — nil when
// the world panicked (poisoned), errored, or does not support Reset.
//
// A panic anywhere inside — reset, factory or simulation — is contained
// and classified; the named return keeps the partial result fields
// gathered before the panic. Wall-clock phase durations (world build vs
// campaign run) are recorded on the result for the live progress view but
// excluded from its JSON, which must stay a pure function of the seed.
func runTrial(spec TrialSpec, cfg Config, factory TargetFactory, cached *World) (res TrialResult, keep *World) {
	res = TrialResult{Trial: spec.Index, Seed: spec.Seed}
	defer func() {
		if r := recover(); r != nil {
			res.Status = StatusPanic
			res.PanicValue = fmt.Sprint(r)
			keep = nil
		}
	}()
	w := cached
	if w != nil && !tryReset(w, spec) {
		w = nil
	}
	if w == nil {
		buildStart := time.Now()
		var err error
		w, err = factory(spec)
		res.BuildWall = time.Since(buildStart)
		if err != nil {
			res.Status = StatusError
			res.Err = err.Error()
			return res, nil
		}
		if w == nil {
			res.Status = StatusError
			res.Err = errNilWorld.Error()
			return res, nil
		}
		if w.Sched == nil || w.Campaign == nil {
			res.Status = StatusError
			res.Err = errWorldFields.Error()
			return res, nil
		}
	}
	// Unconditional so a pooled world never inherits a stale budget from a
	// previous run's configuration (zero disables the bound).
	w.Campaign.SetWallBudget(cfg.TrialTimeout)
	if w.Reset != nil {
		keep = w
	}
	runStart := time.Now()
	finding, ok := w.Campaign.RunUntilFinding(cfg.MaxPerTrial)
	res.RunWall = time.Since(runStart)
	res.VirtualElapsed = w.Sched.Now()
	if w.Corpus != nil {
		res.Corpus = w.Corpus()
	}
	res.FramesSent = w.Campaign.FramesSent()
	res.SendErrors = w.Campaign.SendErrors()
	if m := w.Campaign.SendErrorsByCause(); len(m) > 0 {
		res.SendErrorsByCause = m
	}
	res.Findings = len(w.Campaign.Findings())
	if !ok {
		if w.Campaign.WallExpired() {
			res.Status = StatusStalled
		} else {
			res.Status = StatusTimeout
		}
		return res, keep
	}
	res.Status = StatusFinding
	res.TimeToFinding = finding.Elapsed
	res.Oracle = finding.Verdict.Oracle
	res.Detail = finding.Verdict.Detail
	if n := len(finding.Recent); n > 0 {
		res.TriggerID = fmt.Sprintf("%03X", uint16(finding.Recent[n-1].ID))
		res.TriggerFrames = make([]string, 0, n)
		for _, f := range finding.Recent {
			res.TriggerFrames = append(res.TriggerFrames, core.FormatCorpusFrame(f))
		}
	}
	return res, keep
}
