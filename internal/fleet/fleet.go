// Package fleet is the parallel multi-world campaign orchestrator: it runs
// N independent fuzzing trials, each in its own freshly constructed
// virtual world (scheduler, bus, target ECUs, campaign), across a bounded
// worker pool, and folds the outcomes into one deterministic Report.
//
// The paper's quantitative result (Table V) is a *distribution* of
// time-to-unlock over repeated runs. Each run is a fully isolated
// discrete-event simulation sharing no state with its siblings, which
// makes the workload embarrassingly parallel; what needs care is keeping
// the aggregate reproducible. The fleet guarantees that by construction:
//
//   - Per-trial seeds come from the base seed via the splitmix64 stream
//     (faults.DeriveSeed), so trial i's world is a pure function of
//     (BaseSeed, i) — worker count and interleaving cannot touch it.
//   - Results are collected into a slice indexed by trial and aggregated
//     sequentially in index order, never in completion order.
//   - No wall-clock quantity enters the Report (progress logging, which
//     does report trials/sec, goes to the logger only).
//
// A panicking trial is contained by its worker and becomes a classified
// TrialResult (StatusPanic) instead of a dead fleet; fail-fast mode stops
// dispatching new trials once any trial confirms a finding.
package fleet

import (
	"errors"
	"fmt"
	"log/slog"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/faults"
)

// World is one fully isolated trial universe: a private scheduler and a
// campaign wired to a target built on it. The factory owns construction;
// the fleet only runs the campaign and reads its counters.
type World struct {
	// Sched is the world's private virtual clock.
	Sched *clock.Scheduler
	// Campaign is the armed fuzzer attached to the world's target.
	Campaign *core.Campaign
	// Corpus, when non-nil, snapshots the trial's evolved corpus after the
	// run (guided mode: guided.Engine.CorpusFrames). The fleet records it in
	// the TrialResult and merges all trials' corpora in index order.
	Corpus func() []string
}

// TrialSpec identifies one trial for a TargetFactory.
type TrialSpec struct {
	// Index is the trial index in [0, Trials).
	Index int
	// Seed is the derived per-trial seed, faults.DeriveSeed(BaseSeed,
	// Index). Factories normally seed their campaign config with it;
	// factories reproducing a legacy seed scheme may ignore it.
	Seed int64
}

// TargetFactory builds the world for one trial. It must return a fresh,
// fully independent world on every call: no shared scheduler, bus, ECU or
// RNG state, because trials run concurrently.
type TargetFactory func(spec TrialSpec) (*World, error)

// Observer receives fleet lifecycle callbacks while the campaign runs —
// the hook the observatory layer (and the future coordinator/worker
// service) builds on. TrialStarted and TrialFinished are invoked from
// worker goroutines, concurrently; implementations must be safe for
// concurrent use and must not block, or they stall the pool. A nil
// Observer in the Config disables all callbacks at the cost of one branch
// per trial.
//
// Callbacks carry only per-trial data that is a pure function of
// (BaseSeed, trial index), so an observer that records content — not
// arrival order — stays deterministic across worker counts.
type Observer interface {
	// CampaignStarted fires once before the first trial is dispatched,
	// with the validated configuration and the effective pool width.
	CampaignStarted(cfg Config, workers int)
	// TrialStarted fires when a worker picks up the trial.
	TrialStarted(spec TrialSpec)
	// TrialFinished fires after the trial's result is recorded.
	TrialFinished(res TrialResult)
	// CampaignDone fires once, after aggregation, with the final report.
	CampaignDone(rep *Report)
}

// Config tunes a fleet run.
type Config struct {
	// Trials is the number of independent campaigns (required, >= 1).
	Trials int
	// Workers bounds the pool; <= 0 means runtime.GOMAXPROCS(0).
	Workers int
	// BaseSeed roots the per-trial seed stream.
	BaseSeed int64
	// MaxPerTrial is the per-trial virtual deadline (required, > 0).
	MaxPerTrial time.Duration
	// TrialTimeout is the per-trial *wall-clock* budget (0 = none): a trial
	// whose world stops advancing virtual time — a runaway same-instant
	// event loop — is cancelled cooperatively and classified StatusStalled
	// instead of pinning its worker forever. It is the local analogue of a
	// distributed lease expiry, and like one it trades nothing for
	// determinism: a stalled world never produced a result to begin with.
	TrialTimeout time.Duration
	// FailFast stops dispatching new trials after the first trial that
	// confirms a finding. In-flight trials still complete and are
	// reported; undispatched ones are recorded as StatusSkipped. Which
	// trials were in flight depends on scheduling, so fail-fast runs trade
	// the byte-identical-report guarantee for early exit.
	FailFast bool
	// Logger, when non-nil, receives progress lines.
	Logger *slog.Logger
	// LogEvery emits one progress line per this many completed trials
	// (default 10 when a Logger is set).
	LogEvery int
	// Observer, when non-nil, receives lifecycle callbacks (trial start
	// and end, campaign start and end) from the worker goroutines.
	Observer Observer
}

// Validation errors.
var (
	ErrNoTrials    = errors.New("fleet: Trials must be >= 1")
	ErrNoDeadline  = errors.New("fleet: MaxPerTrial must be > 0")
	ErrNilFactory  = errors.New("fleet: TargetFactory is nil")
	errNilWorld    = errors.New("fleet: factory returned a nil world")
	errWorldFields = errors.New("fleet: world is missing Sched or Campaign")
)

// Run executes the fleet and returns its deterministic report.
func Run(cfg Config, factory TargetFactory) (*Report, error) {
	if cfg.Trials < 1 {
		return nil, ErrNoTrials
	}
	if cfg.MaxPerTrial <= 0 {
		return nil, ErrNoDeadline
	}
	if factory == nil {
		return nil, ErrNilFactory
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > cfg.Trials {
		workers = cfg.Trials
	}
	logEvery := cfg.LogEvery
	if logEvery <= 0 {
		logEvery = 10
	}

	results := make([]TrialResult, cfg.Trials)
	seeds := make([]int64, cfg.Trials)
	for i := range seeds {
		seeds[i] = faults.DeriveSeed(cfg.BaseSeed, i)
	}

	obs := cfg.Observer
	if obs != nil {
		obs.CampaignStarted(cfg, workers)
	}

	var (
		wg        sync.WaitGroup
		completed atomic.Int64
		findings  atomic.Int64
		stop      = make(chan struct{})
		stopOnce  sync.Once
		start     = time.Now()
	)
	indices := make(chan int)
	go func() {
		defer close(indices)
		for i := 0; i < cfg.Trials; i++ {
			select {
			case indices <- i:
			case <-stop:
				// Fail-fast: everything not yet dispatched is skipped.
				// Only this goroutine ever touches these slots — workers
				// never received the indices.
				for j := i; j < cfg.Trials; j++ {
					results[j] = TrialResult{Trial: j, Seed: seeds[j], Status: StatusSkipped}
				}
				return
			}
		}
	}()

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range indices {
				spec := TrialSpec{Index: i, Seed: seeds[i]}
				if obs != nil {
					obs.TrialStarted(spec)
				}
				res := RunTrial(spec, cfg, factory)
				results[i] = res
				if obs != nil {
					obs.TrialFinished(res)
				}
				if res.Findings > 0 {
					findings.Add(int64(res.Findings))
					if cfg.FailFast {
						stopOnce.Do(func() { close(stop) })
					}
				}
				if n := completed.Add(1); cfg.Logger != nil && (n%int64(logEvery) == 0 || n == int64(cfg.Trials)) {
					elapsed := time.Since(start).Seconds()
					rate := float64(n)
					if elapsed > 0 {
						rate = float64(n) / elapsed
					}
					cfg.Logger.Info("fleet progress",
						"done", n, "total", cfg.Trials,
						"findings", findings.Load(),
						"trials_per_sec", fmt.Sprintf("%.1f", rate))
				}
			}
		}()
	}
	wg.Wait()

	rep := NewReport(cfg.BaseSeed, cfg.MaxPerTrial, results)
	rep.Workers = workers
	rep.FailFast = cfg.FailFast
	if obs != nil {
		obs.CampaignDone(rep)
	}
	return rep, nil
}

// RunTrial builds and runs one world exactly as a pooled fleet worker
// would; only cfg.MaxPerTrial (required) and cfg.TrialTimeout are
// consulted. It is exported for the distributed campaign service: a
// campaignd worker executes leased trials through it, so a trial's result
// is bit-for-bit the same whether it ran in-process or on a remote worker.
//
// A panic anywhere inside — factory or simulation — is contained and
// classified; the named return keeps the partial result fields gathered
// before the panic. Wall-clock phase durations (world build vs campaign
// run) are recorded on the result for the live progress view but excluded
// from its JSON, which must stay a pure function of the seed.
func RunTrial(spec TrialSpec, cfg Config, factory TargetFactory) (res TrialResult) {
	res = TrialResult{Trial: spec.Index, Seed: spec.Seed}
	defer func() {
		if r := recover(); r != nil {
			res.Status = StatusPanic
			res.PanicValue = fmt.Sprint(r)
		}
	}()
	buildStart := time.Now()
	w, err := factory(spec)
	res.BuildWall = time.Since(buildStart)
	if err != nil {
		res.Status = StatusError
		res.Err = err.Error()
		return res
	}
	if w == nil {
		res.Status = StatusError
		res.Err = errNilWorld.Error()
		return res
	}
	if w.Sched == nil || w.Campaign == nil {
		res.Status = StatusError
		res.Err = errWorldFields.Error()
		return res
	}
	if cfg.TrialTimeout > 0 {
		w.Campaign.SetWallBudget(cfg.TrialTimeout)
	}
	runStart := time.Now()
	finding, ok := w.Campaign.RunUntilFinding(cfg.MaxPerTrial)
	res.RunWall = time.Since(runStart)
	res.VirtualElapsed = w.Sched.Now()
	if w.Corpus != nil {
		res.Corpus = w.Corpus()
	}
	res.FramesSent = w.Campaign.FramesSent()
	res.SendErrors = w.Campaign.SendErrors()
	if m := w.Campaign.SendErrorsByCause(); len(m) > 0 {
		res.SendErrorsByCause = m
	}
	res.Findings = len(w.Campaign.Findings())
	if !ok {
		if w.Campaign.WallExpired() {
			res.Status = StatusStalled
		} else {
			res.Status = StatusTimeout
		}
		return res
	}
	res.Status = StatusFinding
	res.TimeToFinding = finding.Elapsed
	res.Oracle = finding.Verdict.Oracle
	res.Detail = finding.Verdict.Detail
	if n := len(finding.Recent); n > 0 {
		res.TriggerID = fmt.Sprintf("%03X", uint16(finding.Recent[n-1].ID))
		res.TriggerFrames = make([]string, 0, n)
		for _, f := range finding.Recent {
			res.TriggerFrames = append(res.TriggerFrames, core.FormatCorpusFrame(f))
		}
	}
	return res
}
