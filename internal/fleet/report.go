package fleet

import (
	"bytes"
	"encoding/json"
	"io"
	"sort"
	"time"

	"repro/internal/analysis"
	"repro/internal/telemetry"
)

// Trial statuses.
const (
	// StatusFinding means the trial's campaign produced at least one
	// finding before its deadline.
	StatusFinding = "finding"
	// StatusTimeout means the per-trial deadline elapsed with no finding.
	StatusTimeout = "timeout"
	// StatusStalled means the trial's wall-clock budget (Config.TrialTimeout)
	// expired while virtual time stopped advancing — a hung world, cancelled
	// instead of pinning its worker. Distinct from StatusTimeout, which is
	// the *virtual* deadline of a healthy world; a stalled trial is the
	// local analogue of an expired distributed lease.
	StatusStalled = "stalled"
	// StatusPanic means the trial's world panicked; the panic was contained
	// and classified, the rest of the fleet was unaffected.
	StatusPanic = "panic"
	// StatusError means the TargetFactory failed to build the world.
	StatusError = "error"
	// StatusSkipped means fail-fast cancellation stopped the trial before
	// it was dispatched.
	StatusSkipped = "skipped"
)

// TrialResult is the outcome of one isolated trial, fully determined by
// the trial's seed (scheduling of other trials cannot influence it).
type TrialResult struct {
	// Trial is the trial index in [0, Trials).
	Trial int `json:"trial"`
	// Seed is the campaign seed the trial ran with.
	Seed int64 `json:"seed"`
	// Status classifies the outcome (StatusFinding, StatusTimeout, ...).
	Status string `json:"status"`
	// VirtualElapsed is the virtual time the trial's world advanced.
	VirtualElapsed time.Duration `json:"virtualElapsedNanos"`
	// TimeToFinding is the virtual time of the first finding (0 unless
	// Status is StatusFinding).
	TimeToFinding time.Duration `json:"timeToFindingNanos,omitempty"`
	// Oracle and Detail describe the first finding.
	Oracle string `json:"oracle,omitempty"`
	Detail string `json:"detail,omitempty"`
	// TriggerID is the identifier of the last fuzz frame preceding the
	// first finding, in hex ("" when unknown).
	TriggerID string `json:"triggerId,omitempty"`
	// TriggerFrames holds the fuzz frames that preceded the first finding
	// (the campaign's recent-frame window) in corpus "ID#HEXDATA" form,
	// transmission order — the raw material the findings database and the
	// minimizer work from. Empty when the trial found nothing.
	TriggerFrames []string `json:"triggerFrames,omitempty"`
	// Findings is the number of oracle firings in the trial.
	Findings int `json:"findings"`
	// FramesSent and SendErrors are the trial campaign's counters.
	FramesSent uint64 `json:"framesSent"`
	SendErrors uint64 `json:"sendErrors"`
	// SendErrorsByCause breaks SendErrors down by cause.
	SendErrorsByCause map[string]uint64 `json:"sendErrorsByCause,omitempty"`
	// Corpus is the trial's evolved guided-mode corpus in "ID#HEXDATA"
	// form, admission order (nil outside guided campaigns).
	Corpus []string `json:"corpus,omitempty"`
	// PanicValue is the contained panic (StatusPanic only).
	PanicValue string `json:"panicValue,omitempty"`
	// Err is the factory error (StatusError only).
	Err string `json:"error,omitempty"`

	// BuildWall and RunWall are the wall-clock durations of the trial's
	// world-construction and campaign-run phases. They feed the live
	// progress view and the report's phase breakdown but are excluded from
	// the JSON: serialised results must be a pure function of the seed.
	BuildWall time.Duration `json:"-"`
	RunWall   time.Duration `json:"-"`
}

// AggregatedFinding is one deduplicated finding across the fleet, keyed by
// (oracle, detail, trigger frame identifier).
type AggregatedFinding struct {
	// Oracle and Detail identify the failure class.
	Oracle string `json:"oracle"`
	Detail string `json:"detail"`
	// TriggerID is the hex identifier of the frame preceding the finding.
	TriggerID string `json:"triggerId,omitempty"`
	// Count is how many trials hit this finding.
	Count int `json:"count"`
	// FirstTrial is the lowest trial index that hit it.
	FirstTrial int `json:"firstTrial"`
	// MinTimeToFinding is the fastest virtual time any trial needed.
	MinTimeToFinding time.Duration `json:"minTimeToFindingNanos"`
}

// TimeToFindingStats summarises the virtual time-to-finding distribution
// over the trials that produced findings.
type TimeToFindingStats struct {
	// Samples is the number of finding trials behind the statistics.
	Samples int `json:"samples"`
	// Mean, Median, P95, Min and Max summarise the distribution.
	Mean   time.Duration `json:"meanNanos"`
	Median time.Duration `json:"medianNanos"`
	P95    time.Duration `json:"p95Nanos"`
	Min    time.Duration `json:"minNanos"`
	Max    time.Duration `json:"maxNanos"`
	// Histogram bins the distribution (analysis.NewDurationHistogram).
	Histogram []HistogramBucket `json:"histogram,omitempty"`
}

// HistogramBucket is one serialisable bin of the time-to-finding histogram.
type HistogramBucket struct {
	// Lo and Hi bound the bin in virtual nanoseconds.
	Lo time.Duration `json:"loNanos"`
	Hi time.Duration `json:"hiNanos"`
	// Count is the number of trials in the bin.
	Count uint64 `json:"count"`
}

// Report is the deterministic fleet summary: identical configuration and
// base seed produce byte-identical JSON at any worker count, because every
// field is derived from per-trial results ordered by trial index, never by
// completion order, and no wall-clock quantity is recorded.
type Report struct {
	// BaseSeed and Trials echo the configuration.
	BaseSeed int64 `json:"baseSeed"`
	Trials   int   `json:"trials"`
	// Workers is the pool size the fleet ran with. It is an execution
	// detail, not part of the result, so it is deliberately excluded from
	// the JSON: the same fleet serialises byte-identically at any worker
	// count.
	Workers int `json:"-"`
	// FailFast records whether first-finding cancellation was armed.
	FailFast bool `json:"failFast,omitempty"`
	// MaxPerTrial is the per-trial virtual deadline.
	MaxPerTrial time.Duration `json:"maxPerTrialNanos"`

	// Completed counts trials that ran to a classified end (everything but
	// StatusSkipped); FoundFindings/TimedOut/Stalled/Panics/Errors/Skipped
	// break the fleet down by status. Stalled is omitempty so reports from
	// fleets without a TrialTimeout serialise exactly as before.
	Completed     int `json:"completed"`
	FoundFindings int `json:"foundFindings"`
	TimedOut      int `json:"timedOut"`
	Stalled       int `json:"stalled,omitempty"`
	Panics        int `json:"panics"`
	Errors        int `json:"errors"`
	Skipped       int `json:"skipped"`

	// FramesSent and SendErrors sum the per-trial counters.
	FramesSent uint64 `json:"framesSent"`
	SendErrors uint64 `json:"sendErrors"`
	// VirtualTimeTotal sums per-trial virtual elapsed time — the simulated
	// fuzzing time the fleet covered (wall time is a fraction of it).
	VirtualTimeTotal time.Duration `json:"virtualTimeTotalNanos"`

	// TimeToFinding summarises the distribution over finding trials (nil
	// when no trial found anything).
	TimeToFinding *TimeToFindingStats `json:"timeToFinding,omitempty"`
	// MergedCorpus is the union of per-trial guided corpora, deduplicated
	// in trial-index order — byte-identical at any worker count, like the
	// rest of the report (nil outside guided campaigns).
	MergedCorpus []string `json:"mergedCorpus,omitempty"`
	// Findings lists deduplicated findings sorted by (oracle, detail,
	// trigger identifier).
	Findings []AggregatedFinding `json:"findings,omitempty"`
	// Results holds every trial in index order.
	Results []TrialResult `json:"results"`
	// Telemetry is the merged fleet telemetry snapshot (the
	// telemetry.Registry JSON document).
	Telemetry json.RawMessage `json:"telemetry,omitempty"`

	// BuildWall and RunWall sum the per-trial phase wall times — the
	// build/run breakdown of where the fleet actually spent CPU. Like
	// Workers they are execution details, excluded from the JSON so the
	// report stays byte-identical across machines and worker counts.
	BuildWall time.Duration `json:"-"`
	RunWall   time.Duration `json:"-"`
}

// WriteJSON writes the report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ReadReport decodes a serialised fleet report (the inverse of WriteJSON)
// — the entry point for offline consumers like canregress add, which
// mines archived reports for trigger records.
func ReadReport(r io.Reader) (*Report, error) {
	var rep Report
	if err := json.NewDecoder(r).Decode(&rep); err != nil {
		return nil, err
	}
	return &rep, nil
}

// histogramBins is the bin count for the time-to-finding histogram.
const histogramBins = 10

// ttfBounds is the number of time-to-finding histogram bounds (Progress
// sizes its atomic bucket array from it at compile time).
const ttfBounds = 10

// timeToFindingBoundsSeconds are the telemetry histogram bucket bounds for
// fleet_time_to_finding_seconds; Table V times span seconds to an hour.
var timeToFindingBoundsSeconds = [ttfBounds]float64{1, 5, 10, 30, 60, 120, 300, 600, 1800, 3600}

// NewReport assembles the deterministic fleet report from per-trial
// results ordered by trial index. It is the single aggregation path for
// both execution models: Run feeds it the pool's result slice, and the
// distributed coordinator (internal/campaignd) feeds it results collected
// over HTTP from any worker topology — because every TrialResult is a pure
// function of its seed and aggregation is pure sequential code, the two
// serialise byte-identically. Callers may set the JSON-excluded execution
// details (Workers, FailFast) on the returned report afterwards.
func NewReport(baseSeed int64, maxPerTrial time.Duration, results []TrialResult) *Report {
	rep := &Report{
		BaseSeed:    baseSeed,
		Trials:      len(results),
		MaxPerTrial: maxPerTrial,
		Results:     results,
	}
	rep.aggregate()
	return rep
}

// aggregate folds the per-trial results (already in index order) into the
// report: status counts, summed counters, deduplicated findings, the
// time-to-finding distribution and the merged telemetry snapshot. It is
// pure sequential code, so the result is independent of how the trials
// were interleaved across workers.
func (r *Report) aggregate() {
	reg := telemetry.NewRegistry()
	mTrials := map[string]*telemetry.Counter{}
	for _, st := range []string{StatusFinding, StatusTimeout, StatusPanic, StatusError, StatusSkipped} {
		mTrials[st] = reg.Counter("fleet_trials_total", "Fleet trials by outcome.",
			telemetry.Label{Key: "status", Value: st})
	}
	// Rarer statuses (StatusStalled) register lazily so a fleet that never
	// produces one keeps its merged telemetry — and thus the report bytes —
	// unchanged.
	countTrial := func(st string) {
		c, ok := mTrials[st]
		if !ok {
			c = reg.Counter("fleet_trials_total", "Fleet trials by outcome.",
				telemetry.Label{Key: "status", Value: st})
			mTrials[st] = c
		}
		c.Inc()
	}
	mFrames := reg.Counter("fleet_frames_sent_total", "Fuzz frames transmitted across the fleet.")
	mErrs := reg.Counter("fleet_send_errors_total", "Rejected transmissions across the fleet.")
	mFindings := reg.Counter("fleet_findings_total", "Oracle firings across the fleet.")
	hTTF := reg.Histogram("fleet_time_to_finding_seconds",
		"Virtual time to first finding per finding trial.", timeToFindingBoundsSeconds[:])

	var times []time.Duration
	dedup := map[string]*AggregatedFinding{}
	seenCorpus := map[string]bool{}
	var maxVirtual time.Duration
	for _, tr := range r.Results {
		for _, line := range tr.Corpus {
			if !seenCorpus[line] {
				seenCorpus[line] = true
				r.MergedCorpus = append(r.MergedCorpus, line)
			}
		}
		switch tr.Status {
		case StatusFinding:
			r.FoundFindings++
			times = append(times, tr.TimeToFinding)
			hTTF.ObserveDuration(tr.TimeToFinding)
			key := tr.Oracle + "\x00" + tr.Detail + "\x00" + tr.TriggerID
			if f := dedup[key]; f != nil {
				f.Count++
				if tr.TimeToFinding < f.MinTimeToFinding {
					f.MinTimeToFinding = tr.TimeToFinding
				}
			} else {
				dedup[key] = &AggregatedFinding{
					Oracle: tr.Oracle, Detail: tr.Detail, TriggerID: tr.TriggerID,
					Count: 1, FirstTrial: tr.Trial, MinTimeToFinding: tr.TimeToFinding,
				}
			}
		case StatusTimeout:
			r.TimedOut++
		case StatusStalled:
			r.Stalled++
		case StatusPanic:
			r.Panics++
		case StatusError:
			r.Errors++
		case StatusSkipped:
			r.Skipped++
		}
		if tr.Status != StatusSkipped {
			r.Completed++
		}
		countTrial(tr.Status)
		r.FramesSent += tr.FramesSent
		r.SendErrors += tr.SendErrors
		r.VirtualTimeTotal += tr.VirtualElapsed
		r.BuildWall += tr.BuildWall
		r.RunWall += tr.RunWall
		mFindings.Add(uint64(tr.Findings))
		if tr.VirtualElapsed > maxVirtual {
			maxVirtual = tr.VirtualElapsed
		}
	}
	mFrames.Add(r.FramesSent)
	mErrs.Add(r.SendErrors)
	reg.Advance(maxVirtual)

	if len(times) > 0 {
		stats := analysis.RunStats{Times: times}
		ttf := &TimeToFindingStats{
			Samples: len(times),
			Mean:    stats.Mean(),
			Median:  stats.Median(),
			P95:     stats.P95(),
			Min:     stats.Min(),
			Max:     stats.Max(),
		}
		for _, b := range analysis.NewDurationHistogram(times, histogramBins).Buckets {
			ttf.Histogram = append(ttf.Histogram, HistogramBucket{Lo: b.Lo, Hi: b.Hi, Count: b.Count})
		}
		r.TimeToFinding = ttf
	}

	for _, f := range dedup {
		r.Findings = append(r.Findings, *f)
	}
	sort.Slice(r.Findings, func(i, j int) bool {
		a, b := r.Findings[i], r.Findings[j]
		if a.Oracle != b.Oracle {
			return a.Oracle < b.Oracle
		}
		if a.Detail != b.Detail {
			return a.Detail < b.Detail
		}
		return a.TriggerID < b.TriggerID
	})

	var buf bytes.Buffer
	if err := reg.WriteJSON(&buf); err == nil {
		r.Telemetry = json.RawMessage(bytes.TrimSpace(buf.Bytes()))
	}
}
