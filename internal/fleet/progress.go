package fleet

import (
	"sync/atomic"
	"time"
)

// Progress is the live, lock-free view of a running fleet campaign. It
// implements Observer: workers feed it through atomic stores and adds, so
// sampling it from an HTTP handler (or any other goroutine) never stalls
// the pool. Everything it reports is either monotonic (counters) or a
// consistent-enough snapshot for a dashboard — it is deliberately *not*
// part of the deterministic report, because wall-clock rates and ETAs
// depend on the machine.
//
// A nil *Progress is a valid no-op observer target: every method checks
// the receiver, matching the telemetry package's nil-safe hook style.
type Progress struct {
	total   atomic.Int64
	workers atomic.Int64

	started atomic.Int64 // trials dispatched to a worker
	done    atomic.Int64 // trials finished (any status)

	findings atomic.Int64 // trials that ended in StatusFinding
	timeouts atomic.Int64
	stalled  atomic.Int64 // wall-budget cancellations (StatusStalled)
	panics   atomic.Int64
	errors   atomic.Int64
	skipped  atomic.Int64 // known only at campaign end (fail-fast)

	findingsTotal atomic.Int64 // oracle firings summed over trials

	framesSent atomic.Uint64
	sendErrors atomic.Uint64

	virtualNanos    atomic.Int64 // summed per-trial virtual time
	maxVirtualNanos atomic.Int64 // deepest single trial

	buildWallNanos atomic.Int64
	runWallNanos   atomic.Int64

	startWallNanos atomic.Int64 // unix nanos at CampaignStarted
	doneFlag       atomic.Bool

	// Time-to-finding histogram so far: cumulative-style buckets over
	// timeToFindingBoundsSeconds plus +Inf, filled as finding trials land.
	ttfBuckets [len(timeToFindingBoundsSeconds) + 1]atomic.Uint64
	ttfCount   atomic.Uint64
	ttfSum     atomic.Int64 // summed nanos, for the running mean
}

// NewProgress returns an empty tracker; wire it in via Config.Observer
// (directly, or wrapped by a composite observer that forwards to it).
func NewProgress() *Progress { return &Progress{} }

// CampaignStarted implements Observer.
func (p *Progress) CampaignStarted(cfg Config, workers int) {
	if p == nil {
		return
	}
	p.total.Store(int64(cfg.Trials))
	p.workers.Store(int64(workers))
	p.startWallNanos.Store(time.Now().UnixNano())
}

// TrialStarted implements Observer.
func (p *Progress) TrialStarted(TrialSpec) {
	if p == nil {
		return
	}
	p.started.Add(1)
}

// TrialFinished implements Observer.
func (p *Progress) TrialFinished(res TrialResult) {
	if p == nil {
		return
	}
	switch res.Status {
	case StatusFinding:
		p.findings.Add(1)
		p.ttfCount.Add(1)
		p.ttfSum.Add(int64(res.TimeToFinding))
		p.ttfBuckets[ttfBucketIndex(res.TimeToFinding)].Add(1)
	case StatusTimeout:
		p.timeouts.Add(1)
	case StatusStalled:
		p.stalled.Add(1)
	case StatusPanic:
		p.panics.Add(1)
	case StatusError:
		p.errors.Add(1)
	}
	p.findingsTotal.Add(int64(res.Findings))
	p.framesSent.Add(res.FramesSent)
	p.sendErrors.Add(res.SendErrors)
	p.virtualNanos.Add(int64(res.VirtualElapsed))
	storeMax(&p.maxVirtualNanos, int64(res.VirtualElapsed))
	p.buildWallNanos.Add(int64(res.BuildWall))
	p.runWallNanos.Add(int64(res.RunWall))
	p.done.Add(1)
}

// CampaignDone implements Observer.
func (p *Progress) CampaignDone(rep *Report) {
	if p == nil {
		return
	}
	p.skipped.Store(int64(rep.Skipped))
	p.doneFlag.Store(true)
}

// ttfBucketIndex maps a time-to-finding onto its histogram bucket (the
// last index is +Inf).
func ttfBucketIndex(d time.Duration) int {
	secs := d.Seconds()
	for i, le := range timeToFindingBoundsSeconds {
		if secs <= le {
			return i
		}
	}
	return len(timeToFindingBoundsSeconds)
}

// storeMax lifts v into the atomic if it exceeds the current value.
func storeMax(a *atomic.Int64, v int64) {
	for {
		cur := a.Load()
		if v <= cur || a.CompareAndSwap(cur, v) {
			return
		}
	}
}

// ProgressBucket is one non-cumulative bin of the live time-to-finding
// histogram; LeSeconds <= 0 marks the +Inf bucket.
type ProgressBucket struct {
	LeSeconds float64 `json:"leSeconds"`
	Count     uint64  `json:"count"`
}

// ProgressSnapshot is one consistent-enough sample of a running campaign —
// the /campaign.json document. Counter fields may lag each other by a
// trial under concurrent updates; rates and the ETA are wall-clock derived
// and therefore machine-dependent by design.
type ProgressSnapshot struct {
	TrialsTotal int  `json:"trialsTotal"`
	TrialsDone  int  `json:"trialsDone"`
	InFlight    int  `json:"inFlight"`
	Workers     int  `json:"workers"`
	Done        bool `json:"done"`

	// Per-outcome counters over finished trials.
	Findings int `json:"findings"`
	Timeouts int `json:"timeouts"`
	Stalled  int `json:"stalled"`
	Panics   int `json:"panics"`
	Errors   int `json:"errors"`
	Skipped  int `json:"skipped"`

	// FindingsTotal counts oracle firings (a trial can have several).
	FindingsTotal int `json:"findingsTotal"`

	// Per-world counters summed across finished trials.
	FramesSent uint64 `json:"framesSent"`
	SendErrors uint64 `json:"sendErrors"`

	VirtualNanosTotal int64 `json:"virtualNanosTotal"`
	MaxVirtualNanos   int64 `json:"maxVirtualNanos"`

	// Wall-clock derived throughput: campaign execution speed as the
	// operator experiences it.
	WallSeconds  float64 `json:"wallSeconds"`
	ExecPerSec   float64 `json:"execPerSec"` // fuzz frames per wall second
	TrialsPerSec float64 `json:"trialsPerSec"`
	EtaSeconds   float64 `json:"etaSeconds"` // 0 when unknown or done

	// Phase wall-time breakdown summed over finished trials.
	BuildWallSeconds float64 `json:"buildWallSeconds"`
	RunWallSeconds   float64 `json:"runWallSeconds"`

	// Time-to-finding distribution so far.
	TimeToFindingCount       uint64           `json:"timeToFindingCount"`
	TimeToFindingMeanSeconds float64          `json:"timeToFindingMeanSeconds"`
	TimeToFindingHistogram   []ProgressBucket `json:"timeToFindingHistogram,omitempty"`
}

// Snapshot samples the tracker. Safe to call at any time from any
// goroutine, including while workers are mid-trial; nil returns a zero
// snapshot.
func (p *Progress) Snapshot() ProgressSnapshot {
	var s ProgressSnapshot
	if p == nil {
		return s
	}
	s.TrialsTotal = int(p.total.Load())
	s.TrialsDone = int(p.done.Load())
	s.InFlight = int(p.started.Load()) - s.TrialsDone
	if s.InFlight < 0 {
		s.InFlight = 0
	}
	s.Workers = int(p.workers.Load())
	s.Done = p.doneFlag.Load()
	s.Findings = int(p.findings.Load())
	s.Timeouts = int(p.timeouts.Load())
	s.Stalled = int(p.stalled.Load())
	s.Panics = int(p.panics.Load())
	s.Errors = int(p.errors.Load())
	s.Skipped = int(p.skipped.Load())
	s.FindingsTotal = int(p.findingsTotal.Load())
	s.FramesSent = p.framesSent.Load()
	s.SendErrors = p.sendErrors.Load()
	s.VirtualNanosTotal = p.virtualNanos.Load()
	s.MaxVirtualNanos = p.maxVirtualNanos.Load()
	s.BuildWallSeconds = time.Duration(p.buildWallNanos.Load()).Seconds()
	s.RunWallSeconds = time.Duration(p.runWallNanos.Load()).Seconds()

	if start := p.startWallNanos.Load(); start > 0 {
		s.WallSeconds = time.Since(time.Unix(0, start)).Seconds()
	}
	if s.WallSeconds > 0 {
		s.ExecPerSec = float64(s.FramesSent) / s.WallSeconds
		s.TrialsPerSec = float64(s.TrialsDone) / s.WallSeconds
	}
	if !s.Done && s.TrialsDone > 0 && s.TrialsPerSec > 0 {
		remaining := s.TrialsTotal - s.TrialsDone - s.Skipped
		if remaining > 0 {
			s.EtaSeconds = float64(remaining) / s.TrialsPerSec
		}
	}

	if n := p.ttfCount.Load(); n > 0 {
		s.TimeToFindingCount = n
		s.TimeToFindingMeanSeconds = time.Duration(p.ttfSum.Load() / int64(n)).Seconds()
		s.TimeToFindingHistogram = make([]ProgressBucket, 0, len(p.ttfBuckets))
		for i := range p.ttfBuckets {
			b := ProgressBucket{Count: p.ttfBuckets[i].Load()}
			if i < len(timeToFindingBoundsSeconds) {
				b.LeSeconds = timeToFindingBoundsSeconds[i]
			}
			s.TimeToFindingHistogram = append(s.TimeToFindingHistogram, b)
		}
	}
	return s
}
