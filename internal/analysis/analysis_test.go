package analysis

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/can"
)

func TestByteMeansUniformInput(t *testing.T) {
	var bm ByteMeans
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 66144; i++ {
		n := rng.Intn(9)
		data := make([]byte, n)
		rng.Read(data)
		bm.Add(can.MustNew(can.ID(rng.Intn(2048)), data))
	}
	if bm.Frames() != 66144 {
		t.Fatalf("Frames = %d", bm.Frames())
	}
	overall := bm.OverallMean()
	if overall < 125 || overall > 130 {
		t.Fatalf("overall mean = %v, want ~127.5 (Fig 5)", overall)
	}
	if spread := bm.Spread(); spread > 6 {
		t.Fatalf("spread = %v, uniform input should be flat", spread)
	}
}

func TestByteMeansStructuredInputIsNonLinear(t *testing.T) {
	// Constant 0x00 bytes in position 0, 0xFF in position 7 — like real
	// vehicle traffic (Fig 4).
	var bm ByteMeans
	for i := 0; i < 1000; i++ {
		bm.Add(can.MustNew(0x43A, []byte{0x00, 0x10, 0x20, 0x30, 0x40, 0x50, 0xFF, 0xFF}))
	}
	m0, _ := bm.Mean(0)
	m7, _ := bm.Mean(7)
	if m0 != 0 || m7 != 255 {
		t.Fatalf("means = %v / %v", m0, m7)
	}
	if bm.Spread() != 255 {
		t.Fatalf("spread = %v, want 255", bm.Spread())
	}
}

func TestByteMeansShortFramesOnlyCountPresentBytes(t *testing.T) {
	var bm ByteMeans
	bm.Add(can.MustNew(1, []byte{100}))
	bm.Add(can.MustNew(1, []byte{200, 50}))
	m0, n0 := bm.Mean(0)
	if n0 != 2 || m0 != 150 {
		t.Fatalf("pos0 = %v (%d samples)", m0, n0)
	}
	m1, n1 := bm.Mean(1)
	if n1 != 1 || m1 != 50 {
		t.Fatalf("pos1 = %v (%d samples)", m1, n1)
	}
	if _, n := bm.Mean(5); n != 0 {
		t.Fatal("position 5 should have no samples")
	}
}

func TestByteMeansBoundsChecks(t *testing.T) {
	var bm ByteMeans
	if m, n := bm.Mean(-1); m != 0 || n != 0 {
		t.Fatal("negative index not handled")
	}
	if m, n := bm.Mean(8); m != 0 || n != 0 {
		t.Fatal("index 8 not handled")
	}
	if bm.OverallMean() != 0 || bm.Spread() != 0 {
		t.Fatal("empty accumulator should report zeros")
	}
}

func TestFuzzSpaceCombinationsMatchPaper(t *testing.T) {
	// §V: 11-bit id + 1 payload byte = 2^19 = 524288 combinations; at 1 ms
	// each, "over eight minutes".
	s := FuzzSpace{IDs: can.NumIDs, PayloadBytes: 1}
	if got := s.Combinations(); got != 1<<19 {
		t.Fatalf("combinations = %d, want 2^19", got)
	}
	d := s.TimeToExhaust(time.Millisecond)
	if d < 8*time.Minute || d > 9*time.Minute {
		t.Fatalf("time to exhaust = %v, want ~8.7 min", d)
	}
	// "Add another data byte and all combinations transmit over a 1.5 days."
	s2 := FuzzSpace{IDs: can.NumIDs, PayloadBytes: 2}
	d2 := s2.TimeToExhaust(time.Millisecond)
	if d2 < 36*time.Hour || d2 > 38*time.Hour {
		t.Fatalf("2-byte space = %v, want ~1.5 days", d2)
	}
}

func TestFuzzSpaceString(t *testing.T) {
	s := FuzzSpace{IDs: 2048, PayloadBytes: 1}
	if s.String() == "" {
		t.Fatal("empty string")
	}
}

func TestSeriesStats(t *testing.T) {
	var s Series
	s.Name = "rpm"
	for i, v := range []float64{800, 850, 900, 850, 800} {
		s.Add(time.Duration(i)*time.Second, v)
	}
	if s.Min() != 800 || s.Max() != 900 {
		t.Fatalf("min/max = %v/%v", s.Min(), s.Max())
	}
	if s.Mean() != 840 {
		t.Fatalf("mean = %v", s.Mean())
	}
	if s.MaxStep() != 50 {
		t.Fatalf("maxstep = %v", s.MaxStep())
	}
	if sd := s.StdDev(); math.Abs(sd-37.416) > 0.01 {
		t.Fatalf("stddev = %v", sd)
	}
}

func TestSeriesEmpty(t *testing.T) {
	var s Series
	if s.Min() != 0 || s.Max() != 0 || s.Mean() != 0 || s.StdDev() != 0 || s.MaxStep() != 0 {
		t.Fatal("empty series should report zeros")
	}
}

func TestSeriesErraticVsSteady(t *testing.T) {
	var steady, erratic Series
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 200; i++ {
		steady.Add(time.Duration(i)*time.Millisecond, 850+rng.Float64()*20)
		erratic.Add(time.Duration(i)*time.Millisecond, rng.Float64()*16000-8000)
	}
	if erratic.StdDev() < steady.StdDev()*10 {
		t.Fatalf("erratic stddev %v not >> steady %v", erratic.StdDev(), steady.StdDev())
	}
}

func TestRunStats(t *testing.T) {
	// The paper's Table V first row.
	secs := []int{89, 1650, 373, 400, 223, 143, 773, 292, 21, 559, 572, 80}
	var r RunStats
	for _, s := range secs {
		r.Times = append(r.Times, time.Duration(s)*time.Second)
	}
	mean := r.Mean()
	if mean < 430*time.Second || mean > 432*time.Second {
		t.Fatalf("mean = %v, want ~431s (Table V)", mean)
	}
	if r.Min() != 21*time.Second || r.Max() != 1650*time.Second {
		t.Fatalf("min/max = %v/%v", r.Min(), r.Max())
	}
	med := r.Median()
	if med < 330*time.Second || med > 390*time.Second {
		t.Fatalf("median = %v", med)
	}
	if r.Seconds() == "" {
		t.Fatal("Seconds() empty")
	}
}

func TestRunStatsEmpty(t *testing.T) {
	var r RunStats
	if r.Mean() != 0 || r.Median() != 0 || r.Min() != 0 || r.Max() != 0 || r.Seconds() != "" {
		t.Fatal("empty RunStats should report zeros")
	}
}

func TestRunStatsMedianOdd(t *testing.T) {
	r := RunStats{Times: []time.Duration{3 * time.Second, time.Second, 2 * time.Second}}
	if r.Median() != 2*time.Second {
		t.Fatalf("median = %v", r.Median())
	}
}
