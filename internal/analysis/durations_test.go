package analysis

import (
	"testing"
	"time"
)

func secs(vals ...int) []time.Duration {
	out := make([]time.Duration, len(vals))
	for i, v := range vals {
		out[i] = time.Duration(v) * time.Second
	}
	return out
}

func TestPercentileEmpty(t *testing.T) {
	var r RunStats
	if r.Percentile(0.5) != 0 || r.P95() != 0 {
		t.Fatal("empty sample should yield 0")
	}
}

func TestPercentileSingleSample(t *testing.T) {
	r := RunStats{Times: secs(7)}
	for _, p := range []float64{0, 0.5, 0.95, 1} {
		if got := r.Percentile(p); got != 7*time.Second {
			t.Fatalf("Percentile(%v) = %v, want 7s", p, got)
		}
	}
}

func TestPercentileNearestRank(t *testing.T) {
	r := RunStats{Times: secs(10, 1, 5, 3, 8, 2, 9, 4, 7, 6)} // 1..10 shuffled
	cases := []struct {
		p    float64
		want time.Duration
	}{
		{0, time.Second},
		{0.1, time.Second},
		{0.5, 5 * time.Second},
		{0.95, 10 * time.Second},
		{1, 10 * time.Second},
	}
	for _, c := range cases {
		if got := r.Percentile(c.p); got != c.want {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestPercentileClampsOutOfRange(t *testing.T) {
	r := RunStats{Times: secs(1, 2, 3)}
	if r.Percentile(-1) != time.Second {
		t.Fatal("p<0 should clamp to the minimum")
	}
	if r.Percentile(2) != 3*time.Second {
		t.Fatal("p>1 should clamp to the maximum")
	}
}

func TestDurationHistogramEmpty(t *testing.T) {
	h := NewDurationHistogram(nil, 8)
	if h.Total != 0 || len(h.Buckets) != 0 {
		t.Fatalf("empty sample: got %d buckets, total %d", len(h.Buckets), h.Total)
	}
}

func TestDurationHistogramSingleSample(t *testing.T) {
	h := NewDurationHistogram(secs(42), 8)
	if h.Total != 1 || len(h.Buckets) != 1 {
		t.Fatalf("single sample: %d buckets, total %d", len(h.Buckets), h.Total)
	}
	b := h.Buckets[0]
	if b.Lo != 42*time.Second || b.Hi != 42*time.Second || b.Count != 1 {
		t.Fatalf("bucket = %+v", b)
	}
}

func TestDurationHistogramAllEqual(t *testing.T) {
	h := NewDurationHistogram(secs(5, 5, 5, 5), 8)
	if len(h.Buckets) != 1 || h.Buckets[0].Count != 4 {
		t.Fatalf("all-equal sample should collapse to one bucket: %+v", h.Buckets)
	}
}

func TestDurationHistogramBinsAndCoverage(t *testing.T) {
	times := secs(0, 1, 2, 3, 4, 5, 6, 7, 8, 9)
	h := NewDurationHistogram(times, 3)
	if len(h.Buckets) != 3 {
		t.Fatalf("buckets = %d, want 3", len(h.Buckets))
	}
	var total uint64
	for i, b := range h.Buckets {
		if b.Hi <= b.Lo {
			t.Fatalf("bucket %d degenerate: %+v", i, b)
		}
		total += b.Count
	}
	if total != uint64(len(times)) {
		t.Fatalf("histogram lost samples: %d of %d", total, len(times))
	}
	// Extremes land in the outermost bins.
	if h.Buckets[0].Count == 0 || h.Buckets[2].Count == 0 {
		t.Fatalf("outer buckets empty: %+v", h.Buckets)
	}
	if h.Buckets[2].Hi != 9*time.Second {
		t.Fatalf("last bucket must close at the max: %+v", h.Buckets[2])
	}
}

func TestDurationHistogramBinsClamp(t *testing.T) {
	h := NewDurationHistogram(secs(1, 9), 0)
	if len(h.Buckets) != 1 {
		t.Fatalf("bins<1 should clamp to 1, got %d buckets", len(h.Buckets))
	}
	if h.Buckets[0].Count != 2 {
		t.Fatalf("bucket = %+v", h.Buckets[0])
	}
}
