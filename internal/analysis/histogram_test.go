package analysis

import (
	"math/rand"
	"testing"

	"repro/internal/can"
)

func TestHistogramUniformInputPasses(t *testing.T) {
	var h ByteHistogram
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100000; i++ {
		h.AddByte(byte(rng.Intn(256)))
	}
	if !h.UniformP99() {
		t.Fatalf("uniform bytes failed the chi-square check: chi=%v", h.ChiSquare())
	}
	if e := h.Entropy(); e < 7.99 {
		t.Fatalf("entropy = %v, want ~8 bits", e)
	}
}

func TestHistogramStructuredInputFails(t *testing.T) {
	var h ByteHistogram
	for i := 0; i < 10000; i++ {
		h.Add(can.MustNew(0x43A, []byte{0x00, 0x00, 0x10, 0x20, 0xFF, 0xFF, 0xFF, 0xFF}))
	}
	if h.UniformP99() {
		t.Fatal("constant structured bytes passed the uniformity check")
	}
	if e := h.Entropy(); e > 3 {
		t.Fatalf("entropy = %v for a 5-symbol stream", e)
	}
}

func TestHistogramCountsAndTotal(t *testing.T) {
	var h ByteHistogram
	h.Add(can.MustNew(1, []byte{0xAA, 0xAA, 0xBB}))
	if h.Total() != 3 {
		t.Fatalf("total = %d", h.Total())
	}
	if h.Count(0xAA) != 2 || h.Count(0xBB) != 1 || h.Count(0xCC) != 0 {
		t.Fatal("counts wrong")
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h ByteHistogram
	if h.ChiSquare() != 0 || h.Entropy() != 0 || h.UniformP99() {
		t.Fatal("empty histogram should report zeros and fail uniformity")
	}
}

func TestHistogramChiSquareNearDF(t *testing.T) {
	// For genuinely uniform data the statistic concentrates near 255.
	var h ByteHistogram
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 1_000_000; i++ {
		h.AddByte(byte(rng.Intn(256)))
	}
	chi := h.ChiSquare()
	if chi < 150 || chi > 400 {
		t.Fatalf("chi-square = %v, implausibly far from 255", chi)
	}
}
