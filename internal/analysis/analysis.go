// Package analysis provides the measurement tools behind the paper's
// evaluation: per-byte-position mean values over large captures (Figs 4 and
// 5, the fuzzer's data-integrity check), the combinatorial size of the CAN
// fuzzing space (Table III and the §V discussion), time-series capture of
// decoded signals (Figs 6 and 7), and summary statistics for repeated runs
// (Table V).
package analysis

import (
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/can"
)

// ByteMeans accumulates the mean data-byte value for each of the eight
// payload byte positions over a stream of frames — the integrity check the
// paper's fuzzer performs ("Figure 4 shows the mean data byte value for
// each byte position, calculated from 100,000 CAN packets").
type ByteMeans struct {
	sums   [can.MaxDataLen]float64
	counts [can.MaxDataLen]uint64
	frames uint64
}

// Add accumulates one frame. Only the bytes the frame actually carries
// contribute to their positions.
func (b *ByteMeans) Add(f can.Frame) {
	b.frames++
	n := int(f.Len)
	if n > can.MaxDataLen {
		n = can.MaxDataLen
	}
	for i := 0; i < n; i++ {
		b.sums[i] += float64(f.Data[i])
		b.counts[i]++
	}
}

// Frames returns the number of frames accumulated.
func (b *ByteMeans) Frames() uint64 { return b.frames }

// Mean returns the mean value of byte position i (0-based) and the number
// of samples behind it.
func (b *ByteMeans) Mean(i int) (mean float64, samples uint64) {
	if i < 0 || i >= can.MaxDataLen || b.counts[i] == 0 {
		return 0, 0
	}
	return b.sums[i] / float64(b.counts[i]), b.counts[i]
}

// Means returns all eight position means (positions with no samples are 0).
func (b *ByteMeans) Means() [can.MaxDataLen]float64 {
	var out [can.MaxDataLen]float64
	for i := range out {
		out[i], _ = b.Mean(i)
	}
	return out
}

// OverallMean returns the mean across every sampled byte in every position
// (the paper reports 127 for the fuzzer's output).
func (b *ByteMeans) OverallMean() float64 {
	var sum float64
	var n uint64
	for i := 0; i < can.MaxDataLen; i++ {
		sum += b.sums[i]
		n += b.counts[i]
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Spread returns max(mean)-min(mean) over positions that have samples: a
// flatness measure. Uniform fuzz output has a small spread; real vehicle
// traffic (Fig 4) has a large one.
func (b *ByteMeans) Spread() float64 {
	lo, hi := math.Inf(1), math.Inf(-1)
	for i := 0; i < can.MaxDataLen; i++ {
		if b.counts[i] == 0 {
			continue
		}
		m := b.sums[i] / float64(b.counts[i])
		lo = math.Min(lo, m)
		hi = math.Max(hi, m)
	}
	if hi < lo {
		return 0
	}
	return hi - lo
}

// --- Combinatorics (Table III / §V) -------------------------------------

// FuzzSpace describes a fuzzing parameter space over classic CAN frames.
type FuzzSpace struct {
	// IDs is the number of distinct identifiers fuzzed.
	IDs uint64
	// PayloadBytes is the fixed payload length in bytes.
	PayloadBytes int
}

// Combinations returns the number of distinct frames in the space:
// IDs * 256^PayloadBytes.
func (s FuzzSpace) Combinations() uint64 {
	n := s.IDs
	for i := 0; i < s.PayloadBytes; i++ {
		n *= 256
	}
	return n
}

// TimeToExhaust returns how long transmitting every combination takes at
// one frame per period.
func (s FuzzSpace) TimeToExhaust(period time.Duration) time.Duration {
	return time.Duration(s.Combinations()) * period
}

// String summarises the space the way §V does ("A standard CAN packet with
// a 11-bit id and a one byte payload has half a million packet
// combinations (2^19)").
func (s FuzzSpace) String() string {
	return fmt.Sprintf("%d ids x %d payload bytes = %d combinations",
		s.IDs, s.PayloadBytes, s.Combinations())
}

// --- Signal time series (Figs 6/7) ---------------------------------------

// Sample is one point of a signal time series.
type Sample struct {
	// Time is the virtual sampling instant.
	Time time.Duration
	// Value is the signal value at that instant.
	Value float64
}

// Series is a named signal trace.
type Series struct {
	// Name identifies the signal ("EngineRPM").
	Name string
	// Samples holds the trace in time order.
	Samples []Sample
}

// Add appends a sample.
func (s *Series) Add(t time.Duration, v float64) {
	s.Samples = append(s.Samples, Sample{Time: t, Value: v})
}

// Min returns the smallest sampled value (0 for an empty series).
func (s *Series) Min() float64 {
	if len(s.Samples) == 0 {
		return 0
	}
	m := s.Samples[0].Value
	for _, p := range s.Samples[1:] {
		m = math.Min(m, p.Value)
	}
	return m
}

// Max returns the largest sampled value (0 for an empty series).
func (s *Series) Max() float64 {
	if len(s.Samples) == 0 {
		return 0
	}
	m := s.Samples[0].Value
	for _, p := range s.Samples[1:] {
		m = math.Max(m, p.Value)
	}
	return m
}

// Mean returns the arithmetic mean of the samples.
func (s *Series) Mean() float64 {
	if len(s.Samples) == 0 {
		return 0
	}
	var sum float64
	for _, p := range s.Samples {
		sum += p.Value
	}
	return sum / float64(len(s.Samples))
}

// StdDev returns the population standard deviation — the erratic-signal
// measure separating Fig 7 from Fig 6.
func (s *Series) StdDev() float64 {
	n := len(s.Samples)
	if n == 0 {
		return 0
	}
	mean := s.Mean()
	var sum float64
	for _, p := range s.Samples {
		d := p.Value - mean
		sum += d * d
	}
	return math.Sqrt(sum / float64(n))
}

// MaxStep returns the largest absolute change between consecutive samples
// ("rapid variation in signals induced by the malformed CAN data").
func (s *Series) MaxStep() float64 {
	var m float64
	for i := 1; i < len(s.Samples); i++ {
		d := math.Abs(s.Samples[i].Value - s.Samples[i-1].Value)
		m = math.Max(m, d)
	}
	return m
}

// --- Run statistics (Table V) --------------------------------------------

// RunStats summarises a set of repeated experiment durations, as Table V
// does for the twelve unlock runs.
type RunStats struct {
	// Times holds the individual run durations.
	Times []time.Duration
}

// Mean returns the arithmetic mean duration (Table V's "Mean (s)" column).
func (r RunStats) Mean() time.Duration {
	if len(r.Times) == 0 {
		return 0
	}
	var sum time.Duration
	for _, t := range r.Times {
		sum += t
	}
	return sum / time.Duration(len(r.Times))
}

// Median returns the median duration.
func (r RunStats) Median() time.Duration {
	if len(r.Times) == 0 {
		return 0
	}
	sorted := make([]time.Duration, len(r.Times))
	copy(sorted, r.Times)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	mid := len(sorted) / 2
	if len(sorted)%2 == 1 {
		return sorted[mid]
	}
	return (sorted[mid-1] + sorted[mid]) / 2
}

// Min returns the shortest run.
func (r RunStats) Min() time.Duration {
	if len(r.Times) == 0 {
		return 0
	}
	m := r.Times[0]
	for _, t := range r.Times[1:] {
		if t < m {
			m = t
		}
	}
	return m
}

// Max returns the longest run.
func (r RunStats) Max() time.Duration {
	if len(r.Times) == 0 {
		return 0
	}
	m := r.Times[0]
	for _, t := range r.Times[1:] {
		if t > m {
			m = t
		}
	}
	return m
}

// Seconds renders the run list the way Table V prints it: whole seconds,
// comma separated.
func (r RunStats) Seconds() string {
	out := ""
	for i, t := range r.Times {
		if i > 0 {
			out += ", "
		}
		out += fmt.Sprintf("%d", int(t.Round(time.Second)/time.Second))
	}
	return out
}
