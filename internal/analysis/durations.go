package analysis

import (
	"math"
	"sort"
	"time"
)

// Duration-distribution tools. Table V prints twelve raw run times; a
// fleet run produces hundreds or thousands, which need the distribution
// view instead: quantiles and a binned histogram of time-to-finding.

// Percentile returns the p-quantile of the run times for p in [0, 1],
// using the nearest-rank method on the sorted sample (p=0 is the minimum,
// p=1 the maximum). An empty sample returns 0; p outside [0, 1] is
// clamped.
func (r RunStats) Percentile(p float64) time.Duration {
	n := len(r.Times)
	if n == 0 {
		return 0
	}
	if math.IsNaN(p) || p < 0 {
		p = 0
	} else if p > 1 {
		p = 1
	}
	sorted := make([]time.Duration, n)
	copy(sorted, r.Times)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	rank := int(math.Ceil(p * float64(n)))
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}

// P95 returns the 95th-percentile run time.
func (r RunStats) P95() time.Duration { return r.Percentile(0.95) }

// DurationBucket is one bin of a DurationHistogram.
type DurationBucket struct {
	// Lo and Hi bound the bin: samples t with Lo <= t < Hi fall in it
	// (the last bin is closed, Lo <= t <= Hi).
	Lo, Hi time.Duration
	// Count is the number of samples in the bin.
	Count uint64
}

// DurationHistogram is an equal-width binning of a duration sample — the
// fleet's time-to-finding distribution in displayable form.
type DurationHistogram struct {
	// Buckets holds the bins in ascending order. Empty for an empty sample.
	Buckets []DurationBucket
	// Total is the sample size.
	Total int
}

// NewDurationHistogram bins the samples into at most bins equal-width
// buckets spanning [min, max]. Edge cases collapse rather than error: an
// empty sample yields an empty histogram, and a single sample or an
// all-equal sample (min == max) yields one bucket holding everything.
// bins < 1 is treated as 1.
func NewDurationHistogram(times []time.Duration, bins int) DurationHistogram {
	h := DurationHistogram{Total: len(times)}
	if len(times) == 0 {
		return h
	}
	if bins < 1 {
		bins = 1
	}
	lo, hi := times[0], times[0]
	for _, t := range times[1:] {
		if t < lo {
			lo = t
		}
		if t > hi {
			hi = t
		}
	}
	if lo == hi {
		h.Buckets = []DurationBucket{{Lo: lo, Hi: hi, Count: uint64(len(times))}}
		return h
	}
	span := hi - lo
	width := span / time.Duration(bins)
	if span%time.Duration(bins) != 0 {
		width++ // round up so bins*width covers the span
	}
	h.Buckets = make([]DurationBucket, bins)
	for i := range h.Buckets {
		h.Buckets[i].Lo = lo + time.Duration(i)*width
		h.Buckets[i].Hi = h.Buckets[i].Lo + width
	}
	h.Buckets[bins-1].Hi = hi
	for _, t := range times {
		i := int((t - lo) / width)
		if i >= bins {
			i = bins - 1
		}
		h.Buckets[i].Count++
	}
	return h
}
