package analysis

import (
	"math"

	"repro/internal/can"
)

// ByteHistogram counts byte values over a frame stream — the distribution
// behind the Fig 4/5 means. Where the paper eyeballs "an even spread of
// byte values", the histogram gives the quantitative version: a chi-square
// uniformity statistic.
type ByteHistogram struct {
	counts [256]uint64
	total  uint64
}

// Add accumulates every payload byte of one frame.
func (h *ByteHistogram) Add(f can.Frame) {
	n := int(f.Len)
	if n > can.MaxDataLen {
		n = can.MaxDataLen
	}
	for _, b := range f.Data[:n] {
		h.counts[b]++
		h.total++
	}
}

// AddByte accumulates one raw byte.
func (h *ByteHistogram) AddByte(b byte) {
	h.counts[b]++
	h.total++
}

// Total returns the number of bytes accumulated.
func (h *ByteHistogram) Total() uint64 { return h.total }

// Count returns the occurrences of one byte value.
func (h *ByteHistogram) Count(b byte) uint64 { return h.counts[b] }

// ChiSquare returns the chi-square statistic against the uniform
// distribution over 256 values (255 degrees of freedom). For genuinely
// uniform data the expected value is ~255; structured vehicle traffic
// scores orders of magnitude higher.
func (h *ByteHistogram) ChiSquare() float64 {
	if h.total == 0 {
		return 0
	}
	expected := float64(h.total) / 256
	var chi float64
	for _, c := range h.counts {
		d := float64(c) - expected
		chi += d * d / expected
	}
	return chi
}

// UniformP99 reports whether the stream passes a uniformity check at
// roughly the 99th percentile: for 255 degrees of freedom the chi-square
// critical value is ~310.5. True means "consistent with uniform" — the
// pass criterion for the fuzzer's Fig 5 integrity check.
func (h *ByteHistogram) UniformP99() bool {
	const critical255df = 310.5
	return h.total > 0 && h.ChiSquare() < critical255df
}

// Entropy returns the Shannon entropy of the byte distribution in bits
// (8.0 for perfectly uniform; real vehicle traffic is far lower).
func (h *ByteHistogram) Entropy() float64 {
	if h.total == 0 {
		return 0
	}
	var e float64
	for _, c := range h.counts {
		if c == 0 {
			continue
		}
		p := float64(c) / float64(h.total)
		e -= p * math.Log2(p)
	}
	return e
}
