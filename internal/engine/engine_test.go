package engine

import (
	"testing"
	"time"

	"repro/internal/bus"
	"repro/internal/can"
	"repro/internal/clock"
	"repro/internal/ecu"
	"repro/internal/signal"
)

func rig(t *testing.T) (*clock.Scheduler, *bus.Bus, *Engine, *bus.Port) {
	t.Helper()
	s := clock.New()
	b := bus.New(s)
	e := ecu.New("engine", s, b.Connect("engine"))
	eng := New(e)
	peer := b.Connect("peer")
	return s, b, eng, peer
}

func TestIdleSettlesNearBase(t *testing.T) {
	s, _, eng, _ := rig(t)
	s.RunUntil(5 * time.Second)
	rpm := eng.RPM()
	if rpm < 700 || rpm > 1000 {
		t.Fatalf("idle RPM = %v, want ~850", rpm)
	}
}

func TestIdleWobbles(t *testing.T) {
	s, _, eng, _ := rig(t)
	s.RunUntil(2 * time.Second)
	seen := map[int]bool{}
	for i := 0; i < 50; i++ {
		s.RunFor(10 * time.Millisecond)
		seen[int(eng.RPM())] = true
	}
	if len(seen) < 5 {
		t.Fatalf("idle shows no combustion variation: %d distinct values", len(seen))
	}
}

func TestBroadcastsEngineData(t *testing.T) {
	s, _, _, peer := rig(t)
	db := signal.VehicleDB()
	var rpms []float64
	peer.SetReceiver(func(m bus.Message) {
		if m.Frame.ID == signal.IDEngineData {
			vals, _ := db.Decode(m.Frame)
			rpms = append(rpms, vals["EngineRPM"])
		}
	})
	s.RunUntil(time.Second)
	if len(rpms) < 90 { // 10 ms cycle => ~100 frames/s
		t.Fatalf("got %d EngineData frames, want ~100", len(rpms))
	}
	last := rpms[len(rpms)-1]
	if last < 600 || last > 1200 {
		t.Fatalf("broadcast RPM = %v, implausible at idle", last)
	}
}

func TestThrottleRaisesRPM(t *testing.T) {
	s, _, eng, _ := rig(t)
	s.RunUntil(2 * time.Second)
	eng.SetThrottle(50)
	s.RunUntil(5 * time.Second)
	if eng.RPM() < 2000 {
		t.Fatalf("RPM = %v at 50%% throttle, want > 2000", eng.RPM())
	}
	eng.SetThrottle(0)
	s.RunUntil(10 * time.Second)
	if eng.RPM() > 1100 {
		t.Fatalf("RPM = %v after closing throttle", eng.RPM())
	}
}

func TestThrottleClamped(t *testing.T) {
	_, _, eng, _ := rig(t)
	eng.SetThrottle(-10)
	if eng.throttle != 0 {
		t.Fatal("negative throttle not clamped")
	}
	eng.SetThrottle(200)
	if eng.throttle != 100 {
		t.Fatal("throttle not clamped to 100")
	}
}

func TestCoolantWarmsUp(t *testing.T) {
	s, _, eng, _ := rig(t)
	cold := eng.Coolant()
	s.RunUntil(60 * time.Second)
	warm := eng.Coolant()
	if warm <= cold+20 {
		t.Fatalf("coolant barely warmed: %v -> %v", cold, warm)
	}
	if warm > 95 {
		t.Fatalf("coolant overshot: %v", warm)
	}
}

func TestACLoadRaisesIdle(t *testing.T) {
	s, _, eng, peer := rig(t)
	s.RunUntil(3 * time.Second)
	base := eng.RPM()

	db := signal.VehicleDB()
	def, _ := db.ByName("Climate")
	f, err := def.Encode(map[string]float64{"ACCompressor": 1})
	if err != nil {
		t.Fatal(err)
	}
	peer.Send(f)
	s.RunUntil(6 * time.Second)
	if !eng.ACLoad() {
		t.Fatal("AC load not registered")
	}
	if eng.RPM() < base+80 {
		t.Fatalf("idle did not rise under AC load: %v -> %v", base, eng.RPM())
	}
}

func TestFuzzedClimateFramePerturbsIdle(t *testing.T) {
	// A malformed frame on the climate identifier flips the compressor
	// state: the unvalidated-input path behind the paper's erratic idle.
	s, _, eng, peer := rig(t)
	s.RunUntil(3 * time.Second)
	if eng.ACLoad() {
		t.Fatal("AC load set before fuzzing")
	}
	// Raw garbage with bit 0 of byte 0 set.
	peer.Send(can.MustNew(signal.IDClimate, []byte{0xFF, 0xEE, 0xDD}))
	s.RunUntil(4 * time.Second)
	if !eng.ACLoad() {
		t.Fatal("fuzzed frame did not flip AC load")
	}
}
