// Package engine models the engine control ECU of the simulated target
// vehicle: an idle-speed governor with deterministic combustion wobble,
// coolant warm-up, and the periodic EngineData broadcast the instrument
// cluster's tachometer follows.
//
// The paper observed "erratic engine idling RPM" while fuzzing the real
// vehicle (§VI). The path that reproduces it here: the engine ECU trusts
// load-request inputs from the bus (air-conditioning compressor load) and
// bumps its idle target accordingly, so malformed frames on those
// identifiers modulate the real RPM, which the cluster then displays.
package engine

import (
	"time"

	"repro/internal/bus"
	"repro/internal/ecu"
	"repro/internal/signal"
)

// Idle governor constants.
const (
	baseIdleRPM   = 850.0
	acIdleBumpRPM = 150.0
	maxRPM        = 8000.0
	// wobbleAmpRPM is the amplitude of normal combustion variation at idle.
	wobbleAmpRPM = 18.0
	// coolantAmbient and coolantTarget bound the warm-up curve.
	coolantAmbient = 20.0
	coolantTarget  = 90.0
)

// Engine is the engine-control ECU.
type Engine struct {
	ecu *ecu.ECU
	db  *signal.Database

	rpm      float64
	throttle float64
	coolant  float64
	acLoad   bool
	alive    uint8
	// lcg drives the deterministic idle wobble.
	lcg uint64
}

// New builds the engine application on an existing ECU runtime and starts
// its broadcast schedule.
func New(e *ecu.ECU) *Engine {
	eng := &Engine{
		ecu:     e,
		db:      signal.VehicleDB(),
		rpm:     baseIdleRPM,
		coolant: coolantAmbient,
		lcg:     0x9E3779B97F4A7C15,
	}
	// React to climate load requests: a trusted input, fuzzable.
	e.Handle(signal.IDClimate, eng.onClimate)
	e.Periodic(10*time.Millisecond, eng.tick)
	// Volatile governor state re-initialises on power-up (a controller
	// reset returns the idle target to base; coolant is physical and
	// persists).
	e.OnPowerOn(func() {
		eng.rpm = baseIdleRPM
		eng.acLoad = false
		eng.throttle = 0
	})
	return eng
}

// ECU returns the underlying ECU runtime.
func (eng *Engine) ECU() *ecu.ECU { return eng.ecu }

// RPM returns the current true engine speed.
func (eng *Engine) RPM() float64 { return eng.rpm }

// Coolant returns the current coolant temperature in degC.
func (eng *Engine) Coolant() float64 { return eng.coolant }

// ACLoad reports whether the idle governor sees an A/C compressor load.
func (eng *Engine) ACLoad() bool { return eng.acLoad }

// SetThrottle sets the accelerator position in percent (driver input).
func (eng *Engine) SetThrottle(pct float64) {
	if pct < 0 {
		pct = 0
	}
	if pct > 100 {
		pct = 100
	}
	eng.throttle = pct
}

// onClimate ingests the A/C compressor state. The handler trusts the frame
// contents — fuzzed frames on this identifier flip the compressor load and
// perturb idle, the "additional logic to ignore nonsensical CAN message
// values" gap the paper calls out.
func (eng *Engine) onClimate(m bus.Message) {
	def, ok := eng.db.ByID(signal.IDClimate)
	if !ok {
		return
	}
	vals := def.Decode(m.Frame)
	eng.acLoad = vals["ACCompressor"] >= 0.5
}

// nextNoise returns a deterministic value in [-1, 1).
func (eng *Engine) nextNoise() float64 {
	eng.lcg = eng.lcg*6364136223846793005 + 1442695040888963407
	return float64(int64(eng.lcg>>11))/float64(1<<52) - 1
}

// tick advances the engine model 10 ms and broadcasts EngineData.
func (eng *Engine) tick() {
	target := baseIdleRPM
	if eng.acLoad {
		target += acIdleBumpRPM
	}
	target += eng.throttle / 100 * (maxRPM - baseIdleRPM)

	// First-order approach to target plus combustion wobble.
	eng.rpm += (target - eng.rpm) * 0.08
	eng.rpm += eng.nextNoise() * wobbleAmpRPM
	if eng.rpm < 0 {
		eng.rpm = 0
	}
	if eng.rpm > maxRPM {
		eng.rpm = maxRPM
	}

	// Coolant warms toward target, faster off idle.
	rate := 0.002 + eng.rpm/maxRPM*0.01
	eng.coolant += (coolantTarget - eng.coolant) * rate

	eng.alive = (eng.alive + 1) & 0x0F
	def, ok := eng.db.ByID(signal.IDEngineData)
	if !ok {
		return
	}
	f, err := def.Encode(map[string]float64{
		"EngineRPM":    eng.rpm,
		"ThrottlePos":  eng.throttle,
		"CoolantTemp":  eng.coolant,
		"EngineAlive":  float64(eng.alive),
		"EngineStatus": 1, // running
	})
	if err != nil {
		eng.ecu.LogFault("P0600", "engine data encode: "+err.Error())
		return
	}
	// Ignore transmit errors: a saturated bus drops low-priority frames,
	// which the cluster's timeout supervision then surfaces.
	_ = eng.ecu.Send(f)
}
