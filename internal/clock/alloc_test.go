package clock

import (
	"testing"
	"time"
)

// The scheduler is the hot core of the simulator: one event per transmitted
// frame. These tests turn the zero-allocation design (pooled event nodes,
// hand-rolled heap, handle-free AtEvent/AfterEvent) into failing tests
// rather than benchmark footnotes.

// TestScheduleFireZeroAlloc pins the steady-state schedule/fire cycle at
// zero heap allocations: once the node pool and heap storage are warm,
// AfterEvent plus Step must not allocate.
func TestScheduleFireZeroAlloc(t *testing.T) {
	s := New()
	fn := func() {}
	for i := 0; i < 16; i++ { // warm the free list and heap storage
		s.AfterEvent(time.Millisecond, fn)
	}
	for s.Step() {
	}
	allocs := testing.AllocsPerRun(1000, func() {
		s.AfterEvent(time.Millisecond, fn)
		s.Step()
	})
	if allocs != 0 {
		t.Fatalf("steady-state AfterEvent+Step allocates %v per cycle, want 0", allocs)
	}
}

// TestEveryReArmZeroAlloc pins the periodic-timer re-arm at zero heap
// allocations: after the initial tick closure, each subsequent tick reuses
// the recycled pool node.
func TestEveryReArmZeroAlloc(t *testing.T) {
	s := New()
	ticks := 0
	tmr := s.Every(time.Millisecond, func() { ticks++ })
	s.Step() // first tick: warm the pool
	allocs := testing.AllocsPerRun(1000, func() {
		s.Step()
	})
	tmr.Stop()
	if allocs != 0 {
		t.Fatalf("periodic re-arm allocates %v per tick, want 0", allocs)
	}
	if ticks < 1000 {
		t.Fatalf("ticks = %d, want >= 1000", ticks)
	}
}
