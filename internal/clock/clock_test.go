package clock

import (
	"testing"
	"time"
)

func TestSchedulerStartsAtZero(t *testing.T) {
	s := New()
	if got := s.Now(); got != 0 {
		t.Fatalf("Now() = %v, want 0", got)
	}
}

func TestAfterFiresAtCorrectInstant(t *testing.T) {
	s := New()
	var fired time.Duration = -1
	s.After(10*time.Millisecond, func() { fired = s.Now() })
	s.RunUntil(time.Second)
	if fired != 10*time.Millisecond {
		t.Fatalf("event fired at %v, want 10ms", fired)
	}
}

func TestAtSchedulesAbsolute(t *testing.T) {
	s := New()
	var fired time.Duration = -1
	s.At(25*time.Millisecond, func() { fired = s.Now() })
	s.RunUntil(time.Second)
	if fired != 25*time.Millisecond {
		t.Fatalf("event fired at %v, want 25ms", fired)
	}
}

func TestAtPanicsOnPast(t *testing.T) {
	s := New()
	s.After(10*time.Millisecond, func() {})
	s.RunUntil(20 * time.Millisecond)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic scheduling in the past")
		}
	}()
	s.At(5*time.Millisecond, func() {})
}

func TestAtPanicsOnNilEvent(t *testing.T) {
	s := New()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on nil event")
		}
	}()
	s.At(0, nil)
}

func TestSameInstantFIFOOrder(t *testing.T) {
	s := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(5*time.Millisecond, func() { order = append(order, i) })
	}
	s.RunUntil(time.Second)
	for i, v := range order {
		if v != i {
			t.Fatalf("order[%d] = %d, want %d (FIFO tie-break violated)", i, v, i)
		}
	}
}

func TestInterleavedOrdering(t *testing.T) {
	s := New()
	var order []string
	s.At(30*time.Millisecond, func() { order = append(order, "c") })
	s.At(10*time.Millisecond, func() { order = append(order, "a") })
	s.At(20*time.Millisecond, func() { order = append(order, "b") })
	s.RunUntil(time.Second)
	want := []string{"a", "b", "c"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestRunUntilAdvancesNowToDeadline(t *testing.T) {
	s := New()
	s.RunUntil(100 * time.Millisecond)
	if s.Now() != 100*time.Millisecond {
		t.Fatalf("Now() = %v, want 100ms", s.Now())
	}
}

func TestRunUntilDoesNotFireLaterEvents(t *testing.T) {
	s := New()
	fired := false
	s.After(200*time.Millisecond, func() { fired = true })
	s.RunUntil(100 * time.Millisecond)
	if fired {
		t.Fatal("event beyond deadline fired")
	}
	s.RunUntil(300 * time.Millisecond)
	if !fired {
		t.Fatal("event not fired after extending deadline")
	}
}

func TestEventAtDeadlineBoundaryFires(t *testing.T) {
	s := New()
	fired := false
	s.After(100*time.Millisecond, func() { fired = true })
	s.RunUntil(100 * time.Millisecond)
	if !fired {
		t.Fatal("event exactly at deadline should fire")
	}
}

func TestTimerStop(t *testing.T) {
	s := New()
	fired := false
	timer := s.After(10*time.Millisecond, func() { fired = true })
	if !timer.Stop() {
		t.Fatal("Stop() = false for pending timer")
	}
	if timer.Stop() {
		t.Fatal("second Stop() should return false")
	}
	s.RunUntil(time.Second)
	if fired {
		t.Fatal("stopped timer fired")
	}
}

func TestStopAfterFireReturnsFalse(t *testing.T) {
	s := New()
	timer := s.After(10*time.Millisecond, func() {})
	s.RunUntil(time.Second)
	if timer.Stop() {
		t.Fatal("Stop() after firing should return false")
	}
}

func TestEveryFiresPeriodically(t *testing.T) {
	s := New()
	var times []time.Duration
	s.Every(10*time.Millisecond, func() { times = append(times, s.Now()) })
	s.RunUntil(55 * time.Millisecond)
	if len(times) != 5 {
		t.Fatalf("got %d ticks, want 5: %v", len(times), times)
	}
	for i, at := range times {
		want := time.Duration(i+1) * 10 * time.Millisecond
		if at != want {
			t.Fatalf("tick %d at %v, want %v", i, at, want)
		}
	}
}

func TestEveryStop(t *testing.T) {
	s := New()
	count := 0
	timer := s.Every(10*time.Millisecond, func() { count++ })
	s.RunUntil(35 * time.Millisecond)
	if count != 3 {
		t.Fatalf("count = %d, want 3", count)
	}
	timer.Stop()
	s.RunUntil(time.Second)
	if count != 3 {
		t.Fatalf("count = %d after stop, want 3", count)
	}
}

func TestEveryStopFromWithinCallback(t *testing.T) {
	s := New()
	count := 0
	var timer *Timer
	timer = s.Every(10*time.Millisecond, func() {
		count++
		if count == 2 {
			timer.Stop()
		}
	})
	s.RunUntil(time.Second)
	if count != 2 {
		t.Fatalf("count = %d, want 2 (stop from callback ineffective)", count)
	}
}

func TestEveryPanicsOnNonPositiveInterval(t *testing.T) {
	s := New()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero interval")
		}
	}()
	s.Every(0, func() {})
}

func TestStepReturnsFalseWhenEmpty(t *testing.T) {
	s := New()
	if s.Step() {
		t.Fatal("Step() on empty queue should return false")
	}
}

func TestStepSkipsDeadEvents(t *testing.T) {
	s := New()
	timer := s.After(time.Millisecond, func() {})
	fired := false
	s.After(2*time.Millisecond, func() { fired = true })
	timer.Stop()
	if !s.Step() {
		t.Fatal("Step() should fire the live event")
	}
	if !fired {
		t.Fatal("live event did not fire")
	}
}

func TestStopHaltsRun(t *testing.T) {
	s := New()
	count := 0
	s.Every(time.Millisecond, func() {
		count++
		if count == 5 {
			s.Stop()
		}
	})
	s.RunUntil(time.Second)
	if count != 5 {
		t.Fatalf("count = %d, want 5", count)
	}
}

func TestEventsScheduledDuringRunFire(t *testing.T) {
	s := New()
	var got []time.Duration
	s.After(time.Millisecond, func() {
		s.After(time.Millisecond, func() { got = append(got, s.Now()) })
	})
	s.RunUntil(time.Second)
	if len(got) != 1 || got[0] != 2*time.Millisecond {
		t.Fatalf("nested event = %v, want [2ms]", got)
	}
}

func TestPending(t *testing.T) {
	s := New()
	s.After(time.Millisecond, func() {})
	s.After(2*time.Millisecond, func() {})
	if s.Pending() != 2 {
		t.Fatalf("Pending() = %d, want 2", s.Pending())
	}
	s.RunUntil(time.Second)
	if s.Pending() != 0 {
		t.Fatalf("Pending() = %d after run, want 0", s.Pending())
	}
}

func TestRunDrainsQueue(t *testing.T) {
	s := New()
	count := 0
	for i := 1; i <= 100; i++ {
		s.After(time.Duration(i)*time.Millisecond, func() { count++ })
	}
	s.Run()
	if count != 100 {
		t.Fatalf("count = %d, want 100", count)
	}
}

func TestManyEventsOrdering(t *testing.T) {
	s := New()
	var last time.Duration = -1
	// Insert in a scrambled deterministic order.
	for i := 0; i < 1000; i++ {
		at := time.Duration((i*7919)%1000) * time.Microsecond
		s.At(at, func() {
			if s.Now() < last {
				t.Errorf("time went backwards: %v after %v", s.Now(), last)
			}
			last = s.Now()
		})
	}
	s.RunUntil(time.Second)
}

func BenchmarkSchedulerThroughput(b *testing.B) {
	s := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.After(time.Microsecond, func() {})
		s.Step()
	}
}
