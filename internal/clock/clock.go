// Package clock provides a deterministic discrete-event virtual clock.
//
// Every component of the simulated vehicle stack (bus, ECUs, fuzzer) runs on
// a Scheduler rather than on wall-clock time. This makes long fuzzing
// campaigns — the paper's Table V runs last up to 4472 simulated seconds —
// execute in milliseconds of real time while preserving the exact temporal
// semantics (1 ms frame pacing, frame transmission latency at 500 kb/s,
// periodic ECU broadcast schedules).
//
// Determinism: events scheduled for the same instant fire in the order they
// were scheduled (a monotonically increasing sequence number breaks ties).
// Given identical seeds, an entire experiment replays bit-for-bit.
//
// The scheduler is the single hottest component of the simulator — every
// frame transmission schedules at least one event — so the event queue is
// built for a zero-allocation steady state: event nodes are pooled on a
// free list (a fired node is recycled for the next schedule), the binary
// heap is hand-rolled over the pooled nodes (no container/heap interface
// boxing, no per-node index maintenance), and the AtEvent/AfterEvent
// entry points skip the cancellation handle entirely for callers that
// never stop their events.
package clock

import (
	"fmt"
	"time"
)

// Event is a callback scheduled to run at a virtual instant.
type Event func()

// item is a scheduled event node. Nodes are pooled: once an event fires
// (or a cancelled node is drained) the node returns to the scheduler's
// free list and its generation is bumped, so a stale Timer handle can
// detect that its event is gone without the node keeping a heap index.
type item struct {
	at   time.Duration // virtual time since scheduler start
	seq  uint64        // tie-break: FIFO among events at the same instant
	fn   Event
	gen  uint32 // incremented on recycle; Timer handles capture it
	dead bool   // cancelled; drained lazily
	next *item  // free-list link while recycled
}

// Timer is a handle to a scheduled event that can be stopped.
type Timer struct {
	it      *item
	gen     uint32
	stopped bool // set by Stop; periodic timers consult it before re-arming
}

// Stop cancels the timer. It reports whether the event had not yet fired.
// Stopping an already-fired or already-stopped timer is a no-op, except
// that for periodic timers it still prevents the next re-arm (so Stop may
// safely be called from inside the timer's own callback).
func (t *Timer) Stop() bool {
	if t == nil || t.it == nil {
		return false
	}
	t.stopped = true
	if t.it.gen != t.gen || t.it.dead {
		return false // already fired (node recycled) or already stopped
	}
	t.it.dead = true
	return true
}

// Scheduler is a discrete-event simulator clock. The zero value is not
// usable; create one with New.
//
// Scheduler is not safe for concurrent use: the simulation is
// single-threaded by design so that runs are reproducible.
type Scheduler struct {
	now     time.Duration
	seq     uint64
	queue   []*item // binary min-heap ordered by (at, seq)
	free    *item   // recycled nodes
	running bool
	stopped bool
}

// New returns a Scheduler positioned at virtual time zero.
func New() *Scheduler {
	return &Scheduler{}
}

// Now returns the current virtual time (elapsed since scheduler start).
func (s *Scheduler) Now() time.Duration { return s.now }

// schedule enqueues fn at the absolute instant at on a pooled node.
func (s *Scheduler) schedule(at time.Duration, fn Event) *item {
	if at < s.now {
		panic(fmt.Sprintf("clock: scheduling event at %v before now %v", at, s.now))
	}
	if fn == nil {
		panic("clock: nil event")
	}
	it := s.free
	if it != nil {
		s.free = it.next
		it.next = nil
		it.dead = false
	} else {
		it = &item{}
	}
	it.at, it.seq, it.fn = at, s.seq, fn
	s.seq++
	s.push(it)
	return it
}

// recycle returns a drained node to the free list, invalidating handles.
func (s *Scheduler) recycle(it *item) {
	it.gen++
	it.fn = nil
	it.next = s.free
	s.free = it
}

// At schedules fn to run at the absolute virtual instant at. Scheduling in
// the past (before Now) panics: it would mean a causality bug in the caller.
func (s *Scheduler) At(at time.Duration, fn Event) *Timer {
	it := s.schedule(at, fn)
	return &Timer{it: it, gen: it.gen}
}

// After schedules fn to run d after the current instant.
func (s *Scheduler) After(d time.Duration, fn Event) *Timer {
	if d < 0 {
		d = 0
	}
	return s.At(s.now+d, fn)
}

// AtEvent schedules fn at the absolute instant at without returning a
// cancellation handle. It is the allocation-free fast path for the
// per-frame simulation loop: the pooled event node is the only state, so
// a steady-state schedule/fire cycle performs zero heap allocations.
func (s *Scheduler) AtEvent(at time.Duration, fn Event) {
	s.schedule(at, fn)
}

// AfterEvent schedules fn to run d after the current instant without
// returning a cancellation handle (see AtEvent).
func (s *Scheduler) AfterEvent(d time.Duration, fn Event) {
	if d < 0 {
		d = 0
	}
	s.schedule(s.now+d, fn)
}

// Every schedules fn to run every interval, starting interval from now, until
// the returned Timer is stopped. The interval must be positive.
func (s *Scheduler) Every(interval time.Duration, fn Event) *Timer {
	if interval <= 0 {
		panic("clock: Every interval must be positive")
	}
	// The periodic timer re-arms itself on the same pooled node family; the
	// caller's Timer handle is updated in place so Stop always cancels the
	// live underlying node. Steady-state re-arming allocates nothing.
	t := &Timer{}
	var tick Event
	tick = func() {
		fn()
		if !t.stopped {
			it := s.schedule(s.now+interval, tick)
			t.it, t.gen = it, it.gen
		}
	}
	it := s.schedule(s.now+interval, tick)
	t.it, t.gen = it, it.gen
	return t
}

// Reset returns the scheduler to virtual time zero with an empty queue.
// Every pending node is recycled onto the free list with its generation
// bumped, so stale Timer/Periodic handles from before the reset can never
// cancel an event scheduled after it. The node pool and queue capacity
// are retained: a reset-and-rebuild cycle allocates nothing, which is
// what makes pooled world reuse (fleet trials recycling a whole
// simulation) allocation-free in steady state.
//
// Reset must not be called from inside a running event; like the rest of
// the Scheduler it is single-threaded by design.
func (s *Scheduler) Reset() {
	if s.running {
		panic("clock: Reset while the scheduler is running")
	}
	for _, it := range s.queue {
		s.recycle(it)
	}
	s.queue = s.queue[:0]
	s.now = 0
	s.seq = 0
	s.stopped = false
}

// Periodic is a reusable repeating timer: allocated once, then armed and
// disarmed any number of times with zero steady-state allocations. It is
// the re-armable counterpart of Every for components that live across
// Scheduler.Reset cycles — an Every call allocates a Timer and a closure
// per arm, a Periodic allocates only at construction.
type Periodic struct {
	s        *Scheduler
	interval time.Duration
	fn       Event
	tick     Event
	it       *item
	gen      uint32
	running  bool
}

// NewPeriodic builds a stopped periodic timer firing fn every interval
// once started. The interval must be positive.
func (s *Scheduler) NewPeriodic(interval time.Duration, fn Event) *Periodic {
	if interval <= 0 {
		panic("clock: Periodic interval must be positive")
	}
	if fn == nil {
		panic("clock: nil event")
	}
	p := &Periodic{s: s, interval: interval, fn: fn}
	p.tick = func() {
		if !p.running {
			return
		}
		p.fn()
		if p.running {
			it := p.s.schedule(p.s.now+p.interval, p.tick)
			p.it, p.gen = it, it.gen
		}
	}
	return p
}

// Start arms the timer: the first fire is one interval from now. Starting
// a running timer is a no-op.
func (p *Periodic) Start() {
	if p.running {
		return
	}
	p.running = true
	it := p.s.schedule(p.s.now+p.interval, p.tick)
	p.it, p.gen = it, it.gen
}

// Stop disarms the timer; safe from inside its own callback, after a
// Scheduler.Reset (the generation check keeps it from touching a recycled
// node), and when already stopped.
func (p *Periodic) Stop() {
	if !p.running {
		return
	}
	p.running = false
	if p.it != nil && p.it.gen == p.gen {
		p.it.dead = true
	}
	p.it = nil
}

// Running reports whether the timer is armed.
func (p *Periodic) Running() bool { return p.running }

// Pending returns the number of events waiting to fire (including dead ones
// not yet drained).
func (s *Scheduler) Pending() int { return len(s.queue) }

// Step runs the single next event, advancing Now to its instant. It reports
// false when the queue is empty.
func (s *Scheduler) Step() bool {
	for len(s.queue) > 0 {
		it := s.pop()
		if it.dead {
			s.recycle(it)
			continue
		}
		s.now = it.at
		fn := it.fn
		// Recycle before running so a self-re-arming event (Every) reuses
		// its own node instead of growing the pool.
		s.recycle(it)
		fn()
		return true
	}
	return false
}

// RunUntil runs events until the virtual clock reaches deadline. Events
// scheduled exactly at deadline do fire. Now is left at deadline even if the
// queue drains early, so subsequent scheduling is relative to the deadline.
func (s *Scheduler) RunUntil(deadline time.Duration) {
	s.stopped = false
	s.running = true
	defer func() { s.running = false }()
	for !s.stopped && len(s.queue) > 0 {
		next := s.queue[0]
		if next.dead {
			s.pop()
			s.recycle(next)
			continue
		}
		if next.at > deadline {
			break
		}
		s.pop()
		s.now = next.at
		fn := next.fn
		s.recycle(next)
		fn()
	}
	if !s.stopped && s.now < deadline {
		s.now = deadline
	}
}

// RunFor advances the clock by d, running all events due in that window.
func (s *Scheduler) RunFor(d time.Duration) { s.RunUntil(s.now + d) }

// Run drains the queue completely (or until Stop is called). Use with care:
// with self-re-arming periodic events this never returns, so simulations
// normally use RunUntil/RunFor.
func (s *Scheduler) Run() {
	s.stopped = false
	s.running = true
	defer func() { s.running = false }()
	for !s.stopped && s.Step() {
	}
}

// Stop halts RunUntil/RunFor/Run after the currently executing event
// returns. Pending events remain queued.
func (s *Scheduler) Stop() { s.stopped = true }

// --- Binary heap over pooled nodes ------------------------------------------
//
// A hand-rolled sift keeps the hot path free of container/heap's interface
// dispatch and of per-node index bookkeeping (cancellation is a dead flag
// drained lazily, so nodes never need to know their position).

// less orders nodes by (at, seq); seq is unique, so the order is total and
// identical to the previous container/heap implementation — replacing the
// heap cannot change event order.
func less(a, b *item) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// push appends it and restores the heap property.
func (s *Scheduler) push(it *item) {
	s.queue = append(s.queue, it)
	q := s.queue
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !less(q[i], q[parent]) {
			break
		}
		q[i], q[parent] = q[parent], q[i]
		i = parent
	}
}

// pop removes and returns the minimum node.
func (s *Scheduler) pop() *item {
	q := s.queue
	top := q[0]
	n := len(q) - 1
	q[0] = q[n]
	q[n] = nil
	s.queue = q[:n]
	q = s.queue
	// Sift the relocated last element down.
	i := 0
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		child := left
		if right := left + 1; right < n && less(q[right], q[left]) {
			child = right
		}
		if !less(q[child], q[i]) {
			break
		}
		q[i], q[child] = q[child], q[i]
		i = child
	}
	return top
}
