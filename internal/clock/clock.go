// Package clock provides a deterministic discrete-event virtual clock.
//
// Every component of the simulated vehicle stack (bus, ECUs, fuzzer) runs on
// a Scheduler rather than on wall-clock time. This makes long fuzzing
// campaigns — the paper's Table V runs last up to 4472 simulated seconds —
// execute in milliseconds of real time while preserving the exact temporal
// semantics (1 ms frame pacing, frame transmission latency at 500 kb/s,
// periodic ECU broadcast schedules).
//
// Determinism: events scheduled for the same instant fire in the order they
// were scheduled (a monotonically increasing sequence number breaks ties).
// Given identical seeds, an entire experiment replays bit-for-bit.
package clock

import (
	"container/heap"
	"fmt"
	"time"
)

// Event is a callback scheduled to run at a virtual instant.
type Event func()

// item is a scheduled event in the priority queue.
type item struct {
	at    time.Duration // virtual time since scheduler start
	seq   uint64        // tie-break: FIFO among events at the same instant
	fn    Event
	index int  // heap index, maintained by the heap interface
	dead  bool // cancelled
}

// eventQueue implements heap.Interface ordered by (at, seq).
type eventQueue []*item

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	it := x.(*item)
	it.index = len(*q)
	*q = append(*q, it)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	it.index = -1
	*q = old[:n-1]
	return it
}

// Timer is a handle to a scheduled event that can be stopped.
type Timer struct {
	it      *item
	stopped bool // set by Stop; periodic timers consult it before re-arming
}

// Stop cancels the timer. It reports whether the event had not yet fired.
// Stopping an already-fired or already-stopped timer is a no-op, except
// that for periodic timers it still prevents the next re-arm (so Stop may
// safely be called from inside the timer's own callback).
func (t *Timer) Stop() bool {
	if t == nil || t.it == nil {
		return false
	}
	t.stopped = true
	if t.it.dead || t.it.index == -1 {
		return false
	}
	t.it.dead = true
	return true
}

// Scheduler is a discrete-event simulator clock. The zero value is not
// usable; create one with New.
//
// Scheduler is not safe for concurrent use: the simulation is
// single-threaded by design so that runs are reproducible.
type Scheduler struct {
	now     time.Duration
	seq     uint64
	queue   eventQueue
	running bool
	stopped bool
}

// New returns a Scheduler positioned at virtual time zero.
func New() *Scheduler {
	s := &Scheduler{}
	heap.Init(&s.queue)
	return s
}

// Now returns the current virtual time (elapsed since scheduler start).
func (s *Scheduler) Now() time.Duration { return s.now }

// At schedules fn to run at the absolute virtual instant at. Scheduling in
// the past (before Now) panics: it would mean a causality bug in the caller.
func (s *Scheduler) At(at time.Duration, fn Event) *Timer {
	if at < s.now {
		panic(fmt.Sprintf("clock: scheduling event at %v before now %v", at, s.now))
	}
	if fn == nil {
		panic("clock: nil event")
	}
	it := &item{at: at, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.queue, it)
	return &Timer{it: it}
}

// After schedules fn to run d after the current instant.
func (s *Scheduler) After(d time.Duration, fn Event) *Timer {
	if d < 0 {
		d = 0
	}
	return s.At(s.now+d, fn)
}

// Every schedules fn to run every interval, starting interval from now, until
// the returned Timer is stopped. The interval must be positive.
func (s *Scheduler) Every(interval time.Duration, fn Event) *Timer {
	if interval <= 0 {
		panic("clock: Every interval must be positive")
	}
	// The periodic timer re-arms itself; the caller's Timer handle is
	// updated in place so Stop always cancels the live underlying item.
	t := &Timer{}
	var tick Event
	tick = func() {
		fn()
		if !t.stopped {
			inner := s.After(interval, tick)
			t.it = inner.it
		}
	}
	first := s.After(interval, tick)
	t.it = first.it
	return t
}

// Pending returns the number of events waiting to fire (including dead ones
// not yet drained).
func (s *Scheduler) Pending() int { return len(s.queue) }

// Step runs the single next event, advancing Now to its instant. It reports
// false when the queue is empty.
func (s *Scheduler) Step() bool {
	for len(s.queue) > 0 {
		it := heap.Pop(&s.queue).(*item)
		if it.dead {
			continue
		}
		s.now = it.at
		it.fn()
		return true
	}
	return false
}

// RunUntil runs events until the virtual clock reaches deadline. Events
// scheduled exactly at deadline do fire. Now is left at deadline even if the
// queue drains early, so subsequent scheduling is relative to the deadline.
func (s *Scheduler) RunUntil(deadline time.Duration) {
	s.stopped = false
	s.running = true
	defer func() { s.running = false }()
	for !s.stopped && len(s.queue) > 0 {
		next := s.queue[0]
		if next.dead {
			heap.Pop(&s.queue)
			continue
		}
		if next.at > deadline {
			break
		}
		heap.Pop(&s.queue)
		s.now = next.at
		next.fn()
	}
	if !s.stopped && s.now < deadline {
		s.now = deadline
	}
}

// RunFor advances the clock by d, running all events due in that window.
func (s *Scheduler) RunFor(d time.Duration) { s.RunUntil(s.now + d) }

// Run drains the queue completely (or until Stop is called). Use with care:
// with self-re-arming periodic events this never returns, so simulations
// normally use RunUntil/RunFor.
func (s *Scheduler) Run() {
	s.stopped = false
	s.running = true
	defer func() { s.running = false }()
	for !s.stopped && s.Step() {
	}
}

// Stop halts RunUntil/RunFor/Run after the currently executing event
// returns. Pending events remain queued.
func (s *Scheduler) Stop() { s.stopped = true }
