package vehicle

import (
	"testing"
	"time"

	"repro/internal/bus"
	"repro/internal/can"
	"repro/internal/clock"
	"repro/internal/gateway"
	"repro/internal/signal"
)

func newVehicle(t *testing.T, cfg Config) (*clock.Scheduler, *Vehicle) {
	t.Helper()
	s := clock.New()
	return s, New(s, cfg)
}

func TestIdleTrafficOnBothBuses(t *testing.T) {
	s, v := newVehicle(t, Config{})
	ptIDs := map[can.ID]int{}
	bodyIDs := map[can.ID]int{}
	v.TapOBD(OBDPowertrain, func(m bus.Message) { ptIDs[m.Frame.ID]++ })
	v.TapOBD(OBDBody, func(m bus.Message) { bodyIDs[m.Frame.ID]++ })
	s.RunUntil(2 * time.Second)

	for _, id := range []can.ID{signal.IDEngineData, signal.IDWheelSpeeds, signal.IDTransmission} {
		if ptIDs[id] == 0 {
			t.Errorf("no %s traffic on powertrain bus", id)
		}
	}
	for _, id := range []can.ID{signal.IDClusterGauges, signal.IDBodyStatus, signal.IDClimate, signal.IDFuel} {
		if bodyIDs[id] == 0 {
			t.Errorf("no %s traffic on body bus", id)
		}
	}
	// Gateway (ForwardAll) mirrors powertrain traffic onto the body bus.
	if bodyIDs[signal.IDEngineData] == 0 {
		t.Error("EngineData not forwarded to body bus")
	}
}

func TestEngineDataRatesMatchSchedule(t *testing.T) {
	s, v := newVehicle(t, Config{})
	count := 0
	v.TapOBD(OBDPowertrain, func(m bus.Message) {
		if m.Frame.ID == signal.IDEngineData {
			count++
		}
	})
	s.RunUntil(time.Second)
	if count < 95 || count > 105 {
		t.Fatalf("EngineData frames in 1s = %d, want ~100", count)
	}
}

func TestClusterFollowsEngineAtIdle(t *testing.T) {
	s, v := newVehicle(t, Config{})
	s.RunUntil(3 * time.Second)
	rpm := v.Cluster.DisplayedRPM()
	if rpm < 600 || rpm > 1200 {
		t.Fatalf("cluster RPM = %v, want idle ~850", rpm)
	}
	if v.Cluster.DisplayedSpeed() != 0 {
		t.Fatalf("cluster speed = %v at standstill", v.Cluster.DisplayedSpeed())
	}
	if len(v.Cluster.ECU().MILs()) != 0 {
		t.Fatalf("MILs lit during normal idle: %v", v.Cluster.ECU().MILs())
	}
}

func TestAppUnlockEndToEnd(t *testing.T) {
	s, v := newVehicle(t, Config{BCMAckUnlock: true})
	s.RunUntil(time.Second)
	if v.BCM.Unlocked() {
		t.Fatal("vehicle starts unlocked")
	}
	if err := v.HeadUnit.AppUnlock(AppToken); err != nil {
		t.Fatal(err)
	}
	s.RunUntil(1100 * time.Millisecond)
	if !v.BCM.Unlocked() {
		t.Fatal("app unlock did not reach BCM")
	}
	if !v.HeadUnit.AckSeen() {
		t.Fatal("head unit saw no unlock ack")
	}
}

func TestOBDInjectionReachesBodyBusViaGateway(t *testing.T) {
	// Fuzzer on the powertrain OBD pins can still unlock the doors because
	// the legacy gateway forwards everything — the paper's MITM threat.
	s, v := newVehicle(t, Config{})
	obd := v.AttachOBD(OBDPowertrain, "attacker")
	s.RunUntil(time.Second)
	obd.Send(can.MustNew(signal.IDBodyCommand, []byte{signal.CmdUnlock, 0x5F, 1, 0, 0, 1, 0x20}))
	s.RunUntil(1200 * time.Millisecond)
	if !v.BCM.Unlocked() {
		t.Fatal("injected unlock did not cross the gateway")
	}
}

func TestAllowListGatewayBlocksInjection(t *testing.T) {
	s, v := newVehicle(t, Config{})
	v.Gateway.SetPolicy(gateway.AToB, gateway.AllowList)
	v.Gateway.Allow(gateway.AToB, signal.IDEngineData, signal.IDWheelSpeeds,
		signal.IDVehicleMotion, signal.IDTransmission)
	obd := v.AttachOBD(OBDPowertrain, "attacker")
	s.RunUntil(time.Second)
	obd.Send(can.MustNew(signal.IDBodyCommand, []byte{signal.CmdUnlock, 0x5F, 1, 0, 0, 1, 0x20}))
	s.RunUntil(1200 * time.Millisecond)
	if v.BCM.Unlocked() {
		t.Fatal("allow-list gateway let the unlock command through")
	}
	// The cluster still works: legitimate traffic is on the allow-list.
	if v.Cluster.DisplayedRPM() < 500 {
		t.Fatalf("cluster rpm = %v; legitimate traffic blocked too", v.Cluster.DisplayedRPM())
	}
}

func TestDeterministicTraffic(t *testing.T) {
	capture := func() []string {
		s := clock.New()
		v := New(s, Config{Seed: 99})
		var frames []string
		v.TapOBD(OBDBody, func(m bus.Message) { frames = append(frames, m.Frame.String()) })
		s.RunUntil(2 * time.Second)
		return frames
	}
	a, b := capture(), capture()
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("capture lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("frame %d differs: %q vs %q", i, a[i], b[i])
		}
	}
}

func TestDifferentSeedsDifferentTraffic(t *testing.T) {
	capture := func(seed int64) []string {
		s := clock.New()
		v := New(s, Config{Seed: seed})
		var frames []string
		v.TapOBD(OBDBody, func(m bus.Message) {
			if m.Frame.ID == signal.IDFuel {
				frames = append(frames, m.Frame.String())
			}
		})
		s.RunUntil(5 * time.Second)
		return frames
	}
	a, b := capture(1), capture(2)
	same := true
	for i := range a {
		if i < len(b) && a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical fuel traffic")
	}
}

func TestClusterUDSCrashFlagReadable(t *testing.T) {
	s, v := newVehicle(t, Config{})
	s.RunUntil(time.Second)
	if v.ClusterUDS == nil {
		t.Fatal("cluster UDS server missing")
	}
	if v.ClusterUDS.Session() != 0x01 {
		t.Fatalf("session = %#x", v.ClusterUDS.Session())
	}
}

func TestBusLoadReasonableAtIdle(t *testing.T) {
	s, v := newVehicle(t, Config{})
	s.RunUntil(5 * time.Second)
	load := v.Powertrain.Load()
	if load <= 0 || load > 0.5 {
		t.Fatalf("powertrain load = %v, want (0, 0.5]", load)
	}
}

func TestOBDRequestOverOBDPort(t *testing.T) {
	// A scan tool on the powertrain OBD pins asks for engine RPM (J1979
	// mode 01 PID 0C) and gets the live value back.
	s, v := newVehicle(t, Config{})
	s.RunUntil(3 * time.Second)
	tool := v.AttachOBD(OBDPowertrain, "scantool")
	var rpm float64 = -1
	tool.SetReceiver(func(m bus.Message) {
		if m.Frame.ID == 0x7E8 && m.Frame.Data[1] == 0x41 && m.Frame.Data[2] == 0x0C {
			raw := uint16(m.Frame.Data[3])<<8 | uint16(m.Frame.Data[4])
			rpm = float64(raw) / 4
		}
	})
	tool.Send(can.MustNew(0x7DF, []byte{2, 0x01, 0x0C}))
	s.RunUntil(s.Now() + 100*time.Millisecond)
	if rpm < 600 || rpm > 1200 {
		t.Fatalf("OBD-reported RPM = %v, want idle", rpm)
	}
}

func TestDriveRaisesSpeedAndGear(t *testing.T) {
	s, v := newVehicle(t, Config{})
	s.RunUntil(2 * time.Second)
	v.Drive(40)
	s.RunUntil(30 * time.Second)
	if v.RoadSpeed() < 30 {
		t.Fatalf("road speed = %v after sustained throttle", v.RoadSpeed())
	}
	// The cluster speedometer follows via ClusterGauges.
	if v.Cluster.DisplayedSpeed() < 20 {
		t.Fatalf("cluster speed = %v", v.Cluster.DisplayedSpeed())
	}
	// The transmission broadcasts a forward gear.
	db := signal.VehicleDB()
	var gear float64
	v.TapOBD(OBDPowertrain, func(m bus.Message) {
		if m.Frame.ID == signal.IDTransmission {
			vals, _ := db.Decode(m.Frame)
			gear = vals["GearEngaged"]
		}
	})
	s.RunUntil(s.Now() + time.Second)
	if gear < 1 {
		t.Fatalf("gear = %v while moving", gear)
	}
	// Lifting off coasts back down.
	v.Drive(0)
	s.RunUntil(s.Now() + 120*time.Second)
	if v.RoadSpeed() > 5 {
		t.Fatalf("road speed = %v after coasting 2 minutes", v.RoadSpeed())
	}
}

func TestOBDSpeedReflectsDriving(t *testing.T) {
	s, v := newVehicle(t, Config{})
	v.Drive(50)
	s.RunUntil(30 * time.Second)
	tool := v.AttachOBD(OBDPowertrain, "scantool")
	var speed float64 = -1
	tool.SetReceiver(func(m bus.Message) {
		if m.Frame.ID == 0x7E8 && m.Frame.Data[2] == 0x0D {
			speed = float64(m.Frame.Data[3])
		}
	})
	tool.Send(can.MustNew(0x7DF, []byte{2, 0x01, 0x0D}))
	s.RunUntil(s.Now() + 100*time.Millisecond)
	if speed < 30 {
		t.Fatalf("OBD speed = %v while driving", speed)
	}
}
