// Package vehicle assembles the simulated target car: a powertrain CAN bus
// and a body CAN bus joined by a gateway ECU, populated with the engine
// controller, ABS/wheel-speed sensor node, transmission controller, body
// control module, climate controller, fuel sender, body computer (which
// drives the instrument cluster gauge message 0x43A), the instrument
// cluster itself with its UDS diagnostic server, and the infotainment head
// unit of the remote-unlock feature.
//
// This is the stand-in for the paper's test vehicle: it "exposes two CAN
// buses" through the OBD port (§VI), carries the periodic message schedule
// whose captured frames appear in Table II, and produces the non-linear
// per-byte-position value distribution of Fig 4.
package vehicle

import (
	"time"

	"repro/internal/bcm"
	"repro/internal/bus"
	"repro/internal/clock"
	"repro/internal/cluster"
	"repro/internal/ecu"
	"repro/internal/engine"
	"repro/internal/gateway"
	"repro/internal/infotain"
	"repro/internal/isotp"
	"repro/internal/obd"
	"repro/internal/signal"
	"repro/internal/telemetry"
	"repro/internal/uds"
)

// AppToken is the shared secret between the manufacturer's smartphone app
// and the head unit.
const AppToken = "factory-paired-app"

// OBDBus selects which of the two exposed buses an OBD tap attaches to.
type OBDBus int

const (
	// OBDPowertrain exposes the powertrain bus on the OBD connector.
	OBDPowertrain OBDBus = iota + 1
	// OBDBody exposes the body bus on the OBD connector.
	OBDBody
)

// Config tunes the assembled vehicle.
type Config struct {
	// Seed drives all deterministic pseudo-random variation in the traffic
	// sources (fuel sloshing, cabin temperature drift...).
	Seed int64
	// BCMCheck selects the body module's command-parser strictness.
	BCMCheck bcm.CheckMode
	// BCMAckUnlock enables the unlock acknowledgement broadcast.
	BCMAckUnlock bool
	// GatewayPolicy applies to both directions; zero means ForwardAll
	// (the legacy vehicle of the paper).
	GatewayPolicy gateway.Policy
}

// Vehicle is the assembled simulated car.
type Vehicle struct {
	sched *clock.Scheduler

	// Powertrain and Body are the two CAN buses exposed via OBD.
	Powertrain *bus.Bus
	Body       *bus.Bus
	// Gateway bridges the two buses.
	Gateway *gateway.Gateway

	// Engine is the engine controller (powertrain).
	Engine *engine.Engine
	// Cluster is the instrument cluster (body).
	Cluster *cluster.Cluster
	// ClusterUDS is the cluster's diagnostic server.
	ClusterUDS *uds.Server
	// BCM is the body control module (body).
	BCM *bcm.BCM
	// HeadUnit is the infotainment unit (body).
	HeadUnit *infotain.HeadUnit
	// EngineOBD answers OBD-II mode 01/03/04 requests on the powertrain
	// bus (the engine is the classic J1979 responder).
	EngineOBD *obd.Server

	transmission *ecu.ECU
	abs          *ecu.ECU
	climate      *ecu.ECU
	fuelSender   *ecu.ECU
	bodyComputer *ecu.ECU

	db  *signal.Database
	rng uint64

	// Slow-moving plant state owned by the traffic sources.
	fuelLevel  float64
	cabinTemp  float64
	transTemp  float64
	roadSpeed  float64
	motionCnt  uint8
	lastEngine map[string]float64
	driveTimer *clock.Timer
}

// New assembles a vehicle on the given scheduler and starts all periodic
// traffic.
func New(sched *clock.Scheduler, cfg Config) *Vehicle {
	v := &Vehicle{
		sched:      sched,
		Powertrain: bus.New(sched, bus.WithName("powertrain")),
		Body:       bus.New(sched, bus.WithName("body")),
		db:         signal.VehicleDB(),
		rng:        uint64(cfg.Seed)*2862933555777941757 + 3037000493,
		fuelLevel:  61.5,
		cabinTemp:  22,
		transTemp:  25,
		lastEngine: map[string]float64{},
	}

	v.Gateway = gateway.New("gateway", v.Powertrain, v.Body)
	if cfg.GatewayPolicy != 0 {
		v.Gateway.SetPolicy(gateway.AToB, cfg.GatewayPolicy)
		v.Gateway.SetPolicy(gateway.BToA, cfg.GatewayPolicy)
	}

	// --- Powertrain bus --------------------------------------------------
	engineECU := ecu.New("engine", sched, v.Powertrain.Connect("engine"))
	v.Engine = engine.New(engineECU)
	v.EngineOBD = obd.NewServer(engineECU, obd.IDResponseBase, obd.Values{
		RPM:     v.Engine.RPM,
		Coolant: v.Engine.Coolant,
		Speed:   func() float64 { return v.roadSpeed },
	})

	v.transmission = ecu.New("transmission", sched, v.Powertrain.Connect("transmission"))
	v.transmission.Periodic(50*time.Millisecond, v.sendTransmission)

	v.abs = ecu.New("abs", sched, v.Powertrain.Connect("abs"))
	v.abs.Periodic(20*time.Millisecond, v.sendWheelsAndMotion)

	// --- Body bus --------------------------------------------------------
	clusterECU := ecu.New("cluster", sched, v.Body.Connect("cluster"))
	v.Cluster = cluster.New(clusterECU)
	v.ClusterUDS = attachClusterUDS(clusterECU, v.Cluster)

	v.BCM = bcm.New(ecu.New("bcm", sched, v.Body.Connect("bcm")), bcm.Config{
		Check:     cfg.BCMCheck,
		AckUnlock: cfg.BCMAckUnlock,
	})

	v.HeadUnit = infotain.New(ecu.New("headunit", sched, v.Body.Connect("headunit")), AppToken)

	v.climate = ecu.New("climate", sched, v.Body.Connect("climate"))
	v.climate.Periodic(200*time.Millisecond, v.sendClimate)

	v.fuelSender = ecu.New("fuelsender", sched, v.Body.Connect("fuelsender"))
	v.fuelSender.Periodic(500*time.Millisecond, v.sendFuel)

	// The body computer mirrors powertrain values into the gauge message
	// the cluster needles follow (the paper's "message known to affect the
	// instrument cluster gauge needles").
	v.bodyComputer = ecu.New("bodycomputer", sched, v.Body.Connect("bodycomputer"))
	v.bodyComputer.Handle(signal.IDEngineData, func(m bus.Message) {
		if def, ok := v.db.ByID(signal.IDEngineData); ok {
			v.lastEngine = def.Decode(m.Frame)
		}
	})
	v.bodyComputer.Periodic(100*time.Millisecond, v.sendGauges)

	return v
}

// attachClusterUDS wires a UDS server (with the crash-flag DID) onto the
// cluster ECU at the standard OBD diagnostic identifiers.
func attachClusterUDS(e *ecu.ECU, c *cluster.Cluster) *uds.Server {
	var server *uds.Server
	ep := isotp.NewEndpoint(e.Scheduler(), e.Send,
		signal.IDDiagResponse, signal.IDDiagRequest,
		isotp.Config{}, func(req []byte) { server.HandleRequest(req) })
	server = uds.NewServer(e, ep, uds.ServerConfig{DIDs: c.DIDEntries()})
	e.Handle(signal.IDDiagRequest, ep.HandleFrame)
	return server
}

// Scheduler returns the vehicle's virtual clock.
func (v *Vehicle) Scheduler() *clock.Scheduler { return v.sched }

// Instrument attaches the whole car to a telemetry plane: both buses (with
// per-port counters and sliding-window load) and every ECU's dispatch
// accounting. Passing nil is a no-op.
func (v *Vehicle) Instrument(t *telemetry.Telemetry) {
	if t == nil {
		return
	}
	v.Powertrain.Instrument(t)
	v.Body.Instrument(t)
	for _, e := range []*ecu.ECU{
		v.Engine.ECU(), v.Cluster.ECU(), v.BCM.ECU(), v.HeadUnit.ECU(),
		v.transmission, v.abs, v.climate, v.fuelSender, v.bodyComputer,
	} {
		e.Instrument(t)
	}
}

// ECUs returns every application ECU by node name — the attachment map a
// fault-injection plan uses to resolve stall/panic targets.
func (v *Vehicle) ECUs() map[string]*ecu.ECU {
	m := map[string]*ecu.ECU{}
	for _, e := range []*ecu.ECU{
		v.Engine.ECU(), v.Cluster.ECU(), v.BCM.ECU(), v.HeadUnit.ECU(),
		v.transmission, v.abs, v.climate, v.fuelSender, v.bodyComputer,
	} {
		m[e.Name()] = e
	}
	return m
}

// AttachOBD connects a tester/fuzzer node to one of the exposed buses via
// the OBD port and returns its port.
func (v *Vehicle) AttachOBD(which OBDBus, name string) *bus.Port {
	if which == OBDPowertrain {
		return v.Powertrain.Connect(name)
	}
	return v.Body.Connect(name)
}

// TapOBD registers a passive monitor on one of the exposed buses.
func (v *Vehicle) TapOBD(which OBDBus, r bus.Receiver) {
	if which == OBDPowertrain {
		v.Powertrain.Tap(r)
		return
	}
	v.Body.Tap(r)
}

// Drive sets the accelerator position (0-100%). The road speed follows a
// crude drivetrain model: it rises toward a throttle-proportional target
// and coasts down when the throttle closes. The paper's experiments run at
// idle; Drive exists for richer traffic scenarios and tests.
func (v *Vehicle) Drive(throttlePct float64) {
	v.Engine.SetThrottle(throttlePct)
	if v.driveTimer == nil {
		v.driveTimer = v.sched.Every(100*time.Millisecond, v.updateSpeed)
	}
}

// RoadSpeed returns the current vehicle speed in km/h.
func (v *Vehicle) RoadSpeed() float64 { return v.roadSpeed }

// updateSpeed advances the drivetrain model 100 ms.
func (v *Vehicle) updateSpeed() {
	// Above ~1200 rpm the clutch is engaged; speed chases a target set by
	// engine speed, limited by a 180 km/h drag ceiling.
	target := 0.0
	if rpm := v.Engine.RPM(); rpm > 1200 {
		target = (rpm - 1200) / 6000 * 180
	}
	v.roadSpeed += (target - v.roadSpeed) * 0.05
	if v.roadSpeed < 0.1 && target == 0 {
		v.roadSpeed = 0
	}
}

// noise returns a deterministic value in [-1, 1).
func (v *Vehicle) noise() float64 {
	v.rng = v.rng*6364136223846793005 + 1442695040888963407
	return float64(int64(v.rng>>11))/float64(1<<52) - 1
}

// --- Traffic sources ---------------------------------------------------

func (v *Vehicle) sendTransmission() {
	v.transTemp += (v.Engine.Coolant() - v.transTemp) * 0.005
	gear := 0.0 // park/neutral while idling
	if v.roadSpeed > 1 {
		gear = 1 + float64(int(v.roadSpeed/20))
		if gear > 6 {
			gear = 6
		}
	}
	def, _ := v.db.ByID(signal.IDTransmission)
	f, err := def.Encode(map[string]float64{
		"GearEngaged":   gear,
		"ConverterLock": 0,
		"TransTemp":     v.transTemp,
	})
	if err == nil {
		_ = v.transmission.Send(f)
	}
}

func (v *Vehicle) sendWheelsAndMotion() {
	// Idling: wheels stationary (Table II row 04B0 is all zeros).
	def, _ := v.db.ByID(signal.IDWheelSpeeds)
	f, err := def.Encode(map[string]float64{
		"WheelFL": v.roadSpeed, "WheelFR": v.roadSpeed,
		"WheelRL": v.roadSpeed, "WheelRR": v.roadSpeed,
	})
	if err == nil {
		_ = v.abs.Send(f)
	}
	v.motionCnt++
	mdef, _ := v.db.ByID(signal.IDVehicleMotion)
	mf, err := mdef.Encode(map[string]float64{
		"RoadSpeed":     v.roadSpeed,
		"LongAccel":     0,
		"BrakePressure": 0,
		"MotionAlive":   float64(v.motionCnt),
	})
	if err == nil {
		_ = v.abs.Send(mf)
	}
}

func (v *Vehicle) sendClimate() {
	v.cabinTemp += v.noise() * 0.05
	if v.cabinTemp < 15 {
		v.cabinTemp = 15
	}
	if v.cabinTemp > 35 {
		v.cabinTemp = 35
	}
	def, _ := v.db.ByID(signal.IDClimate)
	f, err := def.Encode(map[string]float64{
		"CabinTemp":    v.cabinTemp,
		"BlowerPWM":    108, // the 0x6C of the Table II capture
		"ACCompressor": 0,
	})
	if err == nil {
		_ = v.climate.Send(f)
	}
}

func (v *Vehicle) sendFuel() {
	// Idle burn plus sender slosh.
	v.fuelLevel -= 0.0005
	if v.fuelLevel < 0 {
		v.fuelLevel = 0
	}
	level := v.fuelLevel + v.noise()*0.2
	if level < 0 {
		level = 0
	}
	def, _ := v.db.ByID(signal.IDFuel)
	f, err := def.Encode(map[string]float64{
		"FuelLevel": level,
		"FuelFlow":  0.9 + v.noise()*0.05,
	})
	if err == nil {
		_ = v.fuelSender.Send(f)
	}
}

func (v *Vehicle) sendGauges() {
	rpm := v.lastEngine["EngineRPM"]
	def, _ := v.db.ByID(signal.IDClusterGauges)
	f, err := def.Encode(map[string]float64{
		"TachoRPM":     rpm,
		"SpeedoKPH":    v.roadSpeed,
		"SpeedoMirror": v.roadSpeed,
	})
	if err == nil {
		_ = v.bodyComputer.Send(f)
	}
}
