package can

import (
	"math/rand"
	"testing"
)

// randomWireFrame draws one valid frame: random in-range identifier,
// random DLC, random payload, and — unlike randomFrame in frame_test.go —
// the occasional remote frame.
func randomWireFrame(rng *rand.Rand) Frame {
	var f Frame
	f.ID = ID(rng.Intn(MaxID + 1))
	f.Len = uint8(rng.Intn(MaxDataLen + 1))
	if rng.Intn(10) == 0 {
		f.Remote = true
		return f
	}
	for i := 0; i < int(f.Len); i++ {
		f.Data[i] = byte(rng.Intn(256))
	}
	return f
}

// TestMarshalUnmarshalRoundTripProperty checks Unmarshal(Marshal(f)) == f
// over a seeded sample of the whole frame space.
func TestMarshalUnmarshalRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		f := randomWireFrame(rng)
		buf, err := Marshal(f)
		if err != nil {
			t.Fatalf("frame %d (%v): marshal: %v", i, f, err)
		}
		got, n, err := Unmarshal(buf)
		if err != nil {
			t.Fatalf("frame %d (%v): unmarshal: %v", i, f, err)
		}
		if n != len(buf) {
			t.Fatalf("frame %d: consumed %d of %d bytes", i, n, len(buf))
		}
		if !got.Equal(f) || got.Remote != f.Remote || got.Len != f.Len {
			t.Fatalf("frame %d: round trip %v -> %v", i, f, got)
		}
	}
}

// TestStuffUnstuffRoundTripProperty checks Unstuff(Stuff(bits)) == bits both
// for real frame encodings and for arbitrary bit strings, including the
// stuffing-heavy all-equal runs.
func TestStuffUnstuffRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	check := func(i int, bits []byte) {
		t.Helper()
		back, err := Unstuff(Stuff(bits))
		if err != nil {
			t.Fatalf("case %d: unstuff: %v", i, err)
		}
		if len(back) != len(bits) {
			t.Fatalf("case %d: %d bits in, %d out", i, len(bits), len(back))
		}
		for j := range bits {
			if back[j] != bits[j] {
				t.Fatalf("case %d: bit %d flipped", i, j)
			}
		}
	}
	for i := 0; i < 1000; i++ {
		check(i, RawBits(randomFrame(rng)))

		n := rng.Intn(128)
		bits := make([]byte, n)
		for j := range bits {
			if rng.Intn(4) > 0 && j > 0 {
				bits[j] = bits[j-1] // bias toward runs that force stuffing
			} else {
				bits[j] = byte(rng.Intn(2))
			}
		}
		check(i, bits)
	}
}
