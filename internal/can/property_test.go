package can

import (
	"math/rand"
	"testing"
)

// Micro-benchmarks for the hot-path codec functions; cmd/benchperf mirrors
// these workloads when emitting the BENCH_*.json trajectory.

func BenchmarkStuff(b *testing.B) {
	bits := RawBits(MustNew(0x215, []byte{0x20, 0x5F, 1, 0, 0, 1, 0x20}))
	dst := make([]byte, 0, len(bits)+len(bits)/5)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = AppendStuff(dst[:0], bits)
	}
}

func BenchmarkAppendEncodeBits(b *testing.B) {
	f := MustNew(0x215, []byte{0x20, 0x5F, 1, 0, 0, 1, 0x20})
	dst := make([]byte, 0, 128)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = AppendEncodeBits(dst[:0], f)
	}
}

// randomWireFrame draws one valid frame: random in-range identifier,
// random DLC, random payload, and — unlike randomFrame in frame_test.go —
// the occasional remote frame.
func randomWireFrame(rng *rand.Rand) Frame {
	var f Frame
	f.ID = ID(rng.Intn(MaxID + 1))
	f.Len = uint8(rng.Intn(MaxDataLen + 1))
	if rng.Intn(10) == 0 {
		f.Remote = true
		return f
	}
	for i := 0; i < int(f.Len); i++ {
		f.Data[i] = byte(rng.Intn(256))
	}
	return f
}

// TestMarshalUnmarshalRoundTripProperty checks Unmarshal(Marshal(f)) == f
// over a seeded sample of the whole frame space.
func TestMarshalUnmarshalRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		f := randomWireFrame(rng)
		buf, err := Marshal(f)
		if err != nil {
			t.Fatalf("frame %d (%v): marshal: %v", i, f, err)
		}
		got, n, err := Unmarshal(buf)
		if err != nil {
			t.Fatalf("frame %d (%v): unmarshal: %v", i, f, err)
		}
		if n != len(buf) {
			t.Fatalf("frame %d: consumed %d of %d bytes", i, n, len(buf))
		}
		if !got.Equal(f) || got.Remote != f.Remote || got.Len != f.Len {
			t.Fatalf("frame %d: round trip %v -> %v", i, f, got)
		}
	}
}

// randomFDWireFrame draws one valid FD frame: random identifier, a random
// representable DLC size, random payload and flags.
func randomFDWireFrame(rng *rand.Rand) FDFrame {
	var f FDFrame
	f.ID = ID(rng.Intn(MaxID + 1))
	f.Len = uint8(fdLengths[rng.Intn(len(fdLengths))])
	for i := 0; i < int(f.Len); i++ {
		f.Data[i] = byte(rng.Intn(256))
	}
	f.BRS = rng.Intn(2) == 0
	f.ESI = rng.Intn(8) == 0
	return f
}

// bitsEqual compares two bit slices, treating nil and empty as equal.
func bitsEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestWireBitsStuffRelationProperty pins the defining relation of the
// zero-alloc wire-length fast path: for every frame, WireBits must equal
// the length of the slice-building Stuff(RawBits()) construction plus the
// fixed-form trailer.
func TestWireBitsStuffRelationProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 1000; i++ {
		f := randomWireFrame(rng)
		want := len(Stuff(RawBits(f))) + trailerBits
		if got := WireBits(f); got != want {
			t.Fatalf("frame %d (%v): WireBits = %d, want len(Stuff(RawBits))+trailer = %d",
				i, f, got, want)
		}
	}
}

// TestAppendFastPathsDifferentialProperty asserts every AppendX fast path
// is byte-identical to its slice-building original over a seeded sample of
// the frame space, including when appending after a non-empty prefix.
func TestAppendFastPathsDifferentialProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	prefix := []byte{1, 0, 1}
	for i := 0; i < 1000; i++ {
		f := randomWireFrame(rng)

		raw := RawBits(f)
		if got := AppendRawBits(nil, f); !bitsEqual(got, raw) {
			t.Fatalf("frame %d (%v): AppendRawBits != RawBits\n got %v\nwant %v", i, f, got, raw)
		}
		if got := AppendRawBits(prefix, f); !bitsEqual(got[:3], prefix) || !bitsEqual(got[3:], raw) {
			t.Fatalf("frame %d (%v): AppendRawBits with prefix diverged", i, f)
		}

		stuffed := Stuff(raw)
		if got := AppendStuff(nil, raw); !bitsEqual(got, stuffed) {
			t.Fatalf("frame %d (%v): AppendStuff != Stuff\n got %v\nwant %v", i, f, got, stuffed)
		}

		enc := EncodeBits(f)
		if got := AppendEncodeBits(nil, f); !bitsEqual(got, enc) {
			t.Fatalf("frame %d (%v): AppendEncodeBits != EncodeBits\n got %v\nwant %v", i, f, got, enc)
		}
		if got := AppendEncodeBits(prefix, f); !bitsEqual(got[:3], prefix) || !bitsEqual(got[3:], enc) {
			t.Fatalf("frame %d (%v): AppendEncodeBits with prefix diverged", i, f)
		}
	}
}

// fdStuffRegionReference builds the FD dynamically stuffed region the
// slice-building way, mirroring the original fdDynamicStuffEstimate
// construction; it is the reference the scratch-buffer builder is tested
// against.
func fdStuffRegionReference(f FDFrame) []byte {
	bits := make([]byte, 0, 24+int(f.Len)*8)
	bits = append(bits, 0) // SOF
	for i := 10; i >= 0; i-- {
		bits = append(bits, byte(uint16(f.ID)>>uint(i)&1))
	}
	bits = append(bits, 0, 0, 1, 0) // RRS, IDE, FDF=1, res
	if f.BRS {
		bits = append(bits, 1)
	} else {
		bits = append(bits, 0)
	}
	if f.ESI {
		bits = append(bits, 1)
	} else {
		bits = append(bits, 0)
	}
	dlc, _ := FDLengthToDLC(int(f.Len))
	for i := 3; i >= 0; i-- {
		bits = append(bits, dlc>>uint(i)&1)
	}
	for _, by := range f.Data[:f.Len] {
		for i := 7; i >= 0; i-- {
			bits = append(bits, by>>uint(i)&1)
		}
	}
	return bits
}

// TestFDFastPathsDifferentialProperty asserts the FD scratch-buffer paths
// match their slice-building references: the stuff-region builder is
// byte-identical, the dynamic stuff estimate equals len(Stuff(region)) -
// len(region), and FDCRC equals the CRC of the slice-built covered region.
func TestFDFastPathsDifferentialProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 1000; i++ {
		f := randomFDWireFrame(rng)

		ref := fdStuffRegionReference(f)
		var buf [fdStuffRegionMax]byte
		n := fdStuffRegionBits(&buf, f)
		if !bitsEqual(buf[:n], ref) {
			t.Fatalf("frame %d (%v): fdStuffRegionBits diverged from reference", i, f)
		}

		wantStuff := len(Stuff(ref)) - len(ref)
		if got := fdDynamicStuffEstimate(f); got != wantStuff {
			t.Fatalf("frame %d (%v): dynamic stuff estimate = %d, want %d", i, f, got, wantStuff)
		}

		crcRef := make([]byte, 0, 15+int(f.Len)*8)
		for b := 10; b >= 0; b-- {
			crcRef = append(crcRef, byte(uint16(f.ID)>>uint(b)&1))
		}
		dlc, _ := FDLengthToDLC(int(f.Len))
		for b := 3; b >= 0; b-- {
			crcRef = append(crcRef, dlc>>uint(b)&1)
		}
		for _, by := range f.Data[:f.Len] {
			for b := 7; b >= 0; b-- {
				crcRef = append(crcRef, by>>uint(b)&1)
			}
		}
		wantWidth, wantPoly := 17, uint32(crc17Poly)
		if f.Len > 16 {
			wantWidth, wantPoly = 21, crc21Poly
		}
		wantCRC := crcFD(crcRef, wantPoly, wantWidth)
		if crc, width := FDCRC(f); crc != wantCRC || width != wantWidth {
			t.Fatalf("frame %d (%v): FDCRC = (%#x, %d), want (%#x, %d)",
				i, f, crc, width, wantCRC, wantWidth)
		}
	}
}

// TestStuffUnstuffRoundTripProperty checks Unstuff(Stuff(bits)) == bits both
// for real frame encodings and for arbitrary bit strings, including the
// stuffing-heavy all-equal runs.
func TestStuffUnstuffRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	check := func(i int, bits []byte) {
		t.Helper()
		back, err := Unstuff(Stuff(bits))
		if err != nil {
			t.Fatalf("case %d: unstuff: %v", i, err)
		}
		if len(back) != len(bits) {
			t.Fatalf("case %d: %d bits in, %d out", i, len(bits), len(back))
		}
		for j := range bits {
			if back[j] != bits[j] {
				t.Fatalf("case %d: bit %d flipped", i, j)
			}
		}
	}
	for i := 0; i < 1000; i++ {
		check(i, RawBits(randomFrame(rng)))

		n := rng.Intn(128)
		bits := make([]byte, n)
		for j := range bits {
			if rng.Intn(4) > 0 && j > 0 {
				bits[j] = bits[j-1] // bias toward runs that force stuffing
			} else {
				bits[j] = byte(rng.Intn(2))
			}
		}
		check(i, bits)
	}
}
