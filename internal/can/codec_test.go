package can

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMarshalUnmarshalRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 2000; i++ {
		f := randomFrame(rng)
		buf, err := Marshal(f)
		if err != nil {
			t.Fatalf("Marshal(%v): %v", f, err)
		}
		g, n, err := Unmarshal(buf)
		if err != nil {
			t.Fatalf("Unmarshal: %v", err)
		}
		if n != len(buf) {
			t.Fatalf("consumed %d bytes, want %d", n, len(buf))
		}
		if !f.Equal(g) {
			t.Fatalf("round trip mismatch: %v != %v", f, g)
		}
	}
}

func TestMarshalRemoteFrame(t *testing.T) {
	f, _ := NewRemote(0x215, 7)
	buf, err := Marshal(f)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	if len(buf) != 3 {
		t.Fatalf("remote frame encoding = %d bytes, want 3", len(buf))
	}
	g, _, err := Unmarshal(buf)
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if !g.Remote || g.Len != 7 || g.ID != 0x215 {
		t.Fatalf("decoded %+v", g)
	}
}

func TestMarshalRejectsInvalid(t *testing.T) {
	f := Frame{ID: 0x900}
	if _, err := Marshal(f); !errors.Is(err, ErrIDRange) {
		t.Fatalf("err = %v, want ErrIDRange", err)
	}
}

func TestUnmarshalTruncatedHeader(t *testing.T) {
	if _, _, err := Unmarshal([]byte{0x01}); !errors.Is(err, ErrTruncated) {
		t.Fatalf("err = %v, want ErrTruncated", err)
	}
}

func TestUnmarshalTruncatedPayload(t *testing.T) {
	buf := []byte{0x00, 0x10, 0x05, 0x01, 0x02} // dlc 5 but 2 bytes present
	if _, _, err := Unmarshal(buf); !errors.Is(err, ErrTruncated) {
		t.Fatalf("err = %v, want ErrTruncated", err)
	}
}

func TestUnmarshalBadDLC(t *testing.T) {
	buf := []byte{0x00, 0x10, 0x0C}
	if _, _, err := Unmarshal(buf); !errors.Is(err, ErrDataLen) {
		t.Fatalf("err = %v, want ErrDataLen", err)
	}
}

func TestUnmarshalRejectsReservedFlags(t *testing.T) {
	buf := []byte{0x40, 0x10, 0x00} // reserved flag bit set
	if _, _, err := Unmarshal(buf); err == nil {
		t.Fatal("expected error for reserved flag bits")
	}
}

func TestUnmarshalStream(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	frames := make([]Frame, 50)
	var stream []byte
	for i := range frames {
		frames[i] = randomFrame(rng)
		var err error
		stream, err = AppendMarshal(stream, frames[i])
		if err != nil {
			t.Fatal(err)
		}
	}
	off := 0
	for i := range frames {
		f, n, err := Unmarshal(stream[off:])
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !f.Equal(frames[i]) {
			t.Fatalf("frame %d mismatch", i)
		}
		off += n
	}
	if off != len(stream) {
		t.Fatalf("consumed %d of %d bytes", off, len(stream))
	}
}

func TestEncodeDecodeBitsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 500; i++ {
		f := randomFrame(rng)
		g, err := DecodeBits(EncodeBits(f))
		if err != nil {
			t.Fatalf("DecodeBits(%v): %v", f, err)
		}
		if !f.Equal(g) {
			t.Fatalf("bit round trip mismatch: %v != %v", f, g)
		}
	}
}

func TestDecodeBitsRemoteRoundTrip(t *testing.T) {
	f, _ := NewRemote(0x3AB, 3)
	g, err := DecodeBits(EncodeBits(f))
	if err != nil {
		t.Fatalf("DecodeBits: %v", err)
	}
	if !g.Remote || g.ID != 0x3AB || g.Len != 3 {
		t.Fatalf("decoded %+v", g)
	}
}

func TestDecodeBitsDetectsCorruption(t *testing.T) {
	f := MustNew(0x43A, []byte{0x1C, 0x21, 0x17, 0x71})
	bits := EncodeBits(f)
	// Flip one payload bit; expect either CRC error or stuffing violation.
	bits[25] ^= 1
	if _, err := DecodeBits(bits); err == nil {
		t.Fatal("corrupted bits decoded without error")
	}
}

func TestDecodeBitsTruncated(t *testing.T) {
	if _, err := DecodeBits([]byte{0, 1, 0, 1}); !errors.Is(err, ErrTruncated) {
		t.Fatalf("err = %v, want ErrTruncated", err)
	}
}

func TestCRC15KnownVectors(t *testing.T) {
	// CRC of the empty sequence is 0.
	if got := CRC15(nil); got != 0 {
		t.Fatalf("CRC15(nil) = %#x, want 0", got)
	}
	// A single 1 bit: crc = poly.
	if got := CRC15([]byte{1}); got != crc15Poly&0x7FFF {
		t.Fatalf("CRC15([1]) = %#x, want %#x", got, crc15Poly&0x7FFF)
	}
	// CRC must stay within 15 bits for long runs.
	bits := make([]byte, 4096)
	for i := range bits {
		bits[i] = byte(i % 2)
	}
	if got := CRC15(bits); got > 0x7FFF {
		t.Fatalf("CRC15 overflowed 15 bits: %#x", got)
	}
}

func TestFrameCRCChangesWithPayload(t *testing.T) {
	a := MustNew(0x100, []byte{1, 2, 3})
	b := MustNew(0x100, []byte{1, 2, 4})
	if FrameCRC(a) == FrameCRC(b) {
		t.Fatal("CRC collision on adjacent payloads (suspicious)")
	}
}

func TestPropertyMarshalRoundTrip(t *testing.T) {
	prop := func(idSeed uint16, raw []byte, remote bool) bool {
		id := ID(idSeed % NumIDs)
		var f Frame
		if remote {
			f, _ = NewRemote(id, uint8(len(raw)%9))
		} else {
			if len(raw) > MaxDataLen {
				raw = raw[:MaxDataLen]
			}
			f = MustNew(id, raw)
		}
		buf, err := Marshal(f)
		if err != nil {
			return false
		}
		g, _, err := Unmarshal(buf)
		return err == nil && f.Equal(g)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMarshal(b *testing.B) {
	f := MustNew(0x43A, []byte{0x1C, 0x21, 0x17, 0x71, 0x17, 0x71, 0xFF, 0xFF})
	buf := make([]byte, 0, 16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = buf[:0]
		buf, _ = AppendMarshal(buf, f)
	}
}

func BenchmarkEncodeBits(b *testing.B) {
	f := MustNew(0x43A, []byte{0x1C, 0x21, 0x17, 0x71, 0x17, 0x71, 0xFF, 0xFF})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		EncodeBits(f)
	}
}
