package can

// Bit-level view of a classic CAN frame.
//
// The simulated bus needs the exact on-wire length of every frame to model
// transmission latency at the configured bitrate (the paper's vehicle runs
// at 500 kb/s). That length depends on bit stuffing: after five consecutive
// equal bits in the stuffed region a complement bit is inserted, so the wire
// length varies with frame content. This file builds the full bit sequence
// of a standard frame — SOF, arbitration, control, data, CRC — applies
// stuffing, and appends the fixed-form trailer (CRC delimiter, ACK slot and
// delimiter, EOF, interframe space).

const (
	// Fixed-form trailer bits that are never stuffed:
	// CRC delimiter (1) + ACK slot (1) + ACK delimiter (1) + EOF (7).
	trailerBits = 10
	// InterframeSpace is the mandatory idle period between frames, in bits.
	InterframeSpace = 3
)

// headerBits returns the unstuffed header bit sequence of a standard frame:
// SOF(1) + ID(11) + RTR(1) + IDE(1) + r0(1) + DLC(4).
func headerBits(f Frame) []byte {
	bits := make([]byte, 0, 19)
	bits = append(bits, 0) // SOF: dominant
	for i := 10; i >= 0; i-- {
		bits = append(bits, byte(uint16(f.ID)>>uint(i)&1))
	}
	if f.Remote {
		bits = append(bits, 1) // RTR recessive for remote frames
	} else {
		bits = append(bits, 0)
	}
	bits = append(bits, 0, 0) // IDE dominant (standard frame), r0 reserved
	for i := 3; i >= 0; i-- {
		bits = append(bits, f.Len>>uint(i)&1)
	}
	return bits
}

// dataBits returns the payload bit sequence, MSB first per byte.
func dataBits(f Frame) []byte {
	if f.Remote {
		return nil
	}
	n := int(f.Len)
	if n > MaxDataLen {
		n = MaxDataLen
	}
	bits := make([]byte, 0, n*8)
	for _, b := range f.Data[:n] {
		for i := 7; i >= 0; i-- {
			bits = append(bits, b>>uint(i)&1)
		}
	}
	return bits
}

// RawBits returns the unstuffed bit sequence covered by stuffing:
// header + data + CRC-15.
func RawBits(f Frame) []byte {
	bits := append(headerBits(f), dataBits(f)...)
	crc := CRC15(bits)
	for i := 14; i >= 0; i-- {
		bits = append(bits, byte(crc>>uint(i)&1))
	}
	return bits
}

// maxRawFrameBits bounds the unstuffed raw sequence of a standard frame:
// header(19) + data(<=64) + crc(15).
const maxRawFrameBits = 98

// rawFrameBits fills buf with the unstuffed raw sequence of f — header,
// data, CRC-15 — and returns the bit count. It is the shared scratch-buffer
// builder behind the allocation-free paths (WireBits, AppendRawBits,
// AppendEncodeBits): the caller provides a fixed stack array, and the CRC
// runs byte-at-a-time off a table (the bit-serial update costs one
// data-dependent branch per input bit).
func rawFrameBits(bits *[maxRawFrameBits]byte, f Frame) int {
	n := 0
	bits[n] = 0 // SOF
	n++
	for i := 10; i >= 0; i-- {
		bits[n] = byte(uint16(f.ID) >> uint(i) & 1)
		n++
	}
	if f.Remote {
		bits[n] = 1
	} else {
		bits[n] = 0
	}
	n++
	bits[n] = 0 // IDE
	n++
	bits[n] = 0 // r0
	n++
	for i := 3; i >= 0; i-- {
		bits[n] = f.Len >> uint(i) & 1
		n++
	}
	if !f.Remote {
		dlc := int(f.Len)
		if dlc > MaxDataLen {
			dlc = MaxDataLen
		}
		for _, by := range f.Data[:dlc] {
			for i := 7; i >= 0; i-- {
				bits[n] = by >> uint(i) & 1
				n++
			}
		}
	}
	var crc uint16
	i := 0
	for ; i+8 <= n; i += 8 {
		v := bits[i]<<7 | bits[i+1]<<6 | bits[i+2]<<5 | bits[i+3]<<4 |
			bits[i+4]<<3 | bits[i+5]<<2 | bits[i+6]<<1 | bits[i+7]
		crc = ((crc << 8) ^ crc15Table[byte(crc>>7)^v]) & 0x7FFF
	}
	for ; i < n; i++ {
		next := uint16(bits[i]) ^ (crc >> 14 & 1)
		crc = ((crc << 1) & 0x7FFF) ^ next*crc15Poly
	}
	for i := 14; i >= 0; i-- {
		bits[n] = byte(crc >> uint(i) & 1)
		n++
	}
	return n
}

// AppendRawBits appends the unstuffed raw sequence of f (header + data +
// CRC-15) to dst and returns the extended slice. It is the scratch-buffer
// fast path equivalent of RawBits: byte-identical output, zero allocations
// when dst has capacity.
func AppendRawBits(dst []byte, f Frame) []byte {
	var bits [maxRawFrameBits]byte
	n := rawFrameBits(&bits, f)
	return append(dst, bits[:n]...)
}

// crc15Table drives the byte-at-a-time CRC-15 update in the codec paths:
// crc15Table[u] is the register state after clocking the 8 bits of u
// through a zeroed CRC-15 register, MSB first.
var crc15Table = func() (t [256]uint16) {
	for u := range t {
		crc := uint16(u) << 7
		for b := 0; b < 8; b++ {
			next := crc >> 14 & 1
			crc = ((crc << 1) & 0x7FFF) ^ next*crc15Poly
		}
		t[u] = crc
	}
	return t
}()
