package can

// Reference kernels for the wire codec.
//
// The production Stuff/Unstuff/countStuffBits/CRC paths now run over
// uint64 words (words.go); these are the original bit-at-a-time
// implementations, kept verbatim as the executable specification. The
// differential property suite (words_test.go) and the FuzzUnstuffWords
// target hold the word kernels byte-identical — output *and* error — to
// these references, so any divergence introduced by a future optimisation
// is a failing test, not a silent protocol drift.
//
// Reference-kernel policy: never optimise these. They trade speed for
// being obviously correct transcriptions of the CAN 2.0 / ISO 11898-1
// stuffing and CRC rules, one bit per iteration, and they are only
// reachable from tests and from the crcFD fallback for non-standard
// polynomial/width combinations.

// appendStuffRef is the bit-at-a-time stuffing reference: after five
// consecutive identical bits a complement bit is inserted, and the stuff
// bit itself counts toward the next run.
func appendStuffRef(dst, bits []byte) []byte {
	run := 0
	var last byte = 2 // sentinel: no previous bit
	for _, b := range bits {
		if b == last {
			run++
		} else {
			run = 1
			last = b
		}
		dst = append(dst, b)
		if run == 5 {
			stuffed := last ^ 1
			dst = append(dst, stuffed)
			last = stuffed
			run = 1
		}
	}
	return dst
}

// unstuffRef is the bit-at-a-time destuffing reference. It returns
// ErrStuffViolation where a real controller would signal an error frame:
// six consecutive equal bits, i.e. a bit in the stuff position that
// matches the run it should terminate.
func unstuffRef(bits []byte) ([]byte, error) {
	out := make([]byte, 0, len(bits))
	run := 0
	var last byte = 2
	skip := false
	for _, b := range bits {
		if skip {
			// This is a stuff bit; it must differ from the previous run.
			if b == last {
				return nil, ErrStuffViolation
			}
			last = b
			run = 1
			skip = false
			continue
		}
		if b == last {
			run++
		} else {
			run = 1
			last = b
		}
		if run == 6 {
			return nil, ErrStuffViolation
		}
		out = append(out, b)
		if run == 5 {
			skip = true
		}
	}
	return out, nil
}

// countStuffBitsRef is the bit-at-a-time stuff-count reference; a stuff
// bit counts toward the next run with inverted polarity.
func countStuffBitsRef(bits []byte) int {
	stuffed := 0
	run := 0
	var last byte = 2
	for _, b := range bits {
		if b == last {
			run++
		} else {
			run = 1
			last = b
		}
		if run == 5 {
			stuffed++
			last ^= 1
			run = 1
		}
	}
	return stuffed
}

// crc15Ref is the bit-serial CAN CRC-15 reference (Bosch CAN 2.0 §3.1.1).
func crc15Ref(bits []byte) uint16 {
	var crc uint16
	for _, b := range bits {
		crcNext := b&1 ^ byte(crc>>14&1)
		crc = (crc << 1) & 0x7FFF
		if crcNext == 1 {
			crc ^= crc15Poly
		}
	}
	return crc & 0x7FFF
}

// crcFDRef is the bit-serial n-bit CRC reference used for the FD
// polynomials; it also serves as the live fallback for polynomial/width
// combinations the byte tables do not cover.
func crcFDRef(bits []byte, poly uint32, width int) uint32 {
	var crc uint32
	top := uint32(1) << (width - 1)
	mask := top<<1 - 1
	for _, b := range bits {
		next := uint32(b&1) ^ (crc >> (width - 1) & 1)
		crc = (crc << 1) & mask
		if next == 1 {
			crc ^= poly & mask
		}
	}
	return crc & mask
}
