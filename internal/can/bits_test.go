package can

import (
	"errors"
	"math/rand"
	"testing"
)

func TestHeaderBitsLength(t *testing.T) {
	f := MustNew(0x43A, []byte{1, 2, 3})
	if got := len(headerBits(f)); got != 19 {
		t.Fatalf("header bits = %d, want 19", got)
	}
}

func TestRawBitsLength(t *testing.T) {
	// header(19) + data(len*8) + crc(15)
	for n := 0; n <= 8; n++ {
		f := MustNew(0x100, make([]byte, n))
		want := 19 + n*8 + 15
		if got := len(RawBits(f)); got != want {
			t.Fatalf("RawBits len for dlc %d = %d, want %d", n, got, want)
		}
	}
}

func TestStuffInsertsAfterFiveEqualBits(t *testing.T) {
	in := []byte{0, 0, 0, 0, 0}
	out := Stuff(in)
	want := []byte{0, 0, 0, 0, 0, 1}
	if len(out) != len(want) {
		t.Fatalf("Stuff(%v) = %v, want %v", in, out, want)
	}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("Stuff(%v) = %v, want %v", in, out, want)
		}
	}
}

func TestStuffCountsStuffBitTowardNextRun(t *testing.T) {
	// 0 0 0 0 0 -> stuff 1; then 1 1 1 1 -> with stuff bit that's five 1s,
	// so another stuff 0 must follow.
	in := []byte{0, 0, 0, 0, 0, 1, 1, 1, 1}
	out := Stuff(in)
	want := []byte{0, 0, 0, 0, 0, 1, 1, 1, 1, 1, 0}
	if len(out) != len(want) {
		t.Fatalf("Stuff = %v, want %v", out, want)
	}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("Stuff = %v, want %v", out, want)
		}
	}
}

func TestStuffNoChangeForAlternating(t *testing.T) {
	in := []byte{0, 1, 0, 1, 0, 1, 0, 1}
	out := Stuff(in)
	if len(out) != len(in) {
		t.Fatalf("alternating bits should not be stuffed: %v", out)
	}
}

func TestUnstuffRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 1000; i++ {
		n := rng.Intn(128)
		in := make([]byte, n)
		for j := range in {
			in[j] = byte(rng.Intn(2))
		}
		out, err := Unstuff(Stuff(in))
		if err != nil {
			t.Fatalf("Unstuff error: %v (input %v)", err, in)
		}
		if len(out) != len(in) {
			t.Fatalf("round trip length %d != %d", len(out), len(in))
		}
		for j := range in {
			if out[j] != in[j] {
				t.Fatalf("round trip mismatch at %d", j)
			}
		}
	}
}

func TestUnstuffDetectsViolation(t *testing.T) {
	in := []byte{1, 1, 1, 1, 1, 1} // six recessive bits
	if _, err := Unstuff(in); !errors.Is(err, ErrStuffViolation) {
		t.Fatalf("err = %v, want ErrStuffViolation", err)
	}
}

func TestWireBitsBounds(t *testing.T) {
	// A 0-byte frame: 19+15 = 34 raw bits, + trailer 10 = 44 min (no stuffing
	// can make it shorter). Max stuffing adds at most len/4 bits.
	f := MustNew(0, nil)
	got := WireBits(f)
	if got < 44 || got > 44+10 {
		t.Fatalf("WireBits(empty) = %d, out of plausible range", got)
	}
	// An 8-byte frame: 19+64+15 = 98 raw bits + 10 trailer = 108 minimum.
	f8 := MustNew(0x7FF, []byte{0x55, 0xAA, 0x55, 0xAA, 0x55, 0xAA, 0x55, 0xAA})
	got8 := WireBits(f8)
	if got8 < 108 || got8 > 108+24 {
		t.Fatalf("WireBits(8 bytes) = %d, out of plausible range", got8)
	}
}

func TestWireBitsWorstCaseStuffing(t *testing.T) {
	// All-zero frame maximises stuffing.
	f := MustNew(0, []byte{0, 0, 0, 0, 0, 0, 0, 0})
	if WireBits(f) <= 108 {
		t.Fatalf("all-zero frame should be stuffed: %d bits", WireBits(f))
	}
}

func TestWireBitsWithIFS(t *testing.T) {
	f := MustNew(0x100, []byte{1})
	if got, want := WireBitsWithIFS(f), WireBits(f)+3; got != want {
		t.Fatalf("WireBitsWithIFS = %d, want %d", got, want)
	}
}

func TestPropertyStuffedNeverHasSixEqualBits(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 500; i++ {
		f := randomFrame(rng)
		stuffed := EncodeBits(f)
		run, last := 0, byte(2)
		for _, b := range stuffed {
			if b == last {
				run++
			} else {
				run, last = 1, b
			}
			if run >= 6 {
				t.Fatalf("six equal bits in stuffed frame %v", f)
			}
		}
	}
}

func BenchmarkWireBits(b *testing.B) {
	f := MustNew(0x43A, []byte{0x1C, 0x21, 0x17, 0x71, 0x17, 0x71, 0xFF, 0xFF})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		WireBits(f)
	}
}

func TestWireBitsMatchesSlicePath(t *testing.T) {
	// The zero-allocation WireBits must agree exactly with the reference
	// Stuff(RawBits()) construction for every frame shape.
	rng := rand.New(rand.NewSource(23))
	for i := 0; i < 5000; i++ {
		f := randomFrame(rng)
		want := len(Stuff(RawBits(f))) + trailerBits
		if got := WireBits(f); got != want {
			t.Fatalf("WireBits(%v) = %d, want %d", f, got, want)
		}
	}
	// Remote frames too.
	for dlc := uint8(0); dlc <= 8; dlc++ {
		f, _ := NewRemote(ID(rng.Intn(NumIDs)), dlc)
		want := len(Stuff(RawBits(f))) + trailerBits
		if got := WireBits(f); got != want {
			t.Fatalf("WireBits(remote %v) = %d, want %d", f, got, want)
		}
	}
}
