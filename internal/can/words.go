package can

// Word-level wire codec kernels.
//
// The bit-slice codec walked one bit per iteration with a data-dependent
// branch per bit; on fuzz traffic those branches mispredict constantly and
// countStuffBits alone was ~40% of a campaign's CPU. This file reworks the
// stuffing and CRC kernels over uint64 words:
//
//   - frames pack MSB-first into words (bit i of the stream is bit 63-i of
//     word i/64), built directly from the frame fields without a bit array;
//   - stuff-bit counting runs a precomputed 9-state DFA one *byte* at a
//     time (stuffTable), branch-free;
//   - stuffing/destuffing jump whole runs at once via XOR + LeadingZeros64
//     instead of stepping bits;
//   - CRCs run byte-at-a-time off tables (crc15Table, crc17Table,
//     crc21Table).
//
// The original bit-at-a-time implementations survive verbatim in
// reference.go; the differential suite in words_test.go pins every kernel
// here byte-identical — output and error — to its reference.
//
// All bit-slice inputs follow the package contract: one bit per byte,
// values 0 or 1.

import "math/bits"

// stuffChunkWords sizes the stack window the slice-based kernels pack
// into: 16 words = 1024 bits per chunk, carrying DFA state across chunk
// boundaries for longer inputs.
const stuffChunkWords = 16

// The stuffing DFA has nine states: the start state (no previous bit) and
// (value, run) for value in {0,1} and run in 1..4 — a run of five resets
// to one with inverted value, emitting a stuff bit. encode/decode map a
// state to/from its table index.

func encodeStuffState(last byte, run int) uint8 {
	if last > 1 {
		return 0
	}
	return 1 + last<<2 + uint8(run-1)
}

func decodeStuffState(s uint8) (last byte, run int) {
	if s == 0 {
		return 2, 0
	}
	s--
	return s >> 2, int(s&3) + 1
}

// stuffTable[s][b] advances stuffing-DFA state s over the eight bits of b
// (MSB first) and packs the result as stuffCount<<4 | nextState. At most
// two stuff bits can fall inside one byte, so the count fits the high
// nibble with room to spare. The table is sized 16 rows (states 9..15
// unreachable and zero) so indexing with the unpacked low nibble needs no
// bounds check on the hot path.
var stuffTable = func() (t [16][256]uint8) {
	for s := 0; s < 9; s++ {
		for by := 0; by < 256; by++ {
			last, run := decodeStuffState(uint8(s))
			count := 0
			for i := 7; i >= 0; i-- {
				b := byte(by >> uint(i) & 1)
				if b == last {
					run++
				} else {
					run = 1
					last = b
				}
				if run == 5 {
					count++
					last ^= 1
					run = 1
				}
			}
			t[s][by] = uint8(count)<<4 | encodeStuffState(last, run)
		}
	}
	return t
}()

// countStuffWords counts the stuff bits Stuff would insert into the first
// n bits of the packed words, advancing *state (a stuffTable index) so
// callers can carry the DFA across chunks. Full bytes go through the
// table; the trailing partial byte steps serially.
func countStuffWords(state *uint8, words []uint64, n int) int {
	count := 0
	s := *state
	nb := n >> 3
	for i := 0; i < nb; i++ {
		b := byte(words[i>>3] >> (56 - uint(i&7)*8))
		e := stuffTable[s&0x0F][b]
		count += int(e >> 4)
		s = e & 0x0F
	}
	if rem := n & 7; rem != 0 {
		last, run := decodeStuffState(s)
		w := words[nb>>3] >> (56 - uint(nb&7)*8)
		for j := 7; j > 7-rem; j-- {
			b := byte(w >> uint(j) & 1)
			if b == last {
				run++
			} else {
				run = 1
				last = b
			}
			if run == 5 {
				count++
				last ^= 1
				run = 1
			}
		}
		s = encodeStuffState(last, run)
	}
	*state = s
	return count
}

// WireBits returns the total number of bits the frame occupies on the
// wire, including stuffing and the fixed-form trailer but excluding
// interframe space. This drives the bus transmission-latency model.
//
// It is the hottest function in the simulator (once per transmitted
// frame), so the CRC-15 and the stuffing DFA run fused in a single pass
// over the frame bytes. The two table walks are independent dependency
// chains, so the CPU overlaps them; packing the raw sequence into words
// first and re-reading it would serialize them back-to-back. The stream
// bytes the DFA consumes are the 19-bit header followed by the data,
// so each data byte contributes its top five bits to one stream byte
// and carries its low three into the next (the header leaves a 3-bit
// remainder, and 19+8·dlc+15 ≡ 2 mod 8 leaves a 2-bit serial tail).
func WireBits(f Frame) int {
	var rtr uint32
	if f.Remote {
		rtr = 1
	}
	// SOF(0) ID(11) RTR IDE(0) r0(0) DLC(4) = 19 bits.
	v := uint32(f.ID)<<7 | rtr<<6 | uint32(f.Len&0x0F)
	crc := crc15Table[byte(v>>16)]
	crc = ((crc << 8) ^ crc15Table[byte(crc>>7)^byte(v>>8)]) & 0x7FFF
	crc = ((crc << 8) ^ crc15Table[byte(crc>>7)^byte(v)]) & 0x7FFF

	e := stuffTable[0][byte(v>>11)]
	count := int(e >> 4)
	e = stuffTable[e&0x0F][byte(v>>3)]
	count += int(e >> 4)
	s := e & 0x0F

	c := byte(v) & 7 // header bits carried into the next stream byte
	n := 19
	if !f.Remote {
		dlc := int(f.Len)
		if dlc > MaxDataLen {
			dlc = MaxDataLen
		}
		for _, by := range f.Data[:dlc] {
			e = stuffTable[s][c<<5|by>>3]
			count += int(e >> 4)
			s = e & 0x0F
			c = by & 7
			crc = ((crc << 8) ^ crc15Table[byte(crc>>7)^by]) & 0x7FFF
		}
		n += dlc * 8
	}
	// Tail: 3 carried bits + 15 CRC bits = two stream bytes + 2 bits.
	t := uint32(c)<<15 | uint32(crc)
	e = stuffTable[s][byte(t>>10)]
	count += int(e >> 4)
	e = stuffTable[e&0x0F][byte(t>>2)]
	count += int(e >> 4)
	last, run := decodeStuffState(e & 0x0F)
	for j := 1; j >= 0; j-- {
		b := byte(t >> uint(j) & 1)
		if b == last {
			run++
		} else {
			run = 1
			last = b
		}
		if run == 5 {
			count++
			last ^= 1
			run = 1
		}
	}
	return n + 15 + count + trailerBits
}

// WireBitsWithIFS is WireBits plus the mandatory 3-bit interframe space;
// it is the effective bus occupancy of one frame.
func WireBitsWithIFS(f Frame) int { return WireBits(f) + InterframeSpace }

// packBitChunk packs a bit slice (≤ 1024 bits) MSB-first into w and
// returns the bit count; unfilled trailing bits are zero.
func packBitChunk(w *[stuffChunkWords]uint64, src []byte) int {
	for i := 0; i < (len(src)+63)>>6; i++ {
		w[i] = 0
	}
	i := 0
	for ; i+8 <= len(src); i += 8 {
		v := uint64(src[i]&1)<<7 | uint64(src[i+1]&1)<<6 |
			uint64(src[i+2]&1)<<5 | uint64(src[i+3]&1)<<4 |
			uint64(src[i+4]&1)<<3 | uint64(src[i+5]&1)<<2 |
			uint64(src[i+6]&1)<<1 | uint64(src[i+7]&1)
		w[i>>6] |= v << (56 - uint(i&63))
	}
	for ; i < len(src); i++ {
		w[i>>6] |= uint64(src[i]&1) << (63 - uint(i&63))
	}
	return len(src)
}

// bitAt reads bit i of the packed window.
func bitAt(w *[stuffChunkWords]uint64, i int) byte {
	return byte(w[i>>6] >> (63 - uint(i&63)) & 1)
}

// runLenWords returns the length of the maximal run of bit value b
// starting at position i within the first n packed bits: XOR against the
// broadcast value turns matching bits into zeros, and LeadingZeros64
// measures the run a word at a time.
func runLenWords(w *[stuffChunkWords]uint64, i, n int, b byte) int {
	var bcast uint64
	if b != 0 {
		bcast = ^uint64(0)
	}
	L := 0
	for i+L < n {
		idx := (i + L) >> 6
		off := uint((i + L) & 63)
		y := (w[idx] ^ bcast) << off
		z := bits.LeadingZeros64(y)
		avail := 64 - int(off)
		if z >= avail {
			L += avail
			continue
		}
		L += z
		break
	}
	if i+L > n {
		L = n - i
	}
	return L
}

// appendRun appends n copies of bit b.
func appendRun(dst []byte, b byte, n int) []byte {
	for j := 0; j < n; j++ {
		dst = append(dst, b)
	}
	return dst
}

// Stuff applies CAN bit stuffing to a bit sequence: after five
// consecutive identical bits, a bit of opposite polarity is inserted. The
// stuff bit itself counts toward the next run.
func Stuff(src []byte) []byte {
	return AppendStuff(make([]byte, 0, len(src)+len(src)/5), src)
}

// AppendStuff appends the stuffed form of src to dst and returns the
// extended slice. With a pre-sized dst it performs no allocation; Stuff
// is AppendStuff into a fresh slice.
//
// The kernel packs the input into uint64 words and jumps whole runs: a
// run of L equal bits entered with c prior equal bits emits its first
// stuff bit after 5-c bits and one more every 5 thereafter, and the
// post-run DFA state is derived in O(1) instead of stepping each bit.
func AppendStuff(dst, src []byte) []byte {
	var w [stuffChunkWords]uint64
	var last byte = 2
	run := 0
	for base := 0; base < len(src); base += stuffChunkWords * 64 {
		end := base + stuffChunkWords*64
		if end > len(src) {
			end = len(src)
		}
		n := packBitChunk(&w, src[base:end])
		for i := 0; i < n; {
			b := bitAt(&w, i)
			L := runLenWords(&w, i, n, b)
			c := 0
			if b == last {
				c = run
			}
			if c+L < 5 {
				dst = appendRun(dst, b, L)
				last = b
				run = c + L
			} else {
				// First stuff after 5-c bits, then one per further 5.
				k := 5 - c
				dst = appendRun(dst, b, k)
				dst = append(dst, b^1)
				rem := L - k
				for rem >= 5 {
					dst = appendRun(dst, b, 5)
					dst = append(dst, b^1)
					rem -= 5
				}
				if rem > 0 {
					dst = appendRun(dst, b, rem)
					last = b
					run = rem
				} else {
					// The run ended exactly on a stuff bit, which counts
					// toward the next run with inverted polarity.
					last = b ^ 1
					run = 1
				}
			}
			i += L
		}
	}
	return dst
}

// Unstuff removes stuffing from a bit sequence produced by Stuff. It
// returns an error if a stuffing violation is found (six consecutive
// equal bits), which on a real bus signals an error frame.
//
// Like AppendStuff it jumps runs over packed words: a run of L equal bits
// entered with c prior equal bits is a violation iff c+L >= 6, expects a
// stuff bit right after iff c+L == 5, and is plain payload otherwise.
func Unstuff(src []byte) ([]byte, error) {
	out := make([]byte, 0, len(src))
	var w [stuffChunkWords]uint64
	var last byte = 2
	run := 0
	skip := false
	for base := 0; base < len(src); base += stuffChunkWords * 64 {
		end := base + stuffChunkWords*64
		if end > len(src) {
			end = len(src)
		}
		n := packBitChunk(&w, src[base:end])
		i := 0
		if skip {
			// The stuff bit landed on a chunk boundary.
			b := bitAt(&w, 0)
			if b == last {
				return nil, ErrStuffViolation
			}
			last = b
			run = 1
			skip = false
			i = 1
		}
		for i < n {
			b := bitAt(&w, i)
			L := runLenWords(&w, i, n, b)
			c := 0
			if b == last {
				c = run
			}
			if c+L >= 6 {
				return nil, ErrStuffViolation
			}
			out = appendRun(out, b, L)
			i += L
			if c+L == 5 {
				if i < n {
					// The next bit is the stuff bit; it differs from b by
					// run maximality, matching the reference's check.
					last = bitAt(&w, i)
					run = 1
					i++
				} else {
					last = b
					skip = true
				}
			} else {
				last = b
				run = c + L
			}
		}
	}
	return out, nil
}

// countStuffBits returns how many stuff bits Stuff would insert into src;
// a stuff bit counts toward the next run with inverted polarity.
func countStuffBits(src []byte) int {
	count := 0
	var state uint8
	var w [stuffChunkWords]uint64
	for base := 0; base < len(src); base += stuffChunkWords * 64 {
		end := base + stuffChunkWords*64
		if end > len(src) {
			end = len(src)
		}
		n := packBitChunk(&w, src[base:end])
		count += countStuffWords(&state, w[:], n)
	}
	return count
}
