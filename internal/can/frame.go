// Package can implements the classic CAN 2.0A protocol data model used by
// the whole reproduction: standard data/remote frames with 11-bit
// identifiers, frame validation, the CRC-15 checksum, bit-stuffing
// accounting (needed to compute on-wire transmission time), and a compact
// wire codec for captures.
//
// The paper's fuzzer operates on standard frames only — "The target vehicle
// uses standard CAN data packets (11-bit ids)" (§VI) — so extended 29-bit
// frames are rejected by validation rather than silently truncated.
package can

import (
	"errors"
	"fmt"
	"strings"
)

// Protocol limits for classic CAN 2.0A.
const (
	// MaxID is the largest standard (11-bit) arbitration identifier.
	MaxID = 0x7FF // 2047
	// NumIDs is the size of the standard identifier space (Table III).
	NumIDs = MaxID + 1
	// MaxDataLen is the largest payload of a classic CAN data frame.
	MaxDataLen = 8
)

// Common validation errors, matchable with errors.Is.
var (
	ErrIDRange   = errors.New("can: identifier exceeds 11-bit range")
	ErrDataLen   = errors.New("can: payload longer than 8 bytes")
	ErrRemote    = errors.New("can: remote frame must not carry data")
	ErrTruncated = errors.New("can: truncated wire encoding")
)

// ID is a standard 11-bit CAN arbitration identifier. Lower values win
// arbitration (higher priority on the bus).
type ID uint16

// Valid reports whether the identifier fits in 11 bits.
func (id ID) Valid() bool { return id <= MaxID }

// String renders the identifier the way the paper's tables do: four
// uppercase hex digits (e.g. "043A").
func (id ID) String() string { return fmt.Sprintf("%04X", uint16(id)) }

// Frame is a classic CAN 2.0A frame. The zero value is a valid data frame
// with ID 0 and an empty payload.
type Frame struct {
	// ID is the 11-bit arbitration identifier.
	ID ID
	// Len is the data length code (0..8). For remote frames it encodes the
	// requested length and no data bytes are carried.
	Len uint8
	// Data holds the payload; only the first Len bytes are meaningful.
	Data [MaxDataLen]byte
	// Remote marks a remote transmission request (RTR) frame.
	Remote bool
}

// New builds a data frame from a payload slice. It returns an error if the
// identifier or payload is out of range.
func New(id ID, data []byte) (Frame, error) {
	var f Frame
	if !id.Valid() {
		return f, fmt.Errorf("%w: 0x%X", ErrIDRange, uint16(id))
	}
	if len(data) > MaxDataLen {
		return f, fmt.Errorf("%w: %d bytes", ErrDataLen, len(data))
	}
	f.ID = id
	f.Len = uint8(len(data))
	copy(f.Data[:], data)
	return f, nil
}

// MustNew is New for static frames known to be valid; it panics on error.
// Intended for tests and tables of constant frames.
func MustNew(id ID, data []byte) Frame {
	f, err := New(id, data)
	if err != nil {
		panic(err)
	}
	return f
}

// NewRemote builds a remote (RTR) frame requesting length dlc.
func NewRemote(id ID, dlc uint8) (Frame, error) {
	var f Frame
	if !id.Valid() {
		return f, fmt.Errorf("%w: 0x%X", ErrIDRange, uint16(id))
	}
	if dlc > MaxDataLen {
		return f, fmt.Errorf("%w: dlc %d", ErrDataLen, dlc)
	}
	f.ID = id
	f.Len = dlc
	f.Remote = true
	return f, nil
}

// Validate checks the frame against the classic CAN constraints.
func (f Frame) Validate() error {
	if !f.ID.Valid() {
		return fmt.Errorf("%w: 0x%X", ErrIDRange, uint16(f.ID))
	}
	if f.Len > MaxDataLen {
		return fmt.Errorf("%w: dlc %d", ErrDataLen, f.Len)
	}
	if f.Remote {
		for _, b := range f.Data[:f.Len] {
			if b != 0 {
				return ErrRemote
			}
		}
	}
	return nil
}

// Payload returns the meaningful bytes of the frame. The returned slice
// aliases a copy, so callers may retain or modify it freely.
func (f Frame) Payload() []byte {
	p := make([]byte, f.Len)
	copy(p, f.Data[:f.Len])
	return p
}

// Equal reports whether two frames are identical in every meaningful field
// (bytes beyond Len are ignored).
func (f Frame) Equal(g Frame) bool {
	if f.ID != g.ID || f.Len != g.Len || f.Remote != g.Remote {
		return false
	}
	for i := uint8(0); i < f.Len && i < MaxDataLen; i++ {
		if f.Data[i] != g.Data[i] {
			return false
		}
	}
	return true
}

// String renders the frame in the paper's table layout: "ID LEN DATA...",
// e.g. "043A 8 1C 21 17 71 17 71 FF FF".
func (f Frame) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s %d", f.ID, f.Len)
	if f.Remote {
		sb.WriteString(" R")
		return sb.String()
	}
	for _, b := range f.Data[:min(int(f.Len), MaxDataLen)] {
		fmt.Fprintf(&sb, " %02X", b)
	}
	return sb.String()
}
