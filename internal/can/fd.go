package can

// CAN FD (flexible data-rate) support — the paper lists "Apply the
// techniques to the Flexible Data-rate (FD) version of CAN" as future work
// (§VII); this file provides the frame model and wire-timing math so the
// fuzzer and bus can exercise FD targets.
//
// Modelled per ISO 11898-1:2015 at the granularity the simulator needs:
//
//   - payloads up to 64 bytes through the FD DLC code table;
//   - the arbitration phase (SOF..BRS) runs at the nominal bitrate, the
//     data phase (ESI..CRC delimiter) at the faster data bitrate when BRS
//     is set;
//   - CRC-17 for payloads up to 16 bytes, CRC-21 above;
//   - dynamic stuffing up to the CRC field, fixed stuff bits inside it
//     (one per four CRC bits, plus the leading one), and the stuff-count
//     field.
//
// There are no remote FD frames.

import (
	"errors"
	"fmt"
	"time"
)

// MaxFDDataLen is the largest CAN FD payload.
const MaxFDDataLen = 64

// ErrFDDataLen reports a payload length not representable by an FD DLC
// code.
var ErrFDDataLen = errors.New("can: FD payload length not representable")

// fdLengths are the payload sizes representable by FD DLC codes 0..15.
var fdLengths = [16]int{0, 1, 2, 3, 4, 5, 6, 7, 8, 12, 16, 20, 24, 32, 48, 64}

// FDLengthToDLC returns the DLC code for a payload length. Only the exact
// representable sizes are accepted: a real controller pads, but a fuzzer
// must know what it is sending.
func FDLengthToDLC(n int) (uint8, error) {
	for code, l := range fdLengths {
		if l == n {
			return uint8(code), nil
		}
	}
	return 0, fmt.Errorf("%w: %d bytes", ErrFDDataLen, n)
}

// FDDLCToLength returns the payload length for a DLC code (0..15).
func FDDLCToLength(code uint8) int {
	return fdLengths[code&0x0F]
}

// RoundUpFDLength returns the smallest representable FD payload size >= n
// (what a controller would pad to), capping at 64.
func RoundUpFDLength(n int) int {
	for _, l := range fdLengths {
		if l >= n {
			return l
		}
	}
	return MaxFDDataLen
}

// FDFrame is a CAN FD data frame with a standard 11-bit identifier.
type FDFrame struct {
	// ID is the 11-bit arbitration identifier.
	ID ID
	// Len is the payload length in bytes; it must be one of the FD DLC
	// sizes (0-8, 12, 16, 20, 24, 32, 48, 64).
	Len uint8
	// Data holds the payload; only the first Len bytes are meaningful.
	Data [MaxFDDataLen]byte
	// BRS requests the bit-rate switch: the data phase runs at the bus's
	// (faster) data bitrate.
	BRS bool
	// ESI is the error-state indicator flag of the transmitter.
	ESI bool
}

// NewFD builds an FD frame, validating the identifier and payload size.
func NewFD(id ID, data []byte, brs bool) (FDFrame, error) {
	var f FDFrame
	if !id.Valid() {
		return f, fmt.Errorf("%w: 0x%X", ErrIDRange, uint16(id))
	}
	if _, err := FDLengthToDLC(len(data)); err != nil {
		return f, err
	}
	f.ID = id
	f.Len = uint8(len(data))
	f.BRS = brs
	copy(f.Data[:], data)
	return f, nil
}

// MustNewFD is NewFD panicking on error, for static frames.
func MustNewFD(id ID, data []byte, brs bool) FDFrame {
	f, err := NewFD(id, data, brs)
	if err != nil {
		panic(err)
	}
	return f
}

// Validate checks the FD frame constraints.
func (f FDFrame) Validate() error {
	if !f.ID.Valid() {
		return fmt.Errorf("%w: 0x%X", ErrIDRange, uint16(f.ID))
	}
	if _, err := FDLengthToDLC(int(f.Len)); err != nil {
		return err
	}
	return nil
}

// Payload returns a copy of the meaningful payload bytes.
func (f FDFrame) Payload() []byte {
	p := make([]byte, f.Len)
	copy(p, f.Data[:f.Len])
	return p
}

// Equal reports whether two FD frames match in every meaningful field.
func (f FDFrame) Equal(g FDFrame) bool {
	if f.ID != g.ID || f.Len != g.Len || f.BRS != g.BRS || f.ESI != g.ESI {
		return false
	}
	for i := 0; i < int(f.Len); i++ {
		if f.Data[i] != g.Data[i] {
			return false
		}
	}
	return true
}

// String renders the frame like Frame.String with an FD marker.
func (f FDFrame) String() string {
	s := fmt.Sprintf("%s FD%d", f.ID, f.Len)
	for _, b := range f.Data[:f.Len] {
		s += fmt.Sprintf(" %02X", b)
	}
	return s
}

// CRC polynomials for FD (17- and 21-bit).
const (
	crc17Poly = 0x1685B
	crc21Poly = 0x102899
)

// crc17Table and crc21Table drive the byte-at-a-time updates for the two
// FD CRC widths: table[u] is the register after clocking the 8 bits of u
// through a zeroed register, MSB first.
var (
	crc17Table = makeFDTable(crc17Poly, 17)
	crc21Table = makeFDTable(crc21Poly, 21)
)

func makeFDTable(poly uint32, width int) (t [256]uint32) {
	mask := uint32(1)<<width - 1
	for u := range t {
		crc := uint32(u) << (width - 8)
		for b := 0; b < 8; b++ {
			next := crc >> (width - 1) & 1
			crc = (crc << 1) & mask
			if next == 1 {
				crc ^= poly & mask
			}
		}
		t[u] = crc
	}
	return t
}

// crcFD computes an n-bit CRC over a bit sequence with the given
// polynomial: byte-at-a-time off the width's table for the two standard
// FD combinations, bit-serial (crcFDRef) for anything else.
func crcFD(bs []byte, poly uint32, width int) uint32 {
	var t *[256]uint32
	switch {
	case poly == crc17Poly && width == 17:
		t = &crc17Table
	case poly == crc21Poly && width == 21:
		t = &crc21Table
	default:
		return crcFDRef(bs, poly, width)
	}
	mask := uint32(1)<<width - 1
	var crc uint32
	i := 0
	for ; i+8 <= len(bs); i += 8 {
		v := (bs[i]&1)<<7 | (bs[i+1]&1)<<6 | (bs[i+2]&1)<<5 | (bs[i+3]&1)<<4 |
			(bs[i+4]&1)<<3 | (bs[i+5]&1)<<2 | (bs[i+6]&1)<<1 | bs[i+7]&1
		crc = ((crc << 8) ^ t[byte(crc>>(width-8))^v]) & mask
	}
	for ; i < len(bs); i++ {
		next := uint32(bs[i]&1) ^ (crc >> (width - 1) & 1)
		crc = (crc << 1) & mask
		if next == 1 {
			crc ^= poly & mask
		}
	}
	return crc & mask
}

// fdArbitrationBits counts the FD header bits transmitted at the nominal
// bitrate: SOF(1) + ID(11) + RRS(1) + IDE(1) + FDF(1) + res(1) + BRS(1).
const fdArbitrationBits = 17

// fdPhaseBits returns the unstuffed bit counts of the two FD phases for a
// frame: arbitration-rate bits and data-rate bits (ESI + DLC + data + stuff
// count + CRC + CRC delimiter). When BRS is clear the "data phase" bits
// still exist but run at the nominal rate.
func fdPhaseBits(f FDFrame) (arb, data int) {
	crcBits := 17
	if f.Len > 16 {
		crcBits = 21
	}
	// ESI(1) + DLC(4) + payload + stuff count(4 incl. parity) + fixed
	// stuff bits (1 + crcBits/4) + CRC + CRC delimiter(1).
	fixedStuff := 1 + crcBits/4
	data = 1 + 4 + int(f.Len)*8 + 4 + fixedStuff + crcBits + 1
	return fdArbitrationBits, data
}

// fdStuffRegionMax bounds the dynamically stuffed region of an FD frame:
// SOF(1) + ID(11) + RRS/IDE/FDF/res(4) + BRS(1) + ESI(1) + DLC(4) = 22
// header bits (rounded to 24 for slack) plus the maximum payload.
const fdStuffRegionMax = 24 + MaxFDDataLen*8

// fdStuffRegionBits fills buf with the dynamically stuffed region of f —
// header flags + DLC + data — and returns the bit count. Like rawFrameBits
// for classic frames, the caller provides a fixed stack array so the
// per-frame FD wire-time math allocates nothing.
func fdStuffRegionBits(bits *[fdStuffRegionMax]byte, f FDFrame) int {
	n := 0
	bits[n] = 0 // SOF
	n++
	for i := 10; i >= 0; i-- {
		bits[n] = byte(uint16(f.ID) >> uint(i) & 1)
		n++
	}
	bits[n] = 0 // RRS
	n++
	bits[n] = 0 // IDE
	n++
	bits[n] = 1 // FDF
	n++
	bits[n] = 0 // res
	n++
	if f.BRS {
		bits[n] = 1
	} else {
		bits[n] = 0
	}
	n++
	if f.ESI {
		bits[n] = 1
	} else {
		bits[n] = 0
	}
	n++
	dlc, _ := FDLengthToDLC(int(f.Len))
	for i := 3; i >= 0; i-- {
		bits[n] = dlc >> uint(i) & 1
		n++
	}
	for _, by := range f.Data[:f.Len] {
		for i := 7; i >= 0; i-- {
			bits[n] = by >> uint(i) & 1
			n++
		}
	}
	return n
}

// fdStuffRegionWords packs the dynamically stuffed region of f — header
// flags + DLC + data — MSB-first into words and returns the bit count
// (22..534). It is the word-level counterpart of fdStuffRegionBits.
func fdStuffRegionWords(w *[fdStuffRegionMax/64 + 1]uint64, f FDFrame) int {
	for i := range w {
		w[i] = 0
	}
	var brs, esi uint64
	if f.BRS {
		brs = 1
	}
	if f.ESI {
		esi = 1
	}
	dlc, _ := FDLengthToDLC(int(f.Len))
	// SOF(0) ID(11) RRS(0) IDE(0) FDF(1) res(0) BRS ESI DLC(4) = 22 bits.
	v := uint64(f.ID)<<10 | 1<<7 | brs<<5 | esi<<4 | uint64(dlc)
	w[0] = v << 42
	n := 22
	for _, by := range f.Data[:f.Len] {
		idx := n >> 6
		off := uint(n & 63)
		if off <= 56 {
			w[idx] |= uint64(by) << (56 - off)
		} else {
			w[idx] |= uint64(by) >> (off - 56)
			w[idx+1] |= uint64(by) << (120 - off)
		}
		n += 8
	}
	return n
}

// fdDynamicStuffEstimate counts dynamic stuff bits over the header and
// payload region (FD dynamic stuffing stops at the stuff-count field),
// word-packed and DFA-counted like the classic WireBits path.
func fdDynamicStuffEstimate(f FDFrame) int {
	var w [fdStuffRegionMax/64 + 1]uint64
	n := fdStuffRegionWords(&w, f)
	var state uint8
	return countStuffWords(&state, w[:], n)
}

// FDWireTime returns the on-wire duration of an FD frame given the nominal
// (arbitration) and data-phase bitrates, including the ACK/EOF trailer and
// interframe space (always at the nominal rate).
func FDWireTime(f FDFrame, nominalBps, dataBps int) time.Duration {
	if dataBps <= 0 || !f.BRS {
		dataBps = nominalBps
	}
	arb, data := fdPhaseBits(f)
	stuff := fdDynamicStuffEstimate(f)
	// Dynamic stuff bits straddle both phases; attribute them to the data
	// phase, which dominates (payload ≫ header).
	trailer := 1 + 1 + 7 + InterframeSpace // ACK slot + delim + EOF + IFS
	arbTime := time.Duration(arb+trailer) * time.Second / time.Duration(nominalBps)
	dataTime := time.Duration(data+stuff) * time.Second / time.Duration(dataBps)
	return arbTime + dataTime
}

// FDCRC returns the frame's CRC value and width (17 or 21 bits), computed
// over the dynamically stuffed region as on the wire.
func FDCRC(f FDFrame) (crc uint32, width int) {
	width = 17
	t := &crc17Table
	if f.Len > 16 {
		width = 21
		t = &crc21Table
	}
	// The covered region is ID(11) + DLC(4) + payload. The register starts
	// at zero, so one pad bit byte-aligns the 15-bit prefix for free and
	// the whole CRC runs byte-at-a-time with no bit buffer at all.
	mask := uint32(1)<<width - 1
	dlc, _ := FDLengthToDLC(int(f.Len))
	hdr := uint16(f.ID)<<4 | uint16(dlc)
	crc = t[byte(hdr>>8)] & mask
	crc = ((crc << 8) ^ t[byte(crc>>(width-8))^byte(hdr)]) & mask
	for _, by := range f.Data[:f.Len] {
		crc = ((crc << 8) ^ t[byte(crc>>(width-8))^by]) & mask
	}
	return crc, width
}

// MarshalFD encodes an FD frame in a compact binary record:
// 2-byte header (flags | id), 1-byte length, payload.
func MarshalFD(f FDFrame) ([]byte, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	hdr := uint16(f.ID)
	if f.BRS {
		hdr |= 0x4000
	}
	if f.ESI {
		hdr |= 0x2000
	}
	out := make([]byte, 0, 3+f.Len)
	out = append(out, byte(hdr>>8), byte(hdr), f.Len)
	out = append(out, f.Data[:f.Len]...)
	return out, nil
}

// UnmarshalFD decodes one FD frame, returning bytes consumed.
func UnmarshalFD(buf []byte) (FDFrame, int, error) {
	var f FDFrame
	if len(buf) < 3 {
		return f, 0, ErrTruncated
	}
	hdr := uint16(buf[0])<<8 | uint16(buf[1])
	f.BRS = hdr&0x4000 != 0
	f.ESI = hdr&0x2000 != 0
	f.ID = ID(hdr & MaxID)
	if hdr&^uint16(0x6000|MaxID) != 0 {
		return f, 0, fmt.Errorf("can: reserved FD flag bits set: %#04x", hdr)
	}
	f.Len = buf[2]
	if _, err := FDLengthToDLC(int(f.Len)); err != nil {
		return f, 0, err
	}
	if len(buf) < 3+int(f.Len) {
		return f, 0, ErrTruncated
	}
	copy(f.Data[:f.Len], buf[3:3+f.Len])
	return f, 3 + int(f.Len), nil
}
