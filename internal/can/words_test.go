package can

// Differential battery for the word-level codec kernels (words.go): every
// kernel is pinned byte-identical — output and error — to its retained
// bit-at-a-time reference (reference.go) over a seeded sweep of random
// classic and FD frames, adversarial equal-bit runs, maximum-DLC and
// worst-case-stuffing payloads, and chunk-boundary lengths around the
// 1024-bit packing window.

import (
	"errors"
	"math/rand"
	"testing"
)

// stuffRef is appendStuffRef into a fresh slice, mirroring Stuff.
func stuffRef(src []byte) []byte {
	return appendStuffRef(make([]byte, 0, len(src)+len(src)/5), src)
}

// adversarialBits builds a bit string dominated by runs of 1..8 equal
// bits — the stuffing-heavy shapes where the run-jump kernels earn their
// keep and where off-by-one carry bugs would hide.
func adversarialBits(rng *rand.Rand, n int) []byte {
	out := make([]byte, 0, n)
	b := byte(rng.Intn(2))
	for len(out) < n {
		run := 1 + rng.Intn(8)
		if run > n-len(out) {
			run = n - len(out)
		}
		for i := 0; i < run; i++ {
			out = append(out, b)
		}
		if rng.Intn(6) > 0 {
			b ^= 1
		}
	}
	return out
}

// checkStuffKernels asserts all word stuffing kernels match their
// references on one input.
func checkStuffKernels(t *testing.T, label string, src []byte) {
	t.Helper()
	want := stuffRef(src)
	if got := Stuff(src); !bitsEqual(got, want) {
		t.Fatalf("%s: Stuff diverged from reference\n got %v\nwant %v", label, got, want)
	}
	prefix := []byte{1, 0, 1}
	if got := AppendStuff(prefix[:3:3], src); !bitsEqual(got[:3], prefix) || !bitsEqual(got[3:], want) {
		t.Fatalf("%s: AppendStuff with prefix diverged from reference", label)
	}
	if got, wantN := countStuffBits(src), len(want)-len(src); got != wantN {
		t.Fatalf("%s: countStuffBits = %d, want %d", label, got, wantN)
	}
	if got := countStuffBitsRef(src); got != len(want)-len(src) {
		t.Fatalf("%s: reference kernels disagree with each other", label)
	}
	checkUnstuffAgainstRef(t, label+" (stuffed)", want)
	back, err := Unstuff(want)
	if err != nil {
		t.Fatalf("%s: Unstuff(Stuff): %v", label, err)
	}
	if !bitsEqual(back, src) {
		t.Fatalf("%s: Unstuff(Stuff) did not round-trip", label)
	}
}

// checkUnstuffAgainstRef asserts the word Unstuff and unstuffRef agree on
// output and error for one (possibly invalid) input.
func checkUnstuffAgainstRef(t *testing.T, label string, src []byte) {
	t.Helper()
	got, gotErr := Unstuff(src)
	want, wantErr := unstuffRef(src)
	if !errors.Is(gotErr, wantErr) || (gotErr == nil) != (wantErr == nil) {
		t.Fatalf("%s: Unstuff error = %v, reference error = %v", label, gotErr, wantErr)
	}
	if gotErr == nil && !bitsEqual(got, want) {
		t.Fatalf("%s: Unstuff output diverged from reference\n got %v\nwant %v", label, got, want)
	}
}

// TestWordStuffDifferentialProperty sweeps the stuffing kernels: random
// classic frame encodings, random FD stuff regions, adversarial equal-bit
// runs, and hand-picked worst cases, comparing word kernels to the
// bit-at-a-time references bit for bit.
func TestWordStuffDifferentialProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	for i := 0; i < 6000; i++ {
		f := randomWireFrame(rng)
		checkStuffKernels(t, f.String(), RawBits(f))
	}
	for i := 0; i < 6000; i++ {
		f := randomFDWireFrame(rng)
		checkStuffKernels(t, f.String(), fdStuffRegionReference(f))
	}
	for i := 0; i < 2000; i++ {
		checkStuffKernels(t, "adversarial", adversarialBits(rng, rng.Intn(600)))
	}
	// Chunk-boundary lengths around the 1024-bit packing window.
	for _, n := range []int{0, 1, 5, 1019, 1023, 1024, 1025, 1029, 2048, 2055} {
		checkStuffKernels(t, "boundary", adversarialBits(rng, n))
		run := make([]byte, n)
		checkStuffKernels(t, "all-zero run", run)
		for j := range run {
			run[j] = 1
		}
		checkStuffKernels(t, "all-one run", run)
	}
	// Worst-case stuffing: alternating blocks of four equal bits after an
	// initial five — every stuff bit lands flush against the next run.
	worst := []byte{0, 0, 0, 0, 0}
	for len(worst) < 512 {
		b := worst[len(worst)-1] ^ 1
		worst = append(worst, b, b, b, b)
	}
	checkStuffKernels(t, "worst-case stuffing", worst)
	// Max-DLC frames with pathological payloads.
	for _, fill := range []byte{0x00, 0xFF, 0xAA, 0x55, 0x1F, 0xF8} {
		var data [8]byte
		for i := range data {
			data[i] = fill
		}
		checkStuffKernels(t, "max-DLC classic", RawBits(MustNew(0x7FF, data[:])))
		fdData := make([]byte, MaxFDDataLen)
		for i := range fdData {
			fdData[i] = fill
		}
		fd := MustNewFD(0x7FF, fdData, true)
		checkStuffKernels(t, "max-DLC FD", fdStuffRegionReference(fd))
	}
}

// TestWordUnstuffViolationDifferential feeds inputs that are *not* valid
// stuffed streams — raw random bits, corrupted stuffed streams, and long
// equal runs — and requires the word Unstuff to agree with the reference
// on both the error and, when accepted, the output.
func TestWordUnstuffViolationDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < 4000; i++ {
		raw := make([]byte, rng.Intn(200))
		for j := range raw {
			raw[j] = byte(rng.Intn(2))
		}
		checkUnstuffAgainstRef(t, "random", raw)

		adv := adversarialBits(rng, rng.Intn(200))
		checkUnstuffAgainstRef(t, "adversarial", adv)

		// Corrupt a valid stuffed stream with a single bit flip.
		stuffed := stuffRef(adv)
		if len(stuffed) > 0 {
			stuffed[rng.Intn(len(stuffed))] ^= 1
			checkUnstuffAgainstRef(t, "flipped", stuffed)
		}
	}
	// Six equal bits straddling every offset of the packing window.
	for off := 1019; off <= 1025; off++ {
		src := adversarialBits(rand.New(rand.NewSource(int64(off))), off)
		src = append(src, 1, 1, 1, 1, 1, 1)
		checkUnstuffAgainstRef(t, "boundary violation", src)
	}
}

// TestWordCRCDifferentialProperty pins the table-driven CRC kernels to
// the bit-serial references: CRC15 over random and run-heavy bit strings
// of every alignment, crcFD for both FD widths plus the non-standard
// fallback combination, and the frame-level FDCRC/WireBits compositions
// over ≥10k random frames.
func TestWordCRCDifferentialProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for n := 0; n <= 256; n++ {
		raw := make([]byte, n)
		for j := range raw {
			raw[j] = byte(rng.Intn(2))
		}
		if got, want := CRC15(raw), crc15Ref(raw); got != want {
			t.Fatalf("len %d: CRC15 = %#x, reference = %#x", n, got, want)
		}
		if got, want := crcFD(raw, crc17Poly, 17), crcFDRef(raw, crc17Poly, 17); got != want {
			t.Fatalf("len %d: crcFD/17 = %#x, reference = %#x", n, got, want)
		}
		if got, want := crcFD(raw, crc21Poly, 21), crcFDRef(raw, crc21Poly, 21); got != want {
			t.Fatalf("len %d: crcFD/21 = %#x, reference = %#x", n, got, want)
		}
		// Non-standard width must route to the bit-serial fallback.
		if got, want := crcFD(raw, 0x4599, 15), crcFDRef(raw, 0x4599, 15); got != want {
			t.Fatalf("len %d: crcFD/15 fallback = %#x, reference = %#x", n, got, want)
		}
	}
	for i := 0; i < 6000; i++ {
		f := randomWireFrame(rng)
		raw := append(headerBits(f), dataBits(f)...)
		if got, want := FrameCRC(f), crc15Ref(raw); got != want {
			t.Fatalf("frame %v: FrameCRC = %#x, reference = %#x", f, got, want)
		}
		wantWire := len(stuffRef(RawBits(f))) + trailerBits
		if got := WireBits(f); got != wantWire {
			t.Fatalf("frame %v: WireBits = %d, reference = %d", f, got, wantWire)
		}
	}
	for i := 0; i < 6000; i++ {
		f := randomFDWireFrame(rng)
		region := fdStuffRegionReference(f)
		wantStuff := len(stuffRef(region)) - len(region)
		if got := fdDynamicStuffEstimate(f); got != wantStuff {
			t.Fatalf("frame %v: fdDynamicStuffEstimate = %d, reference = %d", f, got, wantStuff)
		}
		crcRef := make([]byte, 0, 16+int(f.Len)*8)
		for b := 10; b >= 0; b-- {
			crcRef = append(crcRef, byte(uint16(f.ID)>>uint(b)&1))
		}
		dlc, _ := FDLengthToDLC(int(f.Len))
		for b := 3; b >= 0; b-- {
			crcRef = append(crcRef, dlc>>uint(b)&1)
		}
		for _, by := range f.Data[:f.Len] {
			for b := 7; b >= 0; b-- {
				crcRef = append(crcRef, by>>uint(b)&1)
			}
		}
		wantWidth, wantPoly := 17, uint32(crc17Poly)
		if f.Len > 16 {
			wantWidth, wantPoly = 21, crc21Poly
		}
		wantCRC := crcFDRef(crcRef, wantPoly, wantWidth)
		if crc, width := FDCRC(f); crc != wantCRC || width != wantWidth {
			t.Fatalf("frame %v: FDCRC = (%#x, %d), reference = (%#x, %d)",
				f, crc, width, wantCRC, wantWidth)
		}
	}
}

// FuzzUnstuffWords holds the word-level Unstuff byte-identical — output
// and error — to the bit-at-a-time reference kernel on arbitrary input.
func FuzzUnstuffWords(f *testing.F) {
	f.Add([]byte{0, 0, 0, 0, 0, 1, 1})
	f.Add([]byte{1, 1, 1, 1, 1, 1})
	f.Add(stuffRef(RawBits(MustNew(0x215, []byte{0x20, 0x5F, 1, 0, 0, 1, 0x20}))))
	f.Fuzz(func(t *testing.T, raw []byte) {
		src := make([]byte, len(raw))
		for i, b := range raw {
			src[i] = b & 1
		}
		got, gotErr := Unstuff(src)
		want, wantErr := unstuffRef(src)
		if (gotErr == nil) != (wantErr == nil) || !errors.Is(gotErr, wantErr) {
			t.Fatalf("Unstuff error = %v, reference = %v", gotErr, wantErr)
		}
		if gotErr == nil && !bitsEqual(got, want) {
			t.Fatalf("Unstuff output diverged from reference")
		}
	})
}
