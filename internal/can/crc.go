package can

import "errors"

// ErrStuffViolation reports six consecutive equal bits inside the stuffed
// region of a frame — on a physical bus this triggers an error frame.
var ErrStuffViolation = errors.New("can: bit stuffing violation")

// ErrCRC reports a CRC-15 mismatch when decoding a bit sequence.
var ErrCRC = errors.New("can: CRC mismatch")

// crc15Poly is the CAN CRC-15 generator polynomial
// x^15 + x^14 + x^10 + x^8 + x^7 + x^4 + x^3 + 1.
const crc15Poly = 0x4599

// CRC15 computes the CAN CRC-15 over a bit sequence (one bit per byte,
// values 0 or 1), as specified in Bosch CAN 2.0 §3.1.1.
func CRC15(bits []byte) uint16 {
	var crc uint16
	for _, b := range bits {
		crcNext := b&1 ^ byte(crc>>14&1)
		crc = (crc << 1) & 0x7FFF
		if crcNext == 1 {
			crc ^= crc15Poly
		}
	}
	return crc & 0x7FFF
}

// FrameCRC returns the CRC-15 of the frame's header and data fields, i.e.
// the checksum transmitted in the CRC field on the wire.
func FrameCRC(f Frame) uint16 {
	return CRC15(append(headerBits(f), dataBits(f)...))
}
