package can

import "errors"

// ErrStuffViolation reports six consecutive equal bits inside the stuffed
// region of a frame — on a physical bus this triggers an error frame.
var ErrStuffViolation = errors.New("can: bit stuffing violation")

// ErrCRC reports a CRC-15 mismatch when decoding a bit sequence.
var ErrCRC = errors.New("can: CRC mismatch")

// crc15Poly is the CAN CRC-15 generator polynomial
// x^15 + x^14 + x^10 + x^8 + x^7 + x^4 + x^3 + 1.
const crc15Poly = 0x4599

// CRC15 computes the CAN CRC-15 over a bit sequence (one bit per byte,
// values 0 or 1), as specified in Bosch CAN 2.0 §3.1.1. Eight input bits
// at a time go through crc15Table; the trailing partial byte steps
// serially. crc15Ref in reference.go is the bit-serial specification this
// is tested against.
func CRC15(bits []byte) uint16 {
	var crc uint16
	i := 0
	for ; i+8 <= len(bits); i += 8 {
		v := (bits[i]&1)<<7 | (bits[i+1]&1)<<6 | (bits[i+2]&1)<<5 | (bits[i+3]&1)<<4 |
			(bits[i+4]&1)<<3 | (bits[i+5]&1)<<2 | (bits[i+6]&1)<<1 | bits[i+7]&1
		crc = ((crc << 8) ^ crc15Table[byte(crc>>7)^v]) & 0x7FFF
	}
	for ; i < len(bits); i++ {
		next := uint16(bits[i]&1) ^ (crc >> 14 & 1)
		crc = ((crc << 1) & 0x7FFF) ^ next*crc15Poly
	}
	return crc & 0x7FFF
}

// FrameCRC returns the CRC-15 of the frame's header and data fields, i.e.
// the checksum transmitted in the CRC field on the wire.
func FrameCRC(f Frame) uint16 {
	return CRC15(append(headerBits(f), dataBits(f)...))
}
