package can

import (
	"encoding/binary"
	"fmt"
)

// Wire codec.
//
// Two encodings are provided:
//
//  1. A compact 4+N byte binary record (Marshal/Unmarshal) used by the
//     capture package and any transport that ships frames between
//     processes. Layout, big endian:
//
//       byte 0-1  flags(4 bits: bit15 remote) | 11-bit ID in the low bits
//       byte 2    DLC
//       byte 3..  DLC data bytes (absent for remote frames)
//
//  2. The physical bit sequence (EncodeBits/DecodeBits), which round-trips
//     through CRC computation and bit stuffing. The simulated bus does not
//     ship bits for performance, but tests use this to prove the frame
//     model is wire-faithful and the fuzzer's bit-level mode manipulates
//     real stuffed sequences.

const flagRemote = 0x8000

// AppendMarshal appends the compact encoding of f to dst and returns the
// extended slice.
func AppendMarshal(dst []byte, f Frame) ([]byte, error) {
	if err := f.Validate(); err != nil {
		return dst, err
	}
	hdr := uint16(f.ID)
	if f.Remote {
		hdr |= flagRemote
	}
	dst = binary.BigEndian.AppendUint16(dst, hdr)
	dst = append(dst, f.Len)
	if !f.Remote {
		dst = append(dst, f.Data[:f.Len]...)
	}
	return dst, nil
}

// Marshal returns the compact binary encoding of f.
func Marshal(f Frame) ([]byte, error) {
	return AppendMarshal(make([]byte, 0, 3+f.Len), f)
}

// Unmarshal decodes one frame from the start of buf, returning the frame
// and the number of bytes consumed.
func Unmarshal(buf []byte) (Frame, int, error) {
	var f Frame
	if len(buf) < 3 {
		return f, 0, ErrTruncated
	}
	hdr := binary.BigEndian.Uint16(buf[:2])
	f.Remote = hdr&flagRemote != 0
	f.ID = ID(hdr & MaxID)
	if hdr&^uint16(flagRemote|MaxID) != 0 {
		return f, 0, fmt.Errorf("can: reserved flag bits set: %#04x", hdr)
	}
	f.Len = buf[2]
	if f.Len > MaxDataLen {
		return f, 0, fmt.Errorf("%w: dlc %d", ErrDataLen, f.Len)
	}
	n := 3
	if !f.Remote {
		if len(buf) < 3+int(f.Len) {
			return f, 0, ErrTruncated
		}
		copy(f.Data[:f.Len], buf[3:3+f.Len])
		n += int(f.Len)
	}
	return f, n, nil
}

// EncodeBits returns the stuffed physical bit sequence of the frame
// (header + data + CRC, stuffed), without the fixed-form trailer.
func EncodeBits(f Frame) []byte { return Stuff(RawBits(f)) }

// AppendEncodeBits appends the stuffed physical bit sequence of f to dst
// and returns the extended slice: the scratch-buffer fast path equivalent
// of EncodeBits (byte-identical output) for callers that re-encode frames
// per tick, such as the bit-level fuzz mode. The raw sequence is built in a
// fixed stack buffer, so with a pre-sized dst the call performs no
// allocation.
func AppendEncodeBits(dst []byte, f Frame) []byte {
	var bits [maxRawFrameBits]byte
	n := rawFrameBits(&bits, f)
	return AppendStuff(dst, bits[:n])
}

// DecodeBits reconstructs a frame from a stuffed bit sequence produced by
// EncodeBits, verifying the CRC-15.
func DecodeBits(stuffed []byte) (Frame, error) {
	var f Frame
	raw, err := Unstuff(stuffed)
	if err != nil {
		return f, err
	}
	// Minimum raw frame: 19 header bits + 15 CRC bits.
	if len(raw) < 19+15 {
		return f, ErrTruncated
	}
	if raw[0] != 0 {
		return f, fmt.Errorf("can: bad SOF bit")
	}
	var id uint16
	for _, b := range raw[1:12] {
		id = id<<1 | uint16(b&1)
	}
	f.ID = ID(id)
	f.Remote = raw[12] == 1
	if raw[13] != 0 {
		return f, fmt.Errorf("can: IDE bit set (extended frames unsupported)")
	}
	var dlc uint8
	for _, b := range raw[15:19] {
		dlc = dlc<<1 | b&1
	}
	if dlc > MaxDataLen {
		return f, fmt.Errorf("%w: dlc %d", ErrDataLen, dlc)
	}
	f.Len = dlc
	dataEnd := 19
	if !f.Remote {
		dataEnd += int(dlc) * 8
		if len(raw) != dataEnd+15 {
			return f, ErrTruncated
		}
		for i := 0; i < int(dlc); i++ {
			var by byte
			for _, b := range raw[19+i*8 : 19+(i+1)*8] {
				by = by<<1 | b&1
			}
			f.Data[i] = by
		}
	} else if len(raw) != dataEnd+15 {
		return f, ErrTruncated
	}
	var crc uint16
	for _, b := range raw[dataEnd : dataEnd+15] {
		crc = crc<<1 | uint16(b&1)
	}
	if want := CRC15(raw[:dataEnd]); crc != want {
		return f, fmt.Errorf("%w: got %#04x want %#04x", ErrCRC, crc, want)
	}
	return f, nil
}
