package can

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewValidFrame(t *testing.T) {
	f, err := New(0x43A, []byte{0x1C, 0x21, 0x17, 0x71, 0x17, 0x71, 0xFF, 0xFF})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if f.ID != 0x43A || f.Len != 8 {
		t.Fatalf("frame = %+v", f)
	}
	if f.Remote {
		t.Fatal("data frame marked remote")
	}
}

func TestNewRejectsBigID(t *testing.T) {
	_, err := New(0x800, nil)
	if !errors.Is(err, ErrIDRange) {
		t.Fatalf("err = %v, want ErrIDRange", err)
	}
}

func TestNewRejectsLongPayload(t *testing.T) {
	_, err := New(1, make([]byte, 9))
	if !errors.Is(err, ErrDataLen) {
		t.Fatalf("err = %v, want ErrDataLen", err)
	}
}

func TestNewAcceptsEmptyPayload(t *testing.T) {
	f, err := New(0x68, nil)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if f.Len != 0 {
		t.Fatalf("Len = %d, want 0", f.Len)
	}
}

func TestMustNewPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustNew(0xFFFF, nil)
}

func TestNewRemote(t *testing.T) {
	f, err := NewRemote(0x100, 4)
	if err != nil {
		t.Fatalf("NewRemote: %v", err)
	}
	if !f.Remote || f.Len != 4 {
		t.Fatalf("frame = %+v", f)
	}
	if err := f.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestNewRemoteRejectsBadDLC(t *testing.T) {
	if _, err := NewRemote(0x100, 9); !errors.Is(err, ErrDataLen) {
		t.Fatalf("err = %v, want ErrDataLen", err)
	}
}

func TestValidateRemoteWithData(t *testing.T) {
	f := Frame{ID: 1, Len: 2, Remote: true}
	f.Data[0] = 0xAA
	if err := f.Validate(); !errors.Is(err, ErrRemote) {
		t.Fatalf("err = %v, want ErrRemote", err)
	}
}

func TestValidateBadDLC(t *testing.T) {
	f := Frame{ID: 1, Len: 12}
	if err := f.Validate(); !errors.Is(err, ErrDataLen) {
		t.Fatalf("err = %v, want ErrDataLen", err)
	}
}

func TestIDString(t *testing.T) {
	cases := []struct {
		id   ID
		want string
	}{
		{0x43A, "043A"},
		{0x296, "0296"},
		{0x0, "0000"},
		{0x7FF, "07FF"},
	}
	for _, c := range cases {
		if got := c.id.String(); got != c.want {
			t.Errorf("ID(%#x).String() = %q, want %q", uint16(c.id), got, c.want)
		}
	}
}

func TestFrameStringMatchesPaperLayout(t *testing.T) {
	// Table II row: 043A 8 "1C 21 17 71 17 71 FF FF".
	f := MustNew(0x43A, []byte{0x1C, 0x21, 0x17, 0x71, 0x17, 0x71, 0xFF, 0xFF})
	want := "043A 8 1C 21 17 71 17 71 FF FF"
	if got := f.String(); got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}

func TestFrameStringRemote(t *testing.T) {
	f, _ := NewRemote(0x215, 7)
	if got := f.String(); got != "0215 7 R" {
		t.Fatalf("String() = %q", got)
	}
}

func TestPayloadIsCopy(t *testing.T) {
	f := MustNew(0x10, []byte{1, 2, 3})
	p := f.Payload()
	p[0] = 99
	if f.Data[0] != 1 {
		t.Fatal("Payload() aliases frame storage")
	}
	if len(p) != 3 {
		t.Fatalf("len(Payload()) = %d, want 3", len(p))
	}
}

func TestEqualIgnoresBytesBeyondLen(t *testing.T) {
	a := MustNew(0x10, []byte{1, 2})
	b := a
	b.Data[5] = 0xEE // beyond Len
	if !a.Equal(b) {
		t.Fatal("Equal should ignore bytes beyond Len")
	}
	b.Data[1] = 9
	if a.Equal(b) {
		t.Fatal("Equal missed payload difference")
	}
}

func TestEqualDistinguishesKind(t *testing.T) {
	a := MustNew(0x10, nil)
	r, _ := NewRemote(0x10, 0)
	if a.Equal(r) {
		t.Fatal("data and remote frames compared equal")
	}
}

// randomFrame builds a uniformly random valid data frame.
func randomFrame(rng *rand.Rand) Frame {
	n := rng.Intn(MaxDataLen + 1)
	data := make([]byte, n)
	rng.Read(data)
	return MustNew(ID(rng.Intn(NumIDs)), data)
}

func TestPropertyNewRoundTripsPayload(t *testing.T) {
	prop := func(idSeed uint16, data []byte) bool {
		id := ID(idSeed % NumIDs)
		if len(data) > MaxDataLen {
			data = data[:MaxDataLen]
		}
		f, err := New(id, data)
		if err != nil {
			return false
		}
		p := f.Payload()
		if len(p) != len(data) {
			return false
		}
		for i := range data {
			if p[i] != data[i] {
				return false
			}
		}
		return f.Validate() == nil
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyEqualIsReflexive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		f := randomFrame(rng)
		if !f.Equal(f) {
			t.Fatalf("frame not equal to itself: %v", f)
		}
	}
}
