package can

// Native Go fuzz targets over the wire codecs — the reproduction's
// equivalent of the paper's §VII suggestion to "fuzz the APIs for vehicle
// engineering tools... to ensure their resilience": these parsers are what
// a capture/injection tool exposes to untrusted input. Run with
// go test -fuzz; under plain go test they execute the seed corpus.

import (
	"testing"
)

func FuzzUnmarshal(f *testing.F) {
	seed, _ := Marshal(MustNew(0x43A, []byte{0x1C, 0x21, 0x17, 0x71}))
	f.Add(seed)
	f.Add([]byte{})
	f.Add([]byte{0x80, 0x15, 0x07})
	f.Fuzz(func(t *testing.T, data []byte) {
		frame, n, err := Unmarshal(data)
		if err != nil {
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		if err := frame.Validate(); err != nil {
			t.Fatalf("Unmarshal returned invalid frame: %v", err)
		}
		// Accepted input must round-trip.
		out, err := Marshal(frame)
		if err != nil {
			t.Fatalf("re-marshal failed: %v", err)
		}
		back, _, err := Unmarshal(out)
		if err != nil || !back.Equal(frame) {
			t.Fatalf("round trip mismatch")
		}
	})
}

func FuzzDecodeBits(f *testing.F) {
	f.Add(EncodeBits(MustNew(0x215, []byte{0x20, 0x5F, 1, 0, 0, 1, 0x20})))
	f.Add([]byte{0, 1, 0, 1, 1})
	f.Fuzz(func(t *testing.T, raw []byte) {
		// Normalise to bit values; the decoder contract is bits.
		bits := make([]byte, len(raw))
		for i, b := range raw {
			bits[i] = b & 1
		}
		frame, err := DecodeBits(bits)
		if err != nil {
			return
		}
		if err := frame.Validate(); err != nil {
			t.Fatalf("DecodeBits returned invalid frame: %v", err)
		}
		// Accepted bits must re-encode to an equal frame.
		back, err := DecodeBits(EncodeBits(frame))
		if err != nil || !back.Equal(frame) {
			t.Fatalf("bit round trip mismatch")
		}
	})
}

func FuzzUnmarshalFD(f *testing.F) {
	seed, _ := MarshalFD(MustNewFD(0x100, make([]byte, 12), true))
	f.Add(seed)
	f.Add([]byte{0x40, 0x00, 0x0C})
	f.Fuzz(func(t *testing.T, data []byte) {
		frame, n, err := UnmarshalFD(data)
		if err != nil {
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		if err := frame.Validate(); err != nil {
			t.Fatalf("UnmarshalFD returned invalid frame: %v", err)
		}
	})
}

func FuzzUnstuff(f *testing.F) {
	f.Add([]byte{0, 0, 0, 0, 0, 1, 1})
	f.Fuzz(func(t *testing.T, raw []byte) {
		bits := make([]byte, len(raw))
		for i, b := range raw {
			bits[i] = b & 1
		}
		out, err := Unstuff(bits)
		if err != nil {
			return
		}
		// Unstuffed output can never be longer than the input.
		if len(out) > len(bits) {
			t.Fatalf("Unstuff grew the sequence: %d > %d", len(out), len(bits))
		}
	})
}
