package can

import (
	"errors"
	"math/rand"
	"testing"
	"time"
)

func TestFDDLCTable(t *testing.T) {
	valid := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 12, 16, 20, 24, 32, 48, 64}
	for code, want := range valid {
		if got := FDDLCToLength(uint8(code)); got != want {
			t.Fatalf("FDDLCToLength(%d) = %d, want %d", code, got, want)
		}
		back, err := FDLengthToDLC(want)
		if err != nil || back != uint8(code) {
			t.Fatalf("FDLengthToDLC(%d) = %d, %v", want, back, err)
		}
	}
	for _, bad := range []int{9, 10, 11, 13, 33, 63, 65, -1} {
		if _, err := FDLengthToDLC(bad); !errors.Is(err, ErrFDDataLen) {
			t.Fatalf("FDLengthToDLC(%d) accepted", bad)
		}
	}
}

func TestRoundUpFDLength(t *testing.T) {
	cases := map[int]int{0: 0, 5: 5, 9: 12, 13: 16, 25: 32, 33: 48, 49: 64, 70: 64}
	for in, want := range cases {
		if got := RoundUpFDLength(in); got != want {
			t.Fatalf("RoundUpFDLength(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestNewFDValidation(t *testing.T) {
	if _, err := NewFD(0x900, nil, false); !errors.Is(err, ErrIDRange) {
		t.Fatalf("err = %v", err)
	}
	if _, err := NewFD(0x100, make([]byte, 9), false); !errors.Is(err, ErrFDDataLen) {
		t.Fatalf("err = %v", err)
	}
	f, err := NewFD(0x100, make([]byte, 64), true)
	if err != nil {
		t.Fatal(err)
	}
	if f.Len != 64 || !f.BRS {
		t.Fatalf("frame = %+v", f)
	}
}

func TestFDPayloadAndEqual(t *testing.T) {
	f := MustNewFD(0x10, []byte{1, 2, 3, 4}, false)
	p := f.Payload()
	p[0] = 99
	if f.Data[0] != 1 {
		t.Fatal("Payload aliases storage")
	}
	g := f
	if !f.Equal(g) {
		t.Fatal("Equal broken")
	}
	g.BRS = true
	if f.Equal(g) {
		t.Fatal("Equal ignores BRS")
	}
}

func TestFDString(t *testing.T) {
	f := MustNewFD(0x43A, []byte{0xAB, 0xCD}, true)
	if got := f.String(); got != "043A FD2 AB CD" {
		t.Fatalf("String = %q", got)
	}
}

func TestFDCRCWidthSwitches(t *testing.T) {
	small := MustNewFD(0x100, make([]byte, 16), false)
	big := MustNewFD(0x100, make([]byte, 20), false)
	_, w1 := FDCRC(small)
	_, w2 := FDCRC(big)
	if w1 != 17 || w2 != 21 {
		t.Fatalf("CRC widths = %d, %d", w1, w2)
	}
}

func TestFDCRCSensitiveToPayload(t *testing.T) {
	a := MustNewFD(0x100, []byte{1, 2, 3, 4}, false)
	b := MustNewFD(0x100, []byte{1, 2, 3, 5}, false)
	ca, _ := FDCRC(a)
	cb, _ := FDCRC(b)
	if ca == cb {
		t.Fatal("CRC collision on adjacent payloads")
	}
}

func TestFDWireTimeBRSFasterForLargePayload(t *testing.T) {
	data := make([]byte, 64)
	slow := MustNewFD(0x100, data, false)
	fast := MustNewFD(0x100, data, true)
	tSlow := FDWireTime(slow, 500_000, 2_000_000)
	tFast := FDWireTime(fast, 500_000, 2_000_000)
	if tFast >= tSlow {
		t.Fatalf("BRS frame not faster: %v vs %v", tFast, tSlow)
	}
	// The data phase dominates a 64-byte frame: the 4x bitrate should cut
	// total time by at least 2.5x.
	if float64(tSlow)/float64(tFast) < 2.5 {
		t.Fatalf("speedup only %v/%v", tSlow, tFast)
	}
}

func TestFDWireTimeMonotonicInPayload(t *testing.T) {
	var last time.Duration
	for _, n := range []int{0, 8, 16, 32, 64} {
		f := MustNewFD(0x100, make([]byte, n), false)
		d := FDWireTime(f, 500_000, 0)
		if d <= last {
			t.Fatalf("wire time not increasing at %d bytes: %v <= %v", n, d, last)
		}
		last = d
	}
}

func TestFDBeatsClassicForBulkTransfer(t *testing.T) {
	// Moving 64 bytes: one FD frame at 500k/2M vs eight classic frames.
	payload := make([]byte, 64)
	for i := range payload {
		payload[i] = byte(i * 37)
	}
	fd := MustNewFD(0x100, payload, true)
	fdTime := FDWireTime(fd, 500_000, 2_000_000)
	var classicTime time.Duration
	for i := 0; i < 8; i++ {
		f := MustNew(0x100, payload[i*8:(i+1)*8])
		classicTime += time.Duration(WireBitsWithIFS(f)) * time.Second / 500_000
	}
	if fdTime >= classicTime {
		t.Fatalf("FD bulk transfer not faster: %v vs %v", fdTime, classicTime)
	}
}

func TestMarshalUnmarshalFDRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	sizes := []int{0, 1, 7, 8, 12, 16, 20, 24, 32, 48, 64}
	for i := 0; i < 1000; i++ {
		n := sizes[rng.Intn(len(sizes))]
		data := make([]byte, n)
		rng.Read(data)
		f := MustNewFD(ID(rng.Intn(NumIDs)), data, rng.Intn(2) == 0)
		f.ESI = rng.Intn(2) == 0
		buf, err := MarshalFD(f)
		if err != nil {
			t.Fatal(err)
		}
		g, consumed, err := UnmarshalFD(buf)
		if err != nil {
			t.Fatal(err)
		}
		if consumed != len(buf) || !f.Equal(g) {
			t.Fatalf("round trip mismatch: %v vs %v", f, g)
		}
	}
}

func TestUnmarshalFDErrors(t *testing.T) {
	if _, _, err := UnmarshalFD([]byte{1}); !errors.Is(err, ErrTruncated) {
		t.Fatal("short header accepted")
	}
	if _, _, err := UnmarshalFD([]byte{0x00, 0x10, 9}); !errors.Is(err, ErrFDDataLen) {
		t.Fatal("bad FD length accepted")
	}
	if _, _, err := UnmarshalFD([]byte{0x00, 0x10, 8, 1, 2}); !errors.Is(err, ErrTruncated) {
		t.Fatal("truncated payload accepted")
	}
	if _, _, err := UnmarshalFD([]byte{0x90, 0x10, 0}); err == nil {
		t.Fatal("reserved flag bits accepted")
	}
}

func BenchmarkFDWireTime(b *testing.B) {
	f := MustNewFD(0x43A, make([]byte, 64), true)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		FDWireTime(f, 500_000, 2_000_000)
	}
}
