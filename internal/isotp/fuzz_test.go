package isotp

import (
	"testing"
	"time"

	"repro/internal/bus"
	"repro/internal/can"
	"repro/internal/clock"
)

// FuzzISOTPReassemble throws adversarial FF/CF/FC interleavings at one
// endpoint: arbitrary frame sequences carved from the fuzz input, with the
// scheduler advanced between bursts so reassembly timers fire mid-stream.
// The invariants are the ones a transport stack must never lose, whatever
// the peer does: no panic, the reassembly buffer never outgrows the
// announced length, the announced length never exceeds the 12-bit protocol
// maximum, and every delivered payload is a plausible ISO-TP message.
func FuzzISOTPReassemble(f *testing.F) {
	// Well-formed exchanges as seeds: SF, FF + in-order CFs, plus hostile
	// shapes (stray CF, FC flood, truncated FF, zero-length SF).
	f.Add([]byte{2, 0x01, 0xAA})
	f.Add([]byte{8, 0x10, 0x0A, 1, 2, 3, 4, 5, 6, 8, 0x21, 7, 8, 9, 10, 0, 0, 0})
	f.Add([]byte{3, 0x21, 0xDE, 0xAD})
	f.Add([]byte{3, 0x30, 0x00, 0x00, 3, 0x30, 0x00, 0x00})
	f.Add([]byte{1, 0x1F, 8, 0x1F, 0xFF, 1, 2, 3, 4, 5, 6})
	f.Add([]byte{1, 0x00, 0, 0, 8, 0x10, 0x08, 1, 2, 3, 4, 5, 6, 8, 0x22, 9, 9, 9, 9, 9, 9, 9})

	f.Fuzz(func(t *testing.T, data []byte) {
		sched := clock.New()
		var delivered [][]byte
		ep := NewEndpoint(sched, func(can.Frame) error { return nil },
			0x7E8, 0x7E0, Config{BlockSize: 2}, func(p []byte) {
				delivered = append(delivered, p)
			})
		ep.OnError(func(error) {}) // aborted transfers are expected, not fatal

		check := func() {
			if ep.rx == nil {
				return
			}
			if ep.rx.expected > MaxPayload {
				t.Fatalf("reassembly expects %d bytes, protocol max is %d", ep.rx.expected, MaxPayload)
			}
			if len(ep.rx.buf) > ep.rx.expected {
				t.Fatalf("reassembly buffer %d bytes, announced only %d", len(ep.rx.buf), ep.rx.expected)
			}
			if cap(ep.rx.buf) > ep.rx.expected+can.MaxDataLen {
				t.Fatalf("reassembly over-allocated: cap %d for %d expected", cap(ep.rx.buf), ep.rx.expected)
			}
		}

		// Carve the input into frames: one DLC byte, then that many payload
		// bytes. A zero DLC doubles as "advance virtual time" so reassembly
		// timeouts interleave with the frame stream.
		for i := 0; i < len(data); {
			dlc := int(data[i] % 9)
			i++
			var fr can.Frame
			fr.ID = 0x7E0
			fr.Len = uint8(dlc)
			for j := 0; j < dlc && i < len(data); j, i = j+1, i+1 {
				fr.Data[j] = data[i]
			}
			ep.HandleFrame(bus.Message{Frame: fr})
			check()
			if dlc == 0 {
				sched.RunFor(400 * time.Millisecond)
				check()
			}
		}
		sched.RunFor(2 * time.Second) // drain every pending timer
		check()

		for _, p := range delivered {
			if len(p) == 0 || len(p) > MaxPayload {
				t.Fatalf("delivered payload of %d bytes", len(p))
			}
		}
	})
}
