// Package isotp implements the ISO 15765-2 transport protocol over CAN
// (single frames, first/consecutive frames, flow control). UDS diagnostics
// (package uds) runs on top of it: ECU reprogramming and diagnostic
// payloads exceed the 8-byte CAN limit and must be segmented.
//
// The implementation is single-threaded on the simulation scheduler, like
// everything else in this reproduction.
package isotp

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/bus"
	"repro/internal/can"
	"repro/internal/clock"
)

// Protocol limits.
const (
	// MaxPayload is the largest ISO-TP message (12-bit length field).
	MaxPayload = 4095
	// maxSFLen is the largest single-frame payload on classic CAN.
	maxSFLen = 7
)

// PCI frame types (high nibble of the first payload byte).
const (
	pciSingle      = 0x0
	pciFirst       = 0x1
	pciConsecutive = 0x2
	pciFlowControl = 0x3
)

// Flow-control statuses.
const (
	fcContinue = 0x0
	fcWait     = 0x1
	fcOverflow = 0x2
)

// Errors reported by the endpoint.
var (
	ErrTooLong      = errors.New("isotp: payload exceeds 4095 bytes")
	ErrBusy         = errors.New("isotp: transmission already in progress")
	ErrSequence     = errors.New("isotp: consecutive frame sequence error")
	ErrTimeout      = errors.New("isotp: timeout waiting for peer")
	ErrOverflow     = errors.New("isotp: receiver signalled overflow")
	ErrMalformed    = errors.New("isotp: malformed protocol frame")
	ErrUnexpectedFC = errors.New("isotp: unexpected flow control")
)

// Config tunes an endpoint.
type Config struct {
	// BlockSize is the BS value advertised in flow control (0 = no limit).
	BlockSize uint8
	// STmin is the minimum separation time advertised to the peer.
	STmin time.Duration
	// Timeout bounds waiting for the peer (N_Bs / N_Cr). Zero selects the
	// ISO default of one second.
	Timeout time.Duration
	// Pad extends every transmitted frame to the full 8 bytes with 0xCC
	// fill, as most production ECUs configure their TP (constant-length
	// frames defeat simple traffic analysis and some controllers require
	// them). Reception always accepts both padded and unpadded frames.
	Pad bool
}

// padByte is the ISO-recommended fill for padded TP frames.
const padByte = 0xCC

func (c Config) withDefaults() Config {
	if c.Timeout == 0 {
		c.Timeout = time.Second
	}
	return c
}

// Stats counts endpoint activity.
type Stats struct {
	// MessagesSent counts completed outbound messages.
	MessagesSent uint64
	// MessagesReceived counts completed inbound messages.
	MessagesReceived uint64
	// Errors counts aborted transfers in either direction.
	Errors uint64
}

// Endpoint is one side of an ISO-TP connection: it transmits on txID and
// listens on rxID. Wire HandleFrame to the owning ECU's dispatch for rxID.
type Endpoint struct {
	sched *clock.Scheduler
	send  func(can.Frame) error
	txID  can.ID
	rxID  can.ID
	cfg   Config

	onMessage func([]byte)
	onError   func(error)

	tx    *txState
	rx    *rxState
	stats Stats
}

type txState struct {
	payload []byte
	offset  int
	seq     uint8
	// blockRemaining counts CFs allowed before the next FC (0 = unlimited).
	blockRemaining int
	unlimitedBlock bool
	stmin          time.Duration
	waitingFC      bool
	timer          *clock.Timer
}

type rxState struct {
	buf      []byte
	expected int
	seq      uint8
	sinceFC  int
	timer    *clock.Timer
}

// NewEndpoint creates an endpoint. send is the raw frame transmitter
// (typically Port.Send or ECU.Send); onMessage receives completed inbound
// payloads.
func NewEndpoint(sched *clock.Scheduler, send func(can.Frame) error, txID, rxID can.ID, cfg Config, onMessage func([]byte)) *Endpoint {
	if sched == nil || send == nil {
		panic("isotp: nil scheduler or send function")
	}
	return &Endpoint{
		sched:     sched,
		send:      send,
		txID:      txID,
		rxID:      rxID,
		cfg:       cfg.withDefaults(),
		onMessage: onMessage,
	}
}

// OnError registers a callback for aborted transfers.
func (ep *Endpoint) OnError(fn func(error)) { ep.onError = fn }

// Stats returns a snapshot of the endpoint counters.
func (ep *Endpoint) Stats() Stats { return ep.stats }

// Busy reports whether an outbound transfer is in progress.
func (ep *Endpoint) Busy() bool { return ep.tx != nil }

func (ep *Endpoint) fail(err error) {
	ep.stats.Errors++
	if ep.onError != nil {
		ep.onError(err)
	}
}

// Send transmits a payload. Payloads of at most seven bytes go out as a
// single frame; longer ones use first/consecutive frames subject to the
// peer's flow control. Send is asynchronous: it returns once the first
// frame is queued.
func (ep *Endpoint) Send(payload []byte) error {
	if len(payload) > MaxPayload {
		return ErrTooLong
	}
	if ep.tx != nil {
		return ErrBusy
	}
	if len(payload) <= maxSFLen {
		data := make([]byte, 1+len(payload))
		data[0] = byte(pciSingle<<4 | len(payload))
		copy(data[1:], payload)
		data = ep.pad(data)
		f, err := can.New(ep.txID, data)
		if err != nil {
			return err
		}
		if err := ep.send(f); err != nil {
			return err
		}
		ep.stats.MessagesSent++
		return nil
	}

	// Multi-frame: FF carries 6 bytes, then CFs of up to 7.
	buf := make([]byte, len(payload))
	copy(buf, payload)
	st := &txState{payload: buf, offset: 6, seq: 1, waitingFC: true}
	data := make([]byte, 8)
	data[0] = byte(pciFirst<<4) | byte(len(payload)>>8&0x0F)
	data[1] = byte(len(payload))
	copy(data[2:], payload[:6])
	f, err := can.New(ep.txID, data)
	if err != nil {
		return err
	}
	if err := ep.send(f); err != nil {
		return err
	}
	ep.tx = st
	st.timer = ep.sched.After(ep.cfg.Timeout, func() {
		ep.tx = nil
		ep.fail(fmt.Errorf("%w: no flow control", ErrTimeout))
	})
	return nil
}

// HandleFrame processes a frame addressed to this endpoint (ID == rxID).
// Wire it into the owner's dispatch.
func (ep *Endpoint) HandleFrame(m bus.Message) {
	f := m.Frame
	if f.ID != ep.rxID || f.Remote || f.Len == 0 {
		return
	}
	switch f.Data[0] >> 4 {
	case pciSingle:
		ep.handleSingle(f)
	case pciFirst:
		ep.handleFirst(f)
	case pciConsecutive:
		ep.handleConsecutive(f)
	case pciFlowControl:
		ep.handleFlowControl(f)
	}
}

func (ep *Endpoint) handleSingle(f can.Frame) {
	n := int(f.Data[0] & 0x0F)
	if n == 0 || n > maxSFLen || int(f.Len) < 1+n {
		ep.fail(fmt.Errorf("%w: single frame length %d", ErrMalformed, n))
		return
	}
	ep.abortRx()
	payload := make([]byte, n)
	copy(payload, f.Data[1:1+n])
	ep.stats.MessagesReceived++
	if ep.onMessage != nil {
		ep.onMessage(payload)
	}
}

func (ep *Endpoint) handleFirst(f can.Frame) {
	if f.Len < 8 {
		ep.fail(fmt.Errorf("%w: short first frame", ErrMalformed))
		return
	}
	total := int(f.Data[0]&0x0F)<<8 | int(f.Data[1])
	if total <= maxSFLen {
		ep.fail(fmt.Errorf("%w: first frame with SF-size payload", ErrMalformed))
		return
	}
	ep.abortRx()
	st := &rxState{expected: total, seq: 1}
	st.buf = append(st.buf, f.Data[2:8]...)
	ep.rx = st
	ep.sendFlowControl(fcContinue)
	ep.armRxTimer()
}

func (ep *Endpoint) handleConsecutive(f can.Frame) {
	st := ep.rx
	if st == nil {
		return // stray CF: ignore, per ISO
	}
	seq := f.Data[0] & 0x0F
	if seq != st.seq {
		ep.abortRx()
		ep.fail(fmt.Errorf("%w: got %d want %d", ErrSequence, seq, st.seq))
		return
	}
	st.seq = (st.seq + 1) & 0x0F
	remaining := st.expected - len(st.buf)
	n := int(f.Len) - 1
	if n > remaining {
		n = remaining
	}
	st.buf = append(st.buf, f.Data[1:1+n]...)
	if len(st.buf) >= st.expected {
		payload := st.buf
		ep.abortRx()
		ep.stats.MessagesReceived++
		if ep.onMessage != nil {
			ep.onMessage(payload)
		}
		return
	}
	st.sinceFC++
	if ep.cfg.BlockSize > 0 && st.sinceFC >= int(ep.cfg.BlockSize) {
		st.sinceFC = 0
		ep.sendFlowControl(fcContinue)
	}
	ep.armRxTimer()
}

func (ep *Endpoint) handleFlowControl(f can.Frame) {
	st := ep.tx
	if st == nil || !st.waitingFC {
		ep.fail(ErrUnexpectedFC)
		return
	}
	if f.Len < 3 {
		ep.fail(fmt.Errorf("%w: short flow control", ErrMalformed))
		return
	}
	switch f.Data[0] & 0x0F {
	case fcContinue:
		st.waitingFC = false
		if st.timer != nil {
			st.timer.Stop()
		}
		bs := int(f.Data[1])
		st.blockRemaining = bs
		st.unlimitedBlock = bs == 0
		st.stmin = decodeSTmin(f.Data[2])
		ep.sched.After(st.stmin, ep.sendNextCF)
	case fcWait:
		// Re-arm the timeout and keep waiting.
		if st.timer != nil {
			st.timer.Stop()
		}
		st.timer = ep.sched.After(ep.cfg.Timeout, func() {
			ep.tx = nil
			ep.fail(fmt.Errorf("%w: peer kept waiting", ErrTimeout))
		})
	case fcOverflow:
		ep.tx = nil
		if st.timer != nil {
			st.timer.Stop()
		}
		ep.fail(ErrOverflow)
	default:
		ep.fail(fmt.Errorf("%w: flow status %d", ErrMalformed, f.Data[0]&0x0F))
	}
}

// sendNextCF transmits one consecutive frame and schedules the next. If the
// controller's transmit mailbox is full the frame is retried shortly after,
// as a real TP stack does when waiting for a free mailbox.
func (ep *Endpoint) sendNextCF() {
	st := ep.tx
	if st == nil || st.waitingFC {
		return
	}
	n := len(st.payload) - st.offset
	if n > 7 {
		n = 7
	}
	data := make([]byte, 1+n)
	data[0] = byte(pciConsecutive<<4) | st.seq
	copy(data[1:], st.payload[st.offset:st.offset+n])
	data = ep.pad(data)
	f, err := can.New(ep.txID, data)
	if err != nil {
		ep.tx = nil
		ep.fail(err)
		return
	}
	if err := ep.send(f); err != nil {
		if errors.Is(err, bus.ErrTxQueueFull) {
			ep.sched.After(500*time.Microsecond, ep.sendNextCF)
			return
		}
		ep.tx = nil
		ep.fail(err)
		return
	}
	st.seq = (st.seq + 1) & 0x0F
	st.offset += n
	if st.offset >= len(st.payload) {
		ep.tx = nil
		ep.stats.MessagesSent++
		return
	}
	if !st.unlimitedBlock {
		st.blockRemaining--
		if st.blockRemaining <= 0 {
			st.waitingFC = true
			st.timer = ep.sched.After(ep.cfg.Timeout, func() {
				ep.tx = nil
				ep.fail(fmt.Errorf("%w: no flow control mid-transfer", ErrTimeout))
			})
			return
		}
	}
	ep.sched.After(st.stmin, ep.sendNextCF)
}

func (ep *Endpoint) sendFlowControl(status byte) {
	data := ep.pad([]byte{byte(pciFlowControl<<4) | status, ep.cfg.BlockSize, encodeSTmin(ep.cfg.STmin)})
	f, err := can.New(ep.txID, data)
	if err == nil {
		err = ep.send(f)
	}
	if err != nil {
		ep.fail(fmt.Errorf("isotp: send flow control: %w", err))
	}
}

// pad extends a TP frame to 8 bytes when the endpoint is configured for
// padded transmission.
func (ep *Endpoint) pad(data []byte) []byte {
	if !ep.cfg.Pad || len(data) >= can.MaxDataLen {
		return data
	}
	out := make([]byte, can.MaxDataLen)
	n := copy(out, data)
	for i := n; i < can.MaxDataLen; i++ {
		out[i] = padByte
	}
	return out
}

func (ep *Endpoint) armRxTimer() {
	st := ep.rx
	if st == nil {
		return
	}
	if st.timer != nil {
		st.timer.Stop()
	}
	st.timer = ep.sched.After(ep.cfg.Timeout, func() {
		ep.rx = nil
		ep.fail(fmt.Errorf("%w: consecutive frame missing", ErrTimeout))
	})
}

func (ep *Endpoint) abortRx() {
	if ep.rx != nil && ep.rx.timer != nil {
		ep.rx.timer.Stop()
	}
	ep.rx = nil
}

// decodeSTmin interprets the STmin byte: 0x00-0x7F milliseconds,
// 0xF1-0xF9 hundreds of microseconds, anything else treated as the maximum
// 127 ms per ISO.
func decodeSTmin(b byte) time.Duration {
	switch {
	case b <= 0x7F:
		return time.Duration(b) * time.Millisecond
	case b >= 0xF1 && b <= 0xF9:
		return time.Duration(b-0xF0) * 100 * time.Microsecond
	default:
		return 127 * time.Millisecond
	}
}

// encodeSTmin converts a duration to the nearest representable STmin byte.
func encodeSTmin(d time.Duration) byte {
	if d <= 0 {
		return 0
	}
	if d < time.Millisecond {
		steps := (d + 50*time.Microsecond) / (100 * time.Microsecond)
		if steps < 1 {
			steps = 1
		}
		if steps > 9 {
			steps = 9
		}
		return 0xF0 + byte(steps)
	}
	ms := d / time.Millisecond
	if ms > 0x7F {
		ms = 0x7F
	}
	return byte(ms)
}
