package isotp

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"repro/internal/bus"
	"repro/internal/can"
	"repro/internal/clock"
)

// pair wires two endpoints across a simulated bus. a transmits on 0x7E0 and
// listens on 0x7E8; b is the mirror image (the classic tester/ECU pairing).
func pair(t *testing.T, cfgA, cfgB Config) (s *clock.Scheduler, a, b *Endpoint, gotA, gotB *[][]byte) {
	t.Helper()
	s = clock.New()
	bb := bus.New(s)
	pa := bb.Connect("tester")
	pb := bb.Connect("ecu")
	var msgsA, msgsB [][]byte
	a = NewEndpoint(s, pa.Send, 0x7E0, 0x7E8, cfgA, func(p []byte) { msgsA = append(msgsA, p) })
	b = NewEndpoint(s, pb.Send, 0x7E8, 0x7E0, cfgB, func(p []byte) { msgsB = append(msgsB, p) })
	pa.SetReceiver(a.HandleFrame)
	pb.SetReceiver(b.HandleFrame)
	return s, a, b, &msgsA, &msgsB
}

func TestSingleFrameRoundTrip(t *testing.T) {
	s, a, _, _, gotB := pair(t, Config{}, Config{})
	payload := []byte{0x10, 0x01}
	if err := a.Send(payload); err != nil {
		t.Fatalf("Send: %v", err)
	}
	s.RunUntil(time.Second)
	if len(*gotB) != 1 || !bytes.Equal((*gotB)[0], payload) {
		t.Fatalf("received %v", *gotB)
	}
	if a.Stats().MessagesSent != 1 {
		t.Fatal("MessagesSent not counted")
	}
}

func TestSevenBytePayloadIsSingleFrame(t *testing.T) {
	s, a, _, _, gotB := pair(t, Config{}, Config{})
	payload := []byte{1, 2, 3, 4, 5, 6, 7}
	if err := a.Send(payload); err != nil {
		t.Fatal(err)
	}
	s.RunUntil(10 * time.Millisecond) // no FC wait needed
	if len(*gotB) != 1 || !bytes.Equal((*gotB)[0], payload) {
		t.Fatalf("received %v", *gotB)
	}
}

func TestMultiFrameRoundTrip(t *testing.T) {
	s, a, _, _, gotB := pair(t, Config{}, Config{})
	payload := make([]byte, 100)
	for i := range payload {
		payload[i] = byte(i)
	}
	if err := a.Send(payload); err != nil {
		t.Fatal(err)
	}
	s.RunUntil(5 * time.Second)
	if len(*gotB) != 1 {
		t.Fatalf("received %d messages, want 1", len(*gotB))
	}
	if !bytes.Equal((*gotB)[0], payload) {
		t.Fatalf("payload mismatch: got %d bytes", len((*gotB)[0]))
	}
}

func TestMaxPayloadRoundTrip(t *testing.T) {
	s, a, _, _, gotB := pair(t, Config{}, Config{})
	payload := make([]byte, MaxPayload)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	if err := a.Send(payload); err != nil {
		t.Fatal(err)
	}
	s.RunUntil(30 * time.Second)
	if len(*gotB) != 1 || !bytes.Equal((*gotB)[0], payload) {
		t.Fatalf("max payload transfer failed (%d messages)", len(*gotB))
	}
}

func TestPayloadTooLong(t *testing.T) {
	_, a, _, _, _ := pair(t, Config{}, Config{})
	if err := a.Send(make([]byte, MaxPayload+1)); !errors.Is(err, ErrTooLong) {
		t.Fatalf("err = %v, want ErrTooLong", err)
	}
}

func TestBusyDuringMultiFrame(t *testing.T) {
	_, a, _, _, _ := pair(t, Config{}, Config{})
	if err := a.Send(make([]byte, 50)); err != nil {
		t.Fatal(err)
	}
	if err := a.Send([]byte{1}); !errors.Is(err, ErrBusy) {
		t.Fatalf("err = %v, want ErrBusy", err)
	}
}

func TestBlockSizeTriggersIntermediateFC(t *testing.T) {
	// Receiver advertises BS=2: transmitter must pause for FC every 2 CFs.
	s, a, _, _, gotB := pair(t, Config{}, Config{BlockSize: 2})
	payload := make([]byte, 6+7*7) // FF + 7 CFs
	for i := range payload {
		payload[i] = byte(i)
	}
	if err := a.Send(payload); err != nil {
		t.Fatal(err)
	}
	s.RunUntil(10 * time.Second)
	if len(*gotB) != 1 || !bytes.Equal((*gotB)[0], payload) {
		t.Fatalf("blocked transfer failed (%d messages)", len(*gotB))
	}
}

func TestSTminPacing(t *testing.T) {
	s, a, _, _, gotB := pair(t, Config{}, Config{STmin: 5 * time.Millisecond})
	payload := make([]byte, 6+7*4) // 4 CFs
	if err := a.Send(payload); err != nil {
		t.Fatal(err)
	}
	s.RunUntil(10 * time.Millisecond)
	if len(*gotB) != 0 {
		t.Fatal("transfer finished implausibly fast for STmin=5ms")
	}
	s.RunUntil(time.Second)
	if len(*gotB) != 1 {
		t.Fatal("paced transfer did not complete")
	}
}

func TestTimeoutWithoutFlowControl(t *testing.T) {
	// No peer endpoint: FF goes unanswered, transfer must time out.
	s := clock.New()
	bb := bus.New(s)
	p := bb.Connect("lonely")
	var errs []error
	ep := NewEndpoint(s, p.Send, 0x7E0, 0x7E8, Config{Timeout: 100 * time.Millisecond}, nil)
	ep.OnError(func(err error) { errs = append(errs, err) })
	if err := ep.Send(make([]byte, 20)); err != nil {
		t.Fatal(err)
	}
	s.RunUntil(time.Second)
	if len(errs) != 1 || !errors.Is(errs[0], ErrTimeout) {
		t.Fatalf("errs = %v, want timeout", errs)
	}
	if ep.Busy() {
		t.Fatal("endpoint stuck busy after timeout")
	}
}

func TestSequenceErrorAborts(t *testing.T) {
	s := clock.New()
	bb := bus.New(s)
	pTester := bb.Connect("tester")
	pECU := bb.Connect("ecu")
	var errs []error
	ecu := NewEndpoint(s, pECU.Send, 0x7E8, 0x7E0, Config{}, nil)
	ecu.OnError(func(err error) { errs = append(errs, err) })
	pECU.SetReceiver(ecu.HandleFrame)

	// Handcraft FF then a CF with the wrong sequence number.
	pTester.Send(can.MustNew(0x7E0, []byte{0x10, 0x14, 1, 2, 3, 4, 5, 6}))
	s.RunUntil(10 * time.Millisecond)
	pTester.Send(can.MustNew(0x7E0, []byte{0x25, 7, 8, 9, 10, 11, 12, 13})) // seq 5, want 1
	s.RunUntil(20 * time.Millisecond)
	if len(errs) != 1 || !errors.Is(errs[0], ErrSequence) {
		t.Fatalf("errs = %v, want sequence error", errs)
	}
}

func TestStrayConsecutiveFrameIgnored(t *testing.T) {
	s := clock.New()
	bb := bus.New(s)
	pTester := bb.Connect("tester")
	pECU := bb.Connect("ecu")
	var msgs [][]byte
	var errs []error
	ecu := NewEndpoint(s, pECU.Send, 0x7E8, 0x7E0, Config{}, func(p []byte) { msgs = append(msgs, p) })
	ecu.OnError(func(err error) { errs = append(errs, err) })
	pECU.SetReceiver(ecu.HandleFrame)
	pTester.Send(can.MustNew(0x7E0, []byte{0x21, 1, 2, 3})) // CF without FF
	s.RunUntil(10 * time.Millisecond)
	if len(msgs) != 0 || len(errs) != 0 {
		t.Fatalf("stray CF not ignored: msgs=%v errs=%v", msgs, errs)
	}
}

func TestMalformedSingleFrameLength(t *testing.T) {
	s := clock.New()
	bb := bus.New(s)
	pTester := bb.Connect("tester")
	pECU := bb.Connect("ecu")
	var errs []error
	ecu := NewEndpoint(s, pECU.Send, 0x7E8, 0x7E0, Config{}, nil)
	ecu.OnError(func(err error) { errs = append(errs, err) })
	pECU.SetReceiver(ecu.HandleFrame)
	pTester.Send(can.MustNew(0x7E0, []byte{0x05, 1, 2})) // claims 5, carries 2
	s.RunUntil(10 * time.Millisecond)
	if len(errs) != 1 || !errors.Is(errs[0], ErrMalformed) {
		t.Fatalf("errs = %v, want malformed", errs)
	}
}

func TestOverflowFlowControlAborts(t *testing.T) {
	s := clock.New()
	bb := bus.New(s)
	pA := bb.Connect("a")
	pB := bb.Connect("b")
	var errs []error
	a := NewEndpoint(s, pA.Send, 0x700, 0x701, Config{}, nil)
	a.OnError(func(err error) { errs = append(errs, err) })
	pA.SetReceiver(a.HandleFrame)
	// B answers any FF with an overflow FC, no endpoint logic needed.
	pB.SetReceiver(func(m bus.Message) {
		if m.Frame.ID == 0x700 && m.Frame.Data[0]>>4 == 0x1 {
			pB.Send(can.MustNew(0x701, []byte{0x32, 0, 0}))
		}
	})
	if err := a.Send(make([]byte, 64)); err != nil {
		t.Fatal(err)
	}
	s.RunUntil(time.Second)
	if len(errs) != 1 || !errors.Is(errs[0], ErrOverflow) {
		t.Fatalf("errs = %v, want overflow", errs)
	}
	if a.Busy() {
		t.Fatal("endpoint stuck busy after overflow")
	}
}

func TestWaitFlowControlDefersThenCompletes(t *testing.T) {
	s := clock.New()
	bb := bus.New(s)
	pA := bb.Connect("a")
	pB := bb.Connect("b")
	var got [][]byte
	a := NewEndpoint(s, pA.Send, 0x700, 0x701, Config{}, nil)
	pA.SetReceiver(a.HandleFrame)
	b := NewEndpoint(s, pB.Send, 0x701, 0x700, Config{}, func(p []byte) { got = append(got, p) })
	// Intercept: first send a WAIT, then hand off to the real endpoint.
	sentWait := false
	pB.SetReceiver(func(m bus.Message) {
		if !sentWait && m.Frame.Data[0]>>4 == 0x1 {
			sentWait = true
			pB.Send(can.MustNew(0x701, []byte{0x31, 0, 0}))
			// Deliver FF to the endpoint too so it primes reassembly, and
			// let its own CTS follow.
		}
		b.HandleFrame(m)
	})
	payload := make([]byte, 30)
	for i := range payload {
		payload[i] = byte(i + 1)
	}
	if err := a.Send(payload); err != nil {
		t.Fatal(err)
	}
	s.RunUntil(2 * time.Second)
	if len(got) != 1 || !bytes.Equal(got[0], payload) {
		t.Fatalf("transfer after WAIT failed: %v", got)
	}
}

func TestBackToBackTransfers(t *testing.T) {
	s, a, _, _, gotB := pair(t, Config{}, Config{})
	for i := 0; i < 5; i++ {
		payload := bytes.Repeat([]byte{byte(i)}, 20+i)
		if err := a.Send(payload); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
		s.RunUntil(s.Now() + 2*time.Second)
	}
	if len(*gotB) != 5 {
		t.Fatalf("received %d messages, want 5", len(*gotB))
	}
	for i, p := range *gotB {
		if len(p) != 20+i || p[0] != byte(i) {
			t.Fatalf("message %d corrupted", i)
		}
	}
}

func TestBidirectionalSingleFrames(t *testing.T) {
	s, a, b, gotA, gotB := pair(t, Config{}, Config{})
	a.Send([]byte{0xAA})
	b.Send([]byte{0xBB})
	s.RunUntil(time.Second)
	if len(*gotB) != 1 || (*gotB)[0][0] != 0xAA {
		t.Fatalf("b received %v", *gotB)
	}
	if len(*gotA) != 1 || (*gotA)[0][0] != 0xBB {
		t.Fatalf("a received %v", *gotA)
	}
}

func TestSTminCodec(t *testing.T) {
	cases := []struct {
		b    byte
		want time.Duration
	}{
		{0x00, 0},
		{0x7F, 127 * time.Millisecond},
		{0x0A, 10 * time.Millisecond},
		{0xF1, 100 * time.Microsecond},
		{0xF9, 900 * time.Microsecond},
		{0xAA, 127 * time.Millisecond}, // reserved -> max
	}
	for _, c := range cases {
		if got := decodeSTmin(c.b); got != c.want {
			t.Errorf("decodeSTmin(%#x) = %v, want %v", c.b, got, c.want)
		}
	}
	if encodeSTmin(10*time.Millisecond) != 0x0A {
		t.Error("encodeSTmin(10ms) wrong")
	}
	if encodeSTmin(500*time.Microsecond) != 0xF5 {
		t.Error("encodeSTmin(500µs) wrong")
	}
	if encodeSTmin(5*time.Second) != 0x7F {
		t.Error("encodeSTmin should clamp to 127ms")
	}
	if encodeSTmin(0) != 0 {
		t.Error("encodeSTmin(0) wrong")
	}
}

func TestStatsCountMessagesAndErrors(t *testing.T) {
	s, a, b, _, _ := pair(t, Config{}, Config{})
	a.Send([]byte{1})
	a.Send(make([]byte, 40))
	s.RunUntil(5 * time.Second)
	if got := a.Stats().MessagesSent; got != 2 {
		t.Fatalf("MessagesSent = %d", got)
	}
	if got := b.Stats().MessagesReceived; got != 2 {
		t.Fatalf("MessagesReceived = %d", got)
	}
}

func TestUnexpectedFlowControlCountsError(t *testing.T) {
	s := clock.New()
	bb := bus.New(s)
	pA := bb.Connect("a")
	pB := bb.Connect("b")
	var errs []error
	a := NewEndpoint(s, pA.Send, 0x700, 0x701, Config{}, nil)
	a.OnError(func(err error) { errs = append(errs, err) })
	pA.SetReceiver(a.HandleFrame)
	// Send an FC with no transfer in progress.
	pB.Send(can.MustNew(0x701, []byte{0x30, 0, 0}))
	s.RunUntil(10 * time.Millisecond)
	if len(errs) != 1 || !errors.Is(errs[0], ErrUnexpectedFC) {
		t.Fatalf("errs = %v", errs)
	}
	if a.Stats().Errors != 1 {
		t.Fatal("error counter idle")
	}
}

func TestReservedFlowStatusRejected(t *testing.T) {
	s := clock.New()
	bb := bus.New(s)
	pA := bb.Connect("a")
	pB := bb.Connect("b")
	var errs []error
	a := NewEndpoint(s, pA.Send, 0x700, 0x701, Config{}, nil)
	a.OnError(func(err error) { errs = append(errs, err) })
	pA.SetReceiver(a.HandleFrame)
	pB.SetReceiver(func(m bus.Message) {
		if m.Frame.ID == 0x700 && m.Frame.Data[0]>>4 == 0x1 {
			pB.Send(can.MustNew(0x701, []byte{0x3F, 0, 0})) // reserved status
		}
	})
	a.Send(make([]byte, 20))
	s.RunUntil(time.Second)
	found := false
	for _, err := range errs {
		if errors.Is(err, ErrMalformed) {
			found = true
		}
	}
	if !found {
		t.Fatalf("errs = %v, want malformed flow status", errs)
	}
}

func TestFirstFrameWithSFSizedPayloadRejected(t *testing.T) {
	s := clock.New()
	bb := bus.New(s)
	pTester := bb.Connect("tester")
	pECU := bb.Connect("ecu")
	var errs []error
	ecu := NewEndpoint(s, pECU.Send, 0x7E8, 0x7E0, Config{}, nil)
	ecu.OnError(func(err error) { errs = append(errs, err) })
	pECU.SetReceiver(ecu.HandleFrame)
	// FF claiming 5 bytes total (fits a single frame): malformed.
	pTester.Send(can.MustNew(0x7E0, []byte{0x10, 0x05, 1, 2, 3, 4, 5, 6}))
	s.RunUntil(10 * time.Millisecond)
	if len(errs) != 1 || !errors.Is(errs[0], ErrMalformed) {
		t.Fatalf("errs = %v", errs)
	}
}

func TestRemoteAndEmptyFramesIgnored(t *testing.T) {
	s := clock.New()
	bb := bus.New(s)
	pTester := bb.Connect("tester")
	pECU := bb.Connect("ecu")
	count := 0
	ecu := NewEndpoint(s, pECU.Send, 0x7E8, 0x7E0, Config{}, func([]byte) { count++ })
	pECU.SetReceiver(ecu.HandleFrame)
	rem, _ := can.NewRemote(0x7E0, 8)
	pTester.Send(rem)
	pTester.Send(can.MustNew(0x7E0, nil))
	pTester.Send(can.MustNew(0x7E1, []byte{0x01, 0xAA})) // wrong id
	s.RunUntil(10 * time.Millisecond)
	if count != 0 {
		t.Fatal("endpoint consumed non-TP frames")
	}
}

func TestNewFirstFrameAbortsOngoingReassembly(t *testing.T) {
	s := clock.New()
	bb := bus.New(s)
	pTester := bb.Connect("tester")
	pECU := bb.Connect("ecu")
	var msgs [][]byte
	ecu := NewEndpoint(s, pECU.Send, 0x7E8, 0x7E0, Config{}, func(p []byte) { msgs = append(msgs, p) })
	pECU.SetReceiver(ecu.HandleFrame)
	// Start a transfer, abandon it, start a fresh one and complete it.
	pTester.Send(can.MustNew(0x7E0, []byte{0x10, 0x0D, 1, 2, 3, 4, 5, 6}))
	s.RunUntil(10 * time.Millisecond)
	pTester.Send(can.MustNew(0x7E0, []byte{0x10, 0x0D, 9, 9, 9, 9, 9, 9}))
	s.RunUntil(20 * time.Millisecond)
	pTester.Send(can.MustNew(0x7E0, []byte{0x21, 9, 9, 9, 9, 9, 9, 9}))
	s.RunUntil(30 * time.Millisecond)
	if len(msgs) != 1 {
		t.Fatalf("messages = %d", len(msgs))
	}
	if msgs[0][0] != 9 {
		t.Fatal("stale reassembly delivered")
	}
}

func TestBusyAccessor(t *testing.T) {
	_, a, _, _, _ := pair(t, Config{}, Config{})
	if a.Busy() {
		t.Fatal("fresh endpoint busy")
	}
	a.Send(make([]byte, 30))
	if !a.Busy() {
		t.Fatal("multi-frame send not busy")
	}
}

func TestPaddedTransmission(t *testing.T) {
	// Both sides padded: every TP frame on the wire is 8 bytes, and the
	// payloads still round-trip exactly (the SF length nibble, not the
	// DLC, bounds the data).
	s := clock.New()
	bb := bus.New(s)
	pa := bb.Connect("a")
	pb := bb.Connect("b")
	var msgsB [][]byte
	a := NewEndpoint(s, pa.Send, 0x7E0, 0x7E8, Config{Pad: true}, nil)
	b := NewEndpoint(s, pb.Send, 0x7E8, 0x7E0, Config{Pad: true}, func(p []byte) { msgsB = append(msgsB, p) })
	pa.SetReceiver(a.HandleFrame)
	pb.SetReceiver(b.HandleFrame)

	var wire []uint8
	bb.Tap(func(m bus.Message) { wire = append(wire, m.Frame.Len) })

	short := []byte{0x3E, 0x00}
	long := bytes.Repeat([]byte{0xA7}, 30)
	a.Send(short)
	s.RunUntil(time.Second)
	a.Send(long)
	s.RunUntil(3 * time.Second)

	if len(msgsB) != 2 || !bytes.Equal(msgsB[0], short) || !bytes.Equal(msgsB[1], long) {
		t.Fatalf("padded round trip failed: %v", msgsB)
	}
	for i, l := range wire {
		if l != 8 {
			t.Fatalf("wire frame %d has DLC %d, want 8 (padded)", i, l)
		}
	}
}

func TestUnpaddedPeerAcceptsPaddedFrames(t *testing.T) {
	s := clock.New()
	bb := bus.New(s)
	pa := bb.Connect("a")
	pb := bb.Connect("b")
	var got [][]byte
	a := NewEndpoint(s, pa.Send, 0x7E0, 0x7E8, Config{Pad: true}, nil)
	b := NewEndpoint(s, pb.Send, 0x7E8, 0x7E0, Config{}, func(p []byte) { got = append(got, p) })
	pa.SetReceiver(a.HandleFrame)
	pb.SetReceiver(b.HandleFrame)
	payload := []byte{1, 2, 3}
	a.Send(payload)
	s.RunUntil(time.Second)
	if len(got) != 1 || !bytes.Equal(got[0], payload) {
		t.Fatalf("got %v", got)
	}
}
