// Package obd implements the SAE J1979 / OBD-II services the paper's
// physical attack surface exposes: the fuzzer connects "to the vehicle
// using an OBD cable" (§VI), and the in-cabin OBD port is how aftermarket
// dongles mount the MITM attack of §IV. The service layer gives the
// simulated vehicle a realistic diagnostic responder: a functional request
// on identifier 0x7DF answered on the ECU's response identifier, with
// mode 01 live data (engine RPM, vehicle speed, coolant temperature),
// mode 03 stored trouble codes, and mode 04 clear-DTCs.
package obd

import (
	"fmt"
	"sort"

	"repro/internal/bus"
	"repro/internal/can"
	"repro/internal/ecu"
)

// Functional request and default response identifiers.
const (
	// IDRequest is the broadcast OBD request identifier.
	IDRequest can.ID = 0x7DF
	// IDResponseBase is the first physical response identifier; ECU n
	// responds at IDResponseBase+n.
	IDResponseBase can.ID = 0x7E8
)

// Service modes.
const (
	ModeCurrentData = 0x01
	ModeDTCs        = 0x03
	ModeClearDTCs   = 0x04
	positiveOffset  = 0x40
)

// Mode 01 PIDs supported by the server.
const (
	PIDSupported   = 0x00
	PIDCoolantTemp = 0x05
	PIDEngineRPM   = 0x0C
	PIDSpeed       = 0x0D
)

// dtcNVKey is the NVRAM key the stored trouble codes live under: they
// survive power cycles until a scan tool clears them.
const dtcNVKey = "obd.dtcs"

// Values supplies live data to the server. Nil funcs mean unsupported.
type Values struct {
	// RPM returns the current engine speed.
	RPM func() float64
	// Speed returns the current vehicle speed in km/h.
	Speed func() float64
	// Coolant returns the coolant temperature in degC.
	Coolant func() float64
}

// Server answers OBD-II requests on behalf of one ECU.
type Server struct {
	e      *ecu.ECU
	respID can.ID
	vals   Values

	requests  uint64
	malformed uint64
}

// NewServer attaches an OBD responder to an ECU. respID is the physical
// response identifier (e.g. IDResponseBase).
func NewServer(e *ecu.ECU, respID can.ID, vals Values) *Server {
	s := &Server{e: e, respID: respID, vals: vals}
	e.Handle(IDRequest, s.onRequest)
	return s
}

// Requests returns the number of well-formed requests served.
func (s *Server) Requests() uint64 { return s.requests }

// Malformed returns the number of requests dropped as malformed — under
// fuzzing this counter races upward while Requests stays near zero.
func (s *Server) Malformed() uint64 { return s.malformed }

// StoreDTC records a trouble code (e.g. "P0217") in non-volatile storage.
func (s *Server) StoreDTC(code string) {
	codes := s.DTCs()
	for _, c := range codes {
		if c == code {
			return
		}
	}
	codes = append(codes, code)
	sort.Strings(codes)
	s.e.NVWrite(dtcNVKey, encodeDTCs(codes))
}

// DTCs returns the stored trouble codes.
func (s *Server) DTCs() []string {
	raw, ok := s.e.NVRead(dtcNVKey)
	if !ok {
		return nil
	}
	return decodeDTCs(raw)
}

// ClearDTCs removes all stored codes (service mode 04).
func (s *Server) ClearDTCs() { s.e.NVDelete(dtcNVKey) }

// onRequest parses one functional request. OBD single frames carry
// [count, mode, pid, ...]; a defensive parser rejects everything else —
// this server is the hardened counterexample to the cluster's defective
// display handler.
func (s *Server) onRequest(m bus.Message) {
	f := m.Frame
	if f.Remote || f.Len < 2 {
		s.malformed++
		return
	}
	count := int(f.Data[0])
	if count < 1 || count+1 > int(f.Len) {
		s.malformed++
		return
	}
	mode := f.Data[1]
	switch mode {
	case ModeCurrentData:
		if count != 2 {
			s.malformed++
			return
		}
		s.serveCurrentData(f.Data[2])
	case ModeDTCs:
		if count != 1 {
			s.malformed++
			return
		}
		s.serveDTCs()
	case ModeClearDTCs:
		if count != 1 {
			s.malformed++
			return
		}
		s.ClearDTCs()
		s.requests++
		s.respond([]byte{1, ModeClearDTCs + positiveOffset})
	default:
		// Unsupported mode: a compliant ECU simply does not answer.
		s.malformed++
	}
}

func (s *Server) serveCurrentData(pid byte) {
	switch pid {
	case PIDSupported:
		var bitmap uint32
		if s.vals.Coolant != nil {
			bitmap |= 1 << (32 - PIDCoolantTemp)
		}
		if s.vals.RPM != nil {
			bitmap |= 1 << (32 - PIDEngineRPM)
		}
		if s.vals.Speed != nil {
			bitmap |= 1 << (32 - PIDSpeed)
		}
		s.requests++
		s.respond([]byte{6, ModeCurrentData + positiveOffset, PIDSupported,
			byte(bitmap >> 24), byte(bitmap >> 16), byte(bitmap >> 8), byte(bitmap)})
	case PIDEngineRPM:
		if s.vals.RPM == nil {
			s.malformed++
			return
		}
		raw := clampU16(s.vals.RPM() * 4) // J1979: rpm = raw/4
		s.requests++
		s.respond([]byte{4, ModeCurrentData + positiveOffset, PIDEngineRPM,
			byte(raw >> 8), byte(raw)})
	case PIDSpeed:
		if s.vals.Speed == nil {
			s.malformed++
			return
		}
		v := s.vals.Speed()
		if v < 0 {
			v = 0
		}
		if v > 255 {
			v = 255
		}
		s.requests++
		s.respond([]byte{3, ModeCurrentData + positiveOffset, PIDSpeed, byte(v)})
	case PIDCoolantTemp:
		if s.vals.Coolant == nil {
			s.malformed++
			return
		}
		v := s.vals.Coolant() + 40 // J1979: degC = raw-40
		if v < 0 {
			v = 0
		}
		if v > 255 {
			v = 255
		}
		s.requests++
		s.respond([]byte{3, ModeCurrentData + positiveOffset, PIDCoolantTemp, byte(v)})
	default:
		s.malformed++
	}
}

// serveDTCs answers mode 03 with up to two stored codes (the single-frame
// limit; a full implementation would switch to ISO-TP beyond that).
func (s *Server) serveDTCs() {
	codes := s.DTCs()
	if len(codes) > 2 {
		codes = codes[:2]
	}
	resp := []byte{byte(2 + len(codes)*2), ModeDTCs + positiveOffset, byte(len(codes))}
	for _, c := range codes {
		hi, lo, err := encodeDTC(c)
		if err != nil {
			continue
		}
		resp = append(resp, hi, lo)
	}
	resp[0] = byte(len(resp) - 1)
	s.requests++
	s.respond(resp)
}

func (s *Server) respond(payload []byte) {
	f, err := can.New(s.respID, payload)
	if err != nil {
		return
	}
	_ = s.e.Send(f)
}

func clampU16(v float64) uint16 {
	if v < 0 {
		return 0
	}
	if v > 65535 {
		return 65535
	}
	return uint16(v)
}

// encodeDTC packs a five-character code like "P0217" into the two-byte
// J2012 wire form.
func encodeDTC(code string) (hi, lo byte, err error) {
	if len(code) != 5 {
		return 0, 0, fmt.Errorf("obd: bad DTC %q", code)
	}
	var sys byte
	switch code[0] {
	case 'P':
		sys = 0
	case 'C':
		sys = 1
	case 'B':
		sys = 2
	case 'U':
		sys = 3
	default:
		return 0, 0, fmt.Errorf("obd: bad DTC system %q", code)
	}
	var digits [4]byte
	for i := 0; i < 4; i++ {
		d := hexVal(code[i+1])
		if d < 0 {
			return 0, 0, fmt.Errorf("obd: bad DTC digit %q", code)
		}
		digits[i] = byte(d)
	}
	hi = sys<<6 | digits[0]<<4 | digits[1]
	lo = digits[2]<<4 | digits[3]
	return hi, lo, nil
}

// EncodeDTC packs a five-character J2012 code into its two-byte wire form
// — exported so a UDS server (service 0x19) can share the encoding.
func EncodeDTC(code string) (hi, lo byte, err error) {
	return encodeDTC(code)
}

// DecodeDTC unpacks the two-byte wire form back to text.
func DecodeDTC(hi, lo byte) string {
	sys := [4]byte{'P', 'C', 'B', 'U'}[hi>>6]
	return fmt.Sprintf("%c%X%X%X%X", sys, hi>>4&0x3, hi&0x0F, lo>>4, lo&0x0F)
}

func hexVal(c byte) int {
	switch {
	case c >= '0' && c <= '9':
		return int(c - '0')
	case c >= 'A' && c <= 'F':
		return int(c-'A') + 10
	default:
		return -1
	}
}

// encodeDTCs flattens codes for NVRAM storage.
func encodeDTCs(codes []string) []byte {
	var out []byte
	for _, c := range codes {
		out = append(out, c...)
		out = append(out, 0)
	}
	return out
}

func decodeDTCs(raw []byte) []string {
	var out []string
	start := 0
	for i, b := range raw {
		if b == 0 {
			if i > start {
				out = append(out, string(raw[start:i]))
			}
			start = i + 1
		}
	}
	return out
}
