package obd

import (
	"testing"
	"time"

	"repro/internal/bus"
	"repro/internal/can"
	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/ecu"
	"repro/internal/isotp"
	"repro/internal/uds"
)

func rig(t *testing.T, vals Values) (*clock.Scheduler, *Server, *bus.Port, *[]can.Frame) {
	t.Helper()
	s := clock.New()
	b := bus.New(s)
	e := ecu.New("engine", s, b.Connect("engine"))
	srv := NewServer(e, IDResponseBase, vals)
	tester := b.Connect("tester")
	var responses []can.Frame
	tester.SetReceiver(func(m bus.Message) {
		if m.Frame.ID == IDResponseBase {
			responses = append(responses, m.Frame)
		}
	})
	return s, srv, tester, &responses
}

func request(t *testing.T, tester *bus.Port, data ...byte) {
	t.Helper()
	if err := tester.Send(can.MustNew(IDRequest, data)); err != nil {
		t.Fatal(err)
	}
}

func TestMode01RPM(t *testing.T) {
	s, _, tester, resp := rig(t, Values{RPM: func() float64 { return 856.25 }})
	request(t, tester, 2, ModeCurrentData, PIDEngineRPM)
	s.RunUntil(10 * time.Millisecond)
	if len(*resp) != 1 {
		t.Fatalf("responses = %d", len(*resp))
	}
	f := (*resp)[0]
	if f.Data[1] != ModeCurrentData+positiveOffset || f.Data[2] != PIDEngineRPM {
		t.Fatalf("response = %v", f)
	}
	raw := uint16(f.Data[3])<<8 | uint16(f.Data[4])
	if got := float64(raw) / 4; got != 856.25 {
		t.Fatalf("rpm = %v, want 856.25", got)
	}
}

func TestMode01SpeedAndCoolant(t *testing.T) {
	s, _, tester, resp := rig(t, Values{
		Speed:   func() float64 { return 88 },
		Coolant: func() float64 { return 90 },
	})
	request(t, tester, 2, ModeCurrentData, PIDSpeed)
	request(t, tester, 2, ModeCurrentData, PIDCoolantTemp)
	s.RunUntil(10 * time.Millisecond)
	if len(*resp) != 2 {
		t.Fatalf("responses = %d", len(*resp))
	}
	if (*resp)[0].Data[3] != 88 {
		t.Fatalf("speed byte = %d", (*resp)[0].Data[3])
	}
	if (*resp)[1].Data[3] != 130 { // 90 + 40
		t.Fatalf("coolant byte = %d", (*resp)[1].Data[3])
	}
}

func TestMode01SupportedBitmap(t *testing.T) {
	s, _, tester, resp := rig(t, Values{
		RPM:   func() float64 { return 0 },
		Speed: func() float64 { return 0 },
	})
	request(t, tester, 2, ModeCurrentData, PIDSupported)
	s.RunUntil(10 * time.Millisecond)
	if len(*resp) != 1 {
		t.Fatalf("responses = %d", len(*resp))
	}
	bitmap := uint32((*resp)[0].Data[3])<<24 | uint32((*resp)[0].Data[4])<<16 |
		uint32((*resp)[0].Data[5])<<8 | uint32((*resp)[0].Data[6])
	if bitmap&(1<<(32-PIDEngineRPM)) == 0 || bitmap&(1<<(32-PIDSpeed)) == 0 {
		t.Fatalf("bitmap = %#08x missing supported PIDs", bitmap)
	}
	if bitmap&(1<<(32-PIDCoolantTemp)) != 0 {
		t.Fatalf("bitmap = %#08x claims unsupported coolant", bitmap)
	}
}

func TestUnsupportedPIDNoAnswer(t *testing.T) {
	s, srv, tester, resp := rig(t, Values{})
	request(t, tester, 2, ModeCurrentData, 0x42)
	s.RunUntil(10 * time.Millisecond)
	if len(*resp) != 0 {
		t.Fatal("answered an unsupported PID")
	}
	if srv.Malformed() != 1 {
		t.Fatalf("malformed = %d", srv.Malformed())
	}
}

func TestMode03DTCsRoundTrip(t *testing.T) {
	s, srv, tester, resp := rig(t, Values{})
	srv.StoreDTC("P0217")
	srv.StoreDTC("U0100")
	srv.StoreDTC("P0217") // duplicate ignored
	request(t, tester, 1, ModeDTCs)
	s.RunUntil(10 * time.Millisecond)
	if len(*resp) != 1 {
		t.Fatalf("responses = %d", len(*resp))
	}
	f := (*resp)[0]
	if f.Data[1] != ModeDTCs+positiveOffset || f.Data[2] != 2 {
		t.Fatalf("response = %v", f)
	}
	first := DecodeDTC(f.Data[3], f.Data[4])
	second := DecodeDTC(f.Data[5], f.Data[6])
	if first != "P0217" || second != "U0100" {
		t.Fatalf("decoded DTCs = %q, %q", first, second)
	}
}

func TestMode04ClearsDTCs(t *testing.T) {
	s, srv, tester, resp := rig(t, Values{})
	srv.StoreDTC("B1D00")
	request(t, tester, 1, ModeClearDTCs)
	s.RunUntil(10 * time.Millisecond)
	if len(*resp) != 1 || (*resp)[0].Data[1] != ModeClearDTCs+positiveOffset {
		t.Fatalf("responses = %v", *resp)
	}
	if len(srv.DTCs()) != 0 {
		t.Fatal("DTCs not cleared")
	}
}

func TestDTCsSurvivePowerCycle(t *testing.T) {
	s := clock.New()
	b := bus.New(s)
	e := ecu.New("engine", s, b.Connect("engine"))
	srv := NewServer(e, IDResponseBase, Values{})
	srv.StoreDTC("P0300")
	e.PowerCycle()
	if got := srv.DTCs(); len(got) != 1 || got[0] != "P0300" {
		t.Fatalf("DTCs after power cycle = %v", got)
	}
}

func TestMalformedRequestsRejected(t *testing.T) {
	s, srv, tester, resp := rig(t, Values{RPM: func() float64 { return 1 }})
	bad := [][]byte{
		{},                         // empty -> dropped before handler sees data
		{9, ModeCurrentData, 0x0C}, // count exceeds frame
		{0, ModeCurrentData},       // zero count
		{1, ModeCurrentData},       // mode 01 needs a pid
		{2, 0x09, 0x02},            // unsupported mode
		{3, ModeDTCs, 1, 2},        // mode 03 takes no args
	}
	for _, d := range bad {
		if len(d) == 0 {
			continue // can't build an empty-but-sent request meaningfully
		}
		request(t, tester, d...)
	}
	s.RunUntil(50 * time.Millisecond)
	if len(*resp) != 0 {
		t.Fatalf("malformed requests answered: %v", *resp)
	}
	if srv.Malformed() == 0 {
		t.Fatal("malformed counter idle")
	}
}

func TestFuzzingOBDServerStaysDefensive(t *testing.T) {
	// Fuzz the OBD responder directly: a defensive parser must never send
	// garbage responses — every reply must be a well-formed positive
	// response. This is the §VII "unconsidered code paths" hunt applied to
	// a service that happens to be implemented correctly.
	s := clock.New()
	b := bus.New(s)
	e := ecu.New("engine", s, b.Connect("engine"))
	srv := NewServer(e, IDResponseBase, Values{
		RPM:     func() float64 { return 850 },
		Speed:   func() float64 { return 0 },
		Coolant: func() float64 { return 85 },
	})
	fuzzPort := b.Connect("fuzzer")
	var responses []can.Frame
	fuzzPort.SetReceiver(func(m bus.Message) {
		if m.Frame.ID == IDResponseBase {
			responses = append(responses, m.Frame)
		}
	})
	campaign, err := core.NewCampaign(s, fuzzPort, core.Config{
		Seed:      77,
		TargetIDs: []can.ID{IDRequest}, // hammer the request id
	})
	if err != nil {
		t.Fatal(err)
	}
	campaign.RunFor(60 * time.Second)
	for _, f := range responses {
		mode := f.Data[1]
		if mode != ModeCurrentData+positiveOffset && mode != ModeDTCs+positiveOffset &&
			mode != ModeClearDTCs+positiveOffset {
			t.Fatalf("garbage response under fuzzing: %v", f)
		}
	}
	if srv.Malformed() == 0 {
		t.Fatal("fuzzing produced no malformed requests (implausible)")
	}
	t.Logf("fuzz: %d malformed rejected, %d served, %d responses",
		srv.Malformed(), srv.Requests(), len(responses))
}

func TestDecodeDTCSystems(t *testing.T) {
	cases := map[string]bool{"P0217": true, "C1234": true, "B1D00": true, "U0100": true}
	for code := range cases {
		hi, lo, err := encodeDTC(code)
		if err != nil {
			t.Fatalf("encodeDTC(%q): %v", code, err)
		}
		if got := DecodeDTC(hi, lo); got != code {
			t.Fatalf("round trip %q -> %q", code, got)
		}
	}
	if _, _, err := encodeDTC("X0000"); err == nil {
		t.Fatal("bad system letter accepted")
	}
	if _, _, err := encodeDTC("P00"); err == nil {
		t.Fatal("short code accepted")
	}
	if _, _, err := encodeDTC("P0Z00"); err == nil {
		t.Fatal("bad digit accepted")
	}
}

func TestServerSatisfiesUDSDTCStore(t *testing.T) {
	// The OBD server doubles as the UDS DTC store: one NVRAM-backed code
	// base served over both J1979 mode 03 and UDS 0x19.
	s := clock.New()
	b := bus.New(s)
	e := ecu.New("engine", s, b.Connect("engine"))
	srv := NewServer(e, IDResponseBase, Values{})
	srv.StoreDTC("P0217")

	var udsServer *uds.Server
	ep := isotp.NewEndpoint(s, e.Send, 0x7E9, 0x7E1, isotp.Config{},
		func(req []byte) { udsServer.HandleRequest(req) })
	udsServer = uds.NewServer(e, ep, uds.ServerConfig{DTCs: srv, EncodeDTC: EncodeDTC})
	e.Handle(0x7E1, ep.HandleFrame)

	tester := b.Connect("tester")
	var client *uds.Client
	cep := isotp.NewEndpoint(s, tester.Send, 0x7E1, 0x7E9, isotp.Config{},
		func(resp []byte) { client.HandleResponse(resp) })
	client = uds.NewClient(s, cep)
	tester.SetReceiver(cep.HandleFrame)

	// Read DTCs over UDS, decode the wire bytes, compare with the store.
	var wire []byte
	client.ReadDTCsByMask(0xFF, func(d []byte, err error) {
		if err != nil {
			t.Errorf("uds read: %v", err)
			return
		}
		wire = d
	})
	s.RunUntil(time.Second)
	// Response payload: subfunc, availability, then hi lo fault status.
	if len(wire) != 2+4 {
		t.Fatalf("wire = % X", wire)
	}
	if got := DecodeDTC(wire[2], wire[3]); got != "P0217" {
		t.Fatalf("decoded %q", got)
	}

	// Clear over UDS; the J1979 view must empty too.
	client.ClearAllDTCs(func(d []byte, err error) {
		if err != nil {
			t.Errorf("uds clear: %v", err)
		}
	})
	s.RunUntil(2 * time.Second)
	if len(srv.DTCs()) != 0 {
		t.Fatal("UDS clear did not reach the shared store")
	}
}
