package retry

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"
	"time"
)

// TestDelayDoubling pins the uncapped, unjittered schedule to the exact
// doubling series the campaign resilience layer has always used:
// Base << (attempt-1).
func TestDelayDoubling(t *testing.T) {
	p := Policy{Base: time.Millisecond}
	for attempt := 1; attempt <= 10; attempt++ {
		want := time.Millisecond << (attempt - 1)
		if got := p.Delay(attempt, nil); got != want {
			t.Fatalf("Delay(%d) = %v, want %v", attempt, got, want)
		}
	}
	if got := p.Delay(0, nil); got != time.Millisecond {
		t.Fatalf("Delay(0) = %v, want clamped to attempt 1 = 1ms", got)
	}
	if got := (Policy{}).Delay(5, nil); got != 0 {
		t.Fatalf("zero policy Delay = %v, want 0", got)
	}
}

// TestDelayCap asserts the cap bounds growth and that huge attempt counts
// saturate instead of overflowing into negative durations.
func TestDelayCap(t *testing.T) {
	p := Policy{Base: 100 * time.Millisecond, Cap: time.Second}
	if got := p.Delay(3, nil); got != 400*time.Millisecond {
		t.Fatalf("Delay(3) = %v, want 400ms (below cap)", got)
	}
	for _, attempt := range []int{5, 12, 64, 1 << 20} {
		if got := p.Delay(attempt, nil); got != time.Second {
			t.Fatalf("Delay(%d) = %v, want capped 1s", attempt, got)
		}
	}
	// Uncapped growth must saturate, never go negative.
	unc := Policy{Base: time.Second}
	if got := unc.Delay(200, nil); got != math.MaxInt64 {
		t.Fatalf("uncapped Delay(200) = %v, want MaxInt64 saturation", got)
	}
}

// TestDelayJitterBounds draws many jittered delays from a seeded RNG and
// asserts every one lands in [d*(1-Jitter), d], with both extremes of the
// range actually exercised (the spread is real, not a constant offset).
func TestDelayJitterBounds(t *testing.T) {
	p := Policy{Base: 100 * time.Millisecond, Cap: time.Second, Jitter: 0.5}
	rng := rand.New(rand.NewSource(42))
	const attempt = 4 // grown delay: 800ms -> jitter range [400ms, 800ms]
	lo, hi := 400*time.Millisecond, 800*time.Millisecond
	min, max := hi, lo
	for i := 0; i < 10000; i++ {
		d := p.Delay(attempt, rng)
		if d < lo || d > hi {
			t.Fatalf("jittered delay %v outside [%v, %v]", d, lo, hi)
		}
		if d < min {
			min = d
		}
		if d > max {
			max = d
		}
	}
	if min > lo+hi/10 || max < hi-hi/10 {
		t.Fatalf("jitter not spread across the range: saw [%v, %v] within [%v, %v]",
			min, max, lo, hi)
	}
	// Jitter with no RNG falls back to the deterministic upper bound.
	if got := p.Delay(attempt, nil); got != hi {
		t.Fatalf("Delay without rng = %v, want deterministic %v", got, hi)
	}
	// Jitter > 1 is clamped: delays stay non-negative.
	wild := Policy{Base: time.Millisecond, Jitter: 40}
	for i := 0; i < 1000; i++ {
		if d := wild.Delay(1, rng); d < 0 || d > time.Millisecond {
			t.Fatalf("clamped jitter produced %v", d)
		}
	}
}

// TestDoRetriesUntilSuccess asserts Do retries failures and stops at the
// first success.
func TestDoRetriesUntilSuccess(t *testing.T) {
	calls := 0
	err := Do(context.Background(), Policy{Base: time.Microsecond}, 5, nil, func() error {
		calls++
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("Do = %v after %d calls, want nil after 3", err, calls)
	}
}

// TestDoExhaustsBudget asserts the last error surfaces when every attempt
// fails.
func TestDoExhaustsBudget(t *testing.T) {
	want := errors.New("still broken")
	calls := 0
	err := Do(context.Background(), Policy{Base: time.Microsecond}, 4, nil, func() error {
		calls++
		return want
	})
	if !errors.Is(err, want) || calls != 4 {
		t.Fatalf("Do = %v after %d calls, want %v after 4", err, calls, want)
	}
}

// TestDoContextCancelled asserts a cancelled context aborts the backoff
// wait and surfaces context.Canceled.
func TestDoContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	errCh := make(chan error, 1)
	go func() {
		errCh <- Do(ctx, Policy{Base: time.Hour}, 3, nil, func() error {
			calls++
			return errors.New("fail")
		})
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-errCh:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Do = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Do did not abort on context cancellation")
	}
	if calls != 1 {
		t.Fatalf("fn called %d times, want 1 (cancelled during first backoff)", calls)
	}
}

// TestDoZeroAllocSuccess pins the success path at zero allocations: a
// first-try success must not build timers, errors or rng state.
func TestDoZeroAllocSuccess(t *testing.T) {
	ctx := context.Background()
	p := Policy{Base: time.Millisecond, Cap: time.Second, Jitter: 0.5}
	ok := func() error { return nil }
	if allocs := testing.AllocsPerRun(1000, func() {
		if err := Do(ctx, p, 5, nil, ok); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Fatalf("Do success path allocates %.1f objects/op, want 0", allocs)
	}
	// Delay itself is pure arithmetic.
	rng := rand.New(rand.NewSource(1))
	if allocs := testing.AllocsPerRun(1000, func() {
		_ = p.Delay(7, rng)
	}); allocs != 0 {
		t.Fatalf("Delay allocates %.1f objects/op, want 0", allocs)
	}
}
