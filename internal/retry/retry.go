// Package retry is the shared backoff implementation behind every layer
// that re-attempts failed work: the campaign resilience policy retries
// rejected transmissions on the virtual clock (core.WithResilience), and
// the distributed campaign service re-dispatches expired trial leases and
// re-sends worker RPCs on the wall clock (internal/campaignd). Both need
// the same delay schedule — exponential doubling from a base, optionally
// capped and jittered — so it lives here once instead of drifting apart
// in two copies.
//
// The package is deliberately tiny and allocation-free: Delay is pure
// arithmetic, and Do allocates nothing when the first attempt succeeds,
// so wrapping a hot call in a retry loop costs one function call on the
// happy path.
package retry

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"time"
)

// Policy describes a capped exponential backoff schedule with optional
// jitter. The zero value is a valid "no delay" policy.
type Policy struct {
	// Base is the delay before the first retry; it doubles on each further
	// attempt. Base <= 0 disables delays entirely.
	Base time.Duration
	// Cap bounds the grown delay (before jitter). Cap <= 0 means uncapped;
	// growth still saturates instead of overflowing.
	Cap time.Duration
	// Jitter is the fraction of the delay that is randomized: the final
	// delay is drawn uniformly from [d*(1-Jitter), d]. Values outside
	// [0, 1] are clamped. Jitter requires an RNG; with a nil RNG the
	// deterministic upper bound is used, which is what the virtual-time
	// resilience layer wants.
	Jitter float64
}

// Delay returns the pause before retry attempt (1-based): Base doubling
// per prior attempt, saturating at Cap (or at the maximum Duration when
// uncapped), then jittered downward by up to Jitter*delay when an RNG is
// provided. attempt < 1 is treated as 1.
func (p Policy) Delay(attempt int, rng *rand.Rand) time.Duration {
	if p.Base <= 0 {
		return 0
	}
	if attempt < 1 {
		attempt = 1
	}
	d := p.Base
	for i := 1; i < attempt; i++ {
		if p.Cap > 0 && d >= p.Cap {
			break
		}
		if d > math.MaxInt64/2 {
			d = math.MaxInt64
			break
		}
		d <<= 1
	}
	if p.Cap > 0 && d > p.Cap {
		d = p.Cap
	}
	if rng != nil && p.Jitter > 0 {
		j := p.Jitter
		if j > 1 {
			j = 1
		}
		if span := int64(float64(d) * j); span > 0 {
			d -= time.Duration(rng.Int63n(span + 1))
		}
	}
	return d
}

// Sleep blocks for d or until ctx is cancelled, returning ctx.Err() in the
// cancelled case. d <= 0 returns immediately.
func Sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Do calls fn until it succeeds, up to attempts tries, sleeping
// p.Delay(try, rng) between failures. It returns nil on success, the last
// error when the attempt budget is exhausted, and a wrapped ctx error when
// the context is cancelled mid-wait. attempts < 1 is treated as 1. The
// success path performs no allocation and starts no timer.
func Do(ctx context.Context, p Policy, attempts int, rng *rand.Rand, fn func() error) error {
	if attempts < 1 {
		attempts = 1
	}
	var err error
	for try := 1; ; try++ {
		if err = fn(); err == nil {
			return nil
		}
		if try >= attempts {
			return err
		}
		if serr := Sleep(ctx, p.Delay(try, rng)); serr != nil {
			return fmt.Errorf("retry aborted: %w (last error: %v)", serr, err)
		}
	}
}
