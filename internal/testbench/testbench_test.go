package testbench

import (
	"testing"
	"time"

	"repro/internal/bcm"
	"repro/internal/can"
	"repro/internal/clock"
	"repro/internal/core"
)

func newSched(t *testing.T) *clock.Scheduler {
	t.Helper()
	return clock.New()
}

func TestNormalOperationLockUnlock(t *testing.T) {
	// Fig 12/13: the PC app locks and unlocks via the head unit.
	b := New(newSched(t), Config{AckUnlock: true})
	s := b.Scheduler()
	if err := b.HeadUnit.AppUnlock(AppToken); err != nil {
		t.Fatal(err)
	}
	s.RunUntil(100 * time.Millisecond)
	if !b.BCM.Unlocked() {
		t.Fatal("LED off after app unlock")
	}
	if err := b.HeadUnit.AppLock(AppToken); err != nil {
		t.Fatal(err)
	}
	s.RunUntil(200 * time.Millisecond)
	if b.BCM.Unlocked() {
		t.Fatal("LED on after app lock")
	}
}

func TestMonitorNodeSeesTraffic(t *testing.T) {
	b := New(newSched(t), Config{})
	s := b.Scheduler()
	b.HeadUnit.AppUnlock(AppToken)
	s.RunUntil(time.Second)
	if b.MonitorFrames() == 0 {
		t.Fatal("monitor node saw no traffic")
	}
}

func TestFuzzerHasNoKnowledgeButUnlocks(t *testing.T) {
	// §VI: "When the fuzzer runs it has no knowledge of the CAN message to
	// activate the locks... the unlock (or lock) functionality was
	// activated after a few minutes of randomly generated CAN data."
	exp, err := NewUnlockExperiment(Config{Check: bcm.CheckByteOnly}, core.Config{Seed: 20180625})
	if err != nil {
		t.Fatal(err)
	}
	elapsed, ok := exp.Run(4 * time.Hour)
	if !ok {
		t.Fatal("fuzzer never unlocked the doors")
	}
	if !exp.Bench.BCM.Unlocked() {
		t.Fatal("oracle fired but LED is off")
	}
	// The expectation at 1 ms pacing over the 2048x9x256 space is minutes,
	// not milliseconds and not days.
	if elapsed < time.Second || elapsed > 2*time.Hour {
		t.Fatalf("time to unlock = %v, implausible", elapsed)
	}
}

func TestLengthCheckSlowsFuzzer(t *testing.T) {
	// The Table V shape on a pair of single runs with a shared seed: the
	// stricter parser can never be faster than the loose one for the same
	// fuzz stream, because it accepts a strict subset of frames.
	seed := int64(7)
	loose, err := NewUnlockExperiment(Config{Check: bcm.CheckByteOnly}, core.Config{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	tLoose, ok := loose.Run(12 * time.Hour)
	if !ok {
		t.Fatal("loose parser never unlocked")
	}
	strict, err := NewUnlockExperiment(Config{Check: bcm.CheckByteAndLength}, core.Config{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	tStrict, ok := strict.Run(12 * time.Hour)
	if !ok {
		t.Fatal("strict parser never unlocked within 12h")
	}
	if tStrict < tLoose {
		t.Fatalf("strict (%v) unlocked before loose (%v) on identical stream", tStrict, tLoose)
	}
}

func TestLEDOracleDetectsUnlock(t *testing.T) {
	sched := newSched(t)
	bench := New(sched, Config{}) // no ack augmentation: physical oracle instead
	port := bench.AttachFuzzer("fuzzer")
	campaign, err := core.NewCampaign(sched, port, core.Config{Seed: 99}, core.WithStopOnFinding())
	if err != nil {
		t.Fatal(err)
	}
	campaign.AddOracle(bench.LEDOracle(10 * time.Millisecond))
	finding, ok := campaign.RunUntilFinding(4 * time.Hour)
	if !ok {
		t.Fatal("LED oracle never fired")
	}
	if finding.Verdict.Oracle != "lock-led" {
		t.Fatalf("oracle = %q", finding.Verdict.Oracle)
	}
	if !bench.BCM.Unlocked() {
		t.Fatal("LED oracle fired with doors locked")
	}
}

func TestTargetedFuzzingFasterThanBlind(t *testing.T) {
	// §VII: usefulness "in fuzz testing in a specific message space, close
	// to known messages". Targeting the observed command ID shrinks the
	// space by 2048x; with matched seeds the hit should come much sooner.
	blind, err := NewUnlockExperiment(Config{Check: bcm.CheckByteOnly}, core.Config{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	tBlind, ok := blind.Run(12 * time.Hour)
	if !ok {
		t.Fatal("blind run never unlocked")
	}
	targeted, err := NewUnlockExperiment(Config{Check: bcm.CheckByteOnly}, core.Config{
		Seed:      11,
		TargetIDs: []can.ID{0x215},
	})
	if err != nil {
		t.Fatal(err)
	}
	tTargeted, ok := targeted.Run(12 * time.Hour)
	if !ok {
		t.Fatal("targeted run never unlocked")
	}
	if tTargeted*10 > tBlind {
		t.Fatalf("targeted (%v) not ≫ faster than blind (%v)", tTargeted, tBlind)
	}
}
