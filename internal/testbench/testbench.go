// Package testbench assembles the paper's bench-top experiment (Figs
// 10-13): a three-node CAN bus — head unit, body control module with the
// lock "LED", and a monitor node — reproducing the remote vehicle unlock
// feature, plus the attachment point for the fuzzer acting as "a malicious
// unit connected to the vehicle network".
//
// The bench exists because fuzzing the real vehicle risked damage (§VI):
// "In order to prevent the possibility of damage to the target vehicle's
// components, further testing of the fuzzer was performed against a
// bench-top hardware configuration." Table V's quantitative results come
// from this bench.
package testbench

import (
	"time"

	"repro/internal/bcm"
	"repro/internal/bus"
	"repro/internal/can"
	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/ecu"
	"repro/internal/guided"
	"repro/internal/infotain"
	"repro/internal/oracle"
	"repro/internal/signal"
	"repro/internal/telemetry"
)

// AppToken is the bench's app/head-unit pairing secret.
const AppToken = "bench-app"

// Config tunes the bench.
type Config struct {
	// Check selects the BCM command-parser strictness — the Table V
	// variable.
	Check bcm.CheckMode
	// AckUnlock enables the unlock-acknowledgement broadcast (the paper's
	// augmentation "to aid with the detection of the unlock state").
	AckUnlock bool
}

// Bench is the assembled three-node testbed.
type Bench struct {
	sched *clock.Scheduler

	// Bus is the bench CAN bus.
	Bus *bus.Bus
	// HeadUnit plays the infotainment node (driven by the PC app).
	HeadUnit *infotain.HeadUnit
	// BCM owns the lock state; its LED is BCM.Unlocked().
	BCM *bcm.BCM
	// Monitor is the third SBC: a passive observer counting traffic.
	Monitor *ecu.ECU

	monitorFrames uint64
}

// New assembles a bench on the given scheduler.
func New(sched *clock.Scheduler, cfg Config) *Bench {
	b := &Bench{sched: sched, Bus: bus.New(sched, bus.WithName("bench"))}
	b.HeadUnit = infotain.New(ecu.New("headunit", sched, b.Bus.Connect("headunit")), AppToken)
	b.BCM = bcm.New(ecu.New("bcm", sched, b.Bus.Connect("bcm")), bcm.Config{
		Check:     cfg.Check,
		AckUnlock: cfg.AckUnlock,
	})
	b.Monitor = ecu.New("monitor", sched, b.Bus.Connect("monitor"))
	b.Monitor.HandleAll(func(bus.Message) { b.monitorFrames++ })
	return b
}

// Scheduler returns the bench clock.
func (b *Bench) Scheduler() *clock.Scheduler { return b.sched }

// Reset returns the bench to its freshly-assembled state for world reuse.
// The caller must Reset the scheduler first. The reset order mirrors
// construction — bus, head unit, BCM, monitor — so the BCM status
// broadcast is re-armed with the same scheduling sequence number a fresh
// bench would give it, keeping a reused bench's event stream
// byte-identical to a new one's.
func (b *Bench) Reset() {
	b.Bus.Reset()
	b.HeadUnit.ECU().Reset()
	b.HeadUnit.Reset()
	b.BCM.ECU().Reset()
	b.BCM.Reset()
	b.Monitor.Reset()
	b.monitorFrames = 0
}

// Instrument attaches the bench bus and its three nodes to a telemetry
// plane. Passing nil is a no-op.
func (b *Bench) Instrument(t *telemetry.Telemetry) {
	if t == nil {
		return
	}
	b.Bus.Instrument(t)
	b.HeadUnit.ECU().Instrument(t)
	b.BCM.ECU().Instrument(t)
	b.Monitor.Instrument(t)
}

// ECUs returns the bench nodes by name — the attachment map a
// fault-injection plan uses to resolve stall/panic targets.
func (b *Bench) ECUs() map[string]*ecu.ECU {
	return map[string]*ecu.ECU{
		b.HeadUnit.ECU().Name(): b.HeadUnit.ECU(),
		b.BCM.ECU().Name():      b.BCM.ECU(),
		b.Monitor.Name():        b.Monitor,
	}
}

// MonitorFrames returns the number of frames the monitor node observed.
func (b *Bench) MonitorFrames() uint64 { return b.monitorFrames }

// AttachFuzzer connects a malicious node to the bench bus.
func (b *Bench) AttachFuzzer(name string) *bus.Port {
	return b.Bus.Connect(name)
}

// UnlockOracle returns the network oracle for the augmented unlock
// acknowledgement (requires Config.AckUnlock).
func (b *Bench) UnlockOracle() *oracle.Ack {
	return &oracle.Ack{
		OracleName: "unlock-ack",
		Once:       true,
		Match: func(f can.Frame) bool {
			return f.ID == signal.IDUnlockAck && f.Len >= 1 && f.Data[0] == signal.UnlockAckCode
		},
	}
}

// LEDOracle returns the physical oracle watching the lock LED directly —
// the "sensor on the door lock" alternative the paper mentions for a real
// vehicle.
func (b *Bench) LEDOracle(interval time.Duration) *oracle.Probe {
	return oracle.Physical("lock-led", interval, b.BCM.Unlocked, false, "lock LED lit (doors unlocked)")
}

// UnlockExperiment is one Table V measurement: it wires a fuzz campaign to
// the bench, runs until the unlock is detected (or maxDuration elapses),
// and reports the virtual time the fuzzer needed.
type UnlockExperiment struct {
	// Bench is the assembled testbed.
	Bench *Bench
	// Campaign is the armed fuzzer.
	Campaign *core.Campaign
}

// NewUnlockExperiment builds a bench plus fuzzer for one run. The fuzzer
// uses the full Table III random space at the given seed.
func NewUnlockExperiment(cfg Config, fuzzCfg core.Config) (*UnlockExperiment, error) {
	sched := clock.New()
	bench := New(sched, Config{Check: cfg.Check, AckUnlock: true})
	port := bench.AttachFuzzer("fuzzer")
	campaign, err := core.NewCampaign(sched, port, fuzzCfg, core.WithStopOnFinding())
	if err != nil {
		return nil, err
	}
	campaign.AddOracle(bench.UnlockOracle())
	return &UnlockExperiment{Bench: bench, Campaign: campaign}, nil
}

// Reset re-initializes the whole experiment world in place under a new
// seed: scheduler back to time zero, bench to its freshly-assembled
// state, campaign (generator stream, monitor, findings) to its
// as-constructed state. A reset experiment runs bit-for-bit identically
// to one newly built with the same seed, which is what lets fleet
// workers recycle worlds across trials instead of rebuilding them.
func (e *UnlockExperiment) Reset(seed int64) {
	e.Bench.Scheduler().Reset()
	e.Bench.Reset()
	e.Campaign.Reset(seed)
}

// Run executes the experiment and returns the time to unlock. ok is false
// if the deadline elapsed first.
func (e *UnlockExperiment) Run(maxDuration time.Duration) (timeToUnlock time.Duration, ok bool) {
	finding, ok := e.Campaign.RunUntilFinding(maxDuration)
	if !ok {
		return 0, false
	}
	return finding.Elapsed, true
}

// GuidedProbes returns the bench's feedback probes for a guided.Engine:
// BCM command-frame and near-miss counters (the gradient toward the Table V
// unlock — a near-miss means one constraint away), the lock state itself,
// and the fuzzer port's error counters. Probe features are keyed by name,
// so the slice order is cosmetic.
func (b *Bench) GuidedProbes(fuzzer *bus.Port) []guided.Probe {
	return []guided.Probe{
		{Name: "bcm_cmd_frames", Fn: func() uint64 { n, _ := b.BCM.CommandStats(); return n }},
		{Name: "bcm_near_misses", Fn: func() uint64 { _, n := b.BCM.CommandStats(); return n }},
		{Name: "bcm_unlocked", Fn: func() uint64 {
			if b.BCM.Unlocked() {
				return 1
			}
			return 0
		}},
		{Name: "fuzzer_tec", Fn: func() uint64 { tec, _ := fuzzer.ErrorCounters(); return uint64(tec) }},
		{Name: "fuzzer_rec", Fn: func() uint64 { _, rec := fuzzer.ErrorCounters(); return uint64(rec) }},
	}
}

// GuidedUnlockExperiment is an UnlockExperiment driven by the guided
// feedback engine instead of the blind generator.
type GuidedUnlockExperiment struct {
	// Bench is the assembled testbed.
	Bench *Bench
	// Campaign is the armed fuzzer, with the engine installed as its frame
	// source.
	Campaign *core.Campaign
	// Engine is the feedback engine (corpus, novelty map).
	Engine *guided.Engine
}

// NewGuidedUnlockExperiment builds a bench plus a coverage-guided fuzzer
// for one run: the same world as NewUnlockExperiment, with a guided.Engine
// fed by the bench probes installed as the campaign's frame source.
func NewGuidedUnlockExperiment(cfg Config, fuzzCfg core.Config, opts ...guided.EngineOption) (*GuidedUnlockExperiment, error) {
	sched := clock.New()
	bench := New(sched, Config{Check: cfg.Check, AckUnlock: true})
	port := bench.AttachFuzzer("fuzzer")
	fuzzCfg.Mode = core.ModeGuided
	engine, err := guided.NewEngine(fuzzCfg,
		append([]guided.EngineOption{guided.WithProbes(bench.GuidedProbes(port)...)}, opts...)...)
	if err != nil {
		return nil, err
	}
	campaign, err := core.NewCampaign(sched, port, fuzzCfg,
		core.WithStopOnFinding(), core.WithFrameSource(engine))
	if err != nil {
		return nil, err
	}
	campaign.AddOracle(bench.UnlockOracle())
	return &GuidedUnlockExperiment{Bench: bench, Campaign: campaign, Engine: engine}, nil
}

// Reset re-initializes the guided experiment world in place under a new
// seed — scheduler, bench, feedback engine (RNG stream, novelty map,
// corpus) and campaign — so a reused guided world replays exactly like a
// freshly built one.
func (e *GuidedUnlockExperiment) Reset(seed int64) {
	e.Bench.Scheduler().Reset()
	e.Bench.Reset()
	e.Engine.Reset(seed)
	e.Campaign.Reset(seed)
}

// Run executes the guided experiment; same contract as UnlockExperiment.Run.
func (e *GuidedUnlockExperiment) Run(maxDuration time.Duration) (timeToUnlock time.Duration, ok bool) {
	finding, ok := e.Campaign.RunUntilFinding(maxDuration)
	if !ok {
		return 0, false
	}
	return finding.Elapsed, true
}
