package experiments

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/bus"
	"repro/internal/faults"
)

func TestChaosClusterBrickRecovers(t *testing.T) {
	res := ChaosClusterBrick(1, time.Hour, true)
	if !res.Found {
		t.Fatal("chaos campaign with recovery never found the cluster crash")
	}
	if res.Finding.Verdict.Oracle != "cluster-crash" {
		t.Fatalf("finding oracle = %q, want cluster-crash", res.Finding.Verdict.Oracle)
	}
	if !res.ClusterCrashed {
		t.Fatal("crash display not latched")
	}
	// The injected corruption bricked the fuzzer node mid-run and ISO
	// auto-recovery brought it back: the report records the full cycle.
	if res.BusOffs == 0 || res.Recoveries == 0 {
		t.Fatalf("bus-off/recovery cycle missing: busoffs=%d recoveries=%d",
			res.BusOffs, res.Recoveries)
	}
	if res.FuzzerState != bus.ErrorActive {
		t.Fatalf("fuzzer state = %v at end, want error-active", res.FuzzerState)
	}
	rep := res.Report
	if rep.Resilience == nil || rep.Resilience.PortBusOffs == 0 || rep.Resilience.PortRecoveries == 0 {
		t.Fatalf("resilience section incomplete: %+v", rep.Resilience)
	}
	if rep.FaultsInjected[string(faults.KindCorrupt)] == 0 {
		t.Fatalf("no corrupt injections in report: %v", rep.FaultsInjected)
	}
	for _, k := range []faults.Kind{faults.KindJam, faults.KindStall} {
		if rep.FaultsInjected[string(k)] != 1 {
			t.Fatalf("FaultsInjected[%s] = %d, want 1 (all: %v)",
				k, rep.FaultsInjected[string(k)], rep.FaultsInjected)
		}
	}
	if res.Elapsed >= time.Hour {
		t.Fatalf("ran to the deadline: %v", res.Elapsed)
	}
}

func TestChaosClusterBrickWatchdogWithoutRecovery(t *testing.T) {
	res := ChaosClusterBrick(1, time.Hour, false)
	if !res.Found {
		t.Fatal("dead-bus run produced no finding")
	}
	if res.Finding.Verdict.Oracle != "watchdog" {
		t.Fatalf("finding oracle = %q, want watchdog", res.Finding.Verdict.Oracle)
	}
	if res.BusOffs == 0 || res.Recoveries != 0 {
		t.Fatalf("busoffs=%d recoveries=%d, want brick without rejoin",
			res.BusOffs, res.Recoveries)
	}
	if res.FuzzerState != bus.BusOff {
		t.Fatalf("fuzzer state = %v, want bus-off", res.FuzzerState)
	}
	// The watchdog must short-circuit the run, not spin to the deadline.
	if res.Elapsed >= time.Second {
		t.Fatalf("watchdog took %v to end the run", res.Elapsed)
	}
}

func TestChaosClusterBrickSeedStable(t *testing.T) {
	a := ChaosClusterBrick(1, time.Hour, true)
	b := ChaosClusterBrick(1, time.Hour, true)
	if !reflect.DeepEqual(a.Report, b.Report) {
		t.Fatalf("same seed produced different reports:\n%+v\n%+v", a.Report, b.Report)
	}
	if a.BusOffs != b.BusOffs || a.Recoveries != b.Recoveries || a.Elapsed != b.Elapsed {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
	if len(a.Report.FaultsInjected) == 0 {
		t.Fatal("report missing injected-fault counts")
	}
}
