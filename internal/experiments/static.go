// Package experiments contains one harness per table and figure of the
// paper's evaluation. Each harness is deterministic given its seed and
// returns typed rows; cmd/benchreport and the root bench_test.go render
// them in the paper's layout. EXPERIMENTS.md records paper-vs-measured for
// each.
package experiments

import (
	"time"

	"repro/internal/analysis"
	"repro/internal/can"
)

// Fig1Row is one bar of Figure 1 (survey of testing methods used in the
// automotive industry, derived from Altinger, Wotawa and Schurius 2014).
type Fig1Row struct {
	// Method is the testing method name.
	Method string
	// Share is the reported usage share, in percent of respondents.
	Share float64
}

// Figure1 returns the survey data behind Fig 1. The values are the usage
// shares the paper's bar chart shows; the point of the figure is the
// shape: functional/unit testing dominates while fuzzing sits near the
// bottom ("its use in general testing of automotive systems is low").
func Figure1() []Fig1Row {
	return []Fig1Row{
		{Method: "Functional testing", Share: 87},
		{Method: "Unit testing", Share: 82},
		{Method: "Integration testing", Share: 71},
		{Method: "Regression testing", Share: 59},
		{Method: "Requirements-based testing", Share: 55},
		{Method: "Back-to-back testing", Share: 38},
		{Method: "Fault injection", Share: 26},
		{Method: "Robustness testing", Share: 22},
		{Method: "Fuzz testing", Share: 8},
		{Method: "Penetration testing", Share: 6},
	}
}

// Table1Row is one row of Table I (automotive CAN fuzzing tools).
type Table1Row struct {
	// Tool is the fuzzer name.
	Tool string
	// License is the licensing model.
	License string
	// Approach is the configuration approach.
	Approach string
}

// Table1 returns the catalogue of Table I verbatim.
func Table1() []Table1Row {
	return []Table1Row{
		{Tool: "beStorm", License: "Commercial", Approach: "Protocol based"},
		{Tool: "Defensics", License: "Commercial", Approach: "Protocol based"},
		{Tool: "CANoe/booFuzz", License: "Mixed", Approach: "Design based"},
		{Tool: "Peach", License: "Mixed", Approach: "Protocol based"},
		{Tool: "Custom software", License: "As required", Approach: "As required"},
	}
}

// Table3Row is one row of Table III (fuzzable elements of a CAN packet).
type Table3Row struct {
	// Item is the fuzzed element.
	Item string
	// Range is the value range in the paper's set notation.
	Range string
	// Description is the paper's description column.
	Description string
}

// Table3 returns the fuzzing-element rows of Table III.
func Table3() []Table3Row {
	return []Table3Row{
		{Item: "CAN Id", Range: "{0,1,2,...,2047}", Description: "All standard message ids"},
		{Item: "Payload length", Range: "{0,1,2,...,8}", Description: "Vary message length"},
		{Item: "Payload byte", Range: "{0,1,2,...,255}", Description: "Vary payload bytes"},
		{Item: "Rate", Range: ">= 1ms", Description: "Vary transmission interval"},
	}
}

// SpaceCalc is one line of the §V combinatorial-explosion discussion.
type SpaceCalc struct {
	// Space is the parameter space.
	Space analysis.FuzzSpace
	// Combinations is the space size.
	Combinations uint64
	// AtOneMs is the exhaustion time at the fuzzer's 1 ms maximum rate.
	AtOneMs time.Duration
}

// Table3Combinatorics returns the §V worked examples: one payload byte is
// 2^19 combinations (~8.7 minutes at 1 ms), two bytes ~1.5 days, and the
// growth beyond that which makes blind fuzzing "impractical".
func Table3Combinatorics() []SpaceCalc {
	var out []SpaceCalc
	for _, bytes := range []int{0, 1, 2, 3} {
		s := analysis.FuzzSpace{IDs: can.NumIDs, PayloadBytes: bytes}
		out = append(out, SpaceCalc{
			Space:        s,
			Combinations: s.Combinations(),
			AtOneMs:      s.TimeToExhaust(time.Millisecond),
		})
	}
	return out
}
