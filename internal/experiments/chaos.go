package experiments

import (
	"time"

	"repro/internal/bus"
	"repro/internal/clock"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/ecu"
	"repro/internal/faults"
	"repro/internal/oracle"
)

// Chaos experiment: the paper's accidental cluster brick (§VI — fuzzing
// drove the real instrument cluster into a state needing a battery pull)
// recast as a *deliberate*, injected-then-recovered fault. A fault plan
// corrupts every frame in a window so the fuzzer node drives itself to
// bus-off mid-campaign, then jams the wire and stalls the cluster for good
// measure. With ISO 11898-1 auto-recovery plus the campaign resilience
// policy the node rejoins and the hunt for the Figure 9 crash continues;
// without them the dead-bus watchdog ends the run with a classified
// finding instead of spinning until the deadline.

// chaosPlan is the canonical fault schedule of the cluster-brick chaos
// scenario. The corruption window is long enough to push the transmitter's
// TEC past 255 (32 corrupted frames at +8 each) at the campaign's 1 ms
// pace.
func chaosPlan(seed int64) faults.Plan {
	return faults.Plan{Seed: seed, Specs: []faults.Spec{
		{Kind: faults.KindCorrupt, Prob: 1, At: 50 * time.Millisecond, For: 50 * time.Millisecond},
		{Kind: faults.KindJam, At: 150 * time.Millisecond, For: 10 * time.Millisecond},
		{Kind: faults.KindStall, Target: "cluster", At: 200 * time.Millisecond, For: 50 * time.Millisecond},
	}}
}

// ChaosResult is the chaos cluster-brick outcome.
type ChaosResult struct {
	// Found reports whether the run ended on a finding before maxDur.
	Found bool
	// Finding is the finding that ended the run (zero value when !Found).
	// With recovery it is the cluster-crash oracle; without, the watchdog.
	Finding core.Finding
	// Report is the campaign report, including the resilience section and
	// the per-kind injected-fault counts.
	Report core.Report
	// BusOffs and Recoveries count the fuzzer port's bus-off entries and
	// ISO 11898-1 rejoins.
	BusOffs, Recoveries uint64
	// FuzzerState is the fuzzer port's fault-confinement state at the end.
	FuzzerState bus.NodeState
	// ClusterCrashed reports the latched crash display.
	ClusterCrashed bool
	// Elapsed is the virtual time when the run ended.
	Elapsed time.Duration
}

// ChaosClusterBrick fuzzes the bench cluster under the chaos fault plan.
// When recovery is true the bus auto-recovers bus-off nodes and the
// campaign runs the default resilience policy, so the injected brick heals
// and the run ends on the cluster crash; when false the node stays bus-off
// and the watchdog classifies the dead bus. maxDur bounds the hunt.
func ChaosClusterBrick(seed int64, maxDur time.Duration, recovery bool) ChaosResult {
	sched := clock.New()
	busOpts := []bus.Option{bus.WithName("bench")}
	if recovery {
		busOpts = append(busOpts, bus.WithAutoRecovery())
	}
	b := bus.New(sched, busOpts...)
	clusterECU := ecu.New("cluster", sched, b.Connect("cluster"))
	c := cluster.New(clusterECU)
	port := b.Connect("fuzzer")

	inj := faults.New(sched, chaosPlan(seed))
	inj.AttachBus(b)
	inj.AttachECU("cluster", clusterECU)

	campaign, err := core.NewCampaign(sched, port, core.Config{Seed: seed},
		core.WithStopOnFinding(),
		core.WithResilience(core.DefaultResilience()),
		core.WithFaultCounts(inj.Counts))
	if err != nil {
		panic(err) // static configuration cannot fail
	}
	campaign.AddOracle(oracle.Crash("cluster-crash", 10*time.Millisecond,
		c.Crashed, func() string { return "persistent CRASH display latched" }))
	if err := inj.Start(); err != nil {
		panic(err)
	}
	finding, found := campaign.RunUntilFinding(maxDur)
	inj.Stop()

	st := port.Stats()
	return ChaosResult{
		Found:          found,
		Finding:        finding,
		Report:         campaign.BuildReport(),
		BusOffs:        st.BusOffs,
		Recoveries:     st.Recoveries,
		FuzzerState:    port.State(),
		ClusterCrashed: c.Crashed(),
		Elapsed:        sched.Now(),
	}
}
