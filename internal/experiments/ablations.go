package experiments

import (
	"time"

	"repro/internal/analysis"
	"repro/internal/bcm"
	"repro/internal/bus"
	"repro/internal/can"
	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/gateway"
	"repro/internal/ids"
	"repro/internal/oracle"
	"repro/internal/signal"
	"repro/internal/testbench"
	"repro/internal/vehicle"
)

// Ablation benchmarks for the design choices DESIGN.md calls out. Each is
// an extension of the paper's discussion section, quantified.

// TargetedVsBlindResult compares the §VII recommendation ("fuzz testing in
// a specific message space, close to known messages") against the blind
// full-space fuzz.
type TargetedVsBlindResult struct {
	// Blind holds full-ID-space times to unlock.
	Blind analysis.RunStats
	// Targeted holds times when fuzzing only the observed command ID.
	Targeted analysis.RunStats
	// SpeedupMean is Blind.Mean / Targeted.Mean.
	SpeedupMean float64
}

// AblationTargetedVsBlind measures the speedup from restricting the fuzz
// space to the command identifier observed by traffic capture.
func AblationTargetedVsBlind(baseSeed int64, runs int, maxPerRun time.Duration) TargetedVsBlindResult {
	var res TargetedVsBlindResult
	for i := 0; i < runs; i++ {
		blind, err := testbench.NewUnlockExperiment(
			testbench.Config{Check: bcm.CheckByteOnly},
			core.Config{Seed: baseSeed + int64(i)},
		)
		if err != nil {
			panic(err)
		}
		if t, ok := blind.Run(maxPerRun); ok {
			res.Blind.Times = append(res.Blind.Times, t)
		}
		targeted, err := testbench.NewUnlockExperiment(
			testbench.Config{Check: bcm.CheckByteOnly},
			core.Config{Seed: baseSeed + int64(i), TargetIDs: []can.ID{signal.IDBodyCommand}},
		)
		if err != nil {
			panic(err)
		}
		if t, ok := targeted.Run(maxPerRun); ok {
			res.Targeted.Times = append(res.Targeted.Times, t)
		}
	}
	if m := res.Targeted.Mean(); m > 0 {
		res.SpeedupMean = float64(res.Blind.Mean()) / float64(m)
	}
	return res
}

// AblationOracleStrictness extends Table V with the paper's prediction:
// "If the change had been to check for a two byte value the time increase
// would have been even greater." It returns one row per parser variant
// including CheckTwoBytes.
//
// The runs fuzz the command identifier only (targeted mode): blind
// two-byte hunting needs ~10^9 frames per hit, which is exactly the
// paper's combinatorial-explosion point, and targeting keeps the relative
// comparison measurable. Expected frame-count ratios in targeted mode:
// byte-only 1x, +length ~8x, +source-byte ~2048x.
func AblationOracleStrictness(baseSeed int64, runs int, maxPerRun time.Duration) []Table5Row {
	variants := []bcm.CheckMode{bcm.CheckByteOnly, bcm.CheckByteAndLength, bcm.CheckTwoBytes}
	rows := make([]Table5Row, 0, len(variants))
	for _, check := range variants {
		rows = append(rows, runUnlockVariantCfg(check, runs, maxPerRun, func(i int) core.Config {
			return core.Config{
				Seed:      baseSeed + int64(i),
				TargetIDs: []can.ID{signal.IDBodyCommand},
			}
		}))
	}
	return rows
}

// PacingResult measures one transmission interval.
type PacingResult struct {
	// Interval is the frame period.
	Interval time.Duration
	// TimeToUnlock is the virtual unlock time (0 if timed out).
	TimeToUnlock time.Duration
	// FramesSent is the fuzz frame count at unlock.
	FramesSent uint64
	// BusLoad is the bench bus utilisation during the run.
	BusLoad float64
}

// AblationPacing measures how the transmission interval (Table III "Rate")
// trades wall-clock against bus load. The frames-to-unlock count is rate
// independent; the time scales with the interval and the load inversely.
func AblationPacing(seed int64, intervals []time.Duration, maxPerRun time.Duration) []PacingResult {
	out := make([]PacingResult, 0, len(intervals))
	for _, iv := range intervals {
		exp, err := testbench.NewUnlockExperiment(
			testbench.Config{Check: bcm.CheckByteOnly},
			core.Config{Seed: seed, Interval: iv},
		)
		if err != nil {
			panic(err)
		}
		r := PacingResult{Interval: iv}
		if t, ok := exp.Run(maxPerRun); ok {
			r.TimeToUnlock = t
			r.FramesSent = exp.Campaign.FramesSent()
		}
		r.BusLoad = exp.Bench.Bus.Load()
		out = append(out, r)
	}
	return out
}

// GatewayResult compares unlock-fuzzing through a legacy forward-all
// gateway against an allow-list gateway.
type GatewayResult struct {
	// ForwardAllUnlocked reports whether the attack succeeded through the
	// legacy gateway.
	ForwardAllUnlocked bool
	// ForwardAllTime is the time to unlock through the legacy gateway.
	ForwardAllTime time.Duration
	// AllowListUnlocked reports whether the attack succeeded through the
	// filtering gateway (expected false).
	AllowListUnlocked bool
	// AllowListBlocked is the number of frames the filtering gateway
	// dropped.
	AllowListBlocked uint64
}

// AblationGateway quantifies the §VII protection-measures discussion: an
// allow-list gateway between the OBD-exposed powertrain bus and the body
// bus defeats the blind unlock fuzz entirely.
func AblationGateway(seed int64, maxDur time.Duration) GatewayResult {
	var res GatewayResult

	run := func(allowList bool) (bool, time.Duration, uint64) {
		sched := clock.New()
		v := vehicle.New(sched, vehicle.Config{Seed: seed, BCMAckUnlock: true})
		if allowList {
			v.Gateway.SetPolicy(gateway.AToB, gateway.AllowList)
			v.Gateway.Allow(gateway.AToB, signal.IDEngineData, signal.IDWheelSpeeds,
				signal.IDVehicleMotion, signal.IDTransmission)
		}
		port := v.AttachOBD(vehicle.OBDPowertrain, "fuzzer")
		campaign, err := core.NewCampaign(sched, port, core.Config{Seed: seed},
			core.WithStopOnFinding())
		if err != nil {
			panic(err)
		}
		campaign.AddOracle(oracle.Physical("bcm-unlock", 10*time.Millisecond,
			v.BCM.Unlocked, false, "doors unlocked"))
		finding, ok := campaign.RunUntilFinding(maxDur)
		blocked := v.Gateway.Stats(gateway.AToB).Blocked
		if !ok {
			return false, 0, blocked
		}
		return true, finding.Elapsed, blocked
	}

	res.ForwardAllUnlocked, res.ForwardAllTime, _ = run(false)
	res.AllowListUnlocked, _, res.AllowListBlocked = run(true)
	return res
}

// FDTransferResult compares moving a bulk payload over classic CAN versus
// CAN FD with bit-rate switching — the quantitative side of the paper's
// §VII FD future-work item.
type FDTransferResult struct {
	// PayloadBytes is the transferred volume.
	PayloadBytes int
	// ClassicTime is the wire time split across 8-byte classic frames at
	// 500 kb/s.
	ClassicTime time.Duration
	// FDTime is the wire time over 64-byte BRS FD frames at 500 kb/s
	// arbitration / 2 Mb/s data rate.
	FDTime time.Duration
	// Speedup is ClassicTime / FDTime.
	Speedup float64
}

// AblationCANFD computes the FD bulk-transfer advantage for a payload
// volume (rounded up to whole frames).
func AblationCANFD(payloadBytes int) FDTransferResult {
	res := FDTransferResult{PayloadBytes: payloadBytes}
	chunk := make([]byte, can.MaxDataLen)
	for i := range chunk {
		chunk[i] = byte(i * 37) // representative mixed content
	}
	classicFrames := (payloadBytes + can.MaxDataLen - 1) / can.MaxDataLen
	f := can.MustNew(0x100, chunk)
	perClassic := time.Duration(can.WireBitsWithIFS(f)) * time.Second / 500_000
	res.ClassicTime = time.Duration(classicFrames) * perClassic

	fdChunk := make([]byte, can.MaxFDDataLen)
	copy(fdChunk, chunk)
	fdFrames := (payloadBytes + can.MaxFDDataLen - 1) / can.MaxFDDataLen
	fd := can.MustNewFD(0x100, fdChunk, true)
	perFD := can.FDWireTime(fd, 500_000, 2_000_000)
	res.FDTime = time.Duration(fdFrames) * perFD

	if res.FDTime > 0 {
		res.Speedup = float64(res.ClassicTime) / float64(res.FDTime)
	}
	return res
}

// DataLinkResult summarises a bit-level fuzzing run against a victim node.
type DataLinkResult struct {
	// Injected counts corrupted sequences transmitted.
	Injected uint64
	// ErrorFrames counts protocol violations signalled on the bus.
	ErrorFrames uint64
	// StillValid counts flipped sequences that survived decoding.
	StillValid uint64
	// VictimErrorPassive reports whether the victim left error-active.
	VictimErrorPassive bool
	// VictimREC is the victim's final receive error counter.
	VictimREC int
}

// AblationDataLinkFuzz runs the §VII bit-level fuzz for dur against a
// single victim node, with the attacker resetting its own controller (as
// malicious hardware does).
func AblationDataLinkFuzz(seed int64, dur time.Duration) DataLinkResult {
	sched := clock.New()
	b := bus.New(sched)
	victim := b.Connect("victim")
	victim.SetReceiver(func(bus.Message) {})
	port := b.Connect("bitfuzzer")
	bf := core.NewBitFuzzer(sched, port, core.BitFuzzConfig{Seed: seed})
	bf.Start()
	reset := sched.Every(25*time.Millisecond, port.ResetErrors)
	sched.RunUntil(sched.Now() + dur)
	bf.Stop()
	reset.Stop()

	st := bf.Stats()
	_, rec := victim.ErrorCounters()
	return DataLinkResult{
		Injected:           st.Injected,
		ErrorFrames:        st.ErrorFrames,
		StillValid:         st.Delivered,
		VictimErrorPassive: victim.State() != bus.ErrorActive,
		VictimREC:          rec,
	}
}

// IDSResult summarises the intrusion-detection ablation.
type IDSResult struct {
	// FalsePositives counts alerts during a long fuzz-free window.
	FalsePositives int
	// DetectionLatency is how long after the fuzzer started the IDS armed
	// its intrusion state.
	DetectionLatency time.Duration
	// FramesBeforeDetection counts fuzz frames sent before detection.
	FramesBeforeDetection uint64
	// KnownIDs is the identifier population learned in training.
	KnownIDs int
}

// AblationIDS measures a frequency-anomaly intrusion detector on the
// vehicle's body bus: zero false positives over a quiet minute, then
// detection latency once blind fuzzing starts — the defender's side of the
// §VII protection-measures question.
func AblationIDS(seed int64) IDSResult {
	sched := clock.New()
	v := vehicle.New(sched, vehicle.Config{Seed: seed})
	det := ids.New(sched, ids.Config{})
	v.TapOBD(vehicle.OBDBody, det.Observe)

	// Quiet period: training plus a fuzz-free observation minute.
	sched.RunUntil(66 * time.Second)
	res := IDSResult{
		FalsePositives: len(det.Alerts()),
		KnownIDs:       det.KnownIDs(),
	}

	campaign, err := core.NewCampaign(sched, v.AttachOBD(vehicle.OBDBody, "fuzzer"),
		core.Config{Seed: seed})
	if err != nil {
		panic(err)
	}
	start := sched.Now()
	campaign.Start()
	deadline := start + time.Minute
	for sched.Now() < deadline && !det.IntrusionDetected() {
		sched.RunFor(time.Millisecond)
	}
	campaign.Stop()
	if det.IntrusionDetected() {
		res.DetectionLatency = sched.Now() - start
		res.FramesBeforeDetection = campaign.FramesSent()
	}
	return res
}

// AuthResult compares the blind fuzz against the plain and MAC-hardened
// command parsers.
type AuthResult struct {
	// PlainUnlocked reports whether the fuzzer opened the unhardened BCM.
	PlainUnlocked bool
	// PlainTime is the time to unlock the unhardened BCM.
	PlainTime time.Duration
	// AuthUnlocked reports whether the fuzzer opened the MAC-checking BCM
	// within the budget (expected false: one MAC byte multiplies the
	// blind space to ~10^9 frames per expected hit).
	AuthUnlocked bool
	// AuthFramesTried counts fuzz frames sent against the hardened BCM.
	AuthFramesTried uint64
	// LegitWorks reports whether the paired app still unlocks the hardened
	// BCM (it must: security that breaks the feature is no security).
	LegitWorks bool
}

// AblationAuthentication quantifies the §VII "additions to ECU software to
// mitigate cyber attacks": a truncated-MAC command check. budget bounds
// the fuzzing time against the hardened variant.
func AblationAuthentication(seed int64, budget time.Duration) AuthResult {
	var res AuthResult

	plain, err := testbench.NewUnlockExperiment(
		testbench.Config{Check: bcm.CheckByteOnly}, core.Config{Seed: seed})
	if err != nil {
		panic(err)
	}
	res.PlainTime, res.PlainUnlocked = plain.Run(12 * time.Hour)

	hardened, err := testbench.NewUnlockExperiment(
		testbench.Config{Check: bcm.CheckAuthenticated}, core.Config{Seed: seed})
	if err != nil {
		panic(err)
	}
	_, res.AuthUnlocked = hardened.Run(budget)
	res.AuthFramesTried = hardened.Campaign.FramesSent()

	// The legitimate path must still work when the head unit stamps MACs.
	sched := clock.New()
	bench := testbench.New(sched, testbench.Config{Check: bcm.CheckAuthenticated})
	bench.HeadUnit.SetAuthenticate(true)
	if err := bench.HeadUnit.AppUnlock(testbench.AppToken); err == nil {
		sched.RunFor(100 * time.Millisecond)
		res.LegitWorks = bench.BCM.Unlocked()
	}
	return res
}
