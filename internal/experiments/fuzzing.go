package experiments

import (
	"time"

	"repro/internal/analysis"
	"repro/internal/bcm"
	"repro/internal/bus"
	"repro/internal/capture"
	"repro/internal/clock"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/ecu"
	"repro/internal/fleet"
	"repro/internal/oracle"
	"repro/internal/testbench"
)

// Table4 transmits rows random frames onto an otherwise idle bus and
// returns the capture — the paper's "Sample random CAN packet output from
// the fuzzer" with its millisecond-spaced timestamps and varied lengths.
func Table4(seed int64, rows int) []capture.Record {
	sched := clock.New()
	b := bus.New(sched)
	rec := capture.NewRecorder(b, rows)
	port := b.Connect("fuzzer")
	campaign, err := core.NewCampaign(sched, port, core.Config{Seed: seed},
		core.WithMaxFrames(uint64(rows)))
	if err != nil {
		panic(err) // static configuration cannot fail
	}
	campaign.RunFor(time.Duration(rows+10) * time.Millisecond)
	return rec.Trace().Records()
}

// Fig9Result is the component-damage experiment outcome.
type Fig9Result struct {
	// TimeToCrash is the fuzzing time until the crash latched.
	TimeToCrash time.Duration
	// FramesToCrash is the fuzz frame count at that point.
	FramesToCrash uint64
	// MILsDuringFuzz is the number of lamps lit when fuzzing stopped.
	MILsDuringFuzz int
	// ChimesDuringFuzz is the warning-sound count.
	ChimesDuringFuzz uint64
	// MILsAfterPowerCycle is the lamp count after cycling power (paper: 0).
	MILsAfterPowerCycle int
	// CrashAfterPowerCycle reports whether the crash display persisted
	// (paper: true — "the crash message would not clear").
	CrashAfterPowerCycle bool
	// CrashAfterServiceFix reports the flag state after the secured UDS
	// write a service tool would perform (extension: false).
	CrashAfterServiceFix bool
}

// Figure9 reproduces the bench fuzz of the real instrument cluster: MILs
// and chimes appear, the crash state latches, a power cycle clears the
// MILs but not the crash. maxDur bounds the hunt.
func Figure9(seed int64, maxDur time.Duration) (Fig9Result, bool) {
	sched := clock.New()
	b := bus.New(sched)
	clusterECU := ecu.New("cluster", sched, b.Connect("cluster"))
	c := cluster.New(clusterECU)

	port := b.Connect("fuzzer")
	campaign, err := core.NewCampaign(sched, port, core.Config{Seed: seed},
		core.WithStopOnFinding())
	if err != nil {
		panic(err)
	}
	campaign.AddOracle(&oracle.Probe{
		OracleName: "cluster-crash",
		Interval:   10 * time.Millisecond,
		Once:       true,
		Check: func() string {
			if c.Crashed() {
				return "persistent CRASH display latched"
			}
			return ""
		},
	})
	finding, ok := campaign.RunUntilFinding(maxDur)
	if !ok {
		return Fig9Result{}, false
	}
	res := Fig9Result{
		TimeToCrash:      finding.Elapsed,
		FramesToCrash:    finding.FramesSent,
		MILsDuringFuzz:   len(clusterECU.MILs()),
		ChimesDuringFuzz: clusterECU.Chimes(),
	}
	// "Cycling the power to the cluster removes any MILs that became
	// illuminated. Unfortunately the crash message would not clear."
	clusterECU.PowerCycle()
	sched.RunFor(time.Second)
	res.MILsAfterPowerCycle = len(clusterECU.MILs())
	res.CrashAfterPowerCycle = c.Crashed()

	// Extension: the secured service-tool write clears it.
	entry := c.DIDEntries()[cluster.DIDCrashFlag]
	if err := entry.Write([]byte{0}); err != nil {
		return res, true
	}
	res.CrashAfterServiceFix = c.Crashed()
	return res, true
}

// Table5Row is one row of Table V: repeated unlock runs under one parser
// variant.
type Table5Row struct {
	// Message is the paper's row label (the BCM check description).
	Message string
	// Check is the parser variant.
	Check bcm.CheckMode
	// Stats holds the run durations and summary statistics.
	Stats analysis.RunStats
	// TimedOut counts runs that hit the per-run deadline (excluded from
	// Stats).
	TimedOut int
}

// Table5 runs the unlock experiment `runs` times per parser variant with
// seeds baseSeed+i and returns one row per variant, reproducing Table V's
// two rows (plus optionally the predicted two-byte variant via
// AblationOracleStrictness). maxPerRun bounds each run.
func Table5(baseSeed int64, runs int, maxPerRun time.Duration) []Table5Row {
	variants := []bcm.CheckMode{bcm.CheckByteOnly, bcm.CheckByteAndLength}
	rows := make([]Table5Row, 0, len(variants))
	for _, check := range variants {
		rows = append(rows, runUnlockVariant(check, baseSeed, runs, maxPerRun))
	}
	return rows
}

// runUnlockVariant executes one Table V row over the full blind space.
func runUnlockVariant(check bcm.CheckMode, baseSeed int64, runs int, maxPerRun time.Duration) Table5Row {
	return runUnlockVariantCfg(check, runs, maxPerRun, func(i int) core.Config {
		return core.Config{Seed: baseSeed + int64(i)}
	})
}

// runUnlockVariantCfg executes one unlock-experiment row with a per-run
// fuzzer configuration. The runs execute on a fleet.Run worker pool — one
// isolated bench world per run, all cores busy — and the row is assembled
// from the fleet's index-ordered results, so the Stats are identical to
// the old sequential loop's, just produced in a fraction of the wall
// time. cfgFor fixes each run's seed, so the fleet's own derived seeds are
// intentionally unused here (Table V rows predate the splitmix stream and
// must keep their published values).
func runUnlockVariantCfg(check bcm.CheckMode, runs int, maxPerRun time.Duration, cfgFor func(i int) core.Config) Table5Row {
	row := Table5Row{Message: check.String(), Check: check}
	rep, err := fleet.Run(fleet.Config{
		Trials:      runs,
		MaxPerTrial: maxPerRun,
	}, func(spec fleet.TrialSpec) (*fleet.World, error) {
		exp, err := testbench.NewUnlockExperiment(testbench.Config{Check: check}, cfgFor(spec.Index))
		if err != nil {
			return nil, err
		}
		return &fleet.World{Sched: exp.Bench.Scheduler(), Campaign: exp.Campaign}, nil
	})
	if err != nil {
		panic(err) // static configuration cannot fail
	}
	for _, tr := range rep.Results {
		switch tr.Status {
		case fleet.StatusFinding:
			row.Stats.Times = append(row.Stats.Times, tr.TimeToFinding)
		case fleet.StatusTimeout:
			row.TimedOut++
		default:
			// A panicking or unconstructible bench is a harness bug, not a
			// Table V outcome.
			panic("experiments: unlock trial ended " + tr.Status + ": " + tr.PanicValue + tr.Err)
		}
	}
	return row
}
