package experiments

import (
	"time"

	"repro/internal/bcm"
	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/testbench"
)

// GuidedVsRandomResult compares time-to-unlock distributions for the blind
// random fuzzer (the paper's §V design) and the coverage-guided engine on
// the same Table V testbed with the same per-run seeds.
type GuidedVsRandomResult struct {
	// Check is the BCM parser variant both arms fuzzed.
	Check bcm.CheckMode
	// Random and Guided hold each arm's run statistics in Table V row form.
	Random Table5Row
	Guided Table5Row
	// MergedCorpus is the union of the guided trials' evolved corpora
	// (fleet-merged in trial-index order).
	MergedCorpus []string
	// MedianSpeedup is random median / guided median (0 when either arm has
	// no finding runs).
	MedianSpeedup float64
}

// GuidedVsRandom runs `runs` unlock experiments per arm with seeds
// baseSeed+i — the same legacy seed scheme as Table5, so the random arm's
// numbers are directly comparable to the published rows — and returns both
// distributions. The guided engine closes the feedback loop Werquin et al.
// describe; on the byte-only parser it reaches the unlock well under the
// blind fuzzer's median because one frame on the command identifier admits
// a corpus parent whose mutations keep hammering that identifier.
func GuidedVsRandom(baseSeed int64, runs int, maxPerRun time.Duration) GuidedVsRandomResult {
	const check = bcm.CheckByteOnly
	res := GuidedVsRandomResult{Check: check}
	res.Random = runUnlockVariantCfg(check, runs, maxPerRun, func(i int) core.Config {
		return core.Config{Seed: baseSeed + int64(i)}
	})
	res.Guided, res.MergedCorpus = runGuidedUnlockRow(check, runs, maxPerRun, func(i int) core.Config {
		return core.Config{Seed: baseSeed + int64(i), Mode: core.ModeGuided}
	})
	if rm, gm := res.Random.Stats.Median(), res.Guided.Stats.Median(); rm > 0 && gm > 0 {
		res.MedianSpeedup = float64(rm) / float64(gm)
	}
	return res
}

// runGuidedUnlockRow is runUnlockVariantCfg's guided twin: one
// GuidedUnlockExperiment world per trial, corpora collected and merged by
// the fleet.
func runGuidedUnlockRow(check bcm.CheckMode, runs int, maxPerRun time.Duration, cfgFor func(i int) core.Config) (Table5Row, []string) {
	row := Table5Row{Message: check.String() + " (guided)", Check: check}
	rep, err := fleet.Run(fleet.Config{
		Trials:      runs,
		MaxPerTrial: maxPerRun,
	}, func(spec fleet.TrialSpec) (*fleet.World, error) {
		exp, err := testbench.NewGuidedUnlockExperiment(testbench.Config{Check: check}, cfgFor(spec.Index))
		if err != nil {
			return nil, err
		}
		return &fleet.World{
			Sched:    exp.Bench.Scheduler(),
			Campaign: exp.Campaign,
			Corpus:   exp.Engine.CorpusFrames,
		}, nil
	})
	if err != nil {
		panic(err) // static configuration cannot fail
	}
	for _, tr := range rep.Results {
		switch tr.Status {
		case fleet.StatusFinding:
			row.Stats.Times = append(row.Stats.Times, tr.TimeToFinding)
		case fleet.StatusTimeout:
			row.TimedOut++
		default:
			panic("experiments: guided unlock trial ended " + tr.Status + ": " + tr.PanicValue + tr.Err)
		}
	}
	return row, rep.MergedCorpus
}
