package experiments

import (
	"time"

	"repro/internal/analysis"
	"repro/internal/bus"
	"repro/internal/capture"
	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/vehicle"
)

// Table2 captures sample frames from the idling simulated vehicle, like
// the paper's Table II capture from the real car. warmup discards start-up
// transients; rows bounds the sample.
func Table2(seed int64, warmup time.Duration, rows int) []capture.Record {
	sched := clock.New()
	v := vehicle.New(sched, vehicle.Config{Seed: seed})
	sched.RunUntil(warmup)

	trace := capture.NewTrace(0)
	// Sample a diverse window: one frame per distinct identifier until we
	// have the requested rows, mirroring the paper's mixed-ID excerpt.
	seen := map[uint16]bool{}
	v.TapOBD(vehicle.OBDBody, func(m bus.Message) {
		if trace.Len() >= rows || seen[uint16(m.Frame.ID)] {
			return
		}
		seen[uint16(m.Frame.ID)] = true
		trace.Append(capture.Record{Time: m.Time, Frame: m.Frame, Origin: m.Origin})
	})
	sched.RunUntil(warmup + 2*time.Second)
	return trace.Records()
}

// ByteMeansResult is the measurement behind Figs 4 and 5: the per-position
// mean byte values over a large frame sample.
type ByteMeansResult struct {
	// Frames is the number of frames accumulated.
	Frames uint64
	// Means holds the mean value per payload byte position.
	Means [8]float64
	// Overall is the mean over all sampled bytes.
	Overall float64
	// Spread is max(mean)-min(mean): large for structured vehicle traffic
	// (Fig 4), near zero for fuzzer output (Fig 5).
	Spread float64
	// ChiSquare is the chi-square uniformity statistic over byte values
	// (~255 for uniform fuzz output, orders of magnitude higher for real
	// traffic).
	ChiSquare float64
	// Entropy is the Shannon entropy of the byte distribution in bits.
	Entropy float64
	// Uniform reports the P99 chi-square uniformity verdict — the
	// quantitative version of the paper's "even spread of byte values".
	Uniform bool
}

func byteMeansResult(bm *analysis.ByteMeans, h *analysis.ByteHistogram) ByteMeansResult {
	return ByteMeansResult{
		Frames:    bm.Frames(),
		Means:     bm.Means(),
		Overall:   bm.OverallMean(),
		Spread:    bm.Spread(),
		ChiSquare: h.ChiSquare(),
		Entropy:   h.Entropy(),
		Uniform:   h.UniformP99(),
	}
}

// Figure4 captures the given number of frames from the idling vehicle's
// body bus and returns the byte-position means — the paper's non-linear
// distribution over 100,000 captured vehicle messages.
func Figure4(seed int64, frames int) ByteMeansResult {
	sched := clock.New()
	v := vehicle.New(sched, vehicle.Config{Seed: seed})
	var bm analysis.ByteMeans
	var hist analysis.ByteHistogram
	v.TapOBD(vehicle.OBDBody, func(m bus.Message) {
		if bm.Frames() < uint64(frames) {
			bm.Add(m.Frame)
			hist.Add(m.Frame)
		}
	})
	// The body bus carries ~250 frames/s; run until the sample is full.
	for bm.Frames() < uint64(frames) {
		sched.RunFor(10 * time.Second)
	}
	return byteMeansResult(&bm, &hist)
}

// Figure5 generates the given number of frames with the fuzzer and returns
// the byte-position means — the paper's flat distribution with overall
// mean 127 over 66,144 generated messages, "providing evidence that the
// fuzzer is correctly generating an even spread of byte values".
func Figure5(seed int64, frames int) ByteMeansResult {
	gen, err := core.NewGenerator(core.Config{Seed: seed})
	if err != nil {
		panic(err) // static configuration cannot fail
	}
	var bm analysis.ByteMeans
	var hist analysis.ByteHistogram
	for i := 0; i < frames; i++ {
		f := gen.Next()
		bm.Add(f)
		hist.Add(f)
	}
	return byteMeansResult(&bm, &hist)
}

// SignalsResult is the measurement behind Figs 6 and 7: decoded vehicle
// signals sampled over time, with the summary statistics that distinguish
// normal from fuzzed operation.
type SignalsResult struct {
	// Series holds the sampled signal traces.
	Series []analysis.Series
}

// Get returns the named series.
func (r SignalsResult) Get(name string) *analysis.Series {
	for i := range r.Series {
		if r.Series[i].Name == name {
			return &r.Series[i]
		}
	}
	return nil
}

// sampleVehicleSignals runs a vehicle for dur, sampling the cluster's
// displayed values every step. If fuzz is non-nil it is started after
// warmup (attached to the body bus via OBD).
func sampleVehicleSignals(seed int64, warmup, dur, step time.Duration, fuzzCfg *core.Config) SignalsResult {
	sched := clock.New()
	v := vehicle.New(sched, vehicle.Config{Seed: seed})
	sched.RunUntil(warmup)

	if fuzzCfg != nil {
		port := v.AttachOBD(vehicle.OBDBody, "fuzzer")
		campaign, err := core.NewCampaign(sched, port, *fuzzCfg)
		if err != nil {
			panic(err)
		}
		campaign.Start()
	}

	series := []analysis.Series{
		{Name: "DisplayedRPM"},
		{Name: "DisplayedSpeed"},
		{Name: "DisplayedFuel"},
		{Name: "DisplayedCoolant"},
		{Name: "EngineRPM"},
	}
	end := sched.Now() + dur
	for sched.Now() < end {
		sched.RunFor(step)
		t := sched.Now()
		series[0].Add(t, v.Cluster.DisplayedRPM())
		series[1].Add(t, v.Cluster.DisplayedSpeed())
		series[2].Add(t, v.Cluster.DisplayedFuel())
		series[3].Add(t, v.Cluster.DisplayedCoolant())
		series[4].Add(t, v.Engine.RPM())
	}
	return SignalsResult{Series: series}
}

// Figure6 samples the normal (un-fuzzed) vehicle signals: steady idle RPM,
// zero speed, slowly moving fuel and coolant.
func Figure6(seed int64, dur time.Duration) SignalsResult {
	return sampleVehicleSignals(seed, 2*time.Second, dur, 100*time.Millisecond, nil)
}

// Figure7 samples the same signals while the fuzzer injects random frames
// into the body bus — "captured over a shorter period than Figure 6" with
// the signals varying erratically. Sampling runs at 2 ms, below the 10 ms
// EngineData period, because a fuzzed needle value only survives until the
// next legitimate frame overwrites it: a slow sampler can miss every
// excursion, exactly as a slow chart recorder would on the real bench.
func Figure7(seed int64, dur time.Duration) SignalsResult {
	cfg := core.Config{Seed: seed}
	return sampleVehicleSignals(seed, 2*time.Second, dur, 2*time.Millisecond, &cfg)
}

// Fig8Result is the outcome of the invalid-value experiment.
type Fig8Result struct {
	// NegativeRPM is the first physically impossible tachometer value the
	// simulated cluster displayed.
	NegativeRPM float64
	// Elapsed is the fuzzing time until it appeared.
	Elapsed time.Duration
	// FramesSent is the fuzz frame count at that point.
	FramesSent uint64
}

// Figure8 fuzzes the vehicle's body bus until the instrument cluster
// displays a negative engine RPM, reproducing the paper's "simulated
// vehicle displaying a negative engine RPM... the vehicle simulation
// handles physically invalid values in the same way as physically
// plausible ones".
func Figure8(seed int64, maxDur time.Duration) (Fig8Result, bool) {
	sched := clock.New()
	v := vehicle.New(sched, vehicle.Config{Seed: seed})
	sched.RunUntil(time.Second)

	port := v.AttachOBD(vehicle.OBDBody, "fuzzer")
	campaign, err := core.NewCampaign(sched, port, core.Config{Seed: seed})
	if err != nil {
		panic(err)
	}
	campaign.Start()
	start := sched.Now()
	deadline := start + maxDur
	for sched.Now() < deadline {
		sched.RunFor(10 * time.Millisecond)
		if rpm := v.Cluster.DisplayedRPM(); rpm < 0 {
			campaign.Stop()
			return Fig8Result{
				NegativeRPM: rpm,
				Elapsed:     sched.Now() - start,
				FramesSent:  campaign.FramesSent(),
			}, true
		}
	}
	campaign.Stop()
	return Fig8Result{}, false
}
