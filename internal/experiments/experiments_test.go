package experiments

import (
	"strings"
	"testing"
	"time"

	"repro/internal/bcm"
	"repro/internal/can"
)

func TestFigure1ShapeFuzzingNearBottom(t *testing.T) {
	rows := Figure1()
	if len(rows) < 8 {
		t.Fatalf("only %d rows", len(rows))
	}
	var fuzz, functional float64
	for _, r := range rows {
		switch r.Method {
		case "Fuzz testing":
			fuzz = r.Share
		case "Functional testing":
			functional = r.Share
		}
	}
	if fuzz == 0 || functional == 0 {
		t.Fatal("expected methods missing")
	}
	if fuzz*5 > functional {
		t.Fatalf("fuzzing share %v not ≪ functional %v (paper's point)", fuzz, functional)
	}
}

func TestTable1MatchesPaperCatalogue(t *testing.T) {
	rows := Table1()
	if len(rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(rows))
	}
	if rows[0].Tool != "beStorm" || rows[4].Tool != "Custom software" {
		t.Fatalf("rows = %+v", rows)
	}
}

func TestTable2CapturesDistinctIDs(t *testing.T) {
	rows := Table2(1, 5*time.Second, 5)
	if len(rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(rows))
	}
	seen := map[can.ID]bool{}
	for _, r := range rows {
		if seen[r.Frame.ID] {
			t.Fatalf("duplicate id %v in sample", r.Frame.ID)
		}
		seen[r.Frame.ID] = true
		if err := r.Frame.Validate(); err != nil {
			t.Fatalf("invalid captured frame: %v", err)
		}
		if r.Time < 5*time.Second {
			t.Fatalf("record before warmup: %v", r.Time)
		}
	}
}

func TestTable3RowsAndCombinatorics(t *testing.T) {
	rows := Table3()
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	calcs := Table3Combinatorics()
	// §V: one byte = 2^19; at 1 ms over eight minutes.
	if calcs[1].Combinations != 1<<19 {
		t.Fatalf("1-byte combinations = %d", calcs[1].Combinations)
	}
	if calcs[1].AtOneMs < 8*time.Minute || calcs[1].AtOneMs > 9*time.Minute {
		t.Fatalf("1-byte exhaust = %v", calcs[1].AtOneMs)
	}
	// Two bytes ≈ 1.5 days.
	if calcs[2].AtOneMs < 36*time.Hour || calcs[2].AtOneMs > 38*time.Hour {
		t.Fatalf("2-byte exhaust = %v", calcs[2].AtOneMs)
	}
}

func TestTable4SampleOutput(t *testing.T) {
	rows := Table4(2, 6)
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(rows))
	}
	lens := map[uint8]bool{}
	for _, r := range rows {
		if err := r.Frame.Validate(); err != nil {
			t.Fatalf("invalid frame: %v", err)
		}
		lens[r.Frame.Len] = true
	}
	// Like the paper's sample, the output shows varied lengths.
	if len(lens) < 2 {
		t.Fatal("fuzzer sample shows no length variation")
	}
	// 1 ms pacing: consecutive records ~1 ms apart.
	for i := 1; i < len(rows); i++ {
		gap := rows[i].Time - rows[i-1].Time
		if gap < 900*time.Microsecond || gap > 1100*time.Microsecond {
			t.Fatalf("inter-frame gap = %v, want ~1ms", gap)
		}
	}
}

func TestTable4Deterministic(t *testing.T) {
	a, b := Table4(7, 6), Table4(7, 6)
	for i := range a {
		if !a[i].Frame.Equal(b[i].Frame) {
			t.Fatal("Table4 not deterministic")
		}
	}
}

func TestFigure4NonLinearDistribution(t *testing.T) {
	res := Figure4(1, 100000)
	if res.Frames != 100000 {
		t.Fatalf("frames = %d", res.Frames)
	}
	// The vehicle's structured traffic must show a clearly non-flat
	// per-position profile (the paper's Fig 4 spans tens of counts).
	if res.Spread < 30 {
		t.Fatalf("spread = %v, want non-linear (>30)", res.Spread)
	}
}

func TestFigure5FlatDistributionMean127(t *testing.T) {
	res := Figure5(1, 66144)
	if res.Frames != 66144 {
		t.Fatalf("frames = %d", res.Frames)
	}
	if res.Overall < 125 || res.Overall > 130 {
		t.Fatalf("overall mean = %v, want ~127 (paper)", res.Overall)
	}
	if res.Spread > 5 {
		t.Fatalf("spread = %v, want flat", res.Spread)
	}
}

func TestFigure4VsFigure5Contrast(t *testing.T) {
	veh := Figure4(3, 20000)
	fuzz := Figure5(3, 20000)
	if veh.Spread < fuzz.Spread*4 {
		t.Fatalf("vehicle spread %v not ≫ fuzzer spread %v", veh.Spread, fuzz.Spread)
	}
}

func TestFigure6NormalSignalsSteady(t *testing.T) {
	res := Figure6(1, 10*time.Second)
	rpm := res.Get("DisplayedRPM")
	if rpm == nil || len(rpm.Samples) == 0 {
		t.Fatal("no RPM series")
	}
	if rpm.Mean() < 700 || rpm.Mean() > 1000 {
		t.Fatalf("idle RPM mean = %v", rpm.Mean())
	}
	if rpm.StdDev() > 60 {
		t.Fatalf("idle RPM stddev = %v, want steady", rpm.StdDev())
	}
	speed := res.Get("DisplayedSpeed")
	if speed.Max() != 0 {
		t.Fatalf("speed max = %v at standstill", speed.Max())
	}
}

func TestFigure7FuzzedSignalsErratic(t *testing.T) {
	normal := Figure6(1, 4*time.Second)
	fuzzed := Figure7(1, 5*time.Second)
	nr := normal.Get("DisplayedRPM")
	fr := fuzzed.Get("DisplayedRPM")
	if fr.StdDev() < nr.StdDev()*5 {
		t.Fatalf("fuzzed stddev %v not ≫ normal %v", fr.StdDev(), nr.StdDev())
	}
	if fr.MaxStep() < 500 {
		t.Fatalf("fuzzed max step = %v, want rapid variation", fr.MaxStep())
	}
}

func TestFigure8NegativeRPM(t *testing.T) {
	res, ok := Figure8(1, 10*time.Minute)
	if !ok {
		t.Fatal("no negative RPM within deadline")
	}
	if res.NegativeRPM >= 0 {
		t.Fatalf("NegativeRPM = %v", res.NegativeRPM)
	}
	if res.FramesSent == 0 {
		t.Fatal("frames not counted")
	}
}

func TestFigure9CrashPersistsAcrossPowerCycle(t *testing.T) {
	res, ok := Figure9(1, time.Hour)
	if !ok {
		t.Fatal("cluster never crashed within deadline")
	}
	if res.MILsDuringFuzz == 0 {
		t.Fatal("no MILs during fuzzing (paper: immediate MIL illumination)")
	}
	if res.ChimesDuringFuzz == 0 {
		t.Fatal("no warning sounds during fuzzing")
	}
	if res.MILsAfterPowerCycle != 0 {
		t.Fatal("MILs survived power cycle (paper: they clear)")
	}
	if !res.CrashAfterPowerCycle {
		t.Fatal("crash cleared by power cycle (paper: it persists)")
	}
	if res.CrashAfterServiceFix {
		t.Fatal("service fix did not clear the crash flag")
	}
}

func TestTable5ShapeLengthCheckSlower(t *testing.T) {
	// 3 runs per variant keeps the test quick; the bench runs the full 12.
	rows := Table5(100, 3, 6*time.Hour)
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	loose, strict := rows[0], rows[1]
	if loose.Check != bcm.CheckByteOnly || strict.Check != bcm.CheckByteAndLength {
		t.Fatalf("variant order wrong")
	}
	if loose.TimedOut > 0 || strict.TimedOut > 0 {
		t.Fatalf("timeouts: %d/%d", loose.TimedOut, strict.TimedOut)
	}
	if strict.Stats.Mean() <= loose.Stats.Mean() {
		t.Fatalf("strict mean %v not > loose mean %v (Table V shape)",
			strict.Stats.Mean(), loose.Stats.Mean())
	}
}

func TestAblationTargetedVsBlind(t *testing.T) {
	res := AblationTargetedVsBlind(200, 2, 6*time.Hour)
	if len(res.Blind.Times) != 2 || len(res.Targeted.Times) != 2 {
		t.Fatalf("missing runs: %d blind, %d targeted", len(res.Blind.Times), len(res.Targeted.Times))
	}
	if res.SpeedupMean < 10 {
		t.Fatalf("speedup = %v, want ≫ 1 from 2048x smaller space", res.SpeedupMean)
	}
}

func TestAblationGateway(t *testing.T) {
	res := AblationGateway(5, 30*time.Minute)
	if !res.ForwardAllUnlocked {
		t.Fatal("legacy gateway did not let the attack through")
	}
	if res.AllowListUnlocked {
		t.Fatal("allow-list gateway failed to stop the attack")
	}
	if res.AllowListBlocked == 0 {
		t.Fatal("allow-list gateway blocked nothing")
	}
}

func TestAblationPacing(t *testing.T) {
	intervals := []time.Duration{time.Millisecond, 2 * time.Millisecond}
	res := AblationPacing(3, intervals, 12*time.Hour)
	if len(res) != 2 {
		t.Fatalf("results = %d", len(res))
	}
	if res[0].TimeToUnlock == 0 || res[1].TimeToUnlock == 0 {
		t.Fatal("runs timed out")
	}
	// Same seed => same frame sequence => same frame count to unlock; the
	// slower pacing takes proportionally longer wall-clock.
	if res[0].FramesSent != res[1].FramesSent {
		t.Fatalf("frame counts differ: %d vs %d", res[0].FramesSent, res[1].FramesSent)
	}
	ratio := float64(res[1].TimeToUnlock) / float64(res[0].TimeToUnlock)
	if ratio < 1.9 || ratio > 2.1 {
		t.Fatalf("time ratio = %v, want ~2", ratio)
	}
	if res[0].BusLoad <= res[1].BusLoad {
		t.Fatalf("bus load should fall with slower pacing: %v vs %v", res[0].BusLoad, res[1].BusLoad)
	}
}

func TestAblationOracleStrictnessOrdering(t *testing.T) {
	rows := AblationOracleStrictness(300, 2, time.Hour)
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.TimedOut > 0 {
			t.Fatalf("variant %q timed out %d times", r.Message, r.TimedOut)
		}
	}
	a, b, c := rows[0].Stats.Mean(), rows[1].Stats.Mean(), rows[2].Stats.Mean()
	if !(a < b && b < c) {
		t.Fatalf("means not strictly increasing with strictness: %v, %v, %v", a, b, c)
	}
	// The paper: the two-byte check's increase is "even greater" than the
	// length check's.
	if float64(c)/float64(b) < 5 {
		t.Fatalf("two-byte variant %v not ≫ length variant %v", c, b)
	}
}

func TestAblationAuthentication(t *testing.T) {
	res := AblationAuthentication(9, 30*time.Minute)
	if !res.PlainUnlocked {
		t.Fatal("fuzzer failed to open the unhardened BCM")
	}
	if res.AuthUnlocked {
		t.Fatal("fuzzer opened the MAC-hardened BCM within a 30-minute budget")
	}
	if res.AuthFramesTried < 1_000_000 {
		t.Fatalf("only %d frames tried against the hardened BCM", res.AuthFramesTried)
	}
	if !res.LegitWorks {
		t.Fatal("hardening broke the legitimate app unlock")
	}
}

func TestAblationCANFD(t *testing.T) {
	res := AblationCANFD(512)
	if res.ClassicTime <= res.FDTime {
		t.Fatalf("FD not faster: classic %v vs fd %v", res.ClassicTime, res.FDTime)
	}
	if res.Speedup < 2 {
		t.Fatalf("speedup = %v, want >= 2 for bulk payloads at 4x data rate", res.Speedup)
	}
}

func TestAblationDataLinkFuzz(t *testing.T) {
	res := AblationDataLinkFuzz(4, 2*time.Second)
	if res.Injected < 1000 {
		t.Fatalf("injected = %d", res.Injected)
	}
	if res.ErrorFrames < res.Injected*9/10 {
		t.Fatalf("error frames %d of %d injected; single-bit flips should almost always violate the protocol", res.ErrorFrames, res.Injected)
	}
	if !res.VictimErrorPassive {
		t.Fatalf("victim still error-active (REC %d)", res.VictimREC)
	}
}

func TestFigure5PassesUniformityCheck(t *testing.T) {
	res := Figure5(11, 66144)
	if !res.Uniform {
		t.Fatalf("fuzzer output failed chi-square uniformity: chi=%v", res.ChiSquare)
	}
	if res.Entropy < 7.99 {
		t.Fatalf("fuzzer output entropy = %v, want ~8 bits", res.Entropy)
	}
}

func TestFigure4FailsUniformityCheck(t *testing.T) {
	res := Figure4(11, 20000)
	if res.Uniform {
		t.Fatal("structured vehicle traffic passed the uniformity check")
	}
	if res.Entropy > 6 {
		t.Fatalf("vehicle traffic entropy = %v, implausibly high", res.Entropy)
	}
}

func TestAblationIDS(t *testing.T) {
	res := AblationIDS(6)
	if res.FalsePositives != 0 {
		t.Fatalf("IDS false positives on quiet traffic: %d", res.FalsePositives)
	}
	if res.KnownIDs < 8 {
		t.Fatalf("IDS learned only %d identifiers", res.KnownIDs)
	}
	if res.DetectionLatency == 0 {
		t.Fatal("IDS never detected the fuzzing")
	}
	if res.DetectionLatency > 100*time.Millisecond {
		t.Fatalf("detection latency = %v, want < 100ms", res.DetectionLatency)
	}
}

func TestGuidedVsRandomPinnedSeeds(t *testing.T) {
	// Pinned seeds 100..105: random (blind §V fuzzer) vs the guided engine
	// on the byte-only Table V parser. EXPERIMENTS.md records the full
	// distributions; the acceptance bar here is the issue's: guided median
	// strictly below random's.
	res := GuidedVsRandom(100, 6, 2*time.Hour)
	if res.Random.TimedOut > 0 || res.Guided.TimedOut > 0 {
		t.Fatalf("timeouts: random %d, guided %d", res.Random.TimedOut, res.Guided.TimedOut)
	}
	rm, gm := res.Random.Stats.Median(), res.Guided.Stats.Median()
	if gm >= rm {
		t.Fatalf("guided median %v not below random median %v", gm, rm)
	}
	if res.MedianSpeedup <= 1 {
		t.Fatalf("speedup = %v, want > 1", res.MedianSpeedup)
	}
	if len(res.MergedCorpus) == 0 {
		t.Fatal("guided fleet merged no corpus")
	}
	// The corpus must be dominated by command-identifier parents — the
	// feedback loop's whole point.
	onCmd := 0
	for _, line := range res.MergedCorpus {
		if strings.HasPrefix(line, "215#") {
			onCmd++
		}
	}
	if onCmd == 0 {
		t.Fatalf("no corpus entries on the command identifier: %v", res.MergedCorpus)
	}
}
