// Package bcm models the Body Control Module: the ECU that owns the
// central-locking actuator in the paper's bench-top experiment (Figs
// 11-12). An LED on the bench showed the lock state (off = locked,
// on = unlocked); here the LED is the Unlocked() accessor plus an optional
// callback.
//
// The command-parser strictness is configurable because it is exactly the
// variable of the paper's Table V experiment: the original firmware checked
// only "a specific byte value in byte position one in a message with a
// specific id"; adding a data-length check multiplied the fuzzer's
// time-to-unlock by ~4.5x, and the paper predicts a two-byte check would
// increase it further.
package bcm

import (
	"time"

	"repro/internal/bus"
	"repro/internal/ecu"
	"repro/internal/signal"
)

// CheckMode selects how strictly the BCM validates IDBodyCommand frames,
// reproducing the code change studied in Table V.
type CheckMode int

const (
	// CheckByteOnly accepts any frame on the command identifier whose first
	// byte is the command code (the paper's original firmware).
	CheckByteOnly CheckMode = iota + 1
	// CheckByteAndLength additionally requires the exact 7-byte DLC (the
	// paper's hardened variant: mean time-to-unlock grew from 431 s to
	// 1959 s).
	CheckByteAndLength
	// CheckTwoBytes additionally requires the source byte to match (the
	// paper: "If the change had been to check for a two byte value the time
	// increase would have been even greater").
	CheckTwoBytes
	// CheckAuthenticated requires the exact DLC and a valid truncated MAC
	// in the last payload byte (signal.CommandAuthCode) — the
	// "additions to ECU software to mitigate cyber attacks" of §VII.
	CheckAuthenticated
)

// String returns the mode name.
func (m CheckMode) String() string {
	switch m {
	case CheckByteOnly:
		return "single id and byte"
	case CheckByteAndLength:
		return "single id, byte plus data length"
	case CheckTwoBytes:
		return "single id, two bytes plus data length"
	case CheckAuthenticated:
		return "single id plus truncated MAC"
	default:
		return "unknown"
	}
}

// commandLen is the nominal BodyCommand DLC.
const commandLen = 7

// sourceByte is the expected second payload byte (0x5F, the 95 decimal of
// the paper's PC app).
const sourceByte = 0x5F

// Config tunes the BCM.
type Config struct {
	// Check selects the command-parser strictness (default CheckByteOnly).
	Check CheckMode
	// AckUnlock enables the unlock-acknowledgement broadcast added to the
	// paper's testbench so the fuzzer could detect success.
	AckUnlock bool
	// StartUnlocked sets the initial lock state (default: locked).
	StartUnlocked bool
}

// BCM is the body-control application.
type BCM struct {
	ecu *ecu.ECU
	db  *signal.Database
	cfg Config

	unlocked bool
	alive    uint8
	ackSeq   uint8
	unlocks  uint64
	locks    uint64
	onChange func(unlocked bool)

	// cmdFrames counts every frame seen on the command identifier;
	// nearMisses counts frames carrying a valid command byte that failed the
	// configured strictness check. Both are feedback signals for guided
	// fuzzing: a near-miss means the fuzzer is one constraint away from the
	// Table V unlock.
	cmdFrames  uint64
	nearMisses uint64
}

// New builds the BCM application on an ECU runtime.
func New(e *ecu.ECU, cfg Config) *BCM {
	if cfg.Check == 0 {
		cfg.Check = CheckByteOnly
	}
	b := &BCM{ecu: e, db: signal.VehicleDB(), cfg: cfg, unlocked: cfg.StartUnlocked}
	e.Handle(signal.IDBodyCommand, b.onCommand)
	e.Periodic(100*time.Millisecond, b.broadcastStatus)
	return b
}

// ECU exposes the underlying runtime.
func (b *BCM) ECU() *ecu.ECU { return b.ecu }

// Reset returns the application state to its as-constructed form for
// world reuse: lock state back to the configured start, liveness and
// acknowledgement sequence numbers rewound, transition and feedback
// counters zeroed. The OnChange callback and the underlying ECU runtime
// (reset separately via ECU().Reset, which re-arms the status broadcast)
// are retained.
func (b *BCM) Reset() {
	b.unlocked = b.cfg.StartUnlocked
	b.alive = 0
	b.ackSeq = 0
	b.unlocks = 0
	b.locks = 0
	b.cmdFrames = 0
	b.nearMisses = 0
}

// Unlocked reports the lock state (true = unlocked = bench LED on).
func (b *BCM) Unlocked() bool { return b.unlocked }

// Counters returns how many unlock and lock transitions have occurred.
func (b *BCM) Counters() (unlocks, locks uint64) { return b.unlocks, b.locks }

// CommandStats returns how many frames arrived on the command identifier
// and how many were near-misses (valid command byte, failed strictness
// check) — the guided fuzzer's gradient toward the unlock.
func (b *BCM) CommandStats() (cmdFrames, nearMisses uint64) {
	return b.cmdFrames, b.nearMisses
}

// OnChange registers a callback fired on every lock-state transition (the
// bench observer watching the LED).
func (b *BCM) OnChange(fn func(unlocked bool)) { b.onChange = fn }

// acceptFrame reports whether the frame is a valid command under the
// configured check mode, and returns the command byte.
func (b *BCM) acceptFrame(m bus.Message) (byte, bool) {
	f := m.Frame
	b.cmdFrames++
	if f.Remote || f.Len < 1 {
		return 0, false
	}
	cmd := f.Data[0]
	if cmd != signal.CmdLock && cmd != signal.CmdUnlock {
		return 0, false
	}
	switch b.cfg.Check {
	case CheckByteAndLength:
		if f.Len != commandLen {
			b.nearMisses++
			return 0, false
		}
	case CheckTwoBytes:
		if f.Len != commandLen || f.Data[1] != sourceByte {
			b.nearMisses++
			return 0, false
		}
	case CheckAuthenticated:
		if f.Len != commandLen || f.Data[6] != signal.CommandAuthCode(f.Data[:6]) {
			b.nearMisses++
			return 0, false
		}
	}
	return cmd, true
}

func (b *BCM) onCommand(m bus.Message) {
	cmd, ok := b.acceptFrame(m)
	if !ok {
		return
	}
	switch cmd {
	case signal.CmdUnlock:
		if !b.unlocked {
			b.unlocked = true
			b.unlocks++
			if b.onChange != nil {
				b.onChange(true)
			}
		}
		if b.cfg.AckUnlock {
			b.sendAck()
		}
	case signal.CmdLock:
		if b.unlocked {
			b.unlocked = false
			b.locks++
			if b.onChange != nil {
				b.onChange(false)
			}
		}
	}
}

// sendAck broadcasts the unlock acknowledgement the augmented testbench
// used as its fuzzing oracle.
func (b *BCM) sendAck() {
	b.ackSeq++
	def, ok := b.db.ByID(signal.IDUnlockAck)
	if !ok {
		return
	}
	f, err := def.Encode(map[string]float64{
		"AckCode": float64(signal.UnlockAckCode),
		"AckSeq":  float64(b.ackSeq),
	})
	if err != nil {
		return
	}
	_ = b.ecu.Send(f)
}

// broadcastStatus emits the periodic BodyStatus message.
func (b *BCM) broadcastStatus() {
	b.alive++
	def, ok := b.db.ByID(signal.IDBodyStatus)
	if !ok {
		return
	}
	locked := 1.0
	if b.unlocked {
		locked = 0
	}
	f, err := def.Encode(map[string]float64{
		"DoorsLocked": locked,
		"BodyAlive":   float64(b.alive),
	})
	if err != nil {
		return
	}
	_ = b.ecu.Send(f)
}
