package bcm

import (
	"testing"
	"time"

	"repro/internal/bus"
	"repro/internal/can"
	"repro/internal/clock"
	"repro/internal/ecu"
	"repro/internal/signal"
)

func rig(t *testing.T, cfg Config) (*clock.Scheduler, *BCM, *bus.Port) {
	t.Helper()
	s := clock.New()
	b := bus.New(s)
	e := ecu.New("bcm", s, b.Connect("bcm"))
	m := New(e, cfg)
	peer := b.Connect("peer")
	return s, m, peer
}

// command builds a well-formed 7-byte BodyCommand frame.
func command(cmd byte) can.Frame {
	return can.MustNew(signal.IDBodyCommand, []byte{cmd, 0x5F, 0x01, 0x00, 0x00, 0x01, 0x20})
}

func TestUnlockAndLock(t *testing.T) {
	s, m, peer := rig(t, Config{})
	if m.Unlocked() {
		t.Fatal("starts unlocked")
	}
	peer.Send(command(signal.CmdUnlock))
	s.RunUntil(10 * time.Millisecond)
	if !m.Unlocked() {
		t.Fatal("unlock command ignored")
	}
	peer.Send(command(signal.CmdLock))
	s.RunUntil(20 * time.Millisecond)
	if m.Unlocked() {
		t.Fatal("lock command ignored")
	}
	u, l := m.Counters()
	if u != 1 || l != 1 {
		t.Fatalf("counters = %d,%d", u, l)
	}
}

func TestStartUnlocked(t *testing.T) {
	_, m, _ := rig(t, Config{StartUnlocked: true})
	if !m.Unlocked() {
		t.Fatal("StartUnlocked ignored")
	}
}

func TestOnChangeCallback(t *testing.T) {
	s, m, peer := rig(t, Config{})
	var events []bool
	m.OnChange(func(u bool) { events = append(events, u) })
	peer.Send(command(signal.CmdUnlock))
	peer.Send(command(signal.CmdUnlock)) // no transition
	peer.Send(command(signal.CmdLock))
	s.RunUntil(50 * time.Millisecond)
	if len(events) != 2 || events[0] != true || events[1] != false {
		t.Fatalf("events = %v", events)
	}
}

func TestUnknownCommandByteIgnored(t *testing.T) {
	s, m, peer := rig(t, Config{})
	peer.Send(can.MustNew(signal.IDBodyCommand, []byte{0x42, 0x5F, 1, 0, 0, 1, 0x20}))
	s.RunUntil(10 * time.Millisecond)
	if m.Unlocked() {
		t.Fatal("unknown command unlocked the doors")
	}
}

func TestOtherIDIgnored(t *testing.T) {
	s, m, peer := rig(t, Config{})
	peer.Send(can.MustNew(0x216, []byte{signal.CmdUnlock}))
	s.RunUntil(10 * time.Millisecond)
	if m.Unlocked() {
		t.Fatal("wrong identifier unlocked the doors")
	}
}

func TestRemoteFrameIgnored(t *testing.T) {
	s, m, peer := rig(t, Config{})
	f, _ := can.NewRemote(signal.IDBodyCommand, 7)
	peer.Send(f)
	s.RunUntil(10 * time.Millisecond)
	if m.Unlocked() {
		t.Fatal("remote frame unlocked the doors")
	}
}

func TestCheckByteOnlyAcceptsAnyLength(t *testing.T) {
	// The paper's original firmware: a short fuzz frame with the right
	// first byte unlocks.
	s, m, peer := rig(t, Config{Check: CheckByteOnly})
	peer.Send(can.MustNew(signal.IDBodyCommand, []byte{signal.CmdUnlock}))
	s.RunUntil(10 * time.Millisecond)
	if !m.Unlocked() {
		t.Fatal("byte-only check rejected 1-byte command")
	}
}

func TestCheckByteAndLengthRequiresDLC7(t *testing.T) {
	s, m, peer := rig(t, Config{Check: CheckByteAndLength})
	peer.Send(can.MustNew(signal.IDBodyCommand, []byte{signal.CmdUnlock}))
	s.RunUntil(10 * time.Millisecond)
	if m.Unlocked() {
		t.Fatal("length check accepted short frame")
	}
	peer.Send(command(signal.CmdUnlock))
	s.RunUntil(20 * time.Millisecond)
	if !m.Unlocked() {
		t.Fatal("length check rejected well-formed frame")
	}
}

func TestCheckTwoBytesRequiresSource(t *testing.T) {
	s, m, peer := rig(t, Config{Check: CheckTwoBytes})
	peer.Send(can.MustNew(signal.IDBodyCommand, []byte{signal.CmdUnlock, 0x00, 1, 0, 0, 1, 0x20}))
	s.RunUntil(10 * time.Millisecond)
	if m.Unlocked() {
		t.Fatal("two-byte check accepted wrong source byte")
	}
	peer.Send(command(signal.CmdUnlock))
	s.RunUntil(20 * time.Millisecond)
	if !m.Unlocked() {
		t.Fatal("two-byte check rejected well-formed frame")
	}
}

func TestUnlockAckBroadcast(t *testing.T) {
	s, m, peer := rig(t, Config{AckUnlock: true})
	var acks int
	peer.SetReceiver(func(msg bus.Message) {
		if msg.Frame.ID == signal.IDUnlockAck && msg.Frame.Data[0] == signal.UnlockAckCode {
			acks++
		}
	})
	peer.Send(command(signal.CmdUnlock))
	s.RunUntil(50 * time.Millisecond)
	if acks != 1 {
		t.Fatalf("acks = %d, want 1", acks)
	}
	_ = m
}

func TestNoAckWhenDisabled(t *testing.T) {
	s, _, peer := rig(t, Config{AckUnlock: false})
	var acks int
	peer.SetReceiver(func(msg bus.Message) {
		if msg.Frame.ID == signal.IDUnlockAck {
			acks++
		}
	})
	peer.Send(command(signal.CmdUnlock))
	s.RunUntil(50 * time.Millisecond)
	if acks != 0 {
		t.Fatal("ack sent despite AckUnlock=false")
	}
}

func TestBodyStatusBroadcastReflectsLockState(t *testing.T) {
	s, m, peer := rig(t, Config{})
	db := signal.VehicleDB()
	var lastLocked float64 = -1
	peer.SetReceiver(func(msg bus.Message) {
		if msg.Frame.ID == signal.IDBodyStatus {
			vals, _ := db.Decode(msg.Frame)
			lastLocked = vals["DoorsLocked"]
		}
	})
	s.RunUntil(250 * time.Millisecond)
	if lastLocked != 1 {
		t.Fatalf("DoorsLocked = %v, want 1", lastLocked)
	}
	peer.Send(command(signal.CmdUnlock))
	s.RunUntil(500 * time.Millisecond)
	if lastLocked != 0 {
		t.Fatalf("DoorsLocked = %v after unlock, want 0", lastLocked)
	}
	_ = m
}

func TestCheckModeString(t *testing.T) {
	if CheckByteOnly.String() == "" || CheckByteAndLength.String() == "" ||
		CheckTwoBytes.String() == "" || CheckMode(99).String() != "unknown" {
		t.Fatal("CheckMode.String broken")
	}
}

func TestCheckAuthenticatedRejectsBadMAC(t *testing.T) {
	s, m, peer := rig(t, Config{Check: CheckAuthenticated})
	// Well-formed command with the constant (wrong) trailer byte.
	peer.Send(command(signal.CmdUnlock))
	s.RunUntil(10 * time.Millisecond)
	if m.Unlocked() {
		t.Fatal("bad MAC accepted")
	}
	// Correctly authenticated command.
	payload := []byte{signal.CmdUnlock, 0x5F, 1, 0, 0, 1, 0}
	signal.AuthenticateCommand(payload)
	peer.Send(can.MustNew(signal.IDBodyCommand, payload))
	s.RunUntil(20 * time.Millisecond)
	if !m.Unlocked() {
		t.Fatal("valid MAC rejected")
	}
}

func TestCheckAuthenticatedRequiresFullLength(t *testing.T) {
	s, m, peer := rig(t, Config{Check: CheckAuthenticated})
	peer.Send(can.MustNew(signal.IDBodyCommand, []byte{signal.CmdUnlock}))
	s.RunUntil(10 * time.Millisecond)
	if m.Unlocked() {
		t.Fatal("short frame accepted by authenticated parser")
	}
}

func TestAuthenticatedCommandIsReplayable(t *testing.T) {
	// The truncated MAC covers no freshness counter, so a recorded
	// authenticated unlock replays successfully — the gap the paper's CAN
	// authentication reference [24] is about.
	s, m, peer := rig(t, Config{Check: CheckAuthenticated})
	payload := []byte{signal.CmdUnlock, 0x5F, 1, 0, 0, 1, 0}
	signal.AuthenticateCommand(payload)
	recorded := can.MustNew(signal.IDBodyCommand, payload)
	peer.Send(recorded)
	s.RunUntil(10 * time.Millisecond)
	if !m.Unlocked() {
		t.Fatal("precondition failed")
	}
	// Re-lock, then replay the identical recorded frame.
	lock := []byte{signal.CmdLock, 0x5F, 1, 0, 0, 1, 0}
	signal.AuthenticateCommand(lock)
	peer.Send(can.MustNew(signal.IDBodyCommand, lock))
	s.RunUntil(20 * time.Millisecond)
	peer.Send(recorded) // the replay
	s.RunUntil(30 * time.Millisecond)
	if !m.Unlocked() {
		t.Fatal("replay of authenticated command rejected (MAC has no freshness; it must replay)")
	}
}
