package signal

import (
	"strings"
	"testing"
)

const sampleDBC = `VERSION ""

NS_ :
BS_:
BU_: Engine Cluster HeadUnit

BO_ 272 EngineData: 8 Engine
 SG_ EngineRPM : 0|16@1+ (0.25,0) [0|8000] "rpm" Cluster
 SG_ CoolantTemp : 24|8@1+ (1,-40) [-40|150] "degC" Cluster

BO_ 533 BodyCommand: 7 HeadUnit
 SG_ Command : 0|8@1+ (1,0) [0|255] "" BCM
 SG_ Accel : 16|8@1- (0.5,0) [-64|63.5] "m/s2" BCM
`

func TestParseDBC(t *testing.T) {
	db, err := ParseDBC(strings.NewReader(sampleDBC))
	if err != nil {
		t.Fatalf("ParseDBC: %v", err)
	}
	eng, ok := db.ByName("EngineData")
	if !ok {
		t.Fatal("EngineData missing")
	}
	if eng.ID != 272 || eng.Len != 8 || len(eng.Signals) != 2 {
		t.Fatalf("EngineData = %+v", eng)
	}
	rpm, _ := eng.Signal("EngineRPM")
	if rpm.StartBit != 0 || rpm.Bits != 16 || rpm.Scale != 0.25 || rpm.Signed {
		t.Fatalf("EngineRPM = %+v", rpm)
	}
	cool, _ := eng.Signal("CoolantTemp")
	if cool.Offset != -40 || cool.Min != -40 || cool.Max != 150 || cool.Unit != "degC" {
		t.Fatalf("CoolantTemp = %+v", cool)
	}
	cmd, ok := db.ByID(533)
	if !ok || cmd.Name != "BodyCommand" {
		t.Fatalf("BodyCommand missing: %+v", cmd)
	}
	accel, _ := cmd.Signal("Accel")
	if !accel.Signed || accel.Scale != 0.5 {
		t.Fatalf("Accel = %+v", accel)
	}
}

func TestParsedDBCEncodesDecodes(t *testing.T) {
	db, err := ParseDBC(strings.NewReader(sampleDBC))
	if err != nil {
		t.Fatal(err)
	}
	def, _ := db.ByName("EngineData")
	f, err := def.Encode(map[string]float64{"EngineRPM": 856.25, "CoolantTemp": 90})
	if err != nil {
		t.Fatal(err)
	}
	vals := def.Decode(f)
	if vals["EngineRPM"] != 856.25 || vals["CoolantTemp"] != 90 {
		t.Fatalf("vals = %v", vals)
	}
}

func TestParseDBCErrors(t *testing.T) {
	cases := map[string]string{
		"SG outside BO":     " SG_ X : 0|8@1+ (1,0) [0|1] \"\" Y\n",
		"bad id":            "BO_ zz Name: 8 S\n",
		"extended id":       "BO_ 4096 Name: 8 S\n",
		"bad dlc":           "BO_ 16 Name: 9 S\n",
		"short BO":          "BO_ 16\n",
		"big-endian signal": "BO_ 16 N: 8 S\n SG_ X : 0|8@0+ (1,0) [0|1] \"\" Y\n",
		"bad geometry":      "BO_ 16 N: 8 S\n SG_ X : eight@1+ (1,0) [0|1] \"\" Y\n",
		"bad scale":         "BO_ 16 N: 8 S\n SG_ X : 0|8@1+ (a,0) [0|1] \"\" Y\n",
		"bad range":         "BO_ 16 N: 8 S\n SG_ X : 0|8@1+ (1,0) [01] \"\" Y\n",
		"multiplexed":       "BO_ 16 N: 8 S\n SG_ X m0 : 0|8@1+ (1,0) [0|1] \"\" Y\n",
		"no messages":       "VERSION \"\"\n",
		"out of range sig":  "BO_ 16 N: 2 S\n SG_ X : 20|8@1+ (1,0) [0|1] \"\" Y\n",
		"duplicate ids":     "BO_ 16 A: 8 S\nBO_ 16 B: 8 S\n",
	}
	for name, input := range cases {
		if _, err := ParseDBC(strings.NewReader(input)); err == nil {
			t.Errorf("%s: accepted %q", name, input)
		}
	}
}

func TestParseDBCZeroScaleNormalised(t *testing.T) {
	in := "BO_ 16 N: 8 S\n SG_ X : 0|8@1+ (0,0) [0|255] \"\" Y\n"
	db, err := ParseDBC(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	def, _ := db.ByName("N")
	sig, _ := def.Signal("X")
	if sig.Scale != 1 {
		t.Fatalf("scale = %v, want normalised 1", sig.Scale)
	}
}

func TestWriteDBCRoundTrip(t *testing.T) {
	// The built-in vehicle database must round-trip through the textual
	// format (modulo templates, which DBC cannot express).
	var sb strings.Builder
	if err := WriteDBC(&sb, VehicleDB()); err != nil {
		t.Fatal(err)
	}
	back, err := ParseDBC(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, sb.String())
	}
	orig := VehicleDB()
	if len(back.Messages()) != len(orig.Messages()) {
		t.Fatalf("message count %d != %d", len(back.Messages()), len(orig.Messages()))
	}
	for _, m := range orig.Messages() {
		got, ok := back.ByID(m.ID)
		if !ok {
			t.Fatalf("message %s lost", m.Name)
		}
		if got.Name != m.Name || got.Len != m.Len || len(got.Signals) != len(m.Signals) {
			t.Fatalf("message %s changed: %+v vs %+v", m.Name, got, m)
		}
		for i, s := range m.Signals {
			g := got.Signals[i]
			if g.Name != s.Name || g.StartBit != s.StartBit || g.Bits != s.Bits ||
				g.Scale != s.Scale || g.Offset != s.Offset || g.Signed != s.Signed {
				t.Fatalf("signal %s.%s changed: %+v vs %+v", m.Name, s.Name, g, s)
			}
		}
	}
}

func FuzzParseDBC(f *testing.F) {
	f.Add(sampleDBC)
	f.Add("BO_ 16 N: 8 S\n SG_ X : 0|8@1+ (1,0) [0|255] \"\" Y\n")
	f.Add("")
	f.Fuzz(func(t *testing.T, input string) {
		db, err := ParseDBC(strings.NewReader(input))
		if err != nil {
			return
		}
		// Accepted databases must be internally consistent and round-trip.
		for _, m := range db.Messages() {
			if err := m.Validate(); err != nil {
				t.Fatalf("accepted invalid message: %v", err)
			}
		}
		var sb strings.Builder
		if err := WriteDBC(&sb, db); err != nil {
			t.Fatalf("WriteDBC: %v", err)
		}
		if _, err := ParseDBC(strings.NewReader(sb.String())); err != nil {
			t.Fatalf("own output unparseable: %v", err)
		}
	})
}
