package signal

import (
	"time"

	"repro/internal/can"
)

// Message identifiers of the simulated target vehicle. The IDs mirror the
// ones visible in the paper: Table II captures 0x43A, 0x296, 0x4B0, 0x4F2
// and 0x215 on the real car, and Fig 13 shows the body command message is
// CAN id 533 (0x215) with a 7-byte payload whose first byte is 16 (lock) or
// 32 (unlock) decimal.
const (
	IDEngineData    can.ID = 0x110
	IDVehicleMotion can.ID = 0x1A0
	IDBodyCommand   can.ID = 0x215
	IDTransmission  can.ID = 0x296
	IDBodyStatus    can.ID = 0x2A5
	IDFuel          can.ID = 0x3D0
	IDClusterGauges can.ID = 0x43A
	IDWheelSpeeds   can.ID = 0x4B0
	IDClimate       can.ID = 0x4F2
	IDUnlockAck     can.ID = 0x533
	IDDiagRequest   can.ID = 0x7DF
	IDDiagResponse  can.ID = 0x7E8
)

// Body command codes carried in byte 0 of IDBodyCommand, matching the
// decimal values shown in the paper's lock/unlock PC app (Fig 13).
const (
	CmdLock   = 0x10 // 16 decimal
	CmdUnlock = 0x20 // 32 decimal
)

// UnlockAckCode is the payload byte the augmented testbench BCM broadcasts
// in IDUnlockAck when the doors unlock (§VI: "the testbench was augmented
// to transmit an unlock acknowledgement CAN message").
const UnlockAckCode = 0xAC

// VehicleDB returns the signal database of the simulated target vehicle.
// Each call returns a fresh database; definitions are immutable by
// convention.
func VehicleDB() *Database {
	return MustNewDatabase(
		MessageDef{
			ID: IDEngineData, Name: "EngineData", Len: 8,
			Cycle: 10 * time.Millisecond,
			Signals: []Signal{
				{Name: "EngineRPM", StartBit: 0, Bits: 16, Scale: 0.25, Min: 0, Max: 8000, Unit: "rpm"},
				{Name: "ThrottlePos", StartBit: 16, Bits: 8, Scale: 0.4, Min: 0, Max: 100, Unit: "%"},
				{Name: "CoolantTemp", StartBit: 24, Bits: 8, Scale: 1, Offset: -40, Min: -40, Max: 150, Unit: "degC"},
				{Name: "EngineAlive", StartBit: 32, Bits: 4, Scale: 1, Max: 15},
				{Name: "EngineStatus", StartBit: 36, Bits: 4, Scale: 1, Max: 15},
			},
		},
		MessageDef{
			ID: IDVehicleMotion, Name: "VehicleMotion", Len: 8,
			Cycle: 20 * time.Millisecond,
			Signals: []Signal{
				{Name: "RoadSpeed", StartBit: 0, Bits: 16, Scale: 0.01, Min: 0, Max: 320, Unit: "km/h"},
				{Name: "LongAccel", StartBit: 16, Bits: 8, Scale: 0.1, Offset: -12.8, Signed: false, Min: -12.8, Max: 12.7, Unit: "m/s2"},
				{Name: "BrakePressure", StartBit: 24, Bits: 8, Scale: 1, Max: 255, Unit: "bar"},
				{Name: "MotionAlive", StartBit: 32, Bits: 8, Scale: 1, Max: 255},
			},
		},
		MessageDef{
			ID: IDBodyCommand, Name: "BodyCommand", Len: 7,
			// Event-driven; template reproduces the constant bytes of the
			// paper's PC app (source 0x5F, flag 0x01, terminator 0x20).
			Template: []byte{0x00, 0x5F, 0x01, 0x00, 0x00, 0x01, 0x20},
			Signals: []Signal{
				{Name: "Command", StartBit: 0, Bits: 8, Scale: 1, Max: 255},
				{Name: "Sequence", StartBit: 24, Bits: 8, Scale: 1, Max: 255},
			},
		},
		MessageDef{
			ID: IDTransmission, Name: "Transmission", Len: 8,
			Cycle: 50 * time.Millisecond,
			Signals: []Signal{
				{Name: "GearEngaged", StartBit: 61, Bits: 3, Scale: 1, Max: 7},
				{Name: "ConverterLock", StartBit: 60, Bits: 1, Scale: 1, Max: 1},
				{Name: "TransTemp", StartBit: 0, Bits: 8, Scale: 1, Offset: -40, Min: -40, Max: 180, Unit: "degC"},
			},
		},
		MessageDef{
			ID: IDBodyStatus, Name: "BodyStatus", Len: 8,
			Cycle: 100 * time.Millisecond,
			Signals: []Signal{
				{Name: "DoorsLocked", StartBit: 0, Bits: 1, Scale: 1, Max: 1},
				{Name: "DriverDoorAjar", StartBit: 1, Bits: 1, Scale: 1, Max: 1},
				{Name: "InteriorLight", StartBit: 2, Bits: 1, Scale: 1, Max: 1},
				{Name: "HazardsOn", StartBit: 3, Bits: 1, Scale: 1, Max: 1},
				{Name: "BodyAlive", StartBit: 8, Bits: 8, Scale: 1, Max: 255},
			},
		},
		MessageDef{
			ID: IDFuel, Name: "Fuel", Len: 4,
			Cycle: 500 * time.Millisecond,
			Signals: []Signal{
				{Name: "FuelLevel", StartBit: 0, Bits: 8, Scale: 0.5, Min: 0, Max: 100, Unit: "%"},
				{Name: "FuelFlow", StartBit: 8, Bits: 16, Scale: 0.01, Min: 0, Max: 600, Unit: "l/h"},
			},
		},
		MessageDef{
			ID: IDClusterGauges, Name: "ClusterGauges", Len: 8,
			Cycle: 100 * time.Millisecond,
			// Trailing 0xFF pad bytes as seen in the Table II capture
			// (1C 21 17 71 17 71 FF FF).
			Template: []byte{0, 0, 0, 0, 0, 0, 0xFF, 0xFF},
			Signals: []Signal{
				{Name: "TachoRPM", StartBit: 0, Bits: 16, Scale: 0.25, Min: 0, Max: 8000, Unit: "rpm"},
				{Name: "SpeedoKPH", StartBit: 16, Bits: 16, Scale: 0.01, Min: 0, Max: 320, Unit: "km/h"},
				{Name: "SpeedoMirror", StartBit: 32, Bits: 16, Scale: 0.01, Min: 0, Max: 320, Unit: "km/h"},
			},
		},
		MessageDef{
			ID: IDWheelSpeeds, Name: "WheelSpeeds", Len: 8,
			Cycle: 20 * time.Millisecond,
			Signals: []Signal{
				{Name: "WheelFL", StartBit: 0, Bits: 16, Scale: 0.01, Min: 0, Max: 320, Unit: "km/h"},
				{Name: "WheelFR", StartBit: 16, Bits: 16, Scale: 0.01, Min: 0, Max: 320, Unit: "km/h"},
				{Name: "WheelRL", StartBit: 32, Bits: 16, Scale: 0.01, Min: 0, Max: 320, Unit: "km/h"},
				{Name: "WheelRR", StartBit: 48, Bits: 16, Scale: 0.01, Min: 0, Max: 320, Unit: "km/h"},
			},
		},
		MessageDef{
			ID: IDClimate, Name: "Climate", Len: 8,
			Cycle: 200 * time.Millisecond,
			Signals: []Signal{
				{Name: "CabinTemp", StartBit: 8, Bits: 8, Scale: 0.5, Min: 0, Max: 60, Unit: "degC"},
				{Name: "BlowerPWM", StartBit: 16, Bits: 8, Scale: 1, Max: 255},
				{Name: "ACCompressor", StartBit: 0, Bits: 1, Scale: 1, Max: 1},
			},
		},
		MessageDef{
			ID: IDUnlockAck, Name: "UnlockAck", Len: 2,
			Signals: []Signal{
				{Name: "AckCode", StartBit: 0, Bits: 8, Scale: 1, Max: 255},
				{Name: "AckSeq", StartBit: 8, Bits: 8, Scale: 1, Max: 255},
			},
		},
	)
}
