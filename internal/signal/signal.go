// Package signal implements a DBC-style signal database: named, scaled
// physical values packed into CAN frame payloads.
//
// The Vector tooling the paper uses drives its vehicle simulation from such
// a database; the paper's Figures 6-8 are plots of decoded signals (engine
// RPM, road speed, gauge values). This package provides the same
// decode-whatever-arrives behaviour — which is exactly why the simulator
// "handles physically invalid values in the same way as physically
// plausible ones" (Fig 8): decoding is pure arithmetic on raw bits, with no
// plausibility checks unless a consumer applies Clamp explicitly.
package signal

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/can"
)

// Errors returned by signal packing.
var (
	ErrRange    = errors.New("signal: value outside representable range")
	ErrGeometry = errors.New("signal: bit geometry does not fit payload")
)

// Signal describes one scaled value inside a CAN payload. Bit numbering is
// Intel (little-endian): StartBit 0 is the least-significant bit of data
// byte 0, bit 8 the LSB of byte 1, and multi-bit values grow toward more
// significant bits.
type Signal struct {
	// Name identifies the signal within its message.
	Name string
	// StartBit is the little-endian position of the value's LSB.
	StartBit int
	// Bits is the width of the raw value (1..64).
	Bits int
	// Scale and Offset map raw to physical: phys = raw*Scale + Offset.
	Scale  float64
	Offset float64
	// Signed marks the raw value as two's-complement.
	Signed bool
	// Min and Max document the physical plausible range (not enforced on
	// decode; see Plausible).
	Min, Max float64
	// Unit is a display unit, e.g. "rpm", "km/h", "degC".
	Unit string
}

// validGeometry checks the signal fits inside a payload of length dlc bytes.
func (s Signal) validGeometry(dlc int) error {
	if s.Bits < 1 || s.Bits > 64 || s.StartBit < 0 || s.StartBit+s.Bits > dlc*8 {
		return fmt.Errorf("%w: %s start %d width %d in %d bytes",
			ErrGeometry, s.Name, s.StartBit, s.Bits, dlc)
	}
	return nil
}

// RawExtract pulls the unscaled raw value from data.
func (s Signal) RawExtract(data []byte) uint64 {
	var raw uint64
	for i := 0; i < s.Bits; i++ {
		bit := s.StartBit + i
		byteIdx, bitIdx := bit/8, bit%8
		if byteIdx >= len(data) {
			break // missing bytes read as zero, like a short frame on a real decoder
		}
		raw |= uint64(data[byteIdx]>>bitIdx&1) << i
	}
	return raw
}

// RawInsert writes the unscaled raw value into data in place.
func (s Signal) RawInsert(data []byte, raw uint64) error {
	if err := s.validGeometry(len(data)); err != nil {
		return err
	}
	for i := 0; i < s.Bits; i++ {
		bit := s.StartBit + i
		byteIdx, bitIdx := bit/8, bit%8
		mask := byte(1) << bitIdx
		if raw>>i&1 == 1 {
			data[byteIdx] |= mask
		} else {
			data[byteIdx] &^= mask
		}
	}
	return nil
}

// Decode converts the raw bits in data to a physical value. There is no
// range validation: garbage in, garbage out, by design (Fig 8).
func (s Signal) Decode(data []byte) float64 {
	raw := s.RawExtract(data)
	if s.Signed && s.Bits < 64 && raw&(1<<(s.Bits-1)) != 0 {
		return (float64(int64(raw)-int64(1)<<s.Bits))*s.Scale + s.Offset
	}
	if s.Signed && s.Bits == 64 {
		return float64(int64(raw))*s.Scale + s.Offset
	}
	return float64(raw)*s.Scale + s.Offset
}

// Encode writes the physical value into data, rounding to the nearest raw
// step. It returns ErrRange if the value is not representable in Bits.
func (s Signal) Encode(data []byte, value float64) error {
	if s.Scale == 0 {
		return fmt.Errorf("signal %s: zero scale", s.Name)
	}
	rawF := (value - s.Offset) / s.Scale
	var raw uint64
	if s.Signed {
		r := int64(roundHalfAway(rawF))
		lo, hi := int64(-1)<<(s.Bits-1), int64(1)<<(s.Bits-1)-1
		if s.Bits == 64 {
			lo, hi = -1<<63, 1<<63-1
		}
		if r < lo || r > hi {
			return fmt.Errorf("%w: %s = %v", ErrRange, s.Name, value)
		}
		raw = uint64(r) & maskBits(s.Bits)
	} else {
		r := roundHalfAway(rawF)
		if r < 0 || (s.Bits < 64 && uint64(r) > maskBits(s.Bits)) {
			return fmt.Errorf("%w: %s = %v", ErrRange, s.Name, value)
		}
		raw = uint64(r)
	}
	return s.RawInsert(data, raw)
}

// Plausible reports whether a decoded physical value lies within the
// documented [Min,Max] range. The instrument logic uses this to decide when
// to light a malfunction indicator.
func (s Signal) Plausible(value float64) bool {
	if s.Min == 0 && s.Max == 0 {
		return true // no documented range
	}
	return value >= s.Min && value <= s.Max
}

func maskBits(n int) uint64 {
	if n >= 64 {
		return ^uint64(0)
	}
	return 1<<n - 1
}

func roundHalfAway(f float64) float64 {
	if f >= 0 {
		return float64(int64(f + 0.5))
	}
	return float64(int64(f - 0.5))
}

// MessageDef describes one periodic CAN message and its signals.
type MessageDef struct {
	// ID is the arbitration identifier.
	ID can.ID
	// Name identifies the message ("EngineData").
	Name string
	// Len is the frame DLC.
	Len uint8
	// Cycle is the nominal broadcast period (zero for event-driven).
	Cycle time.Duration
	// Template is the initial payload before signals are encoded; it models
	// constant filler bytes (pads of 0xFF, protocol constants) that real
	// traffic carries and that shape the byte-value distribution of Fig 4.
	Template []byte
	// Signals lists the packed signals.
	Signals []Signal
}

// Signal returns the named signal definition.
func (m *MessageDef) Signal(name string) (Signal, bool) {
	for _, s := range m.Signals {
		if s.Name == name {
			return s, true
		}
	}
	return Signal{}, false
}

// Decode extracts all signals from a frame payload.
func (m *MessageDef) Decode(f can.Frame) map[string]float64 {
	out := make(map[string]float64, len(m.Signals))
	data := f.Data[:min(int(f.Len), can.MaxDataLen)]
	for _, s := range m.Signals {
		out[s.Name] = s.Decode(data)
	}
	return out
}

// Encode builds a frame from physical signal values. Signals not present in
// values encode as zero raw.
func (m *MessageDef) Encode(values map[string]float64) (can.Frame, error) {
	// Fixed-size scratch so the encode stays on the stack: a variable-length
	// make escapes, and periodic broadcasters (BCM status every 100 ms)
	// call this on the campaign hot path.
	var buf [can.MaxDataLen]byte
	data := buf[:m.Len]
	copy(data, m.Template)
	for _, s := range m.Signals {
		v, ok := values[s.Name]
		if !ok {
			continue
		}
		if err := s.Encode(data, v); err != nil {
			return can.Frame{}, fmt.Errorf("message %s: %w", m.Name, err)
		}
	}
	return can.New(m.ID, data)
}

// Validate checks every signal's geometry against the message DLC.
func (m *MessageDef) Validate() error {
	if m.Len > can.MaxDataLen {
		return fmt.Errorf("message %s: %w", m.Name, can.ErrDataLen)
	}
	if len(m.Template) > int(m.Len) {
		return fmt.Errorf("message %s: template longer than DLC", m.Name)
	}
	seen := make(map[string]bool, len(m.Signals))
	for _, s := range m.Signals {
		if seen[s.Name] {
			return fmt.Errorf("message %s: duplicate signal %s", m.Name, s.Name)
		}
		seen[s.Name] = true
		if err := s.validGeometry(int(m.Len)); err != nil {
			return fmt.Errorf("message %s: %w", m.Name, err)
		}
	}
	return nil
}

// Database is a set of message definitions keyed by identifier — the
// software analogue of a DBC file.
type Database struct {
	byID   map[can.ID]*MessageDef
	byName map[string]*MessageDef
	order  []*MessageDef
}

// NewDatabase builds a database, validating every definition.
func NewDatabase(defs ...MessageDef) (*Database, error) {
	db := &Database{
		byID:   make(map[can.ID]*MessageDef, len(defs)),
		byName: make(map[string]*MessageDef, len(defs)),
	}
	for i := range defs {
		d := defs[i]
		if err := d.Validate(); err != nil {
			return nil, err
		}
		if _, dup := db.byID[d.ID]; dup {
			return nil, fmt.Errorf("duplicate message id %s", d.ID)
		}
		if _, dup := db.byName[d.Name]; dup {
			return nil, fmt.Errorf("duplicate message name %s", d.Name)
		}
		def := &d
		db.byID[d.ID] = def
		db.byName[d.Name] = def
		db.order = append(db.order, def)
	}
	return db, nil
}

// MustNewDatabase is NewDatabase panicking on error; for static databases.
func MustNewDatabase(defs ...MessageDef) *Database {
	db, err := NewDatabase(defs...)
	if err != nil {
		panic(err)
	}
	return db
}

// ByID returns the definition for an identifier.
func (db *Database) ByID(id can.ID) (*MessageDef, bool) {
	d, ok := db.byID[id]
	return d, ok
}

// ByName returns the definition with the given message name.
func (db *Database) ByName(name string) (*MessageDef, bool) {
	d, ok := db.byName[name]
	return d, ok
}

// Messages returns all definitions in registration order. The slice is a
// copy; the definitions are shared.
func (db *Database) Messages() []*MessageDef {
	out := make([]*MessageDef, len(db.order))
	copy(out, db.order)
	return out
}

// Decode looks up the frame's message definition and decodes its signals.
// Unknown identifiers return ok=false.
func (db *Database) Decode(f can.Frame) (map[string]float64, bool) {
	d, ok := db.byID[f.ID]
	if !ok {
		return nil, false
	}
	return d.Decode(f), true
}
