package signal

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/can"
)

func TestRawInsertExtractRoundTrip(t *testing.T) {
	s := Signal{Name: "x", StartBit: 5, Bits: 13}
	data := make([]byte, 4)
	if err := s.RawInsert(data, 0x1ABC); err != nil {
		t.Fatalf("RawInsert: %v", err)
	}
	if got := s.RawExtract(data); got != 0x1ABC {
		t.Fatalf("RawExtract = %#x, want 0x1ABC", got)
	}
}

func TestRawInsertDoesNotClobberNeighbours(t *testing.T) {
	data := []byte{0xFF, 0xFF}
	s := Signal{Name: "mid", StartBit: 4, Bits: 8}
	if err := s.RawInsert(data, 0); err != nil {
		t.Fatal(err)
	}
	if data[0] != 0x0F || data[1] != 0xF0 {
		t.Fatalf("neighbour bits clobbered: % X", data)
	}
}

func TestDecodeUnsignedScaleOffset(t *testing.T) {
	s := Signal{Name: "temp", StartBit: 0, Bits: 8, Scale: 1, Offset: -40}
	data := []byte{130}
	if got := s.Decode(data); got != 90 {
		t.Fatalf("Decode = %v, want 90", got)
	}
}

func TestDecodeSigned(t *testing.T) {
	s := Signal{Name: "accel", StartBit: 0, Bits: 8, Scale: 0.5, Signed: true}
	data := []byte{0xFF} // raw -1
	if got := s.Decode(data); got != -0.5 {
		t.Fatalf("Decode = %v, want -0.5", got)
	}
}

func TestEncodeDecodeRoundTripPhysical(t *testing.T) {
	s := Signal{Name: "rpm", StartBit: 0, Bits: 16, Scale: 0.25}
	data := make([]byte, 8)
	if err := s.Encode(data, 856.25); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	if got := s.Decode(data); got != 856.25 {
		t.Fatalf("Decode = %v, want 856.25", got)
	}
}

func TestEncodeRangeError(t *testing.T) {
	s := Signal{Name: "b", StartBit: 0, Bits: 8, Scale: 1}
	data := make([]byte, 1)
	if err := s.Encode(data, 300); !errors.Is(err, ErrRange) {
		t.Fatalf("err = %v, want ErrRange", err)
	}
	if err := s.Encode(data, -1); !errors.Is(err, ErrRange) {
		t.Fatalf("err = %v, want ErrRange", err)
	}
}

func TestEncodeSignedRange(t *testing.T) {
	s := Signal{Name: "s", StartBit: 0, Bits: 8, Scale: 1, Signed: true}
	data := make([]byte, 1)
	if err := s.Encode(data, -128); err != nil {
		t.Fatalf("Encode(-128): %v", err)
	}
	if got := s.Decode(data); got != -128 {
		t.Fatalf("Decode = %v, want -128", got)
	}
	if err := s.Encode(data, -129); !errors.Is(err, ErrRange) {
		t.Fatalf("err = %v, want ErrRange", err)
	}
	if err := s.Encode(data, 128); !errors.Is(err, ErrRange) {
		t.Fatalf("err = %v, want ErrRange", err)
	}
}

func TestEncodeGeometryError(t *testing.T) {
	s := Signal{Name: "wide", StartBit: 60, Bits: 8, Scale: 1}
	data := make([]byte, 8)
	if err := s.Encode(data, 1); !errors.Is(err, ErrGeometry) {
		t.Fatalf("err = %v, want ErrGeometry", err)
	}
}

func TestRawExtractShortFrameReadsZero(t *testing.T) {
	s := Signal{Name: "x", StartBit: 16, Bits: 16, Scale: 1}
	// Only two bytes present; signal bytes missing read as zero.
	if got := s.RawExtract([]byte{0xAA, 0xBB}); got != 0 {
		t.Fatalf("RawExtract = %#x, want 0", got)
	}
}

func TestPlausible(t *testing.T) {
	s := Signal{Name: "rpm", Min: 0, Max: 8000}
	if !s.Plausible(3000) || s.Plausible(-5) || s.Plausible(9000) {
		t.Fatal("Plausible range check wrong")
	}
	unranged := Signal{Name: "free"}
	if !unranged.Plausible(1e9) {
		t.Fatal("signal without range should always be plausible")
	}
}

func TestMessageEncodeDecode(t *testing.T) {
	db := VehicleDB()
	def, ok := db.ByName("EngineData")
	if !ok {
		t.Fatal("EngineData missing")
	}
	f, err := def.Encode(map[string]float64{
		"EngineRPM":   856,
		"ThrottlePos": 12,
		"CoolantTemp": 90,
	})
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	vals := def.Decode(f)
	if vals["EngineRPM"] != 856 {
		t.Fatalf("EngineRPM = %v", vals["EngineRPM"])
	}
	if vals["CoolantTemp"] != 90 {
		t.Fatalf("CoolantTemp = %v", vals["CoolantTemp"])
	}
}

func TestMessageTemplateApplied(t *testing.T) {
	db := VehicleDB()
	def, _ := db.ByName("ClusterGauges")
	f, err := def.Encode(map[string]float64{"TachoRPM": 1000})
	if err != nil {
		t.Fatal(err)
	}
	if f.Data[6] != 0xFF || f.Data[7] != 0xFF {
		t.Fatalf("template pad bytes missing: % X", f.Data)
	}
}

func TestBodyCommandMatchesPaperBytes(t *testing.T) {
	// Fig 13: unlock message id 533 dec = 0x215, bytes 32 95 1 0 0 1 32.
	db := VehicleDB()
	def, _ := db.ByName("BodyCommand")
	f, err := def.Encode(map[string]float64{"Command": CmdUnlock})
	if err != nil {
		t.Fatal(err)
	}
	if f.ID != 0x215 {
		t.Fatalf("ID = %v, want 0x215 (533 decimal)", f.ID)
	}
	want := []byte{32, 95, 1, 0, 0, 1, 32}
	for i, b := range want {
		if f.Data[i] != b {
			t.Fatalf("byte %d = %d, want %d (% X)", i, f.Data[i], b, f.Data[:7])
		}
	}
}

func TestDatabaseLookups(t *testing.T) {
	db := VehicleDB()
	if _, ok := db.ByID(IDEngineData); !ok {
		t.Fatal("ByID(IDEngineData) missing")
	}
	if _, ok := db.ByID(0x7AA); ok {
		t.Fatal("unexpected message for unknown id")
	}
	if _, ok := db.ByName("nope"); ok {
		t.Fatal("unexpected message for unknown name")
	}
	if n := len(db.Messages()); n < 8 {
		t.Fatalf("only %d messages in vehicle DB", n)
	}
}

func TestDatabaseDecode(t *testing.T) {
	db := VehicleDB()
	def, _ := db.ByName("Fuel")
	f, _ := def.Encode(map[string]float64{"FuelLevel": 75})
	vals, ok := db.Decode(f)
	if !ok {
		t.Fatal("Decode: unknown id")
	}
	if vals["FuelLevel"] != 75 {
		t.Fatalf("FuelLevel = %v", vals["FuelLevel"])
	}
	if _, ok := db.Decode(can.MustNew(0x7AA, nil)); ok {
		t.Fatal("Decode accepted unknown id")
	}
}

func TestNewDatabaseRejectsDuplicateID(t *testing.T) {
	_, err := NewDatabase(
		MessageDef{ID: 1, Name: "a", Len: 8},
		MessageDef{ID: 1, Name: "b", Len: 8},
	)
	if err == nil {
		t.Fatal("duplicate ID accepted")
	}
}

func TestNewDatabaseRejectsDuplicateName(t *testing.T) {
	_, err := NewDatabase(
		MessageDef{ID: 1, Name: "a", Len: 8},
		MessageDef{ID: 2, Name: "a", Len: 8},
	)
	if err == nil {
		t.Fatal("duplicate name accepted")
	}
}

func TestNewDatabaseRejectsBadGeometry(t *testing.T) {
	_, err := NewDatabase(MessageDef{
		ID: 1, Name: "a", Len: 2,
		Signals: []Signal{{Name: "x", StartBit: 10, Bits: 8}},
	})
	if !errors.Is(err, ErrGeometry) {
		t.Fatalf("err = %v, want ErrGeometry", err)
	}
}

func TestNewDatabaseRejectsDuplicateSignal(t *testing.T) {
	_, err := NewDatabase(MessageDef{
		ID: 1, Name: "a", Len: 8,
		Signals: []Signal{
			{Name: "x", StartBit: 0, Bits: 8},
			{Name: "x", StartBit: 8, Bits: 8},
		},
	})
	if err == nil {
		t.Fatal("duplicate signal accepted")
	}
}

func TestNewDatabaseRejectsLongTemplate(t *testing.T) {
	_, err := NewDatabase(MessageDef{ID: 1, Name: "a", Len: 2, Template: []byte{1, 2, 3}})
	if err == nil {
		t.Fatal("oversize template accepted")
	}
}

func TestVehicleDBValidates(t *testing.T) {
	// MustNewDatabase panics on invalid definitions; constructing is the test.
	db := VehicleDB()
	for _, m := range db.Messages() {
		if err := m.Validate(); err != nil {
			t.Fatalf("message %s: %v", m.Name, err)
		}
	}
}

func TestMessageSignalLookup(t *testing.T) {
	db := VehicleDB()
	def, _ := db.ByName("EngineData")
	if _, ok := def.Signal("EngineRPM"); !ok {
		t.Fatal("Signal lookup failed")
	}
	if _, ok := def.Signal("nope"); ok {
		t.Fatal("Signal lookup false positive")
	}
}

func TestPropertyRawRoundTrip(t *testing.T) {
	prop := func(start, width uint8, value uint64) bool {
		bits := 1 + int(width)%16
		s := Signal{
			Name:     "p",
			StartBit: int(start) % (64 - bits),
			Bits:     bits,
		}
		data := make([]byte, 8)
		raw := value & maskBits(s.Bits)
		if err := s.RawInsert(data, raw); err != nil {
			return false
		}
		return s.RawExtract(data) == raw
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyEncodeDecodeWithinQuantum(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	s := Signal{Name: "q", StartBit: 3, Bits: 12, Scale: 0.1, Offset: -50}
	data := make([]byte, 8)
	for i := 0; i < 1000; i++ {
		v := rng.Float64()*350 - 50 // representable span: -50 .. 359.5
		if err := s.Encode(data, v); err != nil {
			t.Fatalf("Encode(%v): %v", v, err)
		}
		got := s.Decode(data)
		if math.Abs(got-v) > s.Scale/2+1e-9 {
			t.Fatalf("Decode(%v) = %v, quantisation error too large", v, got)
		}
	}
}

func TestCommandAuthCodeProperties(t *testing.T) {
	base := []byte{0x20, 0x5F, 0x01, 0x00, 0x00, 0x01, 0x00}
	mac := CommandAuthCode(base)
	// Deterministic.
	if CommandAuthCode(base) != mac {
		t.Fatal("MAC not deterministic")
	}
	// Sensitive to every covered byte.
	for i := 0; i < 6; i++ {
		mod := append([]byte(nil), base...)
		mod[i] ^= 0x01
		if CommandAuthCode(mod) == mac {
			t.Fatalf("MAC insensitive to byte %d", i)
		}
	}
	// Not sensitive to the MAC byte itself.
	mod := append([]byte(nil), base...)
	mod[6] = 0xFF
	if CommandAuthCode(mod) != mac {
		t.Fatal("MAC covers its own carrier byte")
	}
}

func TestAuthenticateCommand(t *testing.T) {
	payload := []byte{0x20, 0x5F, 0x01, 0x00, 0x00, 0x01, 0x00}
	AuthenticateCommand(payload)
	if payload[6] != CommandAuthCode(payload) {
		t.Fatal("AuthenticateCommand wrote wrong MAC")
	}
	short := []byte{1, 2}
	AuthenticateCommand(short) // must not panic or write
	if short[0] != 1 || short[1] != 2 {
		t.Fatal("short payload modified")
	}
}

func TestCommandAuthCodeSpread(t *testing.T) {
	// The truncated MAC should spread over the byte range (rough check).
	seen := map[byte]bool{}
	payload := make([]byte, 7)
	for i := 0; i < 512; i++ {
		payload[0] = byte(i)
		payload[3] = byte(i >> 4)
		seen[CommandAuthCode(payload)] = true
	}
	if len(seen) < 128 {
		t.Fatalf("MAC covers only %d of 256 values over 512 inputs", len(seen))
	}
}
