package signal_test

import (
	"fmt"

	"repro/internal/signal"
)

// Example encodes and decodes an engine-data frame through the vehicle
// signal database, the same decode path the instrument cluster uses.
func Example() {
	db := signal.VehicleDB()
	def, _ := db.ByName("EngineData")

	frame, err := def.Encode(map[string]float64{
		"EngineRPM":   856.25,
		"CoolantTemp": 90,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("frame:", frame)

	vals := def.Decode(frame)
	fmt.Printf("rpm: %.2f\n", vals["EngineRPM"])
	fmt.Printf("coolant: %.0f degC\n", vals["CoolantTemp"])
	// Output:
	// frame: 0110 8 61 0D 00 82 00 00 00 00
	// rpm: 856.25
	// coolant: 90 degC
}

// ExampleSignal_Decode shows that decoding applies no plausibility checks:
// garbage bytes decode to garbage physical values, which is how the
// paper's simulator came to display a negative RPM (Fig 8).
func ExampleSignal_Decode() {
	s := signal.Signal{Name: "Temp", StartBit: 0, Bits: 8, Scale: 1, Offset: -40, Min: -40, Max: 150}
	data := []byte{0xFF} // fuzzed byte
	v := s.Decode(data)
	fmt.Printf("decoded: %.0f degC, plausible: %v\n", v, s.Plausible(v))
	// Output:
	// decoded: 215 degC, plausible: false
}
