package signal

// Message authentication for the BodyCommand — the protection measure the
// paper's discussion points at: "despite several schemes available to add
// encryption to CAN, no scheme meets all the criteria for deployment in
// series production" (§IV), and §VII asks for fuzz tests of "additions to
// ECU software to mitigate cyber attacks". This is a deliberately small
// scheme of that family: a truncated keyed checksum carried in the last
// payload byte. One byte of MAC multiplies a blind fuzzer's search space
// by 256; the full scheme's value and its limits are both visible to the
// ablation benchmarks.

// commandAuthKey is the shared secret between head unit and BCM. A real
// deployment would provision per-vehicle keys; the fixed key suffices for
// the simulation (the fuzzer does not know it either way).
var commandAuthKey = [4]byte{0x4B, 0xE3, 0x91, 0x2C}

// CommandAuthCode returns the 8-bit truncated MAC over the first six
// payload bytes of a BodyCommand frame.
func CommandAuthCode(payload []byte) byte {
	h := uint32(0x811C9DC5)
	for i := 0; i < 6; i++ {
		var b byte
		if i < len(payload) {
			b = payload[i]
		}
		h ^= uint32(b ^ commandAuthKey[i%len(commandAuthKey)])
		h *= 16777619
		h = h<<7 | h>>25
	}
	return byte(h ^ h>>8 ^ h>>16 ^ h>>24)
}

// AuthenticateCommand writes the MAC into byte 6 of a 7-byte BodyCommand
// payload in place. Short payloads are left unchanged.
func AuthenticateCommand(payload []byte) {
	if len(payload) >= 7 {
		payload[6] = CommandAuthCode(payload)
	}
}
