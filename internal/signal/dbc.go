package signal

// A parser for the subset of the Vector DBC format the fuzzing workflow
// needs. The paper's targeted-fuzzing recommendation assumes knowledge of
// the message catalogue — in industry that knowledge lives in DBC files
// consumed by the very Vector tooling the paper's bench used. Supporting
// the textual format lets a user point the fuzzer at their own database
// instead of the built-in VehicleDB.
//
// Supported lines:
//
//	BO_ <id> <name>: <dlc> <sender>
//	 SG_ <name> : <start>|<size>@1+ (<scale>,<offset>) [<min>|<max>] "<unit>" <receivers>
//
// Only little-endian unsigned/signed (@1+ / @1-) signals are accepted —
// the byte order this package implements. Other lines are ignored, like
// every DBC consumer does.

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/can"
)

// ParseDBC reads a DBC-format database from r.
func ParseDBC(r io.Reader) (*Database, error) {
	sc := bufio.NewScanner(r)
	var defs []MessageDef
	var cur *MessageDef
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "BO_ "):
			if cur != nil {
				defs = append(defs, *cur)
			}
			def, err := parseBO(line)
			if err != nil {
				return nil, fmt.Errorf("signal: dbc line %d: %w", lineNo, err)
			}
			cur = &def
		case strings.HasPrefix(line, "SG_ "):
			if cur == nil {
				return nil, fmt.Errorf("signal: dbc line %d: SG_ outside a BO_ block", lineNo)
			}
			sig, err := parseSG(line)
			if err != nil {
				return nil, fmt.Errorf("signal: dbc line %d: %w", lineNo, err)
			}
			cur.Signals = append(cur.Signals, sig)
		default:
			// Version headers, comments, attribute lines: ignored.
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("signal: dbc: %w", err)
	}
	if cur != nil {
		defs = append(defs, *cur)
	}
	if len(defs) == 0 {
		return nil, fmt.Errorf("signal: dbc: no BO_ messages found")
	}
	return NewDatabase(defs...)
}

// parseBO parses "BO_ 533 BodyCommand: 7 HeadUnit".
func parseBO(line string) (MessageDef, error) {
	var def MessageDef
	rest := strings.TrimPrefix(line, "BO_ ")
	fields := strings.Fields(rest)
	if len(fields) < 3 {
		return def, fmt.Errorf("malformed BO_: %q", line)
	}
	id64, err := strconv.ParseUint(fields[0], 10, 32)
	if err != nil {
		return def, fmt.Errorf("bad message id %q", fields[0])
	}
	if id64 > can.MaxID {
		return def, fmt.Errorf("%w: %d (extended ids unsupported)", can.ErrIDRange, id64)
	}
	name := strings.TrimSuffix(fields[1], ":")
	if name == "" {
		return def, fmt.Errorf("empty message name")
	}
	dlc, err := strconv.ParseUint(fields[2], 10, 8)
	if err != nil || dlc > can.MaxDataLen {
		return def, fmt.Errorf("bad dlc %q", fields[2])
	}
	def.ID = can.ID(id64)
	def.Name = name
	def.Len = uint8(dlc)
	return def, nil
}

// parseSG parses
// `SG_ EngineRPM : 0|16@1+ (0.25,0) [0|8000] "rpm" Cluster`.
func parseSG(line string) (Signal, error) {
	var s Signal
	rest := strings.TrimPrefix(line, "SG_ ")
	colon := strings.Index(rest, ":")
	if colon < 0 {
		return s, fmt.Errorf("malformed SG_: %q", line)
	}
	// Multiplexer indicators (m0, M) between name and colon are not
	// supported; take the first token as the name.
	nameFields := strings.Fields(rest[:colon])
	if len(nameFields) == 0 {
		return s, fmt.Errorf("empty signal name")
	}
	if len(nameFields) > 1 {
		return s, fmt.Errorf("multiplexed signal %q unsupported", nameFields[0])
	}
	s.Name = nameFields[0]

	fields := strings.Fields(rest[colon+1:])
	if len(fields) < 3 {
		return s, fmt.Errorf("malformed SG_ body: %q", line)
	}
	// fields[0] = start|size@order±
	geom := fields[0]
	at := strings.Index(geom, "@")
	pipe := strings.Index(geom, "|")
	if pipe < 0 || at < pipe {
		return s, fmt.Errorf("bad geometry %q", geom)
	}
	start, err := strconv.Atoi(geom[:pipe])
	if err != nil {
		return s, fmt.Errorf("bad start bit in %q", geom)
	}
	size, err := strconv.Atoi(geom[pipe+1 : at])
	if err != nil {
		return s, fmt.Errorf("bad size in %q", geom)
	}
	tail := geom[at+1:]
	if len(tail) != 2 || tail[0] != '1' {
		return s, fmt.Errorf("only little-endian (@1) signals supported, got %q", geom)
	}
	switch tail[1] {
	case '+':
	case '-':
		s.Signed = true
	default:
		return s, fmt.Errorf("bad sign marker in %q", geom)
	}
	s.StartBit = start
	s.Bits = size

	// fields[1] = (scale,offset)
	so := strings.Trim(fields[1], "()")
	parts := strings.SplitN(so, ",", 2)
	if len(parts) != 2 {
		return s, fmt.Errorf("bad scale/offset %q", fields[1])
	}
	if s.Scale, err = strconv.ParseFloat(parts[0], 64); err != nil {
		return s, fmt.Errorf("bad scale %q", parts[0])
	}
	if s.Offset, err = strconv.ParseFloat(parts[1], 64); err != nil {
		return s, fmt.Errorf("bad offset %q", parts[1])
	}
	if s.Scale == 0 {
		s.Scale = 1 // DBC files use 0 as shorthand for "raw"; normalise
	}

	// fields[2] = [min|max]
	mm := strings.Trim(fields[2], "[]")
	parts = strings.SplitN(mm, "|", 2)
	if len(parts) != 2 {
		return s, fmt.Errorf("bad range %q", fields[2])
	}
	if s.Min, err = strconv.ParseFloat(parts[0], 64); err != nil {
		return s, fmt.Errorf("bad min %q", parts[0])
	}
	if s.Max, err = strconv.ParseFloat(parts[1], 64); err != nil {
		return s, fmt.Errorf("bad max %q", parts[1])
	}

	// fields[3] = "unit" (optional; may contain no spaces in our subset)
	if len(fields) > 3 {
		s.Unit = strings.Trim(fields[3], `"`)
	}
	return s, nil
}

// WriteDBC serialises a database in the same subset, so captured/derived
// databases round-trip.
func WriteDBC(w io.Writer, db *Database) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, `VERSION ""`)
	fmt.Fprintln(bw)
	for _, m := range db.Messages() {
		fmt.Fprintf(bw, "BO_ %d %s: %d Simulated\n", uint16(m.ID), m.Name, m.Len)
		for _, s := range m.Signals {
			sign := "+"
			if s.Signed {
				sign = "-"
			}
			fmt.Fprintf(bw, " SG_ %s : %d|%d@1%s (%g,%g) [%g|%g] \"%s\" Vector__XXX\n",
				s.Name, s.StartBit, s.Bits, sign, s.Scale, s.Offset, s.Min, s.Max, s.Unit)
		}
		fmt.Fprintln(bw)
	}
	return bw.Flush()
}
