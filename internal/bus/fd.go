package bus

import (
	"fmt"
	"time"

	"repro/internal/can"
)

// CAN FD transport — the paper's §VII future-work item. FD frames share
// the bus and its arbitration with classic frames (as on a real mixed
// network where every node is FD-tolerant), but are delivered only to
// receivers registered with SetFDReceiver. When the bus has a data bitrate
// configured (WithFDDataBitrate), BRS frames transmit their data phase at
// that faster rate.

// DefaultFDDataBitrate is the common 2 Mbit/s FD data-phase rate.
const DefaultFDDataBitrate = 2_000_000

// WithFDDataBitrate sets the FD data-phase bitrate (0 disables bit-rate
// switching; BRS frames then run entirely at the nominal rate).
func WithFDDataBitrate(bps int) Option {
	return func(b *Bus) { b.fdDataBitrate = bps }
}

// FDMessage is an FD frame as observed on the bus.
type FDMessage struct {
	// Frame is the delivered FD frame.
	Frame can.FDFrame
	// Time is the virtual end-of-frame instant.
	Time time.Duration
	// Origin names the transmitting port.
	Origin string
}

// FDReceiver consumes delivered FD frames.
type FDReceiver func(FDMessage)

// SetFDReceiver installs the FD delivery callback on a port. Classic-only
// nodes simply never register one (they tolerate FD traffic silently, like
// FD-tolerant classic controllers).
func (p *Port) SetFDReceiver(r FDReceiver) { p.fdRecv = r }

// SendFD queues an FD frame for transmission. It contends in the same
// arbitration as classic frames.
func (p *Port) SendFD(f can.FDFrame) error {
	if p.detached {
		p.noteDrop()
		return ErrDetached
	}
	if p.state == BusOff {
		p.noteDrop()
		return ErrBusOff
	}
	if err := f.Validate(); err != nil {
		p.noteDrop()
		return fmt.Errorf("sendFD on %s: %w", p.name, err)
	}
	if p.fdq.len() >= p.bus.queueCap {
		p.noteDrop()
		return fmt.Errorf("sendFD on %s: %w", p.name, ErrTxQueueFull)
	}
	p.fdq.push(f)
	p.notePush()
	p.bus.tryStart()
	return nil
}

// startFD begins an FD transmission for the winning port.
func (b *Bus) startFD(winner *Port) {
	frame := winner.fdq.pop()
	winner.notePop()
	b.busy = true
	dur := can.FDWireTime(frame, b.bitrate, b.fdDataBitrate)
	b.pend.kind, b.pend.port, b.pend.fd, b.pend.dur = txFD, winner, frame, dur
	b.sched.AfterEvent(dur, b.completeEvent)
}

// completeFD delivers a finished FD transmission.
func (b *Bus) completeFD(tx *Port, frame can.FDFrame, dur time.Duration) {
	b.busy = false
	b.noteBusy(dur)
	b.creditFrameEnd()

	if b.corrupt != nil && b.corrupt(can.Frame{ID: frame.ID}) {
		b.noteErrorFrame(tx, frame.ID, dur)
		for _, p := range b.ports {
			if p != tx && !p.detached && p.state != BusOff {
				p.bumpREC(1)
			}
		}
		b.tryStart()
		return
	}

	b.noteDelivered(tx, frame.ID, dur, 0)
	msg := FDMessage{Frame: frame, Time: b.sched.Now(), Origin: tx.name}
	b.delivering = true
	for _, p := range b.ports {
		if p == tx || p.detached || p.state == BusOff || p.fdRecv == nil {
			continue
		}
		p.noteRx()
		p.fdRecv(msg)
	}
	for _, t := range b.fdTaps {
		t(msg)
	}
	b.delivering = false
	b.tryStart()
}

// TapFD registers a passive listener for FD traffic.
func (b *Bus) TapFD(r FDReceiver) {
	if r == nil {
		panic("bus: nil FD tap receiver")
	}
	b.fdTaps = append(b.fdTaps, r)
}
