package bus

// ring is a FIFO over a power-of-two circular buffer, used for the per-port
// transmit queues. The previous implementation front-sliced an ordinary
// slice (`q = q[1:]` on dequeue), which permanently discards capacity and
// forces append to reallocate on nearly every enqueue once the queue has
// cycled — the second-largest allocation source on the frame hot path. A
// ring reuses its storage forever: after warm-up, enqueue and dequeue are
// allocation-free. Capacity grows geometrically and is bounded in practice
// by the bus queueCap, which every Send checks before pushing.
type ring[T any] struct {
	buf  []T // power-of-two length, or nil before first push
	head int // index of the front element
	n    int // number of queued elements
}

// len returns the number of queued elements.
func (r *ring[T]) len() int { return r.n }

// front returns the element at the head of the queue. It panics (index out
// of range) when the ring is empty, matching the old q[0] behaviour.
func (r *ring[T]) front() T { return r.buf[r.head] }

// push appends v at the tail.
func (r *ring[T]) push(v T) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.n)&(len(r.buf)-1)] = v
	r.n++
}

// pop removes and returns the front element, zeroing its slot so the ring
// does not retain references (raw transmissions hold bit slices and
// callbacks).
func (r *ring[T]) pop() T {
	v := r.buf[r.head]
	var zero T
	r.buf[r.head] = zero
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.n--
	return v
}

// clear drops every queued element, zeroing the occupied slots but keeping
// the storage for reuse (Detach and bus-off drop mailboxes this way).
func (r *ring[T]) clear() {
	var zero T
	for i := 0; i < r.n; i++ {
		r.buf[(r.head+i)&(len(r.buf)-1)] = zero
	}
	r.head, r.n = 0, 0
}

// grow doubles the buffer (first allocation: 16 slots), unwrapping the
// queued elements to the front of the new storage.
func (r *ring[T]) grow() {
	newCap := 16
	if len(r.buf) > 0 {
		newCap = len(r.buf) * 2
	}
	buf := make([]T, newCap)
	for i := 0; i < r.n; i++ {
		buf[i] = r.buf[(r.head+i)&(len(r.buf)-1)]
	}
	r.buf, r.head = buf, 0
}
