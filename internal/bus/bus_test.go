package bus

import (
	"errors"
	"testing"
	"time"

	"repro/internal/can"
	"repro/internal/clock"
)

func newBus(t *testing.T, opts ...Option) (*clock.Scheduler, *Bus) {
	t.Helper()
	s := clock.New()
	return s, New(s, opts...)
}

func TestSingleFrameDelivery(t *testing.T) {
	s, b := newBus(t)
	tx := b.Connect("tx")
	rx := b.Connect("rx")
	var got []Message
	rx.SetReceiver(func(m Message) { got = append(got, m) })

	f := can.MustNew(0x123, []byte{1, 2, 3})
	if err := tx.Send(f); err != nil {
		t.Fatalf("Send: %v", err)
	}
	s.RunUntil(time.Second)
	if len(got) != 1 {
		t.Fatalf("received %d frames, want 1", len(got))
	}
	if !got[0].Frame.Equal(f) {
		t.Fatalf("frame = %v, want %v", got[0].Frame, f)
	}
	if got[0].Origin != "tx" {
		t.Fatalf("origin = %q", got[0].Origin)
	}
}

func TestSenderDoesNotReceiveOwnFrame(t *testing.T) {
	s, b := newBus(t)
	tx := b.Connect("tx")
	count := 0
	tx.SetReceiver(func(Message) { count++ })
	tx.Send(can.MustNew(0x1, nil))
	s.RunUntil(time.Second)
	if count != 0 {
		t.Fatal("node received its own frame")
	}
}

func TestBroadcastToAllOtherNodes(t *testing.T) {
	s, b := newBus(t)
	tx := b.Connect("tx")
	counts := make([]int, 3)
	for i := 0; i < 3; i++ {
		i := i
		b.Connect("rx").SetReceiver(func(Message) { counts[i]++ })
	}
	tx.Send(can.MustNew(0x1, []byte{0xAA}))
	s.RunUntil(time.Second)
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("receiver %d got %d frames, want 1", i, c)
		}
	}
}

func TestDeliveryLatencyMatchesWireLength(t *testing.T) {
	s, b := newBus(t) // 500 kb/s: 2 µs per bit
	tx := b.Connect("tx")
	rx := b.Connect("rx")
	f := can.MustNew(0x555, []byte{0x55, 0x55}) // alternating: no stuffing
	var at time.Duration
	rx.SetReceiver(func(m Message) { at = m.Time })
	tx.Send(f)
	s.RunUntil(time.Second)
	wantBits := can.WireBitsWithIFS(f)
	want := time.Duration(wantBits) * time.Second / time.Duration(DefaultBitrate)
	if at != want {
		t.Fatalf("delivered at %v, want %v (%d bits)", at, want, wantBits)
	}
}

func TestArbitrationLowestIDWins(t *testing.T) {
	s, b := newBus(t)
	hi := b.Connect("hi")
	lo := b.Connect("lo")
	rx := b.Connect("rx")
	var order []can.ID
	rx.SetReceiver(func(m Message) { order = append(order, m.Frame.ID) })

	// Queue both while the bus is idle within one event: use a scheduled
	// event so neither transmission starts before both are queued.
	s.After(time.Millisecond, func() {
		hi.Send(can.MustNew(0x400, []byte{1}))
		lo.Send(can.MustNew(0x100, []byte{2}))
	})
	s.RunUntil(time.Second)
	if len(order) != 2 {
		t.Fatalf("got %d frames", len(order))
	}
	// 0x400 was queued first and the bus was idle, so it transmits first;
	// arbitration applies to simultaneous contention, not FIFO history.
	if order[0] != 0x400 || order[1] != 0x100 {
		t.Fatalf("order = %v", order)
	}
}

func TestArbitrationAmongSimultaneousQueues(t *testing.T) {
	s, b := newBus(t)
	a := b.Connect("a")
	c := b.Connect("c")
	d := b.Connect("d")
	rx := b.Connect("rx")
	var order []can.ID
	rx.SetReceiver(func(m Message) { order = append(order, m.Frame.ID) })

	// While a long frame occupies the bus, three nodes queue. On bus idle,
	// the lowest ID must win regardless of queueing order.
	a.Send(can.MustNew(0x7FF, make([]byte, 8))) // occupies the bus first
	a.Send(can.MustNew(0x300, []byte{3}))
	c.Send(can.MustNew(0x050, []byte{1}))
	d.Send(can.MustNew(0x200, []byte{2}))
	s.RunUntil(time.Second)

	want := []can.ID{0x7FF, 0x050, 0x200, 0x300}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestPerPortFIFO(t *testing.T) {
	s, b := newBus(t)
	tx := b.Connect("tx")
	rx := b.Connect("rx")
	var order []byte
	rx.SetReceiver(func(m Message) { order = append(order, m.Frame.Data[0]) })
	// Same ID, must arrive in send order.
	for i := byte(1); i <= 5; i++ {
		tx.Send(can.MustNew(0x123, []byte{i}))
	}
	s.RunUntil(time.Second)
	for i, v := range order {
		if v != byte(i+1) {
			t.Fatalf("order = %v", order)
		}
	}
}

func TestSendInvalidFrame(t *testing.T) {
	_, b := newBus(t)
	tx := b.Connect("tx")
	err := tx.Send(can.Frame{ID: 0x900})
	if !errors.Is(err, can.ErrIDRange) {
		t.Fatalf("err = %v, want ErrIDRange", err)
	}
	if tx.Stats().Dropped != 1 {
		t.Fatal("dropped counter not bumped")
	}
}

func TestTxQueueFull(t *testing.T) {
	_, b := newBus(t, WithTxQueueCap(2))
	tx := b.Connect("tx")
	// First Send starts transmitting immediately (leaves the queue), so cap
	// 2 admits three sends before overflowing.
	for i := 0; i < 3; i++ {
		if err := tx.Send(can.MustNew(0x1, nil)); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	if err := tx.Send(can.MustNew(0x1, nil)); !errors.Is(err, ErrTxQueueFull) {
		t.Fatalf("err = %v, want ErrTxQueueFull", err)
	}
}

func TestDetachedPortCannotSend(t *testing.T) {
	_, b := newBus(t)
	tx := b.Connect("tx")
	tx.Detach()
	if err := tx.Send(can.MustNew(0x1, nil)); !errors.Is(err, ErrDetached) {
		t.Fatalf("err = %v, want ErrDetached", err)
	}
}

func TestDetachedPortDoesNotReceive(t *testing.T) {
	s, b := newBus(t)
	tx := b.Connect("tx")
	rx := b.Connect("rx")
	count := 0
	rx.SetReceiver(func(Message) { count++ })
	rx.Detach()
	tx.Send(can.MustNew(0x1, nil))
	s.RunUntil(time.Second)
	if count != 0 {
		t.Fatal("detached port received a frame")
	}
}

func TestReattachRestoresReception(t *testing.T) {
	s, b := newBus(t)
	tx := b.Connect("tx")
	rx := b.Connect("rx")
	count := 0
	rx.SetReceiver(func(Message) { count++ })
	rx.Detach()
	rx.Reattach()
	tx.Send(can.MustNew(0x1, nil))
	s.RunUntil(time.Second)
	if count != 1 {
		t.Fatalf("count = %d, want 1", count)
	}
}

func TestTapSeesAllTraffic(t *testing.T) {
	s, b := newBus(t)
	a := b.Connect("a")
	c := b.Connect("c")
	var tapped []string
	b.Tap(func(m Message) { tapped = append(tapped, m.Origin) })
	a.Send(can.MustNew(0x10, nil))
	c.Send(can.MustNew(0x20, nil))
	s.RunUntil(time.Second)
	if len(tapped) != 2 {
		t.Fatalf("tap saw %d frames, want 2", len(tapped))
	}
}

func TestCorruptorDestroysFrames(t *testing.T) {
	s, b := newBus(t)
	tx := b.Connect("tx")
	rx := b.Connect("rx")
	count := 0
	rx.SetReceiver(func(Message) { count++ })
	n := 0
	b.SetCorruptor(func(can.Frame) bool {
		n++
		return n%2 == 1 // corrupt every other frame
	})
	for i := 0; i < 10; i++ {
		tx.Send(can.MustNew(0x1, []byte{byte(i)}))
	}
	s.RunUntil(time.Second)
	if count != 5 {
		t.Fatalf("received %d frames, want 5", count)
	}
	if b.Stats().FramesCorrupted != 5 {
		t.Fatalf("corrupted = %d, want 5", b.Stats().FramesCorrupted)
	}
}

func TestErrorCountersAndBusOff(t *testing.T) {
	s, b := newBus(t)
	tx := b.Connect("tx")
	rx := b.Connect("rx")
	rx.SetReceiver(func(Message) {})
	b.SetCorruptor(func(can.Frame) bool { return true })

	// Each corrupted TX adds 8 to TEC; bus-off at 256 => 32 frames.
	for i := 0; i < 40; i++ {
		if err := tx.Send(can.MustNew(0x1, nil)); err != nil {
			break
		}
		s.RunUntil(s.Now() + 10*time.Millisecond)
	}
	if tx.State() != BusOff {
		tec, _ := tx.ErrorCounters()
		t.Fatalf("state = %v (tec=%d), want bus-off", tx.State(), tec)
	}
	if err := tx.Send(can.MustNew(0x1, nil)); !errors.Is(err, ErrBusOff) {
		t.Fatalf("err = %v, want ErrBusOff", err)
	}
	// Recovery via reset.
	b.SetCorruptor(nil)
	tx.ResetErrors()
	if tx.State() != ErrorActive {
		t.Fatalf("state after reset = %v", tx.State())
	}
	if err := tx.Send(can.MustNew(0x1, nil)); err != nil {
		t.Fatalf("send after reset: %v", err)
	}
}

func TestErrorPassiveTransition(t *testing.T) {
	s, b := newBus(t)
	tx := b.Connect("tx")
	b.Connect("rx").SetReceiver(func(Message) {})
	b.SetCorruptor(func(can.Frame) bool { return true })
	for i := 0; i < 16; i++ { // 16*8 = 128 => error passive
		tx.Send(can.MustNew(0x1, nil))
		s.RunUntil(s.Now() + 10*time.Millisecond)
	}
	if tx.State() != ErrorPassive {
		t.Fatalf("state = %v, want error-passive", tx.State())
	}
}

func TestSuccessfulTrafficHealsCounters(t *testing.T) {
	s, b := newBus(t)
	tx := b.Connect("tx")
	b.Connect("rx").SetReceiver(func(Message) {})
	b.SetCorruptor(func(can.Frame) bool { return true })
	for i := 0; i < 4; i++ {
		tx.Send(can.MustNew(0x1, nil))
		s.RunUntil(s.Now() + 10*time.Millisecond)
	}
	tec, _ := tx.ErrorCounters()
	if tec != 32 {
		t.Fatalf("tec = %d, want 32", tec)
	}
	b.SetCorruptor(nil)
	for i := 0; i < 10; i++ {
		tx.Send(can.MustNew(0x1, nil))
		s.RunUntil(s.Now() + 10*time.Millisecond)
	}
	tec, _ = tx.ErrorCounters()
	if tec != 22 {
		t.Fatalf("tec = %d after healing, want 22", tec)
	}
}

func TestBusLoad(t *testing.T) {
	s, b := newBus(t)
	tx := b.Connect("tx")
	b.Connect("rx").SetReceiver(func(Message) {})
	f := can.MustNew(0x100, make([]byte, 8))
	frameTime := b.FrameTime(f)
	// Send 100 back-to-back frames, then idle for the same duration.
	for i := 0; i < 100; i++ {
		tx.Send(f)
	}
	s.RunUntil(200 * frameTime)
	load := b.Load()
	if load < 0.45 || load > 0.55 {
		t.Fatalf("load = %f, want ~0.5", load)
	}
}

func TestStatsCounters(t *testing.T) {
	s, b := newBus(t)
	tx := b.Connect("tx")
	rx := b.Connect("rx")
	rx.SetReceiver(func(Message) {})
	for i := 0; i < 7; i++ {
		tx.Send(can.MustNew(0x1, []byte{byte(i)}))
	}
	s.RunUntil(time.Second)
	if got := b.Stats().FramesDelivered; got != 7 {
		t.Fatalf("FramesDelivered = %d, want 7", got)
	}
	if got := tx.Stats().TxFrames; got != 7 {
		t.Fatalf("TxFrames = %d, want 7", got)
	}
	if got := rx.Stats().RxFrames; got != 7 {
		t.Fatalf("RxFrames = %d, want 7", got)
	}
}

func TestReceiverMaySendInResponse(t *testing.T) {
	s, b := newBus(t)
	tx := b.Connect("tx")
	echo := b.Connect("echo")
	echo.SetReceiver(func(m Message) {
		if m.Frame.ID == 0x100 {
			echo.Send(can.MustNew(0x200, m.Frame.Payload()))
		}
	})
	var got []can.ID
	tx.SetReceiver(func(m Message) { got = append(got, m.Frame.ID) })
	tx.Send(can.MustNew(0x100, []byte{0x42}))
	s.RunUntil(time.Second)
	if len(got) != 1 || got[0] != 0x200 {
		t.Fatalf("got = %v, want [0x200]", got)
	}
}

func TestResponseArbitratesWithConcurrentQueues(t *testing.T) {
	s, b := newBus(t)
	tx := b.Connect("tx")
	early := b.Connect("early")
	late := b.Connect("late")
	rx := b.Connect("rx")
	var order []can.ID
	rx.SetReceiver(func(m Message) { order = append(order, m.Frame.ID) })
	// 'early' responds with a high ID, 'late' with a low ID. Both respond to
	// the same delivery; the low ID must still win the next arbitration.
	early.SetReceiver(func(m Message) {
		if m.Frame.ID == 0x100 {
			early.Send(can.MustNew(0x300, nil))
		}
	})
	late.SetReceiver(func(m Message) {
		if m.Frame.ID == 0x100 {
			late.Send(can.MustNew(0x050, nil))
		}
	})
	tx.Send(can.MustNew(0x100, nil))
	s.RunUntil(time.Second)
	want := []can.ID{0x100, 0x050, 0x300}
	if len(order) != 3 || order[1] != want[1] || order[2] != want[2] {
		t.Fatalf("order = %v, want %v", order, want)
	}
}

func TestNodeStateString(t *testing.T) {
	if ErrorActive.String() != "error-active" || BusOff.String() != "bus-off" {
		t.Fatal("NodeState.String broken")
	}
	if NodeState(0).String() == "" {
		t.Fatal("unknown state string empty")
	}
}

func BenchmarkBusThroughput(b *testing.B) {
	s := clock.New()
	bb := New(s)
	tx := bb.Connect("tx")
	bb.Connect("rx").SetReceiver(func(Message) {})
	f := can.MustNew(0x123, []byte{1, 2, 3, 4, 5, 6, 7, 8})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tx.Send(f)
		s.Step()
	}
}

func TestWithBitrateScalesLatency(t *testing.T) {
	run := func(bps int) time.Duration {
		s := clock.New()
		b := New(s, WithBitrate(bps))
		tx := b.Connect("tx")
		rx := b.Connect("rx")
		var at time.Duration
		rx.SetReceiver(func(m Message) { at = m.Time })
		tx.Send(can.MustNew(0x555, []byte{0x55, 0x55}))
		s.RunUntil(time.Second)
		return at
	}
	slow := run(125_000)
	fast := run(500_000)
	if slow != fast*4 {
		t.Fatalf("latency at 125k = %v, at 500k = %v; want exact 4x", slow, fast)
	}
}

func TestFrameTimeAccessor(t *testing.T) {
	s := clock.New()
	b := New(s)
	f := can.MustNew(0x100, []byte{1, 2})
	want := time.Duration(can.WireBitsWithIFS(f)) * time.Second / DefaultBitrate
	if got := b.FrameTime(f); got != want {
		t.Fatalf("FrameTime = %v, want %v", got, want)
	}
}
