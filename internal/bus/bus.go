// Package bus simulates a shared CAN bus: a broadcast medium with
// priority-based arbitration, bit-accurate transmission latency, error
// counters with error-passive/bus-off states, passive taps (the OBD port of
// the paper), and load accounting.
//
// The model is event-driven on a clock.Scheduler. When the bus is idle and
// at least one connected port has a pending frame, the frame with the
// lowest arbitration identifier wins (CAN's dominant-bit arbitration) and
// occupies the bus for its stuffed wire length at the configured bitrate.
// Receivers see the frame at end-of-frame time, exactly as a real
// controller raises its RX interrupt.
package bus

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/can"
	"repro/internal/clock"
)

// Errors returned by Port.Send.
var (
	ErrDetached    = errors.New("bus: port is detached")
	ErrBusOff      = errors.New("bus: node is in bus-off state")
	ErrTxQueueFull = errors.New("bus: transmit queue full")
)

// DefaultBitrate is the common in-vehicle CAN speed used by the paper's
// target car (§IV: "A common transmission speed used in cars is 500kb/s").
const DefaultBitrate = 500_000

// DefaultTxQueueCap bounds each port's transmit queue, mirroring the finite
// mailbox depth of a CAN controller.
const DefaultTxQueueCap = 256

// Error-counter thresholds from the CAN specification.
const (
	errorPassiveThreshold = 128
	busOffThreshold       = 256
)

// NodeState describes a port's CAN fault-confinement state.
type NodeState int

const (
	// ErrorActive is the normal operating state.
	ErrorActive NodeState = iota + 1
	// ErrorPassive is entered when an error counter exceeds 127.
	ErrorPassive
	// BusOff is entered when the transmit error counter exceeds 255; the
	// node no longer participates on the bus until reset.
	BusOff
)

// String returns the state name.
func (s NodeState) String() string {
	switch s {
	case ErrorActive:
		return "error-active"
	case ErrorPassive:
		return "error-passive"
	case BusOff:
		return "bus-off"
	default:
		return fmt.Sprintf("NodeState(%d)", int(s))
	}
}

// Message is a frame as observed on the bus.
type Message struct {
	// Frame is the delivered frame.
	Frame can.Frame
	// Time is the virtual end-of-frame instant.
	Time time.Duration
	// Origin names the transmitting port.
	Origin string
}

// Receiver consumes delivered frames. Implementations must not block; they
// run inline inside the simulation event loop.
type Receiver func(Message)

// Option configures a Bus.
type Option func(*Bus)

// WithBitrate sets the bus speed in bits per second.
func WithBitrate(bps int) Option {
	return func(b *Bus) {
		if bps > 0 {
			b.bitrate = bps
		}
	}
}

// WithTxQueueCap sets the per-port transmit queue capacity.
func WithTxQueueCap(n int) Option {
	return func(b *Bus) {
		if n > 0 {
			b.queueCap = n
		}
	}
}

// Corruptor decides whether a frame transmission is corrupted on the wire
// (fault injection). Returning true destroys the frame: receivers never see
// it and the transmitter's error counter increases.
type Corruptor func(can.Frame) bool

// Stats is a snapshot of bus-level counters.
type Stats struct {
	// FramesDelivered counts successfully transmitted frames.
	FramesDelivered uint64
	// FramesCorrupted counts transmissions destroyed by fault injection.
	FramesCorrupted uint64
	// BitsTransmitted counts wire bits of successful frames (with IFS).
	BitsTransmitted uint64
	// BusyTime is cumulative time the bus spent transmitting.
	BusyTime time.Duration
}

// Bus is the shared medium. Create with New; attach nodes with Connect.
type Bus struct {
	sched    *clock.Scheduler
	bitrate  int
	queueCap int

	ports         []*Port
	taps          []Receiver
	fdTaps        []FDReceiver
	fdDataBitrate int
	busy          bool
	delivering    bool
	corrupt       Corruptor

	stats Stats
	start time.Duration
}

// New creates a bus on the given scheduler.
func New(sched *clock.Scheduler, opts ...Option) *Bus {
	if sched == nil {
		panic("bus: nil scheduler")
	}
	b := &Bus{
		sched:    sched,
		bitrate:  DefaultBitrate,
		queueCap: DefaultTxQueueCap,
		start:    sched.Now(),
	}
	for _, o := range opts {
		o(b)
	}
	return b
}

// Bitrate returns the configured bit rate in bits per second.
func (b *Bus) Bitrate() int { return b.bitrate }

// Scheduler returns the clock the bus runs on.
func (b *Bus) Scheduler() *clock.Scheduler { return b.sched }

// SetCorruptor installs a fault-injection hook. Pass nil to remove it.
func (b *Bus) SetCorruptor(c Corruptor) { b.corrupt = c }

// Tap registers a passive listener that observes every successfully
// delivered frame, like a wiretap or a device on the OBD port. Taps cannot
// transmit and have no error state.
func (b *Bus) Tap(r Receiver) {
	if r == nil {
		panic("bus: nil tap receiver")
	}
	b.taps = append(b.taps, r)
}

// Stats returns a snapshot of the bus counters.
func (b *Bus) Stats() Stats { return b.stats }

// Load returns the fraction of elapsed time the bus spent transmitting,
// in [0,1].
func (b *Bus) Load() float64 {
	elapsed := b.sched.Now() - b.start
	if elapsed <= 0 {
		return 0
	}
	return float64(b.stats.BusyTime) / float64(elapsed)
}

// FrameTime returns the on-wire duration of a frame at the bus bitrate,
// including interframe space.
func (b *Bus) FrameTime(f can.Frame) time.Duration {
	bits := can.WireBitsWithIFS(f)
	return time.Duration(bits) * time.Second / time.Duration(b.bitrate)
}

// Connect attaches a named node to the bus and returns its port.
func (b *Bus) Connect(name string) *Port {
	p := &Port{
		bus:   b,
		name:  name,
		state: ErrorActive,
	}
	b.ports = append(b.ports, p)
	return p
}

// tryStart begins the highest-priority pending transmission if the bus is
// idle. Called whenever a frame is queued or a transmission completes.
// Raw bit sequences (SendRaw) contend in the same arbitration using the
// identifier encoded in their leading bits.
func (b *Bus) tryStart() {
	if b.busy || b.delivering {
		return
	}
	var winner *Port
	var winnerID can.ID
	winnerKind := 0 // 0 classic, 1 raw, 2 fd
	for _, p := range b.ports {
		if p.detached || p.state == BusOff {
			continue
		}
		if len(p.txq) > 0 {
			if id := p.txq[0].ID; winner == nil || id < winnerID {
				winner, winnerID, winnerKind = p, id, 0
			}
		}
		if len(p.rawq) > 0 {
			if id := rawArbID(p.rawq[0].bits); winner == nil || id < winnerID {
				winner, winnerID, winnerKind = p, id, 1
			}
		}
		if len(p.fdq) > 0 {
			if id := p.fdq[0].ID; winner == nil || id < winnerID {
				winner, winnerID, winnerKind = p, id, 2
			}
		}
	}
	if winner == nil {
		return
	}
	switch winnerKind {
	case 1:
		b.startRaw(winner)
		return
	case 2:
		b.startFD(winner)
		return
	}
	frame := winner.txq[0]
	winner.txq = winner.txq[1:]
	b.busy = true
	bits := can.WireBitsWithIFS(frame)
	dur := time.Duration(bits) * time.Second / time.Duration(b.bitrate)
	b.sched.After(dur, func() { b.complete(winner, frame, dur, bits) })
}

// complete finishes a transmission: updates error counters, delivers to
// receivers and taps, then arbitrates the next frame.
func (b *Bus) complete(tx *Port, frame can.Frame, dur time.Duration, bits int) {
	b.busy = false
	b.stats.BusyTime += dur

	if b.corrupt != nil && b.corrupt(frame) {
		b.stats.FramesCorrupted++
		tx.bumpTEC(8)
		tx.stats.TxErrors++
		for _, p := range b.ports {
			if p != tx && !p.detached && p.state != BusOff {
				p.bumpREC(1)
			}
		}
		b.tryStart()
		return
	}

	b.stats.FramesDelivered++
	b.stats.BitsTransmitted += uint64(bits)
	tx.decTEC()
	tx.stats.TxFrames++

	msg := Message{Frame: frame, Time: b.sched.Now(), Origin: tx.name}
	b.delivering = true
	for _, p := range b.ports {
		if p == tx || p.detached || p.state == BusOff || p.recv == nil {
			continue
		}
		p.stats.RxFrames++
		p.decREC()
		p.recv(msg)
	}
	for _, t := range b.taps {
		t(msg)
	}
	b.delivering = false
	b.tryStart()
}
