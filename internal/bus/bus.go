// Package bus simulates a shared CAN bus: a broadcast medium with
// priority-based arbitration, bit-accurate transmission latency, error
// counters with error-passive/bus-off states, passive taps (the OBD port of
// the paper), and load accounting.
//
// The model is event-driven on a clock.Scheduler. When the bus is idle and
// at least one connected port has a pending frame, the frame with the
// lowest arbitration identifier wins (CAN's dominant-bit arbitration) and
// occupies the bus for its stuffed wire length at the configured bitrate.
// Receivers see the frame at end-of-frame time, exactly as a real
// controller raises its RX interrupt.
package bus

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/can"
	"repro/internal/clock"
	"repro/internal/telemetry"
)

// Errors returned by Port.Send.
var (
	ErrDetached    = errors.New("bus: port is detached")
	ErrBusOff      = errors.New("bus: node is in bus-off state")
	ErrTxQueueFull = errors.New("bus: transmit queue full")
)

// DefaultBitrate is the common in-vehicle CAN speed used by the paper's
// target car (§IV: "A common transmission speed used in cars is 500kb/s").
const DefaultBitrate = 500_000

// DefaultTxQueueCap bounds each port's transmit queue, mirroring the finite
// mailbox depth of a CAN controller.
const DefaultTxQueueCap = 256

// Error-counter thresholds from the CAN specification.
const (
	errorPassiveThreshold = 128
	busOffThreshold       = 256
)

// NodeState describes a port's CAN fault-confinement state.
type NodeState int

const (
	// ErrorActive is the normal operating state.
	ErrorActive NodeState = iota + 1
	// ErrorPassive is entered when an error counter exceeds 127.
	ErrorPassive
	// BusOff is entered when the transmit error counter exceeds 255; the
	// node no longer participates on the bus until reset.
	BusOff
)

// String returns the state name.
func (s NodeState) String() string {
	switch s {
	case ErrorActive:
		return "error-active"
	case ErrorPassive:
		return "error-passive"
	case BusOff:
		return "bus-off"
	default:
		return fmt.Sprintf("NodeState(%d)", int(s))
	}
}

// Message is a frame as observed on the bus.
type Message struct {
	// Frame is the delivered frame.
	Frame can.Frame
	// Time is the virtual end-of-frame instant.
	Time time.Duration
	// Origin names the transmitting port.
	Origin string
}

// Receiver consumes delivered frames. Implementations must not block; they
// run inline inside the simulation event loop.
type Receiver func(Message)

// Option configures a Bus.
type Option func(*Bus)

// WithBitrate sets the bus speed in bits per second.
func WithBitrate(bps int) Option {
	return func(b *Bus) {
		if bps > 0 {
			b.bitrate = bps
		}
	}
}

// WithTxQueueCap sets the per-port transmit queue capacity.
func WithTxQueueCap(n int) Option {
	return func(b *Bus) {
		if n > 0 {
			b.queueCap = n
		}
	}
}

// WithName labels the bus in telemetry exports ("body", "powertrain"...).
func WithName(name string) Option {
	return func(b *Bus) {
		if name != "" {
			b.name = name
		}
	}
}

// WithLoadWindow sets the sliding virtual-time window over which WindowLoad
// computes recent bus utilisation (default DefaultLoadWindow).
func WithLoadWindow(d time.Duration) Option {
	return func(b *Bus) {
		if d > 0 {
			b.win.bucket = d / loadWindowBuckets
			if b.win.bucket <= 0 {
				b.win.bucket = 1
			}
		}
	}
}

// Corruptor decides whether a frame transmission is corrupted on the wire
// (fault injection). Returning true destroys the frame: receivers never see
// it and the transmitter's error counter increases.
type Corruptor func(can.Frame) bool

// Stats is a snapshot of bus-level counters.
type Stats struct {
	// FramesDelivered counts successfully transmitted frames.
	FramesDelivered uint64
	// FramesCorrupted counts transmissions destroyed by fault injection.
	FramesCorrupted uint64
	// BitsTransmitted counts wire bits of successful frames (with IFS).
	BitsTransmitted uint64
	// BusyTime is cumulative time the bus spent transmitting.
	BusyTime time.Duration
}

// Bus is the shared medium. Create with New; attach nodes with Connect.
type Bus struct {
	sched    *clock.Scheduler
	bitrate  int
	queueCap int
	name     string

	ports         []*Port
	taps          []Receiver
	fdTaps        []FDReceiver
	fdDataBitrate int
	busy          bool
	delivering    bool
	corrupt       Corruptor

	stats Stats
	start time.Duration
	win   loadWindow

	// Telemetry hooks; all nil (no-op) until Instrument is called.
	tel        *telemetry.Telemetry
	mDelivered *telemetry.Counter
	mCorrupted *telemetry.Counter
	mBits      *telemetry.Counter
	gLoad      *telemetry.Gauge
	hWireTime  *telemetry.Histogram
}

// New creates a bus on the given scheduler.
func New(sched *clock.Scheduler, opts ...Option) *Bus {
	if sched == nil {
		panic("bus: nil scheduler")
	}
	b := &Bus{
		sched:    sched,
		bitrate:  DefaultBitrate,
		queueCap: DefaultTxQueueCap,
		name:     "can",
		start:    sched.Now(),
		win:      loadWindow{bucket: DefaultLoadWindow / loadWindowBuckets},
	}
	for _, o := range opts {
		o(b)
	}
	return b
}

// Name returns the telemetry label of the bus.
func (b *Bus) Name() string { return b.name }

// Instrument attaches the bus (and its current and future ports) to the
// telemetry plane: bus counters, the sliding-window load gauge, the wire
// time histogram, and the arbitration/error trace events. Passing nil is a
// no-op; the bus stays uninstrumented.
func (b *Bus) Instrument(t *telemetry.Telemetry) {
	if t == nil {
		return
	}
	b.tel = t
	reg := t.Registry
	lbl := telemetry.Label{Key: "bus", Value: b.name}
	b.mDelivered = reg.Counter("can_frames_delivered_total", "Successfully transmitted frames.", lbl)
	b.mCorrupted = reg.Counter("can_frames_corrupted_total", "Transmissions destroyed by corruption or protocol violation.", lbl)
	b.mBits = reg.Counter("can_bits_transmitted_total", "Wire bits of successful frames, including interframe space.", lbl)
	b.gLoad = reg.Gauge("can_bus_load_ratio", "Fraction of the sliding virtual-time window the bus spent transmitting.", lbl)
	b.hWireTime = reg.Histogram("can_tx_wire_seconds", "Stuffed wire time per successful transmission.", nil, lbl)
	for _, p := range b.ports {
		p.instrument()
	}
}

// Bitrate returns the configured bit rate in bits per second.
func (b *Bus) Bitrate() int { return b.bitrate }

// Scheduler returns the clock the bus runs on.
func (b *Bus) Scheduler() *clock.Scheduler { return b.sched }

// SetCorruptor installs a fault-injection hook. Pass nil to remove it.
func (b *Bus) SetCorruptor(c Corruptor) { b.corrupt = c }

// Tap registers a passive listener that observes every successfully
// delivered frame, like a wiretap or a device on the OBD port. Taps cannot
// transmit and have no error state.
func (b *Bus) Tap(r Receiver) {
	if r == nil {
		panic("bus: nil tap receiver")
	}
	b.taps = append(b.taps, r)
}

// Stats returns a snapshot of the bus counters.
func (b *Bus) Stats() Stats { return b.stats }

// Load returns the fraction of elapsed time the bus spent transmitting,
// in [0,1].
func (b *Bus) Load() float64 {
	elapsed := b.sched.Now() - b.start
	if elapsed <= 0 {
		return 0
	}
	return float64(b.stats.BusyTime) / float64(elapsed)
}

// FrameTime returns the on-wire duration of a frame at the bus bitrate,
// including interframe space.
func (b *Bus) FrameTime(f can.Frame) time.Duration {
	bits := can.WireBitsWithIFS(f)
	return time.Duration(bits) * time.Second / time.Duration(b.bitrate)
}

// Connect attaches a named node to the bus and returns its port.
func (b *Bus) Connect(name string) *Port {
	p := &Port{
		bus:   b,
		name:  name,
		state: ErrorActive,
	}
	b.ports = append(b.ports, p)
	if b.tel != nil {
		p.instrument()
	}
	return p
}

// tryStart begins the highest-priority pending transmission if the bus is
// idle. Called whenever a frame is queued or a transmission completes.
// Raw bit sequences (SendRaw) contend in the same arbitration using the
// identifier encoded in their leading bits.
func (b *Bus) tryStart() {
	if b.busy || b.delivering {
		return
	}
	var winner *Port
	var winnerID can.ID
	winnerKind := 0 // 0 classic, 1 raw, 2 fd
	contenders := 0
	for _, p := range b.ports {
		if p.detached || p.state == BusOff {
			continue
		}
		pending := false
		if len(p.txq) > 0 {
			pending = true
			if id := p.txq[0].ID; winner == nil || id < winnerID {
				winner, winnerID, winnerKind = p, id, 0
			}
		}
		if len(p.rawq) > 0 {
			pending = true
			if id := rawArbID(p.rawq[0].bits); winner == nil || id < winnerID {
				winner, winnerID, winnerKind = p, id, 1
			}
		}
		if len(p.fdq) > 0 {
			pending = true
			if id := p.fdq[0].ID; winner == nil || id < winnerID {
				winner, winnerID, winnerKind = p, id, 2
			}
		}
		if pending {
			contenders++
		}
	}
	if winner == nil {
		return
	}
	// The uncontended case (one pending sender) has no losers to charge;
	// skip the loser rescan unless a tracer wants the arb-won event too.
	if contenders > 1 || b.tel != nil {
		b.noteArbitration(winner, winnerID)
	}
	switch winnerKind {
	case 1:
		b.startRaw(winner)
		return
	case 2:
		b.startFD(winner)
		return
	}
	frame := winner.txq[0]
	winner.txq = winner.txq[1:]
	b.busy = true
	bits := can.WireBitsWithIFS(frame)
	dur := time.Duration(bits) * time.Second / time.Duration(b.bitrate)
	b.sched.After(dur, func() { b.complete(winner, frame, dur, bits) })
}

// complete finishes a transmission: updates error counters, delivers to
// receivers and taps, then arbitrates the next frame.
func (b *Bus) complete(tx *Port, frame can.Frame, dur time.Duration, bits int) {
	b.busy = false
	b.noteBusy(dur)

	if b.corrupt != nil && b.corrupt(frame) {
		b.noteErrorFrame(tx, frame.ID, dur)
		for _, p := range b.ports {
			if p != tx && !p.detached && p.state != BusOff {
				p.bumpREC(1)
			}
		}
		b.tryStart()
		return
	}

	b.noteDelivered(tx, frame.ID, dur, bits)

	msg := Message{Frame: frame, Time: b.sched.Now(), Origin: tx.name}
	b.delivering = true
	for _, p := range b.ports {
		if p == tx || p.detached || p.state == BusOff || p.recv == nil {
			continue
		}
		p.noteRx()
		p.recv(msg)
	}
	for _, t := range b.taps {
		t(msg)
	}
	b.delivering = false
	b.tryStart()
}

// --- Telemetry accounting ---------------------------------------------------
//
// The note* helpers centralise the counter and trace updates shared by the
// classic, raw and FD completion paths. Every telemetry handle is nil when
// the bus is uninstrumented, so the added cost is a few predictable
// branches.

// noteArbitration charges an arbitration loss to every port that contended
// and lost against the winner, and emits the won/lost trace events.
func (b *Bus) noteArbitration(winner *Port, winnerID can.ID) {
	for _, p := range b.ports {
		if p == winner || p.detached || p.state == BusOff {
			continue
		}
		if len(p.txq) == 0 && len(p.rawq) == 0 && len(p.fdq) == 0 {
			continue
		}
		p.stats.ArbLosses++
		p.mArbLoss.Inc()
		if b.tel != nil {
			b.tel.Emit(telemetry.Event{
				At: b.sched.Now(), Kind: telemetry.EvArbLost,
				Actor: p.name, Name: "arb-lost", ID: uint32(winnerID),
			})
		}
	}
	if b.tel != nil {
		b.tel.Emit(telemetry.Event{
			At: b.sched.Now(), Kind: telemetry.EvArbWon,
			Actor: winner.name, Name: "arb-won", ID: uint32(winnerID),
		})
	}
}

// noteBusy accrues bus occupancy into the lifetime and sliding-window
// accounts and refreshes the load gauge.
func (b *Bus) noteBusy(dur time.Duration) {
	b.stats.BusyTime += dur
	now := b.sched.Now()
	b.win.add(now, dur)
	if b.tel != nil {
		b.gLoad.Set(b.win.load(now))
		b.tel.Advance(now)
	}
}

// noteErrorFrame accounts a destroyed transmission on the transmitter.
func (b *Bus) noteErrorFrame(tx *Port, id can.ID, dur time.Duration) {
	b.stats.FramesCorrupted++
	tx.bumpTEC(8)
	tx.stats.TxErrors++
	b.mCorrupted.Inc()
	if b.tel != nil {
		b.tel.Emit(telemetry.Event{
			At: b.sched.Now() - dur, Dur: dur, Kind: telemetry.EvErrorFrame,
			Actor: tx.name, Name: "error-frame", ID: uint32(id),
		})
	}
}

// noteDelivered accounts a successful transmission on bus and transmitter.
func (b *Bus) noteDelivered(tx *Port, id can.ID, dur time.Duration, bits int) {
	b.stats.FramesDelivered++
	b.stats.BitsTransmitted += uint64(bits)
	tx.decTEC()
	tx.stats.TxFrames++
	b.mDelivered.Inc()
	b.mBits.Add(uint64(bits))
	tx.mTx.Inc()
	if b.tel != nil {
		b.hWireTime.ObserveDuration(dur)
		b.tel.Emit(telemetry.Event{
			At: b.sched.Now() - dur, Dur: dur, Kind: telemetry.EvTx,
			Actor: tx.name, Name: "tx", ID: uint32(id), N: uint64(bits),
		})
	}
}
