// Package bus simulates a shared CAN bus: a broadcast medium with
// priority-based arbitration, bit-accurate transmission latency, error
// counters with error-passive/bus-off states, passive taps (the OBD port of
// the paper), and load accounting.
//
// The model is event-driven on a clock.Scheduler. When the bus is idle and
// at least one connected port has a pending frame, the frame with the
// lowest arbitration identifier wins (CAN's dominant-bit arbitration) and
// occupies the bus for its stuffed wire length at the configured bitrate.
// Receivers see the frame at end-of-frame time, exactly as a real
// controller raises its RX interrupt.
package bus

import (
	"errors"
	"fmt"
	mathbits "math/bits"
	"time"

	"repro/internal/can"
	"repro/internal/clock"
	"repro/internal/telemetry"
)

// Errors returned by Port.Send.
var (
	ErrDetached    = errors.New("bus: port is detached")
	ErrBusOff      = errors.New("bus: node is in bus-off state")
	ErrTxQueueFull = errors.New("bus: transmit queue full")
)

// DefaultBitrate is the common in-vehicle CAN speed used by the paper's
// target car (§IV: "A common transmission speed used in cars is 500kb/s").
const DefaultBitrate = 500_000

// DefaultTxQueueCap bounds each port's transmit queue, mirroring the finite
// mailbox depth of a CAN controller.
const DefaultTxQueueCap = 256

// Error-counter thresholds from the CAN specification.
const (
	errorPassiveThreshold = 128
	busOffThreshold       = 256
)

// Bus-off recovery constants from ISO 11898-1 §8.3.4: a bus-off node may
// return to error-active after monitoring 128 occurrences of 11 consecutive
// recessive bits. The simulator credits one sequence per observed end of
// frame (EOF or error delimiter plus intermission) and accrues sequences
// continuously while the bus is idle.
const (
	busOffRecoverySequences = 128
	recessiveSeqBits        = 11
)

// NodeState describes a port's CAN fault-confinement state.
type NodeState int

const (
	// ErrorActive is the normal operating state.
	ErrorActive NodeState = iota + 1
	// ErrorPassive is entered when an error counter exceeds 127.
	ErrorPassive
	// BusOff is entered when the transmit error counter exceeds 255; the
	// node no longer participates on the bus until reset.
	BusOff
)

// String returns the state name.
func (s NodeState) String() string {
	switch s {
	case ErrorActive:
		return "error-active"
	case ErrorPassive:
		return "error-passive"
	case BusOff:
		return "bus-off"
	default:
		return fmt.Sprintf("NodeState(%d)", int(s))
	}
}

// Message is a frame as observed on the bus.
type Message struct {
	// Frame is the delivered frame.
	Frame can.Frame
	// Time is the virtual end-of-frame instant.
	Time time.Duration
	// Origin names the transmitting port.
	Origin string
}

// Receiver consumes delivered frames. Implementations must not block; they
// run inline inside the simulation event loop.
type Receiver func(Message)

// Option configures a Bus.
type Option func(*Bus)

// WithBitrate sets the bus speed in bits per second.
func WithBitrate(bps int) Option {
	return func(b *Bus) {
		if bps > 0 {
			b.bitrate = bps
		}
	}
}

// WithTxQueueCap sets the per-port transmit queue capacity.
func WithTxQueueCap(n int) Option {
	return func(b *Bus) {
		if n > 0 {
			b.queueCap = n
		}
	}
}

// WithName labels the bus in telemetry exports ("body", "powertrain"...).
func WithName(name string) Option {
	return func(b *Bus) {
		if name != "" {
			b.name = name
		}
	}
}

// WithAutoRecovery makes every port (current and future) perform
// CAN-conformant bus-off recovery: a bus-off node rejoins as error-active
// after observing 128 sequences of 11 recessive bits (ISO 11898-1 §8.3.4)
// instead of staying off the bus until an explicit ResetErrors.
func WithAutoRecovery() Option {
	return func(b *Bus) { b.autoRecover = true }
}

// WithLoadWindow sets the sliding virtual-time window over which WindowLoad
// computes recent bus utilisation (default DefaultLoadWindow).
func WithLoadWindow(d time.Duration) Option {
	return func(b *Bus) {
		if d > 0 {
			b.win.bucket = d / loadWindowBuckets
			if b.win.bucket <= 0 {
				b.win.bucket = 1
			}
		}
	}
}

// Corruptor decides whether a frame transmission is corrupted on the wire
// (fault injection). Returning true destroys the frame: receivers never see
// it and the transmitter's error counter increases.
type Corruptor func(can.Frame) bool

// TxAction is an Interceptor's verdict on one completed transmission.
type TxAction int

const (
	// TxDeliver lets the frame through unharmed.
	TxDeliver TxAction = iota
	// TxCorrupt destroys the frame on the wire: every node detects the CRC
	// error at end of frame, the transmitter's TEC rises by 8 and each
	// receiver's REC by 1 (the classic Corruptor behaviour).
	TxCorrupt
	// TxDrop loses the frame silently: it occupies the wire and the
	// transmitter sees its ACK, but no receiver is handed the frame —
	// modelling a receiver-side glitch the protocol does not detect.
	TxDrop
	// TxDuplicate delivers the frame twice to every receiver, modelling the
	// spurious retransmission a marginal transceiver produces.
	TxDuplicate
)

// Interceptor is the generalised wire-fault hook: it inspects each
// transmission at end of frame and decides its fate. It subsumes Corruptor
// (which remains for compatibility and is consulted only when the
// interceptor returns TxDeliver).
type Interceptor func(can.Frame) TxAction

// Stats is a snapshot of bus-level counters.
type Stats struct {
	// FramesDelivered counts successfully transmitted frames.
	FramesDelivered uint64
	// FramesCorrupted counts transmissions destroyed by fault injection.
	FramesCorrupted uint64
	// FramesDropped counts transmissions lost silently by fault injection.
	FramesDropped uint64
	// FramesDuplicated counts transmissions delivered twice by fault
	// injection.
	FramesDuplicated uint64
	// BitsTransmitted counts wire bits of successful frames (with IFS).
	BitsTransmitted uint64
	// BusyTime is cumulative time the bus spent transmitting.
	BusyTime time.Duration
	// JamTime is cumulative time the bus was held dominant by Jam.
	JamTime time.Duration
}

// Bus is the shared medium. Create with New; attach nodes with Connect.
type Bus struct {
	sched    *clock.Scheduler
	bitrate  int
	queueCap int
	name     string

	ports         []*Port
	taps          []Receiver
	fdTaps        []FDReceiver
	fdDataBitrate int
	busy          bool
	delivering    bool
	corrupt       Corruptor
	intercept     Interceptor

	// pend is the single in-flight transmission (the bus carries at most one
	// frame at a time, gated by busy). Keeping it on the Bus and dispatching
	// through the pre-bound completion events below means starting a
	// transmission allocates nothing: the old code closed over (port, frame,
	// dur) in a fresh closure per frame, the third-largest allocation source
	// on the hot path.
	pend struct {
		kind  txKind
		port  *Port
		frame can.Frame
		raw   rawTx
		fd    can.FDFrame
		dur   time.Duration
		bits  int
	}
	completeEvent clock.Event // bound once in New to completePending
	jamEvent      clock.Event // bound once in New to jamEnded

	// Stuck-dominant window: no transmission starts and no recessive bits
	// are observable before jamUntil.
	jamUntil time.Duration

	// Idle tracking for ISO 11898-1 bus-off recovery: while the bus is
	// idle, recovering nodes accrue recessive-bit sequences continuously.
	// recoveringCount tracks how many ports are mid-recovery so the idle
	// transitions and per-frame crediting — which run on every completed
	// frame — skip the port scan in the overwhelmingly common case of no
	// node recovering.
	idle            bool
	autoRecover     bool
	recoveringCount int

	// txPending counts queued transmissions across every port and queue
	// kind, so the post-completion tryStart — which usually finds an empty
	// bus — can skip the per-port queue scan entirely. Queues are always
	// emptied when a port detaches or goes bus-off, so a non-zero count
	// means the scan will find a contender.
	txPending int

	// pendingMask has bit i set iff ports[i] has at least one queued
	// transmission, so arbitration visits only contending ports instead of
	// scanning three queues on every port. Ports beyond the first 64 have
	// no bit (p.bit == 0); tryStart falls back to the full scan then.
	pendingMask uint64

	stats Stats
	start time.Duration
	win   loadWindow

	// Telemetry hooks; all nil (no-op) until Instrument is called.
	tel        *telemetry.Telemetry
	mDelivered *telemetry.Counter
	mCorrupted *telemetry.Counter
	mFaultDrop *telemetry.Counter
	mFaultDup  *telemetry.Counter
	mBits      *telemetry.Counter
	gLoad      *telemetry.Gauge
	hWireTime  *telemetry.Histogram
}

// New creates a bus on the given scheduler.
func New(sched *clock.Scheduler, opts ...Option) *Bus {
	if sched == nil {
		panic("bus: nil scheduler")
	}
	b := &Bus{
		sched:    sched,
		bitrate:  DefaultBitrate,
		queueCap: DefaultTxQueueCap,
		name:     "can",
		start:    sched.Now(),
		win:      loadWindow{bucket: DefaultLoadWindow / loadWindowBuckets},
	}
	for _, o := range opts {
		o(b)
	}
	b.completeEvent = b.completePending
	b.jamEvent = b.jamEnded
	return b
}

// txKind discriminates the in-flight transmission variant.
type txKind int

const (
	txClassic txKind = iota
	txRaw
	txFD
)

// completePending finishes the in-flight transmission recorded in pend.
// Arguments are copied out of pend at the call, so the completion handlers
// are free to start (and record) the next transmission.
func (b *Bus) completePending() {
	switch b.pend.kind {
	case txRaw:
		raw := b.pend.raw
		b.pend.raw = rawTx{} // release the bit slice and callback
		b.completeRaw(b.pend.port, raw, b.pend.dur)
	case txFD:
		b.completeFD(b.pend.port, b.pend.fd, b.pend.dur)
	default:
		b.complete(b.pend.port, b.pend.frame, b.pend.dur, b.pend.bits)
	}
}

// Name returns the telemetry label of the bus.
func (b *Bus) Name() string { return b.name }

// Instrument attaches the bus (and its current and future ports) to the
// telemetry plane: bus counters, the sliding-window load gauge, the wire
// time histogram, and the arbitration/error trace events. Passing nil is a
// no-op; the bus stays uninstrumented.
func (b *Bus) Instrument(t *telemetry.Telemetry) {
	if t == nil {
		return
	}
	b.tel = t
	reg := t.Registry
	lbl := telemetry.Label{Key: "bus", Value: b.name}
	b.mDelivered = reg.Counter("can_frames_delivered_total", "Successfully transmitted frames.", lbl)
	b.mCorrupted = reg.Counter("can_frames_corrupted_total", "Transmissions destroyed by corruption or protocol violation.", lbl)
	b.mFaultDrop = reg.Counter("can_frames_dropped_total", "Transmissions lost silently by fault injection.", lbl)
	b.mFaultDup = reg.Counter("can_frames_duplicated_total", "Transmissions delivered twice by fault injection.", lbl)
	b.mBits = reg.Counter("can_bits_transmitted_total", "Wire bits of successful frames, including interframe space.", lbl)
	b.gLoad = reg.Gauge("can_bus_load_ratio", "Fraction of the sliding virtual-time window the bus spent transmitting.", lbl)
	b.hWireTime = reg.Histogram("can_tx_wire_seconds", "Stuffed wire time per successful transmission.", nil, lbl)
	for _, p := range b.ports {
		p.instrument()
	}
}

// Bitrate returns the configured bit rate in bits per second.
func (b *Bus) Bitrate() int { return b.bitrate }

// Scheduler returns the clock the bus runs on.
func (b *Bus) Scheduler() *clock.Scheduler { return b.sched }

// SetCorruptor installs a fault-injection hook. Pass nil to remove it.
func (b *Bus) SetCorruptor(c Corruptor) { b.corrupt = c }

// SetInterceptor installs the generalised wire-fault hook. Pass nil to
// remove it. When both an interceptor and a corruptor are installed the
// corruptor is consulted only for frames the interceptor delivers.
func (b *Bus) SetInterceptor(i Interceptor) { b.intercept = i }

// SetAutoRecovery switches ISO bus-off auto-recovery for every currently
// connected port and sets the default for ports connected later.
func (b *Bus) SetAutoRecovery(on bool) {
	b.autoRecover = on
	for _, p := range b.ports {
		p.SetAutoRecover(on)
	}
}

// Jammed reports whether a stuck-dominant window is currently holding the
// bus.
func (b *Bus) Jammed() bool { return b.sched.Now() < b.jamUntil }

// Jam holds the bus dominant for d (a stuck-dominant transceiver or a
// deliberate jamming attack): no transmission can start and no recessive
// bits are observable, so bus-off recovery pauses. An in-flight
// transmission completes first — the jam takes effect at the next
// arbitration opportunity. Overlapping jams extend the window.
func (b *Bus) Jam(d time.Duration) {
	if d <= 0 {
		return
	}
	now := b.sched.Now()
	until := now + d
	if until <= b.jamUntil {
		return // already jammed at least that long
	}
	extending := b.jamUntil > now
	if extending {
		b.stats.JamTime += until - b.jamUntil
	} else {
		b.stats.JamTime += d
	}
	b.jamUntil = until
	b.leaveIdle() // dominant bits interrupt recessive observation
	if !extending {
		b.sched.AtEvent(until, b.jamEvent)
	}
}

// jamEnded resumes arbitration when the dominant window elapses. If the
// window was extended meanwhile, it re-arms for the new deadline.
func (b *Bus) jamEnded() {
	if b.sched.Now() < b.jamUntil {
		b.sched.AtEvent(b.jamUntil, b.jamEvent)
		return
	}
	b.tryStart()
}

// Tap registers a passive listener that observes every successfully
// delivered frame, like a wiretap or a device on the OBD port. Taps cannot
// transmit and have no error state.
func (b *Bus) Tap(r Receiver) {
	if r == nil {
		panic("bus: nil tap receiver")
	}
	b.taps = append(b.taps, r)
}

// Stats returns a snapshot of the bus counters.
func (b *Bus) Stats() Stats { return b.stats }

// Load returns the fraction of elapsed time the bus spent transmitting,
// in [0,1].
func (b *Bus) Load() float64 {
	elapsed := b.sched.Now() - b.start
	if elapsed <= 0 {
		return 0
	}
	return float64(b.stats.BusyTime) / float64(elapsed)
}

// FrameTime returns the on-wire duration of a frame at the bus bitrate,
// including interframe space.
func (b *Bus) FrameTime(f can.Frame) time.Duration {
	bits := can.WireBitsWithIFS(f)
	return time.Duration(bits) * time.Second / time.Duration(b.bitrate)
}

// Connect attaches a named node to the bus and returns its port.
func (b *Bus) Connect(name string) *Port {
	p := &Port{
		bus:         b,
		name:        name,
		state:       ErrorActive,
		autoRecover: b.autoRecover,
	}
	if idx := len(b.ports); idx < 64 {
		p.bit = 1 << idx
	}
	b.ports = append(b.ports, p)
	if b.tel != nil {
		p.instrument()
	}
	return p
}

// Reset returns the bus and every connected port to the freshly-
// constructed state for world reuse. Configuration survives — bitrate,
// queue capacity, name, taps, receivers, fault hooks, telemetry handles,
// the auto-recovery default — while dynamic state is cleared: the
// in-flight transmission, jam window, idle/recovery tracking, lifetime
// and sliding-window statistics, and each port's queues, error counters
// and fault-confinement state. The caller must Reset the scheduler
// first, so no completion or recovery event from the previous life can
// fire; the load-window and statistics baselines restart at the
// scheduler's (new) current instant. Steady state allocates nothing.
func (b *Bus) Reset() {
	b.busy = false
	b.delivering = false
	b.pend.kind = txClassic
	b.pend.port = nil
	b.pend.frame = can.Frame{}
	b.pend.raw = rawTx{}
	b.pend.fd = can.FDFrame{}
	b.pend.dur = 0
	b.pend.bits = 0
	b.jamUntil = 0
	b.idle = false
	b.recoveringCount = 0
	b.txPending = 0
	b.pendingMask = 0
	b.stats = Stats{}
	b.start = b.sched.Now()
	b.win.reset()
	for _, p := range b.ports {
		p.reset()
	}
}

// tryStart begins the highest-priority pending transmission if the bus is
// idle. Called whenever a frame is queued or a transmission completes.
// Raw bit sequences (SendRaw) contend in the same arbitration using the
// identifier encoded in their leading bits.
func (b *Bus) tryStart() {
	if b.busy || b.delivering {
		return
	}
	if b.sched.Now() < b.jamUntil {
		return // stuck-dominant window: arbitration resumes at jamEnded
	}
	if b.txPending == 0 {
		b.enterIdle()
		return
	}
	var winner *Port
	var winnerID can.ID
	winnerKind := 0 // 0 classic, 1 raw, 2 fd
	contenders := 0
	if len(b.ports) <= 64 {
		// Bit index equals port index, so this visits contenders in attach
		// order — the same tie-break as the full scan below.
		for m := b.pendingMask; m != 0; m &= m - 1 {
			p := b.ports[mathbits.TrailingZeros64(m)]
			if p.detached || p.state == BusOff {
				continue
			}
			var pending bool
			winner, winnerID, winnerKind, pending = arbConsider(p, winner, winnerID, winnerKind)
			if pending {
				contenders++
			}
		}
	} else {
		for _, p := range b.ports {
			if p.detached || p.state == BusOff {
				continue
			}
			var pending bool
			winner, winnerID, winnerKind, pending = arbConsider(p, winner, winnerID, winnerKind)
			if pending {
				contenders++
			}
		}
	}
	if winner == nil {
		b.enterIdle()
		return
	}
	b.leaveIdle()
	// The uncontended case (one pending sender) has no losers to charge;
	// skip the loser rescan unless a tracer wants the arb-won event too.
	if contenders > 1 || b.tel != nil {
		b.noteArbitration(winner, winnerID)
	}
	switch winnerKind {
	case 1:
		b.startRaw(winner)
		return
	case 2:
		b.startFD(winner)
		return
	}
	frame := winner.txq.pop()
	winner.notePop()
	b.busy = true
	bits := can.WireBitsWithIFS(frame)
	dur := time.Duration(bits) * time.Second / time.Duration(b.bitrate)
	b.pend.kind, b.pend.port, b.pend.frame = txClassic, winner, frame
	b.pend.dur, b.pend.bits = dur, bits
	b.sched.AfterEvent(dur, b.completeEvent)
}

// arbConsider evaluates one port's queue heads against the current
// arbitration winner and reports whether the port contended. The winner
// is replaced only on a strictly lower identifier, so ties keep the
// earlier port — callers must therefore visit ports in attach order.
func arbConsider(p *Port, winner *Port, winnerID can.ID, winnerKind int) (*Port, can.ID, int, bool) {
	pending := false
	if p.txq.len() > 0 {
		pending = true
		if id := p.txq.front().ID; winner == nil || id < winnerID {
			winner, winnerID, winnerKind = p, id, 0
		}
	}
	if p.rawq.len() > 0 {
		pending = true
		if id := rawArbID(p.rawq.front().bits); winner == nil || id < winnerID {
			winner, winnerID, winnerKind = p, id, 1
		}
	}
	if p.fdq.len() > 0 {
		pending = true
		if id := p.fdq.front().ID; winner == nil || id < winnerID {
			winner, winnerID, winnerKind = p, id, 2
		}
	}
	return winner, winnerID, winnerKind, pending
}

// complete finishes a transmission: updates error counters, delivers to
// receivers and taps, then arbitrates the next frame.
func (b *Bus) complete(tx *Port, frame can.Frame, dur time.Duration, bits int) {
	b.busy = false
	b.noteBusy(dur)
	b.creditFrameEnd()

	action := TxDeliver
	if b.intercept != nil {
		action = b.intercept(frame)
	}
	if action == TxDeliver && b.corrupt != nil && b.corrupt(frame) {
		action = TxCorrupt
	}

	if action == TxCorrupt {
		b.noteErrorFrame(tx, frame.ID, dur)
		for _, p := range b.ports {
			if p != tx && !p.detached && p.state != BusOff {
				p.bumpREC(1)
			}
		}
		b.tryStart()
		return
	}

	b.noteDelivered(tx, frame.ID, dur, bits)

	if action == TxDrop {
		// The wire carried the frame and the transmitter saw its ACK, but
		// no receiver was handed it.
		b.stats.FramesDropped++
		b.mFaultDrop.Inc()
		b.tryStart()
		return
	}

	msg := Message{Frame: frame, Time: b.sched.Now(), Origin: tx.name}
	passes := 1
	if action == TxDuplicate {
		passes = 2
		b.stats.FramesDuplicated++
		b.mFaultDup.Inc()
	}
	b.delivering = true
	for i := 0; i < passes; i++ {
		for _, p := range b.ports {
			if p == tx || p.detached || p.state == BusOff || p.recv == nil {
				continue
			}
			p.noteRx()
			p.recv(msg)
		}
		for _, t := range b.taps {
			t(msg)
		}
	}
	b.delivering = false
	b.tryStart()
}

// --- Bus-off recovery (ISO 11898-1 §8.3.4) ----------------------------------
//
// A bus-off node with auto-recovery enabled monitors the bus for 128
// occurrences of 11 consecutive recessive bits and then rejoins as
// error-active with cleared counters. Sequences accrue from two sources:
// one per observed end of frame (EOF or error delimiter plus the
// intermission field is at least 11 recessive bits), and continuously while
// the bus is idle (one sequence per 11 bit times). Stuck-dominant jams
// interrupt the idle accrual — a jammed bus shows no recessive bits.

// seqTime returns the wire time of 11 recessive bits at the nominal rate.
func (b *Bus) seqTime() time.Duration {
	return time.Duration(recessiveSeqBits) * time.Second / time.Duration(b.bitrate)
}

// enterIdle marks the bus idle and arms a rejoin timer for every
// recovering port at its exact remaining recessive time.
func (b *Bus) enterIdle() {
	if b.idle {
		return
	}
	b.idle = true
	if b.recoveringCount == 0 {
		return
	}
	for _, p := range b.ports {
		if p.recovering {
			p.recIdleStart = b.sched.Now()
			b.armRecovery(p)
		}
	}
}

// leaveIdle credits the elapsed idle time to recovering ports (whole
// 11-bit sequences only, counted per port from when its accrual began) and
// cancels their rejoin timers.
func (b *Bus) leaveIdle() {
	if !b.idle {
		return
	}
	b.idle = false
	if b.recoveringCount == 0 {
		return
	}
	for _, p := range b.ports {
		if !p.recovering {
			continue
		}
		if p.recTimer != nil {
			p.recTimer.Stop()
			p.recTimer = nil
		}
		p.recSeq += int((b.sched.Now() - p.recIdleStart) / b.seqTime())
		if p.recSeq >= busOffRecoverySequences {
			// The rejoin instant coincides with this event; the timer may
			// be ordered after us in the queue, so rejoin directly.
			b.rejoin(p)
		}
	}
}

// armRecovery schedules p's rejoin assuming the bus stays idle.
func (b *Bus) armRecovery(p *Port) {
	remaining := busOffRecoverySequences - p.recSeq
	if remaining <= 0 {
		b.rejoin(p)
		return
	}
	p.recTimer = b.sched.After(time.Duration(remaining)*b.seqTime(), func() {
		p.recTimer = nil
		b.rejoin(p)
	})
}

// beginRecovery starts the recessive-bit count for a port that just went
// bus-off. Called from the state machine when auto-recovery is enabled.
func (b *Bus) beginRecovery(p *Port) {
	if p.recovering {
		return
	}
	p.recovering = true
	b.recoveringCount++
	p.recSeq = 0
	if b.idle {
		// The node went bus-off on an idle bus (e.g. SetAutoRecover on an
		// already-off node); its idle accrual starts from this instant.
		p.recIdleStart = b.sched.Now()
		b.armRecovery(p)
	}
}

// creditFrameEnd credits one recessive sequence to every recovering port at
// an observed end of frame, rejoining any that reach the threshold.
func (b *Bus) creditFrameEnd() {
	if b.recoveringCount == 0 {
		return
	}
	for _, p := range b.ports {
		if !p.recovering {
			continue
		}
		p.recSeq++
		if p.recSeq >= busOffRecoverySequences {
			b.rejoin(p)
		}
	}
}

// rejoin returns a recovered node to error-active with cleared counters
// (the controller re-initialises after the recovery sequence).
func (b *Bus) rejoin(p *Port) {
	if !p.recovering {
		return
	}
	p.recovering = false
	b.recoveringCount--
	if p.recTimer != nil {
		p.recTimer.Stop()
		p.recTimer = nil
	}
	p.tec, p.rec = 0, 0
	p.state = ErrorActive
	p.stats.Recoveries++
	p.noteStateChange()
	p.noteRecovery()
}

// --- Telemetry accounting ---------------------------------------------------
//
// The note* helpers centralise the counter and trace updates shared by the
// classic, raw and FD completion paths. Every telemetry handle is nil when
// the bus is uninstrumented, so the added cost is a few predictable
// branches.

// noteArbitration charges an arbitration loss to every port that contended
// and lost against the winner, and emits the won/lost trace events.
func (b *Bus) noteArbitration(winner *Port, winnerID can.ID) {
	for _, p := range b.ports {
		if p == winner || p.detached || p.state == BusOff {
			continue
		}
		if p.txq.len() == 0 && p.rawq.len() == 0 && p.fdq.len() == 0 {
			continue
		}
		p.stats.ArbLosses++
		p.mArbLoss.Inc()
		if b.tel != nil {
			b.tel.Emit(telemetry.Event{
				At: b.sched.Now(), Kind: telemetry.EvArbLost,
				Actor: p.name, Name: "arb-lost", ID: uint32(winnerID),
			})
		}
	}
	if b.tel != nil {
		b.tel.Emit(telemetry.Event{
			At: b.sched.Now(), Kind: telemetry.EvArbWon,
			Actor: winner.name, Name: "arb-won", ID: uint32(winnerID),
		})
	}
}

// noteBusy accrues bus occupancy into the lifetime and sliding-window
// accounts and refreshes the load gauge.
func (b *Bus) noteBusy(dur time.Duration) {
	b.stats.BusyTime += dur
	now := b.sched.Now()
	b.win.add(now, dur)
	if b.tel != nil {
		b.gLoad.Set(b.win.load(now))
		b.tel.Advance(now)
	}
}

// noteErrorFrame accounts a destroyed transmission on the transmitter.
func (b *Bus) noteErrorFrame(tx *Port, id can.ID, dur time.Duration) {
	b.stats.FramesCorrupted++
	tx.bumpTEC(8)
	tx.stats.TxErrors++
	b.mCorrupted.Inc()
	if b.tel != nil {
		b.tel.Emit(telemetry.Event{
			At: b.sched.Now() - dur, Dur: dur, Kind: telemetry.EvErrorFrame,
			Actor: tx.name, Name: "error-frame", ID: uint32(id),
		})
	}
}

// noteDelivered accounts a successful transmission on bus and transmitter.
func (b *Bus) noteDelivered(tx *Port, id can.ID, dur time.Duration, bits int) {
	b.stats.FramesDelivered++
	b.stats.BitsTransmitted += uint64(bits)
	tx.decTEC()
	tx.stats.TxFrames++
	b.mDelivered.Inc()
	b.mBits.Add(uint64(bits))
	tx.mTx.Inc()
	if b.tel != nil {
		b.hWireTime.ObserveDuration(dur)
		b.tel.Emit(telemetry.Event{
			At: b.sched.Now() - dur, Dur: dur, Kind: telemetry.EvTx,
			Actor: tx.name, Name: "tx", ID: uint32(id), N: uint64(bits),
		})
	}
}
