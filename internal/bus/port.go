package bus

import (
	"fmt"

	"repro/internal/can"
	"repro/internal/telemetry"
)

// PortStats is a snapshot of per-node counters.
type PortStats struct {
	// TxFrames counts frames this node successfully transmitted.
	TxFrames uint64
	// RxFrames counts frames this node received.
	RxFrames uint64
	// TxErrors counts destroyed transmissions attributed to this node.
	TxErrors uint64
	// Dropped counts frames rejected at Send time (full queue, bus-off...).
	Dropped uint64
	// ArbLosses counts arbitration rounds this node contended in and lost
	// to a higher-priority (lower) identifier.
	ArbLosses uint64
}

// Port is a node's attachment to the bus. A port both transmits (Send) and
// receives (SetReceiver). Ports are created by Bus.Connect.
type Port struct {
	bus      *Bus
	name     string
	recv     Receiver
	fdRecv   FDReceiver
	txq      []can.Frame
	rawq     []rawTx
	fdq      []can.FDFrame
	detached bool

	state NodeState
	tec   int // transmit error counter
	rec   int // receive error counter

	stats PortStats

	// Telemetry handles; nil (no-op) until the bus is instrumented.
	mTx      *telemetry.Counter
	mRx      *telemetry.Counter
	mArbLoss *telemetry.Counter
	mDropped *telemetry.Counter
}

// instrument registers the per-port counter series. Called by
// Bus.Instrument for existing ports and by Connect afterwards.
func (p *Port) instrument() {
	reg := p.bus.tel.Reg()
	busLbl := telemetry.Label{Key: "bus", Value: p.bus.name}
	portLbl := telemetry.Label{Key: "port", Value: p.name}
	p.mTx = reg.Counter("can_port_tx_frames_total", "Frames this port successfully transmitted.", busLbl, portLbl)
	p.mRx = reg.Counter("can_port_rx_frames_total", "Frames this port received.", busLbl, portLbl)
	p.mArbLoss = reg.Counter("can_port_arb_losses_total", "Arbitration rounds this port lost.", busLbl, portLbl)
	p.mDropped = reg.Counter("can_port_dropped_total", "Frames rejected at Send time (full queue, bus-off, detached).", busLbl, portLbl)
}

// noteRx accounts one received frame.
func (p *Port) noteRx() {
	p.stats.RxFrames++
	p.mRx.Inc()
	p.decREC()
}

// noteDrop accounts one rejected Send.
func (p *Port) noteDrop() {
	p.stats.Dropped++
	p.mDropped.Inc()
}

// Name returns the node name given at Connect time.
func (p *Port) Name() string { return p.name }

// State returns the node's fault-confinement state.
func (p *Port) State() NodeState { return p.state }

// ErrorCounters returns the transmit and receive error counters.
func (p *Port) ErrorCounters() (tec, rec int) { return p.tec, p.rec }

// Stats returns a snapshot of the node counters.
func (p *Port) Stats() PortStats { return p.stats }

// SetReceiver installs the frame delivery callback. Passing nil makes the
// node transmit-only.
func (p *Port) SetReceiver(r Receiver) { p.recv = r }

// QueueLen returns the number of frames waiting in the transmit queue.
func (p *Port) QueueLen() int { return len(p.txq) }

// Send queues a frame for transmission. The frame is validated first. It
// contends for the bus under standard CAN arbitration: the lowest pending
// identifier transmits next.
func (p *Port) Send(f can.Frame) error {
	if p.detached {
		p.noteDrop()
		return ErrDetached
	}
	if p.state == BusOff {
		p.noteDrop()
		return ErrBusOff
	}
	if err := f.Validate(); err != nil {
		p.noteDrop()
		return fmt.Errorf("send on %s: %w", p.name, err)
	}
	if len(p.txq) >= p.bus.queueCap {
		p.noteDrop()
		return fmt.Errorf("send on %s: %w", p.name, ErrTxQueueFull)
	}
	p.txq = append(p.txq, f)
	p.bus.tryStart()
	return nil
}

// Detach removes the node from the bus. Pending transmissions are dropped.
func (p *Port) Detach() {
	p.detached = true
	p.txq = nil
	p.rawq = nil
	p.fdq = nil
}

// Reattach reconnects a detached node (e.g. after a simulated power cycle)
// and clears its error state.
func (p *Port) Reattach() {
	p.detached = false
	p.ResetErrors()
}

// ResetErrors clears the error counters and returns the node to
// error-active, modelling the controller reset an ECU performs on power-up
// (this is how a bus-off node recovers).
func (p *Port) ResetErrors() {
	prev := p.state
	p.tec, p.rec = 0, 0
	p.state = ErrorActive
	if p.state != prev {
		p.noteStateChange()
	}
	p.bus.tryStart()
}

func (p *Port) bumpTEC(n int) {
	p.tec += n
	p.updateState()
}

func (p *Port) bumpREC(n int) {
	p.rec += n
	p.updateState()
}

func (p *Port) decTEC() {
	if p.tec > 0 {
		p.tec--
	}
	p.updateState()
}

func (p *Port) decREC() {
	if p.rec > 0 {
		p.rec--
	}
	p.updateState()
}

func (p *Port) updateState() {
	prev := p.state
	switch {
	case p.tec >= busOffThreshold:
		if p.state != BusOff {
			p.state = BusOff
			p.txq = nil // controller drops its mailboxes on bus-off
			p.rawq = nil
			p.fdq = nil
		}
	case p.tec >= errorPassiveThreshold || p.rec >= errorPassiveThreshold:
		if p.state != BusOff {
			p.state = ErrorPassive
		}
	default:
		if p.state != BusOff {
			p.state = ErrorActive
		}
	}
	if p.state != prev {
		p.noteStateChange()
	}
}

// noteStateChange records a fault-confinement transition. Transitions are
// rare, so the lazy per-state counter registration is off the hot path.
func (p *Port) noteStateChange() {
	tel := p.bus.tel
	if tel == nil {
		return
	}
	st := p.state.String()
	tel.Reg().Counter("can_state_transitions_total",
		"Fault-confinement state transitions, by resulting state.",
		telemetry.Label{Key: "bus", Value: p.bus.name},
		telemetry.Label{Key: "port", Value: p.name},
		telemetry.Label{Key: "state", Value: st}).Inc()
	tel.Emit(telemetry.Event{
		At: p.bus.sched.Now(), Kind: telemetry.EvStateChange,
		Actor: p.name, Name: st, N: uint64(p.tec),
	})
}
