package bus

import (
	"fmt"
	"time"

	"repro/internal/can"
	"repro/internal/clock"
	"repro/internal/telemetry"
)

// PortStats is a snapshot of per-node counters.
type PortStats struct {
	// TxFrames counts frames this node successfully transmitted.
	TxFrames uint64
	// RxFrames counts frames this node received.
	RxFrames uint64
	// TxErrors counts destroyed transmissions attributed to this node.
	TxErrors uint64
	// Dropped counts frames rejected at Send time (full queue, bus-off...).
	Dropped uint64
	// ArbLosses counts arbitration rounds this node contended in and lost
	// to a higher-priority (lower) identifier.
	ArbLosses uint64
	// BusOffs counts entries into the bus-off state.
	BusOffs uint64
	// Recoveries counts automatic bus-off recoveries (ISO 11898-1 rejoin
	// after 128×11 recessive bits; manual ResetErrors is not counted).
	Recoveries uint64
}

// Port is a node's attachment to the bus. A port both transmits (Send) and
// receives (SetReceiver). Ports are created by Bus.Connect.
type Port struct {
	bus      *Bus
	name     string
	recv     Receiver
	fdRecv   FDReceiver
	txq      ring[can.Frame]
	rawq     ring[rawTx]
	fdq      ring[can.FDFrame]
	detached bool

	// bit is this port's position in the bus's pendingMask (zero for
	// ports past the first 64, which the mask cannot represent).
	bit uint64

	state NodeState
	tec   int // transmit error counter
	rec   int // receive error counter

	// Bus-off auto-recovery state (ISO 11898-1 §8.3.4).
	autoRecover  bool
	recovering   bool
	recSeq       int           // recessive 11-bit sequences observed
	recIdleStart time.Duration // when this port's idle accrual began
	recTimer     *clock.Timer

	stats PortStats

	// Telemetry handles; nil (no-op) until the bus is instrumented.
	mTx      *telemetry.Counter
	mRx      *telemetry.Counter
	mArbLoss *telemetry.Counter
	mDropped *telemetry.Counter
	gState   *telemetry.Gauge
}

// instrument registers the per-port counter series. Called by
// Bus.Instrument for existing ports and by Connect afterwards.
func (p *Port) instrument() {
	reg := p.bus.tel.Reg()
	busLbl := telemetry.Label{Key: "bus", Value: p.bus.name}
	portLbl := telemetry.Label{Key: "port", Value: p.name}
	p.mTx = reg.Counter("can_port_tx_frames_total", "Frames this port successfully transmitted.", busLbl, portLbl)
	p.mRx = reg.Counter("can_port_rx_frames_total", "Frames this port received.", busLbl, portLbl)
	p.mArbLoss = reg.Counter("can_port_arb_losses_total", "Arbitration rounds this port lost.", busLbl, portLbl)
	p.mDropped = reg.Counter("can_port_dropped_total", "Frames rejected at Send time (full queue, bus-off, detached).", busLbl, portLbl)
	p.gState = reg.Gauge("bus_node_state", "Fault-confinement state of the node (1 error-active, 2 error-passive, 3 bus-off).", busLbl, portLbl)
	p.gState.Set(float64(p.state))
}

// noteRx accounts one received frame.
func (p *Port) noteRx() {
	p.stats.RxFrames++
	p.mRx.Inc()
	p.decREC()
}

// noteDrop accounts one rejected Send.
func (p *Port) noteDrop() {
	p.stats.Dropped++
	p.mDropped.Inc()
}

// Name returns the node name given at Connect time.
func (p *Port) Name() string { return p.name }

// State returns the node's fault-confinement state.
func (p *Port) State() NodeState { return p.state }

// ErrorCounters returns the transmit and receive error counters.
func (p *Port) ErrorCounters() (tec, rec int) { return p.tec, p.rec }

// Stats returns a snapshot of the node counters.
func (p *Port) Stats() PortStats { return p.stats }

// SetReceiver installs the frame delivery callback. Passing nil makes the
// node transmit-only.
func (p *Port) SetReceiver(r Receiver) { p.recv = r }

// QueueLen returns the number of frames waiting in the transmit queue.
func (p *Port) QueueLen() int { return p.txq.len() }

// Send queues a frame for transmission. The frame is validated first. It
// contends for the bus under standard CAN arbitration: the lowest pending
// identifier transmits next.
func (p *Port) Send(f can.Frame) error {
	if p.detached {
		p.noteDrop()
		return ErrDetached
	}
	if p.state == BusOff {
		p.noteDrop()
		return ErrBusOff
	}
	if err := f.Validate(); err != nil {
		p.noteDrop()
		return fmt.Errorf("send on %s: %w", p.name, err)
	}
	if p.txq.len() >= p.bus.queueCap {
		p.noteDrop()
		return fmt.Errorf("send on %s: %w", p.name, ErrTxQueueFull)
	}
	p.txq.push(f)
	p.notePush()
	p.bus.tryStart()
	return nil
}

// notePush accounts one newly queued transmission in the bus-wide
// pending count and contention mask.
func (p *Port) notePush() {
	p.bus.txPending++
	p.bus.pendingMask |= p.bit
}

// notePop accounts one dequeued transmission, clearing the port's
// contention bit when its last queued frame left.
func (p *Port) notePop() {
	p.bus.txPending--
	if p.txq.len()|p.rawq.len()|p.fdq.len() == 0 {
		p.bus.pendingMask &^= p.bit
	}
}

// SetAutoRecover switches ISO bus-off auto-recovery for this node. Enabling
// it on a node already in bus-off starts the recovery count immediately;
// disabling it cancels an in-progress recovery.
func (p *Port) SetAutoRecover(on bool) {
	p.autoRecover = on
	if on && p.state == BusOff && !p.detached {
		p.bus.beginRecovery(p)
	}
	if !on {
		p.cancelRecovery()
	}
}

// AutoRecover reports whether ISO bus-off auto-recovery is enabled.
func (p *Port) AutoRecover() bool { return p.autoRecover }

// Recovering reports whether the node is currently counting recessive bits
// toward a bus-off rejoin.
func (p *Port) Recovering() bool { return p.recovering }

// cancelRecovery abandons an in-progress bus-off recovery.
func (p *Port) cancelRecovery() {
	if p.recovering {
		p.bus.recoveringCount--
	}
	p.recovering = false
	p.recSeq = 0
	if p.recTimer != nil {
		p.recTimer.Stop()
		p.recTimer = nil
	}
}

// dropQueued empties all three transmit queues, keeping the bus-wide
// pending count consistent.
func (p *Port) dropQueued() {
	p.bus.txPending -= p.txq.len() + p.rawq.len() + p.fdq.len()
	p.bus.pendingMask &^= p.bit
	p.txq.clear()
	p.rawq.clear()
	p.fdq.clear()
}

// reset returns the port to its freshly-connected state for world reuse:
// queues emptied, error-active with zeroed counters, attached, recovery
// abandoned, statistics cleared. The receiver callback, telemetry
// handles and the bus's auto-recovery default are retained. Called from
// Bus.Reset after the scheduler has been reset, so the stale recovery
// timer handle (already invalidated by the scheduler's generation bump)
// is simply dropped.
func (p *Port) reset() {
	p.dropQueued()
	p.detached = false
	p.state = ErrorActive
	p.tec, p.rec = 0, 0
	p.autoRecover = p.bus.autoRecover
	p.recovering = false
	p.recSeq = 0
	p.recIdleStart = 0
	p.recTimer = nil
	p.stats = PortStats{}
	p.gState.Set(float64(p.state))
}

// Detach removes the node from the bus. Pending transmissions are dropped.
func (p *Port) Detach() {
	p.detached = true
	p.dropQueued()
	p.cancelRecovery()
}

// Reattach reconnects a detached node (e.g. after a simulated power cycle)
// and clears its error state.
func (p *Port) Reattach() {
	p.detached = false
	p.ResetErrors()
}

// ResetErrors clears the error counters and returns the node to
// error-active, modelling the controller reset an ECU performs on power-up
// (this is how a bus-off node recovers).
func (p *Port) ResetErrors() {
	p.cancelRecovery()
	prev := p.state
	p.tec, p.rec = 0, 0
	p.state = ErrorActive
	if p.state != prev {
		p.noteStateChange()
	}
	p.bus.tryStart()
}

func (p *Port) bumpTEC(n int) {
	p.tec += n
	p.updateState()
}

func (p *Port) bumpREC(n int) {
	p.rec += n
	p.updateState()
}

func (p *Port) decTEC() {
	// Already at zero: the counters are unchanged, so the state (always
	// kept consistent with the counters) cannot change either. This is
	// the per-delivered-frame path, so the skip matters.
	if p.tec == 0 {
		return
	}
	p.tec--
	p.updateState()
}

func (p *Port) decREC() {
	if p.rec == 0 {
		return
	}
	p.rec--
	p.updateState()
}

func (p *Port) updateState() {
	prev := p.state
	switch {
	case p.tec >= busOffThreshold:
		if p.state != BusOff {
			p.state = BusOff
			p.dropQueued() // controller drops its mailboxes on bus-off
			p.stats.BusOffs++
			if p.autoRecover {
				p.bus.beginRecovery(p)
			}
		}
	case p.tec >= errorPassiveThreshold || p.rec >= errorPassiveThreshold:
		if p.state != BusOff {
			p.state = ErrorPassive
		}
	default:
		if p.state != BusOff {
			p.state = ErrorActive
		}
	}
	if p.state != prev {
		p.noteStateChange()
	}
}

// noteStateChange records a fault-confinement transition. Transitions are
// rare, so the lazy per-state counter registration is off the hot path.
func (p *Port) noteStateChange() {
	p.gState.Set(float64(p.state))
	tel := p.bus.tel
	if tel == nil {
		return
	}
	st := p.state.String()
	tel.Reg().Counter("can_state_transitions_total",
		"Fault-confinement state transitions, by resulting state.",
		telemetry.Label{Key: "bus", Value: p.bus.name},
		telemetry.Label{Key: "port", Value: p.name},
		telemetry.Label{Key: "state", Value: st}).Inc()
	tel.Emit(telemetry.Event{
		At: p.bus.sched.Now(), Kind: telemetry.EvStateChange,
		Actor: p.name, Name: st, N: uint64(p.tec),
	})
}

// noteRecovery records a completed ISO bus-off recovery.
func (p *Port) noteRecovery() {
	tel := p.bus.tel
	if tel == nil {
		return
	}
	tel.Reg().Counter("can_busoff_recoveries_total",
		"Automatic bus-off recoveries (ISO 11898-1 rejoin).",
		telemetry.Label{Key: "bus", Value: p.bus.name},
		telemetry.Label{Key: "port", Value: p.name}).Inc()
	tel.Emit(telemetry.Event{
		At: p.bus.sched.Now(), Kind: telemetry.EvRecover,
		Actor: p.name, Name: "bus-off-recovered",
	})
}
