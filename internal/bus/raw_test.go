package bus

import (
	"errors"
	"testing"
	"time"

	"repro/internal/can"
	"repro/internal/clock"
)

func TestSendRawValidBitsDeliverAsFrame(t *testing.T) {
	s, b := newBus(t)
	tx := b.Connect("tx")
	rx := b.Connect("rx")
	var got []can.Frame
	rx.SetReceiver(func(m Message) { got = append(got, m.Frame) })

	want := can.MustNew(0x123, []byte{0xDE, 0xAD})
	var result RawResult
	if err := tx.SendRaw(can.EncodeBits(want), func(r RawResult) { result = r }); err != nil {
		t.Fatal(err)
	}
	s.RunUntil(time.Second)
	if len(got) != 1 || !got[0].Equal(want) {
		t.Fatalf("got %v", got)
	}
	if result != RawDelivered {
		t.Fatalf("result = %v", result)
	}
}

func TestSendRawCorruptBitsTriggerErrorFrame(t *testing.T) {
	s, b := newBus(t)
	tx := b.Connect("tx")
	rx := b.Connect("rx")
	count := 0
	rx.SetReceiver(func(Message) { count++ })

	bits := can.EncodeBits(can.MustNew(0x123, []byte{0xDE, 0xAD}))
	bits[20] ^= 1 // corrupt a payload bit: CRC mismatch
	var result RawResult
	tx.SendRaw(bits, func(r RawResult) { result = r })
	s.RunUntil(time.Second)
	if count != 0 {
		t.Fatal("corrupt bits delivered as a frame")
	}
	if result != RawErrorFrame {
		t.Fatalf("result = %v", result)
	}
	tec, _ := tx.ErrorCounters()
	if tec != 8 {
		t.Fatalf("tx TEC = %d, want 8", tec)
	}
	_, rec := rx.ErrorCounters()
	if rec != 1 {
		t.Fatalf("rx REC = %d, want 1", rec)
	}
	if b.Stats().FramesCorrupted != 1 {
		t.Fatal("corrupted counter not bumped")
	}
}

func TestSendRawOccupiesBus(t *testing.T) {
	s, b := newBus(t)
	tx := b.Connect("tx")
	b.Connect("rx").SetReceiver(func(Message) {})
	bits := can.EncodeBits(can.MustNew(0x001, make([]byte, 8)))
	bits[30] ^= 1
	tx.SendRaw(bits, nil)
	s.RunUntil(time.Second)
	if b.Stats().BusyTime == 0 {
		t.Fatal("raw transmission did not occupy the bus")
	}
}

func TestSendRawArbitratesAgainstFrames(t *testing.T) {
	s, b := newBus(t)
	a := b.Connect("a")
	c := b.Connect("c")
	rx := b.Connect("rx")
	var order []can.ID
	rx.SetReceiver(func(m Message) { order = append(order, m.Frame.ID) })

	// Occupy the bus, then queue a raw sequence with a LOW id on one port
	// and a normal frame with a HIGH id on another; the raw wins.
	a.Send(can.MustNew(0x7FF, make([]byte, 8)))
	c.SendRaw(can.EncodeBits(can.MustNew(0x050, []byte{1})), nil)
	a.Send(can.MustNew(0x400, []byte{2}))
	s.RunUntil(time.Second)
	want := []can.ID{0x7FF, 0x050, 0x400}
	if len(order) != 3 || order[1] != want[1] || order[2] != want[2] {
		t.Fatalf("order = %v, want %v", order, want)
	}
}

func TestSendRawRepeatedCorruptionDrivesBusOff(t *testing.T) {
	s, b := newBus(t)
	tx := b.Connect("attacker")
	b.Connect("victim").SetReceiver(func(Message) {})
	bits := can.EncodeBits(can.MustNew(0x100, []byte{1, 2, 3}))
	bits[25] ^= 1
	for i := 0; i < 40; i++ {
		if err := tx.SendRaw(bits, nil); err != nil {
			break
		}
		s.RunFor(10 * time.Millisecond)
	}
	if tx.State() != BusOff {
		t.Fatalf("attacker state = %v, want bus-off (32 error frames x8 TEC)", tx.State())
	}
	if err := tx.SendRaw(bits, nil); !errors.Is(err, ErrBusOff) {
		t.Fatalf("err = %v, want ErrBusOff", err)
	}
}

func TestSendRawVictimAccumulatesREC(t *testing.T) {
	s, b := newBus(t)
	tx := b.Connect("attacker")
	victim := b.Connect("victim")
	victim.SetReceiver(func(Message) {})
	bits := can.EncodeBits(can.MustNew(0x100, []byte{9}))
	bits[22] ^= 1
	for i := 0; i < 130; i++ {
		tx.ResetErrors() // keep the attacker alive (it controls its own node)
		tx.SendRaw(bits, nil)
		s.RunFor(time.Millisecond)
	}
	if victim.State() != ErrorPassive {
		_, rec := victim.ErrorCounters()
		t.Fatalf("victim state = %v (rec=%d), want error-passive", victim.State(), rec)
	}
}

func TestSendRawDetachedAndQueueLimits(t *testing.T) {
	s := clock.New()
	b := New(s, WithTxQueueCap(1))
	tx := b.Connect("tx")
	bits := can.EncodeBits(can.MustNew(0x700, nil))
	// First starts transmitting... raw queue pops at start, so fill it.
	if err := tx.SendRaw(bits, nil); err != nil {
		t.Fatal(err)
	}
	if err := tx.SendRaw(bits, nil); err != nil {
		t.Fatal(err)
	}
	if err := tx.SendRaw(bits, nil); !errors.Is(err, ErrTxQueueFull) {
		t.Fatalf("err = %v, want ErrTxQueueFull", err)
	}
	tx.Detach()
	if err := tx.SendRaw(bits, nil); !errors.Is(err, ErrDetached) {
		t.Fatalf("err = %v, want ErrDetached", err)
	}
}

func TestRawArbIDShortSequence(t *testing.T) {
	if id := rawArbID([]byte{0, 1}); id != can.MaxID {
		t.Fatalf("short sequence id = %v, want lowest priority", id)
	}
}
