package bus

import "time"

// Sliding-window bus-load accounting. Bus.Load() reports utilisation since
// construction, which flattens bursts over a long campaign; WindowLoad
// reports utilisation over the recent virtual-time window, which is what a
// live dashboard wants (and what the paper's §V pacing discussion is
// about: at 1 ms pacing the fuzzer alone holds the bus near 25%).

// DefaultLoadWindow is the span WindowLoad averages over.
const DefaultLoadWindow = time.Second

// loadWindowBuckets is the rotation granularity of the window.
const loadWindowBuckets = 10

// loadWindow accumulates busy time into rotating virtual-time buckets.
type loadWindow struct {
	bucket time.Duration // span of one bucket
	busy   [loadWindowBuckets]time.Duration
	cur    int           // index of the bucket being filled
	curEnd time.Duration // exclusive end instant of cur
}

// rotate advances the ring so cur covers the bucket containing now,
// clearing buckets that fell out of the window. The common no-rotation
// case is a single comparison — this runs on every frame completion.
func (w *loadWindow) rotate(now time.Duration) {
	if now < w.curEnd {
		return
	}
	steps := int64((now-w.curEnd)/w.bucket) + 1
	if steps >= loadWindowBuckets {
		// The whole window aged out: clear everything and realign.
		for i := range w.busy {
			w.busy[i] = 0
		}
		w.cur = 0
		w.curEnd = (now/w.bucket + 1) * w.bucket
		return
	}
	for i := int64(0); i < steps; i++ {
		w.cur = (w.cur + 1) % loadWindowBuckets
		w.busy[w.cur] = 0
	}
	w.curEnd += time.Duration(steps) * w.bucket
}

// reset clears the accumulated window back to the zero value, keeping
// the configured bucket span. Used by Bus.Reset for world reuse.
func (w *loadWindow) reset() {
	for i := range w.busy {
		w.busy[i] = 0
	}
	w.cur = 0
	w.curEnd = 0
}

// add credits dur of busy time at completion instant now.
func (w *loadWindow) add(now, dur time.Duration) {
	w.rotate(now)
	w.busy[w.cur] += dur
}

// load returns busy/window over the retained buckets, clamped to [0,1].
// Early in a run (elapsed < window) it divides by elapsed time instead, so
// a bus that has been saturated from t=0 reads 1.0, not a fraction.
func (w *loadWindow) load(now time.Duration) float64 {
	w.rotate(now)
	var busy time.Duration
	for _, b := range w.busy {
		busy += b
	}
	window := time.Duration(loadWindowBuckets) * w.bucket
	if now < window {
		window = now
	}
	if window <= 0 {
		return 0
	}
	l := float64(busy) / float64(window)
	if l > 1 {
		l = 1
	}
	return l
}

// WindowLoad returns the bus utilisation over the recent sliding
// virtual-time window (see WithLoadWindow), in [0,1].
func (b *Bus) WindowLoad() float64 {
	return b.win.load(b.sched.Now())
}
