package bus

import (
	"testing"

	"repro/internal/can"
	"repro/internal/clock"
)

// TestSteadyStateTxZeroAlloc pins the whole per-frame transmit path —
// validate + enqueue (ring), arbitrate, wire-length encode (WireBitsWithIFS),
// completion scheduling (pooled clock node, pre-bound event) and delivery —
// at zero heap allocations once queues and pools are warm. This is the
// tentpole guarantee of the hot-path overhaul as a failing test.
func TestSteadyStateTxZeroAlloc(t *testing.T) {
	sched := clock.New()
	b := New(sched)
	tx := b.Connect("fuzzer")
	rx := b.Connect("ecu")
	rx.SetReceiver(func(Message) {})

	f := can.MustNew(0x215, []byte{0x20, 0x5F, 1, 0, 0, 1, 0x20})
	step := b.FrameTime(f)
	for i := 0; i < 32; i++ { // warm the TX ring and the clock's node pool
		if err := tx.Send(f); err != nil {
			t.Fatal(err)
		}
		sched.RunFor(step)
	}

	allocs := testing.AllocsPerRun(1000, func() {
		if err := tx.Send(f); err != nil {
			t.Error(err)
		}
		sched.RunFor(step)
	})
	if allocs != 0 {
		t.Fatalf("steady-state TX path allocates %v per frame, want 0", allocs)
	}
	if got := b.Stats().FramesDelivered; got < 1000 {
		t.Fatalf("frames delivered = %d, want >= 1000 (path not exercised)", got)
	}
}

// TestSteadyStateFDTxZeroAlloc pins the FD transmit path (FDWireTime's
// scratch-buffer stuff estimate, pooled completion) at zero steady-state
// allocations too.
func TestSteadyStateFDTxZeroAlloc(t *testing.T) {
	sched := clock.New()
	b := New(sched, WithFDDataBitrate(DefaultFDDataBitrate))
	tx := b.Connect("fuzzer")
	rx := b.Connect("ecu")
	rx.SetFDReceiver(func(FDMessage) {})

	f := can.MustNewFD(0x301, make([]byte, 32), true)
	dur := can.FDWireTime(f, b.Bitrate(), DefaultFDDataBitrate)
	for i := 0; i < 32; i++ {
		if err := tx.SendFD(f); err != nil {
			t.Fatal(err)
		}
		sched.RunFor(dur)
	}

	allocs := testing.AllocsPerRun(500, func() {
		if err := tx.SendFD(f); err != nil {
			t.Error(err)
		}
		sched.RunFor(dur)
	})
	if allocs != 0 {
		t.Fatalf("steady-state FD TX path allocates %v per frame, want 0", allocs)
	}
}
