package bus

import (
	"errors"
	"testing"
	"time"

	"repro/internal/can"
	"repro/internal/clock"
)

func TestFDDelivery(t *testing.T) {
	s, b := newBus(t)
	tx := b.Connect("tx")
	rx := b.Connect("rx")
	var got []FDMessage
	rx.SetFDReceiver(func(m FDMessage) { got = append(got, m) })

	f := can.MustNewFD(0x123, make([]byte, 32), true)
	if err := tx.SendFD(f); err != nil {
		t.Fatal(err)
	}
	s.RunUntil(time.Second)
	if len(got) != 1 || !got[0].Frame.Equal(f) {
		t.Fatalf("got %v", got)
	}
}

func TestFDNotDeliveredToClassicReceivers(t *testing.T) {
	s, b := newBus(t)
	tx := b.Connect("tx")
	rx := b.Connect("rx")
	classic := 0
	rx.SetReceiver(func(Message) { classic++ })
	tx.SendFD(can.MustNewFD(0x123, []byte{1}, false))
	s.RunUntil(time.Second)
	if classic != 0 {
		t.Fatal("FD frame delivered to classic receiver")
	}
}

func TestFDArbitratesWithClassic(t *testing.T) {
	s, b := newBus(t)
	a := b.Connect("a")
	c := b.Connect("c")
	rx := b.Connect("rx")
	var order []string
	rx.SetReceiver(func(m Message) { order = append(order, "classic") })
	rx.SetFDReceiver(func(m FDMessage) { order = append(order, "fd") })

	// Occupy the bus, then queue an FD frame with lower ID than a classic.
	a.Send(can.MustNew(0x7FF, make([]byte, 8)))
	c.SendFD(can.MustNewFD(0x050, []byte{1}, false))
	a.Send(can.MustNew(0x400, nil))
	s.RunUntil(time.Second)
	if len(order) != 3 || order[1] != "fd" || order[2] != "classic" {
		t.Fatalf("order = %v", order)
	}
}

func TestFDDataBitrateSpeedsUpBRS(t *testing.T) {
	run := func(dataBps int) time.Duration {
		s := clock.New()
		b := New(s, WithFDDataBitrate(dataBps))
		tx := b.Connect("tx")
		rx := b.Connect("rx")
		var at time.Duration
		rx.SetFDReceiver(func(m FDMessage) { at = m.Time })
		tx.SendFD(can.MustNewFD(0x100, make([]byte, 64), true))
		s.RunUntil(time.Second)
		return at
	}
	slow := run(0)         // no bitrate switching
	fast := run(2_000_000) // 2 Mbit/s data phase
	if fast >= slow {
		t.Fatalf("BRS delivery not faster: %v vs %v", fast, slow)
	}
}

func TestFDValidationAndQueueLimits(t *testing.T) {
	s := clock.New()
	b := New(s, WithTxQueueCap(1))
	tx := b.Connect("tx")
	if err := tx.SendFD(can.FDFrame{ID: 0x900}); !errors.Is(err, can.ErrIDRange) {
		t.Fatalf("err = %v", err)
	}
	if err := tx.SendFD(can.FDFrame{ID: 1, Len: 9}); !errors.Is(err, can.ErrFDDataLen) {
		t.Fatalf("err = %v", err)
	}
	ok := can.MustNewFD(1, nil, false)
	tx.SendFD(ok)
	tx.SendFD(ok)
	if err := tx.SendFD(ok); !errors.Is(err, ErrTxQueueFull) {
		t.Fatalf("err = %v", err)
	}
}

func TestFDTap(t *testing.T) {
	s, b := newBus(t)
	tx := b.Connect("tx")
	count := 0
	b.TapFD(func(FDMessage) { count++ })
	tx.SendFD(can.MustNewFD(0x100, []byte{1, 2}, false))
	s.RunUntil(time.Second)
	if count != 1 {
		t.Fatalf("FD tap saw %d frames", count)
	}
}

func TestFDBusOffBlocksSend(t *testing.T) {
	s, b := newBus(t)
	tx := b.Connect("tx")
	b.Connect("rx").SetFDReceiver(func(FDMessage) {})
	b.SetCorruptor(func(can.Frame) bool { return true })
	for i := 0; i < 40; i++ {
		if err := tx.SendFD(can.MustNewFD(1, nil, false)); err != nil {
			break
		}
		s.RunFor(10 * time.Millisecond)
	}
	if tx.State() != BusOff {
		t.Fatalf("state = %v, want bus-off", tx.State())
	}
	if err := tx.SendFD(can.MustNewFD(1, nil, false)); !errors.Is(err, ErrBusOff) {
		t.Fatalf("err = %v", err)
	}
}
