package bus

import (
	"errors"
	"testing"
	"time"

	"repro/internal/can"
	"repro/internal/clock"
)

// driveBusOff sends corrupted frames from tx until it reaches bus-off, then
// removes the corruptor. The clock is stepped by exactly one frame time per
// send, so on return Now is the precise instant of the bus-off transition
// (the completion of the 32nd corrupted frame) and no idle time has accrued
// toward recovery yet.
func driveBusOff(t *testing.T, s *clock.Scheduler, b *Bus, tx *Port) time.Duration {
	t.Helper()
	frame := can.MustNew(0x1, nil)
	step := b.FrameTime(frame)
	b.SetCorruptor(func(can.Frame) bool { return true })
	for i := 0; i < 40 && tx.State() != BusOff; i++ {
		if err := tx.Send(frame); err != nil {
			break
		}
		s.RunUntil(s.Now() + step)
	}
	if tx.State() != BusOff {
		t.Fatalf("failed to drive port to bus-off (state %v)", tx.State())
	}
	b.SetCorruptor(nil)
	return s.Now()
}

// isoRecoveryTime is the idle-bus recovery interval at the default bitrate:
// 128 sequences of 11 recessive bits at 2 µs per bit.
const isoRecoveryTime = busOffRecoverySequences * recessiveSeqBits * 2 * time.Microsecond

func TestBusOffAutoRecoveryOnIdleBus(t *testing.T) {
	s, b := newBus(t, WithAutoRecovery())
	tx := b.Connect("tx")
	b.Connect("rx").SetReceiver(func(Message) {})

	driveBusOff(t, s, b, tx)
	if !tx.Recovering() {
		t.Fatal("auto-recovery did not start at bus-off")
	}
	busOffIdleStart := s.Now() // bus idle from here (RunUntil past the last frame)

	// One bit time before the ISO interval elapses the node is still off.
	s.RunUntil(busOffIdleStart + isoRecoveryTime - 2*time.Microsecond)
	if tx.State() != BusOff {
		t.Fatalf("state = %v before the ISO interval, want bus-off", tx.State())
	}
	s.RunUntil(busOffIdleStart + isoRecoveryTime)
	if tx.State() != ErrorActive {
		t.Fatalf("state = %v after 128x11 recessive bit times, want error-active", tx.State())
	}
	if tec, rec := tx.ErrorCounters(); tec != 0 || rec != 0 {
		t.Fatalf("counters after rejoin = %d/%d, want 0/0", tec, rec)
	}
	st := tx.Stats()
	if st.BusOffs != 1 || st.Recoveries != 1 {
		t.Fatalf("BusOffs/Recoveries = %d/%d, want 1/1", st.BusOffs, st.Recoveries)
	}
	// The rejoined node transmits again.
	if err := tx.Send(can.MustNew(0x1, nil)); err != nil {
		t.Fatalf("send after rejoin: %v", err)
	}
}

func TestBusOffStaysWithoutAutoRecovery(t *testing.T) {
	s, b := newBus(t)
	tx := b.Connect("tx")
	b.Connect("rx").SetReceiver(func(Message) {})
	driveBusOff(t, s, b, tx)
	s.RunUntil(s.Now() + time.Second)
	if tx.State() != BusOff {
		t.Fatalf("state = %v, want bus-off to persist without recovery", tx.State())
	}
	if err := tx.Send(can.MustNew(0x1, nil)); !errors.Is(err, ErrBusOff) {
		t.Fatalf("err = %v, want ErrBusOff", err)
	}
}

func TestSetAutoRecoverLateStartsRecovery(t *testing.T) {
	s, b := newBus(t)
	tx := b.Connect("tx")
	b.Connect("rx").SetReceiver(func(Message) {})
	driveBusOff(t, s, b, tx)
	s.RunUntil(s.Now() + 10*time.Millisecond) // parked in bus-off

	enabledAt := s.Now()
	tx.SetAutoRecover(true)
	if !tx.Recovering() {
		t.Fatal("SetAutoRecover on a bus-off node did not start recovery")
	}
	s.RunUntil(enabledAt + isoRecoveryTime)
	if tx.State() != ErrorActive {
		t.Fatalf("state = %v, want error-active", tx.State())
	}
}

func TestBusWideSetAutoRecovery(t *testing.T) {
	s, b := newBus(t)
	tx := b.Connect("tx")
	b.Connect("rx").SetReceiver(func(Message) {})
	driveBusOff(t, s, b, tx)

	b.SetAutoRecovery(true)
	s.RunUntil(s.Now() + isoRecoveryTime)
	if tx.State() != ErrorActive {
		t.Fatalf("state = %v after bus-wide enable, want error-active", tx.State())
	}
	// New connections inherit the default.
	if !b.Connect("late").AutoRecover() {
		t.Fatal("port connected after SetAutoRecovery(true) does not auto-recover")
	}
}

func TestRecoveryCountsFrameEndsUnderLoad(t *testing.T) {
	s, b := newBus(t, WithAutoRecovery())
	tx := b.Connect("tx")
	other := b.Connect("other")
	b.Connect("rx").SetReceiver(func(Message) {})
	driveBusOff(t, s, b, tx)

	// Saturate the bus: queue 128 back-to-back frames. The bus is never
	// idle between them, so recovery advances one sequence per end of
	// frame and completes exactly at the 128th completion.
	frame := can.MustNew(0x200, []byte{0xAA})
	perFrame := b.FrameTime(frame)
	start := s.Now()
	for i := 0; i < busOffRecoverySequences; i++ {
		if err := other.Send(frame); err != nil {
			t.Fatalf("queue frame %d: %v", i, err)
		}
	}
	// After 127 completions the node is still recovering...
	s.RunUntil(start + 127*perFrame)
	if tx.State() != BusOff {
		t.Fatalf("state = %v after 127 frame ends, want bus-off", tx.State())
	}
	// ...and the 128th frame end rejoins it.
	s.RunUntil(start + 128*perFrame)
	if tx.State() != ErrorActive {
		t.Fatalf("state = %v after 128 frame ends, want error-active", tx.State())
	}
}

func TestJamDefersRecovery(t *testing.T) {
	s, b := newBus(t, WithAutoRecovery())
	tx := b.Connect("tx")
	b.Connect("rx").SetReceiver(func(Message) {})
	driveBusOff(t, s, b, tx)

	// A stuck-dominant window shows no recessive bits: the rejoin slips
	// past the jam by the full remaining interval.
	jamStart := s.Now()
	const jam = 5 * time.Millisecond
	b.Jam(jam)
	if !b.Jammed() {
		t.Fatal("bus not jammed")
	}
	s.RunUntil(jamStart + jam + isoRecoveryTime - 2*time.Microsecond)
	if tx.State() != BusOff {
		t.Fatalf("state = %v during deferred recovery, want bus-off", tx.State())
	}
	s.RunUntil(jamStart + jam + isoRecoveryTime)
	if tx.State() != ErrorActive {
		t.Fatalf("state = %v after jam + ISO interval, want error-active", tx.State())
	}
	if b.Stats().JamTime != jam {
		t.Fatalf("JamTime = %v, want %v", b.Stats().JamTime, jam)
	}
}

func TestJamBlocksTransmissions(t *testing.T) {
	s, b := newBus(t)
	tx := b.Connect("tx")
	rx := b.Connect("rx")
	var deliveredAt time.Duration
	rx.SetReceiver(func(m Message) { deliveredAt = m.Time })

	const jam = 10 * time.Millisecond
	b.Jam(jam)
	f := can.MustNew(0x1, []byte{1})
	if err := tx.Send(f); err != nil {
		t.Fatalf("Send during jam: %v", err)
	}
	s.RunUntil(time.Second)
	want := jam + b.FrameTime(f)
	if deliveredAt != want {
		t.Fatalf("delivered at %v, want %v (after the jam)", deliveredAt, want)
	}
}

func TestInterceptorDropAndDuplicate(t *testing.T) {
	s, b := newBus(t)
	tx := b.Connect("tx")
	rx := b.Connect("rx")
	var got []can.ID
	rx.SetReceiver(func(m Message) { got = append(got, m.Frame.ID) })
	b.SetInterceptor(func(f can.Frame) TxAction {
		switch f.ID {
		case 0x10:
			return TxDrop
		case 0x20:
			return TxDuplicate
		default:
			return TxDeliver
		}
	})
	for _, id := range []can.ID{0x10, 0x20, 0x30} {
		if err := tx.Send(can.MustNew(id, nil)); err != nil {
			t.Fatalf("Send %v: %v", id, err)
		}
	}
	s.RunUntil(time.Second)
	want := []can.ID{0x20, 0x20, 0x30}
	if len(got) != len(want) {
		t.Fatalf("delivered %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("delivered %v, want %v", got, want)
		}
	}
	st := b.Stats()
	if st.FramesDropped != 1 || st.FramesDuplicated != 1 {
		t.Fatalf("dropped/duplicated = %d/%d, want 1/1", st.FramesDropped, st.FramesDuplicated)
	}
	// A dropped frame still counts as delivered for the transmitter (it
	// saw its ACK), and the sender's TEC still heals.
	if st.FramesDelivered != 3 {
		t.Fatalf("delivered stat = %d, want 3", st.FramesDelivered)
	}
}

// --- TEC/REC recovery direction (the bump paths are tested elsewhere) -------

func TestRECDecrementsOnReceiveAndReturnsErrorActive(t *testing.T) {
	s, b := newBus(t)
	tx := b.Connect("tx")
	rx := b.Connect("rx")
	rx.SetReceiver(func(Message) {})

	// 128 corrupted transmissions push every receiver's REC to 128:
	// error-passive.
	b.SetCorruptor(func(can.Frame) bool { return true })
	for i := 0; i < errorPassiveThreshold; i++ {
		// Keep the transmitter alive: reset its TEC between sends.
		tx.ResetErrors()
		if err := tx.Send(can.MustNew(0x1, nil)); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
		s.RunUntil(s.Now() + time.Millisecond)
	}
	if rx.State() != ErrorPassive {
		_, rec := rx.ErrorCounters()
		t.Fatalf("rx state = %v (rec=%d), want error-passive", rx.State(), rec)
	}

	// Each successful reception decrements REC by 1; after one the node is
	// back under the threshold and error-active again.
	b.SetCorruptor(nil)
	tx.ResetErrors()
	if err := tx.Send(can.MustNew(0x1, nil)); err != nil {
		t.Fatalf("healing send: %v", err)
	}
	s.RunUntil(s.Now() + time.Millisecond)
	if _, rec := rx.ErrorCounters(); rec != errorPassiveThreshold-1 {
		t.Fatalf("rec = %d, want %d", rec, errorPassiveThreshold-1)
	}
	if rx.State() != ErrorActive {
		t.Fatalf("rx state = %v after healing, want error-active", rx.State())
	}
}

func TestTECDecrementReturnsErrorActive(t *testing.T) {
	s, b := newBus(t)
	tx := b.Connect("tx")
	b.Connect("rx").SetReceiver(func(Message) {})

	// 16 corrupted sends: TEC 128, error-passive.
	b.SetCorruptor(func(can.Frame) bool { return true })
	for i := 0; i < 16; i++ {
		tx.Send(can.MustNew(0x1, nil))
		s.RunUntil(s.Now() + time.Millisecond)
	}
	if tx.State() != ErrorPassive {
		t.Fatalf("state = %v, want error-passive", tx.State())
	}

	// One successful send: TEC 127, back to error-active; further
	// successes keep decrementing toward zero.
	b.SetCorruptor(nil)
	tx.Send(can.MustNew(0x1, nil))
	s.RunUntil(s.Now() + time.Millisecond)
	if tec, _ := tx.ErrorCounters(); tec != errorPassiveThreshold-1 {
		t.Fatalf("tec = %d, want %d", tec, errorPassiveThreshold-1)
	}
	if tx.State() != ErrorActive {
		t.Fatalf("state = %v after one success, want error-active", tx.State())
	}
	for i := 0; i < 127; i++ {
		tx.Send(can.MustNew(0x1, nil))
		s.RunUntil(s.Now() + time.Millisecond)
	}
	if tec, _ := tx.ErrorCounters(); tec != 0 {
		t.Fatalf("tec = %d after full heal, want 0", tec)
	}
}
