package bus

import (
	"time"

	"repro/internal/can"
)

// Raw bit-level injection — the paper's future-work item "Investigate
// manipulation of data packets at the bit level to fuzz CAN protocol
// control bits (the data link layer)" (§VII).
//
// SendRaw transmits an arbitrary stuffed bit sequence. If the sequence
// decodes as a valid frame it is delivered normally; if it violates the
// protocol (stuffing error, bad CRC, malformed fields) every receiver
// detects the error at end of frame, exactly like controllers raising
// error flags: the transmission is destroyed, the transmitter's TEC rises
// by 8 and each receiver's REC by 1. Either way the bus is occupied for
// the sequence's wire time.

// RawResult reports the outcome of a raw injection.
type RawResult int

const (
	// RawDelivered means the bits decoded as a valid frame and were
	// delivered to receivers.
	RawDelivered RawResult = iota + 1
	// RawErrorFrame means the bits violated the protocol and triggered
	// error signalling instead of delivery.
	RawErrorFrame
)

// SendRaw queues a raw bit sequence for transmission. The priority used in
// arbitration is the identifier encoded in the first twelve bits (valid or
// not). The callback, if non-nil, reports the eventual outcome.
func (p *Port) SendRaw(bits []byte, done func(RawResult)) error {
	if p.detached {
		p.noteDrop()
		return ErrDetached
	}
	if p.state == BusOff {
		p.noteDrop()
		return ErrBusOff
	}
	if p.rawq.len() >= p.bus.queueCap {
		p.noteDrop()
		return ErrTxQueueFull
	}
	seq := make([]byte, len(bits))
	copy(seq, bits)
	p.rawq.push(rawTx{bits: seq, done: done})
	p.notePush()
	p.bus.tryStart()
	return nil
}

// rawTx is one queued raw transmission.
type rawTx struct {
	bits []byte
	done func(RawResult)
}

// rawArbID extracts the arbitration priority from the first bits of a raw
// sequence (SOF + 11 identifier bits); short sequences arbitrate at the
// lowest priority.
func rawArbID(bits []byte) can.ID {
	if len(bits) < 12 {
		return can.MaxID
	}
	var id uint16
	for _, b := range bits[1:12] {
		id = id<<1 | uint16(b&1)
	}
	return can.ID(id & can.MaxID)
}

// startRaw begins a raw transmission for the winning port.
func (b *Bus) startRaw(winner *Port) {
	tx := winner.rawq.pop()
	winner.notePop()
	b.busy = true
	bits := len(tx.bits) + can.InterframeSpace
	dur := time.Duration(bits) * time.Second / time.Duration(b.bitrate)
	b.pend.kind, b.pend.port, b.pend.raw, b.pend.dur = txRaw, winner, tx, dur
	b.sched.AfterEvent(dur, b.completeEvent)
}

// completeRaw finishes a raw transmission: decode, then deliver or signal
// an error frame.
func (b *Bus) completeRaw(tx *Port, raw rawTx, dur time.Duration) {
	b.busy = false
	b.noteBusy(dur)
	b.creditFrameEnd()

	frame, err := can.DecodeBits(raw.bits)
	if err != nil || frame.Validate() != nil {
		// Protocol violation: error frame. Same fault-confinement rules as
		// a corrupted transmission.
		b.noteErrorFrame(tx, rawArbID(raw.bits), dur)
		for _, p := range b.ports {
			if p != tx && !p.detached && p.state != BusOff {
				p.bumpREC(1)
			}
		}
		if raw.done != nil {
			raw.done(RawErrorFrame)
		}
		b.tryStart()
		return
	}

	b.noteDelivered(tx, frame.ID, dur, len(raw.bits)+can.InterframeSpace)
	msg := Message{Frame: frame, Time: b.sched.Now(), Origin: tx.name}
	b.delivering = true
	for _, p := range b.ports {
		if p == tx || p.detached || p.state == BusOff || p.recv == nil {
			continue
		}
		p.noteRx()
		p.recv(msg)
	}
	for _, t := range b.taps {
		t(msg)
	}
	b.delivering = false
	if raw.done != nil {
		raw.done(RawDelivered)
	}
	b.tryStart()
}
