package ecu

import (
	"testing"
	"time"

	"repro/internal/bus"
	"repro/internal/can"
	"repro/internal/clock"
)

func rig(t *testing.T) (*clock.Scheduler, *bus.Bus, *ECU, *bus.Port) {
	t.Helper()
	s := clock.New()
	b := bus.New(s)
	e := New("dut", s, b.Connect("dut"))
	peer := b.Connect("peer")
	return s, b, e, peer
}

func TestHandleRoutesById(t *testing.T) {
	s, _, e, peer := rig(t)
	var got []can.ID
	e.Handle(0x100, func(m bus.Message) { got = append(got, m.Frame.ID) })
	peer.Send(can.MustNew(0x100, nil))
	peer.Send(can.MustNew(0x200, nil))
	s.RunUntil(time.Second)
	if len(got) != 1 || got[0] != 0x100 {
		t.Fatalf("got = %v", got)
	}
}

func TestHandleAllSeesEverything(t *testing.T) {
	s, _, e, peer := rig(t)
	count := 0
	e.HandleAll(func(bus.Message) { count++ })
	peer.Send(can.MustNew(0x100, nil))
	peer.Send(can.MustNew(0x200, nil))
	s.RunUntil(time.Second)
	if count != 2 {
		t.Fatalf("count = %d, want 2", count)
	}
}

func TestHandlerOrderPerIDThenCatchAll(t *testing.T) {
	s, _, e, peer := rig(t)
	var order []string
	e.Handle(0x1, func(bus.Message) { order = append(order, "id1") })
	e.Handle(0x1, func(bus.Message) { order = append(order, "id2") })
	e.HandleAll(func(bus.Message) { order = append(order, "all") })
	peer.Send(can.MustNew(0x1, nil))
	s.RunUntil(time.Second)
	want := []string{"id1", "id2", "all"}
	if len(order) != 3 || order[0] != want[0] || order[1] != want[1] || order[2] != want[2] {
		t.Fatalf("order = %v", order)
	}
}

func TestPeriodicTransmission(t *testing.T) {
	s, _, e, peer := rig(t)
	count := 0
	peer.SetReceiver(func(bus.Message) { count++ })
	e.Periodic(10*time.Millisecond, func() {
		e.Send(can.MustNew(0x110, []byte{1}))
	})
	// Run a little past 100 ms so the frame queued at t=100ms finishes its
	// on-wire transmission and is delivered.
	s.RunUntil(101 * time.Millisecond)
	if count != 10 {
		t.Fatalf("received %d periodic frames, want 10", count)
	}
}

func TestPowerOffStopsPeriodicsAndReception(t *testing.T) {
	s, _, e, peer := rig(t)
	sent := 0
	e.Periodic(10*time.Millisecond, func() { sent++ })
	received := 0
	e.Handle(0x5, func(bus.Message) { received++ })
	s.RunUntil(25 * time.Millisecond)
	e.PowerOff()
	peer.Send(can.MustNew(0x5, nil))
	s.RunUntil(100 * time.Millisecond)
	if sent != 2 {
		t.Fatalf("periodic ran %d times, want 2", sent)
	}
	if received != 0 {
		t.Fatal("powered-off ECU received a frame")
	}
	if err := e.Send(can.MustNew(0x1, nil)); err == nil {
		t.Fatal("powered-off ECU transmitted")
	}
}

func TestPowerOnRestoresOperation(t *testing.T) {
	s, _, e, peer := rig(t)
	received := 0
	e.Handle(0x5, func(bus.Message) { received++ })
	sent := 0
	e.Periodic(10*time.Millisecond, func() { sent++ })
	e.PowerOff()
	s.RunUntil(50 * time.Millisecond)
	e.PowerOn()
	peer.Send(can.MustNew(0x5, nil))
	s.RunUntil(100 * time.Millisecond)
	if received != 1 {
		t.Fatalf("received = %d, want 1", received)
	}
	if sent != 5 { // 50ms powered window / 10ms
		t.Fatalf("periodic ran %d times, want 5", sent)
	}
}

func TestOnPowerOnCallback(t *testing.T) {
	_, _, e, _ := rig(t)
	calls := 0
	e.OnPowerOn(func() { calls++ })
	e.PowerCycle()
	e.PowerCycle()
	if calls != 2 {
		t.Fatalf("calls = %d, want 2", calls)
	}
}

func TestPowerCycleClearsRAMKeepsNVRAM(t *testing.T) {
	_, _, e, _ := rig(t)
	e.RAMWrite("volatile", []byte{1})
	e.NVWrite("persistent", []byte{2})
	e.PowerCycle()
	if _, ok := e.RAMRead("volatile"); ok {
		t.Fatal("RAM survived power cycle")
	}
	v, ok := e.NVRead("persistent")
	if !ok || v[0] != 2 {
		t.Fatal("NVRAM lost on power cycle")
	}
}

func TestPowerCycleClearsMILs(t *testing.T) {
	_, _, e, _ := rig(t)
	e.SetMIL("ENGINE", true)
	e.SetMIL("ABS", true)
	if len(e.MILs()) != 2 {
		t.Fatalf("MILs = %v", e.MILs())
	}
	e.PowerCycle()
	if len(e.MILs()) != 0 {
		t.Fatalf("MILs after cycle = %v", e.MILs())
	}
}

func TestPowerCycleResetsMode(t *testing.T) {
	_, _, e, _ := rig(t)
	e.SetMode(ModeProgramming)
	e.PowerCycle()
	if e.Mode() != ModeNormal {
		t.Fatalf("mode = %v, want normal", e.Mode())
	}
}

func TestMILAccessors(t *testing.T) {
	_, _, e, _ := rig(t)
	e.SetMIL("B", true)
	e.SetMIL("A", true)
	e.SetMIL("B", false)
	if e.MILOn("B") || !e.MILOn("A") {
		t.Fatal("MILOn wrong")
	}
	if mils := e.MILs(); len(mils) != 1 || mils[0] != "A" {
		t.Fatalf("MILs = %v", mils)
	}
}

func TestMILsSorted(t *testing.T) {
	_, _, e, _ := rig(t)
	for _, n := range []string{"z", "a", "m"} {
		e.SetMIL(n, true)
	}
	mils := e.MILs()
	if mils[0] != "a" || mils[1] != "m" || mils[2] != "z" {
		t.Fatalf("MILs not sorted: %v", mils)
	}
}

func TestNVReadCopies(t *testing.T) {
	_, _, e, _ := rig(t)
	e.NVWrite("k", []byte{1, 2})
	v, _ := e.NVRead("k")
	v[0] = 99
	v2, _ := e.NVRead("k")
	if v2[0] != 1 {
		t.Fatal("NVRead returned aliased storage")
	}
	e.NVDelete("k")
	if _, ok := e.NVRead("k"); ok {
		t.Fatal("NVDelete ineffective")
	}
}

func TestChimesSurvivePowerCycle(t *testing.T) {
	_, _, e, _ := rig(t)
	e.Chime()
	e.Chime()
	e.PowerCycle()
	if e.Chimes() != 2 {
		t.Fatalf("Chimes = %d, want 2", e.Chimes())
	}
}

func TestFaultLog(t *testing.T) {
	s, _, e, _ := rig(t)
	s.RunUntil(5 * time.Millisecond)
	e.LogFault("U0100", "lost communication")
	faults := e.Faults()
	if len(faults) != 1 || faults[0].Code != "U0100" {
		t.Fatalf("faults = %v", faults)
	}
	if faults[0].Time != 5*time.Millisecond {
		t.Fatalf("fault time = %v", faults[0].Time)
	}
	// Returned slice is a copy.
	faults[0].Code = "X"
	if e.Faults()[0].Code != "U0100" {
		t.Fatal("Faults returned aliased storage")
	}
}

func TestModeString(t *testing.T) {
	if ModeNormal.String() != "normal" || ModeProgramming.String() != "programming" {
		t.Fatal("Mode.String broken")
	}
	if Mode(0).String() == "" {
		t.Fatal("unknown mode string empty")
	}
}

func TestDoublePowerOffOnIdempotent(t *testing.T) {
	s, _, e, peer := rig(t)
	received := 0
	e.Handle(0x5, func(bus.Message) { received++ })
	e.PowerOff()
	e.PowerOff()
	e.PowerOn()
	e.PowerOn()
	peer.Send(can.MustNew(0x5, nil))
	s.RunUntil(time.Second)
	if received != 1 {
		t.Fatalf("received = %d, want 1", received)
	}
}

func TestPeriodicRegisteredWhilePoweredOff(t *testing.T) {
	s, _, e, _ := rig(t)
	e.PowerOff()
	runs := 0
	e.Periodic(10*time.Millisecond, func() { runs++ })
	s.RunUntil(50 * time.Millisecond)
	if runs != 0 {
		t.Fatal("periodic ran while powered off")
	}
	e.PowerOn()
	s.RunUntil(100 * time.Millisecond)
	if runs != 5 {
		t.Fatalf("runs = %d, want 5", runs)
	}
}

func TestAccessors(t *testing.T) {
	s, _, e, _ := rig(t)
	if e.Name() != "dut" {
		t.Fatalf("Name = %q", e.Name())
	}
	if e.Scheduler() != s {
		t.Fatal("Scheduler accessor wrong")
	}
	if e.Port() == nil {
		t.Fatal("Port accessor nil")
	}
	if !e.Powered() {
		t.Fatal("fresh ECU not powered")
	}
	s.RunUntil(7 * time.Millisecond)
	if e.Now() != 7*time.Millisecond {
		t.Fatalf("Now = %v", e.Now())
	}
}

func TestNilArgumentPanics(t *testing.T) {
	_, _, e, _ := rig(t)
	for name, fn := range map[string]func(){
		"Handle":    func() { e.Handle(1, nil) },
		"HandleAll": func() { e.HandleAll(nil) },
		"Periodic":  func() { e.Periodic(time.Second, nil) },
		"OnPowerOn": func() { e.OnPowerOn(nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s(nil) did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestNewPanicsOnNilDeps(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(nil, nil) did not panic")
		}
	}()
	New("x", nil, nil)
}

func TestRAMReadMissingAndCopies(t *testing.T) {
	_, _, e, _ := rig(t)
	if _, ok := e.RAMRead("missing"); ok {
		t.Fatal("missing RAM key found")
	}
	e.RAMWrite("k", []byte{1, 2})
	v, _ := e.RAMRead("k")
	v[0] = 9
	v2, _ := e.RAMRead("k")
	if v2[0] != 1 {
		t.Fatal("RAMRead aliases storage")
	}
}

func TestNVReadMissing(t *testing.T) {
	_, _, e, _ := rig(t)
	if _, ok := e.NVRead("missing"); ok {
		t.Fatal("missing NV key found")
	}
}

func TestSetModeAccessor(t *testing.T) {
	_, _, e, _ := rig(t)
	e.SetMode(ModeDiagnostic)
	if e.Mode() != ModeDiagnostic {
		t.Fatal("SetMode ineffective")
	}
}
