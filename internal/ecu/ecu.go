// Package ecu provides the runtime skeleton shared by every simulated
// Electronic Control Unit: frame dispatch, periodic transmission schedules,
// power cycling with volatile (RAM) and non-volatile (NVRAM) storage,
// malfunction indicator lamps (MILs), audible warnings, fault logging, and
// UDS-style operating modes.
//
// The power-cycle semantics matter for reproducing Fig 9: MILs and RAM are
// volatile (a power cycle clears them, as the paper observed on the real
// instrument cluster), while NVRAM persists (which is why the cluster's
// "crash" display would not clear).
package ecu

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/bus"
	"repro/internal/can"
	"repro/internal/clock"
	"repro/internal/telemetry"
)

// Mode is an ECU operating mode, as in UDS diagnostic sessions. The paper
// (§II) stresses testers must cover all of them because "these different
// states have been previously exploited".
type Mode int

// Operating modes.
const (
	// ModeNormal is the default application mode.
	ModeNormal Mode = iota + 1
	// ModeDiagnostic is an extended diagnostic session.
	ModeDiagnostic
	// ModeProgramming is the (un)locked software-update session.
	ModeProgramming
)

// String returns the mode name.
func (m Mode) String() string {
	switch m {
	case ModeNormal:
		return "normal"
	case ModeDiagnostic:
		return "diagnostic"
	case ModeProgramming:
		return "programming"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Fault is one entry in an ECU's fault log.
type Fault struct {
	// Time is the virtual instant the fault was raised.
	Time time.Duration
	// Code is a short machine-readable fault code (e.g. "U0100").
	Code string
	// Detail is a human-readable description.
	Detail string
}

// Handler consumes a delivered frame.
type Handler func(bus.Message)

type periodicSpec struct {
	interval time.Duration
	per      *clock.Periodic
}

// handlerEntry pairs one arbitration identifier with its handler chain.
// Dispatch is a linear scan: ECUs register a handful of identifiers, so
// the scan beats a map lookup (no hashing) on the per-frame hot path.
type handlerEntry struct {
	id can.ID
	hs []Handler
}

// ECU is the base runtime for a simulated control unit. Concrete ECUs
// (cluster, BCM, engine...) embed or wrap it, register handlers and
// periodic transmitters, and use Send to talk on the bus.
type ECU struct {
	name  string
	sched *clock.Scheduler
	port  *bus.Port

	handlers []handlerEntry
	catchAll []Handler

	periodics []*periodicSpec
	powered   bool
	mode      Mode

	nvram map[string][]byte
	ram   map[string][]byte

	mils      map[string]bool
	chimes    uint64
	faults    []Fault
	onPowerOn []func()

	// Crash/stall fault state. A crashed ECU is off the bus until Recover;
	// a stalled ECU drops frames and skips periodic work until the stall
	// window elapses.
	crashed      bool
	crashDetail  string
	stalledUntil time.Duration
	panicNext    string // armed InjectPanic detail; "" when disarmed
	onCrash      []func(detail string)

	// Telemetry handles; nil (no-op) until Instrument is called.
	tel         *telemetry.Telemetry
	mDispatched *telemetry.Counter
	mFaults     *telemetry.Counter
	mPowerCycle *telemetry.Counter
	mCrashes    *telemetry.Counter
}

// New creates an ECU bound to a bus port. The ECU starts powered on in
// normal mode, receiving frames.
func New(name string, sched *clock.Scheduler, port *bus.Port) *ECU {
	if sched == nil || port == nil {
		panic("ecu: nil scheduler or port")
	}
	e := &ECU{
		name:    name,
		sched:   sched,
		port:    port,
		nvram:   make(map[string][]byte),
		ram:     make(map[string][]byte),
		mils:    make(map[string]bool),
		powered: true,
		mode:    ModeNormal,
	}
	port.SetReceiver(e.dispatch)
	return e
}

// Name returns the ECU name.
func (e *ECU) Name() string { return e.name }

// Instrument attaches the ECU to the telemetry plane: a handler-dispatch
// counter and trace event per received frame, plus fault and power-cycle
// accounting. Passing nil is a no-op; the default ECU is uninstrumented
// and pays nothing.
func (e *ECU) Instrument(t *telemetry.Telemetry) {
	if t == nil {
		return
	}
	e.tel = t
	lbl := telemetry.Label{Key: "ecu", Value: e.name}
	e.mDispatched = t.Registry.Counter("ecu_frames_dispatched_total", "Frames routed to this ECU's handlers.", lbl)
	e.mFaults = t.Registry.Counter("ecu_faults_total", "Fault-log entries raised by this ECU.", lbl)
	e.mPowerCycle = t.Registry.Counter("ecu_power_cycles_total", "Power-off/power-on transitions of this ECU.", lbl)
	e.mCrashes = t.Registry.Counter("ecu_crashes_total", "Handler panics recovered by crashing this ECU.", lbl)
}

// Scheduler returns the virtual clock the ECU runs on.
func (e *ECU) Scheduler() *clock.Scheduler { return e.sched }

// Port returns the ECU's bus attachment.
func (e *ECU) Port() *bus.Port { return e.port }

// Now returns the current virtual time.
func (e *ECU) Now() time.Duration { return e.sched.Now() }

// Powered reports whether the ECU is currently powered.
func (e *ECU) Powered() bool { return e.powered }

// Mode returns the current operating mode.
func (e *ECU) Mode() Mode { return e.mode }

// SetMode switches the operating mode (driven by UDS session control).
func (e *ECU) SetMode(m Mode) { e.mode = m }

// Handle registers a handler for one arbitration identifier. Multiple
// handlers per identifier run in registration order.
func (e *ECU) Handle(id can.ID, h Handler) {
	if h == nil {
		panic("ecu: nil handler")
	}
	for i := range e.handlers {
		if e.handlers[i].id == id {
			e.handlers[i].hs = append(e.handlers[i].hs, h)
			return
		}
	}
	e.handlers = append(e.handlers, handlerEntry{id: id, hs: []Handler{h}})
}

// HandleAll registers a handler that sees every received frame after the
// per-identifier handlers. This is the code path malformed fuzz traffic
// reaches on ECUs that parse more than they should.
func (e *ECU) HandleAll(h Handler) {
	if h == nil {
		panic("ecu: nil handler")
	}
	e.catchAll = append(e.catchAll, h)
}

// Periodic registers fn to run every interval while the ECU is powered.
// Periodic schedules restart from phase zero after a power cycle.
func (e *ECU) Periodic(interval time.Duration, fn func()) {
	if fn == nil {
		panic("ecu: nil periodic")
	}
	spec := &periodicSpec{interval: interval}
	spec.per = e.sched.NewPeriodic(interval, func() {
		if !e.powered || e.crashed || e.sched.Now() < e.stalledUntil {
			return // stalled application: the tick is skipped, not deferred
		}
		defer e.guard()
		fn()
	})
	e.periodics = append(e.periodics, spec)
	if e.powered {
		spec.per.Start()
	}
}

// OnPowerOn registers a callback invoked each time the ECU powers up
// (including the initial registration if currently powered: the callback is
// NOT invoked immediately; callers run initial logic themselves).
func (e *ECU) OnPowerOn(fn func()) {
	if fn == nil {
		panic("ecu: nil callback")
	}
	e.onPowerOn = append(e.onPowerOn, fn)
}

// Send transmits a frame. A powered-off ECU cannot transmit.
func (e *ECU) Send(f can.Frame) error {
	if !e.powered {
		return fmt.Errorf("ecu %s: powered off", e.name)
	}
	if err := e.port.Send(f); err != nil {
		return fmt.Errorf("ecu %s: %w", e.name, err)
	}
	return nil
}

// dispatch routes a received frame to handlers. Handler panics do not
// propagate into the simulation loop: the guard converts them into an ECU
// crash (node off the bus, fault logged) so the campaign can observe the
// failure and keep running.
func (e *ECU) dispatch(m bus.Message) {
	if !e.powered || e.crashed {
		return
	}
	if e.sched.Now() < e.stalledUntil {
		return // wedged application task: the frame is lost
	}
	e.mDispatched.Inc()
	if e.tel != nil {
		e.tel.Emit(telemetry.Event{
			At: e.sched.Now(), Kind: telemetry.EvDispatch,
			Actor: e.name, Name: "dispatch", ID: uint32(m.Frame.ID),
		})
	}
	defer e.guard()
	if e.panicNext != "" {
		detail := e.panicNext
		e.panicNext = ""
		panic(detail)
	}
	for i := range e.handlers {
		if e.handlers[i].id == m.Frame.ID {
			for _, h := range e.handlers[i].hs {
				h(m)
			}
			break
		}
	}
	for _, h := range e.catchAll {
		h(m)
	}
}

// guard recovers a panicking handler or periodic by crashing the ECU
// instead of unwinding through the scheduler.
func (e *ECU) guard() {
	if r := recover(); r != nil {
		e.crash(fmt.Sprint(r))
	}
}

// crash takes the ECU down after an unrecovered software fault: the fault
// is logged (the log survives, as the tester's record), the node leaves the
// bus, and OnCrash observers are notified. The ECU stays down until Recover.
func (e *ECU) crash(detail string) {
	if e.crashed {
		return
	}
	e.crashed = true
	e.crashDetail = detail
	e.LogFault("U3000", "software crash: "+detail)
	e.mCrashes.Inc()
	if e.tel != nil {
		e.tel.Emit(telemetry.Event{
			At: e.sched.Now(), Kind: telemetry.EvFault,
			Actor: e.name, Name: "ecu-crash", Detail: detail,
		})
	}
	e.PowerOff()
	for _, fn := range e.onCrash {
		fn(detail)
	}
}

// Crashed reports whether the ECU is down after a software crash.
func (e *ECU) Crashed() bool { return e.crashed }

// CrashDetail returns the panic value of the crash that took the ECU down
// ("" when not crashed).
func (e *ECU) CrashDetail() string { return e.crashDetail }

// OnCrash registers an observer invoked when a handler or periodic panic
// crashes the ECU.
func (e *ECU) OnCrash(fn func(detail string)) {
	if fn == nil {
		panic("ecu: nil callback")
	}
	e.onCrash = append(e.onCrash, fn)
}

// Recover clears a crash and powers the ECU back on (the watchdog reset a
// real controller performs). A no-op on an ECU that is not crashed.
func (e *ECU) Recover() {
	if !e.crashed {
		return
	}
	e.crashed = false
	e.crashDetail = ""
	if e.tel != nil {
		e.tel.Emit(telemetry.Event{
			At: e.sched.Now(), Kind: telemetry.EvRecover,
			Actor: e.name, Name: "ecu-recovered",
		})
	}
	e.PowerOn()
}

// InjectStall wedges the ECU's application for d: received frames are lost
// and periodic work is skipped until the window elapses. Overlapping stalls
// extend the window.
func (e *ECU) InjectStall(d time.Duration) {
	if d <= 0 {
		return
	}
	if until := e.sched.Now() + d; until > e.stalledUntil {
		e.stalledUntil = until
	}
}

// Stalled reports whether the ECU is currently inside a stall window.
func (e *ECU) Stalled() bool { return e.sched.Now() < e.stalledUntil }

// InjectPanic arms a panic in the ECU's next frame dispatch, exercising the
// crash-recovery path exactly as a latent handler bug would.
func (e *ECU) InjectPanic(detail string) {
	if detail == "" {
		detail = "injected panic"
	}
	e.panicNext = detail
}

// PowerOff halts the ECU: periodic transmissions stop, the port detaches,
// RAM clears, MILs extinguish, mode returns to normal. NVRAM persists.
func (e *ECU) PowerOff() {
	if !e.powered {
		return
	}
	e.powered = false
	e.mPowerCycle.Inc()
	if e.tel != nil {
		e.tel.Emit(telemetry.Event{
			At: e.sched.Now(), Kind: telemetry.EvCustom,
			Actor: e.name, Name: "power-off",
		})
	}
	for _, p := range e.periodics {
		p.per.Stop()
	}
	e.port.Detach()
	e.ram = make(map[string][]byte)
	e.mils = make(map[string]bool)
	e.mode = ModeNormal
}

// PowerOn restores the ECU after PowerOff: the port reattaches (clearing
// bus error state, as a controller reset does), periodic schedules restart,
// and OnPowerOn callbacks run. A crashed ECU cannot power on until Recover
// clears the crash.
func (e *ECU) PowerOn() {
	if e.powered || e.crashed {
		return
	}
	e.powered = true
	e.port.Reattach()
	for _, p := range e.periodics {
		p.per.Start()
	}
	for _, fn := range e.onPowerOn {
		fn()
	}
}

// PowerCycle is PowerOff followed by PowerOn at the same virtual instant.
func (e *ECU) PowerCycle() {
	e.PowerOff()
	e.PowerOn()
}

// Reset returns the ECU to its freshly-constructed state for world reuse:
// powered on in normal mode, storage and indicators cleared, fault/crash/
// stall state wiped, and every registered periodic re-armed from phase
// zero in registration order — the same scheduling order construction
// produced, which is what keeps a reused world's event stream
// byte-identical to a fresh one's. Registered handlers and callbacks are
// retained; the caller resets the scheduler and bus around it. Steady
// state allocates nothing: maps are cleared in place and the periodic
// timers are reused.
func (e *ECU) Reset() {
	for _, p := range e.periodics {
		p.per.Stop()
	}
	e.powered = true
	e.mode = ModeNormal
	clear(e.nvram)
	clear(e.ram)
	clear(e.mils)
	e.chimes = 0
	e.faults = e.faults[:0]
	e.crashed = false
	e.crashDetail = ""
	e.stalledUntil = 0
	e.panicNext = ""
	for _, p := range e.periodics {
		p.per.Start()
	}
}

// --- Storage ---------------------------------------------------------------

// NVWrite stores a value in non-volatile memory (persists across power
// cycles). The value is copied.
func (e *ECU) NVWrite(key string, value []byte) {
	v := make([]byte, len(value))
	copy(v, value)
	e.nvram[key] = v
}

// NVRead returns a copy of a non-volatile value.
func (e *ECU) NVRead(key string) ([]byte, bool) {
	v, ok := e.nvram[key]
	if !ok {
		return nil, false
	}
	out := make([]byte, len(v))
	copy(out, v)
	return out, true
}

// NVDelete removes a non-volatile value (e.g. a service tool clearing it).
func (e *ECU) NVDelete(key string) { delete(e.nvram, key) }

// RAMWrite stores a volatile value (cleared by power cycles).
func (e *ECU) RAMWrite(key string, value []byte) {
	v := make([]byte, len(value))
	copy(v, value)
	e.ram[key] = v
}

// RAMRead returns a copy of a volatile value.
func (e *ECU) RAMRead(key string) ([]byte, bool) {
	v, ok := e.ram[key]
	if !ok {
		return nil, false
	}
	out := make([]byte, len(v))
	copy(out, v)
	return out, true
}

// --- Driver-visible indications ---------------------------------------------

// SetMIL switches a malfunction indicator lamp. MILs are volatile: a power
// cycle extinguishes them (as observed on the paper's instrument cluster).
func (e *ECU) SetMIL(name string, on bool) {
	if on {
		e.mils[name] = true
	} else {
		delete(e.mils, name)
	}
}

// MILOn reports whether a lamp is lit.
func (e *ECU) MILOn(name string) bool { return e.mils[name] }

// MILs returns the sorted names of all lit lamps.
func (e *ECU) MILs() []string {
	out := make([]string, 0, len(e.mils))
	for name := range e.mils {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Chime records one audible warning.
func (e *ECU) Chime() { e.chimes++ }

// Chimes returns the number of audible warnings since creation (not reset
// by power cycles; it models the tester's tally of warning sounds).
func (e *ECU) Chimes() uint64 { return e.chimes }

// LogFault appends to the fault log (the log itself is the tester's
// external record, so it survives power cycles).
func (e *ECU) LogFault(code, detail string) {
	e.faults = append(e.faults, Fault{Time: e.sched.Now(), Code: code, Detail: detail})
	e.mFaults.Inc()
	if e.tel != nil {
		e.tel.Emit(telemetry.Event{
			At: e.sched.Now(), Kind: telemetry.EvCustom,
			Actor: e.name, Name: "fault", Detail: code,
		})
	}
}

// Faults returns a copy of the fault log.
func (e *ECU) Faults() []Fault {
	out := make([]Fault, len(e.faults))
	copy(out, e.faults)
	return out
}
