package ecu

import (
	"strings"
	"testing"
	"time"

	"repro/internal/bus"
	"repro/internal/can"
)

func TestHandlerPanicCrashesECUNotScheduler(t *testing.T) {
	s, _, e, peer := rig(t)
	e.Handle(0x100, func(bus.Message) { panic("boom") })
	var crashedDetail string
	e.OnCrash(func(d string) { crashedDetail = d })

	peer.Send(can.MustNew(0x100, nil))
	s.RunUntil(time.Second) // must not panic through the scheduler

	if !e.Crashed() {
		t.Fatal("ECU not crashed after handler panic")
	}
	if e.CrashDetail() != "boom" || crashedDetail != "boom" {
		t.Fatalf("crash detail = %q / observer %q, want boom", e.CrashDetail(), crashedDetail)
	}
	if e.Powered() {
		t.Fatal("crashed ECU still powered")
	}
	faults := e.Faults()
	if len(faults) != 1 || !strings.Contains(faults[0].Detail, "boom") {
		t.Fatalf("fault log = %+v, want one crash entry", faults)
	}
	// A crashed ECU is deaf and cannot transmit.
	if err := e.Send(can.MustNew(0x1, nil)); err == nil {
		t.Fatal("Send on crashed ECU succeeded")
	}
	// PowerOn alone must not resurrect it; Recover must.
	e.PowerOn()
	if e.Powered() {
		t.Fatal("PowerOn resurrected a crashed ECU without Recover")
	}
	e.Recover()
	if e.Crashed() || !e.Powered() {
		t.Fatalf("after Recover: crashed=%v powered=%v", e.Crashed(), e.Powered())
	}
	if e.CrashDetail() != "" {
		t.Fatalf("crash detail survives Recover: %q", e.CrashDetail())
	}
}

func TestPeriodicPanicCrashesECU(t *testing.T) {
	s, _, e, _ := rig(t)
	e.Periodic(10*time.Millisecond, func() { panic("tick bug") })
	s.RunUntil(time.Second)
	if !e.Crashed() || e.CrashDetail() != "tick bug" {
		t.Fatalf("crashed=%v detail=%q", e.Crashed(), e.CrashDetail())
	}
}

func TestInjectPanicArmsNextDispatch(t *testing.T) {
	s, _, e, peer := rig(t)
	handled := 0
	e.Handle(0x100, func(bus.Message) { handled++ })

	peer.Send(can.MustNew(0x100, nil))
	s.RunUntil(s.Now() + 10*time.Millisecond)
	if handled != 1 || e.Crashed() {
		t.Fatalf("baseline dispatch: handled=%d crashed=%v", handled, e.Crashed())
	}

	e.InjectPanic("injected fault")
	peer.Send(can.MustNew(0x100, nil))
	s.RunUntil(s.Now() + 10*time.Millisecond)
	if handled != 1 {
		t.Fatalf("handler ran despite armed panic: handled=%d", handled)
	}
	if !e.Crashed() || e.CrashDetail() != "injected fault" {
		t.Fatalf("crashed=%v detail=%q", e.Crashed(), e.CrashDetail())
	}
}

func TestInjectStallDropsFramesAndSkipsTicks(t *testing.T) {
	s, _, e, peer := rig(t)
	handled, ticks := 0, 0
	e.Handle(0x100, func(bus.Message) { handled++ })
	e.Periodic(10*time.Millisecond, func() { ticks++ })

	e.InjectStall(100 * time.Millisecond)
	if !e.Stalled() {
		t.Fatal("not stalled after InjectStall")
	}
	peer.Send(can.MustNew(0x100, nil))
	s.RunUntil(95 * time.Millisecond)
	if handled != 0 {
		t.Fatalf("stalled ECU handled %d frames", handled)
	}
	if ticks != 0 {
		t.Fatalf("stalled ECU ran %d periodic ticks", ticks)
	}

	// After the window the application resumes: frames dispatch and
	// periodics run again (skipped ticks are lost, not replayed).
	s.RunUntil(200 * time.Millisecond)
	if e.Stalled() {
		t.Fatal("still stalled after the window")
	}
	peer.Send(can.MustNew(0x100, nil))
	s.RunUntil(250 * time.Millisecond)
	if handled != 1 {
		t.Fatalf("handled = %d after stall ended, want 1", handled)
	}
	if ticks == 0 {
		t.Fatal("periodics never resumed after stall")
	}
}

func TestStallExtendsNotShortens(t *testing.T) {
	s, _, e, _ := rig(t)
	e.InjectStall(100 * time.Millisecond)
	e.InjectStall(10 * time.Millisecond) // shorter overlap must not shorten
	s.RunUntil(50 * time.Millisecond)
	if !e.Stalled() {
		t.Fatal("overlapping shorter stall truncated the window")
	}
	e.InjectStall(100 * time.Millisecond) // extends past 150 ms
	s.RunUntil(120 * time.Millisecond)
	if !e.Stalled() {
		t.Fatal("overlapping longer stall did not extend the window")
	}
}
