package infotain

import (
	"errors"
	"testing"
	"time"

	"repro/internal/bcm"
	"repro/internal/bus"
	"repro/internal/can"
	"repro/internal/clock"
	"repro/internal/ecu"
	"repro/internal/signal"
)

func rig(t *testing.T) (*clock.Scheduler, *HeadUnit, *bcm.BCM) {
	t.Helper()
	s := clock.New()
	b := bus.New(s)
	h := New(ecu.New("headunit", s, b.Connect("headunit")), "secret")
	m := bcm.New(ecu.New("bcm", s, b.Connect("bcm")), bcm.Config{AckUnlock: true})
	return s, h, m
}

func TestAppUnlockReachesBCM(t *testing.T) {
	s, h, m := rig(t)
	if err := h.AppUnlock("secret"); err != nil {
		t.Fatalf("AppUnlock: %v", err)
	}
	s.RunUntil(50 * time.Millisecond)
	if !m.Unlocked() {
		t.Fatal("BCM not unlocked by app command")
	}
	if h.Commands() != 1 {
		t.Fatalf("Commands = %d", h.Commands())
	}
}

func TestAppLockReachesBCM(t *testing.T) {
	s, h, m := rig(t)
	h.AppUnlock("secret")
	s.RunUntil(50 * time.Millisecond)
	if err := h.AppLock("secret"); err != nil {
		t.Fatal(err)
	}
	s.RunUntil(100 * time.Millisecond)
	if m.Unlocked() {
		t.Fatal("BCM not locked by app command")
	}
}

func TestBadTokenRejected(t *testing.T) {
	s, h, m := rig(t)
	if err := h.AppUnlock("wrong"); !errors.Is(err, ErrUnauthenticated) {
		t.Fatalf("err = %v, want ErrUnauthenticated", err)
	}
	s.RunUntil(50 * time.Millisecond)
	if m.Unlocked() {
		t.Fatal("unauthenticated command unlocked the doors")
	}
	if h.Commands() != 0 {
		t.Fatal("rejected command counted")
	}
}

func TestAckObserved(t *testing.T) {
	s, h, _ := rig(t)
	h.AppUnlock("secret")
	s.RunUntil(50 * time.Millisecond)
	if !h.AckSeen() {
		t.Fatal("unlock ack not observed by head unit")
	}
}

func TestAckResetPerCommand(t *testing.T) {
	s, h, _ := rig(t)
	h.AppUnlock("secret")
	s.RunUntil(50 * time.Millisecond)
	if !h.AckSeen() {
		t.Fatal("precondition failed")
	}
	// Lock does not produce an ack; the flag must reset when the command
	// is issued.
	h.AppLock("secret")
	if h.AckSeen() {
		t.Fatal("AckSeen not reset on new command")
	}
}

func TestCommandFrameMatchesPaperEncoding(t *testing.T) {
	// The relayed frame must be the paper's 0x215 unlock message.
	s := clock.New()
	b := bus.New(s)
	h := New(ecu.New("headunit", s, b.Connect("headunit")), "secret")
	peer := b.Connect("peer")
	var got []byte
	var gotID uint16
	peer.SetReceiver(func(m bus.Message) {
		gotID = uint16(m.Frame.ID)
		got = m.Frame.Payload()
	})
	h.AppUnlock("secret")
	s.RunUntil(50 * time.Millisecond)
	if gotID != uint16(signal.IDBodyCommand) {
		t.Fatalf("id = %#x", gotID)
	}
	if len(got) != 7 || got[0] != signal.CmdUnlock || got[1] != 0x5F {
		t.Fatalf("payload = % X", got)
	}
}

func TestAuthenticatedRelayStampsMAC(t *testing.T) {
	s := clock.New()
	b := bus.New(s)
	h := New(ecu.New("headunit", s, b.Connect("headunit")), "secret")
	h.SetAuthenticate(true)
	peer := b.Connect("peer")
	var got []byte
	peer.SetReceiver(func(m bus.Message) { got = m.Frame.Payload() })
	if err := h.AppUnlock("secret"); err != nil {
		t.Fatal(err)
	}
	s.RunUntil(50 * time.Millisecond)
	if len(got) != 7 {
		t.Fatalf("payload = % X", got)
	}
	if got[6] != signal.CommandAuthCode(got[:6]) {
		t.Fatalf("byte 6 = %#x, not the MAC", got[6])
	}
}

func TestAuthenticatedCommandOpensHardenedBCM(t *testing.T) {
	s := clock.New()
	b := bus.New(s)
	h := New(ecu.New("headunit", s, b.Connect("headunit")), "secret")
	h.SetAuthenticate(true)
	m := bcm.New(ecu.New("bcm", s, b.Connect("bcm")), bcm.Config{Check: bcm.CheckAuthenticated})
	if err := h.AppUnlock("secret"); err != nil {
		t.Fatal(err)
	}
	s.RunUntil(50 * time.Millisecond)
	if !m.Unlocked() {
		t.Fatal("authenticated unlock rejected by hardened BCM")
	}
}

func TestRelayFailsWhenHeadUnitPoweredOff(t *testing.T) {
	s := clock.New()
	b := bus.New(s)
	e := ecu.New("headunit", s, b.Connect("headunit"))
	h := New(e, "secret")
	e.PowerOff()
	if err := h.AppUnlock("secret"); err == nil {
		t.Fatal("powered-off head unit relayed a command")
	}
	if h.Commands() != 0 {
		t.Fatal("failed relay counted")
	}
}

func TestShortAckFrameIgnored(t *testing.T) {
	s := clock.New()
	b := bus.New(s)
	h := New(ecu.New("headunit", s, b.Connect("headunit")), "secret")
	peer := b.Connect("peer")
	peer.Send(can.MustNew(signal.IDUnlockAck, nil)) // zero-length ack id
	s.RunUntil(10 * time.Millisecond)
	if h.AckSeen() {
		t.Fatal("empty frame counted as ack")
	}
}
