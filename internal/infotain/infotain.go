// Package infotain models the infotainment head unit of the paper's remote
// unlock scenario (Fig 12): the manufacturer's smartphone app sends a
// lock/unlock command to the head unit over a (nominally) secure channel,
// and the head unit relays it onto the vehicle CAN bus as a BodyCommand
// frame. The paper's PC app (Fig 13) played the smartphone role; here the
// AppLock/AppUnlock methods do.
package infotain

import (
	"errors"

	"repro/internal/bus"
	"repro/internal/ecu"
	"repro/internal/signal"
)

// ErrUnauthenticated is returned when an app command arrives without a
// valid session token. The app channel is the "secure connection (or
// should be)" of Fig 12.
var ErrUnauthenticated = errors.New("infotain: app session not authenticated")

// HeadUnit is the infotainment application.
type HeadUnit struct {
	ecu *ecu.ECU
	db  *signal.Database

	token    string
	seq      uint8
	commands uint64
	lastAck  bool
	auth     bool
}

// New builds the head unit on an ECU runtime. token is the shared secret
// the paired app must present (the bench used an implicit pairing).
func New(e *ecu.ECU, token string) *HeadUnit {
	h := &HeadUnit{ecu: e, db: signal.VehicleDB(), token: token}
	e.Handle(signal.IDUnlockAck, h.onAck)
	return h
}

// ECU exposes the underlying runtime.
func (h *HeadUnit) ECU() *ecu.ECU { return h.ecu }

// Reset returns the application state to its as-constructed form for
// world reuse: command sequence and counters rewound, acknowledgement
// flag cleared. The pairing token and authentication mode survive.
func (h *HeadUnit) Reset() {
	h.seq = 0
	h.commands = 0
	h.lastAck = false
}

// SetAuthenticate enables the truncated-MAC command authentication of the
// hardened BCM variant (bcm.CheckAuthenticated): the head unit stamps
// byte 6 of each relayed command with signal.CommandAuthCode.
func (h *HeadUnit) SetAuthenticate(on bool) { h.auth = on }

// Commands returns how many app commands were relayed onto the bus.
func (h *HeadUnit) Commands() uint64 { return h.commands }

// AckSeen reports whether an unlock acknowledgement has been observed
// since the last command.
func (h *HeadUnit) AckSeen() bool { return h.lastAck }

// AppUnlock relays an authenticated unlock request onto the CAN bus.
func (h *HeadUnit) AppUnlock(token string) error {
	return h.relay(token, signal.CmdUnlock)
}

// AppLock relays an authenticated lock request onto the CAN bus.
func (h *HeadUnit) AppLock(token string) error {
	return h.relay(token, signal.CmdLock)
}

func (h *HeadUnit) relay(token string, cmd byte) error {
	if token != h.token {
		return ErrUnauthenticated
	}
	h.seq++
	h.lastAck = false
	def, ok := h.db.ByID(signal.IDBodyCommand)
	if !ok {
		return errors.New("infotain: BodyCommand not in database")
	}
	f, err := def.Encode(map[string]float64{
		"Command":  float64(cmd),
		"Sequence": float64(h.seq),
	})
	if err != nil {
		return err
	}
	if h.auth {
		signal.AuthenticateCommand(f.Data[:f.Len])
	}
	if err := h.ecu.Send(f); err != nil {
		return err
	}
	h.commands++
	return nil
}

func (h *HeadUnit) onAck(m bus.Message) {
	if m.Frame.Len >= 1 && m.Frame.Data[0] == signal.UnlockAckCode {
		h.lastAck = true
	}
}
