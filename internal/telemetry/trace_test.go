package telemetry

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

func TestTracerNilSafe(t *testing.T) {
	var tr *Tracer
	tr.Emit(Event{Kind: EvTx})
	tr.SetKinds(EvTx)
	if tr.Total() != 0 || tr.Len() != 0 || tr.Events() != nil {
		t.Fatal("nil tracer must be inert")
	}
}

func TestTracerRingOverwritesOldest(t *testing.T) {
	tr := NewTracer(3)
	for i := 0; i < 5; i++ {
		tr.Emit(Event{Kind: EvTx, At: time.Duration(i)})
	}
	if tr.Total() != 5 || tr.Len() != 3 {
		t.Fatalf("total=%d len=%d", tr.Total(), tr.Len())
	}
	got := tr.Events()
	for i, want := range []time.Duration{2, 3, 4} {
		if got[i].At != want {
			t.Fatalf("event %d at %v, want %v (oldest-first order broken)", i, got[i].At, want)
		}
	}
}

func TestTracerKindFilter(t *testing.T) {
	tr := NewTracer(8)
	tr.SetKinds(EvOracle)
	tr.Emit(Event{Kind: EvTx})
	tr.Emit(Event{Kind: EvOracle})
	if tr.Len() != 1 || tr.Events()[0].Kind != EvOracle {
		t.Fatalf("filter failed: %v", tr.Events())
	}
	tr.SetKinds() // back to all
	tr.Emit(Event{Kind: EvTx})
	if tr.Len() != 2 {
		t.Fatal("empty SetKinds must re-enable all kinds")
	}
}

func TestWriteChromeTraceShape(t *testing.T) {
	tr := NewTracer(8)
	tr.Emit(Event{At: time.Millisecond, Dur: 222 * time.Microsecond,
		Kind: EvTx, Actor: "fuzzer", Name: "tx 0x215", ID: 0x215})
	tr.Emit(Event{At: 2 * time.Millisecond, Kind: EvOracle, Actor: "campaign",
		Name: "oracle", Detail: "unlock-ack", N: 42})

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Cat  string         `json:"cat"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			S    string         `json:"s"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	// 2 thread_name metadata events + 2 payload events.
	if len(doc.TraceEvents) != 4 {
		t.Fatalf("events = %d", len(doc.TraceEvents))
	}
	meta := doc.TraceEvents[0]
	if meta.Name != "thread_name" || meta.Ph != "M" || meta.Args["name"] != "fuzzer" {
		t.Fatalf("metadata event wrong: %+v", meta)
	}
	tx := doc.TraceEvents[2]
	if tx.Ph != "X" || tx.Cat != "tx" || tx.Ts != 1000 || tx.Dur != 222 || tx.Tid != 1 {
		t.Fatalf("tx event wrong: %+v", tx)
	}
	inst := doc.TraceEvents[3]
	if inst.Ph != "i" || inst.S != "t" || inst.Cat != "oracle" ||
		inst.Args["detail"] != "unlock-ack" || inst.Args["n"] != float64(42) {
		t.Fatalf("instant event wrong: %+v", inst)
	}
}

func TestTelemetryNilSafe(t *testing.T) {
	var tel *Telemetry
	tel.Advance(time.Second)
	tel.Emit(Event{Kind: EvReset})
	if tel.Reg() != nil || tel.Trc() != nil {
		t.Fatal("nil telemetry must hand out nil planes")
	}
}
