package telemetry

import (
	"fmt"
	"net"
	"net/http"
	"time"
)

// Handler returns the live introspection endpoint:
//
//	/metrics       Prometheus text exposition
//	/metrics.json  JSON metrics snapshot
//	/trace.json    Chrome trace_event document (load in Perfetto)
//	/healthz       liveness + virtual-time progress
//
// All routes read atomically published state, so scraping while the
// simulation loop runs is race-free; a scrape observes the counters as of
// the last completed event.
func Handler(t *Telemetry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = t.Reg().WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = t.Reg().WriteJSON(w)
	})
	mux.HandleFunc("/trace.json", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = t.Trc().WriteChromeTrace(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, "{\"status\":\"ok\",\"virtualTimeMicros\":%d,\"traceEvents\":%d}\n",
			int64(t.Reg().Now()/time.Microsecond), t.Trc().Len())
	})
	return mux
}

// Serve starts the introspection endpoint on addr (e.g. "localhost:9900";
// a ":0" port picks a free one). It returns the server and its bound
// address; the caller shuts it down with server.Close.
func Serve(addr string, t *Telemetry) (*http.Server, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: Handler(t)}
	go func() { _ = srv.Serve(ln) }()
	return srv, ln.Addr().String(), nil
}
