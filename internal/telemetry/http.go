package telemetry

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"time"
)

// Handler returns the live introspection endpoint:
//
//	/metrics       Prometheus text exposition
//	/metrics.json  JSON metrics snapshot
//	/trace.json    Chrome trace_event document (load in Perfetto)
//	/healthz       liveness + virtual-time progress
//
// All routes read atomically published state, so scraping while the
// simulation loop runs is race-free; a scrape observes the counters as of
// the last completed event.
func Handler(t *Telemetry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = t.Reg().WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = t.Reg().WriteJSON(w)
	})
	mux.HandleFunc("/trace.json", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = t.Trc().WriteChromeTrace(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, "{\"status\":\"ok\",\"virtualTimeMicros\":%d,\"traceEvents\":%d}\n",
			int64(t.Reg().Now()/time.Microsecond), t.Trc().Len())
	})
	return mux
}

// Serve starts the introspection endpoint on addr (e.g. "localhost:9900";
// a ":0" port picks a free one). It returns the server and its bound
// address; the caller shuts it down with Shutdown (graceful) or
// server.Close (abrupt).
func Serve(addr string, t *Telemetry) (*http.Server, string, error) {
	return ServeHandler(addr, Handler(t))
}

// ServeHandler is Serve for an arbitrary handler — the observatory mounts
// its extended mux through it. Each onShutdown hook is registered via
// http.Server.RegisterOnShutdown, so a graceful Shutdown runs it before
// waiting for in-flight requests: the hook's job is to *unblock* them.
// The observatory passes its event sink's Close here, which wakes /events
// long-pollers that would otherwise hold the drain until their client
// timeout.
func ServeHandler(addr string, h http.Handler, onShutdown ...func()) (*http.Server, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: h}
	for _, fn := range onShutdown {
		srv.RegisterOnShutdown(fn)
	}
	go func() { _ = srv.Serve(ln) }()
	return srv, ln.Addr().String(), nil
}

// Shutdown drains the server gracefully: in-flight scrapes get up to grace
// to finish, then the server is closed hard. Safe on a nil server.
func Shutdown(srv *http.Server, grace time.Duration) {
	if srv == nil {
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), grace)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		_ = srv.Close()
	}
}

// Hold blocks for d or until ctx is cancelled — the -metrics-hold wait,
// interruptible by SIGINT when the caller wires signal.NotifyContext.
// d <= 0 returns immediately.
func Hold(ctx context.Context, d time.Duration) {
	if d <= 0 {
		return
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}
