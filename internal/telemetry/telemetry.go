// Package telemetry is the unified observability plane of the simulated
// stack: a metrics registry (counters, gauges, bounded histograms), a
// bounded event tracer, and HTTP surfacing — all timestamped on the
// discrete-event virtual clock rather than wall time.
//
// The paper's automation requirement (§I "fuzz testing is automated for
// efficiency", §VI recorded failure conditions) needs more than a final
// JSON report: a CI pipeline has to watch a running campaign, correlate an
// oracle firing with the arbitration and error-frame events that preceded
// it, and compare throughput across revisions. Every instrumentation hook
// is nil-safe — a component holding a nil *Telemetry (the default) pays
// one predictable branch per sample and allocates nothing — so the fuzzing
// hot path is unchanged unless observability is requested.
//
// Exports:
//   - Registry: Prometheus text exposition and a JSON snapshot.
//   - Tracer: Chrome trace_event JSON; open a campaign in Perfetto and see
//     per-port arbitration, wire-time spans, ECU dispatch and oracle
//     firings on the virtual timeline.
//   - Handler/Serve: /metrics, /metrics.json, /healthz, /trace.json.
package telemetry

import (
	"time"
)

// Telemetry bundles a registry and a tracer. A nil *Telemetry disables
// both: Reg() and Trc() return nil, whose methods are no-ops.
type Telemetry struct {
	// Registry holds the metric series.
	Registry *Registry
	// Tracer holds the event ring buffer.
	Tracer *Tracer
}

// New creates a Telemetry with a fresh registry and a tracer of the given
// capacity (DefaultTraceCapacity when <= 0).
func New(traceCapacity int) *Telemetry {
	return &Telemetry{
		Registry: NewRegistry(),
		Tracer:   NewTracer(traceCapacity),
	}
}

// Reg returns the registry (nil when t is nil).
func (t *Telemetry) Reg() *Registry {
	if t == nil {
		return nil
	}
	return t.Registry
}

// Trc returns the tracer (nil when t is nil).
func (t *Telemetry) Trc() *Tracer {
	if t == nil {
		return nil
	}
	return t.Tracer
}

// Advance records the current virtual time on the registry so exports and
// /healthz can report how far the simulation has progressed.
func (t *Telemetry) Advance(now time.Duration) {
	if t == nil {
		return
	}
	t.Registry.Advance(now)
}

// Reset zeroes every metric series and discards retained trace events,
// keeping all registrations and handles. Called when a pooled world is
// reused so one trial's telemetry cannot leak into the next. Nil-safe.
func (t *Telemetry) Reset() {
	if t == nil {
		return
	}
	t.Registry.Reset()
	t.Tracer.Reset()
}

// Emit forwards one trace event.
func (t *Telemetry) Emit(e Event) {
	if t == nil {
		return
	}
	t.Tracer.Emit(e)
}
