package telemetry

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// EventKind classifies trace events. Kinds map to Chrome trace_event
// categories so Perfetto can filter one plane of the simulation at a time.
type EventKind uint8

// Trace event kinds emitted by the instrumented stack.
const (
	// EvArbWon marks a port winning bus arbitration.
	EvArbWon EventKind = iota + 1
	// EvArbLost marks a port losing an arbitration round.
	EvArbLost
	// EvTx is a completed frame transmission; Dur is the stuffed wire time.
	EvTx
	// EvErrorFrame marks a destroyed transmission (corruption or protocol
	// violation signalled by error flags).
	EvErrorFrame
	// EvStateChange marks an error-active/error-passive/bus-off transition.
	EvStateChange
	// EvDispatch marks an ECU handling a received frame.
	EvDispatch
	// EvGenBatch marks a generator progress checkpoint (every batch of
	// fuzz frames).
	EvGenBatch
	// EvOracle marks an oracle firing.
	EvOracle
	// EvReset marks a campaign system reset.
	EvReset
	// EvCustom is free-form instrumentation.
	EvCustom
	// EvFault marks an injected fault (wire corruption window, babbling
	// node, jam, ECU stall/panic, port detach) taking effect.
	EvFault
	// EvRecover marks a recovery action: a bus-off node rejoining after the
	// ISO 11898-1 interval, an ECU rebooting after a crash, or a campaign
	// watchdog reset restoring bus progress.
	EvRecover
)

// category returns the trace_event "cat" string.
func (k EventKind) category() string {
	switch k {
	case EvArbWon, EvArbLost:
		return "arbitration"
	case EvTx:
		return "tx"
	case EvErrorFrame, EvStateChange:
		return "error"
	case EvDispatch:
		return "ecu"
	case EvGenBatch:
		return "generator"
	case EvOracle:
		return "oracle"
	case EvReset:
		return "campaign"
	case EvFault:
		return "fault"
	case EvRecover:
		return "recovery"
	default:
		return "custom"
	}
}

// Event is one trace sample on the virtual timeline. The fixed-shape args
// (ID, N, Detail) keep Emit allocation-free.
type Event struct {
	// At is the virtual start instant.
	At time.Duration
	// Dur is the span length; zero means an instant event.
	Dur time.Duration
	// Kind classifies the event.
	Kind EventKind
	// Actor is the emitting entity (port, ECU, campaign); it becomes the
	// trace track (tid).
	Actor string
	// Name is the display name.
	Name string
	// Detail is an optional free-form argument.
	Detail string
	// ID is the CAN identifier involved, when meaningful.
	ID uint32
	// N is a generic numeric argument (frame count, error counter...).
	N uint64
}

// Tracer records events into a bounded ring buffer: when full, the oldest
// events are overwritten, so a long campaign keeps its most recent history
// (the frames *before* a finding — exactly what the paper's failure
// analysis needs). A nil *Tracer is valid and Emit on it is a no-op.
type Tracer struct {
	mu      sync.Mutex
	buf     []Event
	next    int
	filled  bool
	total   uint64
	enabled map[EventKind]bool // nil = all kinds
}

// DefaultTraceCapacity bounds the ring buffer (events retained).
const DefaultTraceCapacity = 1 << 16

// NewTracer creates a tracer retaining up to capacity events
// (DefaultTraceCapacity when capacity <= 0).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &Tracer{buf: make([]Event, capacity)}
}

// SetKinds restricts recording to the given kinds (all kinds when empty).
// Restricting high-rate kinds (EvDispatch, EvTx) stretches the ring's
// history for long campaigns.
func (t *Tracer) SetKinds(kinds ...EventKind) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(kinds) == 0 {
		t.enabled = nil
		return
	}
	t.enabled = make(map[EventKind]bool, len(kinds))
	for _, k := range kinds {
		t.enabled[k] = true
	}
}

// Emit records one event. Safe on a nil receiver and for concurrent use.
func (t *Tracer) Emit(e Event) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if t.enabled != nil && !t.enabled[e.Kind] {
		t.mu.Unlock()
		return
	}
	t.buf[t.next] = e
	t.next++
	if t.next == len(t.buf) {
		t.next = 0
		t.filled = true
	}
	t.total++
	t.mu.Unlock()
}

// Reset discards all retained events (the kind filter and capacity are
// kept), so a reused world's trace starts empty like a fresh one's.
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.next = 0
	t.filled = false
	t.total = 0
}

// Total returns how many events were emitted (including overwritten ones).
func (t *Tracer) Total() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Len returns how many events are currently retained.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.filled {
		return len(t.buf)
	}
	return t.next
}

// Events returns the retained events, oldest first.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.filled {
		out := make([]Event, t.next)
		copy(out, t.buf[:t.next])
		return out
	}
	out := make([]Event, 0, len(t.buf))
	out = append(out, t.buf[t.next:]...)
	out = append(out, t.buf[:t.next]...)
	return out
}

// chromeEvent is the trace_event JSON shape Perfetto/chrome://tracing read.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"` // microseconds
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace writes the retained events as a Chrome trace_event JSON
// document on the virtual timeline: load the file in Perfetto (or
// chrome://tracing) and each actor (port, ECU, campaign) appears as its own
// track, with tx spans sized by their stuffed wire time.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	events := t.Events()

	// Assign one track per actor, in order of first appearance, and name
	// the tracks with thread_name metadata events.
	tids := make(map[string]int)
	var order []string
	for _, e := range events {
		if _, ok := tids[e.Actor]; !ok {
			tids[e.Actor] = len(tids) + 1
			order = append(order, e.Actor)
		}
	}

	out := make([]chromeEvent, 0, len(events)+len(order))
	for _, actor := range order {
		out = append(out, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: 1, Tid: tids[actor],
			Args: map[string]any{"name": actor},
		})
	}
	for _, e := range events {
		ce := chromeEvent{
			Name: e.Name,
			Cat:  e.Kind.category(),
			Ts:   float64(e.At) / float64(time.Microsecond),
			Pid:  1,
			Tid:  tids[e.Actor],
		}
		if e.Dur > 0 {
			ce.Ph = "X"
			ce.Dur = float64(e.Dur) / float64(time.Microsecond)
		} else {
			ce.Ph = "i"
			ce.S = "t" // thread-scoped instant
		}
		args := make(map[string]any)
		if e.Detail != "" {
			args["detail"] = e.Detail
		}
		if e.ID != 0 || e.Kind == EvTx || e.Kind == EvArbWon || e.Kind == EvArbLost {
			args["id"] = e.ID
		}
		if e.N != 0 {
			args["n"] = e.N
		}
		if len(args) > 0 {
			ce.Args = args
		}
		out = append(out, ce)
	}

	doc := struct {
		TraceEvents     []chromeEvent `json:"traceEvents"`
		DisplayTimeUnit string        `json:"displayTimeUnit"`
	}{TraceEvents: out, DisplayTimeUnit: "ms"}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(doc)
}
