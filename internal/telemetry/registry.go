package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Registry collects named metrics. Samples carry the discrete-event virtual
// time (see Advance), not wall time: a scrape of a campaign that ran 4472
// simulated seconds in 40 ms of real time reports 4472 s.
//
// Hot-path operations (Counter.Inc, Gauge.Set, Histogram.Observe) are
// lock-free atomic updates with zero allocations, so the simulation loop can
// sample freely. Registration and export take a mutex and may allocate.
//
// A nil *Registry is valid: registration returns nil metrics and every
// metric method is a no-op on a nil receiver, so uninstrumented components
// pay only a nil check.
type Registry struct {
	mu      sync.Mutex
	metrics []metric
	index   map[string]metric

	// now is the latest virtual time reported via Advance, in nanoseconds.
	now atomic.Int64
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{index: make(map[string]metric)}
}

// Advance records the current virtual time. Components call it from the
// simulation goroutine; exports read it atomically, so a live HTTP scrape
// never races the event loop.
func (r *Registry) Advance(now time.Duration) {
	if r == nil {
		return
	}
	if cur := r.now.Load(); int64(now) > cur {
		r.now.Store(int64(now))
	}
}

// Now returns the latest virtual time the registry has seen.
func (r *Registry) Now() time.Duration {
	if r == nil {
		return 0
	}
	return time.Duration(r.now.Load())
}

// Label is one metric dimension, rendered as name{key="value"}.
type Label struct {
	Key   string
	Value string
}

// desc is the shared identity of a metric series.
type desc struct {
	name   string
	help   string
	labels []Label
}

// key returns the unique series identifier (name plus sorted labels).
func (d *desc) key() string {
	if len(d.labels) == 0 {
		return d.name
	}
	var sb strings.Builder
	sb.WriteString(d.name)
	for _, l := range d.labels {
		sb.WriteByte('{')
		sb.WriteString(l.Key)
		sb.WriteByte('=')
		sb.WriteString(l.Value)
		sb.WriteByte('}')
	}
	return sb.String()
}

// labelString renders {k="v",...} or "" for an unlabelled series.
func (d *desc) labelString() string {
	if len(d.labels) == 0 {
		return ""
	}
	var sb strings.Builder
	sb.WriteByte('{')
	for i, l := range d.labels {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(l.Key)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(l.Value))
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
	return sb.String()
}

func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// metric is the common interface of registered series.
type metric interface {
	describe() *desc
	typ() string
	// writeProm appends the sample line(s) for this series.
	writeProm(w io.Writer) error
	// jsonValue returns the export value for the JSON snapshot.
	jsonValue() any
	// zero clears the series value, keeping its registration — the plane
	// of a pooled world must not carry one trial's counts into the next.
	zero()
}

// Reset zeroes every registered series in place, keeping all
// registrations (components hold direct metric handles, so the series
// themselves must survive). Used when a world is reused across trials.
func (r *Registry) Reset() {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, m := range r.metrics {
		m.zero()
	}
	r.now.Store(0)
}

// register interns a series: registering the same name+labels twice returns
// the existing metric, so independent components can share counters.
func register[M metric](r *Registry, m M) M {
	r.mu.Lock()
	defer r.mu.Unlock()
	k := m.describe().key()
	if existing, ok := r.index[k]; ok {
		if got, ok := existing.(M); ok {
			return got
		}
		panic(fmt.Sprintf("telemetry: metric %q re-registered as a different type", k))
	}
	r.index[k] = m
	r.metrics = append(r.metrics, m)
	return m
}

// sortLabels normalises label order so registration is order-insensitive.
func sortLabels(labels []Label) []Label {
	out := make([]Label, len(labels))
	copy(out, labels)
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// --- Counter ---------------------------------------------------------------

// Counter is a monotonically increasing uint64. All methods are safe on a
// nil receiver (no-op) and safe for concurrent use.
type Counter struct {
	d desc
	v atomic.Uint64
}

// Counter registers (or fetches) a counter series.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	return register(r, &Counter{d: desc{name: name, help: help, labels: sortLabels(labels)}})
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

func (c *Counter) describe() *desc { return &c.d }
func (c *Counter) typ() string     { return "counter" }
func (c *Counter) jsonValue() any  { return c.Value() }
func (c *Counter) zero()           { c.v.Store(0) }

func (c *Counter) writeProm(w io.Writer) error {
	_, err := fmt.Fprintf(w, "%s%s %d\n", c.d.name, c.d.labelString(), c.Value())
	return err
}

// --- Gauge -----------------------------------------------------------------

// Gauge is an instantaneous float64. Safe on a nil receiver and for
// concurrent use.
type Gauge struct {
	d    desc
	bits atomic.Uint64
}

// Gauge registers (or fetches) a gauge series.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	return register(r, &Gauge{d: desc{name: name, help: help, labels: sortLabels(labels)}})
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

func (g *Gauge) describe() *desc { return &g.d }
func (g *Gauge) typ() string     { return "gauge" }
func (g *Gauge) jsonValue() any  { return g.Value() }
func (g *Gauge) zero()           { g.bits.Store(0) }

func (g *Gauge) writeProm(w io.Writer) error {
	_, err := fmt.Fprintf(w, "%s%s %s\n", g.d.name, g.d.labelString(), formatFloat(g.Value()))
	return err
}

// --- Histogram -------------------------------------------------------------

// Histogram accumulates observations into a fixed set of cumulative
// buckets (Prometheus classic histogram semantics). Bounds are upper
// limits in ascending order; an implicit +Inf bucket is always present.
// Observe is a lock-free binary search plus two atomic adds.
type Histogram struct {
	d       desc
	bounds  []float64
	buckets []atomic.Uint64 // one per bound, non-cumulative; +Inf is buckets[len(bounds)]
	count   atomic.Uint64
	sumBits atomic.Uint64 // math.Float64bits of the running sum, CAS-updated
}

// DurationBuckets is a default bucket layout for virtual-time latencies
// (seconds): 100 µs up to ~1 s in roughly 3x steps. CAN frame wire times at
// 500 kb/s fall in the 100 µs–1 ms decade.
var DurationBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.05, 0.1, 0.5, 1,
}

// Histogram registers (or fetches) a histogram series with the given
// bucket upper bounds (nil uses DurationBuckets).
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	if len(bounds) == 0 {
		bounds = DurationBuckets
	}
	bs := make([]float64, len(bounds))
	copy(bs, bounds)
	sort.Float64s(bs)
	h := &Histogram{
		d:       desc{name: name, help: help, labels: sortLabels(labels)},
		bounds:  bs,
		buckets: make([]atomic.Uint64, len(bs)+1),
	}
	return register(r, h)
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveDuration records a virtual duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

func (h *Histogram) describe() *desc { return &h.d }
func (h *Histogram) typ() string     { return "histogram" }

func (h *Histogram) zero() {
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
	h.count.Store(0)
	h.sumBits.Store(0)
}

func (h *Histogram) jsonValue() any {
	type bucket struct {
		LE    float64 `json:"le"`
		Count uint64  `json:"count"`
	}
	var (
		out []bucket
		cum uint64
	)
	for i, b := range h.bounds {
		cum += h.buckets[i].Load()
		out = append(out, bucket{LE: b, Count: cum})
	}
	return map[string]any{
		"count":   h.Count(),
		"sum":     h.Sum(),
		"buckets": out,
	}
}

func (h *Histogram) writeProm(w io.Writer) error {
	base := h.d.name
	// Re-render labels with le appended per bucket.
	var cum uint64
	for i, b := range h.bounds {
		cum += h.buckets[i].Load()
		if err := h.writeBucket(w, formatFloat(b), cum); err != nil {
			return err
		}
	}
	cum += h.buckets[len(h.bounds)].Load()
	if err := h.writeBucket(w, "+Inf", cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", base, h.d.labelString(), formatFloat(h.Sum())); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", base, h.d.labelString(), h.Count())
	return err
}

func (h *Histogram) writeBucket(w io.Writer, le string, cum uint64) error {
	var sb strings.Builder
	sb.WriteByte('{')
	for _, l := range h.d.labels {
		sb.WriteString(l.Key)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(l.Value))
		sb.WriteString(`",`)
	}
	sb.WriteString(`le="`)
	sb.WriteString(le)
	sb.WriteString(`"}`)
	_, err := fmt.Fprintf(w, "%s_bucket%s %d\n", h.d.name, sb.String(), cum)
	return err
}

// formatFloat renders a float compactly and deterministically.
func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatFloat(v, 'f', -1, 64)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// --- Export ----------------------------------------------------------------

// snapshot returns the registered metrics sorted by name then label key,
// giving deterministic export order regardless of registration order.
func (r *Registry) snapshot() []metric {
	r.mu.Lock()
	out := make([]metric, len(r.metrics))
	copy(out, r.metrics)
	r.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool {
		di, dj := out[i].describe(), out[j].describe()
		if di.name != dj.name {
			return di.name < dj.name
		}
		return di.key() < dj.key()
	})
	return out
}

// WritePrometheus writes the registry in the Prometheus text exposition
// format (version 0.0.4). Series sharing a name emit one HELP/TYPE header.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	prevName := ""
	for _, m := range r.snapshot() {
		d := m.describe()
		if d.name != prevName {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", d.name, d.help, d.name, m.typ()); err != nil {
				return err
			}
			prevName = d.name
		}
		if err := m.writeProm(w); err != nil {
			return err
		}
	}
	return nil
}

// jsonMetric is one series in the JSON snapshot.
type jsonMetric struct {
	Name   string            `json:"name"`
	Type   string            `json:"type"`
	Labels map[string]string `json:"labels,omitempty"`
	Value  any               `json:"value"`
}

// WriteJSON writes a machine-readable snapshot: the virtual timestamp and
// every series, sorted.
func (r *Registry) WriteJSON(w io.Writer) error {
	if r == nil {
		_, err := io.WriteString(w, "{}\n")
		return err
	}
	doc := struct {
		VirtualTimeMicros int64        `json:"virtualTimeMicros"`
		Metrics           []jsonMetric `json:"metrics"`
	}{VirtualTimeMicros: int64(r.Now() / time.Microsecond)}
	for _, m := range r.snapshot() {
		d := m.describe()
		jm := jsonMetric{Name: d.name, Type: m.typ(), Value: m.jsonValue()}
		if len(d.labels) > 0 {
			jm.Labels = make(map[string]string, len(d.labels))
			for _, l := range d.labels {
				jm.Labels[l.Key] = l.Value
			}
		}
		doc.Metrics = append(doc.Metrics, jm)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
