package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterNilSafe(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(7)
	if c.Value() != 0 {
		t.Fatal("nil counter must read zero")
	}
	var g *Gauge
	g.Set(3.5)
	if g.Value() != 0 {
		t.Fatal("nil gauge must read zero")
	}
	var h *Histogram
	h.Observe(1)
	h.ObserveDuration(time.Second)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil histogram must read zero")
	}
}

func TestNilRegistryReturnsNilMetrics(t *testing.T) {
	var r *Registry
	if r.Counter("x", "") != nil || r.Gauge("y", "") != nil ||
		r.Histogram("z", "", DurationBuckets) != nil {
		t.Fatal("nil registry must hand out nil metrics")
	}
	r.Advance(time.Second)
	if r.Now() != 0 {
		t.Fatal("nil registry Now must be zero")
	}
}

func TestRegistrationIsIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("frames_total", "frames", Label{"bus", "can"})
	b := r.Counter("frames_total", "frames", Label{"bus", "can"})
	if a != b {
		t.Fatal("same name+labels must return the same counter")
	}
	c := r.Counter("frames_total", "frames", Label{"bus", "other"})
	if a == c {
		t.Fatal("different labels must return a different counter")
	}
	a.Add(2)
	if b.Value() != 2 {
		t.Fatalf("shared counter = %d, want 2", b.Value())
	}
}

func TestCounterGaugeHistogramValues(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "")
	c.Inc()
	c.Add(9)
	if c.Value() != 10 {
		t.Fatalf("counter = %d", c.Value())
	}
	g := r.Gauge("g", "")
	g.Set(-2.5)
	if g.Value() != -2.5 {
		t.Fatalf("gauge = %v", g.Value())
	}
	h := r.Histogram("h_seconds", "", []float64{0.01, 0.1, 1})
	h.Observe(0.25)
	h.Observe(0.5)
	h.Observe(50) // above the top bound: +Inf bucket only
	if h.Count() != 3 {
		t.Fatalf("count = %d", h.Count())
	}
	if got := h.Sum(); got != 50.75 {
		t.Fatalf("sum = %v", got)
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total", "second metric", Label{"bus", "can"}).Add(3)
	r.Counter("a_total", "first metric").Inc()
	r.Gauge("load_ratio", "bus load").Set(0.25)
	h := r.Histogram("tx_seconds", "wire time", []float64{0.001, 0.01})
	h.Observe(0.0009765625) // 2^-10: exact in binary, stable sum output
	h.Observe(0.5)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# HELP a_total first metric\n# TYPE a_total counter\na_total 1\n",
		"b_total{bus=\"can\"} 3\n",
		"# TYPE load_ratio gauge\nload_ratio 0.25\n",
		"tx_seconds_bucket{le=\"0.001\"} 1\n",
		"tx_seconds_bucket{le=\"+Inf\"} 2\n",
		"tx_seconds_sum 0.5009765625\n",
		"tx_seconds_count 2\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	// Output is sorted: a_total before b_total before load_ratio.
	if strings.Index(out, "a_total") > strings.Index(out, "b_total") {
		t.Fatal("metrics must be name-sorted")
	}
}

func TestWriteJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("frames_total", "", Label{"bus", "can"}).Add(4)
	r.Advance(1500 * time.Millisecond)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		VirtualTimeMicros int64 `json:"virtualTimeMicros"`
		Metrics           []struct {
			Name   string            `json:"name"`
			Type   string            `json:"type"`
			Labels map[string]string `json:"labels,omitempty"`
			Value  any               `json:"value"`
		} `json:"metrics"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.VirtualTimeMicros != 1500000 {
		t.Fatalf("virtualTimeMicros = %d", doc.VirtualTimeMicros)
	}
	if len(doc.Metrics) != 1 || doc.Metrics[0].Name != "frames_total" ||
		doc.Metrics[0].Labels["bus"] != "can" {
		t.Fatalf("metrics = %+v", doc.Metrics)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("weird_total", "", Label{"k", "a\"b\\c\nd"}).Inc()
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `weird_total{k="a\"b\\c\nd"} 1`) {
		t.Fatalf("bad escaping:\n%s", buf.String())
	}
}

func TestConcurrentScrapeWhileWriting(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("spin_total", "")
	h := r.Histogram("spin_seconds", "", DurationBuckets)
	g := r.Gauge("spin", "")
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
				c.Inc()
				g.Set(float64(c.Value()))
				h.Observe(0.001)
				r.Advance(time.Duration(c.Value()))
			}
		}
	}()
	for i := 0; i < 50; i++ {
		var buf bytes.Buffer
		if err := r.WritePrometheus(&buf); err != nil {
			t.Fatal(err)
		}
		if err := r.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
	}
	close(done)
	wg.Wait()
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		0:      "0",
		1:      "1",
		0.25:   "0.25",
		1e9:    "1000000000",
		0.0001: "0.0001",
	}
	for in, want := range cases {
		if got := formatFloat(in); got != want {
			t.Fatalf("formatFloat(%v) = %q, want %q", in, got, want)
		}
	}
}
