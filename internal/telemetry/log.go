package telemetry

import (
	"flag"
	"fmt"
	"io"
	"log/slog"
)

// Shared structured logging for the cmd/ tools. Every CLI used to print
// ad-hoc diagnostics to stderr in its own format; NewCLILogger gives them
// one handler so output is uniform, greppable, and (by dropping the wall
// timestamp) deterministic — the virtual clock is the only time that
// matters in a discrete-event run.

// NewCLILogger returns a logger writing "level msg key=value ..." lines to
// w, tagged with the tool name. The wall-clock time attribute is removed:
// runs are deterministic in virtual time and log output should be too.
func NewCLILogger(w io.Writer, tool string, level slog.Level) *slog.Logger {
	return newLogger(w, tool, level, false)
}

func newLogger(w io.Writer, tool string, level slog.Level, jsonFormat bool) *slog.Logger {
	opts := &slog.HandlerOptions{
		Level: level,
		ReplaceAttr: func(groups []string, a slog.Attr) slog.Attr {
			if a.Key == slog.TimeKey && len(groups) == 0 {
				return slog.Attr{}
			}
			return a
		},
	}
	var h slog.Handler
	if jsonFormat {
		h = slog.NewJSONHandler(w, opts)
	} else {
		h = slog.NewTextHandler(w, opts)
	}
	return slog.New(h).With("tool", tool)
}

// LogFlags is the shared -log-level / -log-format flag pair every cmd/
// tool registers, so log control is spelled identically across the
// toolbox.
type LogFlags struct {
	Level  string
	Format string
}

// RegisterLogFlags adds -log-level and -log-format to fs and returns the
// destination struct; call Logger after fs.Parse.
func RegisterLogFlags(fs *flag.FlagSet) *LogFlags {
	lf := &LogFlags{}
	fs.StringVar(&lf.Level, "log-level", "info", "log level: debug, info, warn, error")
	fs.StringVar(&lf.Format, "log-format", "text", "log format: text or json")
	return lf
}

// Logger builds the tool logger from the parsed flags. Unknown level or
// format values are an error so typos fail fast instead of logging at a
// surprise level.
func (lf *LogFlags) Logger(w io.Writer, tool string) (*slog.Logger, error) {
	var level slog.Level
	switch lf.Level {
	case "debug":
		level = slog.LevelDebug
	case "info":
		level = slog.LevelInfo
	case "warn":
		level = slog.LevelWarn
	case "error":
		level = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown -log-level %q (want debug, info, warn or error)", lf.Level)
	}
	switch lf.Format {
	case "text", "json":
	default:
		return nil, fmt.Errorf("unknown -log-format %q (want text or json)", lf.Format)
	}
	return newLogger(w, tool, level, lf.Format == "json"), nil
}
