package telemetry

import (
	"io"
	"log/slog"
)

// Shared structured logging for the cmd/ tools. Every CLI used to print
// ad-hoc diagnostics to stderr in its own format; NewCLILogger gives them
// one handler so output is uniform, greppable, and (by dropping the wall
// timestamp) deterministic — the virtual clock is the only time that
// matters in a discrete-event run.

// NewCLILogger returns a logger writing "level msg key=value ..." lines to
// w, tagged with the tool name. The wall-clock time attribute is removed:
// runs are deterministic in virtual time and log output should be too.
func NewCLILogger(w io.Writer, tool string, level slog.Level) *slog.Logger {
	h := slog.NewTextHandler(w, &slog.HandlerOptions{
		Level: level,
		ReplaceAttr: func(groups []string, a slog.Attr) slog.Attr {
			if a.Key == slog.TimeKey && len(groups) == 0 {
				return slog.Attr{}
			}
			return a
		},
	})
	return slog.New(h).With("tool", tool)
}
