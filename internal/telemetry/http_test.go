package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func get(t *testing.T, h http.Handler, path string) (*http.Response, string) {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
	res := rec.Result()
	body, err := io.ReadAll(res.Body)
	if err != nil {
		t.Fatal(err)
	}
	return res, string(body)
}

func TestHandlerRoutes(t *testing.T) {
	tel := New(8)
	tel.Reg().Counter("frames_total", "frames").Add(12)
	tel.Advance(3 * time.Second)
	tel.Emit(Event{At: time.Second, Kind: EvOracle, Actor: "campaign", Name: "finding"})
	h := Handler(tel)

	res, body := get(t, h, "/metrics")
	if ct := res.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("content type %q", ct)
	}
	if !strings.Contains(body, "frames_total 12\n") {
		t.Fatalf("/metrics body:\n%s", body)
	}

	_, body = get(t, h, "/metrics.json")
	if !strings.Contains(body, `"virtualTimeMicros": 3000000`) {
		t.Fatalf("/metrics.json body:\n%s", body)
	}

	_, body = get(t, h, "/trace.json")
	var doc map[string]any
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("/trace.json not JSON: %v", err)
	}

	_, body = get(t, h, "/healthz")
	if body != "{\"status\":\"ok\",\"virtualTimeMicros\":3000000,\"traceEvents\":1}\n" {
		t.Fatalf("/healthz body: %q", body)
	}
}

func TestServeBindsAndCloses(t *testing.T) {
	tel := New(0)
	srv, addr, err := Serve("127.0.0.1:0", tel)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	res, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusOK {
		t.Fatalf("status %d", res.StatusCode)
	}
}
