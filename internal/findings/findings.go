// Package findings is the findings-to-regression pipeline: a deduplicated
// on-disk database of discovered defects, a replay engine that re-executes
// every stored finding against the current tree (the auto-generated
// regression suite), and a differential mode that scores two configurations
// against the same corpus.
//
// TEASER (PAPERS.md) frames simulation-based CAN testing as *regression*
// testing: a discovered defect is not a one-off report but a permanent,
// fast check against every future revision. The pipeline closes that loop:
//
//	fuzz (canfuzz/fleet/campsrv) ──▶ findings DB ──▶ canregress run / diff
//
// The database is a directory of one JSON record per finding, keyed by a
// content hash of the finding's identity — (oracle, detail, replay context,
// minimized trigger) — so the same defect discovered by any number of
// campaigns, fleets or service runs collapses into one record. Records are
// written atomically (temp file + rename) and merged idempotently and
// commutatively: merging the same finding twice is a no-op, and the final
// DB bytes do not depend on the order campaigns were merged in.
package findings

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"strings"

	"repro/internal/core"
)

// Record is one deduplicated finding: its identity, everything needed to
// replay it in a fresh world, and where it came from.
//
// Two replay shapes exist. A *trigger* record (Trigger non-empty) replays
// the minimized frame sequence through a playback source — the normal case
// for oracle findings with a frame-level cause. A *generator* record
// (Trigger empty, Config set) re-runs the original generator under the
// recorded chaos plan — for findings whose cause is environmental (a
// dead-bus watchdog firing under a jam plan has no trigger frame).
type Record struct {
	// Oracle and Detail identify the failure class (identity fields).
	Oracle string `json:"oracle"`
	Detail string `json:"detail,omitempty"`

	// Target, Bus, BCMCheck and Chaos pin the world the finding was
	// observed in (identity fields): the simulated system, its bus variant,
	// the bench parser strictness and the fault-injection plan.
	Target   string `json:"target"`
	Bus      string `json:"bus,omitempty"`
	BCMCheck string `json:"bcmCheck,omitempty"`
	Chaos    string `json:"chaos,omitempty"`

	// Trigger is the minimized reproducer in corpus "ID#HEXDATA" form,
	// transmission order (identity field; empty for generator records).
	Trigger []string `json:"trigger,omitempty"`

	// Replay context (not identity): the seed the finding was observed
	// under, playback pacing, post-trigger settle time, the generator
	// deadline for trigger-less records, the full generator configuration
	// for generator records, and whether the resilience policy was armed.
	Seed           int64            `json:"seed"`
	IntervalMicros int64            `json:"intervalMicros,omitempty"`
	SettleMillis   int64            `json:"settleMillis,omitempty"`
	DeadlineMillis int64            `json:"deadlineMillis,omitempty"`
	Config         *core.ConfigJSON `json:"config,omitempty"`
	Recovery       bool             `json:"recovery,omitempty"`

	// Provenance: the generation mode that found it, the tools/campaigns
	// that reported it (sorted unions), and a canreplay-compatible log path
	// when one was written.
	Mode      string   `json:"mode,omitempty"`
	Sources   []string `json:"sources,omitempty"`
	Campaigns []string `json:"campaigns,omitempty"`
	ReplayLog string   `json:"replayLog,omitempty"`
}

// keyLen is the hex length of a record key — 64 bits of sha256, plenty for
// a corpus of distinct findings and short enough to read in a directory
// listing.
const keyLen = 16

// Key is the record's content-hash identity: the filename stem in the DB
// directory and the join key for replay reports and diffs. It covers the
// identity fields only, so re-discoveries with a different seed or
// provenance land on the same record.
func (r Record) Key() string {
	h := sha256.New()
	parts := []string{r.Oracle, r.Detail, r.Target, r.Bus, r.BCMCheck, r.Chaos}
	parts = append(parts, r.Trigger...)
	h.Write([]byte(strings.Join(parts, "\x00")))
	return hex.EncodeToString(h.Sum(nil))[:keyLen]
}

// marshal renders the record's canonical bytes: indented JSON with the
// stable struct field order, trailing newline. Byte-determinism here is
// what makes "merge order does not change DB bytes" checkable with cmp.
func (r Record) marshal() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// merge folds two records with the same Key into one, commutatively and
// idempotently: list provenance is a sorted union, scalar provenance takes
// the smallest non-empty value, and the whole replay context travels
// together from whichever record is smaller under a total order — so
// merge(a, b) == merge(b, a) and merge(a, a) == a, byte for byte, and
// n-way merges associate.
func merge(a, b Record) Record {
	out := a
	if contextLess(b, a) {
		out = b
	}
	out.Sources = sortedUnion(a.Sources, b.Sources)
	out.Campaigns = sortedUnion(a.Campaigns, b.Campaigns)
	out.Mode = minNonEmpty(a.Mode, b.Mode)
	out.ReplayLog = minNonEmpty(a.ReplayLog, b.ReplayLog)
	return out
}

// contextLess is a total order over the replay-context fields. Identity
// fields are equal whenever merge is called (same key), so comparing the
// context tuple is enough to pick one deterministic winner.
func contextLess(a, b Record) bool {
	if a.Seed != b.Seed {
		return a.Seed < b.Seed
	}
	if a.IntervalMicros != b.IntervalMicros {
		return a.IntervalMicros < b.IntervalMicros
	}
	if a.SettleMillis != b.SettleMillis {
		return a.SettleMillis < b.SettleMillis
	}
	if a.DeadlineMillis != b.DeadlineMillis {
		return a.DeadlineMillis < b.DeadlineMillis
	}
	if a.Recovery != b.Recovery {
		return !a.Recovery
	}
	ac, bc := configBytes(a.Config), configBytes(b.Config)
	return ac < bc
}

// configBytes renders a generator config for ordering ("" when absent).
func configBytes(c *core.ConfigJSON) string {
	if c == nil {
		return ""
	}
	b, err := json.Marshal(c)
	if err != nil {
		return ""
	}
	return string(b)
}

// sortedUnion merges two string sets into a sorted, deduplicated slice.
func sortedUnion(a, b []string) []string {
	seen := make(map[string]bool, len(a)+len(b))
	var out []string
	for _, s := range a {
		if s != "" && !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	for _, s := range b {
		if s != "" && !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	sortStrings(out)
	return out
}

// minNonEmpty picks the lexicographically smallest non-empty string — a
// commutative, associative choice for scalar provenance fields.
func minNonEmpty(a, b string) string {
	if a == "" {
		return b
	}
	if b == "" {
		return a
	}
	if b < a {
		return b
	}
	return a
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
