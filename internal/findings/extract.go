package findings

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"repro/internal/campaignd"
	"repro/internal/core"
	"repro/internal/fleet"
)

// Context pins the world a finding was observed in — the identity half a
// trigger alone cannot carry.
type Context struct {
	Target   string
	Bus      string
	BCMCheck string
	Recovery bool
	Chaos    string
}

// Provenance records where a finding came from: the reporting tool or
// pipeline stage, the campaign identifier when one exists, the generation
// mode, and a canreplay log path when one was written.
type Provenance struct {
	Source    string
	Campaign  string
	Mode      string
	ReplayLog string
}

// apply stamps provenance onto a record.
func (p Provenance) apply(rec *Record) {
	if p.Source != "" {
		rec.Sources = []string{p.Source}
	}
	if p.Campaign != "" {
		rec.Campaigns = []string{p.Campaign}
	}
	rec.Mode = p.Mode
	rec.ReplayLog = p.ReplayLog
}

// FromMinimized converts a minimizer reproducer into a trigger record —
// the highest-quality record shape: the frames are already minimal and
// were confirmed under the stored pacing.
func FromMinimized(t *core.MinimizedTrigger, ctx Context, seed int64, interval, settle time.Duration, prov Provenance) Record {
	rec := Record{
		Oracle:         t.Oracle,
		Detail:         t.Detail,
		Target:         ctx.Target,
		Bus:            ctx.Bus,
		BCMCheck:       ctx.BCMCheck,
		Chaos:          ctx.Chaos,
		Trigger:        append([]string(nil), t.Frames...),
		Seed:           seed,
		IntervalMicros: int64(interval / time.Microsecond),
		SettleMillis:   int64(settle / time.Millisecond),
		Recovery:       ctx.Recovery,
	}
	prov.apply(&rec)
	return rec
}

// FromTrigger builds a trigger record from a raw (unminimized) trigger
// window in corpus "ID#HEXDATA" form, oldest first.
func FromTrigger(oracleName, detail string, frames []string, ctx Context, seed int64, interval time.Duration, prov Provenance) Record {
	rec := Record{
		Oracle:         oracleName,
		Detail:         detail,
		Target:         ctx.Target,
		Bus:            ctx.Bus,
		BCMCheck:       ctx.BCMCheck,
		Chaos:          ctx.Chaos,
		Trigger:        append([]string(nil), frames...),
		Seed:           seed,
		IntervalMicros: int64(interval / time.Microsecond),
		Recovery:       ctx.Recovery,
	}
	prov.apply(&rec)
	return rec
}

// FromGenerator builds a generator record for an environmental finding —
// one whose cause is the generator/chaos interplay rather than a specific
// frame sequence (the dead-bus watchdog under a jam plan is the canonical
// case). Replay re-runs the full generator configuration under the
// recorded chaos plan until the deadline.
func FromGenerator(oracleName, detail string, ctx Context, cfg core.Config, seed int64, deadline time.Duration, prov Provenance) Record {
	cfg.Seed = seed
	cj := cfg.ToJSON()
	rec := Record{
		Oracle:         oracleName,
		Detail:         detail,
		Target:         ctx.Target,
		Bus:            ctx.Bus,
		BCMCheck:       ctx.BCMCheck,
		Chaos:          ctx.Chaos,
		Seed:           seed,
		DeadlineMillis: int64(deadline / time.Millisecond),
		Config:         &cj,
		Recovery:       ctx.Recovery,
	}
	prov.apply(&rec)
	return rec
}

// GeneratorFinding reports whether a finding must be stored as a generator
// record: watchdog findings fire from bus silence (replaying the preceding
// frames cannot re-create the silence), and any finding observed under a
// chaos plan may depend on the injected faults, which frame playback alone
// does not reproduce.
func GeneratorFinding(ctx Context, oracleName string) bool {
	return ctx.Chaos != "" || oracleName == "watchdog"
}

// FromTrialResult converts one fleet trial outcome into a record: a
// trigger record from the trial's trigger-frame window, or a generator
// record when the finding is environmental. cfg is the fleet's base
// generator configuration (the trial's own seed is substituted). ok is
// false for non-finding trials and finding trials without enough material
// to replay.
func FromTrialResult(tr fleet.TrialResult, ctx Context, cfg core.Config, prov Provenance) (Record, bool) {
	if tr.Status != fleet.StatusFinding || tr.Oracle == "" {
		return Record{}, false
	}
	if GeneratorFinding(ctx, tr.Oracle) {
		deadline := tr.TimeToFinding + time.Second
		return FromGenerator(tr.Oracle, tr.Detail, ctx, cfg, tr.Seed, deadline, prov), true
	}
	if len(tr.TriggerFrames) == 0 {
		return Record{}, false
	}
	return FromTrigger(tr.Oracle, tr.Detail, tr.TriggerFrames, ctx, tr.Seed, cfg.Interval, prov), true
}

// FromFleetReport extracts a record per finding trial of a fleet report.
func FromFleetReport(rep *fleet.Report, ctx Context, cfg core.Config, prov Provenance) []Record {
	var recs []Record
	for _, tr := range rep.Results {
		if rec, ok := FromTrialResult(tr, ctx, cfg, prov); ok {
			recs = append(recs, rec)
		}
	}
	return recs
}

// ContextFromCampaignSpec derives the findings context from a distributed
// campaign spec. Chaos plans are not part of the wire spec, so Chaos stays
// empty.
func ContextFromCampaignSpec(spec campaignd.CampaignSpec) Context {
	return Context{
		Target:   spec.Target,
		Bus:      spec.Bus,
		BCMCheck: spec.BCMCheck,
		Recovery: spec.Recovery,
	}
}

// FromCampaignSpec extracts records from a distributed campaign's results
// map (journal or coordinator state), in trial-index order.
func FromCampaignSpec(spec campaignd.CampaignSpec, results map[int]fleet.TrialResult, prov Provenance) ([]Record, error) {
	cfg, err := spec.Config.ToConfig()
	if err != nil {
		return nil, fmt.Errorf("findings: campaign spec config: %w", err)
	}
	ctx := ContextFromCampaignSpec(spec)
	if prov.Mode == "" {
		prov.Mode = spec.Config.Mode
	}
	idx := make([]int, 0, len(results))
	for i := range results {
		idx = append(idx, i)
	}
	sort.Ints(idx)
	var recs []Record
	for _, i := range idx {
		if rec, ok := FromTrialResult(results[i], ctx, cfg, prov); ok {
			recs = append(recs, rec)
		}
	}
	return recs, nil
}

// FromDataDir scans a campaign service data directory (one subdirectory
// per campaign, each holding an events.jsonl journal) and extracts records
// from every readable campaign, using the subdirectory name as the
// campaign identifier. Unreadable or incomplete journals are skipped — a
// service directory legitimately contains campaigns mid-flight.
func FromDataDir(dir string) ([]Record, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("findings: %w", err)
	}
	var recs []Record
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		path := filepath.Join(dir, e.Name(), "events.jsonl")
		f, err := os.Open(path)
		if err != nil {
			continue
		}
		j, err := campaignd.LoadJournal(f)
		f.Close()
		if err != nil || j.Spec == nil {
			continue
		}
		sub, err := FromCampaignSpec(*j.Spec, j.Results, Provenance{
			Source: "campsrv", Campaign: e.Name(),
		})
		if err != nil {
			continue
		}
		recs = append(recs, sub...)
	}
	return recs, nil
}
