package findings

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/can"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/guided"
	"repro/internal/target"
)

// Per-finding replay outcomes.
const (
	// OutcomePass: the original oracle fired on every replay attempt.
	OutcomePass = "pass"
	// OutcomeFail: the oracle fired on no attempt — the defect regressed
	// (was fixed, or the trigger no longer reaches it).
	OutcomeFail = "fail"
	// OutcomeFlaky: the oracle fired on some attempts but not all. Every
	// attempt replays the same seed in a fresh world, so flaky means real
	// nondeterminism in the stack, not seed variance.
	OutcomeFlaky = "flaky"
	// OutcomeError: the world could not be built or the record could not be
	// parsed — the record, not the target, is broken.
	OutcomeError = "error"
)

// Overrides alters the replay context relative to what a record stores —
// the lever behind `canregress diff`: replay the same corpus under a
// different BCM parser strictness, resilience policy or bus and compare.
type Overrides struct {
	// BCMCheck, when non-empty, replaces the record's bench parser mode.
	BCMCheck string `json:"bcmCheck,omitempty"`
	// Recovery, when non-nil, replaces the record's resilience setting.
	Recovery *bool `json:"recovery,omitempty"`
	// Bus, when non-empty, replaces the record's vehicle bus.
	Bus string `json:"bus,omitempty"`
}

// IsZero reports whether no override is set.
func (o Overrides) IsZero() bool {
	return o.BCMCheck == "" && o.Recovery == nil && o.Bus == ""
}

// Label renders the overrides compactly for reports ("" when zero).
func (o Overrides) Label() string {
	var parts []string
	if o.BCMCheck != "" {
		parts = append(parts, "check="+o.BCMCheck)
	}
	if o.Recovery != nil {
		parts = append(parts, fmt.Sprintf("recovery=%v", *o.Recovery))
	}
	if o.Bus != "" {
		parts = append(parts, "bus="+o.Bus)
	}
	return strings.Join(parts, ",")
}

// ParseOverrides parses the comma-separated "check=length,recovery=true,
// bus=powertrain" form used by canregress diff.
func ParseOverrides(s string) (Overrides, error) {
	var o Overrides
	if s == "" {
		return o, nil
	}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		k, v, ok := strings.Cut(part, "=")
		if !ok {
			return o, fmt.Errorf("findings: override %q is not key=value", part)
		}
		switch k {
		case "check":
			if _, err := target.ParseCheckMode(v); err != nil {
				return o, err
			}
			o.BCMCheck = v
		case "recovery":
			switch v {
			case "true":
				t := true
				o.Recovery = &t
			case "false":
				f := false
				o.Recovery = &f
			default:
				return o, fmt.Errorf("findings: override recovery=%q (want true/false)", v)
			}
		case "bus":
			o.Bus = v
		default:
			return o, fmt.Errorf("findings: unknown override key %q (check, recovery, bus)", k)
		}
	}
	return o, nil
}

// FindingResult is the replay outcome for one record.
type FindingResult struct {
	// Key, Oracle, Target echo the record for standalone readability.
	Key    string `json:"key"`
	Oracle string `json:"oracle"`
	Target string `json:"target"`
	// Outcome classifies the replay (OutcomePass, ...).
	Outcome string `json:"outcome"`
	// Attempts and Fired count replays run and replays where the original
	// oracle fired.
	Attempts int `json:"attempts"`
	Fired    int `json:"fired"`
	// ObservedOracle and ObservedDetail describe what actually fired on the
	// last attempt ("" when nothing fired).
	ObservedOracle string `json:"observedOracle,omitempty"`
	ObservedDetail string `json:"observedDetail,omitempty"`
	// TimeToFinding is the virtual time the last firing attempt needed.
	TimeToFinding time.Duration `json:"timeToFindingNanos,omitempty"`
	// Features is the world's reaction-feature vector (the guided novelty
	// probes) sampled after the last attempt — the behavioural fingerprint
	// diff mode compares across configurations.
	Features map[string]uint64 `json:"features,omitempty"`
	// Err carries the build/parse error (OutcomeError only).
	Err string `json:"error,omitempty"`
}

// SuiteConfig configures a regression-suite run.
type SuiteConfig struct {
	// Workers bounds replay concurrency (<=0: 1). The report is
	// byte-identical at any worker count: results are keyed and ordered by
	// record key, and each replay is a pure function of its record.
	Workers int
	// Attempts is the replay count per record (<=0: 2). All attempts use
	// the record's own seed, so a flaky outcome indicts determinism, not
	// seed luck.
	Attempts int
	// Overrides alters the replay context for every record (diff mode).
	Overrides Overrides
}

// SuiteReport is the outcome of replaying a findings database.
type SuiteReport struct {
	Records   int             `json:"records"`
	Pass      int             `json:"pass"`
	Fail      int             `json:"fail"`
	Flaky     int             `json:"flaky"`
	Errors    int             `json:"errors"`
	Attempts  int             `json:"attempts"`
	Overrides string          `json:"overrides,omitempty"`
	Results   []FindingResult `json:"results"`
}

// OK reports whether the suite is green (flaky counts as green-with-noise;
// fail and error do not).
func (r *SuiteReport) OK() bool { return r.Fail == 0 && r.Errors == 0 }

// WriteJSON writes the report as indented JSON.
func (r *SuiteReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ReadSuiteReport decodes a saved suite report — the inverse of
// WriteJSON, used by canregress diff to compare against an archived run.
func ReadSuiteReport(r io.Reader) (*SuiteReport, error) {
	var rep SuiteReport
	if err := json.NewDecoder(r).Decode(&rep); err != nil {
		return nil, err
	}
	return &rep, nil
}

// RunSuite replays every record and aggregates the outcomes. Replays run
// on a bounded worker pool; results are collected by index and sorted by
// key, so the report bytes are independent of scheduling.
func RunSuite(recs []Record, cfg SuiteConfig) *SuiteReport {
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.Attempts <= 0 {
		cfg.Attempts = 2
	}
	results := make([]FindingResult, len(recs))
	var wg sync.WaitGroup
	sem := make(chan struct{}, cfg.Workers)
	for i, rec := range recs {
		wg.Add(1)
		go func(i int, rec Record) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			results[i] = ReplayRecord(rec, cfg.Attempts, cfg.Overrides)
		}(i, rec)
	}
	wg.Wait()

	sort.Slice(results, func(i, j int) bool { return results[i].Key < results[j].Key })
	rep := &SuiteReport{
		Records:   len(results),
		Attempts:  cfg.Attempts,
		Overrides: cfg.Overrides.Label(),
		Results:   results,
	}
	for _, res := range results {
		switch res.Outcome {
		case OutcomePass:
			rep.Pass++
		case OutcomeFail:
			rep.Fail++
		case OutcomeFlaky:
			rep.Flaky++
		case OutcomeError:
			rep.Errors++
		}
	}
	return rep
}

// ReplayRecord replays one record the given number of times and
// classifies the outcome. Panics in the replayed world are contained and
// classified as OutcomeError — a broken record must report, not crash the
// suite.
func ReplayRecord(rec Record, attempts int, ov Overrides) FindingResult {
	res := FindingResult{Key: rec.Key(), Oracle: rec.Oracle, Target: rec.Target}
	if attempts <= 0 {
		attempts = 1
	}
	for i := 0; i < attempts; i++ {
		att, err := replayOnce(rec, ov)
		res.Attempts++
		if err != nil {
			res.Outcome = OutcomeError
			res.Err = err.Error()
			return res
		}
		res.ObservedOracle = att.oracle
		res.ObservedDetail = att.detail
		res.Features = att.features
		if att.fired {
			res.Fired++
			res.TimeToFinding = att.timeToFinding
		}
	}
	switch res.Fired {
	case res.Attempts:
		res.Outcome = OutcomePass
	case 0:
		res.Outcome = OutcomeFail
	default:
		res.Outcome = OutcomeFlaky
	}
	return res
}

// attempt is one replay execution's observation.
type attempt struct {
	fired         bool
	oracle        string
	detail        string
	timeToFinding time.Duration
	features      map[string]uint64
}

// replayOnce executes one fresh-world replay of a record.
func replayOnce(rec Record, ov Overrides) (att attempt, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("replay panicked: %v", r)
		}
	}()

	spec, cfg, plan, berr := replayWorldInputs(rec, ov)
	if berr != nil {
		return att, berr
	}
	built, berr := target.Build(spec, cfg, target.Options{Plan: plan})
	if berr != nil {
		return att, fmt.Errorf("build world: %w", berr)
	}
	w := built.World

	interval := cfg.Interval
	var deadline time.Duration
	if len(rec.Trigger) > 0 {
		frames, perr := parseTrigger(rec.Trigger)
		if perr != nil {
			return att, perr
		}
		w.Campaign.SetFrameSource(guided.Playback(frames))
		settle := time.Duration(rec.SettleMillis) * time.Millisecond
		if settle <= 0 {
			settle = 150 * time.Millisecond
		}
		deadline = interval*time.Duration(len(frames)) + settle
	} else {
		deadline = time.Duration(rec.DeadlineMillis) * time.Millisecond
		if deadline <= 0 {
			deadline = time.Second
		}
	}

	if built.Injector != nil {
		if ierr := built.Injector.Start(); ierr != nil {
			return att, fmt.Errorf("chaos plan: %w", ierr)
		}
	}
	finding, found := w.Campaign.RunUntilFinding(deadline)
	if built.Injector != nil {
		built.Injector.Stop()
	}

	if found {
		att.oracle = finding.Verdict.Oracle
		att.detail = finding.Verdict.Detail
		att.timeToFinding = finding.Elapsed
		att.fired = finding.Verdict.Oracle == rec.Oracle
	}
	att.features = make(map[string]uint64, len(built.Probes))
	for _, p := range built.Probes {
		att.features[p.Name] = p.Fn()
	}
	return att, nil
}

// replayWorldInputs maps a record (plus overrides) onto the world-builder
// inputs: the target spec, the generator config and the chaos plan.
func replayWorldInputs(rec Record, ov Overrides) (target.Spec, core.Config, *faults.Plan, error) {
	checkName := rec.BCMCheck
	if ov.BCMCheck != "" {
		checkName = ov.BCMCheck
	}
	check, err := target.ParseCheckMode(checkName)
	if err != nil {
		return target.Spec{}, core.Config{}, nil, err
	}
	recovery := rec.Recovery
	if ov.Recovery != nil {
		recovery = *ov.Recovery
	}
	busName := rec.Bus
	if ov.Bus != "" {
		busName = ov.Bus
	}
	spec := target.Spec{
		Target:   rec.Target,
		Bus:      busName,
		Check:    check,
		Stop:     true,
		Recovery: recovery,
	}

	var cfg core.Config
	if rec.Config != nil {
		cfg, err = rec.Config.ToConfig()
		if err != nil {
			return target.Spec{}, core.Config{}, nil, fmt.Errorf("record config: %w", err)
		}
	}
	cfg.Seed = rec.Seed
	if iv := time.Duration(rec.IntervalMicros) * time.Microsecond; iv > cfg.Interval {
		cfg.Interval = iv
	}
	if cfg.Interval < core.MinInterval {
		cfg.Interval = core.MinInterval
	}

	var plan *faults.Plan
	if rec.Chaos != "" {
		p, perr := faults.ParsePlan(rec.Chaos)
		if perr != nil {
			return target.Spec{}, core.Config{}, nil, fmt.Errorf("record chaos plan: %w", perr)
		}
		plan = &p
	}
	return spec, cfg, plan, nil
}

// parseTrigger parses a stored trigger back into frames.
func parseTrigger(lines []string) ([]can.Frame, error) {
	frames := make([]can.Frame, 0, len(lines))
	for _, line := range lines {
		f, err := core.ParseCorpusFrame(line)
		if err != nil {
			return nil, fmt.Errorf("trigger frame %q: %w", line, err)
		}
		frames = append(frames, f)
	}
	return frames, nil
}
