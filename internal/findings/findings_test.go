package findings

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// unlockRecord is the canonical bench finding: the one-frame unlock
// trigger (CmdUnlock 0x20 on 0x215) under the byte-only parser.
func unlockRecord() Record {
	return Record{
		Oracle:         "unlock-ack",
		Detail:         "matched frame 0533 2 AC 01",
		Target:         "bench",
		BCMCheck:       "byte",
		Trigger:        []string{"215#20"},
		Seed:           7,
		IntervalMicros: 1000,
		SettleMillis:   150,
		Mode:           "guided",
		Sources:        []string{"canfuzz"},
		Campaigns:      []string{"c-0001"},
	}
}

// dbBytes snapshots every record file (name + content) for byte-level
// comparison of two databases.
func dbBytes(t *testing.T, dir string) string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		sb.WriteString(e.Name())
		sb.WriteString("\n")
		sb.Write(data)
	}
	return sb.String()
}

func TestMergeDedupeIdempotent(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := db.Merge(unlockRecord())
	if err != nil || !fresh {
		t.Fatalf("first merge: fresh=%v err=%v", fresh, err)
	}
	before := dbBytes(t, dir)
	fresh, err = db.Merge(unlockRecord())
	if err != nil || fresh {
		t.Fatalf("second merge of identical record: fresh=%v err=%v", fresh, err)
	}
	if after := dbBytes(t, dir); after != before {
		t.Fatalf("idempotent merge changed DB bytes:\nbefore:\n%s\nafter:\n%s", before, after)
	}
	recs, err := db.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("want 1 record after duplicate merge, got %d", len(recs))
	}
}

func TestMergeKeyIgnoresProvenanceAndSeed(t *testing.T) {
	a := unlockRecord()
	b := unlockRecord()
	b.Seed = 99
	b.Sources = []string{"campsrv"}
	b.Campaigns = []string{"c-0002"}
	if a.Key() != b.Key() {
		t.Fatalf("same identity, different provenance: keys differ (%s vs %s)", a.Key(), b.Key())
	}
	c := unlockRecord()
	c.Trigger = []string{"215#20", "215#21"}
	if a.Key() == c.Key() {
		t.Fatal("different trigger produced the same key")
	}
}

func TestLoadIgnoresTornTempFile(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Merge(unlockRecord()); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-write: a half-written temp file next to a whole
	// record. Load must skip it; a second Merge must still work.
	torn := filepath.Join(dir, "deadbeef.json.12345.tmp")
	if err := os.WriteFile(torn, []byte(`{"oracle": "unlo`), 0o644); err != nil {
		t.Fatal(err)
	}
	recs, err := db.Load()
	if err != nil {
		t.Fatalf("Load with torn temp file: %v", err)
	}
	if len(recs) != 1 || recs[0].Oracle != "unlock-ack" {
		t.Fatalf("want the 1 whole record, got %+v", recs)
	}
}

func TestMergeOrderByteDeterminism(t *testing.T) {
	// Three observations of the same finding from different campaigns, plus
	// one distinct finding — merged in two different orders.
	a := unlockRecord()
	b := unlockRecord()
	b.Seed = 99
	b.Sources = []string{"campsrv"}
	b.Campaigns = []string{"c-0002"}
	b.ReplayLog = "repro.log"
	c := unlockRecord()
	c.Seed = 3
	c.Sources = []string{"canfuzz-fleet"}
	c.Campaigns = []string{"c-0003"}
	c.Mode = "random"
	d := unlockRecord()
	d.Trigger = []string{"215#2000000000000000"}

	mergeInto := func(recs []Record) string {
		dir := t.TempDir()
		db, err := Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := db.MergeAll(recs); err != nil {
			t.Fatal(err)
		}
		return dbBytes(t, dir)
	}
	ord1 := mergeInto([]Record{a, b, c, d})
	ord2 := mergeInto([]Record{d, c, b, a})
	ord3 := mergeInto([]Record{c, a, d, b})
	if ord1 != ord2 || ord1 != ord3 {
		t.Fatalf("merge order changed DB bytes:\norder1:\n%s\norder2:\n%s\norder3:\n%s", ord1, ord2, ord3)
	}
	// The merged record must carry the union of provenance.
	db, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.MergeAll([]Record{a, b, c}); err != nil {
		t.Fatal(err)
	}
	recs, err := db.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("want 1 merged record, got %d", len(recs))
	}
	got := recs[0]
	if want := []string{"c-0001", "c-0002", "c-0003"}; strings.Join(got.Campaigns, ",") != strings.Join(want, ",") {
		t.Fatalf("campaign union = %v, want %v", got.Campaigns, want)
	}
	if got.Seed != 3 {
		t.Fatalf("canonical context should be the smallest seed, got %d", got.Seed)
	}
	if got.ReplayLog != "repro.log" {
		t.Fatalf("replay log lost in merge: %q", got.ReplayLog)
	}
}

func TestMergeRejectsUnreplayableRecord(t *testing.T) {
	db, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Merge(Record{Detail: "no oracle"}); err == nil {
		t.Fatal("merged a record without oracle/target")
	}
}

func TestParseOverrides(t *testing.T) {
	o, err := ParseOverrides("check=length,recovery=true,bus=powertrain")
	if err != nil {
		t.Fatal(err)
	}
	if o.BCMCheck != "length" || o.Recovery == nil || !*o.Recovery || o.Bus != "powertrain" {
		t.Fatalf("parsed %+v", o)
	}
	if o.Label() != "check=length,recovery=true,bus=powertrain" {
		t.Fatalf("label %q", o.Label())
	}
	if _, err := ParseOverrides("check=bogus"); err == nil {
		t.Fatal("accepted unknown check mode")
	}
	if _, err := ParseOverrides("frobnicate=1"); err == nil {
		t.Fatal("accepted unknown key")
	}
	if zero, err := ParseOverrides(""); err != nil || !zero.IsZero() {
		t.Fatalf("empty overrides: %+v err=%v", zero, err)
	}
}
