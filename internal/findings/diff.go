package findings

import (
	"fmt"
	"sort"
)

// Divergence kinds reported by DiffSuites.
const (
	// DivergeOnlyA: the finding fires under configuration A but not B.
	DivergeOnlyA = "fires-in-a-only"
	// DivergeOnlyB: the finding fires under configuration B but not A.
	DivergeOnlyB = "fires-in-b-only"
	// DivergeOracle: a different oracle fired on the two sides.
	DivergeOracle = "oracle-differs"
	// DivergeFeatures: both sides agree on the oracle outcome but the
	// reaction-feature vectors (guided novelty probes) differ — the target
	// behaved differently even though the verdict matched.
	DivergeFeatures = "features-differ"
	// DivergeMissingA / DivergeMissingB: the record was replayed on one
	// side only (reports built from different databases).
	DivergeMissingA = "missing-in-a"
	DivergeMissingB = "missing-in-b"
)

// Divergence is one behavioural difference between two suite reports.
type Divergence struct {
	// Key and Oracle identify the finding.
	Key    string `json:"key"`
	Oracle string `json:"oracle"`
	// Kind classifies the divergence (DivergeOnlyA, ...).
	Kind string `json:"kind"`
	// Detail is a human-readable explanation.
	Detail string `json:"detail"`
}

// DiffSuites compares two suite reports replayed from the same corpus
// under two configurations and returns every behavioural divergence,
// sorted by (key, kind). Flaky and errored records are compared on their
// last observation like any other — a record that errors on one side only
// surfaces as an oracle/feature divergence, which is what a revision diff
// should flag.
func DiffSuites(a, b *SuiteReport) []Divergence {
	byKeyA := indexResults(a)
	byKeyB := indexResults(b)

	var out []Divergence
	for key, ra := range byKeyA {
		rb, ok := byKeyB[key]
		if !ok {
			out = append(out, Divergence{Key: key, Oracle: ra.Oracle, Kind: DivergeMissingB,
				Detail: "record replayed in A only"})
			continue
		}
		out = append(out, diffResult(ra, rb)...)
	}
	for key, rb := range byKeyB {
		if _, ok := byKeyA[key]; !ok {
			out = append(out, Divergence{Key: key, Oracle: rb.Oracle, Kind: DivergeMissingA,
				Detail: "record replayed in B only"})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Key != out[j].Key {
			return out[i].Key < out[j].Key
		}
		return out[i].Kind < out[j].Kind
	})
	return out
}

// diffResult compares one record's two replays.
func diffResult(ra, rb FindingResult) []Divergence {
	var out []Divergence
	firedA := ra.Fired > 0
	firedB := rb.Fired > 0
	switch {
	case firedA && !firedB:
		out = append(out, Divergence{Key: ra.Key, Oracle: ra.Oracle, Kind: DivergeOnlyA,
			Detail: fmt.Sprintf("oracle %s fired in A (%d/%d attempts) but not in B", ra.Oracle, ra.Fired, ra.Attempts)})
	case firedB && !firedA:
		out = append(out, Divergence{Key: ra.Key, Oracle: ra.Oracle, Kind: DivergeOnlyB,
			Detail: fmt.Sprintf("oracle %s fired in B (%d/%d attempts) but not in A", rb.Oracle, rb.Fired, rb.Attempts)})
	}
	if ra.ObservedOracle != rb.ObservedOracle {
		out = append(out, Divergence{Key: ra.Key, Oracle: ra.Oracle, Kind: DivergeOracle,
			Detail: fmt.Sprintf("A observed %q, B observed %q", ra.ObservedOracle, rb.ObservedOracle)})
	}
	if d := diffFeatures(ra.Features, rb.Features); d != "" {
		out = append(out, Divergence{Key: ra.Key, Oracle: ra.Oracle, Kind: DivergeFeatures, Detail: d})
	}
	return out
}

// diffFeatures renders the differing probe values ("" when identical).
func diffFeatures(a, b map[string]uint64) string {
	names := map[string]bool{}
	for k := range a {
		names[k] = true
	}
	for k := range b {
		names[k] = true
	}
	keys := make([]string, 0, len(names))
	for k := range names {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var diffs []string
	for _, k := range keys {
		if a[k] != b[k] {
			diffs = append(diffs, fmt.Sprintf("%s: %d vs %d", k, a[k], b[k]))
		}
	}
	if len(diffs) == 0 {
		return ""
	}
	s := diffs[0]
	for _, d := range diffs[1:] {
		s += "; " + d
	}
	return s
}

// indexResults keys a report's results for joining.
func indexResults(r *SuiteReport) map[string]FindingResult {
	m := make(map[string]FindingResult, len(r.Results))
	for _, res := range r.Results {
		m[res.Key] = res
	}
	return m
}
