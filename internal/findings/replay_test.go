package findings

import (
	"bytes"
	"testing"

	"repro/internal/core"
)

// watchdogRecord is a generator record: a random campaign aimed away from
// the unlock identifier, with a 2-second stuck-dominant jam that starves
// the bus until the dead-bus watchdog fires.
func watchdogRecord() Record {
	cfg := core.ConfigJSON{
		Seed:           1,
		IDMin:          0x300,
		IDMax:          0x400,
		IntervalMicros: 1000,
	}
	return Record{
		Oracle:         "watchdog",
		Detail:         "bus dead: no progress within 250ms",
		Target:         "bench",
		BCMCheck:       "byte",
		Chaos:          "seed=1;jam(at=100ms,for=2s)",
		Seed:           1,
		DeadlineMillis: 1500,
		Config:         &cfg,
		Mode:           "random",
		Sources:        []string{"canfuzz"},
	}
}

func TestReplayUnlockTriggerPasses(t *testing.T) {
	res := ReplayRecord(unlockRecord(), 2, Overrides{})
	if res.Outcome != OutcomePass {
		t.Fatalf("unlock trigger outcome = %s (observed %q %q, err %q), want pass",
			res.Outcome, res.ObservedOracle, res.ObservedDetail, res.Err)
	}
	if res.Fired != 2 || res.Attempts != 2 {
		t.Fatalf("fired %d/%d, want 2/2", res.Fired, res.Attempts)
	}
	if res.Features["bcm_unlocked"] != 1 {
		t.Fatalf("bcm_unlocked feature = %d, want 1 (features %v)", res.Features["bcm_unlocked"], res.Features)
	}
}

func TestReplayWatchdogGeneratorRecordPasses(t *testing.T) {
	res := ReplayRecord(watchdogRecord(), 2, Overrides{})
	if res.Outcome != OutcomePass {
		t.Fatalf("watchdog record outcome = %s (observed %q %q, err %q), want pass",
			res.Outcome, res.ObservedOracle, res.ObservedDetail, res.Err)
	}
}

func TestReplayBrokenTriggerFailsNotPanics(t *testing.T) {
	rec := unlockRecord()
	rec.Trigger = []string{"300#FF"} // frame that cannot reach the unlock path
	res := ReplayRecord(rec, 1, Overrides{})
	if res.Outcome != OutcomeFail {
		t.Fatalf("broken trigger outcome = %s, want fail", res.Outcome)
	}
}

func TestReplayUnknownTargetErrors(t *testing.T) {
	rec := unlockRecord()
	rec.Target = "toaster"
	res := ReplayRecord(rec, 1, Overrides{})
	if res.Outcome != OutcomeError || res.Err == "" {
		t.Fatalf("unknown target outcome = %s err=%q, want error", res.Outcome, res.Err)
	}
}

func TestRunSuiteByteIdenticalAcrossWorkers(t *testing.T) {
	broken := unlockRecord()
	broken.Trigger = []string{"300#FF"}
	recs := []Record{unlockRecord(), watchdogRecord(), broken}

	render := func(workers int) []byte {
		rep := RunSuite(recs, SuiteConfig{Workers: workers, Attempts: 2})
		var buf bytes.Buffer
		if err := rep.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	w1 := render(1)
	w4 := render(4)
	if !bytes.Equal(w1, w4) {
		t.Fatalf("suite report differs across worker counts:\nworkers=1:\n%s\nworkers=4:\n%s", w1, w4)
	}

	rep := RunSuite(recs, SuiteConfig{Workers: 4, Attempts: 2})
	if rep.Pass != 2 || rep.Fail != 1 || rep.OK() {
		t.Fatalf("suite summary pass=%d fail=%d ok=%v, want 2/1/false", rep.Pass, rep.Fail, rep.OK())
	}
}

func TestDiffSuitesReportsCheckModeDivergence(t *testing.T) {
	recs := []Record{unlockRecord()}
	a := RunSuite(recs, SuiteConfig{Attempts: 1})
	b := RunSuite(recs, SuiteConfig{Attempts: 1, Overrides: Overrides{BCMCheck: "length"}})

	divs := DiffSuites(a, b)
	if len(divs) == 0 {
		t.Fatal("no divergence between byte-only and byte+length parsers")
	}
	kinds := map[string]bool{}
	for _, d := range divs {
		kinds[d.Kind] = true
	}
	if !kinds[DivergeOnlyA] {
		t.Fatalf("want %s divergence, got %+v", DivergeOnlyA, divs)
	}
	// The one-byte unlock is a near-miss under the stricter parser, so the
	// reaction-feature vector must differ too (bcm_near_misses).
	if !kinds[DivergeFeatures] {
		t.Fatalf("want %s divergence, got %+v", DivergeFeatures, divs)
	}

	// Identical configurations must not diverge.
	if divs := DiffSuites(a, RunSuite(recs, SuiteConfig{Attempts: 1})); len(divs) != 0 {
		t.Fatalf("self-diff reported divergences: %+v", divs)
	}
}
