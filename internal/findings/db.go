package findings

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// DB is a findings database: a directory holding one `<key>.json` file per
// deduplicated finding. It is safe for concurrent use from one process
// (campsrv merges findings from per-campaign watcher goroutines);
// cross-process writers are serialized per record by the atomic
// temp-file + rename protocol, which never exposes a half-written record.
type DB struct {
	dir string

	mu sync.Mutex
}

// Open opens (creating if needed) the findings database at dir.
func Open(dir string) (*DB, error) {
	if dir == "" {
		return nil, fmt.Errorf("findings: empty db directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("findings: %w", err)
	}
	return &DB{dir: dir}, nil
}

// Dir reports the database directory.
func (db *DB) Dir() string { return db.dir }

// Merge folds one record into the database: a new key writes a fresh
// record, an existing key merges provenance and keeps the canonical replay
// context (see merge). It reports whether the key was new. Records that
// cannot identify themselves (no oracle or target) are rejected — they
// could never be replayed.
func (db *DB) Merge(rec Record) (bool, error) {
	if rec.Oracle == "" || rec.Target == "" {
		return false, fmt.Errorf("findings: record missing oracle or target")
	}
	db.mu.Lock()
	defer db.mu.Unlock()

	key := rec.Key()
	path := filepath.Join(db.dir, key+".json")
	existing, err := readRecord(path)
	fresh := false
	switch {
	case err == nil:
		rec = merge(existing, rec)
	case os.IsNotExist(err):
		fresh = true
		// Normalize provenance lists so a solo write and a merge produce
		// identical bytes for identical inputs.
		rec.Sources = sortedUnion(rec.Sources, nil)
		rec.Campaigns = sortedUnion(rec.Campaigns, nil)
	default:
		return false, fmt.Errorf("findings: read %s: %w", path, err)
	}

	data, err := rec.marshal()
	if err != nil {
		return false, fmt.Errorf("findings: encode %s: %w", key, err)
	}
	if !fresh {
		old, rerr := existing.marshal()
		if rerr == nil && string(old) == string(data) {
			return false, nil // no-op merge: leave the file untouched
		}
	}
	if err := writeAtomic(path, data); err != nil {
		return false, err
	}
	return fresh, nil
}

// MergeAll merges a batch of records, reporting how many keys were new.
func (db *DB) MergeAll(recs []Record) (int, error) {
	fresh := 0
	for _, rec := range recs {
		isNew, err := db.Merge(rec)
		if err != nil {
			return fresh, err
		}
		if isNew {
			fresh++
		}
	}
	return fresh, nil
}

// Load reads every record in the database, sorted by key. Only `*.json`
// entries are considered: a torn temp file left by a crash mid-write (the
// `.tmp` suffix) is ignored, which is what makes the write protocol
// crash-safe — either the rename happened and the record is whole, or it
// did not and the record does not exist.
func (db *DB) Load() ([]Record, error) {
	db.mu.Lock()
	defer db.mu.Unlock()

	entries, err := os.ReadDir(db.dir)
	if err != nil {
		return nil, fmt.Errorf("findings: %w", err)
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		names = append(names, e.Name())
	}
	sort.Strings(names)
	recs := make([]Record, 0, len(names))
	for _, name := range names {
		rec, err := readRecord(filepath.Join(db.dir, name))
		if err != nil {
			return nil, fmt.Errorf("findings: %s: %w", name, err)
		}
		recs = append(recs, rec)
	}
	return recs, nil
}

// readRecord loads and decodes one record file.
func readRecord(path string) (Record, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Record{}, err
	}
	var rec Record
	if err := json.Unmarshal(data, &rec); err != nil {
		return Record{}, fmt.Errorf("decode: %w", err)
	}
	return rec, nil
}

// writeAtomic writes data to path via a same-directory temp file and
// rename, so a reader never observes a partial record and a crash leaves
// at worst an ignorable `.tmp` file.
func writeAtomic(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".*.tmp")
	if err != nil {
		return fmt.Errorf("findings: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("findings: write %s: %w", tmpName, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("findings: close %s: %w", tmpName, err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("findings: rename %s: %w", tmpName, err)
	}
	return nil
}
