package capture_test

import (
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/can"
	"repro/internal/capture"
)

// Example writes a short capture in the candump-style text format and
// parses it back — the reconnaissance log format targeted fuzzing starts
// from.
func Example() {
	tr := capture.NewTrace(0)
	tr.Append(capture.Record{
		Time:  1500 * time.Millisecond,
		Frame: can.MustNew(0x215, []byte{0x20, 0x5F, 0x01, 0x00, 0x00, 0x01, 0x20}),
	})
	if err := capture.WriteLog(os.Stdout, tr, "body0"); err != nil {
		panic(err)
	}

	back, err := capture.ParseLog(strings.NewReader("(1.500000) body0 215#205F010000012000\n"))
	if err != nil {
		panic(err)
	}
	fmt.Println("ids observed:", back.IDs())
	// Output:
	// (1.500000) body0 215#205F0100000120
	// ids observed: [0215]
}
