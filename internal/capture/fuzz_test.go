package capture

// Fuzz target over the log parser — the tool-API surface an engineer feeds
// untrusted capture files into (§VII: fuzz the engineering tools too).

import (
	"strings"
	"testing"
)

func FuzzParseLog(f *testing.F) {
	f.Add("(1.000000) can0 215#205F010000012000")
	f.Add("(0.000001) vcan0 7FF#R8")
	f.Add("# comment\n\n(2.345678) body0 110#ABCD\n")
	f.Add("(((((")
	f.Add("(1.000000) can0 215#")
	f.Fuzz(func(t *testing.T, input string) {
		tr, err := ParseLog(strings.NewReader(input))
		if err != nil {
			return
		}
		// Every accepted record must hold a valid frame and survive a
		// write/parse round trip.
		var sb strings.Builder
		if err := WriteLog(&sb, tr, "fz0"); err != nil {
			t.Fatalf("WriteLog on accepted trace: %v", err)
		}
		back, err := ParseLog(strings.NewReader(sb.String()))
		if err != nil {
			t.Fatalf("re-parse of own output failed: %v\noutput: %q", err, sb.String())
		}
		if back.Len() != tr.Len() {
			t.Fatalf("round trip changed record count: %d -> %d", tr.Len(), back.Len())
		}
		for i := 0; i < tr.Len(); i++ {
			if err := tr.At(i).Frame.Validate(); err != nil {
				t.Fatalf("accepted invalid frame: %v", err)
			}
			if !back.At(i).Frame.Equal(tr.At(i).Frame) {
				t.Fatalf("record %d changed in round trip", i)
			}
		}
	})
}
