package capture

import (
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/bus"
	"repro/internal/can"
	"repro/internal/clock"
)

func TestRecordString(t *testing.T) {
	r := Record{
		Time:  5328009 * time.Microsecond,
		Frame: can.MustNew(0x43A, []byte{0x1C, 0x21, 0x17, 0x71, 0x17, 0x71, 0xFF, 0xFF}),
	}
	want := "5328.009 043A 8 1C 21 17 71 17 71 FF FF"
	if got := r.String(); got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}

func TestTraceAppendAndLimit(t *testing.T) {
	tr := NewTrace(3)
	for i := 0; i < 5; i++ {
		tr.Append(Record{Frame: can.MustNew(can.ID(i), nil)})
	}
	if tr.Len() != 3 {
		t.Fatalf("Len = %d, want 3", tr.Len())
	}
	if tr.At(0).Frame.ID != 2 {
		t.Fatalf("oldest retained = %v, want 2", tr.At(0).Frame.ID)
	}
}

func TestTraceIDsFirstSeenOrder(t *testing.T) {
	tr := NewTrace(0)
	for _, id := range []can.ID{0x296, 0x43A, 0x296, 0x110, 0x43A} {
		tr.Append(Record{Frame: can.MustNew(id, nil)})
	}
	ids := tr.IDs()
	want := []can.ID{0x296, 0x43A, 0x110}
	if len(ids) != len(want) {
		t.Fatalf("IDs = %v", ids)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("IDs = %v, want %v", ids, want)
		}
	}
}

func TestRecordsReturnsCopy(t *testing.T) {
	tr := NewTrace(0)
	tr.Append(Record{Frame: can.MustNew(1, nil)})
	recs := tr.Records()
	recs[0].Frame.ID = 0x7FF
	if tr.At(0).Frame.ID != 1 {
		t.Fatal("Records aliases internal storage")
	}
}

func TestRecorderCapturesBusTraffic(t *testing.T) {
	s := clock.New()
	b := bus.New(s)
	rec := NewRecorder(b, 0)
	tx := b.Connect("tx")
	b.Connect("rx").SetReceiver(func(bus.Message) {})
	for i := 0; i < 5; i++ {
		tx.Send(can.MustNew(can.ID(0x100+i), []byte{byte(i)}))
	}
	s.RunUntil(time.Second)
	if rec.Trace().Len() != 5 {
		t.Fatalf("captured %d frames, want 5", rec.Trace().Len())
	}
	if rec.Trace().At(0).Origin != "tx" {
		t.Fatalf("origin = %q", rec.Trace().At(0).Origin)
	}
}

func TestWriteParseLogRoundTrip(t *testing.T) {
	tr := NewTrace(0)
	tr.Append(Record{Time: 1500 * time.Millisecond, Frame: can.MustNew(0x43A, []byte{0xDE, 0xAD}), Origin: "can0"})
	tr.Append(Record{Time: 1501 * time.Millisecond, Frame: can.MustNew(0x068, nil), Origin: "can0"})
	rem, _ := can.NewRemote(0x215, 7)
	tr.Append(Record{Time: 1502 * time.Millisecond, Frame: rem, Origin: "can0"})

	var sb strings.Builder
	if err := WriteLog(&sb, tr, "can0"); err != nil {
		t.Fatalf("WriteLog: %v", err)
	}
	got, err := ParseLog(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("ParseLog: %v\nlog:\n%s", err, sb.String())
	}
	if got.Len() != 3 {
		t.Fatalf("parsed %d records", got.Len())
	}
	for i := 0; i < 3; i++ {
		if !got.At(i).Frame.Equal(tr.At(i).Frame) {
			t.Fatalf("record %d frame mismatch: %v vs %v", i, got.At(i).Frame, tr.At(i).Frame)
		}
		if got.At(i).Time != tr.At(i).Time {
			t.Fatalf("record %d time mismatch", i)
		}
	}
}

func TestWriteLogFormat(t *testing.T) {
	tr := NewTrace(0)
	tr.Append(Record{Time: 2*time.Second + 345678*time.Microsecond, Frame: can.MustNew(0x110, []byte{0xAB, 0xCD})})
	var sb strings.Builder
	WriteLog(&sb, tr, "vcan0")
	want := "(2.345678) vcan0 110#ABCD\n"
	if sb.String() != want {
		t.Fatalf("log = %q, want %q", sb.String(), want)
	}
}

func TestParseLogSkipsCommentsAndBlank(t *testing.T) {
	log := "# header comment\n\n(0.000001) can0 001#AA\n"
	tr, err := ParseLog(strings.NewReader(log))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 1 {
		t.Fatalf("Len = %d", tr.Len())
	}
}

func TestParseLogErrors(t *testing.T) {
	bad := []string{
		"(0.000001) can0",                          // missing frame field
		"(abc) can0 001#AA",                        // bad timestamp
		"(0.000001) can0 FFFF#AA",                  // id out of range
		"(0.000001) can0 001#AAA",                  // odd hex digits
		"(0.000001) can0 001#AABBCCDDEEFF00112233", // too long
		"(0.000001) can0 001#R9",                   // remote dlc out of range
		"(0.000001) can0 001AA",                    // no '#'
	}
	for _, line := range bad {
		if _, err := ParseLog(strings.NewReader(line)); err == nil {
			t.Errorf("ParseLog(%q) succeeded, want error", line)
		}
	}
}

func TestReplayPreservesTiming(t *testing.T) {
	s := clock.New()
	b := bus.New(s)
	port := b.Connect("replayer")
	var times []time.Duration
	var ids []can.ID
	b.Connect("rx").SetReceiver(func(m bus.Message) {
		times = append(times, m.Time)
		ids = append(ids, m.Frame.ID)
	})

	tr := NewTrace(0)
	tr.Append(Record{Time: 10 * time.Second, Frame: can.MustNew(0x100, []byte{1})})
	tr.Append(Record{Time: 10*time.Second + 50*time.Millisecond, Frame: can.MustNew(0x200, []byte{2})})

	dur := Replay(s, port, tr)
	if dur != 50*time.Millisecond {
		t.Fatalf("Replay duration = %v", dur)
	}
	s.RunUntil(time.Second)
	if len(ids) != 2 || ids[0] != 0x100 || ids[1] != 0x200 {
		t.Fatalf("replayed ids = %v", ids)
	}
	gap := times[1] - times[0]
	if gap < 49*time.Millisecond || gap > 51*time.Millisecond {
		t.Fatalf("inter-frame gap = %v, want ~50ms", gap)
	}
}

func TestReplayEmptyTrace(t *testing.T) {
	s := clock.New()
	b := bus.New(s)
	port := b.Connect("replayer")
	if d := Replay(s, port, NewTrace(0)); d != 0 {
		t.Fatalf("duration = %v", d)
	}
}

type failWriter struct{ after int }

func (w *failWriter) Write(p []byte) (int, error) {
	if w.after <= 0 {
		return 0, errFail
	}
	w.after -= len(p)
	return len(p), nil
}

var errFail = errors.New("write failed")

func TestWriteLogPropagatesWriterErrors(t *testing.T) {
	tr := NewTrace(0)
	for i := 0; i < 100; i++ {
		tr.Append(Record{Frame: can.MustNew(can.ID(i), []byte{byte(i)})})
	}
	if err := WriteLog(&failWriter{}, tr, "x"); !errors.Is(err, errFail) {
		t.Fatalf("err = %v, want write failure", err)
	}
}
