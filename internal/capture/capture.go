// Package capture records, serialises and replays CAN traffic.
//
// The paper's methodology depends on traffic capture twice over: "Often the
// only way to determine what a particular CAN message does is to capture
// the network packets while operating a vehicle feature" (§II), and the
// targeted-fuzzing recommendation (§VII) needs a list of observed
// identifiers. This package provides the recorder (attachable as a bus
// tap), a text log format compatible in spirit with candump/SavvyCAN logs,
// and a replayer that re-transmits a trace with original timing.
package capture

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"repro/internal/bus"
	"repro/internal/can"
	"repro/internal/clock"
)

// Record is one captured frame with its bus timestamp.
type Record struct {
	// Time is the virtual capture instant.
	Time time.Duration
	// Frame is the captured frame.
	Frame can.Frame
	// Origin names the transmitting node, when known.
	Origin string
}

// String renders a record in the paper's Table II layout:
// "5328.009 043A 8 1C 21 17 71 17 71 FF FF" (milliseconds, id, len, data).
func (r Record) String() string {
	return fmt.Sprintf("%.3f %s", float64(r.Time)/float64(time.Millisecond), r.Frame)
}

// Trace is an in-memory sequence of records.
type Trace struct {
	records []Record
	limit   int
}

// NewTrace creates a trace. limit bounds memory (0 = unbounded); when full,
// the oldest records are dropped (ring behaviour), matching a bounded
// capture buffer.
func NewTrace(limit int) *Trace {
	return &Trace{limit: limit}
}

// Append adds a record.
func (t *Trace) Append(r Record) {
	t.records = append(t.records, r)
	if t.limit > 0 && len(t.records) > t.limit {
		drop := len(t.records) - t.limit
		t.records = append(t.records[:0], t.records[drop:]...)
	}
}

// Len returns the number of stored records.
func (t *Trace) Len() int { return len(t.records) }

// Records returns a copy of the stored records.
func (t *Trace) Records() []Record {
	out := make([]Record, len(t.records))
	copy(out, t.records)
	return out
}

// At returns the i-th record.
func (t *Trace) At(i int) Record { return t.records[i] }

// IDs returns the distinct identifiers observed, in first-seen order — the
// input to targeted fuzzing.
func (t *Trace) IDs() []can.ID {
	seen := make(map[can.ID]bool)
	var out []can.ID
	for _, r := range t.records {
		if !seen[r.Frame.ID] {
			seen[r.Frame.ID] = true
			out = append(out, r.Frame.ID)
		}
	}
	return out
}

// Recorder attaches a trace to a bus as a passive tap.
type Recorder struct {
	trace *Trace
}

// NewRecorder creates a recorder backed by a bounded trace and registers it
// on the bus.
func NewRecorder(b *bus.Bus, limit int) *Recorder {
	rec := &Recorder{trace: NewTrace(limit)}
	b.Tap(func(m bus.Message) {
		rec.trace.Append(Record{Time: m.Time, Frame: m.Frame, Origin: m.Origin})
	})
	return rec
}

// Trace returns the recorder's trace.
func (r *Recorder) Trace() *Trace { return r.trace }

// WriteLog serialises a trace in the text log format, one record per line:
//
//	(<seconds>.<micros>) <iface> <ID>#<hexdata>        data frame
//	(<seconds>.<micros>) <iface> <ID>#R<dlc>           remote frame
//
// the same shape candump -l produces, so existing tooling habits transfer.
func WriteLog(w io.Writer, t *Trace, iface string) error {
	bw := bufio.NewWriter(w)
	for _, r := range t.records {
		secs := r.Time / time.Second
		micros := (r.Time % time.Second) / time.Microsecond
		if r.Frame.Remote {
			if _, err := fmt.Fprintf(bw, "(%d.%06d) %s %03X#R%d\n",
				secs, micros, iface, uint16(r.Frame.ID), r.Frame.Len); err != nil {
				return err
			}
			continue
		}
		if _, err := fmt.Fprintf(bw, "(%d.%06d) %s %03X#%X\n",
			secs, micros, iface, uint16(r.Frame.ID),
			r.Frame.Data[:r.Frame.Len]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ParseLog reads a text log produced by WriteLog (or hand-written in the
// same format) back into a trace.
func ParseLog(r io.Reader) (*Trace, error) {
	t := NewTrace(0)
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		rec, err := parseLogLine(line)
		if err != nil {
			return nil, fmt.Errorf("capture: line %d: %w", lineNo, err)
		}
		t.Append(rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("capture: %w", err)
	}
	return t, nil
}

func parseLogLine(line string) (Record, error) {
	var rec Record
	fields := strings.Fields(line)
	if len(fields) != 3 {
		return rec, fmt.Errorf("want 3 fields, got %d", len(fields))
	}
	ts := strings.Trim(fields[0], "()")
	tsParts := strings.SplitN(ts, ".", 2)
	if len(tsParts) != 2 || len(tsParts[1]) != 6 {
		return rec, fmt.Errorf("bad timestamp %q", fields[0])
	}
	secs, err := strconv.ParseInt(tsParts[0], 10, 64)
	if err != nil {
		return rec, fmt.Errorf("bad seconds: %w", err)
	}
	micros, err := strconv.ParseInt(tsParts[1], 10, 64)
	if err != nil {
		return rec, fmt.Errorf("bad microseconds: %w", err)
	}
	rec.Time = time.Duration(secs)*time.Second + time.Duration(micros)*time.Microsecond
	rec.Origin = fields[1]

	idData := strings.SplitN(fields[2], "#", 2)
	if len(idData) != 2 {
		return rec, fmt.Errorf("missing '#' separator in %q", fields[2])
	}
	id64, err := strconv.ParseUint(idData[0], 16, 16)
	if err != nil || id64 > can.MaxID {
		return rec, fmt.Errorf("bad identifier %q", idData[0])
	}
	if strings.HasPrefix(idData[1], "R") {
		dlc, err := strconv.ParseUint(idData[1][1:], 10, 8)
		if err != nil || dlc > can.MaxDataLen {
			return rec, fmt.Errorf("bad remote dlc %q", idData[1])
		}
		f, err := can.NewRemote(can.ID(id64), uint8(dlc))
		if err != nil {
			return rec, err
		}
		rec.Frame = f
		return rec, nil
	}
	hexStr := idData[1]
	if len(hexStr)%2 != 0 || len(hexStr) > can.MaxDataLen*2 {
		return rec, fmt.Errorf("bad data %q", hexStr)
	}
	data := make([]byte, len(hexStr)/2)
	for i := range data {
		b, err := strconv.ParseUint(hexStr[i*2:i*2+2], 16, 8)
		if err != nil {
			return rec, fmt.Errorf("bad data byte: %w", err)
		}
		data[i] = byte(b)
	}
	f, err := can.New(can.ID(id64), data)
	if err != nil {
		return rec, err
	}
	rec.Frame = f
	return rec, nil
}

// Replay schedules every record of a trace for transmission on the port,
// preserving the original inter-frame timing relative to the scheduler's
// current instant. It returns the virtual duration of the replay.
func Replay(sched *clock.Scheduler, port *bus.Port, t *Trace) time.Duration {
	if t.Len() == 0 {
		return 0
	}
	base := t.records[0].Time
	var last time.Duration
	for _, r := range t.records {
		frame := r.Frame
		offset := r.Time - base
		sched.After(offset, func() {
			// Replay is best-effort, like retransmitting onto a live bus.
			_ = port.Send(frame)
		})
		last = offset
	}
	return last
}
