package campsrv

import (
	"fmt"

	"repro/internal/campaignd"
	"repro/internal/fleet"
)

// CampaignView is one campaign as the API reports it: identity, state,
// scheduling knobs, and a live fleet.Progress snapshot (zero-valued for
// queued campaigns, final for done ones).
type CampaignView struct {
	ID          string `json:"id"`
	State       State  `json:"state"`
	Priority    int    `json:"priority"`
	MaxInflight int    `json:"maxInflight,omitempty"`
	Target      string `json:"target"`
	Trials      int    `json:"trials"`
	// Error records a terminal defect (journal finalisation failure, a
	// start that could not open its journal); the report may still exist.
	Error string `json:"error,omitempty"`
	// Progress is the live tracker snapshot — trials done, findings, ETA.
	Progress fleet.ProgressSnapshot `json:"progress"`
}

// CampaignDetail is the GET /campaigns/{id} document: the view plus the
// lease book's internals while one is open.
type CampaignDetail struct {
	CampaignView
	// Coordinator exposes the lease book (leased/pending/expiries/
	// duplicates) while the campaign is running or draining.
	Coordinator *campaignd.Status `json:"coordinator,omitempty"`
}

// FleetView is the GET /fleet.json document: every campaign plus
// fleet-wide aggregates, the operator's one-look overview.
type FleetView struct {
	Campaigns []CampaignView `json:"campaigns"`
	// Active and Queued count running and waiting campaigns; Leased sums
	// in-flight trials across every open lease book.
	Active       int  `json:"active"`
	Queued       int  `json:"queued"`
	Leased       int  `json:"leased"`
	ShuttingDown bool `json:"shuttingDown,omitempty"`
}

// viewLocked renders a campaign's API view; the server lock must be held.
func (s *Server) viewLocked(c *campaign) CampaignView {
	v := CampaignView{
		ID: c.id, State: c.state,
		Priority: c.priority, MaxInflight: c.maxInflight,
		Target: c.spec.Target, Trials: c.spec.Trials,
		Error: c.failure,
	}
	v.Progress = c.progress.Snapshot() // nil-safe: queued campaigns report zeros
	if v.Progress.TrialsTotal == 0 {
		v.Progress.TrialsTotal = c.spec.Trials
	}
	return v
}

// Campaigns lists every campaign in submission order.
func (s *Server) Campaigns() []CampaignView {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]CampaignView, 0, len(s.bySeq))
	for _, c := range s.bySeq {
		out = append(out, s.viewLocked(c))
	}
	return out
}

// Detail returns one campaign's full status.
func (s *Server) Detail(id string) (CampaignDetail, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	c := s.campaigns[id]
	if c == nil {
		return CampaignDetail{}, fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	d := CampaignDetail{CampaignView: s.viewLocked(c)}
	if c.coord != nil && (c.state == StateRunning || c.state == StateDraining) {
		st := c.coord.Snapshot()
		d.Coordinator = &st
	}
	return d, nil
}

// ReportJSON returns a completed campaign's serialised final report —
// byte-identical to the in-process fleet.Run report for the same spec.
func (s *Server) ReportJSON(id string) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	c := s.campaigns[id]
	if c == nil {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	switch c.state {
	case StateCancelled:
		return nil, fmt.Errorf("%w: %q", ErrGone, id)
	case StateDone:
		return c.reportJSON, nil
	default:
		return nil, fmt.Errorf("%w: %q is %s", ErrNotDone, id, c.state)
	}
}

// Fleet renders the fleet-wide aggregate view.
func (s *Server) Fleet() FleetView {
	s.mu.Lock()
	defer s.mu.Unlock()
	v := FleetView{ShuttingDown: s.shutdown}
	coords := make([]*campaignd.Coordinator, 0, len(s.ring))
	for _, c := range s.bySeq {
		v.Campaigns = append(v.Campaigns, s.viewLocked(c))
		switch c.state {
		case StateRunning:
			v.Active++
			coords = append(coords, c.coord)
		case StateQueued:
			v.Queued++
		}
	}
	s.mu.Unlock()
	// Leased counts take each coordinator's lock; sample them outside the
	// server lock to keep /fleet.json scrapes off the lease hot path.
	for _, coord := range coords {
		v.Leased += coord.Leased()
	}
	s.mu.Lock()
	return v
}
